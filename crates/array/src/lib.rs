//! # esp-array — fault-tolerant multi-device array layer
//!
//! Stripes a host LBA space across N simulated SSD shards (each a full
//! [`Ftl`] + [`esp_ssd::Ssd`] + [`esp_nand::NandDevice`] stack) and
//! survives the loss of a whole device:
//!
//! * **RAID-0 striping** (`parity: false`): chunks rotate round-robin
//!   across all shards; a device loss fails the array.
//! * **Rotating parity** (`parity: true`, RAID-5 style): each row of N
//!   chunks holds N−1 data chunks plus one parity chunk, with the parity
//!   role rotating across shards row by row so parity-update traffic
//!   spreads evenly.
//! * **Degraded-mode reads**: after a device loss, reads that land on the
//!   dead shard are reconstructed by XOR over the surviving shards of the
//!   row — the reconstruction reads are issued against the *surviving*
//!   devices, so their latency cost lands where a real array pays it.
//! * **Hot-spare rebuild**: with `spare: true`, a device loss starts a
//!   throttled background rebuild that reconstructs the dead shard's
//!   chunks stripe by stripe onto the spare, interleaved with host
//!   traffic; when the last row lands the spare takes over the dead
//!   shard's role and the array returns to `Healthy`.
//!
//! The array health state machine is explicit and monotonic per failure:
//!
//! ```text
//! Healthy ──device loss (parity + spare)──▶ Rebuilding ──last row──▶ Healthy
//! Healthy ──device loss (parity, no spare)──▶ Degraded
//! Healthy ──device loss (no parity)──▶ Failed
//! Degraded / Rebuilding ──second device loss──▶ Failed
//! ```
//!
//! [`EspArray`] implements [`Ftl`] itself, so the calendar-queue replay
//! engine ([`esp_core::run_trace_qd`]), preconditioning and the report
//! pipeline drive an array exactly like a single device. Aggregate FTL
//! statistics are the field-wise sum over shards ([`FtlStats::plus`]).
//!
//! ## Correctness oracle
//!
//! The array keeps a content model: every host sector written is stamped
//! with a monotonically increasing value, mirrored both in an `expected`
//! oracle (what the host wrote last) and in per-shard `stored` images
//! that follow exactly the data and parity writes issued to the shards.
//! Degraded reads recompute the dead shard's content by XOR over the
//! survivors' `stored` images — any divergence from `expected` counts as
//! lost data in [`ArrayStats::data_loss_sectors`]. The single-device-loss
//! property test (`tests` below) proves the count stays zero across all
//! four FTLs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use esp_core::{Ftl, FtlStats};
use esp_sim::{SimDuration, SimTime};
use esp_ssd::Ssd;

/// Array-level configuration.
///
/// `shards` counts the *active* devices (data + rotating parity); a hot
/// spare, when enabled, is one additional device on top.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayConfig {
    /// Number of active shards the host space is striped across (≥ 2).
    pub shards: usize,
    /// Rotating parity (RAID-5 style). Off = pure striping (RAID-0):
    /// faster, but any device loss fails the array.
    pub parity: bool,
    /// Keep one extra shard as a hot spare and rebuild onto it after a
    /// device loss. Requires `parity` (there is nothing to rebuild from
    /// without it).
    pub spare: bool,
    /// Stripe chunk size in 4 KB sectors. The default (4) is one flash
    /// page, so full-page host writes map to full-page shard writes.
    pub chunk_sectors: u64,
    /// Minimum gap between background rebuild stripes. Smaller = faster
    /// rebuild, more interference with host traffic; `ZERO` rebuilds as
    /// fast as the survivors can stream.
    pub rebuild_interval: SimDuration,
    /// Treat a shard FTL's end-of-life latch (space exhaustion / read-only
    /// mode) as a device failure and retire the shard. Off by default:
    /// EOL handling stays the per-device graceful degradation the FTLs
    /// already implement.
    pub fail_on_eol: bool,
}

impl Default for ArrayConfig {
    fn default() -> Self {
        ArrayConfig {
            shards: 4,
            parity: true,
            spare: true,
            chunk_sectors: 4,
            rebuild_interval: SimDuration::from_micros(200),
            fail_on_eol: false,
        }
    }
}

impl ArrayConfig {
    /// Validates ranges and cross-field consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.shards < 2 {
            return Err(format!(
                "array needs at least 2 shards (got {})",
                self.shards
            ));
        }
        if self.parity && self.shards < 3 {
            return Err(format!(
                "parity arrays need at least 3 shards so a row has 2+ data chunks (got {})",
                self.shards
            ));
        }
        if self.spare && !self.parity {
            return Err("a hot spare requires parity (nothing to rebuild from without it)".into());
        }
        if self.chunk_sectors == 0 {
            return Err("chunk_sectors must be at least 1".into());
        }
        Ok(())
    }

    /// Total devices the array owns: active shards plus the spare.
    #[must_use]
    pub fn devices(&self) -> usize {
        self.shards + usize::from(self.spare)
    }
}

/// Array health state machine (see crate docs for transitions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrayHealth {
    /// All active shards alive; full striping performance.
    Healthy,
    /// One shard lost, no spare (or spare also lost): reads on the dead
    /// shard are reconstructed from parity; redundancy is exhausted.
    Degraded,
    /// One shard lost, hot spare attached: background rebuild in
    /// progress; rebuilt rows are already served from the spare.
    Rebuilding,
    /// Data loss: a shard died without parity, or a second shard died.
    /// Reads and writes on the array are refused (counted as lost).
    Failed,
}

impl fmt::Display for ArrayHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArrayHealth::Healthy => "Healthy",
            ArrayHealth::Degraded => "Degraded",
            ArrayHealth::Rebuilding => "Rebuilding",
            ArrayHealth::Failed => "Failed",
        })
    }
}

/// Array-level counters, all monotonic over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArrayStats {
    /// Whole-device failures detected (fault-model death trips, explicit
    /// kills, or EOL retirements under `fail_on_eol`).
    pub device_failures: u64,
    /// Host read requests (or spans) served by parity reconstruction.
    pub degraded_reads: u64,
    /// Sectors reconstructed by XOR over survivors (degraded reads plus
    /// rebuild traffic).
    pub reconstructed_sectors: u64,
    /// Rebuild rows copied onto the hot spare so far.
    pub rebuild_rows_done: u64,
    /// Total rows a full rebuild must copy (0 until a rebuild starts).
    pub rebuild_rows_total: u64,
    /// Read sectors refused because the array had already failed.
    pub lost_read_sectors: u64,
    /// Write sectors dropped because the array had already failed.
    pub lost_write_sectors: u64,
    /// Sectors whose reconstructed or stored content diverged from the
    /// host's write oracle — genuine silent data loss.
    pub mismatch_sectors: u64,
}

impl ArrayStats {
    /// Total sectors of host data lost: refused reads and writes after
    /// array failure plus silent content mismatches.
    #[must_use]
    pub fn data_loss_sectors(&self) -> u64 {
        self.lost_read_sectors + self.lost_write_sectors + self.mismatch_sectors
    }
}

/// A striped, parity-protected array of [`Ftl`] shards that itself
/// implements [`Ftl`]. See the crate docs for the full model.
pub struct EspArray {
    cfg: ArrayConfig,
    shards: Vec<Box<dyn Ftl>>,
    /// Active role → device index into `shards`. Starts as the identity;
    /// a completed rebuild repoints the dead role at the spare.
    role_dev: Vec<usize>,
    /// Device index of the unused hot spare, if one is still attached.
    spare_dev: Option<usize>,
    /// Role whose device is dead (None while `Healthy`, kept on `Failed`
    /// for post-mortem).
    dead_role: Option<usize>,
    health: ArrayHealth,
    /// Rows `0..rebuilt_rows` have been copied onto the spare.
    rebuilt_rows: u64,
    /// Earliest time the next rebuild stripe may issue.
    rebuild_ready_at: SimTime,
    /// Rows per shard (shard capacity / chunk).
    rows: u64,
    /// Host sectors exported (`rows × data_per_row × chunk`).
    logical: u64,
    /// Per-device shard content image, following exactly the writes the
    /// model issued (index = device, then shard sector).
    stored: Vec<Vec<u64>>,
    /// Host write oracle: last value written per host sector (0 = never).
    expected: Vec<u64>,
    write_counter: u64,
    /// Field-wise sum of shard stats, refreshed after every host op.
    agg: FtlStats,
    array_stats: ArrayStats,
}

impl EspArray {
    /// Builds an array over `shards` (length must be
    /// [`ArrayConfig::devices`]; with a spare, the last shard is the
    /// spare). All shards must export the same logical capacity.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid, the shard count is wrong,
    /// or shard capacities differ — all construction bugs.
    #[must_use]
    pub fn new(cfg: ArrayConfig, shards: Vec<Box<dyn Ftl>>) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid array config: {e}");
        }
        assert_eq!(
            shards.len(),
            cfg.devices(),
            "array config wants {} devices, got {} shards",
            cfg.devices(),
            shards.len()
        );
        let shard_sectors = shards[0].logical_sectors();
        for s in &shards {
            assert_eq!(
                s.logical_sectors(),
                shard_sectors,
                "all shards must export the same capacity"
            );
        }
        let rows = shard_sectors / cfg.chunk_sectors;
        assert!(rows > 0, "shards too small for even one stripe row");
        let data_per_row = cfg.shards as u64 - u64::from(cfg.parity);
        let logical = rows * data_per_row * cfg.chunk_sectors;
        let shard_span = usize::try_from(rows * cfg.chunk_sectors).expect("shard span fits usize");
        let stored = vec![vec![0u64; shard_span]; shards.len()];
        let expected = vec![0u64; usize::try_from(logical).expect("host span fits usize")];
        let role_dev = (0..cfg.shards).collect();
        let spare_dev = cfg.spare.then_some(cfg.shards);
        EspArray {
            cfg,
            shards,
            role_dev,
            spare_dev,
            dead_role: None,
            health: ArrayHealth::Healthy,
            rebuilt_rows: 0,
            rebuild_ready_at: SimTime::ZERO,
            rows,
            logical,
            stored,
            expected,
            write_counter: 0,
            agg: FtlStats::new(),
            array_stats: ArrayStats::default(),
        }
    }

    /// Current health state.
    #[must_use]
    pub fn health(&self) -> ArrayHealth {
        self.health
    }

    /// Array-level counters.
    #[must_use]
    pub fn array_stats(&self) -> &ArrayStats {
        &self.array_stats
    }

    /// The array configuration.
    #[must_use]
    pub fn config(&self) -> &ArrayConfig {
        &self.cfg
    }

    /// Borrow shard `dev` (device index, spare last).
    ///
    /// # Panics
    ///
    /// Panics if `dev` is out of range.
    #[must_use]
    pub fn shard(&self, dev: usize) -> &dyn Ftl {
        self.shards[dev].as_ref()
    }

    /// Number of devices owned (active shards + spare).
    #[must_use]
    pub fn devices(&self) -> usize {
        self.shards.len()
    }

    /// Stripe rows per shard.
    #[must_use]
    pub fn rows(&self) -> u64 {
        self.rows
    }

    // ---- geometry -------------------------------------------------------

    fn data_per_row(&self) -> u64 {
        self.cfg.shards as u64 - u64::from(self.cfg.parity)
    }

    /// Role holding the parity chunk of `row` (rotates RAID-5 style).
    fn parity_role(&self, row: u64) -> usize {
        debug_assert!(self.cfg.parity);
        usize::try_from(row % self.cfg.shards as u64).expect("role fits usize")
    }

    /// Maps a host sector to (role, shard sector, row).
    fn locate(&self, host: u64) -> (usize, u64, u64) {
        let chunk = self.cfg.chunk_sectors;
        let hostchunk = host / chunk;
        let off = host % chunk;
        let row = hostchunk / self.data_per_row();
        let i = hostchunk % self.data_per_row();
        let role = if self.cfg.parity {
            let p = self.parity_role(row) as u64;
            usize::try_from((p + 1 + i) % self.cfg.shards as u64).expect("role fits usize")
        } else {
            usize::try_from(i).expect("role fits usize")
        };
        (role, row * chunk + off, row)
    }

    /// Device currently serving `role` for `row` (rebuilt rows are served
    /// from the spare while a rebuild is in flight).
    fn dev_for(&self, role: usize, row: u64) -> usize {
        if self.health == ArrayHealth::Rebuilding
            && Some(role) == self.dead_role
            && row < self.rebuilt_rows
        {
            self.spare_dev.expect("rebuilding implies a spare")
        } else {
            self.role_dev[role]
        }
    }

    /// Whether `role`'s chunk of `row` is currently unreadable (dead
    /// device, not yet rebuilt).
    fn dead_here(&self, role: usize, row: u64) -> bool {
        match self.dead_role {
            Some(d) if d == role => {
                !(self.health == ArrayHealth::Rebuilding && row < self.rebuilt_rows)
            }
            _ => false,
        }
    }

    // ---- health ---------------------------------------------------------

    fn device_dead(&mut self, dev: usize) -> bool {
        if self.shards[dev].ssd().device_failed() {
            return true;
        }
        if self.cfg.fail_on_eol && self.shards[dev].end_of_life() {
            // Retire the shard outright so the death is permanent and the
            // device-level op gating takes over.
            self.shards[dev].fail_device();
            return true;
        }
        false
    }

    /// Scans active devices for new failures and advances the health
    /// state machine. Called at the top of every host-visible operation.
    fn poll_health(&mut self, now: SimTime) {
        if self.health == ArrayHealth::Failed {
            return;
        }
        // A spare that dies mid-rebuild aborts the rebuild: rows already
        // copied are gone with it, so reconstruction falls back to parity
        // for the whole dead shard.
        if self.health == ArrayHealth::Rebuilding {
            let spare = self.spare_dev.expect("rebuilding implies a spare");
            if self.device_dead(spare) {
                self.array_stats.device_failures += 1;
                self.spare_dev = None;
                self.rebuilt_rows = 0;
                self.health = ArrayHealth::Degraded;
            }
        }
        for role in 0..self.cfg.shards {
            let dev = self.role_dev[role];
            if Some(role) == self.dead_role || !self.device_dead(dev) {
                continue;
            }
            self.array_stats.device_failures += 1;
            if !self.cfg.parity || self.dead_role.is_some() {
                // No redundancy left to absorb this loss.
                self.health = ArrayHealth::Failed;
                if self.dead_role.is_none() {
                    self.dead_role = Some(role);
                }
                return;
            }
            self.dead_role = Some(role);
            match self.spare_dev {
                Some(spare) if !self.shards[spare].ssd().device_failed() => {
                    self.health = ArrayHealth::Rebuilding;
                    self.rebuilt_rows = 0;
                    self.rebuild_ready_at = now;
                    self.array_stats.rebuild_rows_total = self.rows;
                }
                _ => self.health = ArrayHealth::Degraded,
            }
        }
    }

    // ---- rebuild --------------------------------------------------------

    /// Background rebuild pump: copies stripe rows onto the spare, one
    /// row per `rebuild_interval`, as long as simulated time has reached
    /// the next slot. Driven from `maintain` and `idle`, i.e. interleaved
    /// with host traffic by the replay engine.
    fn pump_rebuild(&mut self, now: SimTime) {
        if self.health != ArrayHealth::Rebuilding {
            return;
        }
        let dead = self.dead_role.expect("rebuilding implies a dead role");
        let spare = self.spare_dev.expect("rebuilding implies a spare");
        let chunk = self.cfg.chunk_sectors;
        let m = u32::try_from(chunk).expect("chunk fits u32");
        while self.rebuilt_rows < self.rows && self.rebuild_ready_at <= now {
            let row = self.rebuilt_rows;
            let base = row * chunk;
            let at = self.rebuild_ready_at;
            let mut t = at;
            let mut vals = vec![0u64; usize::try_from(chunk).expect("chunk fits usize")];
            for role in 0..self.cfg.shards {
                if role == dead {
                    continue;
                }
                let dev = self.role_dev[role];
                t = t.max(self.shards[dev].read(base, m, at));
                for (k, v) in vals.iter_mut().enumerate() {
                    *v ^= self.stored[dev][usize::try_from(base).expect("sector fits usize") + k];
                }
            }
            let done = self.shards[spare].write(base, m, true, t);
            for (k, v) in vals.iter().enumerate() {
                self.stored[spare][usize::try_from(base).expect("sector fits usize") + k] = *v;
            }
            self.rebuilt_rows += 1;
            self.array_stats.rebuild_rows_done += 1;
            self.array_stats.reconstructed_sectors += chunk;
            self.rebuild_ready_at = done + self.cfg.rebuild_interval;
        }
        if self.rebuilt_rows == self.rows {
            // The spare takes over the dead shard's role permanently.
            self.role_dev[dead] = spare;
            self.spare_dev = None;
            self.dead_role = None;
            self.health = ArrayHealth::Healthy;
        }
    }

    // ---- data path ------------------------------------------------------

    fn refresh_stats(&mut self) {
        let mut agg = FtlStats::new();
        for s in &self.shards {
            agg = agg.plus(s.stats());
        }
        self.agg = agg;
    }

    /// One chunk-aligned write span; returns the host-visible completion.
    fn write_span(&mut self, host: u64, m: u32, sync: bool, issue: SimTime) -> SimTime {
        // Stamp the oracle first: the host handed us this data, so it is
        // "expected" even if the array then loses it.
        let mut vals = vec![0u64; m as usize];
        for (k, v) in vals.iter_mut().enumerate() {
            self.write_counter += 1;
            *v = self.write_counter;
            self.expected[usize::try_from(host).expect("sector fits usize") + k] = *v;
        }
        if self.health == ArrayHealth::Failed {
            self.array_stats.lost_write_sectors += u64::from(m);
            return issue;
        }
        let (role, ss, row) = self.locate(host);
        let si = usize::try_from(ss).expect("sector fits usize");
        let tdev = self.dev_for(role, row);
        if !self.cfg.parity {
            let done = self.shards[tdev].write(ss, m, sync, issue);
            self.stored[tdev][si..si + m as usize].copy_from_slice(&vals);
            return if sync { done } else { issue };
        }
        let prole = self.parity_role(row);
        let pdev = self.dev_for(prole, row);
        let target_dead = self.dead_here(role, row);
        let parity_dead = self.dead_here(prole, row);
        if target_dead {
            // Fold the new data into parity via the survivors: new parity
            // = XOR(surviving data chunks) ^ new data. The dead shard's
            // image is left frozen — reconstruction never consults it.
            let mut t = issue;
            let mut newp = vals.clone();
            for r in 0..self.cfg.shards {
                if r == role || r == prole {
                    continue;
                }
                let dev = self.dev_for(r, row);
                t = t.max(self.shards[dev].read(ss, m, issue));
                for (k, v) in newp.iter_mut().enumerate() {
                    *v ^= self.stored[dev][si + k];
                }
            }
            let done = self.shards[pdev].write(ss, m, sync, t);
            self.stored[pdev][si..si + m as usize].copy_from_slice(&newp);
            return if sync { done } else { issue };
        }
        if parity_dead {
            // Parity chunk of this row is on the dead shard: plain data
            // write, redundancy for this row is simply gone until rebuild.
            let done = self.shards[tdev].write(ss, m, sync, issue);
            self.stored[tdev][si..si + m as usize].copy_from_slice(&vals);
            return if sync { done } else { issue };
        }
        // Healthy read-modify-write parity update: read old data + old
        // parity in parallel, write data immediately, write parity once
        // both reads are in.
        let rd = self.shards[tdev].read(ss, m, issue);
        let rp = self.shards[pdev].read(ss, m, issue);
        let t = rd.max(rp);
        let mut newp = vec![0u64; m as usize];
        for (k, v) in newp.iter_mut().enumerate() {
            *v = self.stored[pdev][si + k] ^ self.stored[tdev][si + k] ^ vals[k];
        }
        let dw = self.shards[tdev].write(ss, m, sync, issue);
        let pw = self.shards[pdev].write(ss, m, sync, t);
        self.stored[tdev][si..si + m as usize].copy_from_slice(&vals);
        self.stored[pdev][si..si + m as usize].copy_from_slice(&newp);
        if sync {
            dw.max(pw)
        } else {
            issue
        }
    }

    /// One chunk-aligned read span; returns the host-visible completion.
    fn read_span(&mut self, host: u64, m: u32, issue: SimTime) -> SimTime {
        if self.health == ArrayHealth::Failed {
            self.array_stats.lost_read_sectors += u64::from(m);
            return issue;
        }
        let (role, ss, row) = self.locate(host);
        let si = usize::try_from(ss).expect("sector fits usize");
        let hi = usize::try_from(host).expect("sector fits usize");
        if !self.dead_here(role, row) {
            let dev = self.dev_for(role, row);
            let done = self.shards[dev].read(ss, m, issue);
            for k in 0..m as usize {
                if self.stored[dev][si + k] != self.expected[hi + k] {
                    self.array_stats.mismatch_sectors += 1;
                }
            }
            return done;
        }
        // Degraded read: XOR over every surviving chunk of the row (data
        // and parity alike), charged against the surviving devices.
        self.array_stats.degraded_reads += 1;
        self.array_stats.reconstructed_sectors += u64::from(m);
        let mut t = issue;
        let mut vals = vec![0u64; m as usize];
        for r in 0..self.cfg.shards {
            if r == role {
                continue;
            }
            let dev = self.dev_for(r, row);
            t = t.max(self.shards[dev].read(ss, m, issue));
            for (k, v) in vals.iter_mut().enumerate() {
                *v ^= self.stored[dev][si + k];
            }
        }
        for (k, v) in vals.iter().enumerate() {
            if *v != self.expected[hi + k] {
                self.array_stats.mismatch_sectors += 1;
            }
        }
        t
    }

    /// Splits `[lsn, lsn+sectors)` at chunk boundaries and runs `f` per
    /// span, returning the latest completion.
    fn for_spans(
        &mut self,
        lsn: u64,
        sectors: u32,
        issue: SimTime,
        mut f: impl FnMut(&mut Self, u64, u32) -> SimTime,
    ) -> SimTime {
        assert!(
            lsn + u64::from(sectors) <= self.logical,
            "request beyond array capacity"
        );
        let chunk = self.cfg.chunk_sectors;
        let mut s = lsn;
        let end = lsn + u64::from(sectors);
        let mut done = issue;
        while s < end {
            let span = (end - s).min(chunk - s % chunk);
            let m = u32::try_from(span).expect("span fits u32");
            done = done.max(f(self, s, m));
            s += span;
        }
        done
    }
}

impl Ftl for EspArray {
    fn name(&self) -> &'static str {
        "espARRAY"
    }

    fn logical_sectors(&self) -> u64 {
        self.logical
    }

    fn write(&mut self, lsn: u64, sectors: u32, sync: bool, issue: SimTime) -> SimTime {
        self.poll_health(issue);
        let done = self.for_spans(lsn, sectors, issue, |a, s, m| {
            a.write_span(s, m, sync, issue)
        });
        self.refresh_stats();
        done
    }

    fn read(&mut self, lsn: u64, sectors: u32, issue: SimTime) -> SimTime {
        self.poll_health(issue);
        let done = self.for_spans(lsn, sectors, issue, |a, s, m| a.read_span(s, m, issue));
        self.refresh_stats();
        done
    }

    fn flush(&mut self, issue: SimTime) -> SimTime {
        self.poll_health(issue);
        let mut done = issue;
        for s in &mut self.shards {
            done = done.max(s.flush(issue));
        }
        self.refresh_stats();
        done
    }

    fn maintain(&mut self, now: SimTime) {
        self.poll_health(now);
        for s in &mut self.shards {
            s.maintain(now);
        }
        self.pump_rebuild(now);
    }

    fn idle(&mut self, from: SimTime, until: SimTime) {
        for s in &mut self.shards {
            s.idle(from, until);
        }
        self.poll_health(until);
        self.pump_rebuild(until);
    }

    fn stored_seq(&self, lsn: u64) -> Option<u64> {
        if lsn >= self.logical || self.health == ArrayHealth::Failed {
            return None;
        }
        let hi = usize::try_from(lsn).expect("sector fits usize");
        if self.expected[hi] == 0 {
            return None;
        }
        let (role, ss, row) = self.locate(lsn);
        let si = usize::try_from(ss).expect("sector fits usize");
        if !self.dead_here(role, row) {
            return Some(self.stored[self.dev_for(role, row)][si]);
        }
        if !self.cfg.parity {
            return None;
        }
        let mut v = 0u64;
        for r in 0..self.cfg.shards {
            if r != role {
                v ^= self.stored[self.dev_for(r, row)][si];
            }
        }
        Some(v)
    }

    fn trim(&mut self, _lsn: u64, _sectors: u32) {
        // Deliberate no-op: dropping a data chunk without rewriting the
        // row's parity would corrupt reconstruction, and a parity rewrite
        // costs more than the trim saves at this granularity.
    }

    fn mapping_memory_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.mapping_memory_bytes()).sum()
    }

    fn stats(&self) -> &FtlStats {
        &self.agg
    }

    fn end_of_life(&self) -> bool {
        self.health == ArrayHealth::Failed
    }

    fn ssd(&self) -> &Ssd {
        // The runner samples device counters through this accessor; for
        // an array they reflect shard 0 only (per-device counters of the
        // other shards are reachable through [`EspArray::shard`]).
        self.shards[0].ssd()
    }

    fn fail_device(&mut self) {
        // "The device" is ambiguous for an array; kill shard 0 — tests
        // and the CLI use explicit per-shard kills instead.
        self.shards[0].fail_device();
    }

    fn enable_tracing(&mut self, capacity: usize) {
        for s in &mut self.shards {
            s.enable_tracing(capacity);
        }
    }

    fn events(&self) -> Vec<esp_sim::TraceEvent> {
        let mut all: Vec<esp_sim::TraceEvent> =
            self.shards.iter().flat_map(|s| s.events()).collect();
        all.sort_by_key(|e| e.at_ns);
        all
    }

    fn events_dropped(&self) -> u64 {
        self.shards.iter().map(|s| s.events_dropped()).sum()
    }
}

/// A device-death arm for [`shard_configs`]: `(device index, die_at_op,
/// die_at_pe)` — at least one of the two triggers should be set.
pub type KillSpec = (usize, Option<u64>, Option<u32>);

/// Clones `base` once per device, offsetting the fault seed by the
/// device index so shards draw independent fault streams. A `kill`
/// entry `(device, die_at_op, die_at_pe)` arms that device's death latch.
#[must_use]
pub fn shard_configs(
    base: &esp_core::FtlConfig,
    devices: usize,
    kill: Option<KillSpec>,
) -> Vec<esp_core::FtlConfig> {
    (0..devices)
        .map(|i| {
            let mut c = base.clone();
            if let Some(f) = &mut c.fault {
                f.seed = f.seed.wrapping_add(i as u64);
            }
            if let Some((dev, at_op, at_pe)) = kill {
                if dev == i && (at_op.is_some() || at_pe.is_some()) {
                    let f = c.fault.get_or_insert_with(|| esp_nand::FaultConfig {
                        seed: 0x5eed_0000 + i as u64,
                        ..Default::default()
                    });
                    f.die_at_op = at_op;
                    f.die_at_pe = at_pe;
                }
            }
            c
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp_core::{run_trace_qd, CgmFtl, FgmFtl, FtlConfig, SectorLogFtl, SubFtl};
    use esp_workload::{generate, SyntheticConfig};

    fn build_shard(kind: &str, cfg: &FtlConfig) -> Box<dyn Ftl> {
        match kind {
            "sub" => Box::new(SubFtl::new(cfg)),
            "cgm" => Box::new(CgmFtl::new(cfg)),
            "fgm" => Box::new(FgmFtl::new(cfg)),
            "sectorlog" => Box::new(SectorLogFtl::new(cfg)),
            other => panic!("unknown ftl {other}"),
        }
    }

    fn tiny_array(kind: &str, acfg: ArrayConfig, kill: Option<(usize, u64)>) -> EspArray {
        let base = FtlConfig::tiny();
        let configs = shard_configs(
            &base,
            acfg.devices(),
            kill.map(|(dev, at)| (dev, Some(at), None)),
        );
        let shards = configs.iter().map(|c| build_shard(kind, c)).collect();
        EspArray::new(acfg, shards)
    }

    fn workload(footprint: u64, requests: u64, seed: u64) -> esp_workload::Trace {
        generate(&SyntheticConfig {
            footprint_sectors: footprint,
            requests,
            read_fraction: 0.4,
            seed,
            ..SyntheticConfig::default()
        })
    }

    #[test]
    fn mapping_covers_every_host_sector_exactly_once() {
        let a = tiny_array(
            "sub",
            ArrayConfig {
                shards: 3,
                spare: false,
                ..ArrayConfig::default()
            },
            None,
        );
        // Every host sector maps to a unique (role, shard sector), no
        // host sector lands on a row's parity chunk, and each row's
        // parity role rotates.
        let mut seen = std::collections::HashSet::new();
        for host in 0..a.logical_sectors() {
            let (role, ss, row) = a.locate(host);
            assert!(role < 3);
            assert_ne!(role, a.parity_role(row), "data must avoid the parity chunk");
            assert_eq!(ss / a.config().chunk_sectors, row);
            assert!(seen.insert((role, ss)), "double-mapped shard sector");
        }
        assert_eq!(a.parity_role(0), 0);
        assert_eq!(a.parity_role(1), 1);
        assert_eq!(a.parity_role(3), 0);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(ArrayConfig {
            shards: 1,
            parity: false,
            spare: false,
            ..ArrayConfig::default()
        }
        .validate()
        .is_err());
        assert!(ArrayConfig {
            shards: 2,
            parity: true,
            spare: false,
            ..ArrayConfig::default()
        }
        .validate()
        .is_err());
        assert!(ArrayConfig {
            parity: false,
            spare: true,
            ..ArrayConfig::default()
        }
        .validate()
        .is_err());
        assert!(ArrayConfig {
            chunk_sectors: 0,
            ..ArrayConfig::default()
        }
        .validate()
        .is_err());
        assert!(ArrayConfig::default().validate().is_ok());
    }

    #[test]
    fn healthy_array_round_trips_and_stripes() {
        let mut a = tiny_array(
            "sub",
            ArrayConfig {
                shards: 3,
                spare: false,
                ..ArrayConfig::default()
            },
            None,
        );
        let trace = workload(a.logical_sectors() / 2, 400, 7);
        let report = run_trace_qd(&mut a, &trace, 4);
        assert!(report.requests > 0);
        assert_eq!(a.health(), ArrayHealth::Healthy);
        assert_eq!(a.array_stats().data_loss_sectors(), 0);
        assert_eq!(a.array_stats().degraded_reads, 0);
        // Parity means every shard sees traffic.
        for dev in 0..a.devices() {
            assert!(
                a.shard(dev).stats().host_write_requests > 0,
                "shard {dev} untouched"
            );
        }
    }

    /// The acceptance property: one killed device in a parity array →
    /// every host sector reads back bit-identical to a no-fault run, for
    /// all four FTLs, with and without a hot spare.
    #[test]
    fn single_device_loss_loses_no_data_across_all_ftls() {
        for kind in ["sub", "cgm", "fgm", "sectorlog"] {
            for spare in [false, true] {
                let acfg = ArrayConfig {
                    shards: 3,
                    spare,
                    rebuild_interval: SimDuration::from_micros(50),
                    ..ArrayConfig::default()
                };
                let mut healthy = tiny_array(kind, acfg.clone(), None);
                let mut faulted = tiny_array(kind, acfg, Some((1, 400)));
                let trace = workload(healthy.logical_sectors() / 2, 600, 11);
                run_trace_qd(&mut healthy, &trace, 4);
                run_trace_qd(&mut faulted, &trace, 4);
                assert!(
                    faulted.array_stats().device_failures >= 1,
                    "{kind}: kill latch never tripped"
                );
                assert_ne!(faulted.health(), ArrayHealth::Failed, "{kind}");
                assert_eq!(
                    faulted.array_stats().data_loss_sectors(),
                    0,
                    "{kind} spare={spare}: data loss after single device loss"
                );
                for lsn in 0..healthy.logical_sectors() {
                    assert_eq!(
                        faulted.stored_seq(lsn),
                        healthy.stored_seq(lsn),
                        "{kind} spare={spare}: content diverged at sector {lsn}"
                    );
                }
            }
        }
    }

    #[test]
    fn device_loss_without_spare_degrades_and_reconstructs_reads() {
        let mut a = tiny_array(
            "sub",
            ArrayConfig {
                shards: 3,
                spare: false,
                ..ArrayConfig::default()
            },
            Some((0, 200)),
        );
        let trace = workload(a.logical_sectors() / 2, 600, 3);
        run_trace_qd(&mut a, &trace, 4);
        assert_eq!(a.health(), ArrayHealth::Degraded);
        assert!(a.array_stats().degraded_reads > 0, "no degraded reads seen");
        assert!(a.array_stats().reconstructed_sectors > 0);
        assert_eq!(a.array_stats().data_loss_sectors(), 0);
        // A degraded read costs real survivor time, not zero.
        let t = SimTime::from_secs(1_000);
        let done = a.read(0, 4, t);
        assert!(done > t, "degraded read must charge survivor latency");
    }

    #[test]
    fn rebuild_completes_onto_spare_and_returns_healthy() {
        let mut a = tiny_array(
            "sub",
            ArrayConfig {
                shards: 3,
                spare: true,
                rebuild_interval: SimDuration::from_micros(10),
                ..ArrayConfig::default()
            },
            Some((1, 300)),
        );
        let trace = workload(a.logical_sectors() / 2, 600, 5);
        run_trace_qd(&mut a, &trace, 4);
        assert!(matches!(
            a.health(),
            ArrayHealth::Rebuilding | ArrayHealth::Healthy
        ));
        // Give the rebuild pump idle time until it finishes.
        let mut now = SimTime::from_secs(10);
        for _ in 0..1_000 {
            if a.health() == ArrayHealth::Healthy {
                break;
            }
            let next = now + SimDuration::from_millis(100);
            a.idle(now, next);
            now = next;
        }
        assert_eq!(a.health(), ArrayHealth::Healthy, "rebuild never finished");
        assert_eq!(a.array_stats().rebuild_rows_done, a.rows());
        assert_eq!(a.array_stats().data_loss_sectors(), 0);
        // Post-rebuild reads are served without reconstruction and still
        // match the oracle.
        let before = a.array_stats().degraded_reads;
        for lsn in (0..a.logical_sectors()).step_by(4) {
            a.read(lsn, 4, now);
        }
        assert_eq!(a.array_stats().degraded_reads, before);
        assert_eq!(a.array_stats().mismatch_sectors, 0);
    }

    #[test]
    fn raid0_device_loss_fails_the_array() {
        let mut a = tiny_array(
            "sub",
            ArrayConfig {
                shards: 3,
                parity: false,
                spare: false,
                ..ArrayConfig::default()
            },
            Some((1, 150)),
        );
        let trace = workload(a.logical_sectors() / 2, 500, 9);
        run_trace_qd(&mut a, &trace, 4);
        assert_eq!(a.health(), ArrayHealth::Failed);
        assert!(a.end_of_life());
        assert!(
            a.array_stats().data_loss_sectors() > 0,
            "RAID-0 death must lose data"
        );
        assert_eq!(a.stored_seq(0), None);
    }

    #[test]
    fn second_device_loss_fails_a_degraded_array() {
        let mut a = tiny_array(
            "sub",
            ArrayConfig {
                shards: 3,
                spare: false,
                ..ArrayConfig::default()
            },
            None,
        );
        let t = SimTime::ZERO;
        a.write(0, 8, true, t);
        assert_eq!(a.health(), ArrayHealth::Healthy);
        a.shards[0].fail_device();
        a.maintain(t);
        assert_eq!(a.health(), ArrayHealth::Degraded);
        a.shards[1].fail_device();
        a.maintain(t);
        assert_eq!(a.health(), ArrayHealth::Failed);
        assert_eq!(a.array_stats().device_failures, 2);
    }

    #[test]
    fn aggregate_stats_are_the_fieldwise_sum_over_shards() {
        let mut a = tiny_array(
            "sub",
            ArrayConfig {
                shards: 3,
                spare: false,
                ..ArrayConfig::default()
            },
            None,
        );
        let trace = workload(a.logical_sectors() / 2, 300, 13);
        run_trace_qd(&mut a, &trace, 2);
        let sum: u64 = (0..a.devices())
            .map(|d| a.shard(d).stats().flash_sectors_consumed)
            .sum();
        assert_eq!(a.stats().flash_sectors_consumed, sum);
        assert!(sum > 0);
    }
}

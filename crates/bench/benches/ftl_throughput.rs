//! End-to-end FTL replay throughput: one group per paper benchmark
//! profile, one row per FTL. This measures *simulator* throughput
//! (wall-clock speed of replaying a trace), complementing the experiment
//! binaries that report *simulated* IOPS. Uses the in-repo `micro`
//! harness (`cargo bench -p esp-bench --bench ftl_throughput`).

use esp_bench::micro::bench_batched;
use esp_core::{precondition, run_trace_qd, FtlConfig};
use esp_nand::Geometry;
use esp_workload::{generate, Benchmark};

fn bench_config() -> FtlConfig {
    FtlConfig {
        geometry: Geometry {
            channels: 4,
            chips_per_channel: 2,
            blocks_per_chip: 16,
            pages_per_block: 32,
            subpages_per_page: 4,
            subpage_bytes: 4096,
        },
        write_buffer_sectors: 256,
        ..FtlConfig::paper_default()
    }
}

fn main() {
    let cfg = bench_config();
    let footprint = (cfg.logical_sectors() as f64 * 0.625) as u64;
    for bench in [Benchmark::Sysbench, Benchmark::Ycsb] {
        let trace = generate(&bench.config(footprint, 4_000, 7));
        for kind in esp_bench::FtlKind::ALL {
            bench_batched(
                &format!("replay/{}/{}", bench.name(), kind.name()),
                10,
                || {
                    let mut ftl = kind.build(&cfg);
                    precondition(ftl.as_mut(), 0.625);
                    ftl
                },
                |mut ftl| run_trace_qd(ftl.as_mut(), &trace, 8),
            );
        }
    }
}

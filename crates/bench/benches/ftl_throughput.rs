//! End-to-end FTL replay throughput: one Criterion group per paper
//! benchmark profile, one function per FTL. This measures *simulator*
//! throughput (wall-clock speed of replaying a trace), complementing the
//! experiment binaries that report *simulated* IOPS.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use esp_core::{precondition, run_trace_qd, FtlConfig};
use esp_nand::Geometry;
use esp_workload::{generate, Benchmark};

fn bench_config() -> FtlConfig {
    FtlConfig {
        geometry: Geometry {
            channels: 4,
            chips_per_channel: 2,
            blocks_per_chip: 16,
            pages_per_block: 32,
            subpages_per_page: 4,
            subpage_bytes: 4096,
        },
        write_buffer_sectors: 256,
        ..FtlConfig::paper_default()
    }
}

fn ftl_throughput(c: &mut Criterion) {
    let cfg = bench_config();
    let footprint = (cfg.logical_sectors() as f64 * 0.625) as u64;
    for bench in [Benchmark::Sysbench, Benchmark::Ycsb] {
        let trace = generate(&bench.config(footprint, 4_000, 7));
        let mut group = c.benchmark_group(format!("replay/{}", bench.name()));
        group.sample_size(10);
        for kind in esp_bench::FtlKind::ALL {
            group.bench_function(kind.name(), |b| {
                b.iter_batched(
                    || {
                        let mut ftl = kind.build(&cfg);
                        precondition(ftl.as_mut(), 0.625);
                        ftl
                    },
                    |mut ftl| run_trace_qd(ftl.as_mut(), &trace, 8),
                    BatchSize::LargeInput,
                )
            });
        }
        group.finish();
    }
}

criterion_group!(benches, ftl_throughput);
criterion_main!(benches);

//! Microbenchmarks of the hot FTL paths: single-sector writes per FTL
//! (mapping update + allocator + device program bookkeeping) and the
//! subpage-region allocator's lap machinery under churn.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use esp_core::{Ftl, FtlConfig, SubFtl};
use esp_nand::Geometry;
use esp_sim::SimTime;

fn cfg() -> FtlConfig {
    FtlConfig {
        geometry: Geometry {
            channels: 4,
            chips_per_channel: 2,
            blocks_per_chip: 16,
            pages_per_block: 32,
            subpages_per_page: 4,
            subpage_bytes: 4096,
        },
        write_buffer_sectors: 64,
        ..FtlConfig::paper_default()
    }
}

fn write_path(c: &mut Criterion) {
    let cfg = cfg();
    let mut group = c.benchmark_group("write_path/sync_4k");
    group.sample_size(20);
    for kind in esp_bench::FtlKind::ALL {
        group.bench_function(kind.name(), |b| {
            b.iter_batched(
                || (kind.build(&cfg), 0u64, SimTime::ZERO),
                |(mut ftl, mut lsn, mut clock)| {
                    for _ in 0..256 {
                        clock = ftl.write(lsn % 1024, 1, true, clock);
                        lsn = lsn.wrapping_mul(6364136223846793005).wrapping_add(1);
                    }
                    ftl
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn sub_region_churn(c: &mut Criterion) {
    let cfg = cfg();
    c.bench_function("sub_region/lap_churn_1k_writes", |b| {
        b.iter_batched(
            || SubFtl::new(&cfg),
            |mut ftl| {
                let mut clock = SimTime::ZERO;
                for i in 0..1024u64 {
                    clock = ftl.write(i % 97, 1, true, clock);
                }
                ftl
            },
            BatchSize::LargeInput,
        )
    });
}

criterion_group!(benches, write_path, sub_region_churn);
criterion_main!(benches);

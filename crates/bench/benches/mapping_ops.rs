//! Microbenchmarks of the hot FTL paths: single-sector writes per FTL
//! (mapping update + allocator + device program bookkeeping) and the
//! subpage-region allocator's lap machinery under churn. Uses the in-repo
//! `micro` harness (`cargo bench -p esp-bench --bench mapping_ops`).

use esp_bench::micro::bench_batched;
use esp_core::{Ftl, FtlConfig, SubFtl};
use esp_nand::Geometry;
use esp_sim::SimTime;

fn cfg() -> FtlConfig {
    FtlConfig {
        geometry: Geometry {
            channels: 4,
            chips_per_channel: 2,
            blocks_per_chip: 16,
            pages_per_block: 32,
            subpages_per_page: 4,
            subpage_bytes: 4096,
        },
        write_buffer_sectors: 64,
        ..FtlConfig::paper_default()
    }
}

fn main() {
    let cfg = cfg();
    for kind in esp_bench::FtlKind::ALL {
        bench_batched(
            &format!("write_path/sync_4k/{}", kind.name()),
            20,
            || (kind.build(&cfg), 0u64, SimTime::ZERO),
            |(mut ftl, mut lsn, mut clock)| {
                for _ in 0..256 {
                    clock = ftl.write(lsn % 1024, 1, true, clock);
                    lsn = lsn.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                ftl
            },
        );
    }
    bench_batched(
        "sub_region/lap_churn_1k_writes",
        20,
        || SubFtl::new(&cfg),
        |mut ftl| {
            let mut clock = SimTime::ZERO;
            for i in 0..1024u64 {
                clock = ftl.write(i % 97, 1, true, clock);
            }
            ftl
        },
    );
}

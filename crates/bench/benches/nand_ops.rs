//! Microbenchmarks of the device substrate: raw NAND command dispatch and
//! retention-model evaluation (both sit on every simulated I/O). Uses the
//! in-repo `micro` harness (`cargo bench -p esp-bench --bench nand_ops`).

use esp_bench::micro::{bench, bench_batched};
use esp_nand::{Geometry, NandDevice, Oob, RetentionModel};
use esp_sim::{SimDuration, SimTime};
use esp_ssd::Ssd;

fn main() {
    let g = Geometry {
        channels: 2,
        chips_per_channel: 2,
        blocks_per_chip: 8,
        pages_per_block: 32,
        subpages_per_page: 4,
        subpage_bytes: 4096,
    };
    bench_batched(
        "nand/subpage_program_cycle",
        30,
        || NandDevice::new(g.clone()),
        |mut dev| {
            let blk = dev.geometry().block_addr(0);
            for round in 0..4u64 {
                for page in 0..32 {
                    for slot in 0..4u8 {
                        dev.program_subpage(
                            blk.page(page).subpage(slot),
                            Oob {
                                lsn: round,
                                seq: round,
                            },
                            SimTime::ZERO,
                        )
                        .expect("program");
                    }
                }
                dev.erase(blk, SimTime::ZERO).expect("erase");
            }
            dev
        },
    );

    bench_batched(
        "ssd/timed_program_full",
        30,
        || Ssd::new(g.clone()),
        |mut ssd| {
            for blk in 0..8u32 {
                let addr = ssd.geometry().block_addr(blk);
                for page in 0..32 {
                    ssd.program_full(addr.page(page), &[None; 4], SimTime::ZERO)
                        .expect("program");
                }
            }
            ssd
        },
    );

    let model = RetentionModel::paper_default();
    bench("retention/normalized_ber_sweep", 30, || {
        let mut acc = 0.0;
        for pe in (0..3000u32).step_by(100) {
            for npp in 0..4 {
                for days in (0..60u64).step_by(5) {
                    acc += model.normalized_ber(pe, npp, SimDuration::from_days(days));
                }
            }
        }
        acc
    });
}

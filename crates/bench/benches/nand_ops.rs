//! Microbenchmarks of the device substrate: raw NAND command dispatch and
//! retention-model evaluation (both sit on every simulated I/O).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use esp_nand::{Geometry, NandDevice, Oob, RetentionModel};
use esp_sim::{SimDuration, SimTime};
use esp_ssd::Ssd;

fn nand_program_erase(c: &mut Criterion) {
    let g = Geometry {
        channels: 2,
        chips_per_channel: 2,
        blocks_per_chip: 8,
        pages_per_block: 32,
        subpages_per_page: 4,
        subpage_bytes: 4096,
    };
    c.bench_function("nand/subpage_program_cycle", |b| {
        b.iter_batched(
            || NandDevice::new(g.clone()),
            |mut dev| {
                let blk = dev.geometry().block_addr(0);
                for round in 0..4u64 {
                    for page in 0..32 {
                        for slot in 0..4u8 {
                            dev.program_subpage(
                                blk.page(page).subpage(slot),
                                Oob { lsn: round, seq: round },
                                SimTime::ZERO,
                            )
                            .expect("program");
                        }
                    }
                    dev.erase(blk, SimTime::ZERO).expect("erase");
                }
                dev
            },
            BatchSize::LargeInput,
        )
    });

    c.bench_function("ssd/timed_program_full", |b| {
        b.iter_batched(
            || Ssd::new(g.clone()),
            |mut ssd| {
                for blk in 0..8u32 {
                    let addr = ssd.geometry().block_addr(blk);
                    for page in 0..32 {
                        ssd.program_full(addr.page(page), &[None; 4], SimTime::ZERO)
                            .expect("program");
                    }
                }
                ssd
            },
            BatchSize::LargeInput,
        )
    });
}

fn retention_eval(c: &mut Criterion) {
    let model = RetentionModel::paper_default();
    c.bench_function("retention/normalized_ber_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for pe in (0..3000u32).step_by(100) {
                for npp in 0..4 {
                    for days in (0..60u64).step_by(5) {
                        acc += model.normalized_ber(pe, npp, SimDuration::from_days(days));
                    }
                }
            }
            acc
        })
    });
}

criterion_group!(benches, nand_program_erase, retention_eval);
criterion_main!(benches);

//! **Ablation A8 — ECC strength vs subpage retention** (paper Fig 3/Fig 5:
//! the ECC limit is what turns the `Npp`-dependent BER uplift into a
//! retention cliff; Fig 4's "uncorrectable failure" is a codeword exceeding
//! the engine's correction capability).
//!
//! Sweeps the engine's correction strength (bits per 1 KB codeword) and
//! reports each `Npp` type's retention capability — answering "how much
//! ECC would it take to lift the subpage region's 1-month bound?"

use esp_bench::TextTable;
use esp_nand::EccConfig;
use esp_sim::SimDuration;

fn main() {
    println!("Ablation A8: ECC correction strength vs subpage retention capability");
    println!("(1 KB codewords; the reproduction's default engine corrects 40 bits)");
    println!();
    let mut t = TextTable::new([
        "correctable bits",
        "normalized limit",
        "Npp^0 (days)",
        "Npp^1 (days)",
        "Npp^2 (days)",
        "Npp^3 (days)",
        "Npp^3 2-month ok?",
    ]);
    for bits in [24u32, 32, 40, 48, 60, 72] {
        let ecc = EccConfig {
            correctable_bits: bits,
            ..EccConfig::paper_default()
        };
        let model = ecc.retention_model();
        let days = |npp: u32| {
            format!(
                "{:.0}",
                model.retention_capability(1000, npp).as_secs_f64() / 86_400.0
            )
        };
        t.row([
            bits.to_string(),
            format!("{:.2}", ecc.normalized_limit()),
            days(0),
            days(1),
            days(2),
            days(3),
            if model.is_readable(1000, 3, SimDuration::from_months(2)) {
                "yes".to_string()
            } else {
                "no".to_string()
            },
        ]);
    }
    println!("{}", t.render());
    println!(
        "Expected: the paper's device class (40-bit ECC) gives Npp^3 about\n\
         five weeks — hence the conservative 1-month rule and the 15-day\n\
         scrubber. Raising correction into the 60-bit range would double\n\
         subpage retention and let subFTL relax its scrub cadence; dropping\n\
         to 24 bits would make even Npp^0 marginal."
    );
}

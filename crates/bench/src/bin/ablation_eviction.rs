//! **Ablation A5 — hot/cold eviction policy in subpage-region GC**
//! (paper §4.2: move subpages "that have been updated at least once" within
//! the region, evict never-updated subpages to the full-page region).
//!
//! Compares four policies on a workload with a genuine hot/cold mix:
//!
//! * `second-chance` (our default) — updated subpages stay but must earn
//!   another update before the next GC;
//! * `keep-updated` — the paper's literal rule (once updated, hot forever);
//! * `evict-all` — no hot/cold separation, everything valid is evicted;
//! * `keep-all` — nothing is evicted (only the retention scrubber demotes).

use esp_bench::{big_flag, experiment_config, footprint_sectors, TextTable, FILL_FRACTION};
use esp_core::{precondition, run_trace_qd, EvictionPolicy, FtlConfig, SubFtl};
use esp_workload::{generate, SyntheticConfig};

fn main() {
    let base = experiment_config(big_flag());
    let footprint = footprint_sectors(&base);
    let requests = if big_flag() { 400_000 } else { 50_000 };
    // Moderate skew over a larger zone: a real hot head plus a cold tail
    // that should leave the region.
    let trace = generate(&SyntheticConfig {
        footprint_sectors: footprint,
        requests,
        r_small: 1.0,
        r_synch: 0.95,
        zipf_theta: 0.85,
        small_zone_sectors: Some((footprint / 24).max(64)),
        rewrite_distance: 512,
        seed: 0xAB5,
        ..SyntheticConfig::default()
    });

    println!("Ablation A5: subpage-region eviction policy ({requests} requests)");
    println!();
    let mut t = TextTable::new([
        "policy",
        "IOPS",
        "GC invocations",
        "migr + moves",
        "evictions (RMW)",
        "request WAF",
    ]);
    for policy in [
        EvictionPolicy::SecondChance,
        EvictionPolicy::KeepUpdatedForever,
        EvictionPolicy::EvictAll,
        EvictionPolicy::KeepAll,
    ] {
        let cfg = FtlConfig {
            eviction_policy: policy,
            ..base.clone()
        };
        let mut ftl = SubFtl::new(&cfg);
        precondition(&mut ftl, FILL_FRACTION);
        let r = run_trace_qd(&mut ftl, &trace, 8);
        t.row([
            policy.to_string(),
            format!("{:.0}", r.iops),
            r.stats.gc_invocations.to_string(),
            (r.stats.lap_migrations + r.stats.gc_copied_sectors).to_string(),
            r.stats.cold_evictions.to_string(),
            format!("{:.3}", r.stats.small_request_waf()),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Expected: evict-all pays an RMW per valid subpage per GC; keep-all\n\
         drags cold data through every lap and GC; the updated-flag\n\
         policies sit in between, keeping only data that earns its place."
    );
}

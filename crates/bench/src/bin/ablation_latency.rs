//! **Ablation A3 — subpage program latency** (paper §5: a 4 KB subpage
//! program takes 1300 µs vs 1600 µs for a full page, because fewer bit
//! lines precharge in verify-reads and a shorter word-line span drives
//! `V_pgm`).
//!
//! How much of subFTL's win comes from the faster program, and how much
//! from avoiding fragmentation/GC? Sweeps the subpage program latency from
//! 1600 µs (no benefit) down to 800 µs.

use esp_bench::{
    big_flag, experiment_config, footprint_sectors, FtlKind, TextTable, FILL_FRACTION,
};
use esp_core::{precondition, run_trace_qd, FtlConfig};
use esp_sim::SimDuration;
use esp_workload::{generate, Benchmark};

fn main() {
    let base = experiment_config(big_flag());
    let footprint = footprint_sectors(&base);
    let requests = if big_flag() { 400_000 } else { 50_000 };
    let trace = generate(&Benchmark::Postmark.config(footprint, requests, 0xAB3));

    // fgmFTL reference (unaffected by the subpage latency).
    let mut fgm = FtlKind::Fgm.build(&base);
    precondition(fgm.as_mut(), FILL_FRACTION);
    let fgm_iops = run_trace_qd(fgm.as_mut(), &trace, 8).iops;

    println!("Ablation A3: subpage program latency (Postmark profile, {requests} requests)");
    println!("fgmFTL reference: {fgm_iops:.0} IOPS (full-page programs at 1600 us)");
    println!();
    let mut t = TextTable::new(["t_prog(subpage)", "subFTL IOPS", "gain vs fgmFTL"]);
    for us in [1600u64, 1450, 1300, 1100, 950, 800] {
        let mut timing = base.timing.clone();
        timing.program_subpage = SimDuration::from_micros(us);
        let cfg = FtlConfig {
            timing,
            ..base.clone()
        };
        let mut ftl = FtlKind::Sub.build(&cfg);
        precondition(ftl.as_mut(), FILL_FRACTION);
        let r = run_trace_qd(ftl.as_mut(), &trace, 8);
        t.row([
            format!("{us} us"),
            format!("{:.0}", r.iops),
            format!("{:+.1}%", (r.iops / fgm_iops - 1.0) * 100.0),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Expected: even at equal program latency (1600 us) subFTL keeps a\n\
         structural advantage (no fragmentation, fewer GCs); the measured\n\
         1300 us subpage program adds the latency share on top."
    );
}

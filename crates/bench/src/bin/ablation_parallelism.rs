//! **Ablation A7 — multi-channel parallelism** (paper §4.2: "subFTL is
//! developed to maximize I/O parallelism of a multi-channel architecture";
//! §5 evaluates on 8 channels × 4 chips).
//!
//! Scales the channel count at constant capacity and reports how each FTL's
//! throughput grows: striped allocation should let all three scale, with
//! subFTL keeping its relative advantage.

use esp_bench::{FtlKind, TextTable, FILL_FRACTION};
use esp_core::{precondition, run_trace_qd, FtlConfig};
use esp_nand::Geometry;
use esp_workload::{generate, SyntheticConfig};

fn main() {
    println!("Ablation A7: channel scaling at constant 512 MiB capacity (QD 16)");
    println!();
    let mut t = TextTable::new([
        "channels x ways",
        "cgmFTL IOPS",
        "fgmFTL IOPS",
        "subFTL IOPS",
        "sub/fgm",
    ]);
    for (channels, ways, bpc) in [
        (1u32, 1u32, 512u32),
        (2, 2, 128),
        (4, 4, 32),
        (8, 4, 16),
        (16, 4, 8),
    ] {
        let cfg = FtlConfig {
            geometry: Geometry {
                channels,
                chips_per_channel: ways,
                blocks_per_chip: bpc,
                pages_per_block: 64,
                subpages_per_page: 4,
                subpage_bytes: 4096,
            },
            ..FtlConfig::paper_default()
        };
        let footprint = (cfg.logical_sectors() as f64 * FILL_FRACTION) as u64;
        let trace = generate(&SyntheticConfig {
            footprint_sectors: footprint,
            requests: 40_000,
            r_small: 1.0,
            r_synch: 1.0,
            zipf_theta: 0.9,
            small_zone_sectors: Some((footprint / 64).max(64)),
            rewrite_distance: 512,
            seed: 0xAB7,
            ..SyntheticConfig::default()
        });
        let mut iops = [0.0f64; 3];
        for (k, kind) in FtlKind::ALL.into_iter().enumerate() {
            let mut ftl = kind.build(&cfg);
            precondition(ftl.as_mut(), FILL_FRACTION);
            iops[k] = run_trace_qd(ftl.as_mut(), &trace, 16).iops;
        }
        t.row([
            format!("{channels} x {ways}"),
            format!("{:.0}", iops[0]),
            format!("{:.0}", iops[1]),
            format!("{:.0}", iops[2]),
            format!("{:.2}", iops[2] / iops[1]),
        ]);
    }
    println!("{}", t.render());

    // Multi-plane dies: the other parallelism axis. Visible when chips are
    // few enough to be contended (here: a 2-chip device at QD 16).
    println!("Planes per chip (1 x 2 chips, QD 16, subFTL):");
    let mut t = TextTable::new(["planes", "subFTL IOPS"]);
    for planes in [1u32, 2, 4] {
        let cfg = FtlConfig {
            geometry: Geometry {
                channels: 1,
                chips_per_channel: 2,
                blocks_per_chip: 256,
                pages_per_block: 64,
                subpages_per_page: 4,
                subpage_bytes: 4096,
            },
            planes_per_chip: planes,
            ..FtlConfig::paper_default()
        };
        let footprint = (cfg.logical_sectors() as f64 * FILL_FRACTION) as u64;
        let trace = generate(&SyntheticConfig {
            footprint_sectors: footprint,
            requests: 40_000,
            r_small: 1.0,
            r_synch: 1.0,
            zipf_theta: 0.9,
            small_zone_sectors: Some((footprint / 64).max(64)),
            rewrite_distance: 512,
            seed: 0xAB7,
            ..SyntheticConfig::default()
        });
        let mut ftl = FtlKind::Sub.build(&cfg);
        precondition(ftl.as_mut(), FILL_FRACTION);
        let r = run_trace_qd(ftl.as_mut(), &trace, 16);
        t.row([planes.to_string(), format!("{:.0}", r.iops)]);
    }
    println!("{}", t.render());
    println!(
        "Expected: throughput grows with chip/channel count until host\n\
         concurrency (QD 16) is exhausted; subFTL holds its edge at every\n\
         width because its allocator stripes subpage programs the same way.\n\
         Extra planes help mainly by letting GC overlap host programs on\n\
         the same chip."
    );
}

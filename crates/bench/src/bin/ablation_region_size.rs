//! **Ablation A1 — subpage-region size** (the paper fixes it at 20 % of
//! flash, §4, trading fragmentation-free small writes against mapping
//! memory and full-page capacity).
//!
//! Sweeps the region fraction and reports subFTL IOPS, GC, request WAF and
//! the fine-grained mapping-table footprint on a Sysbench-like workload.

use esp_bench::{
    big_flag, experiment_config, footprint_sectors, FtlKind, TextTable, FILL_FRACTION,
};
use esp_core::{precondition, run_trace_qd, FtlConfig};
use esp_workload::{generate, Benchmark};

fn main() {
    let base = experiment_config(big_flag());
    let footprint = footprint_sectors(&base);
    let requests = if big_flag() { 400_000 } else { 50_000 };
    let trace = generate(&Benchmark::Sysbench.config(footprint, requests, 0xAB1));

    println!("Ablation A1: subpage-region size (Sysbench profile, {requests} requests)");
    println!();
    let mut t = TextTable::new([
        "region",
        "IOPS",
        "GC invocations",
        "erases",
        "request WAF",
        "migrations",
        "evictions",
    ]);
    for fraction in [0.07, 0.10, 0.15, 0.20, 0.30, 0.40] {
        let cfg = FtlConfig {
            subpage_region_fraction: fraction,
            // Keep the full-page region large enough to hold all data.
            overprovision: (0.05 + fraction + 0.05).min(0.5),
            ..base.clone()
        };
        if cfg.validate().is_err() {
            continue;
        }
        let mut ftl = FtlKind::Sub.build(&cfg);
        precondition(ftl.as_mut(), FILL_FRACTION);
        let r = run_trace_qd(ftl.as_mut(), &trace, 8);
        t.row([
            format!("{:.0}%", fraction * 100.0),
            format!("{:.0}", r.iops),
            r.stats.gc_invocations.to_string(),
            r.erases.to_string(),
            format!("{:.3}", r.stats.small_request_waf()),
            r.stats.lap_migrations.to_string(),
            (r.stats.cold_evictions + r.stats.retention_evictions).to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Expected: a too-small region thrashes (cold evictions, RMW) while\n\
         oversizing wastes capacity without further gains — 20% sits on the\n\
         flat part of the curve for small-write-dominated workloads."
    );
}

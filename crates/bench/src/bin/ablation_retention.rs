//! **Ablation A2 — retention-scrub threshold** (paper §4.3: evict subpages
//! older than 15 days against the 1-month device bound).
//!
//! Runs a *retention-stressed* workload — sparse writes over 40 simulated
//! days with a cold tail that genuinely ages — under different scrub
//! thresholds, and reports scrub traffic against the safety margin to the
//! worst-case device retention capability.
//!
//! `FtlConfig::validate` refuses thresholds at or beyond the 1-month bound,
//! so the unsafe regime is unreachable by construction; the trade is scrub
//! traffic (and its WAF cost) versus margin.

use esp_bench::{big_flag, experiment_config, TextTable, FILL_FRACTION};
use esp_core::{precondition, run_trace, Ftl, FtlConfig, SubFtl};
use esp_sim::SimDuration;
use esp_workload::{generate, SyntheticConfig};

fn main() {
    let base = experiment_config(big_flag());
    let requests = 9_000u64;
    // 40 days of sparse, mostly cold small writes — fewer total slots than
    // one subpage-region rotation, so physical copies age in place rather
    // than having their retention clocks refreshed by GC relocation.
    let inter_arrival = SimDuration::from_secs(40 * 86_400 / requests);
    let footprint = esp_bench::footprint_sectors(&base);
    let trace = generate(&SyntheticConfig {
        footprint_sectors: footprint,
        requests,
        r_small: 1.0,
        r_synch: 1.0,
        zipf_theta: 0.3,
        small_zone_sectors: Some(footprint / 12),
        inter_arrival,
        seed: 0xAB2,
        ..SyntheticConfig::default()
    });

    // Worst-case capability: an Npp^3 subpage on the most-worn block.
    let worst_days = base
        .retention
        .retention_capability(base.retention.reference_pe_cycles(), 3)
        .as_secs_f64()
        / 86_400.0;

    println!("Ablation A2: retention-scrub threshold ({requests} requests over 40 simulated days)");
    println!(
        "(worst-case subpage retention capability: {worst_days:.1} days; paper threshold: 15)"
    );
    println!();
    let mut t = TextTable::new([
        "threshold",
        "retention evictions",
        "request WAF",
        "flash writes (sectors)",
        "safety margin",
        "read faults",
    ]);
    for days in [5u64, 10, 15, 20, 25, 29] {
        let cfg = FtlConfig {
            retention_threshold: SimDuration::from_days(days),
            // Disable GC-driven cold eviction so every demotion in this
            // experiment is attributable to the retention scrubber alone.
            eviction_policy: esp_core::EvictionPolicy::KeepAll,
            ..base.clone()
        };
        let mut ftl = SubFtl::new(&cfg);
        precondition(&mut ftl, FILL_FRACTION);
        let r = run_trace(&mut ftl, &trace);
        // Probe: read every written sector well after the run.
        let probe_at = ftl.ssd().makespan() + SimDuration::from_days(5);
        ftl.maintain(probe_at);
        for lsn in (0..footprint / 2).step_by(7) {
            ftl.read(lsn, 1, probe_at);
        }
        t.row([
            format!("{days} days"),
            r.stats.retention_evictions.to_string(),
            format!("{:.3}", r.stats.small_request_waf()),
            (r.stats.flash_sectors_consumed + r.stats.gc_flash_sectors).to_string(),
            format!("{:.1} days", worst_days - days as f64),
            ftl.stats().read_faults.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Expected: aggressive thresholds evict more (higher WAF and scrub\n\
         traffic) for margin far beyond need; late thresholds minimize\n\
         traffic while `validate` guarantees they stay inside the device\n\
         bound — read faults are zero everywhere by construction."
    );
}

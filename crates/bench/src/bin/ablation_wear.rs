//! **Ablation A6 — wear leveling across regions** (paper §4.2: "blocks in
//! the subpage region are more rapidly worn out than those in the full-page
//! region. This unbalanced wearing problem is solved by using existing
//! wear-leveling algorithms" — block type is "decided at the program time",
//! so regions can swap blocks).
//!
//! Runs a long small-write churn with the cross-region swap threshold at
//! several settings and reports the per-block erase-count distribution.

use esp_bench::{
    bench_report, big_flag, experiment_config, footprint_sectors, write_bench, TextTable,
    FILL_FRACTION,
};
use esp_core::{precondition, run_trace_qd, Ftl, FtlConfig, SubFtl};
use esp_sim::{Json, RunningStats};
use esp_workload::{generate, SyntheticConfig};

fn wear_distribution(ftl: &SubFtl) -> (RunningStats, u32) {
    let ssd = ftl.ssd();
    let g = ssd.geometry().clone();
    let mut stats = RunningStats::new();
    let mut max = 0u32;
    for gbi in 0..g.block_count() {
        let pe = ssd.device().pe_cycles(g.block_addr(gbi));
        stats.record(f64::from(pe));
        max = max.max(pe);
    }
    (stats, max)
}

fn main() {
    let big = big_flag();
    let base = experiment_config(big);
    let footprint = footprint_sectors(&base);
    let requests = if big_flag() { 4_800_000 } else { 600_000 };
    let trace = generate(&SyntheticConfig {
        footprint_sectors: footprint,
        requests,
        r_small: 1.0,
        r_synch: 1.0,
        zipf_theta: 0.9,
        small_zone_sectors: Some((footprint / 64).max(64)),
        rewrite_distance: 512,
        seed: 0xAB6,
        ..SyntheticConfig::default()
    });

    println!("Ablation A6: cross-region wear leveling ({requests} small sync writes)");
    println!();
    let mut bench = bench_report("ablation_wear", &base, big);
    bench.meta("requests", Json::from(requests as u64));
    let mut t = TextTable::new([
        "swap threshold",
        "swaps",
        "rotations",
        "mean P/E",
        "max P/E",
        "P/E std dev",
        "IOPS",
    ]);
    // The sweep varies the cross-region swap threshold; the final arm adds
    // static wear leveling (cold-block rotation + wear-aware victims) at
    // the default threshold to show the combined flattening.
    for (label, delta, wl) in [
        ("off (u32::MAX)", u32::MAX, false),
        ("50 cycles", 50, false),
        ("20 cycles (default)", 20, false),
        ("5 cycles", 5, false),
        ("20 cycles + static wl", 20, true),
    ] {
        let cfg = FtlConfig {
            wear_delta_threshold: delta,
            wear_leveling: wl,
            ..base.clone()
        };
        let mut ftl = SubFtl::new(&cfg);
        precondition(&mut ftl, FILL_FRACTION);
        let r = run_trace_qd(&mut ftl, &trace, 8);
        let (dist, max) = wear_distribution(&ftl);
        t.row([
            label.to_string(),
            r.stats.wear_swaps.to_string(),
            r.stats.wear_level_migrations.to_string(),
            format!("{:.2}", dist.mean()),
            max.to_string(),
            format!("{:.2}", dist.std_dev()),
            format!("{:.0}", r.iops),
        ]);
        bench.push_run_with(
            label,
            &r,
            [
                ("swap_threshold".to_string(), Json::from(delta)),
                ("static_wear_leveling".to_string(), Json::from(wl)),
                ("pe_mean".to_string(), Json::from(dist.mean())),
                ("pe_max".to_string(), Json::from(max)),
                ("pe_std_dev".to_string(), Json::from(dist.std_dev())),
            ],
        );
    }
    println!("{}", t.render());
    write_bench(&bench);
    println!(
        "Expected: with swapping off, the 20% subpage region absorbs nearly\n\
         all erases and its blocks race ahead (high max and std dev); lower\n\
         thresholds trade a few block swaps for a flatter distribution —\n\
         longer device life at negligible IOPS cost."
    );
}

//! **Ablation A4 — write-buffer size sensitivity** (paper §1: the FGM
//! scheme depends on the buffer to merge small writes; subFTL should not,
//! because synchronous small writes bypass any merge opportunity anyway).
//!
//! Sweeps the DRAM write-buffer capacity under a sync-heavy and an
//! async-heavy small-write workload for fgmFTL and subFTL.

use esp_bench::{
    big_flag, experiment_config, footprint_sectors, FtlKind, TextTable, FILL_FRACTION,
};
use esp_core::{precondition, run_trace_qd, FtlConfig};
use esp_workload::{generate, SyntheticConfig};

fn main() {
    let base = experiment_config(big_flag());
    let footprint = footprint_sectors(&base);
    let requests = if big_flag() { 400_000 } else { 40_000 };

    println!("Ablation A4: write-buffer size ({requests} small-write requests)");
    println!();
    for (label, r_synch) in [
        ("sync-heavy (r_synch = 0.95)", 0.95),
        ("async (r_synch = 0.05)", 0.05),
    ] {
        let trace = generate(&SyntheticConfig {
            footprint_sectors: footprint,
            requests,
            r_small: 1.0,
            r_synch,
            zipf_theta: 0.8,
            small_zone_sectors: Some((footprint / 48).max(64)),
            rewrite_distance: 512,
            seed: 0xAB4,
            ..SyntheticConfig::default()
        });
        println!("{label}:");
        let mut t = TextTable::new(["buffer (sectors)", "fgmFTL IOPS", "subFTL IOPS", "sub/fgm"]);
        for buf in [16usize, 32, 64, 128, 256] {
            let cfg = FtlConfig {
                write_buffer_sectors: buf,
                ..base.clone()
            };
            let mut iops = [0.0f64; 2];
            for (k, kind) in [FtlKind::Fgm, FtlKind::Sub].into_iter().enumerate() {
                let mut ftl = kind.build(&cfg);
                precondition(ftl.as_mut(), FILL_FRACTION);
                iops[k] = run_trace_qd(ftl.as_mut(), &trace, 8).iops;
            }
            t.row([
                buf.to_string(),
                format!("{:.0}", iops[0]),
                format!("{:.0}", iops[1]),
                format!("{:.2}", iops[1] / iops[0]),
            ]);
        }
        println!("{}", t.render());
    }
    println!(
        "Expected: fgmFTL needs a large buffer to merge asynchronous small\n\
         writes, and no buffer saves it from synchronous ones; subFTL's\n\
         advantage is stable across buffer sizes."
    );
}

//! **benchcmp** — compare two `BENCH_*.json` reports and flag regressions.
//!
//! ```text
//! benchcmp baseline.json candidate.json [--threshold 0.10]
//! ```
//!
//! Runs are matched by `label`. For each matched run the throughput
//! metrics (`iops`, `write_bandwidth_mbps`, `sim_iops_per_core`) must not
//! *drop* by more than the threshold, and the cost metrics (latency
//! percentiles, WAF, erase count) must not *rise* by more than the
//! threshold. Exit status:
//!
//! * `0` — no regression beyond the threshold (improvements are fine);
//! * `1` — at least one regression (each is printed);
//! * `2` — usage, I/O, or schema error.
//!
//! The simulator is deterministic, so two runs of the same commit produce
//! byte-identical reports and compare clean at any threshold; CI uses this
//! as a cheap performance-regression gate (see `.github/workflows/ci.yml`).

use std::process::ExitCode;

use esp_core::validate_bench;
use esp_sim::Json;

/// Relative drop in a higher-is-better metric that counts as a regression.
const DEFAULT_THRESHOLD: f64 = 0.10;

/// Metric paths where *larger* is better. `sim_iops_per_core` is host-wall
/// based (simulated requests retired per host-core-second), so unlike the
/// simulated metrics it is *not* deterministic across runs; compare it only
/// with a generous `--threshold` that absorbs machine noise.
const HIGHER_IS_BETTER: [&str; 3] = ["iops", "write_bandwidth_mbps", "sim_iops_per_core"];

/// Metric paths where *smaller* is better.
const LOWER_IS_BETTER: [&str; 8] = [
    "latency.all.p50_ns",
    "latency.all.p95_ns",
    "latency.all.p99_ns",
    "latency.all.p999_ns",
    "latency.read.p99_ns",
    "latency.write.p99_ns",
    "waf.total",
    "erases",
];

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    validate_bench(&doc).map_err(|e| format!("{path}: {e}"))?;
    Ok(doc)
}

fn runs(doc: &Json) -> Vec<(String, &Json)> {
    let Some(Json::Arr(runs)) = doc.get("runs") else {
        return Vec::new();
    };
    runs.iter()
        .filter_map(|r| {
            r.get("label")
                .and_then(Json::as_str)
                .map(|l| (l.to_string(), r))
        })
        .collect()
}

struct Regression {
    label: String,
    metric: &'static str,
    base: f64,
    cand: f64,
    change: f64,
}

/// Relative change of `cand` against `base`, oriented so positive =
/// worse. `None` when the baseline is zero (nothing to be relative to) —
/// unless the candidate became nonzero latency/WAF from a zero baseline,
/// which still compares clean: a threshold on 0 is meaningless.
fn worsening(base: f64, cand: f64, lower_is_better: bool) -> Option<f64> {
    if base == 0.0 {
        return None;
    }
    let delta = (cand - base) / base;
    Some(if lower_is_better { delta } else { -delta })
}

fn compare(base: &Json, cand: &Json, threshold: f64) -> Vec<Regression> {
    let base_runs = runs(base);
    let cand_runs = runs(cand);
    let mut regressions = Vec::new();
    for (label, b) in &base_runs {
        let Some((_, c)) = cand_runs.iter().find(|(l, _)| l == label) else {
            println!("~ {label}: missing from candidate, skipped");
            continue;
        };
        let checks = HIGHER_IS_BETTER
            .iter()
            .map(|m| (*m, false))
            .chain(LOWER_IS_BETTER.iter().map(|m| (*m, true)));
        for (metric, lower) in checks {
            let (Some(bv), Some(cv)) = (
                b.path(metric).and_then(Json::as_f64),
                c.path(metric).and_then(Json::as_f64),
            ) else {
                continue;
            };
            let Some(w) = worsening(bv, cv, lower) else {
                continue;
            };
            if w > threshold {
                regressions.push(Regression {
                    label: label.clone(),
                    metric,
                    base: bv,
                    cand: cv,
                    change: w,
                });
            }
        }
    }
    regressions
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut threshold = DEFAULT_THRESHOLD;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold" => {
                let v = it.next().ok_or("--threshold needs a value")?;
                threshold = v.parse().map_err(|e| format!("bad --threshold: {e}"))?;
            }
            "--help" | "-h" => {
                println!("usage: benchcmp <baseline.json> <candidate.json> [--threshold 0.10]");
                return Ok(ExitCode::SUCCESS);
            }
            _ => paths.push(a.clone()),
        }
    }
    let [base_path, cand_path] = paths.as_slice() else {
        return Err("usage: benchcmp <baseline.json> <candidate.json> [--threshold 0.10]".into());
    };
    let base = load(base_path)?;
    let cand = load(cand_path)?;
    let (bn, cn) = (
        base.get("name").and_then(Json::as_str).unwrap_or("?"),
        cand.get("name").and_then(Json::as_str).unwrap_or("?"),
    );
    if bn != cn {
        println!("~ comparing different experiments: `{bn}` vs `{cn}`");
    }
    let matched = runs(&base).len();
    let regressions = compare(&base, &cand, threshold);
    if regressions.is_empty() {
        println!(
            "OK: {matched} run(s) of `{bn}` within {:.0}% of baseline",
            threshold * 100.0
        );
        return Ok(ExitCode::SUCCESS);
    }
    for r in &regressions {
        println!(
            "REGRESSION: {} / {}: {:.3} -> {:.3} ({:+.1}% worse)",
            r.label,
            r.metric,
            r.base,
            r.cand,
            r.change * 100.0
        );
    }
    println!(
        "{} regression(s) beyond {:.0}% in `{cn}`",
        regressions.len(),
        threshold * 100.0
    );
    Ok(ExitCode::FAILURE)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("benchcmp: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(runs: Vec<Json>) -> Json {
        Json::obj([("name", Json::from("t")), ("runs", Json::Arr(runs))])
    }

    fn run_json(label: &str, iops: f64, p99: u64, waf: f64) -> Json {
        Json::obj([
            ("label", Json::from(label)),
            ("iops", Json::from(iops)),
            (
                "latency",
                Json::obj([("all", Json::obj([("p99_ns", Json::from(p99))]))]),
            ),
            ("waf", Json::obj([("total", Json::from(waf))])),
        ])
    }

    /// Every regressing metric is collected — across metrics of one run
    /// *and* across runs — before the caller exits nonzero, not just the
    /// first one hit.
    #[test]
    fn all_regressions_are_reported_not_just_the_first() {
        let base = doc(vec![
            run_json("a", 1000.0, 100, 1.0),
            run_json("b", 1000.0, 100, 1.0),
        ]);
        // Run `a` regresses on three metrics at once, run `b` on one.
        let cand = doc(vec![
            run_json("a", 500.0, 500, 3.0),
            run_json("b", 1000.0, 400, 1.0),
        ]);
        let regs = compare(&base, &cand, 0.10);
        let seen: Vec<(String, &str)> = regs.iter().map(|r| (r.label.clone(), r.metric)).collect();
        assert_eq!(
            seen,
            vec![
                ("a".to_string(), "iops"),
                ("a".to_string(), "latency.all.p99_ns"),
                ("a".to_string(), "waf.total"),
                ("b".to_string(), "latency.all.p99_ns"),
            ]
        );
    }

    #[test]
    fn improvements_and_small_drifts_compare_clean() {
        let base = doc(vec![run_json("a", 1000.0, 100, 1.0)]);
        let cand = doc(vec![run_json("a", 1050.0, 105, 0.9)]);
        assert!(compare(&base, &cand, 0.10).is_empty());
    }

    #[test]
    fn zero_baseline_is_not_a_regression() {
        let base = doc(vec![run_json("a", 0.0, 0, 0.0)]);
        let cand = doc(vec![run_json("a", 10.0, 10, 1.0)]);
        assert!(compare(&base, &cand, 0.10).is_empty());
    }
}

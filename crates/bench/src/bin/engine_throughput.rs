//! **engine_throughput** — host-side simulation throughput on the Fig 8
//! workload matrix.
//!
//! Every other binary in this crate reports *simulated* metrics (IOPS the
//! modeled device would deliver). This one measures the *simulator*: how
//! many trace requests per second of host CPU the engine replays, cell by
//! cell over the same 5 benchmarks × 3 FTLs matrix as
//! `fig8_ftl_comparison`, at the same queue depth. It exists so that
//! engine-level refactors (the event engine, mapping-table layouts,
//! scheduler data structures) are *measured*, not asserted: the committed
//! baseline `bench/baselines/BENCH_engine_throughput.json` feeds the
//! `benchcmp` CI gate, and the pre-refactor snapshot
//! `bench/baselines/BENCH_engine_throughput_pre.json` records what the
//! engine did before the event-engine rework (compare the two with
//! `benchcmp` to see the speedup; EXPERIMENTS.md has the numbers).
//!
//! Methodology:
//!
//! * Each cell is generated, preconditioned, and replayed `TRIALS` times
//!   from scratch; the reported wall time is the **minimum** over trials
//!   (standard practice for wall benchmarks — the minimum is the run
//!   least disturbed by the host).
//! * Only the measured `run_trace_qd` replay is timed. Trace generation
//!   and preconditioning are setup, not engine steady state.
//! * Simulation is single-threaded by design, so "per host core" is
//!   simply requests / wall-seconds of the one replaying core
//!   (`host_cores = 1` is stamped in the metadata).
//! * The simulated results of every cell are still emitted as the
//!   standard run entries, so `benchcmp` also flags any *behavioral*
//!   drift (IOPS, WAF, erases, latency) alongside throughput
//!   regressions.

use esp_bench::{
    bench_report, big_flag, experiment_config, footprint_sectors, write_bench, FtlKind, TextTable,
    FILL_FRACTION,
};
use esp_core::{precondition, run_trace_qd, RunReport};
use esp_sim::Json;
use esp_workload::{generate, Benchmark};
use std::time::Instant;

/// Same host queue depth as `fig8_ftl_comparison`.
const QUEUE_DEPTH: usize = 8;

/// Full rebuild + replay repetitions per cell; minimum wall time wins.
const TRIALS: usize = 3;

fn main() {
    let cfg = experiment_config(big_flag());
    let footprint = footprint_sectors(&cfg);
    let requests = if big_flag() { 480_000 } else { 60_000 };

    println!(
        "Engine throughput: fig8 matrix, {requests} requests/cell, QD {QUEUE_DEPTH}, best of {TRIALS}"
    );
    println!();

    let mut tbl = TextTable::new(["benchmark", "ftl", "wall ms", "kreq/s/core"]);
    let mut out = bench_report("engine_throughput", &cfg, big_flag());
    out.meta("requests", Json::from(requests));
    out.meta("qd", Json::from(QUEUE_DEPTH as u64));
    out.meta("trials", Json::from(TRIALS as u64));
    out.meta("host_cores", Json::from(1u64));

    let mut total_requests = 0u64;
    let mut total_wall_s = 0.0f64;
    let mut log_rate_sum = 0.0f64;
    let mut cells = 0u32;

    for bench in Benchmark::ALL {
        let trace = generate(&bench.config(footprint, requests, 0xF180));
        for kind in FtlKind::ALL {
            let mut best: Option<(f64, RunReport)> = None;
            for _ in 0..TRIALS {
                let mut ftl = kind.build(&cfg);
                precondition(ftl.as_mut(), FILL_FRACTION);
                let t = Instant::now();
                let report = run_trace_qd(ftl.as_mut(), &trace, QUEUE_DEPTH);
                let wall = t.elapsed().as_secs_f64();
                assert_eq!(
                    report.stats.read_faults,
                    0,
                    "{} surfaced read faults on {bench}",
                    kind.name()
                );
                if best.as_ref().is_none_or(|(w, _)| wall < *w) {
                    best = Some((wall, report));
                }
            }
            let (wall, report) = best.expect("at least one trial");
            let rate = requests as f64 / wall;
            total_requests += requests;
            total_wall_s += wall;
            log_rate_sum += rate.ln();
            cells += 1;
            tbl.row([
                bench.name().to_string(),
                kind.name().to_string(),
                format!("{:.1}", wall * 1e3),
                format!("{:.0}", rate / 1e3),
            ]);
            out.push_run_with(
                &format!("{} {bench}", kind.name()),
                &report,
                [
                    ("host_wall_ns".to_string(), Json::from(wall * 1e9)),
                    ("sim_iops_per_core".to_string(), Json::from(rate)),
                ],
            );
        }
    }

    let geomean = (log_rate_sum / f64::from(cells)).exp();
    out.meta("sim_iops_per_core_geomean", Json::from(geomean));
    out.meta(
        "sim_iops_per_core_aggregate",
        Json::from(total_requests as f64 / total_wall_s),
    );

    println!("{}", tbl.render());
    println!(
        "matrix geomean {:.0} kreq/s/core, aggregate {:.0} kreq/s/core",
        geomean / 1e3,
        total_requests as f64 / total_wall_s / 1e3
    );
    println!();
    write_bench(&out);
}

//! **Fig 1 — Trend of the NAND page size and capacity** (paper §1).
//!
//! Background data, not an experiment: NAND device capacity and page size
//! versus process technology node, 2000 → 2016. Values follow the paper's
//! figure (page size growing 256 B → 16 KB as capacity grows to 768 Gb).

use esp_bench::TextTable;

fn main() {
    println!("Fig 1: trend of the NAND page size and capacity");
    println!();
    let mut t = TextTable::new(["node (nm)", "~year", "capacity (Gb)", "page size (KB)"]);
    let rows: [(&str, &str, f64, f64); 12] = [
        ("300", "2000", 0.25, 0.25),
        ("200", "2001", 0.5, 0.5),
        ("130", "2003", 1.0, 2.0),
        ("70", "2005", 8.0, 2.0),
        ("60", "2006", 16.0, 4.0),
        ("50", "2007", 32.0, 4.0),
        ("4x", "2008", 64.0, 8.0),
        ("3x", "2010", 128.0, 8.0),
        ("2x", "2011", 128.0, 8.0),
        ("2y", "2013", 256.0, 16.0),
        ("1x", "2015", 512.0, 16.0),
        ("1y", "2016", 768.0, 16.0),
    ];
    for (node, year, cap, page) in rows {
        t.row([
            node.to_string(),
            year.to_string(),
            format!("{cap}"),
            format!("{page}"),
        ]);
    }
    println!("{}", t.render());
    println!(
        "The large-page problem: with 16 KB pages, any write below 16 KB is\n\
         a *small* write and wastes page space under conventional mapping."
    );
}

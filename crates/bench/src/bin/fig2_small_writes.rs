//! **Fig 2 — Effects of small writes** (paper §2).
//!
//! Panel (a): normalized performance of the CGM and FGM schemes as
//! `r_small` sweeps 0 → 1 for `r_synch` ∈ {0, 0.3, 0.5, 1}, normalized to
//! the FGM scheme at `r_small = r_synch = 0` (the fastest point). Because
//! the replay issues a fixed *data volume* per point, performance is
//! reported as volume-normalized throughput (host bytes per second) — the
//! IOPS proxy appropriate for fixed benchmark work.
//!
//! Panel (b): number of GC invocations in the FGM scheme over the same
//! sweep, normalized to `r_small = r_synch = 1` (the worst point).
//!
//! Every sweep point writes the same total data volume (the paper replays
//! fixed benchmark work, not fixed request counts), with a multithreaded
//! host (`queue depth 8` — Sysbench is multithreaded).
//!
//! Expected shape (paper): IOPS falls as `r_small` and `r_synch` grow; CGM
//! sits well below FGM throughout (RMW-dominated), including at
//! `r_small = 0`, where misaligned large writes split into RMW-causing
//! pieces (footnote 1); FGM's GC invocations rise with both ratios.

use esp_bench::{
    bench_report, big_flag, experiment_config, footprint_sectors, write_bench, FtlKind, TextTable,
    FILL_FRACTION,
};
use esp_core::{precondition, run_trace_qd};
use esp_sim::Json;
use esp_workload::{generate, SyntheticConfig};

const QUEUE_DEPTH: usize = 8;

fn main() {
    let cfg = experiment_config(big_flag());
    let footprint = footprint_sectors(&cfg);
    let volume_sectors: u64 = if big_flag() { 720_000 } else { 90_000 };
    let r_smalls = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
    let r_synchs = [0.0, 0.3, 0.5, 1.0];

    println!(
        "Fig 2: effects of small writes ({} written sectors/point, footprint {} sectors, QD {})",
        volume_sectors, footprint, QUEUE_DEPTH
    );
    println!();

    let mut iops = vec![vec![[0.0f64; 2]; r_synchs.len()]; r_smalls.len()];
    let mut gcs = vec![vec![0u64; r_synchs.len()]; r_smalls.len()];
    let mut bench = bench_report("fig2_small_writes", &cfg, big_flag());
    bench.meta("volume_sectors", Json::from(volume_sectors));
    bench.meta("qd", Json::from(QUEUE_DEPTH as u64));

    for (i, &r_small) in r_smalls.iter().enumerate() {
        for (j, &r_synch) in r_synchs.iter().enumerate() {
            // Fixed written volume: adjust the request count for the mean
            // request size at this mix (small ~1.17 sectors, large ~7.33).
            let mean_sectors = r_small * 1.17 + (1.0 - r_small) * 7.33;
            let requests = (volume_sectors as f64 / mean_sectors) as u64;
            let trace = generate(&SyntheticConfig {
                footprint_sectors: footprint,
                requests,
                r_small,
                r_synch,
                // Footnote 1: some large writes are not 16 KB-aligned,
                // which splits them into RMW-causing pieces under CGM.
                misaligned_large_fraction: 0.25,
                // The small-write working set scales with the small-write
                // share, keeping per-sector churn constant across the sweep.
                small_zone_sectors: Some(
                    ((footprint as f64 * 0.3 * r_small.max(0.2)) as u64).max(64),
                ),
                zipf_theta: 0.7,
                small_sector_weights: [16, 1, 1],
                rewrite_distance: 512,
                seed: 0xF162,
                ..SyntheticConfig::default()
            });
            for (k, kind) in [FtlKind::Fgm, FtlKind::Cgm].into_iter().enumerate() {
                let mut ftl = kind.build(&cfg);
                precondition(ftl.as_mut(), FILL_FRACTION);
                let report = run_trace_qd(ftl.as_mut(), &trace, QUEUE_DEPTH);
                iops[i][j][k] = report.write_bandwidth_mbps();
                if kind == FtlKind::Fgm {
                    gcs[i][j] = report.stats.gc_invocations;
                }
                bench.push_run(
                    &format!("{} rsmall={r_small} rsynch={r_synch}", kind.name()),
                    &report,
                );
            }
        }
    }

    let base_iops = iops[0][0][0]; // FGM at (0, 0)
    let base_gc = gcs[r_smalls.len() - 1][r_synchs.len() - 1].max(1); // FGM at (1, 1)

    println!("(a) Normalized throughput (1.0 = FGM at r_small = r_synch = 0)");
    let mut t = TextTable::new(
        ["r_small".to_string()].into_iter().chain(
            r_synchs
                .iter()
                .flat_map(|r| [format!("FGM rsynch({r})"), format!("CGM rsynch({r})")]),
        ),
    );
    for (i, &r_small) in r_smalls.iter().enumerate() {
        let mut cells = vec![format!("{r_small:.1}")];
        for pair in &iops[i] {
            cells.push(format!("{:.3}", pair[0] / base_iops));
            cells.push(format!("{:.3}", pair[1] / base_iops));
        }
        t.row(cells);
    }
    println!("{}", t.render());

    println!("(b) Normalized GC invocations in FGM (1.0 = r_small = r_synch = 1)");
    let mut t = TextTable::new(
        ["r_small".to_string()]
            .into_iter()
            .chain(r_synchs.iter().map(|r| format!("rsynch({r})"))),
    );
    for (i, &r_small) in r_smalls.iter().enumerate() {
        let mut cells = vec![format!("{r_small:.1}")];
        for &gc in &gcs[i] {
            cells.push(format!("{:.3}", gc as f64 / base_gc as f64));
        }
        t.row(cells);
    }
    println!("{}", t.render());
    write_bench(&bench);
}

//! **Fig 4 — Effect of subpage programming on NAND reliability** (paper
//! §3.2).
//!
//! Reproduces the paper's two-subpage scenario on the device model:
//!
//! * (a) subpage sp1 is programmed — a normal program, data intact;
//! * (b) subpage sp2 is then programmed with no intervening erase — sp1 is
//!   destroyed (BER beyond the ECC limit), while sp2 holds data with a
//!   *reduced retention capability* (it became an `Npp^1`-type subpage).

use esp_bench::TextTable;
use esp_nand::{Geometry, NandDevice, Oob, SubpageState};
use esp_sim::{SimDuration, SimTime};

fn state_name(s: &SubpageState) -> String {
    match s {
        SubpageState::Erased => "erased".into(),
        SubpageState::Destroyed => "DESTROYED (uncorrectable)".into(),
        SubpageState::Torn => "TORN (power cut mid-program)".into(),
        SubpageState::Written(w) => format!("written (Npp^{})", w.npp),
    }
}

fn main() {
    let mut dev = NandDevice::new(Geometry::tiny());
    dev.precycle(1000); // the paper measures after 1K P/E cycles
    let page = dev.geometry().block_addr(0).page(0);

    println!("Fig 4: effect of erase-free subpage programming on reliability");
    println!("(two subpages of one page; device pre-cycled to 1K P/E)");
    println!();

    let mut t = TextTable::new(["step", "sp1 state", "sp2 state"]);
    t.row([
        "erased page".to_string(),
        state_name(dev.subpage_state(page.subpage(0))),
        state_name(dev.subpage_state(page.subpage(1))),
    ]);

    dev.program_subpage(page.subpage(0), Oob { lsn: 1, seq: 1 }, SimTime::ZERO)
        .expect("first subpage program");
    t.row([
        "program sp1 @ t1".to_string(),
        state_name(dev.subpage_state(page.subpage(0))),
        state_name(dev.subpage_state(page.subpage(1))),
    ]);

    dev.program_subpage(page.subpage(1), Oob { lsn: 2, seq: 2 }, SimTime::ZERO)
        .expect("second subpage program, erase-free");
    t.row([
        "program sp2 @ t1+dt".to_string(),
        state_name(dev.subpage_state(page.subpage(0))),
        state_name(dev.subpage_state(page.subpage(1))),
    ]);
    println!("{}", t.render());

    println!("Read-back at increasing retention ages:");
    let mut t = TextTable::new(["age", "read sp1", "read sp2"]);
    for months in [0u64, 1, 2, 6] {
        let now = SimTime::ZERO + SimDuration::from_months(months);
        let r1 = dev.read_subpage(page.subpage(0), now);
        let r2 = dev.read_subpage(page.subpage(1), now);
        let fmt = |r: Result<Oob, esp_nand::ReadFault>| match r {
            Ok(o) => format!("ok (lsn {})", o.lsn),
            Err(e) => format!("FAIL: {e}"),
        };
        t.row([format!("{months} month(s)"), fmt(r1), fmt(r2)]);
    }
    println!("{}", t.render());

    let model = dev.retention_model().clone();
    println!(
        "sp2 retention capability (Npp^1 @ 1K P/E): {:.1} days (vs {:.1} days for Npp^0)",
        model.retention_capability(1000, 1).as_secs_f64() / 86_400.0,
        model.retention_capability(1000, 0).as_secs_f64() / 86_400.0,
    );
    println!(
        "Conclusion: programming sp2 destroyed sp1's data but sp2 itself\n\
         stores data correctly within a reduced retention window — the ESP\n\
         discipline (program a subpage only when no other subpage of the\n\
         page holds valid data) makes erase-free subpage writes safe."
    );
}

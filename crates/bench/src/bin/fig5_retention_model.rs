//! **Fig 5 — Impact of previous program operations on the retention
//! capability of subpages** (paper §3.3).
//!
//! Characterization sweep over the device model: build `Npp^0..Npp^3`
//! subpages on a 1K-P/E-cycled device (the paper's endurance precondition),
//! then report the normalized retention BER right after cycling and after
//! 1- and 2-month retention bakes.
//!
//! Expected shape (paper): BER grows with `Npp` (+41 % at `Npp^3` right
//! after cycling) and with retention time; `Npp^3` stays below the ECC
//! limit at 1 month but crosses it at 2 months ("uncorrectable errors").

use esp_bench::TextTable;
use esp_nand::{Geometry, NandDevice, Oob, RetentionModel};
use esp_sim::{SimDuration, SimTime};

fn main() {
    let model = RetentionModel::paper_default();
    let pe = model.reference_pe_cycles();

    println!("Fig 5: normalized retention BER vs Npp type (device pre-cycled to {pe} P/E)");
    println!(
        "ECC correction limit: {:.2} (normalized)",
        model.ecc_limit()
    );
    println!();

    let mut t = TextTable::new([
        "Npp type",
        "right after 1K P/E",
        "after 1 month",
        "after 2 months",
        "retention capability",
    ]);
    for npp in 0..4u32 {
        let cells: Vec<String> = [0u64, 1, 2]
            .iter()
            .map(|&m| {
                let ber = model.normalized_ber(pe, npp, SimDuration::from_months(m));
                if ber > model.ecc_limit() {
                    format!("{ber:.3} UNCORRECTABLE")
                } else {
                    format!("{ber:.3}")
                }
            })
            .collect();
        let cap = model.retention_capability(pe, npp);
        t.row([
            format!("Npp^{npp}"),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
            format!("{:.1} days", cap.as_secs_f64() / 86_400.0),
        ]);
    }
    println!("{}", t.render());

    let uplift = model.normalized_ber(pe, 3, SimDuration::ZERO)
        / model.normalized_ber(pe, 0, SimDuration::ZERO)
        - 1.0;
    println!(
        "Npp^3 uplift right after cycling: {:.0}% (paper: 41%)",
        uplift * 100.0
    );
    println!();

    // End-to-end characterization against the actual device with
    // page-to-page process variation enabled (the paper's Fig 5 plots
    // min/avg/max across 81,920 measured pages): program Npp^0..3 subpages
    // across many blocks, read back at each age, and report the per-block
    // BER spread plus survival counts.
    let varied = RetentionModel::paper_default().with_variation(0.08);
    let mut dev = NandDevice::with_models(
        Geometry::paper_default(),
        esp_nand::NandTiming::paper_default(),
        varied.clone(),
    );
    dev.precycle(pe);
    const BLOCKS: u32 = 64;
    println!(
        "Device characterization across {BLOCKS} blocks per Npp type          (process variation +/-8%):"
    );
    let mut t = TextTable::new([
        "Npp type",
        "BER @1mo min/avg/max",
        "survive 1K P/E",
        "1 month",
        "2 months",
    ]);
    for npp in 0..4u8 {
        let mut cells = Vec::new();
        for &months in &[0u64, 1, 2] {
            let mut ok = 0;
            for b in 0..BLOCKS {
                let page = dev.geometry().block_addr(b).page(u32::from(npp));
                let addr = page.subpage(npp);
                if months == 0 {
                    // Build an Npp^k subpage: k prior programs, then ours.
                    for prior in 0..npp {
                        dev.program_subpage(
                            page.subpage(prior),
                            Oob {
                                lsn: u64::from(b),
                                seq: 0,
                            },
                            SimTime::ZERO,
                        )
                        .expect("prior program");
                    }
                    dev.program_subpage(
                        addr,
                        Oob {
                            lsn: u64::from(b),
                            seq: 1,
                        },
                        SimTime::ZERO,
                    )
                    .expect("characterization program");
                }
                let now = SimTime::ZERO + SimDuration::from_months(months);
                if dev.read_subpage(addr, now).is_ok() {
                    ok += 1;
                }
            }
            cells.push(format!("{}/{}", ok, BLOCKS));
        }
        let bers: Vec<f64> = (0..BLOCKS)
            .map(|b| {
                varied.normalized_ber_on_block(
                    u64::from(b),
                    pe,
                    u32::from(npp),
                    SimDuration::from_months(1),
                )
            })
            .collect();
        let min = bers.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = bers.iter().cloned().fold(0.0f64, f64::max);
        let avg = bers.iter().sum::<f64>() / bers.len() as f64;
        t.row([
            format!("Npp^{npp}"),
            format!("{min:.2}/{avg:.2}/{max:.2}"),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "subFTL's conservative rule (§3.3): treat every subpage as holding\n\
         data safely for one month only, and evict at 15 days (§4.3)."
    );
}

//! **Fig 7 — subFTL's writing policy in the subpage region** (paper §4.2).
//!
//! Walks the paper's literal example on a miniature region of two blocks
//! (B_X, B_Y) with four pages of four subpages each:
//!
//! * (b) the request sequence R = ⟨0, 1, 2, 3, 1, 2, 3, 7⟩ fills the 0th
//!   subpages of both blocks;
//! * (c) three more requests ⟨7, 8, 9⟩ force lap 1: B_X (fewest valid
//!   subpages) is selected, its surviving subpage (sector 0) migrates to
//!   the next subpage of the same page, and the new data lands in the
//!   following pages.

use esp_core::{Ftl, FtlConfig, SubFtl};
use esp_nand::{Geometry, SubpageState};
use esp_sim::SimTime;

/// Prints the physical state of the first `blocks` subpage-region blocks.
fn dump_region(ftl: &SubFtl, label: &str) {
    println!("{label}:");
    let ssd = ftl.ssd();
    let g = ssd.geometry();
    // The subpage region occupies blocks 0..3 of the chip; block 0 is the
    // GC reserve, so the example's B_X and B_Y are blocks 1 and 2.
    for (name, gbi) in [("B_X", 1u32), ("B_Y", 2u32)] {
        print!("  {name}: ");
        for page in 0..g.pages_per_block {
            let mut cells = Vec::new();
            for slot in 0..g.subpages_per_page as u8 {
                let addr = g.block_addr(gbi).page(page).subpage(slot);
                let c = match ssd.device().subpage_state(addr) {
                    SubpageState::Erased => ".".to_string(),
                    SubpageState::Destroyed => "x".to_string(),
                    SubpageState::Torn => "t".to_string(),
                    SubpageState::Written(w) => match w.oob {
                        Some(o) => o.lsn.to_string(),
                        None => "p".to_string(),
                    },
                };
                cells.push(c);
            }
            print!("[{}] ", cells.join(" "));
        }
        println!();
    }
    println!("  (columns are subpage slots; '.' erased, 'x' destroyed stale data)");
    println!();
}

fn main() {
    // Two subpage-region blocks per chip on a tiny single-purpose device.
    let cfg = FtlConfig {
        geometry: Geometry {
            channels: 1,
            chips_per_channel: 1,
            blocks_per_chip: 16,
            pages_per_block: 4,
            subpages_per_page: 4,
            subpage_bytes: 4096,
        },
        overprovision: 0.6,
        subpage_region_fraction: 0.19, // 3 blocks: B_X, B_Y + the reserve
        write_buffer_sectors: 4,
        ..FtlConfig::paper_default()
    };
    let mut ftl = SubFtl::new(&cfg);

    println!("Fig 7: subFTL writing policy in the subpage region");
    println!("(B_X, B_Y: 4 pages x 4 subpages each; sectors are 4 KB writes)");
    println!();
    dump_region(&ftl, "(a) initial state");

    let mut clock = SimTime::ZERO;
    for &lsn in &[0u64, 1, 2, 3, 1, 2, 3, 7] {
        clock = ftl.write(lsn, 1, true, clock);
    }
    dump_region(&ftl, "(b) after R = <0, 1, 2, 3, 1, 2, 3, 7>");
    println!(
        "   Old versions of 1, 2, 3 in B_X are stale; only sector 0 in B_X\n\
         is still valid. All 0th subpages are used up."
    );
    println!();

    for &lsn in &[7u64, 8, 9] {
        clock = ftl.write(lsn, 1, true, clock);
    }
    dump_region(&ftl, "(c) after R = <7, 8, 9>");
    println!(
        "   Lap 1 selected the block with the fewest valid subpages; the\n\
         surviving sector 0 migrated to the next subpage of its own page\n\
         (destroying only its stale old copy), then 7, 8, 9 filled the\n\
         following pages' next subpages."
    );
    println!();
    println!(
        "lap migrations: {}   subpage programs: {}   erases: {}",
        ftl.stats().lap_migrations,
        ftl.ssd().device().stats().subpage_programs,
        ftl.ssd().device().stats().erases,
    );
    // Everything still readable.
    for lsn in [0u64, 1, 2, 3, 7, 8, 9] {
        ftl.read(lsn, 1, clock);
    }
    assert_eq!(ftl.stats().read_faults, 0);
    println!("all live sectors read back correctly (0 faults)");
}

//! **Fig 8 — Performance comparisons of three FTLs** (paper §5).
//!
//! Panel (a): IOPS of cgmFTL / fgmFTL / subFTL under the five benchmarks,
//! normalized per benchmark to cgmFTL = 1.0.
//!
//! Panel (b): GC invocations of fgmFTL and subFTL, normalized per benchmark
//! to subFTL = 1.0.
//!
//! Expected shape (paper): cgmFTL worst everywhere (RMW-bound); subFTL beats
//! fgmFTL on every benchmark, with the largest gains on the sync-small-write
//! benchmarks (Sysbench / Varmail / Postmark — paper: up to +74.3 % IOPS
//! over fgmFTL) and modest gains on YCSB / TPC-C (paper: +19.3 % / +10.3 %);
//! fgmFTL's GC invocations exceed subFTL's by up to ~2.8× (the paper's
//! "+177 %").

use esp_bench::{
    bench_report, big_flag, experiment_config, footprint_sectors, gc_policy_flag, write_bench,
    FtlKind, TextTable, FILL_FRACTION,
};
use esp_core::{precondition, run_trace_qd, GcPolicyKind};
use esp_sim::Json;
use esp_workload::{generate, Benchmark};

/// The paper's benchmarks are multithreaded; replay with 8 host threads.
const QUEUE_DEPTH: usize = 8;

fn main() {
    let mut cfg = experiment_config(big_flag());
    cfg.gc_policy = gc_policy_flag();
    let footprint = footprint_sectors(&cfg);
    let requests = if big_flag() { 480_000 } else { 60_000 };

    println!(
        "Fig 8: three-FTL comparison ({} requests/benchmark, footprint {} sectors, {} GC)",
        requests,
        footprint,
        cfg.gc_policy.name()
    );
    println!();

    let mut iops_tbl = TextTable::new(["benchmark", "cgmFTL", "fgmFTL", "subFTL", "sub/fgm gain"]);
    let mut gc_tbl = TextTable::new(["benchmark", "fgmFTL GCs", "subFTL GCs", "fgm/sub ratio"]);
    let mut waf_rows = Vec::new();
    let mut out = bench_report("fig8_ftl_comparison", &cfg, big_flag());
    out.meta("requests", Json::from(requests));
    out.meta("qd", Json::from(QUEUE_DEPTH as u64));
    if cfg.gc_policy != GcPolicyKind::Greedy {
        out.meta("gc_policy", Json::from(cfg.gc_policy.name()));
    }

    for bench in Benchmark::ALL {
        let trace = generate(&bench.config(footprint, requests, 0xF180));
        let mut iops = [0.0f64; 3];
        let mut gc = [0u64; 3];
        let mut erases = [0u64; 3];
        for (k, kind) in FtlKind::ALL.into_iter().enumerate() {
            let mut ftl = kind.build(&cfg);
            precondition(ftl.as_mut(), FILL_FRACTION);
            let report = run_trace_qd(ftl.as_mut(), &trace, QUEUE_DEPTH);
            assert_eq!(
                report.stats.read_faults,
                0,
                "{} surfaced read faults on {bench}",
                kind.name()
            );
            iops[k] = report.iops;
            gc[k] = report.stats.gc_invocations;
            erases[k] = report.erases;
            out.push_run_with(
                &format!("{} {bench}", kind.name()),
                &report,
                [(
                    "mapping_memory_bytes".to_string(),
                    Json::from(ftl.mapping_memory_bytes()),
                )],
            );
            if kind == FtlKind::Sub {
                waf_rows.push((
                    bench,
                    report.stats.small_write_fraction(),
                    report.stats.small_request_waf(),
                ));
            }
        }
        iops_tbl.row([
            bench.name().to_string(),
            "1.000".to_string(),
            format!("{:.3}", iops[1] / iops[0]),
            format!("{:.3}", iops[2] / iops[0]),
            format!("{:+.1}%", (iops[2] / iops[1] - 1.0) * 100.0),
        ]);
        gc_tbl.row([
            bench.name().to_string(),
            gc[1].to_string(),
            gc[2].to_string(),
            format!("{:.2}x", gc[1] as f64 / gc[2].max(1) as f64),
        ]);
    }

    println!("(a) Normalized IOPS (cgmFTL = 1.0 per benchmark)");
    println!("{}", iops_tbl.render());
    println!("(b) GC invocations (lifetime proxy; fewer is better)");
    println!("{}", gc_tbl.render());

    println!("subFTL per-benchmark small-write profile (cross-check for Table 1):");
    let mut t = TextTable::new(["benchmark", "% small writes", "avg request WAF"]);
    for (b, frac, waf) in waf_rows {
        t.row([
            b.name().to_string(),
            format!("{:.1}%", frac * 100.0),
            format!("{waf:.3}"),
        ]);
    }
    println!("{}", t.render());
    write_bench(&out);
}

//! **Fleet degraded-mode experiment** — the headline tradeoff of the
//! `esp-array` layer: what a device loss costs the host, and how rebuild
//! throttling trades recovery speed against host tail latency.
//!
//! Four arms replay the same seeded workload over a 3-shard rotating-parity
//! array of subFTL devices:
//!
//! * `healthy` — no fault: the striping/parity baseline.
//! * `degraded` — device 1 dies a third of the way into the run, no spare:
//!   every read landing on the dead shard is reconstructed from the
//!   survivors (steady-state degraded operation).
//! * `rebuild_fast` / `rebuild_slow` — same death with a hot spare
//!   attached, background rebuild throttled at 50 µs vs 2 ms between
//!   stripes: the rebuild-rate vs host-p99 tradeoff.
//!
//! The death point is *calibrated, not guessed*: the healthy arm runs
//! first and records the victim shard's NAND-command count after
//! preconditioning and after the replay; the faulted arms arm their death
//! latch one third into that command window. All four arms are
//! deterministic for a given seed.
//!
//! Fleet-level percentiles aggregate the per-arm read-latency histograms
//! with [`HdrHistogram::merge`] — the same bucket-wise merge the
//! multi-core sweep driver uses.
//!
//! Invariants asserted here (and locked by the committed baseline +
//! `benchcmp` gate in CI): zero data loss on every parity arm, degraded
//! reads appear only after the death, and the fast rebuild makes at least
//! as much progress as the slow one.

use esp_array::{shard_configs, ArrayConfig, ArrayHealth, EspArray};
use esp_bench::{bench_report, big_flag, write_bench, FtlKind, TextTable, FILL_FRACTION};
use esp_core::{precondition, run_trace_qd, Ftl, FtlConfig, RunReport};
use esp_nand::Geometry;
use esp_sim::{par_map, HdrHistogram, Json, SimDuration};
use esp_workload::{generate, SyntheticConfig};

const QUEUE_DEPTH: usize = 32;
const SHARDS: usize = 3;
const CHUNK_SECTORS: u64 = 4;
const REBUILD_FAST_US: u64 = 50;
const REBUILD_SLOW_US: u64 = 2000;
/// Which device the fault kills (a data/parity shard, not the spare).
const VICTIM: usize = 1;

/// Per-shard device: a quarter of the experiment geometry (the fleet
/// multiplies capacity back up by the shard count), full size with
/// `--big`.
fn shard_config(big: bool) -> FtlConfig {
    let geometry = if big {
        Geometry::paper_default()
    } else {
        Geometry {
            channels: 4,
            chips_per_channel: 2,
            blocks_per_chip: 16,
            pages_per_block: 64,
            subpages_per_page: 4,
            subpage_bytes: 4096,
        }
    };
    FtlConfig {
        geometry,
        ..FtlConfig::paper_default()
    }
}

struct Arm {
    label: &'static str,
    spare: bool,
    /// `None` = no fault; `Some(op)` arms the victim's death latch.
    die_at_op: Option<u64>,
    rebuild_interval: SimDuration,
}

struct ArmResult {
    label: &'static str,
    report: RunReport,
    health: ArrayHealth,
    stats: esp_array::ArrayStats,
}

fn build_array(
    cfg: &FtlConfig,
    spare: bool,
    die_at_op: Option<u64>,
    interval: SimDuration,
) -> EspArray {
    let acfg = ArrayConfig {
        shards: SHARDS,
        parity: true,
        spare,
        chunk_sectors: CHUNK_SECTORS,
        rebuild_interval: interval,
        fail_on_eol: false,
    };
    let configs = shard_configs(
        cfg,
        acfg.devices(),
        die_at_op.map(|op| (VICTIM, Some(op), None)),
    );
    let shards = configs
        .iter()
        .map(|c| FtlKind::Sub.build(c))
        .collect::<Vec<_>>();
    EspArray::new(acfg, shards)
}

fn run_arm(cfg: &FtlConfig, arm: &Arm, trace: &esp_workload::Trace) -> ArmResult {
    let mut arr = build_array(cfg, arm.spare, arm.die_at_op, arm.rebuild_interval);
    precondition(&mut arr, FILL_FRACTION);
    let report = run_trace_qd(&mut arr, trace, QUEUE_DEPTH);
    ArmResult {
        label: arm.label,
        report,
        health: arr.health(),
        stats: *arr.array_stats(),
    }
}

fn main() {
    let big = big_flag();
    let cfg = shard_config(big);
    let requests = if big { 240_000 } else { 30_000 };
    let acfg_probe = ArrayConfig {
        shards: SHARDS,
        parity: true,
        spare: false,
        chunk_sectors: CHUNK_SECTORS,
        rebuild_interval: SimDuration::from_micros(REBUILD_FAST_US),
        fail_on_eol: false,
    };
    let host_sectors = {
        let probe = build_array(&cfg, false, None, acfg_probe.rebuild_interval);
        probe.logical_sectors()
    };
    let footprint = (host_sectors as f64 * FILL_FRACTION) as u64;
    // Read-dominant: degraded operation hurts reads (every read landing
    // on the dead shard fans out to all survivors), while writes *shrink*
    // after a device loss (no data write to the dead shard, no parity
    // update on dead-parity rows) — a write-heavy mix would mask the
    // reconstruction overhead this figure is about.
    let trace = generate(&SyntheticConfig {
        footprint_sectors: footprint,
        requests,
        r_small: 0.5,
        r_synch: 0.5,
        read_fraction: 0.9,
        zipf_theta: 0.9,
        seed: 0xF1EE7,
        ..SyntheticConfig::default()
    });

    println!(
        "Fleet degraded-mode: {SHARDS}-shard rotating-parity subFTL array \
         ({requests} requests, footprint {footprint} sectors)"
    );
    println!();

    // Calibrate the death point from the healthy arm: the victim shard's
    // NAND-command count after preconditioning and after the replay.
    let (healthy, die_at_op) = {
        let mut arr = build_array(&cfg, false, None, acfg_probe.rebuild_interval);
        precondition(&mut arr, FILL_FRACTION);
        let after_fill = arr.shard(VICTIM).ssd().device().ops_executed();
        let report = run_trace_qd(&mut arr, &trace, QUEUE_DEPTH);
        let after_run = arr.shard(VICTIM).ssd().device().ops_executed();
        let die = after_fill + (after_run - after_fill) / 3;
        let result = ArmResult {
            label: "healthy",
            report,
            health: arr.health(),
            stats: *arr.array_stats(),
        };
        (result, die)
    };

    let arms = [
        Arm {
            label: "degraded",
            spare: false,
            die_at_op: Some(die_at_op),
            rebuild_interval: SimDuration::from_micros(REBUILD_FAST_US),
        },
        Arm {
            label: "rebuild_fast",
            spare: true,
            die_at_op: Some(die_at_op),
            rebuild_interval: SimDuration::from_micros(REBUILD_FAST_US),
        },
        Arm {
            label: "rebuild_slow",
            spare: true,
            die_at_op: Some(die_at_op),
            rebuild_interval: SimDuration::from_micros(REBUILD_SLOW_US),
        },
    ];
    let mut results: Vec<ArmResult> = par_map(&arms, |_, arm| run_arm(&cfg, arm, &trace));
    results.insert(0, healthy);

    // The invariants the committed baseline locks.
    for r in &results {
        assert_eq!(
            r.stats.data_loss_sectors(),
            0,
            "{}: parity array lost data",
            r.label
        );
        if r.label == "healthy" {
            assert_eq!(r.health, ArrayHealth::Healthy);
            assert_eq!(r.stats.degraded_reads, 0);
        } else {
            assert_eq!(
                r.stats.device_failures, 1,
                "{}: death never tripped",
                r.label
            );
            assert!(r.stats.degraded_reads > 0, "{}: no degraded reads", r.label);
        }
    }
    let rows_done = |label: &str| {
        results
            .iter()
            .find(|r| r.label == label)
            .map(|r| r.stats.rebuild_rows_done)
            .unwrap_or(0)
    };
    assert!(
        rows_done("rebuild_fast") >= rows_done("rebuild_slow"),
        "throttling must not speed the rebuild up"
    );

    let mut out = bench_report("fig_fleet_degraded", &cfg, big);
    out.meta("requests", Json::from(requests));
    out.meta("qd", Json::from(QUEUE_DEPTH as u64));
    out.meta("shards", Json::from(SHARDS));
    out.meta("die_at_op", Json::from(die_at_op));

    let mut tbl = TextTable::new([
        "arm",
        "state",
        "degraded reads",
        "rebuild rows",
        "read p99",
        "IOPS",
    ]);
    let mut fleet = HdrHistogram::new();
    for r in &results {
        fleet.merge(&r.report.read_latency);
        let s = &r.stats;
        tbl.row([
            r.label.to_string(),
            r.health.to_string(),
            s.degraded_reads.to_string(),
            format!("{}/{}", s.rebuild_rows_done, s.rebuild_rows_total),
            format!("{}", r.report.read_latency_summary().p99),
            format!("{:.0}", r.report.iops),
        ]);
        out.push_run_with(
            r.label,
            &r.report,
            [
                ("array.state".to_string(), Json::from(r.health.to_string())),
                (
                    "array.degraded_reads".to_string(),
                    Json::from(s.degraded_reads),
                ),
                (
                    "array.reconstructed_sectors".to_string(),
                    Json::from(s.reconstructed_sectors),
                ),
                (
                    "array.rebuild_rows_done".to_string(),
                    Json::from(s.rebuild_rows_done),
                ),
                (
                    "array.data_loss_sectors".to_string(),
                    Json::from(s.data_loss_sectors()),
                ),
            ],
        );
    }
    println!("{}", tbl.render());
    println!(
        "fleet read latency (all arms merged): p50 {} ns, p99 {} ns over {} reads",
        fleet.percentile(0.50),
        fleet.percentile(0.99),
        fleet.count()
    );
    write_bench(&out);
}

//! **GC-policy matrix** — victim-selection policy × workload comparison.
//!
//! Replays a uniform and a hot/cold-skewed small-write churn against the
//! page-mapped baseline (cgmFTL) and the paper's subFTL under each GC
//! victim-selection policy (greedy / cost-benefit / windowed-greedy), and
//! reports IOPS, erase counts, GC invocations and GC-copied sectors.
//!
//! Expected shape: all policies tie on the uniform workload (every block
//! decays at the same rate, so victim choice barely matters); under the
//! hot/cold skew, cost-benefit's age term steers GC away from recently
//! closed blocks whose hot data is about to self-invalidate, copying fewer
//! still-valid sectors per collection than pure greedy. Windowed-greedy
//! lands between the two at a fraction of cost-benefit's scan cost.

use esp_bench::{
    bench_report, big_flag, experiment_config, footprint_sectors, write_bench, TextTable,
    FILL_FRACTION,
};
use esp_core::{precondition, run_trace_qd, CgmFtl, Ftl, FtlConfig, GcPolicyKind, SubFtl};
use esp_sim::Json;
use esp_workload::{generate, SyntheticConfig, Trace};

/// Match fig8's host parallelism.
const QUEUE_DEPTH: usize = 8;

fn workload(name: &str, footprint: u64, requests: u64) -> Trace {
    let (theta, zone) = match name {
        // Every sector equally likely: no hot set for an age-aware policy
        // to exploit.
        "uniform" => (0.0, None),
        // Strong Zipf skew inside a narrow hot zone: the classic
        // cost-benefit win case (hot blocks self-invalidate if GC waits).
        "skew" => (0.95, Some((footprint / 32).max(64))),
        other => unreachable!("unknown workload {other}"),
    };
    generate(&SyntheticConfig {
        footprint_sectors: footprint,
        requests,
        r_small: 1.0,
        r_synch: 1.0,
        zipf_theta: theta,
        small_zone_sectors: zone,
        rewrite_distance: 512,
        seed: 0x6CB0,
        ..SyntheticConfig::default()
    })
}

fn build(kind: &str, cfg: &FtlConfig) -> Box<dyn Ftl> {
    match kind {
        "cgm" => Box::new(CgmFtl::new(cfg)),
        "sub" => Box::new(SubFtl::new(cfg)),
        other => unreachable!("unknown ftl {other}"),
    }
}

fn main() {
    let big = big_flag();
    let base = experiment_config(big);
    let footprint = footprint_sectors(&base);
    let requests = if big { 480_000 } else { 60_000 };

    println!("GC-policy matrix ({requests} small sync writes per cell)");
    println!();
    let mut bench = bench_report("fig_gc_policy", &base, big);
    bench.meta("requests", Json::from(requests));
    bench.meta("qd", Json::from(QUEUE_DEPTH as u64));

    let mut t = TextTable::new([
        "ftl/workload",
        "policy",
        "IOPS",
        "erases",
        "GCs",
        "GC-copied sectors",
    ]);
    for ftl_kind in ["cgm", "sub"] {
        for wname in ["uniform", "skew"] {
            let trace = workload(wname, footprint, requests);
            for policy in GcPolicyKind::ALL {
                let cfg = FtlConfig {
                    gc_policy: policy,
                    ..base.clone()
                };
                let mut ftl = build(ftl_kind, &cfg);
                precondition(ftl.as_mut(), FILL_FRACTION);
                let r = run_trace_qd(ftl.as_mut(), &trace, QUEUE_DEPTH);
                assert_eq!(
                    r.stats.read_faults, 0,
                    "{ftl_kind}/{wname}/{policy} surfaced read faults"
                );
                t.row([
                    format!("{ftl_kind}/{wname}"),
                    policy.name().to_string(),
                    format!("{:.0}", r.iops),
                    r.erases.to_string(),
                    r.stats.gc_invocations.to_string(),
                    r.stats.gc_copied_sectors.to_string(),
                ]);
                bench.push_run_with(
                    &format!("{ftl_kind}/{wname}/{policy}"),
                    &r,
                    [
                        ("gc_policy".to_string(), Json::from(policy.name())),
                        ("workload".to_string(), Json::from(wname)),
                        (
                            "gc_invocations".to_string(),
                            Json::from(r.stats.gc_invocations),
                        ),
                        (
                            "gc_copied_sectors".to_string(),
                            Json::from(r.stats.gc_copied_sectors),
                        ),
                    ],
                );
            }
        }
    }
    println!("{}", t.render());
    write_bench(&bench);
    println!(
        "Expected: policies tie on uniform churn; on the skewed arm the\n\
         age-aware policies copy no more valid data per erase than greedy,\n\
         at unchanged host IOPS."
    );
}

//! **Queue-depth scaling** — IOPS and read tail latency vs. host queue depth.
//!
//! Replays the same read-only uniform-random trace against each FTL at
//! QD ∈ {1, 4, 8, 16, 32} and reports how throughput scales as the NCQ
//! scheduler is allowed to keep more requests in flight. Random 4 KB reads
//! spread across the 8 × 4 chip array, so deeper queues overlap cell reads
//! on independent chips and IOPS rises steeply until the channel buses
//! saturate; p99 read *service time* (issue → done — host queueing delay
//! before issue is excluded, see the `esp_core` runner docs) rises with
//! depth as channel/chip contention grows — the classic
//! throughput/latency trade.
//!
//! Expected shape: IOPS at QD=32 is at least 3× IOPS at QD=1 for every FTL
//! (asserted below — this is the PR's acceptance bar), and QD=1 numbers are
//! byte-identical to the serial scheduler's (locked by the
//! `qd1_matches_serial_reference` unit test in `esp-core`).
//!
//! The `(kind, qd)` grid is embarrassingly parallel — each cell is an
//! independent simulation — so the sweep fans out across host cores with
//! [`esp_sim::par_map`]; results are merged in grid order regardless of
//! which worker finished first.

use esp_bench::{
    bench_report, big_flag, experiment_config, footprint_sectors, write_bench, FtlKind, TextTable,
    FILL_FRACTION,
};
use esp_core::{precondition, run_trace_qd};
use esp_sim::Json;
use esp_workload::{generate, SyntheticConfig};

/// Queue depths swept (powers of two up to a typical NCQ window of 32).
const QDS: [usize; 5] = [1, 4, 8, 16, 32];

fn main() {
    let big = big_flag();
    let cfg = experiment_config(big);
    let footprint = footprint_sectors(&cfg);
    let requests = if big { 240_000 } else { 60_000 };

    // Read-only uniform-random 4 KB-class requests, replayed full-throttle:
    // with no write traffic the dependency tracker never serializes, so the
    // sweep isolates pure device-side parallelism.
    let trace = generate(&SyntheticConfig {
        footprint_sectors: footprint,
        requests,
        read_fraction: 1.0,
        zipf_theta: 0.0,
        seed: 0x9D5C,
        ..SyntheticConfig::default()
    });

    println!(
        "Queue-depth scaling: read-only uniform random, {} requests, footprint {} sectors",
        requests, footprint
    );
    println!();

    let grid: Vec<(FtlKind, usize)> = FtlKind::ALL
        .into_iter()
        .flat_map(|kind| QDS.into_iter().map(move |qd| (kind, qd)))
        .collect();
    let reports = esp_sim::par_map(&grid, |_, &(kind, qd)| {
        let mut ftl = kind.build(&cfg);
        precondition(ftl.as_mut(), FILL_FRACTION);
        run_trace_qd(ftl.as_mut(), &trace, qd)
    });

    let mut out = bench_report("fig_qd_scaling", &cfg, big);
    out.meta("requests", Json::from(requests));
    out.meta(
        "qds",
        Json::Arr(QDS.iter().map(|&q| Json::from(q as u64)).collect()),
    );

    let mut tbl = TextTable::new(["FTL", "QD", "IOPS", "speedup vs QD=1", "read p99 (us)"]);
    for (kind_idx, kind) in FtlKind::ALL.into_iter().enumerate() {
        let base_iops = reports[kind_idx * QDS.len()].iops;
        for (qd_idx, &qd) in QDS.iter().enumerate() {
            let report = &reports[kind_idx * QDS.len() + qd_idx];
            assert_eq!(
                report.stats.read_faults,
                0,
                "{} surfaced read faults at qd={qd}",
                kind.name()
            );
            let p99 = report.read_latency_summary().p99;
            tbl.row([
                kind.name().to_string(),
                qd.to_string(),
                format!("{:.0}", report.iops),
                format!("{:.2}x", report.iops / base_iops),
                format!("{:.1}", p99 as f64 / 1e3),
            ]);
            out.push_run(&format!("{} qd={qd}", kind.name()), report);
        }
        let deep_iops = reports[kind_idx * QDS.len() + QDS.len() - 1].iops;
        assert!(
            deep_iops >= 3.0 * base_iops,
            "{}: IOPS at QD=32 ({deep_iops:.0}) is below 3x QD=1 ({base_iops:.0})",
            kind.name()
        );
    }

    println!("{}", tbl.render());
    println!("(IOPS at QD=32 is asserted to be at least 3x IOPS at QD=1 per FTL.)");
    write_bench(&out);
}

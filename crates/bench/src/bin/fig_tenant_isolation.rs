//! **Tenant-isolation experiment** — the headline tradeoff of the
//! multi-tenant front end: what an unthrottled noisy neighbor costs a
//! latency-sensitive tenant, and how much of that inflation per-tenant
//! QoS (token-bucket admission + weighted-fair DRR dispatch) claws back.
//!
//! Three arms replay seeded workloads through one subFTL device:
//!
//! * `victim_alone` — the victim tenant only: an open-arrival mixed
//!   read/write stream far below device saturation. Its response p99 is
//!   the no-interference reference.
//! * `noisy_qos_off` — the victim plus a closed-loop synchronous-write
//!   tenant with no QoS: the neighbor saturates the device and the
//!   victim's response tail inflates.
//! * `noisy_qos_on` — same pair, but the neighbor is token-bucket
//!   limited and the victim carries a higher DRR weight: admission
//!   control restores slack and the victim's tail collapses back toward
//!   the reference.
//!
//! Invariants asserted here (and locked by the committed baseline +
//! `benchcmp` gate in CI): the unthrottled neighbor inflates the victim
//! response p99 by at least `INTERFERENCE_MIN`×, QoS brings it down to
//! at most `QOS_MAX_FRACTION` of the unthrottled tail, and the token
//! bucket holds the neighbor to its configured rate.

use esp_bench::{bench_report, big_flag, write_bench, TextTable, FILL_FRACTION};
use esp_core::{
    precondition, run_tenants_qd, tenants_json, FtlConfig, SubFtl, TenantConfig, TenantRunReport,
    TenantSet,
};
use esp_sim::{Json, SimDuration};
use esp_workload::{generate, SyntheticConfig, Trace};

const QUEUE_DEPTH: usize = 8;
/// Victim arrival spacing: 1 ms → 1000 requests/s, well under the
/// device's measured sync-small-write saturation (~5900 IOPS at this
/// geometry and queue depth).
const VICTIM_INTER_ARRIVAL_US: u64 = 1000;
const VICTIM_REQUESTS: u64 = 6_000;
/// Enough closed-loop requests that the neighbor saturates the device
/// for the whole victim arrival window in the unthrottled arm.
const NOISY_REQUESTS: u64 = 40_000;
/// The QoS arm's admission cap for the neighbor, requests/second: far
/// below saturation, so capacity is freed for the victim.
const NOISY_RATE: f64 = 2_000.0;
const NOISY_BURST: u32 = 8;
const VICTIM_WEIGHT: u32 = 4;
/// The victim's response-time SLO in the QoS arm (also exercises the
/// per-tenant attainment accounting end to end).
const VICTIM_SLO_MS: u64 = 10;
/// `noisy_qos_off` must inflate the victim p99 at least this much.
const INTERFERENCE_MIN: f64 = 1.5;
/// `noisy_qos_on` must hold the victim p99 to at most this fraction of
/// the unthrottled arm's.
const QOS_MAX_FRACTION: f64 = 0.7;

fn victim_trace(cfg: &FtlConfig) -> Trace {
    let footprint = (cfg.logical_sectors() as f64 * FILL_FRACTION / 4.0) as u64;
    generate(&SyntheticConfig {
        footprint_sectors: footprint,
        requests: VICTIM_REQUESTS,
        r_small: 1.0,
        r_synch: 1.0,
        read_fraction: 0.5,
        inter_arrival: SimDuration::from_micros(VICTIM_INTER_ARRIVAL_US),
        zipf_theta: 0.9,
        small_zone_sectors: Some((footprint / 64).max(64)),
        rewrite_distance: 512,
        seed: 0x71C7,
        ..SyntheticConfig::default()
    })
}

fn noisy_trace(cfg: &FtlConfig) -> Trace {
    let footprint = (cfg.logical_sectors() as f64 * FILL_FRACTION / 2.0) as u64;
    generate(&SyntheticConfig {
        footprint_sectors: footprint,
        requests: NOISY_REQUESTS,
        r_small: 1.0,
        r_synch: 1.0,
        zipf_theta: 0.9,
        small_zone_sectors: Some((footprint / 64).max(64)),
        rewrite_distance: 512,
        seed: 0x0157,
        ..SyntheticConfig::default()
    })
}

/// One arm: build the tenant set, precondition a fresh device, replay.
fn run_arm(cfg: &FtlConfig, label: &str, noisy: bool, qos: bool) -> TenantRunReport {
    let mut set = TenantSet::new();
    let mut victim = TenantConfig::new("victim").slo(SimDuration::from_millis(VICTIM_SLO_MS));
    if qos {
        victim = victim.weight(VICTIM_WEIGHT);
    }
    set.add(victim, victim_trace(cfg));
    if noisy {
        let mut neighbor = TenantConfig::new("noisy");
        if qos {
            neighbor = neighbor.limit(NOISY_RATE, NOISY_BURST);
        }
        set.add(neighbor, noisy_trace(cfg));
    }
    let mut ftl = SubFtl::new(cfg);
    precondition(&mut ftl, FILL_FRACTION);
    let report = run_tenants_qd(&mut ftl, &set, QUEUE_DEPTH);
    println!(
        "  {label}: makespan {}, device {:.0} IOPS",
        report.run.makespan, report.run.iops
    );
    report
}

/// Victim response p99 of one arm, nanoseconds.
fn victim_p99(r: &TenantRunReport) -> u64 {
    let t = &r.tenants[0];
    assert_eq!(t.name, "victim");
    let s = t.response.summary();
    assert!(s.count > 0, "victim recorded no response samples");
    s.p99
}

fn main() {
    let big = big_flag();
    let cfg = esp_bench::experiment_config(big);
    println!(
        "Tenant isolation: victim at {}/s vs closed-loop neighbor, subFTL qd {QUEUE_DEPTH}",
        1_000_000 / VICTIM_INTER_ARRIVAL_US
    );
    println!();

    let arms: [(&str, bool, bool); 3] = [
        ("victim_alone", false, false),
        ("noisy_qos_off", true, false),
        ("noisy_qos_on", true, true),
    ];
    let results: Vec<(&str, TenantRunReport)> = arms
        .iter()
        .map(|&(label, noisy, qos)| (label, run_arm(&cfg, label, noisy, qos)))
        .collect();
    println!();

    let p99 = |label: &str| {
        victim_p99(
            &results
                .iter()
                .find(|(l, _)| *l == label)
                .expect("arm ran")
                .1,
        )
    };
    let alone = p99("victim_alone");
    let qos_off = p99("noisy_qos_off");
    let qos_on = p99("noisy_qos_on");

    // The invariants the committed baseline locks.
    assert!(
        qos_off as f64 >= alone as f64 * INTERFERENCE_MIN,
        "no interference to mitigate: victim p99 {qos_off} ns with the \
         neighbor vs {alone} ns alone"
    );
    assert!(
        (qos_on as f64) <= qos_off as f64 * QOS_MAX_FRACTION,
        "QoS failed to cap the victim tail: p99 {qos_on} ns with QoS vs \
         {qos_off} ns without"
    );
    for (label, r) in &results {
        if *label != "noisy_qos_on" {
            continue;
        }
        let noisy = &r.tenants[1];
        assert!(
            noisy.iops <= NOISY_RATE * 1.1,
            "token bucket leaked: neighbor ran at {:.0} IOPS against a \
             {NOISY_RATE}/s cap",
            noisy.iops
        );
    }

    let mut out = bench_report("fig_tenant_isolation", &cfg, big);
    out.meta("qd", Json::from(QUEUE_DEPTH as u64));
    out.meta("victim_requests", Json::from(VICTIM_REQUESTS));
    out.meta("noisy_requests", Json::from(NOISY_REQUESTS));
    out.meta("noisy_rate", Json::from(NOISY_RATE));
    out.meta("victim_weight", Json::from(u64::from(VICTIM_WEIGHT)));

    let mut tbl = TextTable::new([
        "arm",
        "victim p99 (us)",
        "victim SLO",
        "noisy IOPS",
        "device IOPS",
    ]);
    for (label, r) in &results {
        let victim = &r.tenants[0];
        let slo = victim
            .slo_attainment()
            .map_or("-".to_string(), |a| format!("{a:.3}"));
        let noisy_iops = r
            .tenants
            .get(1)
            .map_or("-".to_string(), |t| format!("{:.0}", t.iops));
        tbl.row([
            (*label).to_string(),
            format!("{:.0}", victim_p99(r) as f64 / 1000.0),
            slo,
            noisy_iops,
            format!("{:.0}", r.run.iops),
        ]);
        out.push_run_with(
            label,
            &r.run,
            [("tenants".to_string(), tenants_json(&r.tenants))],
        );
    }
    println!("{}", tbl.render());
    println!(
        "interference {:.2}x, with QoS {:.2}x of the reference",
        qos_off as f64 / alone as f64,
        qos_on as f64 / alone as f64
    );
    write_bench(&out);
}

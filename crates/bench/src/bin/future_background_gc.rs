//! **Extension — background GC in host idle windows.**
//!
//! The paper's FTLs collect garbage on the write path (foreground), which
//! is what puts GC episodes into the fsync latency tail. Real workloads are
//! bursty; an FTL that pre-erases blocks between bursts moves that work off
//! the critical path. This experiment replays a bursty sync-small-write
//! workload (64-request bursts separated by 50 ms of quiet) with background
//! GC off (the paper's behaviour) and on.

use esp_bench::{big_flag, experiment_config, footprint_sectors, TextTable, FILL_FRACTION};
use esp_core::{precondition, run_trace_qd, FtlConfig, SubFtl};
use esp_sim::SimDuration;
use esp_workload::{generate, SyntheticConfig};

fn main() {
    let base = experiment_config(big_flag());
    let footprint = footprint_sectors(&base);
    let requests = if big_flag() { 400_000 } else { 50_000 };
    let trace = generate(&SyntheticConfig {
        footprint_sectors: footprint,
        requests,
        r_small: 1.0,
        r_synch: 1.0,
        zipf_theta: 0.9,
        small_zone_sectors: Some((footprint / 64).max(64)),
        rewrite_distance: 512,
        burst_period: 64,
        burst_idle: SimDuration::from_millis(50),
        seed: 0xB6C,
        ..SyntheticConfig::default()
    });

    println!(
        "Background GC on a bursty fsync workload ({requests} requests, \
         64-request bursts / 50 ms gaps, QD 8)"
    );
    println!();
    let mut t = TextTable::new([
        "configuration",
        "IOPS",
        "p50",
        "p99",
        "worst request",
        "GC invocations",
    ]);
    for (label, background) in [("foreground GC (paper)", false), ("background GC", true)] {
        let cfg = FtlConfig {
            background_gc: background,
            ..base.clone()
        };
        let mut ftl = SubFtl::new(&cfg);
        precondition(&mut ftl, FILL_FRACTION);
        let r = run_trace_qd(&mut ftl, &trace, 8);
        assert_eq!(r.stats.read_faults, 0);
        let pct = |q: f64| esp_sim::SimDuration::from_nanos(r.latency.percentile(q)).to_string();
        t.row([
            label.to_string(),
            format!("{:.0}", r.iops),
            pct(0.50),
            pct(0.99),
            pct(1.0),
            r.stats.gc_invocations.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Expected: the same GC work runs either way, but pre-erasing during\n\
         the 50 ms gaps removes multi-millisecond GC episodes from the\n\
         in-burst latency tail."
    );
}

//! **§7 future work, implemented — fast subpage reads.**
//!
//! The paper's conclusion: "we plan to support subpage read operations in
//! the next version of subFTL. If subpage read operations can be made
//! faster than full-page reads, we believe that they can be useful for
//! read latency-sensitive applications."
//!
//! subFTL's read path already issues subpage reads when a single 4 KB
//! sector is requested; this experiment turns on the faster subpage sense
//! (`NandTiming::with_fast_subpage_read`, scaled like the measured
//! program-side saving) and measures a read-latency-sensitive workload.

use esp_bench::{
    big_flag, experiment_config, footprint_sectors, FtlKind, TextTable, FILL_FRACTION,
};
use esp_core::{precondition, run_trace_qd, FtlConfig};
use esp_workload::{generate, SyntheticConfig};

fn main() {
    let base = experiment_config(big_flag());
    let footprint = footprint_sectors(&base);
    let requests = if big_flag() { 400_000 } else { 50_000 };
    // Read-dominant, 4 KB-heavy: the latency-sensitive case §7 names.
    let trace = generate(&SyntheticConfig {
        footprint_sectors: footprint,
        requests,
        r_small: 0.997,
        r_synch: 0.9,
        read_fraction: 0.6,
        zipf_theta: 0.9,
        small_zone_sectors: Some((footprint / 64).max(64)),
        rewrite_distance: 512,
        seed: 0xF7,
        ..SyntheticConfig::default()
    });

    println!("§7 future work: fast subpage reads ({requests} requests, 60% reads, QD 1)");
    println!();
    let mut t = TextTable::new(["configuration", "IOPS", "mean latency (us)", "p99 latency"]);
    for (label, fast, kind) in [
        ("fgmFTL (full-page sense)", false, FtlKind::Fgm),
        ("subFTL (full-page sense)", false, FtlKind::Sub),
        ("subFTL + fast subpage read", true, FtlKind::Sub),
    ] {
        let mut cfg = FtlConfig { ..base.clone() };
        if fast {
            cfg.timing = cfg.timing.with_fast_subpage_read();
        }
        let mut ftl = kind.build(&cfg);
        precondition(ftl.as_mut(), FILL_FRACTION);
        let r = run_trace_qd(ftl.as_mut(), &trace, 1);
        assert_eq!(r.stats.read_faults, 0);
        t.row([
            label.to_string(),
            format!("{:.0}", r.iops),
            format!("{:.1}", r.latency.mean() / 1_000.0),
            r.latency_p99().to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Expected: subFTL already wins on the write path; the faster subpage\n\
         sense shaves single-sector read latency on top (the reads of data\n\
         resident in the subpage region and single-sector reads from the\n\
         full-page region both use the subpage sense)."
    );
}

//! **Host latency profile** — per-request latency distribution of
//! synchronous writes and reads under each FTL.
//!
//! The paper reports IOPS; latency is the same story seen per request:
//! cgmFTL's RMWs and fgmFTL's full-page programs sit directly on the fsync
//! path, while GC bursts shape the tail.

use esp_bench::{
    bench_report, big_flag, experiment_config, footprint_sectors, write_bench, FtlKind, TextTable,
    FILL_FRACTION,
};
use esp_core::{precondition, run_trace_qd};
use esp_sim::{Json, SimDuration};
use esp_workload::{generate, Benchmark};

fn main() {
    let cfg = experiment_config(big_flag());
    let footprint = footprint_sectors(&cfg);
    let requests = if big_flag() { 400_000 } else { 50_000 };
    let mut out = bench_report("latency_profile", &cfg, big_flag());
    out.meta("requests", Json::from(requests));

    for (bench, qd) in [(Benchmark::Varmail, 1usize), (Benchmark::Varmail, 8)] {
        let trace = generate(&bench.config(footprint, requests, 0x1A7));
        println!("{bench} at queue depth {qd}:");
        let mut t = TextTable::new(["FTL", "mean", "p50", "p90", "p99", "p99.9"]);
        for kind in FtlKind::ALL {
            let mut ftl = kind.build(&cfg);
            precondition(ftl.as_mut(), FILL_FRACTION);
            let r = run_trace_qd(ftl.as_mut(), &trace, qd);
            out.push_run(&format!("{} {bench} qd={qd}", kind.name()), &r);
            let pct = |q: f64| SimDuration::from_nanos(r.latency.percentile(q)).to_string();
            t.row([
                kind.name().to_string(),
                SimDuration::from_nanos(r.latency.mean() as u64).to_string(),
                pct(0.50),
                pct(0.90),
                pct(0.99),
                pct(0.999),
            ]);
        }
        println!("{}", t.render());
    }
    println!(
        "Expected: subFTL's 4 KB subpage program shortens the fsync path\n\
         (lower median), and its rarer GC keeps the p99/p99.9 tail flatter\n\
         than fgmFTL's. (Percentiles are power-of-two bucket lower bounds.)"
    );
    write_bench(&out);
}

//! **Lifetime projection** — the paper's second headline ("improve the …
//! lifetime by up to 177%") expressed in device terms.
//!
//! GC invocations are erases, and erases are the unit of NAND wear. With
//! wear spread evenly (the FTLs allocate least-worn-first and subFTL swaps
//! blocks across regions), a device with `B` blocks of endurance `E` sustains
//! `B × E` erases; measuring host bytes written per erase under each FTL
//! projects total-bytes-written (TBW) until wear-out.

use esp_bench::{
    big_flag, experiment_config, footprint_sectors, FtlKind, TextTable, FILL_FRACTION,
};
use esp_core::{precondition, run_trace_qd};
use esp_workload::{generate, Benchmark, SECTOR_BYTES};

/// TLC endurance assumed by the paper's evaluation (§3.3 performs 1K P/E
/// cycles as the endurance requirement).
const ENDURANCE_CYCLES: u64 = 1_000;

fn main() {
    let cfg = experiment_config(big_flag());
    let footprint = footprint_sectors(&cfg);
    let requests = if big_flag() { 480_000 } else { 60_000 };
    let total_blocks = u64::from(cfg.geometry.block_count());
    let budget_erases = total_blocks * ENDURANCE_CYCLES;

    println!(
        "Lifetime projection: {} blocks x {} P/E cycles = {} erase budget",
        total_blocks, ENDURANCE_CYCLES, budget_erases
    );
    println!();

    for bench in [Benchmark::Sysbench, Benchmark::Varmail, Benchmark::TpcC] {
        let trace = generate(&bench.config(footprint, requests, 0x11FE));
        println!("{bench}:");
        let mut t = TextTable::new([
            "FTL",
            "host GB written",
            "erases",
            "GB/erase",
            "projected TBW",
            "vs fgmFTL",
        ]);
        let mut fgm_tbw = 0.0f64;
        let mut rows = Vec::new();
        for kind in FtlKind::ALL {
            let mut ftl = kind.build(&cfg);
            precondition(ftl.as_mut(), FILL_FRACTION);
            let r = run_trace_qd(ftl.as_mut(), &trace, 8);
            let host_gb = (r.stats.host_write_sectors * SECTOR_BYTES) as f64 / 1e9;
            let per_erase = host_gb / r.erases.max(1) as f64;
            let tbw = per_erase * budget_erases as f64 / 1e3;
            if kind == FtlKind::Fgm {
                fgm_tbw = tbw;
            }
            rows.push((kind.name(), host_gb, r.erases, per_erase, tbw));
        }
        for (name, host_gb, erases, per_erase, tbw) in rows {
            t.row([
                name.to_string(),
                format!("{host_gb:.2}"),
                erases.to_string(),
                format!("{per_erase:.4}"),
                format!("{tbw:.2} TB"),
                format!("{:+.1}%", (tbw / fgm_tbw - 1.0) * 100.0),
            ]);
        }
        println!("{}", t.render());
    }
    println!(
        "Expected: on sync-small-write workloads subFTL stretches device\n\
         lifetime by roughly the GC-invocation ratio of Fig 8(b) — the\n\
         paper reports up to +177% over fgmFTL — while cgm/fgm burn a block\n\
         erase every ~16 fragmented small pages."
    );
}

//! **Lifetime projection** — the paper's second headline ("improve the …
//! lifetime by up to 177%") expressed in device terms.
//!
//! GC invocations are erases, and erases are the unit of NAND wear. Two
//! projections are reported:
//!
//! * **TBW (erase)** — host bytes written per erase, scaled to the device's
//!   erase budget (`B × E`). This assumes perfectly even wear and full-depth
//!   erases, so it is blind to wear leveling and adaptive erase.
//! * **TBW (wear)** — host bytes written per unit of **worst-block effective
//!   P/E growth**, scaled to the endurance target. The device is dead when
//!   its hottest block exhausts its cycles, so this is the projection wear
//!   leveling (flatter growth) and AERO-style adaptive erase (fractional
//!   stress per shallow erase) actually improve.
//!
//! Each FTL runs twice per workload: the paper-default baseline, and with
//! `--wear-leveling` + `--adaptive-erase` on (`+wl+ae` rows). All runs land
//! in a schema-versioned `BENCH_lifetime_projection.json` report.
//!
//! Flags: `--big` (4 GiB geometry), `--smoke` (one workload, shorter churn,
//! for CI), `--assert-improvement` (exit nonzero unless every `+wl+ae` arm
//! projects at least the baseline's wear-based TBW).

use esp_bench::{
    bench_report, big_flag, experiment_config, footprint_sectors, write_bench, FtlKind, TextTable,
    FILL_FRACTION,
};
use esp_core::{precondition, run_trace_qd, FtlConfig, RunReport};
use esp_sim::Json;
use esp_workload::{generate, Benchmark, SECTOR_BYTES};

/// TLC endurance assumed by the paper's evaluation (§3.3 performs 1K P/E
/// cycles as the endurance requirement).
const ENDURANCE_CYCLES: u64 = 1_000;

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// One measurement: a preconditioned FTL replaying the trace.
struct Measured {
    report: RunReport,
    host_gb: f64,
    /// Worst-block effective P/E growth during the measurement run
    /// (end-of-run snapshot minus end-of-preconditioning snapshot).
    max_pe_growth: u32,
    tbw_erase: f64,
    tbw_wear: f64,
}

fn measure(
    kind: FtlKind,
    cfg: &FtlConfig,
    trace: &esp_workload::Trace,
    budget_erases: u64,
) -> Measured {
    let mut ftl = kind.build(cfg);
    let pre = precondition(ftl.as_mut(), FILL_FRACTION);
    let report = run_trace_qd(ftl.as_mut(), trace, 8);
    let host_gb = (report.stats.host_write_sectors * SECTOR_BYTES) as f64 / 1e9;
    let max_pe_growth = report.wear.max_pe.saturating_sub(pre.wear.max_pe);
    let per_erase = host_gb / report.erases.max(1) as f64;
    let tbw_erase = per_erase * budget_erases as f64 / 1e3;
    let tbw_wear = host_gb * ENDURANCE_CYCLES as f64 / f64::from(max_pe_growth.max(1)) / 1e3;
    Measured {
        report,
        host_gb,
        max_pe_growth,
        tbw_erase,
        tbw_wear,
    }
}

fn main() {
    let big = big_flag();
    let smoke = flag("--smoke");
    let assert_improvement = flag("--assert-improvement");
    let base = experiment_config(big);
    let footprint = footprint_sectors(&base);
    // The smoke mode runs one workload but with *more* churn than the
    // default: worst-block P/E growth needs to clear single digits for the
    // wear-based projection (and its improvement assertion) to resolve.
    let requests = if big {
        480_000
    } else if smoke {
        240_000
    } else {
        60_000
    };
    let total_blocks = u64::from(base.geometry.block_count());
    let budget_erases = total_blocks * ENDURANCE_CYCLES;

    println!(
        "Lifetime projection: {} blocks x {} P/E cycles = {} erase budget",
        total_blocks, ENDURANCE_CYCLES, budget_erases
    );
    println!();

    let arms: [(&str, bool); 2] = [("", false), ("+wl+ae", true)];
    let benchmarks: &[Benchmark] = if smoke {
        &[Benchmark::Sysbench]
    } else {
        &[Benchmark::Sysbench, Benchmark::Varmail, Benchmark::TpcC]
    };

    let mut bench = bench_report("lifetime_projection", &base, big);
    bench.meta("endurance_cycles", Json::from(ENDURANCE_CYCLES));
    bench.meta("smoke", Json::from(smoke));
    bench.meta("requests", Json::from(requests));

    // (label, baseline wear-TBW, +wl+ae wear-TBW) per benchmark × FTL, for
    // the --assert-improvement gate.
    let mut pairs: Vec<(String, f64, f64)> = Vec::new();

    for bm in benchmarks {
        let trace = generate(&bm.config(footprint, requests, 0x11FE));
        println!("{bm}:");
        let mut t = TextTable::new([
            "FTL",
            "host GB",
            "erases",
            "max dPE",
            "TBW (erase)",
            "TBW (wear)",
            "vs baseline",
        ]);
        for kind in FtlKind::ALL {
            let mut baseline_tbw = 0.0f64;
            for (suffix, enabled) in arms {
                let cfg = FtlConfig {
                    wear_leveling: enabled,
                    adaptive_erase: enabled,
                    ..base.clone()
                };
                let m = measure(kind, &cfg, &trace, budget_erases);
                let label = format!("{bm}/{}{suffix}", kind.name());
                if enabled {
                    pairs.push((label.clone(), baseline_tbw, m.tbw_wear));
                } else {
                    baseline_tbw = m.tbw_wear;
                }
                t.row([
                    format!("{}{suffix}", kind.name()),
                    format!("{:.2}", m.host_gb),
                    m.report.erases.to_string(),
                    m.max_pe_growth.to_string(),
                    format!("{:.2} TB", m.tbw_erase),
                    format!("{:.2} TB", m.tbw_wear),
                    if enabled {
                        format!("{:+.1}%", (m.tbw_wear / baseline_tbw - 1.0) * 100.0)
                    } else {
                        "--".to_string()
                    },
                ]);
                bench.push_run_with(
                    &label,
                    &m.report,
                    [
                        ("wear_leveling".to_string(), Json::from(enabled)),
                        ("adaptive_erase".to_string(), Json::from(enabled)),
                        ("max_pe_growth".to_string(), Json::from(m.max_pe_growth)),
                        (
                            "projected_tbw_erase_tb".to_string(),
                            Json::from(m.tbw_erase),
                        ),
                        ("projected_tbw_wear_tb".to_string(), Json::from(m.tbw_wear)),
                    ],
                );
            }
        }
        println!("{}", t.render());
    }
    println!(
        "Expected: on sync-small-write workloads subFTL stretches device\n\
         lifetime by roughly the GC-invocation ratio of Fig 8(b) — the\n\
         paper reports up to +177% over fgmFTL — while cgm/fgm burn a block\n\
         erase every ~16 fragmented small pages. The +wl+ae rows flatten\n\
         worst-block wear and shave erase stress, so their wear-based TBW\n\
         must not fall below the baseline's."
    );
    write_bench(&bench);

    if assert_improvement {
        let mut failed = false;
        for (label, baseline, improved) in &pairs {
            if improved < baseline {
                eprintln!(
                    "FAIL {label}: wear-based TBW {improved:.2} TB fell below \
                     the baseline's {baseline:.2} TB"
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "assert-improvement: every +wl+ae arm projects >= its baseline ({} pairs)",
            pairs.len()
        );
    }
}

//! **§6 related work, measured — subFTL vs the sector-log technique.**
//!
//! The paper argues (§6) that Jin et al.'s sector log, although also a
//! hybrid-mapping design, "supports subpage programming at the logical
//! level as with other FGM-based FTLs", so "its performance suffers when
//! synchronous small writes occur fairly frequently". With both FTLs
//! implemented over the same device, that claim becomes measurable.

use esp_bench::{big_flag, experiment_config, footprint_sectors, TextTable, FILL_FRACTION};
use esp_core::{precondition, run_trace_qd, FtlConfig, SectorLogFtl, SubFtl};
use esp_workload::{generate, Benchmark};

fn main() {
    let cfg: FtlConfig = experiment_config(big_flag());
    let footprint = footprint_sectors(&cfg);
    let requests = if big_flag() { 400_000 } else { 50_000 };

    println!("§6 related work: sector log (Jin et al.) vs subFTL ({requests} requests, QD 16)");
    println!(
        "(both hybrids reserve the same 20% region; only subFTL programs erase-free subpages)"
    );
    println!();
    let mut t = TextTable::new([
        "benchmark",
        "sectorLog IOPS",
        "subFTL IOPS",
        "sub gain",
        "sectorLog erases",
        "subFTL erases",
    ]);
    for bench in [Benchmark::Sysbench, Benchmark::Postmark, Benchmark::TpcC] {
        let trace = generate(&bench.config(footprint, requests, 0x6E6));
        let mut sl = SectorLogFtl::new(&cfg);
        precondition(&mut sl, FILL_FRACTION);
        let sl_r = run_trace_qd(&mut sl, &trace, 16);
        let mut sub = SubFtl::new(&cfg);
        precondition(&mut sub, FILL_FRACTION);
        let sub_r = run_trace_qd(&mut sub, &trace, 16);
        assert_eq!(sl_r.stats.read_faults + sub_r.stats.read_faults, 0);
        t.row([
            bench.name().to_string(),
            format!("{:.0}", sl_r.iops),
            format!("{:.0}", sub_r.iops),
            format!("{:+.1}%", (sub_r.iops / sl_r.iops - 1.0) * 100.0),
            sl_r.erases.to_string(),
            sub_r.erases.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Expected: the hybrid layout alone does not rescue the sector log on\n\
         fsync-heavy workloads — each sync small write still burns a 16 KB\n\
         page program plus merge-time RMWs, while subFTL's erase-free 4 KB\n\
         subpage programs avoid both. Gains shrink on TPC-C, where large\n\
         writes dominate and the two hybrids behave alike."
    );
}

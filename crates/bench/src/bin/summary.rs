//! **One-shot summary** — the reproduction's headline numbers in a single
//! run (a fast subset of `fig8_ftl_comparison`, `table1_waf` and the
//! retention model checks), for a quick "is everything still right?" pass.

use esp_bench::{
    big_flag, experiment_config, footprint_sectors, FtlKind, TextTable, FILL_FRACTION,
};
use esp_core::{precondition, run_trace_qd};
use esp_nand::RetentionModel;
use esp_sim::SimDuration;
use esp_workload::{generate, Benchmark};

fn main() {
    let cfg = experiment_config(big_flag());
    let footprint = footprint_sectors(&cfg);
    let requests = if big_flag() { 320_000 } else { 40_000 };

    // Retention model invariants (Fig 5).
    let m = RetentionModel::paper_default();
    let pe = m.reference_pe_cycles();
    let uplift =
        m.normalized_ber(pe, 3, SimDuration::ZERO) / m.normalized_ber(pe, 0, SimDuration::ZERO);
    println!(
        "Retention model: Npp^3 uplift {:.0}% (paper: 41%)",
        (uplift - 1.0) * 100.0
    );
    println!(
        "  Npp^3 one-month ok: {}   two-month ok: {} (paper: ok / uncorrectable)",
        m.is_readable(pe, 3, SimDuration::from_months(1)),
        m.is_readable(pe, 3, SimDuration::from_months(2)),
    );
    println!();

    println!("Three-FTL comparison ({requests} requests/benchmark, QD 8):");
    let mut t = TextTable::new([
        "benchmark",
        "sub/cgm IOPS",
        "sub/fgm IOPS",
        "fgm/sub GCs",
        "subFTL request WAF",
    ]);
    for bench in [Benchmark::Sysbench, Benchmark::Varmail, Benchmark::TpcC] {
        let trace = generate(&bench.config(footprint, requests, 0x50));
        let mut iops = [0.0f64; 3];
        let mut gc = [0u64; 3];
        let mut waf = 0.0;
        for (k, kind) in FtlKind::ALL.into_iter().enumerate() {
            let mut ftl = kind.build(&cfg);
            precondition(ftl.as_mut(), FILL_FRACTION);
            let r = run_trace_qd(ftl.as_mut(), &trace, 8);
            assert_eq!(r.stats.read_faults, 0);
            iops[k] = r.iops;
            gc[k] = r.stats.gc_invocations;
            if kind == FtlKind::Sub {
                waf = r.stats.small_request_waf();
            }
        }
        t.row([
            bench.name().to_string(),
            format!("{:.2}x", iops[2] / iops[0]),
            format!("{:.2}x", iops[2] / iops[1]),
            format!("{:.2}x", gc[1] as f64 / gc[2].max(1) as f64),
            format!("{waf:.3}"),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Paper headlines: IOPS up to 3.49x over cgmFTL / 1.74x over fgmFTL;\n\
         GC invocations up to 2.77x fewer than fgmFTL; request WAF 1.003-1.008."
    );
}

//! **Table 1 — Detailed analysis of subFTL** (paper §5).
//!
//! Per benchmark: the percentage of small writes and the average request
//! WAF of small writes under subFTL.
//!
//! Expected shape (paper): small-write fractions of 99.7 / 95.3 / 99.9 /
//! 19.3 / 11.8 % and request WAF very close to (but not exactly) 1.0 — the
//! two sources of extra I/O are migrations of long-lived subpages within
//! the subpage region and evictions of cold subpages to the full-page
//! region.

use esp_bench::{
    bench_report, big_flag, experiment_config, footprint_sectors, write_bench, FtlKind, TextTable,
    FILL_FRACTION,
};
use esp_core::{precondition, run_trace_qd};
use esp_sim::Json;
use esp_workload::{generate, Benchmark};

fn main() {
    let cfg = experiment_config(big_flag());
    let footprint = footprint_sectors(&cfg);
    let requests = if big_flag() { 480_000 } else { 60_000 };

    println!("Table 1: detailed analysis of subFTL ({requests} requests/benchmark)");
    println!();
    let mut t = TextTable::new([
        "benchmark",
        "% small write (paper)",
        "% small write (ours)",
        "request WAF (paper)",
        "request WAF (ours)",
        "migrations",
        "evictions",
    ]);
    let paper_waf = [1.005, 1.007, 1.003, 1.005, 1.008];
    let mut out = bench_report("table1_waf", &cfg, big_flag());
    out.meta("requests", Json::from(requests));
    for (bench, &pw) in Benchmark::ALL.iter().zip(&paper_waf) {
        let trace = generate(&bench.config(footprint, requests, 0x7AB1E));
        let mut ftl = FtlKind::Sub.build(&cfg);
        precondition(ftl.as_mut(), FILL_FRACTION);
        let report = run_trace_qd(ftl.as_mut(), &trace, 8);
        assert_eq!(report.stats.read_faults, 0);
        out.push_run(&format!("subFTL {bench}"), &report);
        t.row([
            bench.name().to_string(),
            format!("{:.1}%", bench.paper_small_write_fraction() * 100.0),
            format!("{:.1}%", report.stats.small_write_fraction() * 100.0),
            format!("{pw:.3}"),
            format!("{:.3}", report.stats.small_request_waf()),
            report.stats.lap_migrations.to_string(),
            (report.stats.cold_evictions + report.stats.retention_evictions).to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Request WAF close to 1.0 means subFTL avoids internal fragmentation\n\
         and RMW for small writes almost entirely (paper §5). Values below\n\
         1.0 can occur when the write buffer absorbs re-writes before they\n\
         reach flash."
    );
    write_bench(&out);
}

//! **Mapping-memory comparison** (paper §1/§4.2).
//!
//! The paper: "In subFTL, we also significantly reduced the L2P mapping
//! memory requirement over the FGM scheme by managing the subpage region
//! and full-page region with different mapping methods in a hybrid
//! fashion", and "even with a relatively small hash table, subFTL can
//! quickly find a physical location ... without being severely affected by
//! hash collisions."
//!
//! Reports each FTL's exact mapping footprint plus the measured hash-table
//! probe lengths after a small-write-heavy run.

use esp_bench::{
    big_flag, experiment_config, footprint_sectors, FtlKind, TextTable, FILL_FRACTION,
};
use esp_core::{
    precondition, run_trace_qd, CgmFtl, FgmFtl, Ftl, FtlConfig, MapCacheConfig, SubFtl,
};
use esp_workload::{generate, Benchmark};

fn main() {
    let cfg = experiment_config(big_flag());
    let footprint = footprint_sectors(&cfg);
    let requests = if big_flag() { 400_000 } else { 50_000 };
    let trace = generate(&Benchmark::Varmail.config(footprint, requests, 0x3E3));

    println!(
        "Mapping memory: {} logical sectors exported ({} MiB logical space)",
        cfg.logical_sectors(),
        cfg.logical_sectors() * 4096 / (1024 * 1024)
    );
    println!();
    let mut t = TextTable::new(["FTL", "mapping bytes", "bytes / logical MiB", "vs fgmFTL"]);
    let mut fgm_bytes = 0u64;
    let mut rows = Vec::new();
    for kind in FtlKind::ALL {
        let mut ftl = kind.build(&cfg);
        precondition(ftl.as_mut(), FILL_FRACTION);
        run_trace_qd(ftl.as_mut(), &trace, 8);
        let bytes = ftl.mapping_memory_bytes();
        if kind == FtlKind::Fgm {
            fgm_bytes = bytes;
        }
        rows.push((kind.name(), bytes));
    }
    let logical_mib = cfg.logical_sectors() as f64 * 4096.0 / (1024.0 * 1024.0);
    for (name, bytes) in rows {
        t.row([
            name.to_string(),
            bytes.to_string(),
            format!("{:.0}", bytes as f64 / logical_mib),
            format!("{:.2}x", bytes as f64 / fgm_bytes as f64),
        ]);
    }
    println!("{}", t.render());

    // Hash-collision behaviour after a realistic run.
    let mut sub = SubFtl::new(&cfg);
    precondition(&mut sub, FILL_FRACTION);
    run_trace_qd(&mut sub, &trace, 8);
    let probes = sub.subpage_map_probes();
    println!(
        "subFTL hash table after the run: {} live entries, mean probes/lookup {:.3}, max probe {}",
        sub.subpage_entries(),
        probes.mean_probes(),
        probes.max_probe
    );
    println!(
        "Expected: fgmFTL maps every logical 4 KB sector; cgmFTL maps 16 KB\n\
         pages (4x less); subFTL adds a small bounded hash table (sized by\n\
         the subpage region's one-valid-subpage-per-page capacity) on top\n\
         of the coarse map, staying well under fgmFTL's footprint with\n\
         short probe chains."
    );

    // Resident-DRAM headline: grow the device and compare the fully
    // resident page map against the demand cache (`--map-cache`, DFTL-style
    // CMT). The full map grows linearly with capacity; the cache holds a
    // fixed CMT plus an 8-byte directory entry per translation page, so its
    // resident footprint grows ~4096x slower — the property that makes the
    // page-mapped FTLs mountable on multi-TB geometries.
    println!();
    println!("Resident DRAM vs device capacity (64-page CMT when cached):");
    let mc = MapCacheConfig::default();
    let mut t = TextTable::new([
        "capacity",
        "cgm full map",
        "cgm cached",
        "fgm full map",
        "fgm cached",
        "cached/full",
    ]);
    for scale in [1u32, 4, 16] {
        let mut scaled = experiment_config(big_flag());
        scaled.geometry.blocks_per_chip *= scale;
        let full = FtlConfig {
            map_cache: None,
            ..scaled.clone()
        };
        let cached = FtlConfig {
            map_cache: Some(mc),
            ..scaled.clone()
        };
        let cgm_full = CgmFtl::new(&full).mapping_memory_bytes();
        let cgm_cached = CgmFtl::new(&cached).mapping_memory_bytes();
        let fgm_full = FgmFtl::new(&full).mapping_memory_bytes();
        let fgm_cached = FgmFtl::new(&cached).mapping_memory_bytes();
        let mib = scaled.logical_sectors() * 4096 / (1024 * 1024);
        t.row([
            format!("{mib} MiB"),
            cgm_full.to_string(),
            cgm_cached.to_string(),
            fgm_full.to_string(),
            fgm_cached.to_string(),
            format!("{:.4}", fgm_cached as f64 / fgm_full as f64),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Expected: the full maps scale linearly with capacity while the\n\
         cached footprint is nearly flat (fixed CMT + tiny directory), so\n\
         the cached/full ratio shrinks as the device grows."
    );
}

//! # esp-bench — experiment harness
//!
//! Shared setup for the experiment binaries that regenerate every table and
//! figure of the paper (see DESIGN.md §4 for the index), plus small
//! formatting helpers so each binary prints the same rows/series the paper
//! reports.
//!
//! The experiment device keeps the paper's *shape* — 8 channels × 4 TLC
//! chips, 16 KB pages of four 4 KB subpages, 20 % subpage region, 62.5 %
//! preconditioning fill — at a reduced capacity (512 MiB) so every figure
//! regenerates in seconds. The paper argues (§5) that capacity does not
//! distort the results; the `--big` flag on each binary runs the 4 GiB
//! geometry for confirmation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use esp_core::{CgmFtl, FgmFtl, Ftl, FtlConfig, RunReport, SubFtl};
use esp_nand::Geometry;
use esp_sim::Json;
use esp_workload::Trace;

pub use esp_core::BenchReport;

/// The reduced-capacity experiment device (512 MiB, paper shape).
#[must_use]
pub fn experiment_geometry() -> Geometry {
    Geometry {
        channels: 8,
        chips_per_channel: 4,
        blocks_per_chip: 16,
        pages_per_block: 64,
        subpages_per_page: 4,
        subpage_bytes: 4096,
    }
}

/// The full-size geometry (4 GiB, the library default) for `--big` runs.
#[must_use]
pub fn big_geometry() -> Geometry {
    Geometry::paper_default()
}

/// The experiment FTL configuration over the chosen geometry.
#[must_use]
pub fn experiment_config(big: bool) -> FtlConfig {
    FtlConfig {
        geometry: if big {
            big_geometry()
        } else {
            experiment_geometry()
        },
        ..FtlConfig::paper_default()
    }
}

/// Reads the `--big` flag from the process arguments.
#[must_use]
pub fn big_flag() -> bool {
    std::env::args().any(|a| a == "--big")
}

/// Reads an optional `--gc-policy <name>` flag from the process arguments
/// (greedy when absent), so the CI smoke matrix can rerun a figure under
/// every victim-selection policy without a dedicated binary per policy.
///
/// # Panics
///
/// Panics when the flag has no value or names an unknown policy.
#[must_use]
pub fn gc_policy_flag() -> esp_core::GcPolicyKind {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--gc-policy" {
            let v = args.next().expect("--gc-policy needs a value");
            return v
                .parse()
                .unwrap_or_else(|e| panic!("bad --gc-policy `{v}`: {e}"));
        }
    }
    esp_core::GcPolicyKind::default()
}

/// The paper's preconditioning ratio: 10 GB filled on a 16 GB device.
pub const FILL_FRACTION: f64 = 0.625;

/// Workload footprint as a fraction of logical capacity, matching the
/// preconditioned share of the device.
#[must_use]
pub fn footprint_sectors(config: &FtlConfig) -> u64 {
    (config.logical_sectors() as f64 * FILL_FRACTION) as u64
}

/// Which FTL to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FtlKind {
    /// Coarse-grained mapping baseline.
    Cgm,
    /// Fine-grained mapping baseline.
    Fgm,
    /// The paper's ESP-aware FTL.
    Sub,
}

impl FtlKind {
    /// All three, in the paper's presentation order.
    pub const ALL: [FtlKind; 3] = [FtlKind::Cgm, FtlKind::Fgm, FtlKind::Sub];

    /// Display name as in the paper.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            FtlKind::Cgm => "cgmFTL",
            FtlKind::Fgm => "fgmFTL",
            FtlKind::Sub => "subFTL",
        }
    }

    /// Builds a boxed FTL of this kind.
    #[must_use]
    pub fn build(&self, config: &FtlConfig) -> Box<dyn Ftl> {
        match self {
            FtlKind::Cgm => Box::new(CgmFtl::new(config)),
            FtlKind::Fgm => Box::new(FgmFtl::new(config)),
            FtlKind::Sub => Box::new(SubFtl::new(config)),
        }
    }
}

/// Starts a BENCH report for an experiment binary, stamped with the
/// device shape so `benchcmp` refuses nothing silently: reports produced
/// at different scales still compare, but the geometry is on record.
#[must_use]
pub fn bench_report(name: &str, cfg: &FtlConfig, big: bool) -> BenchReport {
    let mut b = BenchReport::new(name);
    b.meta("geometry", Json::from(format!("{}", cfg.geometry)));
    b.meta("big", Json::from(big));
    b
}

/// Writes `BENCH_<name>.json` into `$BENCH_OUT_DIR` (or the working
/// directory) and prints the path. An I/O failure is reported on stderr
/// but does not abort the experiment — the human-readable tables above
/// are the primary output.
pub fn write_bench(b: &BenchReport) {
    match b.write_default() {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write BENCH report: {e}"),
    }
}

/// Builds the FTL, preconditions it with the paper's sequential fill, then
/// replays `trace` and returns the measurement-run report.
#[must_use]
pub fn run_preconditioned(kind: FtlKind, config: &FtlConfig, trace: &Trace) -> RunReport {
    let mut ftl = kind.build(config);
    esp_core::precondition(ftl.as_mut(), FILL_FRACTION);
    esp_core::run_trace(ftl.as_mut(), trace)
}

/// A fixed-width text table that prints aligned rows (the "figure data" the
/// paper plots).
#[derive(Debug, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(c, s)| format!("{:>w$}", s, w = widths[c]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Minimal wall-clock micro-benchmark harness for the `benches/` targets
/// (plain `harness = false` mains; no external benchmarking framework).
pub mod micro {
    use std::hint::black_box;
    use std::time::Instant;

    /// Times `routine` over `iters` fresh states from `setup` (setup cost is
    /// excluded) and prints the median, min and max wall-clock time per
    /// iteration.
    pub fn bench_batched<S, T>(
        name: &str,
        iters: u32,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> T,
    ) {
        assert!(iters > 0, "need at least one iteration");
        let mut samples_ns: Vec<u128> = Vec::with_capacity(iters as usize);
        // One untimed warm-up iteration.
        black_box(routine(setup()));
        for _ in 0..iters {
            let state = setup();
            let start = Instant::now();
            black_box(routine(state));
            samples_ns.push(start.elapsed().as_nanos());
        }
        samples_ns.sort_unstable();
        let median = samples_ns[samples_ns.len() / 2];
        let (min, max) = (samples_ns[0], samples_ns[samples_ns.len() - 1]);
        println!(
            "{name:<44} median {:>12} ns/iter   (min {min}, max {max}, n={iters})",
            median
        );
    }

    /// Times `routine` with no per-iteration setup.
    pub fn bench<T>(name: &str, iters: u32, mut routine: impl FnMut() -> T) {
        bench_batched(name, iters, || (), |()| routine());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp_workload::{generate, SyntheticConfig};

    #[test]
    fn experiment_config_is_valid() {
        experiment_config(false).validate().unwrap();
        experiment_config(true).validate().unwrap();
    }

    #[test]
    fn footprint_is_inside_logical_space() {
        let cfg = experiment_config(false);
        assert!(footprint_sectors(&cfg) < cfg.logical_sectors());
    }

    #[test]
    fn all_kinds_build_and_run() {
        let cfg = FtlConfig::tiny();
        let trace = generate(&SyntheticConfig {
            footprint_sectors: 64,
            requests: 50,
            ..SyntheticConfig::default()
        });
        for kind in FtlKind::ALL {
            let mut ftl = kind.build(&cfg);
            let report = esp_core::run_trace(ftl.as_mut(), &trace);
            assert_eq!(report.ftl, kind.name());
            assert_eq!(report.requests, 50);
        }
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(["a", "bench"]);
        t.row(["1", "x"]);
        t.row(["22", "yyyy"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("bench"));
        assert!(lines[2].ends_with("x"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only one"]);
    }
}

//! The DRAM write buffer shared by all three FTLs (paper §4.1: "subFTL puts
//! [writes] into a write buffer to merge several small writes with
//! consecutive logical block addresses into one sequential write"; the FGM
//! scheme is defined around the same buffer in §1).
//!
//! Overwrites of buffered sectors are absorbed in DRAM. Synchronous writes
//! force their sectors (together with any buffered neighbors that form a
//! contiguous run with them) out immediately — this is exactly why
//! synchronous small writes "miss an opportunity to be merged" (§1) and the
//! crux of the FGM scheme's fragility that subFTL fixes.

use std::collections::BTreeMap;

/// One buffered sector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BufEntry {
    /// Did this sector arrive as part of a *small* host write? Used to
    /// attribute flash consumption to small-write request WAF.
    small_origin: bool,
}

/// A contiguous run of dirty sectors leaving the buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlushChunk {
    /// First logical sector of the run.
    pub start_lsn: u64,
    /// Per-sector small-write-origin flags; the run length is
    /// `origins.len()`.
    pub origins: Vec<bool>,
}

impl FlushChunk {
    /// Run length in sectors.
    #[must_use]
    pub fn sectors(&self) -> u32 {
        self.origins.len() as u32
    }

    /// One-past-the-end sector.
    #[must_use]
    pub fn end_lsn(&self) -> u64 {
        self.start_lsn + u64::from(self.sectors())
    }
}

/// A fixed-capacity, coalescing write buffer keyed by logical sector.
///
/// # Examples
///
/// ```
/// use esp_core::WriteBuffer;
///
/// let mut buf = WriteBuffer::new(8);
/// buf.insert(10, 2, true);
/// buf.insert(12, 1, true);
/// // The three sectors coalesce into one contiguous chunk.
/// let chunks = buf.drain_all();
/// assert_eq!(chunks.len(), 1);
/// assert_eq!(chunks[0].start_lsn, 10);
/// assert_eq!(chunks[0].sectors(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct WriteBuffer {
    capacity: usize,
    entries: BTreeMap<u64, BufEntry>,
}

impl WriteBuffer {
    /// Creates a buffer holding up to `capacity_sectors` dirty sectors.
    #[must_use]
    pub fn new(capacity_sectors: usize) -> Self {
        WriteBuffer {
            capacity: capacity_sectors,
            entries: BTreeMap::new(),
        }
    }

    /// Number of dirty sectors currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no sectors are buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True once the buffer is at or beyond capacity (time to flush).
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// True if the sector is buffered (reads hit DRAM).
    #[must_use]
    pub fn contains(&self, lsn: u64) -> bool {
        self.entries.contains_key(&lsn)
    }

    /// Buffers `sectors` sectors starting at `lsn`; overwrites of already
    /// buffered sectors are absorbed in place.
    pub fn insert(&mut self, lsn: u64, sectors: u32, small_origin: bool) {
        for s in lsn..lsn + u64::from(sectors) {
            self.entries.insert(s, BufEntry { small_origin });
        }
    }

    /// Removes and returns every buffered sector as maximal contiguous
    /// chunks, in ascending LSN order.
    pub fn drain_all(&mut self) -> Vec<FlushChunk> {
        let entries = std::mem::take(&mut self.entries);
        Self::runs(entries.into_iter())
    }

    /// Discards any buffered sectors in `[lsn, lsn + sectors)` (host trim:
    /// the data will never be needed again). Returns how many sectors were
    /// dropped.
    pub fn discard(&mut self, lsn: u64, sectors: u32) -> u32 {
        let mut dropped = 0;
        for s in lsn..lsn + u64::from(sectors) {
            if self.entries.remove(&s).is_some() {
                dropped += 1;
            }
        }
        dropped
    }

    /// Removes and returns the contiguous runs that overlap
    /// `[lsn, lsn + sectors)` — the sectors a synchronous write must force
    /// out, together with their merge partners.
    pub fn take_overlapping(&mut self, lsn: u64, sectors: u32) -> Vec<FlushChunk> {
        let end = lsn + u64::from(sectors);
        // Grow the window to cover full contiguous runs touching the range.
        let mut lo = lsn;
        while lo > 0 && self.entries.contains_key(&(lo - 1)) {
            lo -= 1;
        }
        let mut hi = end;
        while self.entries.contains_key(&hi) {
            hi += 1;
        }
        let taken: Vec<(u64, BufEntry)> = {
            let keys: Vec<u64> = self.entries.range(lo..hi).map(|(k, _)| *k).collect();
            keys.into_iter()
                .map(|k| (k, self.entries.remove(&k).expect("key just observed")))
                .collect()
        };
        Self::runs(taken.into_iter())
    }

    fn runs(iter: impl Iterator<Item = (u64, BufEntry)>) -> Vec<FlushChunk> {
        let mut chunks: Vec<FlushChunk> = Vec::new();
        for (lsn, e) in iter {
            match chunks.last_mut() {
                Some(c) if c.end_lsn() == lsn => c.origins.push(e.small_origin),
                _ => chunks.push(FlushChunk {
                    start_lsn: lsn,
                    origins: vec![e.small_origin],
                }),
            }
        }
        chunks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_absorb() {
        let mut b = WriteBuffer::new(100);
        b.insert(5, 3, true);
        assert_eq!(b.len(), 3);
        // Overwrite absorbs (no growth) and updates origin.
        b.insert(6, 1, false);
        assert_eq!(b.len(), 3);
        let chunks = b.drain_all();
        assert_eq!(chunks[0].origins, vec![true, false, true]);
        assert!(b.is_empty());
    }

    #[test]
    fn drain_produces_maximal_runs() {
        let mut b = WriteBuffer::new(100);
        b.insert(0, 2, true);
        b.insert(10, 1, false);
        b.insert(2, 1, true); // extends the first run
        let chunks = b.drain_all();
        assert_eq!(chunks.len(), 2);
        assert_eq!((chunks[0].start_lsn, chunks[0].sectors()), (0, 3));
        assert_eq!((chunks[1].start_lsn, chunks[1].sectors()), (10, 1));
    }

    #[test]
    fn take_overlapping_grabs_whole_runs() {
        let mut b = WriteBuffer::new(100);
        b.insert(4, 4, true); // run 4..8
        b.insert(20, 1, false);
        // Sync write of sector 5 must flush the whole 4..8 run (its merge
        // partners) but leave 20 alone.
        let chunks = b.take_overlapping(5, 1);
        assert_eq!(chunks.len(), 1);
        assert_eq!((chunks[0].start_lsn, chunks[0].sectors()), (4, 4));
        assert_eq!(b.len(), 1);
        assert!(b.contains(20));
    }

    #[test]
    fn take_overlapping_extends_in_both_directions() {
        let mut b = WriteBuffer::new(100);
        b.insert(8, 2, true); // 8,9
        b.insert(12, 2, true); // 12,13
                               // Taking [9, 13) touches both runs; each comes out whole.
        let chunks = b.take_overlapping(9, 4);
        assert_eq!(chunks.len(), 2);
        assert_eq!((chunks[0].start_lsn, chunks[0].sectors()), (8, 2));
        assert_eq!((chunks[1].start_lsn, chunks[1].sectors()), (12, 2));
        assert!(b.is_empty());
    }

    #[test]
    fn take_overlapping_on_empty_range_returns_nothing() {
        let mut b = WriteBuffer::new(100);
        b.insert(0, 1, true);
        assert!(b.take_overlapping(50, 2).is_empty());
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn discard_drops_buffered_sectors() {
        let mut b = WriteBuffer::new(100);
        b.insert(0, 4, true);
        assert_eq!(b.discard(1, 2), 2);
        assert_eq!(b.len(), 2);
        assert!(b.contains(0) && b.contains(3));
        assert_eq!(b.discard(10, 5), 0);
    }

    #[test]
    fn capacity_signals_fullness() {
        let mut b = WriteBuffer::new(2);
        assert!(!b.is_full());
        b.insert(0, 2, false);
        assert!(b.is_full());
    }

    #[test]
    fn chunk_accessors() {
        let c = FlushChunk {
            start_lsn: 7,
            origins: vec![true, true],
        };
        assert_eq!(c.sectors(), 2);
        assert_eq!(c.end_lsn(), 9);
    }
}

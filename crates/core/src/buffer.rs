//! The DRAM write buffer shared by all three FTLs (paper §4.1: "subFTL puts
//! [writes] into a write buffer to merge several small writes with
//! consecutive logical block addresses into one sequential write"; the FGM
//! scheme is defined around the same buffer in §1).
//!
//! Overwrites of buffered sectors are absorbed in DRAM. Synchronous writes
//! force their sectors (together with any buffered neighbors that form a
//! contiguous run with them) out immediately — this is exactly why
//! synchronous small writes "miss an opportunity to be merged" (§1) and the
//! crux of the FGM scheme's fragility that subFTL fixes.
//!
//! # Representation
//!
//! The buffer stores **maximal contiguous runs** in a sorted `Vec` — the
//! exact [`FlushChunk`]s it will eventually emit — instead of one map node
//! per dirty sector. A multi-sector write is one binary search plus a run
//! merge rather than per-sector tree inserts, `drain_all` is `mem::take`,
//! and the flush path allocates nothing per sector. The run list is kept
//! sorted, disjoint, and maximal (no two runs touch), so every operation
//! can binary-search by start/end.

/// A contiguous run of dirty sectors leaving the buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlushChunk {
    /// First logical sector of the run.
    pub start_lsn: u64,
    /// Per-sector small-write-origin flags; the run length is
    /// `origins.len()`. (Did each sector arrive as part of a *small* host
    /// write? Used to attribute flash consumption to small-write request
    /// WAF.)
    pub origins: Vec<bool>,
}

impl FlushChunk {
    /// Run length in sectors.
    #[must_use]
    pub fn sectors(&self) -> u32 {
        self.origins.len() as u32
    }

    /// One-past-the-end sector.
    #[must_use]
    pub fn end_lsn(&self) -> u64 {
        self.start_lsn + u64::from(self.sectors())
    }
}

/// A fixed-capacity, coalescing write buffer keyed by logical sector.
///
/// # Examples
///
/// ```
/// use esp_core::WriteBuffer;
///
/// let mut buf = WriteBuffer::new(8);
/// buf.insert(10, 2, true);
/// buf.insert(12, 1, true);
/// // The three sectors coalesce into one contiguous chunk.
/// let chunks = buf.drain_all();
/// assert_eq!(chunks.len(), 1);
/// assert_eq!(chunks[0].start_lsn, 10);
/// assert_eq!(chunks[0].sectors(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct WriteBuffer {
    capacity: usize,
    /// Total dirty sectors across all runs.
    len: usize,
    /// Maximal contiguous runs, sorted by `start_lsn`, pairwise disjoint
    /// and non-adjacent (touching runs are merged on insert).
    runs: Vec<FlushChunk>,
    /// Recycled `origins` allocations: spent chunks come back through
    /// [`WriteBuffer::recycle`] and [`WriteBuffer::insert`] reuses their
    /// storage, so the steady-state flush cycle allocates nothing.
    spare: Vec<Vec<bool>>,
}

/// Bound on the recycled-allocation pool; beyond this, returned chunks are
/// simply dropped (a buffer rarely fragments into more runs than this).
const SPARE_LIMIT: usize = 64;

impl WriteBuffer {
    /// Creates a buffer holding up to `capacity_sectors` dirty sectors.
    #[must_use]
    pub fn new(capacity_sectors: usize) -> Self {
        WriteBuffer {
            capacity: capacity_sectors,
            len: 0,
            runs: Vec::new(),
            spare: Vec::new(),
        }
    }

    /// Returns a spent chunk's storage to the internal pool so the next
    /// [`WriteBuffer::insert`] can reuse it instead of allocating.
    pub fn recycle(&mut self, chunk: FlushChunk) {
        if self.spare.len() < SPARE_LIMIT {
            let mut origins = chunk.origins;
            origins.clear();
            self.spare.push(origins);
        }
    }

    /// An empty `origins` vector, reusing pooled storage when available.
    fn fresh_origins(&mut self) -> Vec<bool> {
        self.spare.pop().unwrap_or_default()
    }

    /// Number of dirty sectors currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no sectors are buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True once the buffer is at or beyond capacity (time to flush).
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.len >= self.capacity
    }

    /// True if the sector is buffered (reads hit DRAM).
    #[must_use]
    pub fn contains(&self, lsn: u64) -> bool {
        // The last run starting at or before `lsn`, if any, is the only
        // candidate (runs are sorted and disjoint).
        let i = self.runs.partition_point(|r| r.start_lsn <= lsn);
        i > 0 && self.runs[i - 1].end_lsn() > lsn
    }

    /// Buffers `sectors` sectors starting at `lsn`; overwrites of already
    /// buffered sectors are absorbed in place (taking this write's
    /// origin flag).
    pub fn insert(&mut self, lsn: u64, sectors: u32, small_origin: bool) {
        if sectors == 0 {
            return;
        }
        let end = lsn + u64::from(sectors);
        // Runs that overlap *or touch* the written range merge with it:
        // `[i, j)` spans those with `end_lsn >= lsn` and `start_lsn <= end`.
        let i = self.runs.partition_point(|r| r.end_lsn() < lsn);
        let j = self.runs.partition_point(|r| r.start_lsn <= end);
        if i == j {
            // No neighbors: a fresh run.
            let mut origins = self.fresh_origins();
            origins.resize(sectors as usize, small_origin);
            self.runs.insert(
                i,
                FlushChunk {
                    start_lsn: lsn,
                    origins,
                },
            );
            self.len += sectors as usize;
            return;
        }
        // Merge runs[i..j] with the write. Sectors inside [lsn, end) take
        // this write's origin (absorbed overwrites); the prefix of
        // runs[i] below `lsn` and the suffix of runs[j-1] above `end`
        // keep theirs. Interior gaps are inside [lsn, end) by
        // construction, so the merged run is dense.
        let new_start = self.runs[i].start_lsn.min(lsn);
        let new_end = self.runs[j - 1].end_lsn().max(end);
        let mut origins = self.fresh_origins();
        origins.reserve((new_end - new_start) as usize);
        if self.runs[i].start_lsn < lsn {
            origins.extend_from_slice(
                &self.runs[i].origins[..(lsn - self.runs[i].start_lsn) as usize],
            );
        }
        origins.resize(origins.len() + sectors as usize, small_origin);
        let last = &self.runs[j - 1];
        if last.end_lsn() > end {
            origins.extend_from_slice(&last.origins[(end - last.start_lsn) as usize..]);
        }
        let removed: usize = self.runs[i..j].iter().map(|r| r.origins.len()).sum();
        self.len += origins.len() - removed;
        let old = std::mem::replace(
            &mut self.runs[i],
            FlushChunk {
                start_lsn: new_start,
                origins,
            },
        );
        self.recycle(old);
        for k in i + 1..j {
            let spent = std::mem::take(&mut self.runs[k].origins);
            self.recycle(FlushChunk {
                start_lsn: 0,
                origins: spent,
            });
        }
        self.runs.drain(i + 1..j);
    }

    /// Removes and returns every buffered sector as maximal contiguous
    /// chunks, in ascending LSN order.
    pub fn drain_all(&mut self) -> Vec<FlushChunk> {
        let mut out = Vec::new();
        self.drain_all_into(&mut out);
        out
    }

    /// Allocation-free [`WriteBuffer::drain_all`]: appends the drained
    /// chunks to `out` (which the caller reuses across flushes).
    pub fn drain_all_into(&mut self, out: &mut Vec<FlushChunk>) {
        self.len = 0;
        out.append(&mut self.runs);
    }

    /// Discards any buffered sectors in `[lsn, lsn + sectors)` (host trim:
    /// the data will never be needed again). Returns how many sectors were
    /// dropped.
    pub fn discard(&mut self, lsn: u64, sectors: u32) -> u32 {
        if sectors == 0 {
            return 0;
        }
        let end = lsn + u64::from(sectors);
        // Strictly overlapping runs only (adjacency doesn't discard).
        let i = self.runs.partition_point(|r| r.end_lsn() <= lsn);
        let j = self.runs.partition_point(|r| r.start_lsn < end);
        if i == j {
            return 0;
        }
        let mut dropped = 0u32;
        let mut keep: Vec<FlushChunk> = Vec::with_capacity(2);
        for r in &self.runs[i..j] {
            let cut_lo = lsn.max(r.start_lsn);
            let cut_hi = end.min(r.end_lsn());
            dropped += (cut_hi - cut_lo) as u32;
            if r.start_lsn < cut_lo {
                keep.push(FlushChunk {
                    start_lsn: r.start_lsn,
                    origins: r.origins[..(cut_lo - r.start_lsn) as usize].to_vec(),
                });
            }
            if cut_hi < r.end_lsn() {
                keep.push(FlushChunk {
                    start_lsn: cut_hi,
                    origins: r.origins[(cut_hi - r.start_lsn) as usize..].to_vec(),
                });
            }
        }
        self.runs.splice(i..j, keep);
        self.len -= dropped as usize;
        dropped
    }

    /// Removes and returns the contiguous runs that overlap *or touch*
    /// `[lsn, lsn + sectors)` — the sectors a synchronous write must force
    /// out, together with their merge partners. Each run comes out whole,
    /// as its own chunk.
    pub fn take_overlapping(&mut self, lsn: u64, sectors: u32) -> Vec<FlushChunk> {
        let mut out = Vec::new();
        self.take_overlapping_into(lsn, sectors, &mut out);
        out
    }

    /// Allocation-free [`WriteBuffer::take_overlapping`]: appends the taken
    /// runs to `out` (which the caller reuses across flushes).
    pub fn take_overlapping_into(&mut self, lsn: u64, sectors: u32, out: &mut Vec<FlushChunk>) {
        let end = lsn + u64::from(sectors);
        let i = self.runs.partition_point(|r| r.end_lsn() < lsn);
        let j = self.runs.partition_point(|r| r.start_lsn <= end);
        if i == j {
            return;
        }
        let taken: u32 = self.runs[i..j].iter().map(FlushChunk::sectors).sum();
        self.len -= taken as usize;
        out.extend(self.runs.drain(i..j));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The representation invariant: sorted, disjoint, maximal, and the
    /// sector counter matches.
    fn check(b: &WriteBuffer) {
        let mut total = 0;
        for w in b.runs.windows(2) {
            assert!(
                w[0].end_lsn() < w[1].start_lsn,
                "runs must be disjoint and non-adjacent: {w:?}"
            );
        }
        for r in &b.runs {
            assert!(!r.origins.is_empty(), "empty run");
            total += r.origins.len();
        }
        assert_eq!(total, b.len, "sector counter out of sync");
    }

    #[test]
    fn insert_and_absorb() {
        let mut b = WriteBuffer::new(100);
        b.insert(5, 3, true);
        assert_eq!(b.len(), 3);
        // Overwrite absorbs (no growth) and updates origin.
        b.insert(6, 1, false);
        assert_eq!(b.len(), 3);
        check(&b);
        let chunks = b.drain_all();
        assert_eq!(chunks[0].origins, vec![true, false, true]);
        assert!(b.is_empty());
    }

    #[test]
    fn drain_produces_maximal_runs() {
        let mut b = WriteBuffer::new(100);
        b.insert(0, 2, true);
        b.insert(10, 1, false);
        b.insert(2, 1, true); // extends the first run
        check(&b);
        let chunks = b.drain_all();
        assert_eq!(chunks.len(), 2);
        assert_eq!((chunks[0].start_lsn, chunks[0].sectors()), (0, 3));
        assert_eq!((chunks[1].start_lsn, chunks[1].sectors()), (10, 1));
    }

    #[test]
    fn insert_bridges_runs_and_keeps_outside_origins() {
        let mut b = WriteBuffer::new(100);
        b.insert(0, 2, true); // 0,1 small
        b.insert(4, 2, false); // 4,5 large
                               // Bridge 1..5: overwritten interior takes the new origin, the
                               // untouched prefix (0) and suffix (5) keep theirs.
        b.insert(1, 4, true);
        check(&b);
        let chunks = b.drain_all();
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].start_lsn, 0);
        assert_eq!(chunks[0].origins, vec![true, true, true, true, true, false]);
    }

    #[test]
    fn take_overlapping_grabs_whole_runs() {
        let mut b = WriteBuffer::new(100);
        b.insert(4, 4, true); // run 4..8
        b.insert(20, 1, false);
        // Sync write of sector 5 must flush the whole 4..8 run (its merge
        // partners) but leave 20 alone.
        let chunks = b.take_overlapping(5, 1);
        assert_eq!(chunks.len(), 1);
        assert_eq!((chunks[0].start_lsn, chunks[0].sectors()), (4, 4));
        assert_eq!(b.len(), 1);
        assert!(b.contains(20));
        check(&b);
    }

    #[test]
    fn take_overlapping_extends_in_both_directions() {
        let mut b = WriteBuffer::new(100);
        b.insert(8, 2, true); // 8,9
        b.insert(12, 2, true); // 12,13
                               // Taking [9, 13) touches both runs; each comes out whole.
        let chunks = b.take_overlapping(9, 4);
        assert_eq!(chunks.len(), 2);
        assert_eq!((chunks[0].start_lsn, chunks[0].sectors()), (8, 2));
        assert_eq!((chunks[1].start_lsn, chunks[1].sectors()), (12, 2));
        assert!(b.is_empty());
    }

    #[test]
    fn take_overlapping_grabs_adjacent_runs() {
        // A run ending exactly at the sync write's start (or starting at
        // its end) is a merge partner and comes out too — even when the
        // written sectors themselves are not buffered.
        let mut b = WriteBuffer::new(100);
        b.insert(2, 2, true); // 2,3
        b.insert(6, 2, false); // 6,7
        let chunks = b.take_overlapping(4, 2); // [4, 6): touches both
        assert_eq!(chunks.len(), 2);
        assert_eq!((chunks[0].start_lsn, chunks[0].sectors()), (2, 2));
        assert_eq!((chunks[1].start_lsn, chunks[1].sectors()), (6, 2));
        assert!(b.is_empty());
    }

    #[test]
    fn take_overlapping_on_empty_range_returns_nothing() {
        let mut b = WriteBuffer::new(100);
        b.insert(0, 1, true);
        assert!(b.take_overlapping(50, 2).is_empty());
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn discard_drops_buffered_sectors() {
        let mut b = WriteBuffer::new(100);
        b.insert(0, 4, true);
        assert_eq!(b.discard(1, 2), 2);
        assert_eq!(b.len(), 2);
        assert!(b.contains(0) && b.contains(3));
        assert_eq!(b.discard(10, 5), 0);
        check(&b);
    }

    #[test]
    fn discard_splits_across_runs() {
        let mut b = WriteBuffer::new(100);
        b.insert(0, 3, true); // 0..3
        b.insert(5, 3, false); // 5..8
                               // Cut [2, 6): tail of the first run, head of the second.
        assert_eq!(b.discard(2, 4), 2);
        assert_eq!(b.len(), 4);
        assert!(b.contains(0) && b.contains(1) && b.contains(6) && b.contains(7));
        assert!(!b.contains(2) && !b.contains(5));
        check(&b);
    }

    #[test]
    fn capacity_signals_fullness() {
        let mut b = WriteBuffer::new(2);
        assert!(!b.is_full());
        b.insert(0, 2, false);
        assert!(b.is_full());
    }

    #[test]
    fn chunk_accessors() {
        let c = FlushChunk {
            start_lsn: 7,
            origins: vec![true, true],
        };
        assert_eq!(c.sectors(), 2);
        assert_eq!(c.end_lsn(), 9);
    }

    #[test]
    fn randomized_against_btreemap_reference() {
        // Differential test: the run-based buffer must agree with the
        // original per-sector BTreeMap implementation on every operation
        // of a random interleaving.
        use std::collections::BTreeMap;
        struct Reference {
            entries: BTreeMap<u64, bool>,
        }
        impl Reference {
            fn insert(&mut self, lsn: u64, sectors: u32, small: bool) {
                for s in lsn..lsn + u64::from(sectors) {
                    self.entries.insert(s, small);
                }
            }
            fn discard(&mut self, lsn: u64, sectors: u32) -> u32 {
                let mut n = 0;
                for s in lsn..lsn + u64::from(sectors) {
                    if self.entries.remove(&s).is_some() {
                        n += 1;
                    }
                }
                n
            }
            fn take_overlapping(&mut self, lsn: u64, sectors: u32) -> Vec<FlushChunk> {
                let end = lsn + u64::from(sectors);
                let mut lo = lsn;
                while lo > 0 && self.entries.contains_key(&(lo - 1)) {
                    lo -= 1;
                }
                let mut hi = end;
                while self.entries.contains_key(&hi) {
                    hi += 1;
                }
                let keys: Vec<u64> = self.entries.range(lo..hi).map(|(k, _)| *k).collect();
                let taken: Vec<(u64, bool)> = keys
                    .into_iter()
                    .map(|k| (k, self.entries.remove(&k).unwrap()))
                    .collect();
                Self::runs(taken)
            }
            fn drain_all(&mut self) -> Vec<FlushChunk> {
                let e = std::mem::take(&mut self.entries);
                Self::runs(e.into_iter().collect())
            }
            fn runs(entries: Vec<(u64, bool)>) -> Vec<FlushChunk> {
                let mut chunks: Vec<FlushChunk> = Vec::new();
                for (lsn, small) in entries {
                    match chunks.last_mut() {
                        Some(c) if c.end_lsn() == lsn => c.origins.push(small),
                        _ => chunks.push(FlushChunk {
                            start_lsn: lsn,
                            origins: vec![small],
                        }),
                    }
                }
                chunks
            }
        }

        let mut rng = esp_sim::Rng::seed_from(0xB0FF);
        for _ in 0..200 {
            let mut buf = WriteBuffer::new(64);
            let mut reference = Reference {
                entries: BTreeMap::new(),
            };
            for _ in 0..120 {
                let lsn = rng.next_u64() % 48;
                let sectors = (rng.next_u64() % 6 + 1) as u32;
                let small = rng.next_u64().is_multiple_of(2);
                match rng.next_u64() % 8 {
                    0 => {
                        assert_eq!(
                            buf.take_overlapping(lsn, sectors),
                            reference.take_overlapping(lsn, sectors)
                        );
                    }
                    1 => {
                        assert_eq!(buf.drain_all(), reference.drain_all());
                    }
                    2 => {
                        assert_eq!(buf.discard(lsn, sectors), reference.discard(lsn, sectors));
                    }
                    _ => {
                        buf.insert(lsn, sectors, small);
                        reference.insert(lsn, sectors, small);
                    }
                }
                check(&buf);
                assert_eq!(buf.len(), reference.entries.len());
                for s in 0..56 {
                    assert_eq!(buf.contains(s), reference.entries.contains_key(&s));
                }
            }
            assert_eq!(buf.drain_all(), reference.drain_all());
        }
    }
}

//! `cgmFTL` — the coarse-grained mapping baseline (paper §2, §5).
//!
//! Logical-to-physical mapping at full-page (16 KB) granularity over the
//! whole device. Small or misaligned writes require **read-modify-write**:
//! the old 16 KB page is read, merged with the new sectors, and rewritten —
//! the paper's explanation for cgmFTL's collapse under small writes
//! ("89.3 % of the total writes in Varmail were serviced using RMW").

use esp_nand::Oob;
use esp_sim::{merge_events, SimTime, TraceEvent};
use esp_ssd::Ssd;
use esp_workload::SECTORS_PER_PAGE;

use crate::buffer::{FlushChunk, WriteBuffer};
use crate::config::FtlConfig;
use crate::full_region::FullRegionEngine;
use crate::map_cache::{MapCache, MapCacheStats};
use crate::read_path::{read_sectors_coarse, ReadReliability};
use crate::runner::Ftl;
use crate::stats::FtlStats;

/// The CGM-scheme FTL baseline.
///
/// # Examples
///
/// ```
/// use esp_core::{CgmFtl, Ftl, FtlConfig};
/// use esp_sim::SimTime;
///
/// let mut ftl = CgmFtl::new(&FtlConfig::tiny());
/// // A synchronous 4 KB write lands via an RMW-free path only if its whole
/// // 16 KB page is dirty; alone, it costs a full-page program.
/// let done = ftl.write(0, 1, true, SimTime::ZERO);
/// assert!(done > SimTime::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct CgmFtl {
    ssd: Ssd,
    engine: FullRegionEngine,
    buffer: WriteBuffer,
    stats: FtlStats,
    seq: u64,
    logical_sectors: u64,
    reliability: ReadReliability,
    /// Static wear leveling: rotate a cold block when the pool's effective
    /// P/E spread exceeds this (`FtlConfig::wear_delta_threshold`).
    wear_delta: u32,
    /// Device erase count at which the next wear-spread check runs (the
    /// spread only changes on erase, so the scan is metered by erases).
    next_wear_check: u64,
    /// Background GC into host idle windows (`FtlConfig::background_gc`).
    background_gc: bool,
    /// Demand-cached page map (`FtlConfig::map_cache`): translation
    /// lookups charge CMT miss/evict traffic onto the host path. The
    /// in-DRAM `engine` map stays authoritative; the cache only models
    /// the latency and footprint of keeping most of it on flash.
    map_cache: Option<MapCache>,
    /// Reused RMW read buffer and OOB staging for
    /// [`CgmFtl::flush_chunks`], so the steady-state write path allocates
    /// nothing per page.
    slots_scratch: Vec<Result<Oob, esp_nand::ReadFault>>,
    oobs_scratch: Vec<Option<Oob>>,
    chunks_scratch: Vec<FlushChunk>,
}

impl CgmFtl {
    /// Builds a cgmFTL over the configured device.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`FtlConfig::validate`]).
    #[must_use]
    pub fn new(config: &FtlConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid FTL config: {e}"));
        let ssd = Ssd::with_planes(
            config.geometry.clone(),
            config.timing.clone(),
            config.retention.clone(),
            config.planes_per_chip,
        );
        Self::with_ssd(config, ssd)
    }

    /// Builds the FTL structures over an existing (possibly non-empty)
    /// device; mapping state starts empty — see [`CgmFtl::recover`] for
    /// rebuilding it from flash contents.
    pub(crate) fn with_ssd(config: &FtlConfig, mut ssd: Ssd) -> Self {
        if let Some(f) = &config.fault {
            ssd.device_mut().set_faults(f.clone());
        }
        ssd.device_mut()
            .set_retry_ladder(config.retry_ladder.clone());
        ssd.device_mut().set_adaptive_erase(config.adaptive_erase);
        let logical_sectors = config.logical_sectors();
        let lpn_count = logical_sectors / u64::from(SECTORS_PER_PAGE);
        let all_blocks: Vec<u32> = (0..config.geometry.block_count()).collect();
        let mut engine = FullRegionEngine::new(
            all_blocks,
            config.geometry.pages_per_block,
            config.geometry.blocks_per_chip,
            lpn_count,
            config.gc_free_watermark,
        );
        engine.set_wear_leveling(config.wear_leveling);
        engine.set_gc_policy(config.gc_policy);
        let map_cache = config.map_cache.as_ref().map(|mc| {
            use esp_nand::OpKind;
            MapCache::new(
                mc,
                lpn_count,
                config.geometry.pages_per_block,
                ssd.device().op_cost(OpKind::ReadFull).total(),
                ssd.device().op_cost(OpKind::ProgramFull).total(),
                ssd.device().op_cost(OpKind::Erase).total(),
            )
        });
        let mut stats = FtlStats::new();
        // Exclude factory-marked and previously grown bad blocks from the
        // pool (local index == gbi here, so retirement is in place).
        for gbi in ssd.device().bad_block_indices() {
            if engine.retire_gbi(gbi) {
                stats.blocks_retired += 1;
            }
        }
        CgmFtl {
            ssd,
            engine,
            buffer: WriteBuffer::new(config.write_buffer_sectors),
            stats,
            seq: 0,
            logical_sectors,
            reliability: ReadReliability::new(config),
            wear_delta: config.wear_delta_threshold,
            next_wear_check: 0,
            background_gc: config.background_gc,
            map_cache,
            slots_scratch: Vec::new(),
            oobs_scratch: Vec::new(),
            chunks_scratch: Vec::new(),
        }
    }

    /// Rebuilds a cgmFTL from the contents of a previously written device
    /// (power-loss recovery): scans every programmed page, maps each
    /// logical page to its newest readable copy, and resumes with a write
    /// sequence number above everything on flash. DRAM-buffered data that
    /// was never flushed is gone, as on real hardware.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or does not match the
    /// device's geometry.
    #[must_use]
    pub fn recover(mut ssd: Ssd, config: &FtlConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid FTL config: {e}"));
        assert_eq!(
            *ssd.geometry(),
            config.geometry,
            "recovery config geometry mismatch"
        );
        let scan = crate::recovery::scan_device(&mut ssd);
        let scans = scan.blocks;
        let mut ftl = Self::with_ssd(config, ssd);
        ftl.stats.torn_pages_quarantined = scan.torn_pages;
        let page_sz = u64::from(SECTORS_PER_PAGE);
        let lpn_count = (ftl.logical_sectors / page_sz) as usize;
        // lpn -> (seq, local block, page); engine-local index == gbi here.
        let mut best: Vec<Option<(u64, u32, u32)>> = vec![None; lpn_count];
        let mut programmed = vec![0u32; scans.len()];
        let mut max_seq = 0u64;
        for (b, scan) in scans.iter().enumerate() {
            programmed[b] = scan.programmed_pages();
            for (p, page) in scan.pages.iter().enumerate() {
                let Some(newest) = page.live.iter().max_by_key(|s| s.seq) else {
                    continue;
                };
                max_seq = max_seq.max(newest.seq);
                let lpn = (newest.lsn / page_sz) as usize;
                if lpn >= lpn_count {
                    continue; // data beyond the (shrunk) logical space
                }
                if best[lpn].is_none_or(|(seq, _, _)| newest.seq > seq) {
                    best[lpn] = Some((newest.seq, b as u32, p as u32));
                }
            }
        }
        let mappings: Vec<(u64, u32, u32)> = best
            .iter()
            .enumerate()
            .filter_map(|(lpn, e)| e.map(|(_, b, p)| (lpn as u64, b, p)))
            .collect();
        ftl.engine.restore_state(&programmed, &mappings);
        ftl.seq = max_seq;
        ftl
    }

    pub(crate) fn ssd_mut(&mut self) -> &mut Ssd {
        &mut self.ssd
    }

    /// Allocation-state digest for the crash harness's idempotence check
    /// (see [`FullRegionEngine::pool_fingerprint`]).
    pub(crate) fn pool_fingerprint(&self) -> Vec<u64> {
        self.engine.pool_fingerprint()
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Writes the chunks out, page by page, RMW-merging partial pages.
    fn flush_chunks(&mut self, chunks: &mut Vec<FlushChunk>, issue: SimTime) -> SimTime {
        let page = u64::from(SECTORS_PER_PAGE);
        let mut done = issue;
        for chunk in chunks.drain(..) {
            let (lo, hi) = (chunk.start_lsn, chunk.end_lsn());
            let first_lpn = lo / page;
            let last_lpn = (hi - 1) / page;
            for lpn in first_lpn..=last_lpn {
                let s_lo = lo.max(lpn * page);
                let s_hi = hi.min((lpn + 1) * page);
                let new_sectors = (s_hi - s_lo) as u32;
                let full_cover = new_sectors == SECTORS_PER_PAGE;

                self.oobs_scratch.clear();
                self.oobs_scratch.resize(SECTORS_PER_PAGE as usize, None);
                let mut t = issue;
                // A cached map must pull (and dirty) the translation entry
                // before the data program; misses serialize ahead of it.
                if let Some(cache) = self.map_cache.as_mut() {
                    t = cache.access(lpn, true, t);
                }
                if !full_cover {
                    // Read-modify-write: merge with the existing page, if any.
                    if let Some(ptr) = self.engine.lookup(lpn) {
                        let addr = self.engine.page_addr(ptr, &self.ssd);
                        let rt = self.ssd.read_full_into(addr, t, &mut self.slots_scratch);
                        for (slot, r) in self.slots_scratch.iter().enumerate() {
                            if let Ok(oob) = r {
                                self.oobs_scratch[slot] = Some(*oob);
                            }
                        }
                        t = rt;
                        self.stats.rmw_operations += 1;
                    }
                }
                for lsn in s_lo..s_hi {
                    let slot = (lsn - lpn * page) as usize;
                    self.oobs_scratch[slot] = Some(Oob {
                        lsn,
                        seq: self.next_seq(),
                    });
                }
                let pd = match self.engine.try_program_page(
                    lpn,
                    &self.oobs_scratch,
                    &mut self.ssd,
                    &mut self.stats,
                    t,
                ) {
                    Ok(pd) => pd,
                    Err(_) => {
                        // Pool exhausted mid-flush: latch end-of-life and
                        // drop the remaining data (the old copies, if any,
                        // stay mapped). Subsequent writes are refused at
                        // the top of `write`.
                        self.reliability.latch_end_of_life(&mut self.stats);
                        t
                    }
                };
                done = done.max(pd);

                // Request-WAF attribution: the whole 16 KB page consumption is
                // divided among the new host sectors it carries.
                let share = f64::from(SECTORS_PER_PAGE) / f64::from(new_sectors);
                for lsn in s_lo..s_hi {
                    let idx = (lsn - chunk.start_lsn) as usize;
                    if chunk.origins[idx] {
                        self.stats.small_waf_flash_sectors += share;
                    }
                }
            }
            self.buffer.recycle(chunk);
        }
        done
    }
}

impl Ftl for CgmFtl {
    fn name(&self) -> &'static str {
        "cgmFTL"
    }

    fn logical_sectors(&self) -> u64 {
        self.logical_sectors
    }

    fn enable_tracing(&mut self, capacity: usize) {
        self.engine.enable_tracing(capacity);
        self.ssd.enable_tracing(capacity);
    }

    fn events(&self) -> Vec<TraceEvent> {
        merge_events(&[self.engine.trace(), self.ssd.trace()])
    }

    fn events_dropped(&self) -> u64 {
        self.engine.trace().dropped() + self.ssd.trace().dropped()
    }

    fn write(&mut self, lsn: u64, sectors: u32, sync: bool, issue: SimTime) -> SimTime {
        assert!(
            lsn + u64::from(sectors) <= self.logical_sectors,
            "write beyond logical capacity"
        );
        if self.ssd.device_failed() {
            // A failed device executes nothing; the shard is inert.
            return issue;
        }
        if self.reliability.refuse_write(&mut self.stats) {
            return issue;
        }
        self.stats.host_write_requests += 1;
        self.stats.host_write_sectors += u64::from(sectors);
        let small = sectors < SECTORS_PER_PAGE;
        if small {
            self.stats.small_write_requests += 1;
            self.stats.small_waf_host_sectors += u64::from(sectors);
        }
        self.buffer.insert(lsn, sectors, small);
        if sync {
            let mut chunks = std::mem::take(&mut self.chunks_scratch);
            self.buffer.take_overlapping_into(lsn, sectors, &mut chunks);
            let done = self.flush_chunks(&mut chunks, issue);
            self.chunks_scratch = chunks;
            done
        } else if self.buffer.is_full() {
            let mut chunks = std::mem::take(&mut self.chunks_scratch);
            self.buffer.drain_all_into(&mut chunks);
            self.flush_chunks(&mut chunks, issue);
            self.chunks_scratch = chunks;
            issue
        } else {
            issue
        }
    }

    fn read(&mut self, lsn: u64, sectors: u32, issue: SimTime) -> SimTime {
        if self.ssd.device_failed() {
            return issue;
        }
        self.stats.host_read_requests += 1;
        self.stats.host_read_sectors += u64::from(sectors);
        let mut issue = issue;
        if let Some(cache) = self.map_cache.as_mut() {
            let page = u64::from(SECTORS_PER_PAGE);
            let last = lsn + u64::from(sectors.max(1)) - 1;
            for lpn in lsn / page..=last / page {
                issue = cache.access(lpn, false, issue);
            }
        }
        let mut reclaim = Vec::new();
        let CgmFtl {
            ssd,
            engine,
            buffer,
            stats,
            reliability,
            slots_scratch,
            ..
        } = self;
        let (mut done, faulted) = read_sectors_coarse(
            lsn,
            sectors,
            issue,
            ssd,
            engine,
            buffer,
            stats,
            reliability,
            &mut reclaim,
            slots_scratch,
        );
        self.reliability.note_host_read(faulted, &mut self.stats);
        for lpn in reclaim {
            done = done.max(
                self.engine
                    .reclaim_page(lpn, &mut self.ssd, &mut self.stats, done),
            );
        }
        done
    }

    fn maintain(&mut self, now: SimTime) {
        if self.ssd.device_failed() {
            return;
        }
        let reads = self.ssd.device().stats().reads;
        if self.reliability.patrol_due(reads) {
            if let Some(limit) = self.reliability.scrub_limit() {
                self.engine
                    .scrub_disturbed(&mut self.ssd, &mut self.stats, limit, now);
            }
        }
        // Static wear leveling rides the maintenance tick (the idle hook
        // is reserved for background GC): the wear spread only changes on
        // erase, so the scan is re-armed per batch of erases and no-ops
        // entirely with wear leveling off.
        if self.engine.wear_leveling() {
            let erases = self.ssd.device().stats().erases;
            if erases >= self.next_wear_check {
                self.next_wear_check = erases + 16;
                self.engine
                    .wear_rotate(&mut self.ssd, &mut self.stats, now, self.wear_delta);
            }
        }
    }

    fn flush(&mut self, issue: SimTime) -> SimTime {
        if self.ssd.device_failed() {
            return issue;
        }
        let mut chunks = std::mem::take(&mut self.chunks_scratch);
        self.buffer.drain_all_into(&mut chunks);
        let done = self.flush_chunks(&mut chunks, issue);
        self.chunks_scratch = chunks;
        done
    }

    fn idle(&mut self, from: SimTime, until: SimTime) {
        if !self.background_gc || self.ssd.device_failed() {
            return;
        }
        let target = self.engine.watermark() + 2;
        self.engine
            .background_collect(&mut self.ssd, &mut self.stats, from, until, target);
    }

    fn stored_seq(&self, lsn: u64) -> Option<u64> {
        if self.buffer.contains(lsn) {
            return None;
        }
        let page = u64::from(SECTORS_PER_PAGE);
        let ptr = self.engine.lookup(lsn / page)?;
        let addr = self
            .engine
            .page_addr(ptr, &self.ssd)
            .subpage((lsn % page) as u8);
        match self.ssd.device().subpage_state(addr) {
            esp_nand::SubpageState::Written(w) => w.oob.filter(|o| o.lsn == lsn).map(|o| o.seq),
            _ => None,
        }
    }

    fn trim(&mut self, lsn: u64, sectors: u32) {
        self.buffer.discard(lsn, sectors);
        let page = u64::from(SECTORS_PER_PAGE);
        let (lo, hi) = (lsn, lsn + u64::from(sectors));
        // Page-granularity map: only fully-covered pages can be unmapped.
        let first_full = lo.div_ceil(page);
        let last_full = hi / page;
        for lpn in first_full..last_full {
            self.engine.unmap(lpn);
        }
    }

    fn mapping_memory_bytes(&self) -> u64 {
        match &self.map_cache {
            Some(cache) => cache.resident_bytes(),
            None => self.engine.mapping_bytes(),
        }
    }

    fn map_cache_stats(&self) -> Option<MapCacheStats> {
        self.map_cache.as_ref().map(MapCache::stats)
    }

    fn stats(&self) -> &FtlStats {
        &self.stats
    }

    fn end_of_life(&self) -> bool {
        self.reliability.end_of_life()
    }

    fn ssd(&self) -> &Ssd {
        &self.ssd
    }

    fn fail_device(&mut self) {
        self.ssd.device_mut().kill();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_trace;
    use esp_workload::{generate, IoRequest, SyntheticConfig, Trace};

    fn tiny_ftl() -> CgmFtl {
        CgmFtl::new(&FtlConfig::tiny())
    }

    #[test]
    fn sync_small_write_costs_rmw_after_first_version() {
        let mut ftl = tiny_ftl();
        // First write: page unmapped, no read needed.
        ftl.write(0, 1, true, SimTime::ZERO);
        assert_eq!(ftl.stats().rmw_operations, 0);
        // Overwrite of one sector of a mapped page: RMW.
        let t = SimTime::from_secs(1);
        ftl.write(0, 1, true, t);
        assert_eq!(ftl.stats().rmw_operations, 1);
    }

    #[test]
    fn full_aligned_write_avoids_rmw() {
        let mut ftl = tiny_ftl();
        ftl.write(0, 4, true, SimTime::ZERO);
        ftl.write(0, 4, true, SimTime::from_secs(1));
        assert_eq!(ftl.stats().rmw_operations, 0);
    }

    #[test]
    fn misaligned_full_write_needs_two_rmws_once_mapped() {
        let mut ftl = tiny_ftl();
        // Map both pages first.
        ftl.write(0, 8, true, SimTime::ZERO);
        // 16 KB write misaligned by one sector touches 2 pages partially.
        ftl.write(1, 4, true, SimTime::from_secs(1));
        assert_eq!(ftl.stats().rmw_operations, 2);
    }

    #[test]
    fn async_writes_buffer_and_merge() {
        let mut ftl = tiny_ftl();
        // Four adjacent async small writes: absorbed, one full-page program
        // on flush, no RMW.
        for i in 0..4 {
            ftl.write(i, 1, false, SimTime::ZERO);
        }
        assert_eq!(ftl.ssd().device().stats().full_programs, 0);
        ftl.flush(SimTime::ZERO);
        assert_eq!(ftl.ssd().device().stats().full_programs, 1);
        assert_eq!(ftl.stats().rmw_operations, 0);
        // Merged small writes achieve request WAF 1.
        assert!((ftl.stats().small_request_waf() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sync_small_write_request_waf_is_four() {
        let mut ftl = tiny_ftl();
        ftl.write(0, 1, true, SimTime::ZERO);
        assert!((ftl.stats().small_request_waf() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn read_your_writes() {
        let mut ftl = tiny_ftl();
        ftl.write(5, 3, true, SimTime::ZERO);
        let done = ftl.read(5, 3, SimTime::from_secs(1));
        assert!(done > SimTime::from_secs(1));
        assert_eq!(ftl.stats().read_faults, 0);
    }

    #[test]
    fn buffered_reads_cost_nothing() {
        let mut ftl = tiny_ftl();
        ftl.write(5, 1, false, SimTime::ZERO);
        let issue = SimTime::from_secs(1);
        let done = ftl.read(5, 1, issue);
        assert_eq!(done, issue, "buffer hit must not touch flash");
    }

    #[test]
    fn survives_sustained_random_small_sync_writes() {
        let mut ftl = tiny_ftl();
        let logical = ftl.logical_sectors();
        let cfg = SyntheticConfig {
            footprint_sectors: logical / 2,
            requests: 2_000,
            r_small: 1.0,
            r_synch: 1.0,
            zipf_theta: 0.5,
            ..SyntheticConfig::default()
        };
        let report = run_trace(&mut ftl, &generate(&cfg));
        assert!(report.stats.gc_invocations > 0, "GC exercised");
        assert_eq!(report.stats.read_faults, 0);
        assert!(report.iops > 0.0);
    }

    #[test]
    fn survives_faults_and_factory_bad_blocks() {
        let mut config = FtlConfig::tiny();
        config.fault = Some(esp_nand::FaultConfig {
            seed: 9,
            program_fail_prob: 0.02,
            erase_fail_prob: 0.01,
            factory_bad_blocks: 2,
            ..esp_nand::FaultConfig::default()
        });
        let mut ftl = CgmFtl::new(&config);
        assert_eq!(
            ftl.stats().blocks_retired,
            2,
            "factory bad blocks retired at mount"
        );
        let logical = ftl.logical_sectors();
        let cfg = SyntheticConfig {
            footprint_sectors: logical / 2,
            requests: 2_000,
            r_small: 0.5,
            r_synch: 1.0,
            zipf_theta: 0.5,
            ..SyntheticConfig::default()
        };
        let report = run_trace(&mut ftl, &generate(&cfg));
        assert_eq!(
            report.stats.read_faults, 0,
            "faults must never corrupt reads"
        );
        assert!(report.stats.write_retries > 0, "p=0.02 must force retries");
    }

    #[test]
    fn fault_runs_are_deterministic_per_seed() {
        let mut config = FtlConfig::tiny();
        config.fault = Some(esp_nand::FaultConfig {
            seed: 13,
            program_fail_prob: 0.02,
            erase_fail_prob: 0.01,
            ..esp_nand::FaultConfig::default()
        });
        let cfg = SyntheticConfig {
            footprint_sectors: CgmFtl::new(&config).logical_sectors() / 2,
            requests: 1_000,
            r_small: 0.5,
            r_synch: 1.0,
            ..SyntheticConfig::default()
        };
        let trace = generate(&cfg);
        let run = |c: &FtlConfig| {
            let mut ftl = CgmFtl::new(c);
            run_trace(&mut ftl, &trace)
        };
        let a = run(&config);
        let b = run(&config);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.stats.write_retries, b.stats.write_retries);
        assert_eq!(a.stats.blocks_retired, b.stats.blocks_retired);
        assert_eq!(a.erases, b.erases);
        let mut other = config.clone();
        other.fault = Some(esp_nand::FaultConfig {
            seed: 14,
            ..config.fault.clone().unwrap()
        });
        let c = run(&other);
        assert_ne!(
            (a.stats.write_retries, a.stats.erase_failures),
            (c.stats.write_retries, c.stats.erase_failures),
            "different fault seed, different fault history"
        );
    }

    #[test]
    fn unmapped_read_is_free() {
        let mut ftl = tiny_ftl();
        let issue = SimTime::from_secs(1);
        assert_eq!(ftl.read(100, 2, issue), issue);
        assert_eq!(ftl.stats().read_faults, 0);
    }

    #[test]
    fn hot_reads_stay_correctable_with_ladder_and_reclaim() {
        use esp_nand::{RetentionModel, RetryLadder};
        let mut config = FtlConfig::tiny();
        config.retention = RetentionModel::paper_default().with_read_disturb(2e-2);
        config.retry_ladder = Some(RetryLadder::paper_default());
        config.reclaim_threshold = Some(2);
        let mut ftl = CgmFtl::new(&config);
        ftl.write(0, 4, true, SimTime::ZERO);
        // Hammer one page far past the bare-ECC disturb budget (~108
        // senses at 2e-2 per read over a fresh block).
        let mut now = SimTime::from_secs(1);
        for _ in 0..600 {
            ftl.maintain(now);
            now = ftl.read(0, 4, now);
        }
        assert_eq!(ftl.stats().read_faults, 0, "pipeline must keep data alive");
        assert!(
            ftl.stats().read_reclaims > 0 || ftl.stats().disturb_scrubs > 0,
            "mitigation must actually have run"
        );
        assert!(
            ftl.ssd().device().stats().recovered_reads > 0,
            "the ladder carried reads past the base limit"
        );
    }

    #[test]
    fn hot_reads_without_mitigation_lose_data_and_can_latch_read_only() {
        use esp_nand::RetentionModel;
        let mut config = FtlConfig::tiny();
        config.retention = RetentionModel::paper_default().with_read_disturb(2e-2);
        config.read_only_on_loss = true;
        let mut ftl = CgmFtl::new(&config);
        ftl.write(0, 4, true, SimTime::ZERO);
        let mut now = SimTime::from_secs(1);
        for _ in 0..300 {
            now = ftl.read(0, 4, now);
        }
        assert!(
            ftl.stats().read_faults > 0,
            "no ladder, no reclaim: disturb must eventually win"
        );
        assert_eq!(
            ftl.stats().read_faults_retention,
            ftl.stats().read_faults,
            "every fault here is a BER (retention-class) fault"
        );
        assert_eq!(ftl.stats().read_only_trips, 1);
        let before = ftl.ssd().device().stats().full_programs;
        ftl.write(8, 4, true, now);
        assert_eq!(
            ftl.stats().writes_dropped_read_only,
            1,
            "latched FTL refuses writes"
        );
        assert_eq!(
            ftl.ssd().device().stats().full_programs,
            before,
            "refused write must not touch flash"
        );
    }

    #[test]
    fn run_trace_reports_sync_serialization() {
        let mut ftl = tiny_ftl();
        let mut t = Trace::new(64);
        for i in 0..8u64 {
            t.push(IoRequest::write(SimTime::ZERO, i * 4, 4, true));
        }
        let report = run_trace(&mut ftl, &t);
        // 8 sync full-page writes at >= 1640 us each, serialized.
        assert!(report.makespan >= SimTime::from_micros(8 * 1640));
        assert_eq!(report.requests, 8);
    }
}

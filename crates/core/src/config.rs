//! FTL configuration.

use std::fmt;

use esp_nand::{FaultConfig, Geometry, NandTiming, RetentionModel, RetryLadder};
use esp_sim::SimDuration;
use esp_workload::SECTORS_PER_PAGE;

use crate::gc_policy::GcPolicyKind;
use crate::map_cache::MapCacheConfig;

/// What subFTL's subpage-region GC does with a victim block's valid
/// subpages (paper §4.2; the default refines the paper's rule with a
/// second chance — see the ablation `ablation_eviction`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EvictionPolicy {
    /// Updated subpages stay in the region but their updated flag is
    /// cleared; if they are not updated again by the next GC encounter,
    /// they are evicted then. Never-updated subpages are evicted now.
    #[default]
    SecondChance,
    /// The paper's literal rule: subpages "that have been updated at least
    /// once" move within the region (and keep counting as hot forever);
    /// never-updated subpages are evicted.
    KeepUpdatedForever,
    /// Evict every valid subpage to the full-page region (no hot/cold
    /// separation; stresses RMW eviction).
    EvictAll,
    /// Keep every valid subpage in the region (no cold eviction; only the
    /// retention scrubber ever demotes data).
    KeepAll,
}

impl fmt::Display for EvictionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            EvictionPolicy::SecondChance => "second-chance",
            EvictionPolicy::KeepUpdatedForever => "keep-updated",
            EvictionPolicy::EvictAll => "evict-all",
            EvictionPolicy::KeepAll => "keep-all",
        };
        f.write_str(name)
    }
}

/// Configuration shared by all three FTLs (cgmFTL, fgmFTL, subFTL).
///
/// The defaults reproduce the paper's §5 setup where the paper specifies a
/// value, and use stated, conventional values elsewhere:
///
/// * subpage region = **20 %** of flash (paper §4),
/// * retention-scrub threshold = **15 days** of the 1-month device bound
///   (paper §4.3),
/// * full-page program 1600 µs / subpage program 1300 µs (paper §5),
/// * exported (logical) capacity = 75 % of raw flash. The paper does not
///   state its over-provisioning; 25 % is chosen so that subFTL's full-page
///   region (80 % of raw) can always hold the entire logical space, and the
///   *same* logical capacity is exported by all three FTLs so comparisons
///   are apples-to-apples.
///
/// # Examples
///
/// ```
/// use esp_core::FtlConfig;
///
/// let cfg = FtlConfig::paper_default();
/// assert!((cfg.subpage_region_fraction - 0.20).abs() < 1e-12);
/// assert!(cfg.logical_sectors() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct FtlConfig {
    /// NAND geometry (channels × ways × blocks × pages × subpages).
    pub geometry: Geometry,
    /// NAND operation latencies.
    pub timing: NandTiming,
    /// Subpage-aware retention model.
    pub retention: RetentionModel,
    /// Fraction of raw capacity hidden from the host (over-provisioning).
    pub overprovision: f64,
    /// Write-buffer capacity in 4 KB sectors.
    pub write_buffer_sectors: usize,
    /// GC starts when a region's free-block count drops below this.
    pub gc_free_watermark: u32,
    /// Fraction of blocks assigned to subFTL's subpage region (paper: 0.20).
    pub subpage_region_fraction: f64,
    /// subFTL evicts subpages older than this to the full-page region
    /// (paper: 15 days against the 1-month device bound).
    pub retention_threshold: SimDuration,
    /// How often subFTL scans for over-age subpages.
    pub retention_scan_interval: SimDuration,
    /// Wear-leveling: swap free blocks between regions when the P/E delta
    /// exceeds this.
    pub wear_delta_threshold: u32,
    /// How many erased blocks a subpage-region GC episode reclaims before
    /// writing resumes (0 = automatic: every profitable victim). Reclaiming
    /// a batch keeps several blocks in write rotation, so consecutive laps
    /// of one block are separated by writes to the others and hot subpages
    /// are overwritten (rather than migrated) in between.
    pub subpage_gc_batch: u32,
    /// Hot/cold handling in subpage-region GC.
    pub eviction_policy: EvictionPolicy,
    /// Run garbage collection in host idle windows (an extension beyond
    /// the paper; see the `future_background_gc` experiment). Off by
    /// default to match the paper's foreground-GC behaviour.
    pub background_gc: bool,
    /// Independent planes per chip (cell operations on different planes of
    /// one chip overlap; blocks alternate planes). 1 matches the paper's
    /// timing assumptions; 2 models typical multi-plane TLC dies.
    pub planes_per_chip: u32,
    /// Program/erase fault injection (factory + grown bad blocks, write
    /// retries). `None` — the default — disables the fault model entirely:
    /// the device draws no randomness and every baseline result is
    /// bit-identical to a fault-free build.
    pub fault: Option<FaultConfig>,
    /// subFTL: durability-first variants of the internal operations that
    /// otherwise leave mid-operation power-loss windows (found by the
    /// crash harness; see `crash_harness` module docs):
    ///
    /// * **Lap migration / same-sector overwrite.** The paper's in-place
    ///   migration re-programs a valid subpage *on its own page* — if
    ///   power dies mid-pulse the only durable copy is destroyed
    ///   (Fig 4(b)); overwriting a sector whose previous version occupies
    ///   the target page has the same window. With this flag the occupant
    ///   is instead evicted to the full-page region (the old copy stays
    ///   intact until the relocation completes).
    /// * **Buffer-shadowed GC/scrub drops.** Fast mode treats a flash copy
    ///   as garbage once a newer version sits in the DRAM write buffer;
    ///   erasing it before the buffer flushes loses the sector's only
    ///   durable version if power dies. With this flag shadowed copies are
    ///   relocated like any other live data.
    ///
    /// Both trade extra eviction traffic for crash safety. Off by default:
    /// the fast paths match the paper and stay bit-identical to
    /// pre-crash-model builds.
    pub crash_safe_mode: bool,
    /// Tiered read-retry ladder installed on the device: reads whose BER
    /// lands above the base ECC limit are re-sensed at shifted reference
    /// voltages (each step charging extra cell time) and finally soft
    /// decoded, instead of failing outright. `None` — the default — keeps
    /// the single-sense behaviour and every baseline result bit-identical.
    pub retry_ladder: Option<RetryLadder>,
    /// Read-reclaim: a read that needed at least this many hard ladder
    /// rungs (or the soft-decode pass) has its data relocated to a fresh
    /// location, resetting its retention age and escaping its disturbed
    /// block. Also enables the background read-disturb patrol when the
    /// retention model charges a per-read disturb term. Requires
    /// `retry_ladder`; `None` disables reclaim and the patrol.
    pub reclaim_threshold: Option<u32>,
    /// Graceful degradation: after the first uncorrectable host read the
    /// FTL latches read-only (subsequent writes are refused and counted in
    /// `writes_dropped_read_only`), preserving remaining data for salvage
    /// instead of continuing to mutate a failing device. Off by default.
    pub read_only_on_loss: bool,
    /// Wear leveling across each FTL's block pools: wear-biased GC victim
    /// selection (dynamic) plus cold-block rotation when the effective P/E
    /// spread exceeds `wear_delta_threshold` (static). Off by default: with
    /// it off every result is bit-identical to pre-wear-leveling builds.
    pub wear_leveling: bool,
    /// AERO-style adaptive erase (arXiv 2404.10355): lightly-worn blocks
    /// are erased with shallower, faster pulses that charge fractional
    /// oxide stress, extending lifetime. Off by default for bit-identity.
    pub adaptive_erase: bool,
    /// GC victim-selection policy shared by every victim site (see
    /// [`crate::GcPolicyKind`]). Greedy — the default — reproduces the
    /// historical hard-coded behaviour bit-for-bit.
    pub gc_policy: GcPolicyKind,
    /// DFTL-style demand-cached mapping for the page-mapped FTLs
    /// (cgmFTL, fgmFTL): a bounded CMT of cached translation pages
    /// backed by flash-resident translation pages, with miss/evict
    /// traffic charged to the device timeline. `None` — the default —
    /// keeps the whole map resident and every result bit-identical.
    pub map_cache: Option<MapCacheConfig>,
}

impl FtlConfig {
    /// The paper's configuration over the default 4 GiB-shaped device.
    #[must_use]
    pub fn paper_default() -> Self {
        FtlConfig {
            geometry: Geometry::paper_default(),
            timing: NandTiming::paper_default(),
            retention: RetentionModel::paper_default(),
            overprovision: 0.25,
            write_buffer_sectors: 2048, // 8 MiB
            gc_free_watermark: 2,
            subpage_region_fraction: 0.20,
            retention_threshold: SimDuration::from_days(15),
            retention_scan_interval: SimDuration::from_days(1),
            wear_delta_threshold: 20,
            subpage_gc_batch: 0,
            eviction_policy: EvictionPolicy::SecondChance,
            background_gc: false,
            planes_per_chip: 1,
            fault: None,
            crash_safe_mode: false,
            retry_ladder: None,
            reclaim_threshold: None,
            read_only_on_loss: false,
            wear_leveling: false,
            adaptive_erase: false,
            gc_policy: GcPolicyKind::Greedy,
            map_cache: None,
        }
    }

    /// A small configuration for unit tests (tiny geometry, tiny buffer,
    /// generous over-provisioning so GC headroom exists on 16 blocks).
    #[must_use]
    pub fn tiny() -> Self {
        FtlConfig {
            geometry: Geometry::tiny(),
            write_buffer_sectors: 16,
            overprovision: 0.5,
            ..FtlConfig::paper_default()
        }
    }

    /// Number of logical sectors exported to the host: raw sectors scaled by
    /// `1 - overprovision`, rounded down to a full-page multiple.
    #[must_use]
    pub fn logical_sectors(&self) -> u64 {
        let raw = self.geometry.subpage_count();
        let logical = (raw as f64 * (1.0 - self.overprovision)) as u64;
        logical / u64::from(SECTORS_PER_PAGE) * u64::from(SECTORS_PER_PAGE)
    }

    /// Validates ranges and cross-field consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field, including the
    /// requirement that the full-page region can hold all logical data.
    pub fn validate(&self) -> Result<(), String> {
        self.geometry.validate()?;
        // The FTL layer works in 4 KB host sectors mapped 1:1 onto
        // subpages; other shapes would silently corrupt the RMW/packing
        // logic, so reject them loudly.
        if self.geometry.subpages_per_page != SECTORS_PER_PAGE {
            return Err(format!(
                "FTLs require {} subpages per page (geometry has {})",
                SECTORS_PER_PAGE, self.geometry.subpages_per_page
            ));
        }
        if u64::from(self.geometry.subpage_bytes) != esp_workload::SECTOR_BYTES {
            return Err(format!(
                "FTLs require {} B subpages (geometry has {})",
                esp_workload::SECTOR_BYTES,
                self.geometry.subpage_bytes
            ));
        }
        if !(0.0..1.0).contains(&self.overprovision) {
            return Err(format!(
                "overprovision must be in [0,1), got {}",
                self.overprovision
            ));
        }
        if !(0.0..1.0).contains(&self.subpage_region_fraction) {
            return Err(format!(
                "subpage_region_fraction must be in [0,1), got {}",
                self.subpage_region_fraction
            ));
        }
        if self.gc_free_watermark < 2 {
            return Err("gc_free_watermark must be at least 2".into());
        }
        if self.write_buffer_sectors == 0 {
            return Err("write_buffer_sectors must be non-zero".into());
        }
        let full_fraction = 1.0 - self.subpage_region_fraction;
        let full_sectors = (self.geometry.subpage_count() as f64 * full_fraction) as u64;
        let watermark_sectors = u64::from(self.gc_free_watermark + 2)
            * u64::from(self.geometry.pages_per_block)
            * u64::from(self.geometry.subpages_per_page);
        if self.logical_sectors() + watermark_sectors > full_sectors {
            return Err(format!(
                "logical capacity ({} sectors) does not fit in the full-page \
                 region ({} sectors) with GC headroom; raise overprovision or \
                 lower subpage_region_fraction",
                self.logical_sectors(),
                full_sectors
            ));
        }
        if self.planes_per_chip == 0 {
            return Err("planes_per_chip must be at least 1".into());
        }
        if self.retention_threshold >= SimDuration::from_months(1) {
            return Err("retention_threshold must be below the 1-month device bound".into());
        }
        if let Some(ladder) = &self.retry_ladder {
            ladder.validate()?;
        }
        if let Some(threshold) = self.reclaim_threshold {
            let Some(ladder) = &self.retry_ladder else {
                return Err("reclaim_threshold requires a retry_ladder".into());
            };
            if threshold == 0 {
                return Err("reclaim_threshold must be at least 1 rung".into());
            }
            if threshold > ladder.hard_steps {
                return Err(format!(
                    "reclaim_threshold ({threshold}) exceeds the ladder's \
                     {} hard steps; no hard-step read could ever trigger it",
                    ladder.hard_steps
                ));
            }
        }
        if let Some(cache) = &self.map_cache {
            if cache.cmt_pages < 2 {
                return Err(format!(
                    "map_cache.cmt_pages must be at least 2 (got {}); a \
                     single slot thrashes on every read-modify-write",
                    cache.cmt_pages
                ));
            }
        }
        if let Some(fault) = &self.fault {
            fault.validate()?;
            // The FTLs must survive losing every factory bad block from
            // whichever region it lands in; 12.5 % of the device is a
            // generous ceiling (real parts specify ~2 %).
            let cap = (self.geometry.block_count() / 8).max(1);
            if fault.factory_bad_blocks > cap {
                return Err(format!(
                    "factory_bad_blocks ({}) exceeds what the block budget \
                     tolerates ({cap})",
                    fault.factory_bad_blocks
                ));
            }
        }
        Ok(())
    }
}

impl Default for FtlConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_validates() {
        FtlConfig::paper_default().validate().unwrap();
        FtlConfig::tiny().validate().unwrap();
    }

    #[test]
    fn logical_capacity_is_page_aligned_and_below_raw() {
        let cfg = FtlConfig::paper_default();
        let logical = cfg.logical_sectors();
        assert_eq!(logical % u64::from(SECTORS_PER_PAGE), 0);
        assert!(logical < cfg.geometry.subpage_count());
        assert!(logical > cfg.geometry.subpage_count() / 2);
    }

    #[test]
    fn validate_rejects_overcommitted_full_region() {
        let cfg = FtlConfig {
            overprovision: 0.05,
            subpage_region_fraction: 0.30,
            ..FtlConfig::paper_default()
        };
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("full-page region"), "{err}");
    }

    #[test]
    fn validate_rejects_threshold_beyond_device_bound() {
        let cfg = FtlConfig {
            retention_threshold: SimDuration::from_days(40),
            ..FtlConfig::paper_default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_rejects_foreign_subpage_shape() {
        let mut cfg = FtlConfig::paper_default();
        cfg.geometry.subpages_per_page = 8;
        assert!(cfg.validate().unwrap_err().contains("subpages per page"));
        let mut cfg = FtlConfig::paper_default();
        cfg.geometry.subpage_bytes = 2048;
        assert!(cfg.validate().unwrap_err().contains("B subpages"));
    }

    #[test]
    fn validate_checks_fault_config() {
        let cfg = FtlConfig {
            fault: Some(FaultConfig {
                program_fail_prob: 2.0,
                ..FaultConfig::default()
            }),
            ..FtlConfig::paper_default()
        };
        assert!(cfg.validate().unwrap_err().contains("program_fail_prob"));
        let cfg = FtlConfig {
            fault: Some(FaultConfig {
                factory_bad_blocks: 100_000,
                ..FaultConfig::default()
            }),
            ..FtlConfig::paper_default()
        };
        assert!(cfg.validate().unwrap_err().contains("factory_bad_blocks"));
        let cfg = FtlConfig {
            fault: Some(FaultConfig {
                seed: 1,
                program_fail_prob: 1e-4,
                erase_fail_prob: 1e-5,
                factory_bad_blocks: 2,
                ..FaultConfig::default()
            }),
            ..FtlConfig::tiny()
        };
        cfg.validate().unwrap();
    }

    #[test]
    fn validate_checks_read_reliability_knobs() {
        // Reclaim without a ladder is rejected.
        let cfg = FtlConfig {
            reclaim_threshold: Some(2),
            ..FtlConfig::paper_default()
        };
        assert!(cfg.validate().unwrap_err().contains("retry_ladder"));
        // Zero rungs rejected; beyond the ladder rejected.
        let cfg = FtlConfig {
            retry_ladder: Some(RetryLadder::paper_default()),
            reclaim_threshold: Some(0),
            ..FtlConfig::paper_default()
        };
        assert!(cfg.validate().is_err());
        let cfg = FtlConfig {
            retry_ladder: Some(RetryLadder::paper_default()),
            reclaim_threshold: Some(9),
            ..FtlConfig::paper_default()
        };
        assert!(cfg.validate().unwrap_err().contains("hard steps"));
        // A degenerate ladder is caught by its own validation.
        let cfg = FtlConfig {
            retry_ladder: Some(RetryLadder {
                hard_steps: 0,
                step_uplift: 0.0,
                soft_uplift: 0.0,
            }),
            ..FtlConfig::paper_default()
        };
        assert!(cfg.validate().is_err());
        // The full stack validates.
        let cfg = FtlConfig {
            retry_ladder: Some(RetryLadder::paper_default()),
            reclaim_threshold: Some(2),
            read_only_on_loss: true,
            ..FtlConfig::paper_default()
        };
        cfg.validate().unwrap();
    }

    #[test]
    fn validate_rejects_degenerate_map_cache() {
        let cfg = FtlConfig {
            map_cache: Some(MapCacheConfig { cmt_pages: 1 }),
            ..FtlConfig::paper_default()
        };
        assert!(cfg.validate().unwrap_err().contains("cmt_pages"));
        let cfg = FtlConfig {
            map_cache: Some(MapCacheConfig { cmt_pages: 2 }),
            ..FtlConfig::paper_default()
        };
        cfg.validate().unwrap();
    }

    #[test]
    fn validate_rejects_tiny_watermark() {
        let cfg = FtlConfig {
            gc_free_watermark: 1,
            ..FtlConfig::paper_default()
        };
        assert!(cfg.validate().is_err());
    }
}

//! Systematic crash-consistency checking.
//!
//! The storage stack can now be cut mid-operation ([`esp_ssd::CrashPoint`]
//! tears the nth NAND command, leaving torn pages/blocks behind), and every
//! FTL can remount from the flash image. This module turns those two
//! mechanisms into a *harness* that proves the durability contract holds at
//! **every** possible crash point of a workload:
//!
//! 1. **Reference run.** The workload replays once to completion on a fresh
//!    FTL, instrumented per host operation: after each synchronous write
//!    (and each explicit flush) the harness records the on-flash sequence
//!    number of every sector just made durable, keyed by the NAND command
//!    count at that moment. This is the **sync-durability oracle**: a
//!    piecewise floor `commands → {lsn → seq}` of what must survive any
//!    later power cut.
//! 2. **Crash runs.** For each crash point `n`, the same workload replays
//!    on a fresh FTL with the crash armed. Simulation is deterministic, so
//!    the crashed run is prefix-identical to the reference run: commands
//!    `1..n` complete, command `n` is torn, and the oracle's floor at `n`
//!    is exact. The harness then power-cycles (clears the crash, keeps the
//!    flash image), remounts via the FTL's `recover` constructor, and
//!    checks:
//!    * **remount succeeds** — recovery classifies and quarantines torn
//!      state instead of panicking;
//!    * **synced data survives** — every oracle floor entry reads back with
//!      at least its recorded sequence number (a newer version is fine: the
//!      crash may have cut a later overwrite after its program landed);
//!    * **recovery is idempotent** — remounting the recovered image again,
//!      with no intervening writes, yields the identical mapping table and
//!      identical free/bad pools;
//!    * **nothing corrupt surfaces** — reading back every sector the
//!      workload ever touched produces zero read faults (unsynced data may
//!      be *lost*, never *garbled*).
//!
//! Crash points are swept exhaustively over the first commands and
//! seeded-randomly over the rest ([`CrashHarness::sweep`]); the `espsim
//! crash-sweep` command drives the same harness from the CLI. Each crash
//! point builds its own fresh FTL from the shared immutable oracle, so
//! the sweep fans points out one-per-core with [`esp_sim::par_map`] —
//! the report is merged in point order and is byte-identical no matter
//! how many cores ran it.
//!
//! subFTL note: its fast paths trade crash-consistency windows for
//! performance — in-place lap migration (Fig. 4(b) sibling destruction)
//! and GC/scrub dropping flash copies shadowed by the volatile write
//! buffer; sweeps run it with [`FtlConfig::crash_safe_mode`] enabled,
//! which closes both windows (see the flag's documentation).

use std::collections::BTreeMap;

use esp_sim::{Rng, SimTime};
use esp_ssd::{CrashPoint, Ssd};

use crate::cgm::CgmFtl;
use crate::config::FtlConfig;
use crate::fgm::FgmFtl;
use crate::runner::Ftl;
use crate::sector_log::SectorLogFtl;
use crate::sub::SubFtl;

/// One host-level operation of a crash-harness workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashOp {
    /// Host write; `sync` means the data must be durable at completion.
    Write {
        /// First logical sector.
        lsn: u64,
        /// Number of sectors.
        sectors: u32,
        /// Synchronous (O_SYNC / fsync-per-write) semantics.
        sync: bool,
    },
    /// Host read.
    Read {
        /// First logical sector.
        lsn: u64,
        /// Number of sectors.
        sectors: u32,
    },
    /// Host trim/discard: the range's durability obligation is dropped.
    Trim {
        /// First logical sector.
        lsn: u64,
        /// Number of sectors.
        sectors: u32,
    },
    /// Drain the write buffer (fsync of everything outstanding).
    Flush,
}

impl CrashOp {
    /// The logical sectors this op touches (empty for flush).
    fn range(&self) -> std::ops::Range<u64> {
        match *self {
            CrashOp::Write { lsn, sectors, .. }
            | CrashOp::Read { lsn, sectors }
            | CrashOp::Trim { lsn, sectors } => lsn..lsn + u64::from(sectors),
            CrashOp::Flush => 0..0,
        }
    }
}

/// Generates a reproducible mixed workload for crash sweeps: weighted
/// toward small synchronous writes (the paper's motivating pattern, and
/// the one that exercises ESP laps, migration and eviction), with async
/// writes, reads, trims and flushes mixed in. Always ends with a flush so
/// the reference run leaves no buffered data unaccounted.
#[must_use]
pub fn random_workload(rng: &mut Rng, logical_sectors: u64, ops: usize) -> Vec<CrashOp> {
    assert!(logical_sectors > 4, "workload needs some logical space");
    let max_start = logical_sectors - 4;
    let mut out = Vec::with_capacity(ops + 1);
    for _ in 0..ops {
        out.push(match rng.next_below(10) {
            0..=5 => CrashOp::Write {
                lsn: rng.next_below(max_start),
                sectors: rng.next_in(1, 4) as u32,
                sync: rng.chance(0.7),
            },
            6 | 7 => CrashOp::Read {
                lsn: rng.next_below(max_start),
                sectors: rng.next_in(1, 4) as u32,
            },
            8 => CrashOp::Trim {
                lsn: rng.next_below(max_start),
                sectors: rng.next_in(1, 4) as u32,
            },
            _ => CrashOp::Flush,
        });
    }
    out.push(CrashOp::Flush);
    out
}

/// An FTL the crash harness can drive: buildable from a config,
/// recoverable from a flash image, and able to digest its allocation
/// pools for the idempotence check. Implemented by all four FTLs.
pub trait CrashTarget: Ftl + Sized {
    /// Builds a fresh instance over an empty device.
    fn build(config: &FtlConfig) -> Self;
    /// Remounts from a flash image (power-loss recovery).
    fn recover_from(ssd: Ssd, config: &FtlConfig) -> Self;
    /// Mutable access to the underlying SSD, for arming crash points.
    fn ssd_mut(&mut self) -> &mut Ssd;
    /// Clock-independent digest of the free/bad/active block pools; two
    /// mounts of the same flash image must produce equal digests.
    fn pool_fingerprint(&self) -> Vec<u64>;
}

macro_rules! impl_crash_target {
    ($ty:ty) => {
        impl CrashTarget for $ty {
            fn build(config: &FtlConfig) -> Self {
                Self::new(config)
            }
            fn recover_from(ssd: Ssd, config: &FtlConfig) -> Self {
                Self::recover(ssd, config)
            }
            fn ssd_mut(&mut self) -> &mut Ssd {
                self.ssd_mut()
            }
            fn pool_fingerprint(&self) -> Vec<u64> {
                self.pool_fingerprint()
            }
        }
    };
}

impl_crash_target!(CgmFtl);
impl_crash_target!(FgmFtl);
impl_crash_target!(SubFtl);
impl_crash_target!(SectorLogFtl);

/// Applies one workload op with the harness's host semantics (queue depth
/// 1, maintenance before each request, clock advancing on synchronous
/// completions — mirroring [`crate::run_trace`]). Returns the new clock.
fn apply_op<F: Ftl>(ftl: &mut F, op: &CrashOp, clock: SimTime) -> SimTime {
    ftl.maintain(clock);
    match *op {
        CrashOp::Write { lsn, sectors, sync } => {
            let done = ftl.write(lsn, sectors, sync, clock);
            if sync {
                done
            } else {
                clock
            }
        }
        CrashOp::Read { lsn, sectors } => ftl.read(lsn, sectors, clock),
        CrashOp::Trim { lsn, sectors } => {
            ftl.trim(lsn, sectors);
            clock
        }
        CrashOp::Flush => ftl.flush(clock),
    }
}

/// Oracle delta recorded after one reference-run op.
#[derive(Debug, Clone)]
enum OracleEvent {
    /// `lsn` became durable on flash with sequence number `seq`.
    Floor { lsn: u64, seq: u64 },
    /// `lsn` was trimmed: its durability obligation is dropped.
    Clear { lsn: u64 },
}

/// One reference-run op's oracle contribution, keyed by the NAND command
/// count after the op completed.
#[derive(Debug, Clone)]
struct Checkpoint {
    commands_after: u64,
    events: Vec<OracleEvent>,
}

/// Outcome of one crash-point check that passed.
#[derive(Debug, Clone, Copy)]
pub struct CrashCase {
    /// Whether the crash actually fired (a point beyond the workload's
    /// command count degenerates to a crash-free run).
    pub crashed: bool,
    /// Torn pages the remount scan quarantined.
    pub torn_pages: u64,
}

/// Aggregate result of [`CrashHarness::sweep`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepReport {
    /// FTL display name.
    pub ftl: &'static str,
    /// NAND commands the full (crash-free) workload issues.
    pub total_commands: u64,
    /// Crash points checked.
    pub cases: u64,
    /// Cases where the crash actually fired mid-workload.
    pub crashed_cases: u64,
    /// Torn pages quarantined across all remounts.
    pub torn_pages: u64,
    /// Violations: (crash command, description). Empty means the sweep
    /// passed.
    pub failures: Vec<(u64, String)>,
}

impl SweepReport {
    /// True when every checked crash point upheld the durability contract.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The crash-consistency harness for one (FTL type, config, workload)
/// triple. Construction performs the instrumented reference run; each
/// [`CrashHarness::check_crash_at`] call replays with a crash armed and
/// verifies the contract (see the module docs).
#[derive(Debug)]
pub struct CrashHarness<F: CrashTarget> {
    config: FtlConfig,
    ops: Vec<CrashOp>,
    name: &'static str,
    timeline: Vec<Checkpoint>,
    total_commands: u64,
    reference_stats: crate::stats::FtlStats,
    /// Sorted, deduplicated sectors the workload touches (bounds the
    /// read-back pass: everything else is never written, in any run).
    touched: Vec<u64>,
    /// `fn() -> F` rather than `F`: the harness never stores an FTL, so
    /// it stays `Send + Sync` (and sweeps can fan out across cores) even
    /// though the FTLs themselves are single-threaded state machines.
    _ftl: std::marker::PhantomData<fn() -> F>,
}

impl<F: CrashTarget> CrashHarness<F> {
    /// Runs the workload to completion on a fresh FTL and builds the
    /// sync-durability oracle.
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid (propagated from the FTL
    /// constructor).
    #[must_use]
    pub fn new(config: &FtlConfig, ops: &[CrashOp]) -> Self {
        let mut ftl = F::build(config);
        let mut clock = SimTime::ZERO;
        let mut buffered: Vec<u64> = Vec::new();
        let mut timeline = Vec::with_capacity(ops.len());
        for op in ops {
            clock = apply_op(&mut ftl, op, clock);
            let mut events = Vec::new();
            match *op {
                CrashOp::Write { sync: true, .. } => {
                    for lsn in op.range() {
                        buffered.retain(|&b| b != lsn);
                        // `stored_seq` is None only if a newer copy still
                        // sits in DRAM; a sync write just flushed its own
                        // sectors, so this claims a floor for each.
                        if let Some(seq) = ftl.stored_seq(lsn) {
                            events.push(OracleEvent::Floor { lsn, seq });
                        }
                    }
                }
                CrashOp::Write { sync: false, .. } => {
                    for lsn in op.range() {
                        if !buffered.contains(&lsn) {
                            buffered.push(lsn);
                        }
                    }
                }
                CrashOp::Read { .. } => {}
                CrashOp::Trim { .. } => {
                    for lsn in op.range() {
                        buffered.retain(|&b| b != lsn);
                        events.push(OracleEvent::Clear { lsn });
                    }
                }
                CrashOp::Flush => {
                    // Everything buffered is durable once the flush
                    // completes.
                    for lsn in buffered.drain(..) {
                        if let Some(seq) = ftl.stored_seq(lsn) {
                            events.push(OracleEvent::Floor { lsn, seq });
                        }
                    }
                }
            }
            timeline.push(Checkpoint {
                commands_after: ftl.ssd().commands_issued(),
                events,
            });
        }
        let mut touched: Vec<u64> = ops.iter().flat_map(CrashOp::range).collect();
        touched.sort_unstable();
        touched.dedup();
        CrashHarness {
            config: config.clone(),
            ops: ops.to_vec(),
            name: ftl.name(),
            timeline,
            total_commands: ftl.ssd().commands_issued(),
            reference_stats: ftl.stats().clone(),
            touched,
            _ftl: std::marker::PhantomData,
        }
    }

    /// NAND commands the crash-free workload issues; crash points beyond
    /// this never fire.
    #[must_use]
    pub fn total_commands(&self) -> u64 {
        self.total_commands
    }

    /// Display name of the FTL under test.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// FTL counters from the instrumented reference run, for asserting the
    /// workload exercised the machinery of interest (GC, retries,
    /// migrations) before trusting a sweep over it.
    #[must_use]
    pub fn reference_stats(&self) -> &crate::stats::FtlStats {
        &self.reference_stats
    }

    /// The durability floor in force when command `n` is torn: the oracle
    /// state after the last host op that fully completed before it.
    fn floors_at(&self, n: u64) -> BTreeMap<u64, u64> {
        let mut floors = BTreeMap::new();
        for cp in &self.timeline {
            // Commands 1..n complete before the cut, so an op (and any
            // trim riding program order behind it) counts iff it finished
            // within them.
            if cp.commands_after >= n {
                break;
            }
            for ev in &cp.events {
                match *ev {
                    OracleEvent::Floor { lsn, seq } => {
                        floors.insert(lsn, seq);
                    }
                    OracleEvent::Clear { lsn } => {
                        floors.remove(&lsn);
                    }
                }
            }
        }
        floors
    }

    /// Replays the workload with a power cut at NAND command `n`,
    /// power-cycles, remounts, and verifies the durability contract.
    /// Returns a violation description on failure (a panic anywhere in the
    /// crashed run or remount is also reported as a violation).
    ///
    /// # Errors
    ///
    /// Returns the first contract violation found at this crash point.
    pub fn check_crash_at(&self, n: u64) -> Result<CrashCase, String> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.check_inner(n)))
            .unwrap_or_else(|payload| {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                Err(format!("crash at command {n}: panicked: {msg}"))
            })
    }

    fn check_inner(&self, n: u64) -> Result<CrashCase, String> {
        let mut ftl = F::build(&self.config);
        ftl.ssd_mut().set_crash_point(CrashPoint::Command(n));
        let mut clock = SimTime::ZERO;
        for op in &self.ops {
            clock = apply_op(&mut ftl, op, clock);
        }
        let crashed = ftl.ssd().crashed();
        // Power-cycle: keep the flash image, restore power, remount.
        let mut image = ftl.ssd().clone();
        image.clear_crash();
        let mut recovered = F::recover_from(image, &self.config);

        // Synced data survives: every floor entry reads back with at least
        // its recorded version.
        for (lsn, floor) in self.floors_at(n) {
            match recovered.stored_seq(lsn) {
                Some(seq) if seq >= floor => {}
                got => {
                    return Err(format!(
                        "crash at command {n}: sector {lsn} was durable with seq {floor}, \
                         recovered as {got:?}"
                    ));
                }
            }
        }

        // Recovery is idempotent: remounting the recovered image with no
        // intervening writes reproduces the mapping table and pools.
        let again = F::recover_from(recovered.ssd().clone(), &self.config);
        for &lsn in &self.touched {
            let (a, b) = (recovered.stored_seq(lsn), again.stored_seq(lsn));
            if a != b {
                return Err(format!(
                    "crash at command {n}: second remount changed sector {lsn}: {a:?} -> {b:?}"
                ));
            }
        }
        if recovered.pool_fingerprint() != again.pool_fingerprint() {
            return Err(format!(
                "crash at command {n}: second remount changed the free/bad pools"
            ));
        }

        // Nothing corrupt surfaces: reading back every touched sector must
        // produce zero read faults (lost-and-unmapped is fine; garbled is
        // not).
        let faults_before = recovered.stats().read_faults;
        let mut clock = recovered.ssd().makespan();
        for &lsn in &self.touched {
            clock = recovered.read(lsn, 1, clock);
        }
        let faults = recovered.stats().read_faults - faults_before;
        if faults > 0 {
            return Err(format!(
                "crash at command {n}: {faults} corrupt sector(s) surfaced after remount"
            ));
        }
        Ok(CrashCase {
            crashed,
            torn_pages: recovered.stats().torn_pages_quarantined,
        })
    }

    /// Sweeps crash points: exhaustively over commands `1..=exhaustive`
    /// and `random` further seeded-random points in the remaining command
    /// range. Checks every point even after a failure, so the report shows
    /// the full extent of a violation.
    ///
    /// Crash points are independent replays, so they run one per core
    /// ([`esp_sim::par_map`]); results are merged in point order, making
    /// the report identical to a serial sweep's.
    #[must_use]
    pub fn sweep(&self, exhaustive: u64, random: u64, seed: u64) -> SweepReport {
        let dense = exhaustive.min(self.total_commands);
        let mut points: Vec<u64> = (1..=dense).collect();
        if self.total_commands > dense && random > 0 {
            let span = self.total_commands - dense;
            let mut rng = Rng::seed_from(seed);
            for _ in 0..random {
                points.push(dense + 1 + rng.next_below(span));
            }
        }
        let mut report = SweepReport {
            ftl: self.name,
            total_commands: self.total_commands,
            cases: points.len() as u64,
            crashed_cases: 0,
            torn_pages: 0,
            failures: Vec::new(),
        };
        let results = esp_sim::par_map(&points, |_, &n| self.check_crash_at(n));
        for (&n, result) in points.iter().zip(results) {
            match result {
                Ok(case) => {
                    report.crashed_cases += u64::from(case.crashed);
                    report.torn_pages += case.torn_pages;
                }
                Err(e) => report.failures.push((n, e)),
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The harness config: tiny geometry, with subFTL's crash-safe lap
    /// migration enabled (see module docs).
    fn cfg() -> FtlConfig {
        let mut c = FtlConfig::tiny();
        c.crash_safe_mode = true;
        c
    }

    #[test]
    fn oracle_floors_accumulate_and_trim_clears() {
        let ops = vec![
            CrashOp::Write {
                lsn: 0,
                sectors: 2,
                sync: true,
            },
            CrashOp::Trim { lsn: 1, sectors: 1 },
            CrashOp::Write {
                lsn: 8,
                sectors: 1,
                sync: true,
            },
            CrashOp::Flush,
        ];
        let h = CrashHarness::<SubFtl>::new(&cfg(), &ops);
        let end = h.total_commands();
        assert!(end >= 2, "two sync writes must issue commands");
        let floors = h.floors_at(end + 1);
        assert!(floors.contains_key(&0));
        assert!(!floors.contains_key(&1), "trimmed sector owes nothing");
        assert!(floors.contains_key(&8));
        // Before anything completed, nothing is owed.
        assert!(h.floors_at(1).is_empty());
    }

    #[test]
    fn unfired_crash_point_passes_trivially() {
        let ops = vec![
            CrashOp::Write {
                lsn: 3,
                sectors: 1,
                sync: true,
            },
            CrashOp::Flush,
        ];
        let h = CrashHarness::<CgmFtl>::new(&cfg(), &ops);
        let case = h
            .check_crash_at(h.total_commands() + 50)
            .expect("crash-free run upholds the contract");
        assert!(!case.crashed);
        assert_eq!(case.torn_pages, 0);
    }

    #[test]
    fn parallel_sweep_is_deterministic() {
        // The sweep fans crash points out across worker threads; the
        // merged report must not depend on scheduling.
        let mut rng = Rng::seed_from(0xDE7E);
        let ops = random_workload(&mut rng, 128, 25);
        let h = CrashHarness::<CgmFtl>::new(&cfg(), &ops);
        let a = h.sweep(30, 20, 9);
        let b = h.sweep(30, 20, 9);
        assert_eq!(a, b);
        assert!(a.cases > 0 && a.crashed_cases > 0);
    }

    #[test]
    fn every_command_of_a_small_workload_is_crash_safe() {
        let mut rng = Rng::seed_from(0xC4A5);
        let ops = random_workload(&mut rng, 128, 40);
        let h = CrashHarness::<SubFtl>::new(&cfg(), &ops);
        let report = h.sweep(u64::MAX, 0, 0);
        assert!(report.crashed_cases > 0, "sweep must fire real crashes");
        assert!(
            report.passed(),
            "violations: {:?}",
            &report.failures[..report.failures.len().min(3)]
        );
    }
}

//! Typed end-of-life errors for the flash-space engines.
//!
//! When a region's free pool runs dry, the engines degrade in a defined
//! order instead of panicking or livelocking in GC (DESIGN.md §11):
//!
//! 1. **Shrink over-provisioning** — lower the GC watermark step by step
//!    (each step counted in `FtlStats::op_shrinks`), trading reserve space
//!    for continued write service.
//! 2. **Refuse writes** — once the watermark sits at its floor and still no
//!    victim can net free space, allocation fails with a [`SpaceExhausted`]
//!    value; the owning FTL counts the dropped write and trips its
//!    read-only latch.
//! 3. **Read-only** — reads (and trims) keep working for as long as the
//!    data remains correctable.

use std::fmt;

/// Why a flash-space engine can no longer allocate a page for a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpaceExhausted {
    /// No GC victim can net free space for the committed logical data, but
    /// no block has been lost to wear: the pool is simply full.
    DeviceFull,
    /// Grown-bad-block retirement has consumed the GC reserve: the device
    /// has reached the end of its service life.
    EndOfLife,
}

impl fmt::Display for SpaceExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpaceExhausted::DeviceFull => {
                write!(f, "device full: no gc victim can net free space")
            }
            SpaceExhausted::EndOfLife => {
                write!(f, "end of life: block retirement exhausted the gc reserve")
            }
        }
    }
}

impl std::error::Error for SpaceExhausted {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_trailing_period() {
        for e in [SpaceExhausted::DeviceFull, SpaceExhausted::EndOfLife] {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase(), "{s}");
            assert!(!s.ends_with('.'), "{s}");
        }
    }
}

//! `fgmFTL` — the fine-grained mapping baseline (paper §1, §2, §5).
//!
//! Logical-to-physical mapping at 4 KB granularity; the write buffer merges
//! small writes into full-page programs when it can. The scheme's weakness,
//! which Fig 2 quantifies, is that **synchronous** small writes must be
//! flushed immediately: a 4 KB fsync consumes a whole 16 KB physical page
//! (one data subpage plus three padding subpages — *internal fragmentation*)
//! and garbage collection degrades toward the CGM level as `r_synch` grows.

use esp_nand::Oob;
use esp_sim::{merge_events, EventBuffer, EventSink, SimTime, TraceEvent};
use esp_ssd::Ssd;
use esp_workload::SECTORS_PER_PAGE;

use crate::buffer::{FlushChunk, WriteBuffer};
use crate::config::FtlConfig;
use crate::gc_policy::{select_victim, GcPolicyKind, SelectOpts, VictimCandidate};
use crate::map_cache::{MapCache, MapCacheStats};
use crate::read_path::{note_read_result, ReadReliability};
use crate::runner::Ftl;
use crate::stats::FtlStats;

const NO_PTR: u32 = u32::MAX;

/// GC never shrinks the free watermark below this floor: one free block is
/// the minimum needed to keep copy-out possible at all.
const WATERMARK_FLOOR: u32 = 1;

#[derive(Debug, Clone)]
struct FgmBlock {
    gbi: u32,
    /// Chip holding this block (`gbi / blocks_per_chip`), precomputed so
    /// hot paths like GC victim scans avoid a division per lookup.
    chip: u32,
    /// Validity per subpage (pages × N_sub entries).
    valid: Vec<bool>,
    valid_count: u32,
    programmed_pages: u32,
    /// Bad block (factory-marked or grown): never allocated again.
    retired: bool,
    /// Monotone close stamp (0 = recovered/erased: maximally old to the
    /// age-aware GC policies).
    closed_seq: u64,
}

impl FgmBlock {
    fn new(gbi: u32, blocks_per_chip: u32, pages: u32, nsub: u32) -> Self {
        FgmBlock {
            gbi,
            chip: gbi / blocks_per_chip,
            valid: vec![false; (pages * nsub) as usize],
            valid_count: 0,
            programmed_pages: 0,
            retired: false,
            closed_seq: 0,
        }
    }
}

/// The FGM-scheme FTL baseline.
///
/// # Examples
///
/// ```
/// use esp_core::{FgmFtl, Ftl, FtlConfig};
/// use esp_sim::SimTime;
///
/// let mut ftl = FgmFtl::new(&FtlConfig::tiny());
/// // An async small write buffers in DRAM and costs no flash time yet.
/// let done = ftl.write(0, 1, false, SimTime::ZERO);
/// assert_eq!(done, SimTime::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct FgmFtl {
    ssd: Ssd,
    blocks: Vec<FgmBlock>,
    free: Vec<u32>,
    /// One active (open) block per chip, so programs stripe across chips.
    actives: Vec<Option<u32>>,
    rr: usize,
    /// LSN → packed subpage pointer (`block * pages * nsub + page * nsub +
    /// slot`), `NO_PTR` for unmapped.
    l2p: Vec<u32>,
    buffer: WriteBuffer,
    stats: FtlStats,
    seq: u64,
    logical_sectors: u64,
    pages_per_block: u32,
    nsub: u32,
    watermark: u32,
    background_gc: bool,
    /// GC victim-selection policy (greedy by default).
    gc_policy: GcPolicyKind,
    /// Next close stamp (starts at 1; see [`FgmBlock::closed_seq`]).
    closed_seq_counter: u64,
    /// DFTL-style demand-cached mapping tier; `None` keeps the full map
    /// resident (the default, bit-identical to pre-cache builds).
    map_cache: Option<MapCache>,
    /// Wear-delta bias in GC victim selection plus cold-block rotation
    /// (off by default for bit-identity with the seed).
    wear_leveling: bool,
    /// Max−min effective-P/E spread that triggers a cold-block rotation.
    wear_delta: u32,
    /// Device erase count at which the next wear-spread check runs (the
    /// spread only changes on erases, so checks are metered by them).
    next_wear_check: u64,
    /// Latched when GC can no longer net free space even at the watermark
    /// floor: the drive is at end of life and writes degrade gracefully.
    exhausted: bool,
    reliability: ReadReliability,
    /// GC/scrub/reclaim event recorder; disabled (free) by default.
    trace: EventBuffer,
    /// Reused OOB staging for [`FgmFtl::program_group`] (always `nsub`
    /// entries), so the steady-state program path allocates nothing.
    oob_scratch: Vec<Option<Oob>>,
    /// Reused `(block, page, lsn, slot)` grouping scratch for
    /// [`Ftl::read`].
    read_groups: Vec<(u32, u32, u64, u32)>,
    /// Reused full-page read buffer for GC collection and grouped host
    /// reads.
    slots_scratch: Vec<Result<Oob, esp_nand::ReadFault>>,
    chunks_scratch: Vec<FlushChunk>,
    group_scratch: Vec<(u64, u64)>,
}

impl FgmFtl {
    /// Builds an fgmFTL over the configured device.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`FtlConfig::validate`]).
    #[must_use]
    pub fn new(config: &FtlConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid FTL config: {e}"));
        let ssd = Ssd::with_planes(
            config.geometry.clone(),
            config.timing.clone(),
            config.retention.clone(),
            config.planes_per_chip,
        );
        Self::with_ssd(config, ssd)
    }

    /// Builds the FTL structures over an existing (possibly non-empty)
    /// device; mapping state starts empty — see [`FgmFtl::recover`] for
    /// rebuilding it from flash contents.
    pub(crate) fn with_ssd(config: &FtlConfig, mut ssd: Ssd) -> Self {
        if let Some(f) = &config.fault {
            ssd.device_mut().set_faults(f.clone());
        }
        ssd.device_mut()
            .set_retry_ladder(config.retry_ladder.clone());
        ssd.device_mut().set_adaptive_erase(config.adaptive_erase);
        let g = &config.geometry;
        let blocks: Vec<FgmBlock> = (0..g.block_count())
            .map(|gbi| {
                FgmBlock::new(
                    gbi,
                    g.blocks_per_chip,
                    g.pages_per_block,
                    g.subpages_per_page,
                )
            })
            .collect();
        let free = (0..blocks.len() as u32).collect();
        let logical_sectors = config.logical_sectors();
        let chips = g.chip_count() as usize;
        let map_cache = config.map_cache.as_ref().map(|mc| {
            use esp_nand::OpKind;
            MapCache::new(
                mc,
                logical_sectors,
                g.pages_per_block,
                ssd.device().op_cost(OpKind::ReadFull).total(),
                ssd.device().op_cost(OpKind::ProgramFull).total(),
                ssd.device().op_cost(OpKind::Erase).total(),
            )
        });
        let mut ftl = FgmFtl {
            ssd,
            blocks,
            free,
            actives: vec![None; chips],
            rr: 0,
            l2p: vec![NO_PTR; logical_sectors as usize],
            buffer: WriteBuffer::new(config.write_buffer_sectors),
            stats: FtlStats::new(),
            seq: 0,
            logical_sectors,
            pages_per_block: g.pages_per_block,
            nsub: g.subpages_per_page,
            watermark: config.gc_free_watermark,
            background_gc: config.background_gc,
            gc_policy: config.gc_policy,
            closed_seq_counter: 1,
            map_cache,
            wear_leveling: config.wear_leveling,
            wear_delta: config.wear_delta_threshold,
            next_wear_check: 0,
            exhausted: false,
            reliability: ReadReliability::new(config),
            trace: EventBuffer::disabled(),
            oob_scratch: vec![None; g.subpages_per_page as usize],
            read_groups: Vec::new(),
            slots_scratch: Vec::new(),
            chunks_scratch: Vec::new(),
            group_scratch: Vec::new(),
        };
        // Exclude factory-marked and previously grown bad blocks (local
        // block index == gbi here).
        for gbi in ftl.ssd.device().bad_block_indices() {
            ftl.retire_block(gbi);
            ftl.stats.blocks_retired += 1;
        }
        ftl
    }

    /// Takes a block out of service: never allocated, never a GC victim.
    fn retire_block(&mut self, local: u32) {
        self.blocks[local as usize].retired = true;
        if let Some(pos) = self.free.iter().position(|&f| f == local) {
            self.free.swap_remove(pos);
        }
        for a in &mut self.actives {
            if *a == Some(local) {
                *a = None;
            }
        }
    }

    /// Rebuilds an fgmFTL from the contents of a previously written device
    /// (power-loss recovery): scans every programmed page, maps each
    /// logical sector to its newest readable copy, and resumes with a write
    /// sequence number above everything on flash. DRAM-buffered data that
    /// was never flushed is gone, as on real hardware.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or does not match the
    /// device's geometry.
    #[must_use]
    pub fn recover(mut ssd: Ssd, config: &FtlConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid FTL config: {e}"));
        assert_eq!(
            *ssd.geometry(),
            config.geometry,
            "recovery config geometry mismatch"
        );
        let scan = crate::recovery::scan_device(&mut ssd);
        let scans = scan.blocks;
        let mut ftl = Self::with_ssd(config, ssd);
        ftl.stats.torn_pages_quarantined = scan.torn_pages;
        // lsn -> (seq, block, page, slot).
        let mut best: Vec<Option<(u64, u32, u32, u32)>> = vec![None; ftl.logical_sectors as usize];
        let mut max_seq = 0u64;
        for (b, scan) in scans.iter().enumerate() {
            ftl.blocks[b].programmed_pages = scan.programmed_pages();
            ftl.blocks[b].valid.fill(false);
            ftl.blocks[b].valid_count = 0;
            for (p, page) in scan.pages.iter().enumerate() {
                for slot in &page.live {
                    max_seq = max_seq.max(slot.seq);
                    let lsn = slot.lsn as usize;
                    if lsn >= best.len() {
                        continue;
                    }
                    if best[lsn].is_none_or(|(seq, ..)| slot.seq > seq) {
                        best[lsn] = Some((slot.seq, b as u32, p as u32, u32::from(slot.slot)));
                    }
                }
            }
        }
        for (lsn, entry) in best.iter().enumerate() {
            let Some((_, b, p, slot)) = *entry else {
                continue;
            };
            ftl.l2p[lsn] = ftl.pack(b, p, slot);
            let blk = &mut ftl.blocks[b as usize];
            blk.valid[(p * ftl.nsub + slot) as usize] = true;
            blk.valid_count += 1;
        }
        ftl.free = ftl
            .blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| !b.retired && b.programmed_pages == 0)
            .map(|(i, _)| i as u32)
            .collect();
        // Resume one partially programmed block per chip as the active
        // block; close any extras so GC can eventually reclaim them.
        for a in &mut ftl.actives {
            *a = None;
        }
        for i in 0..ftl.blocks.len() {
            let b = &ftl.blocks[i];
            if b.retired || b.programmed_pages == 0 || b.programmed_pages >= ftl.pages_per_block {
                continue;
            }
            let chip = ftl.chip_of(i as u32);
            if ftl.actives[chip].is_none() {
                ftl.actives[chip] = Some(i as u32);
            } else {
                ftl.blocks[i].programmed_pages = ftl.pages_per_block;
            }
        }
        ftl.seq = max_seq;
        ftl
    }

    pub(crate) fn ssd_mut(&mut self) -> &mut Ssd {
        &mut self.ssd
    }

    /// Allocation-state digest (free pool, retired pool, open blocks,
    /// per-block fill) for the crash harness's idempotence check.
    /// Simulated times are excluded: two mounts of the same flash image
    /// happen at different clocks but must land in the same state.
    pub(crate) fn pool_fingerprint(&self) -> Vec<u64> {
        // Keyed by device-global block index: local positions are a mount
        // artifact, and retired blocks drop out of a remount entirely.
        let mut out = Vec::new();
        let mut free: Vec<u64> = self
            .free
            .iter()
            .map(|&b| u64::from(self.blocks[b as usize].gbi))
            .collect();
        free.sort_unstable();
        out.extend(free);
        out.push(u64::MAX);
        for a in &self.actives {
            out.push(a.map_or(u64::MAX - 1, |b| u64::from(self.blocks[b as usize].gbi)));
        }
        out.push(u64::MAX);
        let mut live: Vec<[u64; 3]> = self
            .blocks
            .iter()
            .filter(|b| !b.retired)
            .map(|b| {
                [
                    u64::from(b.gbi),
                    u64::from(b.programmed_pages),
                    u64::from(b.valid_count),
                ]
            })
            .collect();
        live.sort_unstable();
        for b in live {
            out.extend(b);
        }
        out
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    fn subpages_per_block(&self) -> u32 {
        self.pages_per_block * self.nsub
    }

    fn pack(&self, block: u32, page: u32, slot: u32) -> u32 {
        block * self.subpages_per_block() + page * self.nsub + slot
    }

    fn unpack(&self, packed: u32) -> (u32, u32, u32) {
        let spb = self.subpages_per_block();
        (packed / spb, (packed % spb) / self.nsub, packed % self.nsub)
    }

    fn map_sector(&mut self, lsn: u64, block: u32, page: u32, slot: u32) {
        let old = self.l2p[lsn as usize];
        if old != NO_PTR {
            let (ob, op, os) = self.unpack(old);
            let b = &mut self.blocks[ob as usize];
            let idx = (op * self.nsub + os) as usize;
            if b.valid[idx] {
                b.valid[idx] = false;
                b.valid_count -= 1;
            }
        }
        self.l2p[lsn as usize] = self.pack(block, page, slot);
        let b = &mut self.blocks[block as usize];
        b.valid[(page * self.nsub + slot) as usize] = true;
        b.valid_count += 1;
    }

    fn chip_of(&self, local: u32) -> usize {
        self.blocks[local as usize].chip as usize
    }

    /// Stamps `local` with the next close sequence if it just became fully
    /// programmed (feeds the age term of the age-aware GC policies).
    fn note_closed(&mut self, local: u32) {
        let blk = &mut self.blocks[local as usize];
        if blk.programmed_pages >= self.pages_per_block && blk.closed_seq == 0 {
            blk.closed_seq = self.closed_seq_counter;
            self.closed_seq_counter += 1;
        }
    }

    /// Effective P/E of a block: oxide-stress based under adaptive erase,
    /// identical to the raw erase count otherwise.
    fn block_pe(&self, local: u32) -> u32 {
        let gbi = self.blocks[local as usize].gbi;
        self.ssd
            .device()
            .effective_pe(self.ssd.geometry().block_addr(gbi))
    }

    /// Whole pages still programmable without GC: room left in the open
    /// blocks plus every block in the free pool.
    fn allocatable_pages(&self) -> u64 {
        let mut pages = self.free.len() as u64 * u64::from(self.pages_per_block);
        for a in self.actives.iter().flatten() {
            pages += u64::from(self.pages_per_block - self.blocks[*a as usize].programmed_pages);
        }
        pages
    }

    fn can_alloc_page(&self) -> bool {
        self.allocatable_pages() > 0
    }

    /// O(1) test for "is this block an open active block". Equivalent to
    /// `self.actives.contains(&Some(local))`: an active block only ever
    /// occupies its own chip's slot (see [`FgmFtl::alloc_page`]).
    fn is_active(&self, local: u32) -> bool {
        self.actives[self.chip_of(local)] == Some(local)
    }

    /// Allocates the next whole physical page, round-robining across
    /// per-chip active blocks so consecutive programs pipeline on
    /// different chips.
    fn alloc_page(&mut self) -> (u32, u32) {
        let chips = self.actives.len();
        // Every chip's least-worn free block, found in ONE pass over the
        // pool, computed lazily on the first chip that needs a refill.
        // The pool is not mutated until a pick succeeds (which returns),
        // so the single pass sees exactly what per-chip scans would see,
        // and keeping the first strict minimum in pool order reproduces
        // `min_by_key`'s first-minimum tie-break per chip.
        let mut picks: Option<Vec<Option<(u32, usize)>>> = None;
        for i in 0..chips {
            let chip = (self.rr + i) % chips;
            let usable = match self.actives[chip] {
                Some(b) => self.blocks[b as usize].programmed_pages < self.pages_per_block,
                None => false,
            };
            if !usable {
                let picks = picks.get_or_insert_with(|| {
                    let mut p: Vec<Option<(u32, usize)>> = vec![None; chips];
                    for (idx, &b) in self.free.iter().enumerate() {
                        let c = self.chip_of(b);
                        let gbi = self.blocks[b as usize].gbi;
                        let pe = self
                            .ssd
                            .device()
                            .effective_pe(self.ssd.geometry().block_addr(gbi));
                        if p[c].is_none_or(|(best, _)| pe < best) {
                            p[c] = Some((pe, idx));
                        }
                    }
                    p
                });
                match picks[chip] {
                    Some((_, p)) => self.actives[chip] = Some(self.free.swap_remove(p)),
                    None => continue,
                }
            }
            let block = self.actives[chip].expect("just ensured");
            let page = self.blocks[block as usize].programmed_pages;
            self.blocks[block as usize].programmed_pages += 1;
            self.note_closed(block);
            self.rr = chip + 1;
            return (block, page);
        }
        panic!("fgm: no free block on any chip (overcommitted)");
    }

    /// Programs up to `N_sub` sectors into one physical page, mapping each.
    /// Returns the completion time. A program that reports status fail is
    /// retried on the next allocated page; the failed page holds no valid
    /// data, so GC reclaims it with its block.
    fn program_group(&mut self, group: &[(u64, u64)], issue: SimTime) -> SimTime {
        debug_assert!(!group.is_empty() && group.len() <= self.nsub as usize);
        let mut oobs = std::mem::take(&mut self.oob_scratch);
        oobs.clear();
        oobs.resize(self.nsub as usize, None);
        for (slot, &(lsn, seq)) in group.iter().enumerate() {
            oobs[slot] = Some(Oob { lsn, seq });
        }
        let mut now = issue;
        let done = loop {
            if self.ssd.halted() {
                // Power is off: with GC fenced the pool may legitimately be
                // empty, so bail out before alloc_page can panic over it.
                break now;
            }
            if !self.can_alloc_page() {
                // Space exhausted (end of life): drop the program rather
                // than panic. Any sector that was already mapped keeps its
                // old copy, so reads stay well-formed.
                break now;
            }
            let (block, page) = self.alloc_page();
            let gbi = self.blocks[block as usize].gbi;
            let addr = self.ssd.geometry().block_addr(gbi).page(page);
            match self.ssd.program_full(addr, &oobs, now) {
                Ok(done) => {
                    for (slot, &(lsn, _)) in group.iter().enumerate() {
                        self.map_sector(lsn, block, page, slot as u32);
                    }
                    break done;
                }
                Err(f) if f.error == esp_nand::NandError::ProgramFailed => {
                    self.stats.program_failures += 1;
                    self.stats.write_retries += 1;
                    now = f.at;
                }
                Err(f) => panic!("fgm allocated a clean page: {f}"),
            }
        };
        self.oob_scratch = oobs;
        done
    }

    /// Greedy GC: collect min-valid blocks until the free pool recovers.
    /// When no victim can net free space, degrade instead of looping: the
    /// watermark shrinks toward [`WATERMARK_FLOOR`] (giving up reserve
    /// headroom), and once even the floor is unreachable the engine latches
    /// `exhausted` — the drive is at end of life.
    fn ensure_space(&mut self, issue: SimTime) -> SimTime {
        let mut now = issue;
        while !self.ssd.halted() && !self.exhausted && (self.free.len() as u32) < self.watermark {
            match self.try_collect_victim(now, "watermark") {
                Some(done) => now = done,
                None if self.watermark > WATERMARK_FLOOR => {
                    self.watermark -= 1;
                    self.stats.op_shrinks += 1;
                }
                None => {
                    self.exhausted = true;
                    break;
                }
            }
        }
        now
    }

    /// Picks a GC victim under the configured policy (greedy by default —
    /// bit-identical to the historical min-valid scan), composing the
    /// wear-leveling valid-count slack when enabled.
    fn pick_victim(&self) -> Option<u32> {
        let mut candidates = Vec::new();
        for (i, b) in self.blocks.iter().enumerate() {
            if b.programmed_pages < self.pages_per_block || b.retired || self.is_active(i as u32) {
                continue;
            }
            candidates.push(VictimCandidate {
                index: i as u32,
                valid: b.valid_count,
                capacity: self.subpages_per_block(),
                age: self.closed_seq_counter.saturating_sub(b.closed_seq),
                wear: if self.wear_leveling {
                    self.block_pe(i as u32)
                } else {
                    0
                },
            });
        }
        select_victim(
            self.gc_policy,
            SelectOpts::standard(self.wear_leveling),
            &candidates,
        )
    }

    /// Collects one GC victim, or returns `None` when no victim exists,
    /// none can net free space, or the copy-out would not fit in the
    /// remaining allocatable pages (erasing then would drop sole copies).
    fn try_collect_victim(&mut self, issue: SimTime, cause: &'static str) -> Option<SimTime> {
        let victim = self.pick_victim()?;
        let valid = self.blocks[victim as usize].valid_count;
        if valid >= self.subpages_per_block()
            || u64::from(valid.div_ceil(self.nsub)) > self.allocatable_pages()
        {
            return None;
        }
        self.stats.gc_invocations += 1;
        self.trace.emit(|| {
            TraceEvent::new(issue.as_nanos(), "gc.collect")
                .tag(cause)
                .field("block", u64::from(victim))
                .field("valid_sectors", u64::from(valid))
        });
        Some(self.collect_block(victim, issue))
    }

    /// Relocates every valid sector of `victim` (repacked `N_sub` to a
    /// page) and erases it. Shared by GC victim collection and the
    /// read-disturb patrol, which may collect fully-valid blocks.
    fn collect_block(&mut self, victim: u32, issue: SimTime) -> SimTime {
        let gbi = self.blocks[victim as usize].gbi;
        let mut now = issue;
        // Collect surviving sectors, then repack them 4-to-a-page.
        let mut survivors: Vec<(u64, u64)> = Vec::new();
        for page in 0..self.pages_per_block {
            let any_valid = (0..self.nsub)
                .any(|s| self.blocks[victim as usize].valid[(page * self.nsub + s) as usize]);
            if !any_valid {
                continue;
            }
            let addr = self.ssd.geometry().block_addr(gbi).page(page);
            now = self.ssd.read_full_into(addr, now, &mut self.slots_scratch);
            if self.ssd.halted() {
                // Power died mid-GC: the victim's remaining valid sectors
                // stay on flash; this half-done collection dies with DRAM.
                return now;
            }
            for (slot, r) in self.slots_scratch.iter().enumerate() {
                if self.blocks[victim as usize].valid[(page * self.nsub) as usize + slot] {
                    let oob = r.as_ref().expect("valid subpage must be readable");
                    debug_assert_eq!(
                        self.l2p[oob.lsn as usize],
                        self.pack(victim, page, slot as u32),
                        "validity bitmap out of sync with l2p"
                    );
                    survivors.push((oob.lsn, oob.seq));
                }
            }
        }
        for group in survivors.chunks(self.nsub as usize) {
            now = self.program_group(group, now);
            self.stats.gc_copied_sectors += group.len() as u64;
            self.stats.gc_flash_sectors += u64::from(SECTORS_PER_PAGE);
        }
        if self.blocks[victim as usize].valid_count > 0 {
            // Copy-out could not place every survivor (space exhausted
            // mid-GC): leave the victim intact instead of erasing sole
            // copies.
            return now;
        }
        let blk_addr = self.ssd.geometry().block_addr(gbi);
        match self.ssd.erase(blk_addr, now) {
            Ok(done) => {
                now = done;
                let b = &mut self.blocks[victim as usize];
                b.valid.fill(false);
                b.valid_count = 0;
                b.programmed_pages = 0;
                b.closed_seq = 0;
                self.free.push(victim);
            }
            Err(f) if f.error == esp_nand::NandError::EraseFailed => {
                // Grown bad block: retire it; survivors were copied out
                // above, so nothing is lost and GC just picks another
                // victim.
                now = f.at;
                let b = &mut self.blocks[victim as usize];
                b.valid.fill(false);
                b.valid_count = 0;
                b.closed_seq = 0;
                self.retire_block(victim);
                self.stats.erase_failures += 1;
                self.stats.blocks_retired += 1;
            }
            Err(f) => panic!("erase managed block: {f}"),
        }
        now
    }

    /// Read-disturb patrol: relocates and erases every block whose sense
    /// count since its last erase reached `limit`. Open blocks are closed
    /// first so they stop absorbing senses.
    fn scrub_disturbed(&mut self, limit: u64, issue: SimTime) -> SimTime {
        let mut now = issue;
        while !self.ssd.halted() {
            let victim = (0..self.blocks.len() as u32).find(|&b| {
                let blk = &self.blocks[b as usize];
                !blk.retired
                    && blk.programmed_pages > 0
                    && self
                        .ssd
                        .device()
                        .reads_since_erase(self.ssd.geometry().block_addr(blk.gbi))
                        >= limit
            });
            let Some(victim) = victim else { break };
            for a in &mut self.actives {
                if *a == Some(victim) {
                    *a = None;
                }
            }
            self.blocks[victim as usize].programmed_pages = self.pages_per_block;
            self.note_closed(victim);
            // Copy-out needs allocatable space; GC here may collect (and
            // thereby scrub) the victim itself, so re-check before taking
            // it — a completed erase already reset its sense count.
            now = self.ensure_space(now);
            let addr = self
                .ssd
                .geometry()
                .block_addr(self.blocks[victim as usize].gbi);
            if self.ssd.device().reads_since_erase(addr) >= limit && !self.ssd.halted() {
                let at = now.as_nanos();
                self.trace.emit(|| {
                    TraceEvent::new(at, "gc.scrub")
                        .tag("disturb")
                        .field("block", u64::from(victim))
                });
                now = self.collect_block(victim, now);
                self.stats.disturb_scrubs += 1;
                if self.blocks[victim as usize].valid_count > 0 {
                    // Space exhausted: the block cannot be relocated, and
                    // retrying it forever would livelock the patrol.
                    break;
                }
            }
        }
        now
    }

    /// Read-reclaim: rewrites the given `(lsn, seq)` survivors of a
    /// charged read to fresh pages, escaping their disturbed/aged blocks.
    fn reclaim_sectors(&mut self, sectors: &[(u64, u64)], issue: SimTime) -> SimTime {
        let mut now = issue;
        for group in sectors.chunks(self.nsub as usize) {
            now = self.ensure_space(now);
            if self.ssd.halted() {
                return now;
            }
            let at = now.as_nanos();
            let sectors = group.len() as u64;
            now = self.program_group(group, now);
            self.trace.emit(|| {
                TraceEvent::new(at, "gc.reclaim")
                    .tag("read_reclaim")
                    .field("sectors", sectors)
            });
            self.stats.read_reclaims += group.len() as u64;
            self.stats.gc_copied_sectors += group.len() as u64;
            self.stats.gc_flash_sectors += u64::from(SECTORS_PER_PAGE);
        }
        now
    }

    /// Static wear leveling: when the fleet-wide effective-P/E spread
    /// exceeds the configured delta, migrate the coldest (least-worn) full
    /// block's data so the lightly-worn block re-enters the free pool and
    /// absorbs hot writes. One migration per call keeps the cost bounded.
    fn wear_rotate(&mut self, now: SimTime) -> SimTime {
        let mut max_pe = 0u32;
        let mut any = false;
        for (i, b) in self.blocks.iter().enumerate() {
            if !b.retired {
                max_pe = max_pe.max(self.block_pe(i as u32));
                any = true;
            }
        }
        if !any {
            return now;
        }
        let Some(cold) = self
            .blocks
            .iter()
            .enumerate()
            .filter(|(i, b)| {
                b.programmed_pages >= self.pages_per_block
                    && !b.retired
                    && !self.is_active(*i as u32)
            })
            .min_by_key(|(i, _)| (self.block_pe(*i as u32), *i))
            .map(|(i, _)| i as u32)
        else {
            return now;
        };
        if max_pe.saturating_sub(self.block_pe(cold)) <= self.wear_delta {
            return now;
        }
        let valid = self.blocks[cold as usize].valid_count;
        if u64::from(valid.div_ceil(self.nsub)) > self.allocatable_pages() {
            return now;
        }
        self.stats.wear_level_migrations += 1;
        self.trace.emit(|| {
            TraceEvent::new(now.as_nanos(), "gc.wear_rotate")
                .tag("static_wl")
                .field("block", u64::from(cold))
                .field("valid_sectors", u64::from(valid))
        });
        self.collect_block(cold, now)
    }

    /// Writes flush chunks out. Following the paper's FGM definition, the
    /// write buffer merges "small writes with **consecutive logical block
    /// addresses** into one sequential write" (§4.1): each contiguous chunk
    /// is packed into physical pages `N_sub` sectors at a time, and the
    /// final partial page of every chunk is padded — *internal
    /// fragmentation*. Non-adjacent small writes are not combined, which is
    /// why the FGM scheme degrades as `r_small` grows even for
    /// asynchronous writes (Fig 2).
    fn flush_chunks(&mut self, chunks: &mut Vec<FlushChunk>, issue: SimTime) -> SimTime {
        let mut done = issue;
        let nsub = self.nsub as usize;
        for c in chunks.drain(..) {
            let mut idx = 0usize;
            let total = c.origins.len();
            while idx < total {
                let end = (idx + nsub).min(total);
                let mut group = std::mem::take(&mut self.group_scratch);
                group.clear();
                for i in idx..end {
                    group.push((c.start_lsn + i as u64, self.next_seq()));
                }
                let mut t = self.ensure_space(issue);
                // Demand-cached mapping: dirtying each sector's translation
                // page may fault it in (TP read) and push out a dirty TP
                // (TP program); both serialize ahead of the data program.
                if let Some(cache) = self.map_cache.as_mut() {
                    let mut at = t.max(issue);
                    for &(lsn, _) in group.iter() {
                        at = cache.access(lsn, true, at);
                    }
                    t = at;
                }
                if !self.ssd.halted() && !self.can_alloc_page() {
                    // End of life: the flush has nowhere to land. Latch the
                    // refusal so subsequent writes are dropped up front;
                    // already-mapped sectors keep their old copies.
                    self.reliability.latch_end_of_life(&mut self.stats);
                    self.group_scratch = group;
                    break;
                }
                let pd = self.program_group(&group, t.max(issue));
                done = done.max(pd);
                self.stats.flash_sectors_consumed += u64::from(SECTORS_PER_PAGE);
                // Attribute the page's consumption to its new host sectors.
                let share = f64::from(SECTORS_PER_PAGE) / group.len() as f64;
                self.group_scratch = group;
                for i in idx..end {
                    if c.origins[i] {
                        self.stats.small_waf_flash_sectors += share;
                    }
                }
                idx = end;
            }
            self.buffer.recycle(c);
        }
        done
    }
}

impl Ftl for FgmFtl {
    fn name(&self) -> &'static str {
        "fgmFTL"
    }

    fn logical_sectors(&self) -> u64 {
        self.logical_sectors
    }

    fn enable_tracing(&mut self, capacity: usize) {
        self.trace.enable(capacity);
        self.ssd.enable_tracing(capacity);
    }

    fn events(&self) -> Vec<TraceEvent> {
        merge_events(&[&self.trace, self.ssd.trace()])
    }

    fn events_dropped(&self) -> u64 {
        self.trace.dropped() + self.ssd.trace().dropped()
    }

    fn write(&mut self, lsn: u64, sectors: u32, sync: bool, issue: SimTime) -> SimTime {
        assert!(
            lsn + u64::from(sectors) <= self.logical_sectors,
            "write beyond logical capacity"
        );
        if self.ssd.device_failed() {
            // A failed device executes nothing; the shard is inert.
            return issue;
        }
        if self.reliability.refuse_write(&mut self.stats) {
            return issue;
        }
        self.stats.host_write_requests += 1;
        self.stats.host_write_sectors += u64::from(sectors);
        let small = sectors < SECTORS_PER_PAGE;
        if small {
            self.stats.small_write_requests += 1;
            self.stats.small_waf_host_sectors += u64::from(sectors);
        }
        self.buffer.insert(lsn, sectors, small);
        if sync {
            let mut chunks = std::mem::take(&mut self.chunks_scratch);
            self.buffer.take_overlapping_into(lsn, sectors, &mut chunks);
            let done = self.flush_chunks(&mut chunks, issue);
            self.chunks_scratch = chunks;
            done
        } else if self.buffer.is_full() {
            let mut chunks = std::mem::take(&mut self.chunks_scratch);
            self.buffer.drain_all_into(&mut chunks);
            self.flush_chunks(&mut chunks, issue);
            self.chunks_scratch = chunks;
            issue
        } else {
            issue
        }
    }

    fn read(&mut self, lsn: u64, sectors: u32, issue: SimTime) -> SimTime {
        if self.ssd.device_failed() {
            return issue;
        }
        self.stats.host_read_requests += 1;
        self.stats.host_read_sectors += u64::from(sectors);
        // Group flash-resident sectors by physical page to batch reads.
        // The scratch is filled in ascending-lsn order and stable-sorted
        // by (block, page): iteration order decides the order reads hit
        // the channel timelines, and runs must be deterministic (this
        // reproduces the grouping a `BTreeMap<(block, page), Vec<_>>`
        // would give, without its per-request node allocations).
        let mut groups = std::mem::take(&mut self.read_groups);
        groups.clear();
        for s in lsn..lsn + u64::from(sectors) {
            if self.buffer.contains(s) {
                continue;
            }
            let packed = self.l2p[s as usize];
            if packed == NO_PTR {
                continue;
            }
            let (b, p, slot) = self.unpack(packed);
            groups.push((b, p, s, slot));
        }
        groups.sort_by_key(|&(b, p, _, _)| (b, p));
        // Demand-cached mapping: faulting in each flash-resident sector's
        // translation page serializes ahead of the data reads.
        let mut issue = issue;
        if let Some(cache) = self.map_cache.as_mut() {
            for &(_, _, s, _) in groups.iter() {
                issue = cache.access(s, false, issue);
            }
        }
        let mut done = issue;
        let mut faulted = false;
        let mut reclaim: Vec<(u64, u64)> = Vec::new();
        let mut i = 0;
        while i < groups.len() {
            let (block, page) = (groups[i].0, groups[i].1);
            let mut j = i + 1;
            while j < groups.len() && (groups[j].0, groups[j].1) == (block, page) {
                j += 1;
            }
            let gbi = self.blocks[block as usize].gbi;
            let addr = self.ssd.geometry().block_addr(gbi).page(page);
            if j - i >= 2 {
                let (effort, t) =
                    self.ssd
                        .read_full_graded_into(addr, issue, &mut self.slots_scratch);
                for &(_, _, s, slot) in &groups[i..j] {
                    faulted |=
                        note_read_result(&self.slots_scratch[slot as usize], s, &mut self.stats);
                    if self.reliability.wants_reclaim(effort) {
                        if let Ok(oob) = &self.slots_scratch[slot as usize] {
                            reclaim.push((oob.lsn, oob.seq));
                        }
                    }
                }
                done = done.max(t);
            } else {
                let (_, _, s, slot) = groups[i];
                let (r, effort, t) = self
                    .ssd
                    .read_subpage_graded(addr.subpage(slot as u8), issue);
                faulted |= note_read_result(&r, s, &mut self.stats);
                if self.reliability.wants_reclaim(effort) {
                    if let Ok(oob) = &r {
                        reclaim.push((oob.lsn, oob.seq));
                    }
                }
                done = done.max(t);
            }
            i = j;
        }
        self.read_groups = groups;
        self.reliability.note_host_read(faulted, &mut self.stats);
        if !reclaim.is_empty() {
            done = done.max(self.reclaim_sectors(&reclaim, done));
        }
        done
    }

    fn maintain(&mut self, now: SimTime) {
        if self.ssd.device_failed() {
            return;
        }
        let reads = self.ssd.device().stats().reads;
        if self.reliability.patrol_due(reads) {
            if let Some(limit) = self.reliability.scrub_limit() {
                self.scrub_disturbed(limit, now);
            }
        }
        if self.wear_leveling && !self.exhausted {
            let erases = self.ssd.device().stats().erases;
            if erases >= self.next_wear_check {
                self.next_wear_check = erases + 16;
                self.wear_rotate(now);
            }
        }
    }

    fn flush(&mut self, issue: SimTime) -> SimTime {
        if self.ssd.device_failed() {
            return issue;
        }
        let mut chunks = std::mem::take(&mut self.chunks_scratch);
        self.buffer.drain_all_into(&mut chunks);
        let done = self.flush_chunks(&mut chunks, issue);
        self.chunks_scratch = chunks;
        done
    }

    fn idle(&mut self, from: SimTime, until: SimTime) {
        if !self.background_gc || self.ssd.device_failed() {
            return;
        }
        use esp_nand::OpKind;
        let per_page = self.ssd.device().op_cost(OpKind::ReadFull).total()
            + self.ssd.device().op_cost(OpKind::ProgramFull).total();
        let erase = self.ssd.device().op_cost(OpKind::Erase).total();
        let mut now = from;
        while (self.free.len() as u32) < self.watermark + 2 {
            let victim_valid = self
                .blocks
                .iter()
                .enumerate()
                .filter(|(i, b)| {
                    b.programmed_pages >= self.pages_per_block
                        && b.valid_count < self.subpages_per_block()
                        && !b.retired
                        && !self.is_active(*i as u32)
                })
                .map(|(_, b)| b.valid_count)
                .min();
            let Some(valid) = victim_valid else { break };
            let estimate = per_page * u64::from(valid.div_ceil(self.nsub) + 1) + erase;
            if now + estimate > until {
                break;
            }
            match self.try_collect_victim(now, "background") {
                Some(done) => now = done,
                None => break,
            }
        }
    }

    fn stored_seq(&self, lsn: u64) -> Option<u64> {
        if self.buffer.contains(lsn) {
            return None;
        }
        let packed = self.l2p[lsn as usize];
        if packed == NO_PTR {
            return None;
        }
        let (b, p, slot) = self.unpack(packed);
        let gbi = self.blocks[b as usize].gbi;
        let addr = self
            .ssd
            .geometry()
            .block_addr(gbi)
            .page(p)
            .subpage(slot as u8);
        match self.ssd.device().subpage_state(addr) {
            esp_nand::SubpageState::Written(w) => w.oob.filter(|o| o.lsn == lsn).map(|o| o.seq),
            _ => None,
        }
    }

    fn trim(&mut self, lsn: u64, sectors: u32) {
        self.buffer.discard(lsn, sectors);
        // Fine-grained map: every covered sector can be invalidated.
        for s in lsn..lsn + u64::from(sectors) {
            let packed = self.l2p[s as usize];
            if packed != NO_PTR {
                let (b, p, slot) = self.unpack(packed);
                let blk = &mut self.blocks[b as usize];
                let idx = (p * self.nsub + slot) as usize;
                if blk.valid[idx] {
                    blk.valid[idx] = false;
                    blk.valid_count -= 1;
                }
                self.l2p[s as usize] = NO_PTR;
            }
        }
    }

    fn mapping_memory_bytes(&self) -> u64 {
        match &self.map_cache {
            Some(cache) => cache.resident_bytes(),
            None => (self.l2p.len() * std::mem::size_of::<u32>()) as u64,
        }
    }

    fn map_cache_stats(&self) -> Option<MapCacheStats> {
        self.map_cache.as_ref().map(MapCache::stats)
    }

    fn stats(&self) -> &FtlStats {
        &self.stats
    }

    fn end_of_life(&self) -> bool {
        self.reliability.end_of_life()
    }

    fn ssd(&self) -> &Ssd {
        &self.ssd
    }

    fn fail_device(&mut self) {
        self.ssd.device_mut().kill();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_trace;
    use esp_workload::{generate, SyntheticConfig};

    fn tiny_ftl() -> FgmFtl {
        FgmFtl::new(&FtlConfig::tiny())
    }

    #[test]
    fn sync_small_write_fragments_a_page() {
        let mut ftl = tiny_ftl();
        ftl.write(0, 1, true, SimTime::ZERO);
        // One full-page program for one sector: request WAF 4.
        assert_eq!(ftl.ssd().device().stats().full_programs, 1);
        assert!((ftl.stats().small_request_waf() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn async_adjacent_small_writes_merge_without_fragmentation() {
        let mut ftl = tiny_ftl();
        // Adjacent (consecutive-LBA) async sectors merge into one page.
        for i in 0..4u64 {
            ftl.write(i, 1, false, SimTime::ZERO);
        }
        ftl.flush(SimTime::ZERO);
        assert_eq!(ftl.ssd().device().stats().full_programs, 1);
        assert!((ftl.stats().small_request_waf() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn async_scattered_small_writes_fragment() {
        let mut ftl = tiny_ftl();
        // Non-adjacent sectors do NOT merge (the paper's FGM buffer merges
        // consecutive LBAs only): each fragments its own page.
        for i in 0..4u64 {
            ftl.write(i * 10, 1, false, SimTime::ZERO);
        }
        ftl.flush(SimTime::ZERO);
        assert_eq!(ftl.ssd().device().stats().full_programs, 4);
        assert!((ftl.stats().small_request_waf() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn no_rmw_ever() {
        let mut ftl = tiny_ftl();
        for round in 0..3 {
            for i in 0..8u64 {
                ftl.write(i, 1, true, SimTime::from_secs(round * 10 + i));
            }
        }
        assert_eq!(ftl.stats().rmw_operations, 0);
    }

    #[test]
    fn overwrite_invalidates_old_copy() {
        let mut ftl = tiny_ftl();
        ftl.write(3, 1, true, SimTime::ZERO);
        ftl.write(3, 1, true, SimTime::from_secs(1));
        let total_valid: u32 = ftl.blocks.iter().map(|b| b.valid_count).sum();
        assert_eq!(total_valid, 1);
    }

    #[test]
    fn read_your_writes_after_gc_churn() {
        let mut ftl = tiny_ftl();
        let footprint = ftl.logical_sectors() / 2;
        let cfg = SyntheticConfig {
            footprint_sectors: footprint,
            requests: 3_000,
            r_small: 1.0,
            r_synch: 1.0,
            zipf_theta: 0.6,
            ..SyntheticConfig::default()
        };
        let report = run_trace(&mut ftl, &generate(&cfg));
        assert!(report.stats.gc_invocations > 0);
        assert_eq!(report.stats.read_faults, 0);
        // Every mapped sector still reads back correctly.
        let t = SimTime::from_secs(10_000);
        for lsn in 0..footprint {
            if ftl.l2p[lsn as usize] != NO_PTR {
                ftl.read(lsn, 1, t);
            }
        }
        assert_eq!(ftl.stats().read_faults, 0);
    }

    #[test]
    fn sync_flush_takes_merge_partners_along() {
        let mut ftl = tiny_ftl();
        // Buffer three async neighbors, then fsync the fourth: all four
        // flush together into one full page (WAF 1).
        for i in 0..3u64 {
            ftl.write(i, 1, false, SimTime::ZERO);
        }
        ftl.write(3, 1, true, SimTime::ZERO);
        assert_eq!(ftl.ssd().device().stats().full_programs, 1);
        assert!((ftl.stats().small_request_waf() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn survives_faults_and_factory_bad_blocks() {
        let mut config = FtlConfig::tiny();
        // Erase faults retire blocks permanently, and fgm's fragmented sync
        // small writes erase often — keep the grown-bad rate low enough
        // that the 16-block tiny device survives the whole run.
        config.fault = Some(esp_nand::FaultConfig {
            seed: 17,
            program_fail_prob: 0.02,
            erase_fail_prob: 0.001,
            factory_bad_blocks: 2,
            ..esp_nand::FaultConfig::default()
        });
        let mut ftl = FgmFtl::new(&config);
        assert_eq!(ftl.stats().blocks_retired, 2);
        let cfg = SyntheticConfig {
            footprint_sectors: ftl.logical_sectors() / 2,
            requests: 2_000,
            r_small: 0.5,
            r_synch: 1.0,
            zipf_theta: 0.5,
            ..SyntheticConfig::default()
        };
        let report = run_trace(&mut ftl, &generate(&cfg));
        assert_eq!(
            report.stats.read_faults, 0,
            "faults must never corrupt reads"
        );
        assert!(report.stats.write_retries > 0, "p=0.02 must force retries");
    }

    #[test]
    fn hot_reads_stay_correctable_with_ladder_and_reclaim() {
        use esp_nand::{RetentionModel, RetryLadder};
        let mut config = FtlConfig::tiny();
        config.retention = RetentionModel::paper_default().with_read_disturb(2e-2);
        config.retry_ladder = Some(RetryLadder::paper_default());
        config.reclaim_threshold = Some(2);
        let mut ftl = FgmFtl::new(&config);
        // One fragmented sync sector: lives alone on a page, then gets
        // hammered far past the bare-ECC disturb budget.
        ftl.write(5, 1, true, SimTime::ZERO);
        let mut now = SimTime::from_secs(1);
        for _ in 0..600 {
            ftl.maintain(now);
            now = ftl.read(5, 1, now);
        }
        assert_eq!(ftl.stats().read_faults, 0, "pipeline must keep data alive");
        assert!(
            ftl.stats().read_reclaims > 0 || ftl.stats().disturb_scrubs > 0,
            "mitigation must actually have run"
        );
        // The sector is still the newest durable version.
        assert!(ftl.stored_seq(5).is_some());
    }

    #[test]
    fn gc_pressure_scales_with_fragmentation() {
        // Small writes (fragmented pages) vs large writes (full pages) of
        // the same volume: the small-write run must invoke GC far more
        // often — the essence of Fig 2(b).
        let runs: Vec<u64> = [(1.0f64, 16_000u64), (0.0, 2_400)]
            .into_iter()
            .map(|(r_small, requests)| {
                let mut ftl = tiny_ftl();
                let cfg = SyntheticConfig {
                    footprint_sectors: ftl.logical_sectors() / 2,
                    requests,
                    r_small,
                    r_synch: 1.0,
                    zipf_theta: 0.4,
                    small_sector_weights: [1, 0, 0],
                    seed: 7,
                    ..SyntheticConfig::default()
                };
                run_trace(&mut ftl, &generate(&cfg)).stats.gc_invocations
            })
            .collect();
        assert!(
            runs[0] > runs[1] * 2,
            "small-write GC {} should dwarf large-write GC {}",
            runs[0],
            runs[1]
        );
    }
}

//! The coarse-grained (CGM) flash-space engine.
//!
//! Manages a pool of erase blocks written in full-page units with a
//! page-granularity (16 KB) logical-to-physical map — the management scheme
//! of the paper's `cgmFTL` baseline, reused verbatim for subFTL's full-page
//! region ("the full-page region is managed in exactly the same way as the
//! CGM-based FTLs", §4.1).
//!
//! Responsibilities:
//!
//! * block allocation with a least-worn-first free list (implicit wear
//!   leveling within the pool),
//! * greedy (min-valid-pages) garbage collection with victim copy-out —
//!   optionally wear-biased ([`FullRegionEngine::set_wear_leveling`]):
//!   among victims within a small valid-count slack of the greedy choice,
//!   the least-worn block is collected so lightly-cycled blocks re-enter
//!   the free pool,
//! * static wear leveling ([`FullRegionEngine::wear_rotate`]): when the
//!   pool's wear spread exceeds a threshold, the coldest full block (static
//!   data pinned on a lightly-worn block) is relocated off it,
//! * graceful end-of-life: when retirement and wear exhaust the reserve,
//!   the engine sheds over-provisioning (watermark shrink) and then refuses
//!   allocation with a typed [`SpaceExhausted`] instead of panicking,
//! * the L2P page map, and
//! * donating/adopting free blocks for cross-region wear leveling.
//!
//! The engine issues device operations itself and charges their time; the
//! host-facing policy (write buffering, RMW gathering, WAF attribution)
//! stays in the owning FTL.

use esp_nand::{Oob, PageAddr};
use esp_sim::{EventBuffer, EventSink, SimTime, TraceEvent};
use esp_ssd::Ssd;
use esp_workload::SECTORS_PER_PAGE;

use crate::eol::SpaceExhausted;
use crate::gc_policy::{select_victim, GcPolicyKind, SelectOpts, VictimCandidate};
use crate::stats::FtlStats;

const NO_PTR: u32 = u32::MAX;

/// The watermark never shrinks below this floor: one erased block must stay
/// in reserve so GC copy-out has somewhere to land.
const WATERMARK_FLOOR: u32 = 1;

#[derive(Debug, Clone)]
struct FullBlock {
    /// Device-global block index.
    gbi: u32,
    /// Chip holding this block (`gbi / blocks_per_chip`), precomputed so
    /// hot paths like GC victim scans avoid a division per lookup.
    chip: u32,
    /// Per-page validity (a page is valid while the L2P points at it).
    valid: Vec<bool>,
    valid_count: u32,
    /// Pages programmed so far (the write pointer when active).
    programmed: u32,
    /// Donated to another region; never used again under this engine.
    retired: bool,
    /// Monotone stamp taken when the block became fully programmed; 0 for
    /// blocks restored by recovery (maximally old to the age-aware GC
    /// policies). Reset on erase.
    closed_seq: u64,
}

impl FullBlock {
    fn new(gbi: u32, blocks_per_chip: u32, pages: u32) -> Self {
        FullBlock {
            gbi,
            chip: gbi / blocks_per_chip,
            valid: vec![false; pages as usize],
            valid_count: 0,
            programmed: 0,
            retired: false,
            closed_seq: 0,
        }
    }

    fn is_full(&self, pages: u32) -> bool {
        self.programmed >= pages
    }
}

/// Packed physical page pointer: `local_block * pages_per_block + page`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PagePtr {
    /// Engine-local block index.
    pub block: u32,
    /// Page within the block.
    pub page: u32,
}

/// The CGM space engine (see module docs).
#[derive(Debug, Clone)]
pub struct FullRegionEngine {
    pages_per_block: u32,
    /// Device blocks-per-chip, used to derive a block's chip for striping.
    blocks_per_chip: u32,
    blocks: Vec<FullBlock>,
    /// Erased blocks ready for allocation (engine-local indices).
    free: Vec<u32>,
    /// One active (open) block per chip, so programs stripe across chips
    /// and exploit the multi-channel parallelism the paper's platform has.
    actives: Vec<Option<u32>>,
    /// Round-robin cursor over chips.
    rr: usize,
    /// L2P: logical page number → packed pointer (`NO_PTR` = unmapped).
    l2p: Vec<u32>,
    watermark: u32,
    /// Wear-aware victim selection and cold-block rotation enabled.
    wear_leveling: bool,
    /// GC victim-selection policy (greedy by default — bit-identical to
    /// the historical hard-coded scan).
    gc_policy: GcPolicyKind,
    /// Next close stamp (starts at 1 so restored blocks' stamp 0 reads as
    /// oldest).
    closed_seq_counter: u64,
    /// Allocation failed at the watermark floor: the engine is end-of-life
    /// (or overcommitted) and refuses further space-consuming work.
    exhausted: bool,
    /// Blocks lost to grown-bad retirement (erase failures and
    /// [`FullRegionEngine::retire_gbi`]); donations are not counted. Decides
    /// whether exhaustion reports [`SpaceExhausted::EndOfLife`].
    retired_bad: u32,
    /// GC/scrub/reclaim event recorder; disabled (free) by default.
    trace: EventBuffer,
    /// Reused full-page read buffer and OOB staging for GC relocation and
    /// read-reclaim, so those hot paths allocate nothing per page.
    slots_scratch: Vec<Result<Oob, esp_nand::ReadFault>>,
    oobs_scratch: Vec<Option<Oob>>,
}

impl FullRegionEngine {
    /// Creates an engine over the given device-global blocks, mapping a
    /// logical space of `lpn_count` 16 KB pages. `blocks_per_chip` is the
    /// device's blocks-per-chip count, used to stripe writes across chips.
    ///
    /// # Panics
    ///
    /// Panics if `gbis` is empty or the watermark leaves no usable space.
    #[must_use]
    pub fn new(
        gbis: Vec<u32>,
        pages_per_block: u32,
        blocks_per_chip: u32,
        lpn_count: u64,
        watermark: u32,
    ) -> Self {
        assert!(!gbis.is_empty(), "full region needs at least one block");
        assert!(
            gbis.len() as u32 > watermark,
            "watermark {watermark} leaves no usable blocks"
        );
        assert!(blocks_per_chip > 0, "blocks_per_chip must be non-zero");
        let blocks: Vec<FullBlock> = gbis
            .iter()
            .map(|&g| FullBlock::new(g, blocks_per_chip, pages_per_block))
            .collect();
        let chips = gbis
            .iter()
            .map(|&g| g / blocks_per_chip)
            .max()
            .expect("non-empty") as usize
            + 1;
        let free = (0..blocks.len() as u32).collect();
        FullRegionEngine {
            pages_per_block,
            blocks_per_chip,
            blocks,
            free,
            actives: vec![None; chips],
            rr: 0,
            l2p: vec![NO_PTR; lpn_count as usize],
            watermark,
            wear_leveling: false,
            gc_policy: GcPolicyKind::Greedy,
            closed_seq_counter: 1,
            exhausted: false,
            retired_bad: 0,
            trace: EventBuffer::disabled(),
            slots_scratch: Vec::new(),
            oobs_scratch: Vec::new(),
        }
    }

    /// Arms event tracing for the engine's GC/scrub/reclaim decisions,
    /// keeping at most `capacity` events (keep-newest). Off by default.
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.trace.enable(capacity);
    }

    /// The engine's trace recorder (empty unless
    /// [`FullRegionEngine::enable_tracing`] was called).
    #[must_use]
    pub fn trace(&self) -> &EventBuffer {
        &self.trace
    }

    fn chip_of(&self, local: u32) -> usize {
        self.blocks[local as usize].chip as usize
    }

    /// O(1) test for "is this block an open active block". Equivalent to
    /// `self.actives.contains(&Some(local))`: an active block only ever
    /// occupies its own chip's slot (see
    /// [`FullRegionEngine::alloc_page`]).
    fn is_active(&self, local: u32) -> bool {
        self.actives[self.chip_of(local)] == Some(local)
    }

    /// Number of erased blocks available.
    #[must_use]
    pub fn free_blocks(&self) -> u32 {
        self.free.len() as u32
    }

    /// Total (non-retired) blocks under management.
    #[must_use]
    pub fn block_count(&self) -> u32 {
        self.blocks.iter().filter(|b| !b.retired).count() as u32
    }

    /// Enables (or disables) wear-aware victim selection and cold-block
    /// rotation. Off by default; with it off the engine's decisions are
    /// bit-identical to the pre-wear-leveling behaviour.
    pub fn set_wear_leveling(&mut self, on: bool) {
        self.wear_leveling = on;
    }

    /// Whether wear-aware victim selection is enabled.
    #[must_use]
    pub fn wear_leveling(&self) -> bool {
        self.wear_leveling
    }

    /// Selects the GC victim policy. Greedy (the default) is bit-identical
    /// to the historical behaviour; see [`crate::GcPolicyKind`].
    pub fn set_gc_policy(&mut self, policy: GcPolicyKind) {
        self.gc_policy = policy;
    }

    /// The active GC victim policy.
    #[must_use]
    pub fn gc_policy(&self) -> GcPolicyKind {
        self.gc_policy
    }

    /// Stamps `local` with the next close sequence if it just became fully
    /// programmed (feeds the age term of the age-aware GC policies).
    fn note_closed(&mut self, local: u32) {
        let blk = &mut self.blocks[local as usize];
        if blk.programmed >= self.pages_per_block && blk.closed_seq == 0 {
            blk.closed_seq = self.closed_seq_counter;
            self.closed_seq_counter += 1;
        }
    }

    /// Current GC watermark (free blocks kept in reserve). Shrinks toward
    /// the floor of 1 as end-of-life degradation sheds over-provisioning.
    #[must_use]
    pub fn watermark(&self) -> u32 {
        self.watermark
    }

    /// True once allocation has failed at the watermark floor: the engine
    /// refuses space-consuming work from then on (see
    /// [`FullRegionEngine::exhaustion`] for the typed cause).
    #[must_use]
    pub fn exhausted(&self) -> bool {
        self.exhausted
    }

    /// The typed reason allocation is (or would be) refused: end-of-life if
    /// any block was lost to grown-bad retirement, plain device-full
    /// otherwise.
    #[must_use]
    pub fn exhaustion(&self) -> SpaceExhausted {
        if self.retired_bad > 0 {
            SpaceExhausted::EndOfLife
        } else {
            SpaceExhausted::DeviceFull
        }
    }

    /// Pages still allocatable without GC: room left in open blocks plus
    /// the whole free pool.
    fn allocatable_pages(&self) -> u64 {
        let active_room: u64 = self
            .actives
            .iter()
            .flatten()
            .map(|&b| u64::from(self.pages_per_block - self.blocks[b as usize].programmed))
            .sum();
        active_room + self.free.len() as u64 * u64::from(self.pages_per_block)
    }

    /// Whether at least one more page can be allocated right now.
    fn can_alloc_page(&self) -> bool {
        !self.free.is_empty()
            || self
                .actives
                .iter()
                .flatten()
                .any(|&b| !self.blocks[b as usize].is_full(self.pages_per_block))
    }

    /// Effective P/E cycles of engine-local block `local` (raw erase count
    /// unless adaptive erase is charging fractional stress).
    fn block_pe(&self, local: u32, ssd: &Ssd) -> u32 {
        let gbi = self.blocks[local as usize].gbi;
        ssd.device().effective_pe(ssd.geometry().block_addr(gbi))
    }

    /// Min/max effective P/E over all non-retired blocks under management,
    /// or `None` when every block is retired.
    #[must_use]
    pub fn wear_spread(&self, ssd: &Ssd) -> Option<(u32, u32)> {
        let mut bounds: Option<(u32, u32)> = None;
        for (i, b) in self.blocks.iter().enumerate() {
            if b.retired {
                continue;
            }
            let pe = self.block_pe(i as u32, ssd);
            bounds = Some(match bounds {
                None => (pe, pe),
                Some((lo, hi)) => (lo.min(pe), hi.max(pe)),
            });
        }
        bounds
    }

    /// Order-independent digest of the engine's allocation state (free
    /// pool, retired pool, open blocks), used by the crash harness to
    /// prove recovery is idempotent. Simulated times are excluded on
    /// purpose: two mounts of the same flash image happen at different
    /// clocks but must land in the same state.
    pub(crate) fn pool_fingerprint(&self) -> Vec<u64> {
        // Keyed by device-global block index, not local position: two
        // mounts of the same image may deal the regions in a different
        // order, and retired blocks (grown bad, or donated to the subpage
        // region) drop out of the engine entirely on a remount.
        let mut out = Vec::new();
        let mut free: Vec<u64> = self
            .free
            .iter()
            .map(|&b| u64::from(self.blocks[b as usize].gbi))
            .collect();
        free.sort_unstable();
        out.extend(free);
        out.push(u64::MAX);
        for a in &self.actives {
            out.push(a.map_or(u64::MAX - 1, |b| u64::from(self.blocks[b as usize].gbi)));
        }
        out.push(u64::MAX);
        let mut live: Vec<[u64; 3]> = self
            .blocks
            .iter()
            .filter(|b| !b.retired)
            .map(|b| {
                [
                    u64::from(b.gbi),
                    u64::from(b.programmed),
                    u64::from(b.valid_count),
                ]
            })
            .collect();
        live.sort_unstable();
        for b in live {
            out.extend(b);
        }
        out
    }

    /// The physical page currently mapped for `lpn`, if any.
    #[must_use]
    pub fn lookup(&self, lpn: u64) -> Option<PagePtr> {
        let packed = *self.l2p.get(lpn as usize)?;
        if packed == NO_PTR {
            None
        } else {
            Some(PagePtr {
                block: packed / self.pages_per_block,
                page: packed % self.pages_per_block,
            })
        }
    }

    /// Translates a pointer to a device page address.
    #[must_use]
    pub fn page_addr(&self, ptr: PagePtr, ssd: &Ssd) -> PageAddr {
        let gbi = self.blocks[ptr.block as usize].gbi;
        ssd.geometry().block_addr(gbi).page(ptr.page)
    }

    /// Unmaps `lpn` (trim-style): the old physical page becomes garbage.
    pub fn unmap(&mut self, lpn: u64) {
        let packed = self.l2p[lpn as usize];
        if packed != NO_PTR {
            let (b, p) = (packed / self.pages_per_block, packed % self.pages_per_block);
            let blk = &mut self.blocks[b as usize];
            if blk.valid[p as usize] {
                blk.valid[p as usize] = false;
                blk.valid_count -= 1;
            }
            self.l2p[lpn as usize] = NO_PTR;
        }
    }

    /// Garbage-collects until the free pool is back above the watermark,
    /// then programs one full page for `lpn` with the given spare entries
    /// (`oobs[slot]` must carry `lsn == lpn * 4 + slot` for data slots).
    ///
    /// Returns the completion time of the program (including any GC that
    /// had to run first).
    ///
    /// # Panics
    ///
    /// Panics if the pool is exhausted (see
    /// [`FullRegionEngine::try_program_page`] for the non-panicking form)
    /// or an OOB entry carries an inconsistent LSN.
    pub fn program_page(
        &mut self,
        lpn: u64,
        oobs: &[Option<Oob>],
        ssd: &mut Ssd,
        stats: &mut FtlStats,
        issue: SimTime,
    ) -> SimTime {
        self.try_program_page(lpn, oobs, ssd, stats, issue)
            .unwrap_or_else(|e| panic!("full region out of space: {e}"))
    }

    /// Like [`FullRegionEngine::program_page`], but reports pool exhaustion
    /// as a typed error instead of panicking: callers on the host write
    /// path turn [`SpaceExhausted`] into a refused write plus the read-only
    /// latch (end-of-life degradation, DESIGN.md §11).
    ///
    /// # Errors
    ///
    /// Returns the engine's [`FullRegionEngine::exhaustion`] cause when GC
    /// (after shedding over-provisioning down to the watermark floor)
    /// cannot make a page allocatable.
    ///
    /// # Panics
    ///
    /// Panics if an OOB entry carries an inconsistent LSN.
    pub fn try_program_page(
        &mut self,
        lpn: u64,
        oobs: &[Option<Oob>],
        ssd: &mut Ssd,
        stats: &mut FtlStats,
        issue: SimTime,
    ) -> Result<SimTime, SpaceExhausted> {
        for (slot, oob) in oobs.iter().enumerate() {
            if let Some(o) = oob {
                assert_eq!(
                    o.lsn / u64::from(SECTORS_PER_PAGE),
                    lpn,
                    "oob slot {slot} lsn {} does not belong to lpn {lpn}",
                    o.lsn
                );
            }
        }
        let ready = self.ensure_space(ssd, stats, issue);
        if !ssd.halted() && !self.can_alloc_page() {
            return Err(self.exhaustion());
        }
        let done = self.program_internal(lpn, oobs, ssd, stats, ready);
        stats.flash_sectors_consumed += u64::from(SECTORS_PER_PAGE);
        Ok(done)
    }

    /// Allocates the next page of the active block (popping a new free
    /// block if needed) and programs it, updating the map and validity.
    ///
    /// A program that reports status fail is retried on the next allocated
    /// page (write retry): the failed page stays accounted as programmed
    /// with no valid data, so GC reclaims it with the rest of its block.
    fn program_internal(
        &mut self,
        lpn: u64,
        oobs: &[Option<Oob>],
        ssd: &mut Ssd,
        stats: &mut FtlStats,
        issue: SimTime,
    ) -> SimTime {
        let mut now = issue;
        loop {
            if ssd.halted() {
                // Power is off: nothing will reach the array, and with GC
                // disabled the pool may legitimately be empty — bail out
                // before alloc_page can panic over it.
                return now;
            }
            if !self.can_alloc_page() {
                // Absolute exhaustion (program-failure retries burned the
                // last pages of a dying pool): drop the program instead of
                // panicking. The map is untouched, so the previous copy of
                // `lpn` — if any — remains valid and readable.
                return now;
            }
            let (block, page) = self.alloc_page(ssd);
            let gbi = self.blocks[block as usize].gbi;
            let addr = ssd.geometry().block_addr(gbi).page(page);
            match ssd.program_full(addr, oobs, now) {
                Ok(done) => {
                    // Invalidate the old copy, map the new one.
                    self.unmap(lpn);
                    self.l2p[lpn as usize] = block * self.pages_per_block + page;
                    let blk = &mut self.blocks[block as usize];
                    blk.valid[page as usize] = true;
                    blk.valid_count += 1;
                    return done;
                }
                Err(f) if f.error == esp_nand::NandError::ProgramFailed => {
                    stats.program_failures += 1;
                    stats.write_retries += 1;
                    now = f.at;
                }
                Err(f) => panic!("engine allocated a clean page: {f}"),
            }
        }
    }

    /// Next write position: round-robins over per-chip active blocks so
    /// consecutive programs land on different chips; opens the least-worn
    /// free block of a chip when its active block fills.
    ///
    /// # Panics
    ///
    /// Panics if no chip has space (the watermark logic in
    /// [`FullRegionEngine::ensure_space`] prevents this in normal use).
    fn alloc_page(&mut self, ssd: &Ssd) -> (u32, u32) {
        let chips = self.actives.len();
        // Every chip's least-worn free block, found in ONE pass over the
        // pool, computed lazily on the first chip that needs a refill.
        // The pool is not mutated until a pick succeeds (which returns),
        // so the single pass sees exactly what per-chip scans would see,
        // and keeping the first strict minimum in pool order reproduces
        // `min_by_key`'s first-minimum tie-break per chip.
        let mut picks: Option<Vec<Option<(u32, usize)>>> = None;
        for i in 0..chips {
            let chip = (self.rr + i) % chips;
            let usable = match self.actives[chip] {
                Some(b) => !self.blocks[b as usize].is_full(self.pages_per_block),
                None => false,
            };
            if !usable {
                // Open the least-worn free block on this chip, if any.
                let picks = picks.get_or_insert_with(|| {
                    let mut p: Vec<Option<(u32, usize)>> = vec![None; chips];
                    for (idx, &b) in self.free.iter().enumerate() {
                        let c = self.chip_of(b);
                        let pe = self.block_pe(b, ssd);
                        if p[c].is_none_or(|(best, _)| pe < best) {
                            p[c] = Some((pe, idx));
                        }
                    }
                    p
                });
                match picks[chip] {
                    Some((_, p)) => self.actives[chip] = Some(self.free.swap_remove(p)),
                    None => continue, // this chip is out of space; try next
                }
            }
            let block = self.actives[chip].expect("just ensured");
            let page = self.blocks[block as usize].programmed;
            self.blocks[block as usize].programmed += 1;
            self.note_closed(block);
            self.rr = chip + 1;
            return (block, page);
        }
        panic!("no free block on any chip: region overcommitted");
    }

    /// Background collection during a host idle window: reclaims victims
    /// while the free pool sits below `target` free blocks and the clock
    /// stays inside `[issue, until]` (the final victim may overrun
    /// slightly). Only profitable victims (any invalid page) are taken.
    pub fn background_collect(
        &mut self,
        ssd: &mut Ssd,
        stats: &mut FtlStats,
        issue: SimTime,
        until: SimTime,
        target: u32,
    ) -> SimTime {
        use esp_nand::OpKind;
        let per_copy = ssd.device().op_cost(OpKind::ReadFull).total()
            + ssd.device().op_cost(OpKind::ProgramFull).total();
        let erase = ssd.device().op_cost(OpKind::Erase).total();
        let mut now = issue;
        while !ssd.halted() && (self.free.len() as u32) < target {
            let Some(v) = self.pick_victim(ssd) else {
                break;
            };
            let valid = self.blocks[v as usize].valid_count;
            if valid >= self.pages_per_block {
                break; // nothing reclaimable
            }
            if u64::from(valid) > self.allocatable_pages() {
                break; // copy-out would wedge a dying pool
            }
            // Start the victim only if it fits in the remaining window (the
            // whole point is to stay off the foreground path).
            let estimate = per_copy * u64::from(valid) + erase;
            if now + estimate > until {
                break;
            }
            now = self
                .try_collect_victim(ssd, stats, now, "background")
                .expect("victim checked profitable and feasible");
        }
        now
    }

    /// Runs greedy GC until the free pool is above the watermark, degrading
    /// gracefully when it cannot get there: with no profitable-and-feasible
    /// victim left, the watermark is shed step by step (over-provisioning
    /// shrink, counted in `op_shrinks`) down to a floor of 1; at the floor
    /// the engine latches [`FullRegionEngine::exhausted`] and returns
    /// instead of panicking or spinning. Returns when the last GC operation
    /// completes (`issue` if no GC was needed).
    pub fn ensure_space(&mut self, ssd: &mut Ssd, stats: &mut FtlStats, issue: SimTime) -> SimTime {
        let mut now = issue;
        while !ssd.halted() && (self.free.len() as u32) < self.watermark {
            match self.try_collect_victim(ssd, stats, now, "watermark") {
                Some(done) => now = done,
                None if self.watermark > WATERMARK_FLOOR => {
                    // Degradation step 1: shed over-provisioning. A lower
                    // reserve keeps writes flowing at the cost of GC
                    // headroom.
                    self.watermark -= 1;
                    stats.op_shrinks += 1;
                }
                None => {
                    // Degradation step 2: nothing reclaimable at the floor.
                    // Latch exhaustion; the caller refuses the write.
                    self.exhausted = true;
                    break;
                }
            }
        }
        now
    }

    /// Read-reclaim: rewrites the current copy of `lpn` to a fresh page,
    /// resetting its retention age and escaping its (disturbed) block.
    /// Slots that are already uncorrectable are dropped — relocation
    /// preserves whatever the ladder can still recover. No-op if `lpn` is
    /// unmapped or nothing on the page is recoverable.
    pub fn reclaim_page(
        &mut self,
        lpn: u64,
        ssd: &mut Ssd,
        stats: &mut FtlStats,
        issue: SimTime,
    ) -> SimTime {
        let Some(ptr) = self.lookup(lpn) else {
            return issue;
        };
        let addr = self.page_addr(ptr, ssd);
        let read_done = ssd.read_full_into(addr, issue, &mut self.slots_scratch);
        if ssd.halted() {
            return issue;
        }
        let mut oobs = std::mem::take(&mut self.oobs_scratch);
        oobs.clear();
        oobs.extend(self.slots_scratch.iter().map(|r| r.as_ref().ok().copied()));
        let data_sectors = oobs.iter().flatten().count() as u64;
        if data_sectors == 0 {
            self.oobs_scratch = oobs;
            return read_done;
        }
        let ready = self.ensure_space(ssd, stats, read_done);
        if !self.can_alloc_page() {
            // Exhausted pool: leave the data where it is rather than risk
            // losing the mapping; the ladder keeps serving it as long as it
            // can.
            self.oobs_scratch = oobs;
            return ready;
        }
        let done = self.program_internal(lpn, &oobs, ssd, stats, ready);
        self.oobs_scratch = oobs;
        stats.read_reclaims += 1;
        stats.gc_copied_sectors += data_sectors;
        stats.gc_flash_sectors += u64::from(SECTORS_PER_PAGE);
        self.trace.emit(|| {
            TraceEvent::new(issue.as_nanos(), "gc.reclaim")
                .tag("read_reclaim")
                .field("lpn", lpn)
                .field("sectors", data_sectors)
        });
        done
    }

    /// Read-disturb patrol: relocates and erases every block whose sense
    /// count since its last erase reached `limit` (the erase discharges the
    /// accumulated disturb). Open blocks are closed first so they stop
    /// absorbing senses. Returns when the last scrub completes.
    pub fn scrub_disturbed(
        &mut self,
        ssd: &mut Ssd,
        stats: &mut FtlStats,
        limit: u64,
        issue: SimTime,
    ) -> SimTime {
        let mut now = issue;
        while !ssd.halted() {
            let victim = (0..self.blocks.len() as u32).find(|&b| {
                let blk = &self.blocks[b as usize];
                !blk.retired
                    && blk.programmed > 0
                    && ssd
                        .device()
                        .reads_since_erase(ssd.geometry().block_addr(blk.gbi))
                        >= limit
            });
            let Some(victim) = victim else { break };
            for a in &mut self.actives {
                if *a == Some(victim) {
                    *a = None;
                }
            }
            self.blocks[victim as usize].programmed = self.pages_per_block;
            self.note_closed(victim);
            // Copy-out needs allocatable space; GC here may collect (and
            // thereby scrub) the victim itself, so re-check before taking
            // it — a completed erase already reset its sense count.
            now = self.ensure_space(ssd, stats, now);
            let addr = ssd.geometry().block_addr(self.blocks[victim as usize].gbi);
            if ssd.device().reads_since_erase(addr) >= limit && !ssd.halted() {
                let gbi = self.blocks[victim as usize].gbi;
                let at = now.as_nanos();
                self.trace.emit(|| {
                    TraceEvent::new(at, "gc.scrub")
                        .tag("disturb")
                        .field("block", u64::from(gbi))
                });
                now = self.collect_block(victim, ssd, stats, now);
                stats.disturb_scrubs += 1;
            }
        }
        now
    }

    /// Policy-driven victim choice over the full, non-retired, non-active
    /// blocks (see [`crate::GcPolicyKind`]; greedy — the default — picks
    /// the fewest valid pages, bit-identical to the historical scan). With
    /// wear leveling on, candidates within a small valid-count slack (1/8
    /// of a block, at least one page) of the policy's choice compete on
    /// effective wear instead — collecting the least-worn of them cycles
    /// cold blocks back into service (dynamic wear leveling).
    fn pick_victim(&self, ssd: &Ssd) -> Option<u32> {
        let mut candidates = Vec::new();
        for (i, b) in self.blocks.iter().enumerate() {
            if !b.is_full(self.pages_per_block) || b.retired || self.is_active(i as u32) {
                continue;
            }
            candidates.push(VictimCandidate {
                index: i as u32,
                valid: b.valid_count,
                capacity: self.pages_per_block,
                age: self.closed_seq_counter.saturating_sub(b.closed_seq),
                wear: if self.wear_leveling {
                    self.block_pe(i as u32, ssd)
                } else {
                    0
                },
            });
        }
        select_victim(
            self.gc_policy,
            SelectOpts::standard(self.wear_leveling),
            &candidates,
        )
    }

    /// Collects one victim block (copy valid pages out, erase, free) if one
    /// exists that is profitable (has an invalid page) *and* feasible (its
    /// valid pages fit in the currently allocatable space, so copy-out
    /// cannot wedge). Returns `None` otherwise — the caller decides whether
    /// that means degradation or just "done for now". `cause` tags the
    /// trace event ("watermark" for foreground pressure, "background" for
    /// idle-window collection).
    fn try_collect_victim(
        &mut self,
        ssd: &mut Ssd,
        stats: &mut FtlStats,
        issue: SimTime,
        cause: &'static str,
    ) -> Option<SimTime> {
        let victim = self.pick_victim(ssd)?;
        let valid = self.blocks[victim as usize].valid_count;
        if valid >= self.pages_per_block || u64::from(valid) > self.allocatable_pages() {
            return None;
        }
        stats.gc_invocations += 1;
        let gbi = self.blocks[victim as usize].gbi;
        self.trace.emit(|| {
            TraceEvent::new(issue.as_nanos(), "gc.collect")
                .tag(cause)
                .field("block", u64::from(gbi))
                .field("valid_pages", u64::from(valid))
        });
        Some(self.collect_block(victim, ssd, stats, issue))
    }

    /// Static wear leveling: when the pool's effective-wear spread exceeds
    /// `threshold`, the coldest full block — static data pinned on a
    /// lightly-worn block — is relocated and erased so the block rejoins
    /// the free pool (where least-worn-first allocation puts it back to
    /// work). At most one migration per call, so callers can meter it from
    /// idle windows or maintenance ticks. No-op unless wear leveling is
    /// enabled. Returns the completion time (`issue` when nothing moved).
    pub fn wear_rotate(
        &mut self,
        ssd: &mut Ssd,
        stats: &mut FtlStats,
        issue: SimTime,
        threshold: u32,
    ) -> SimTime {
        if !self.wear_leveling || self.exhausted || ssd.halted() {
            return issue;
        }
        let Some((_, max_pe)) = self.wear_spread(ssd) else {
            return issue;
        };
        // The coldest candidate holding data (full, not retired, not open).
        let cold = self
            .blocks
            .iter()
            .enumerate()
            .filter(|(i, b)| {
                b.is_full(self.pages_per_block) && !b.retired && !self.is_active(*i as u32)
            })
            .min_by_key(|(i, _)| self.block_pe(*i as u32, ssd))
            .map(|(i, _)| i as u32);
        let Some(cold) = cold else { return issue };
        let cold_pe = self.block_pe(cold, ssd);
        if max_pe.saturating_sub(cold_pe) <= threshold {
            return issue; // spread within bounds, or the cold data already cycles
        }
        if u64::from(self.blocks[cold as usize].valid_count) > self.allocatable_pages() {
            return issue; // not enough room to relocate safely
        }
        let gbi = self.blocks[cold as usize].gbi;
        self.trace.emit(|| {
            TraceEvent::new(issue.as_nanos(), "gc.wear_rotate")
                .tag("static_wl")
                .field("block", u64::from(gbi))
                .field("pe", u64::from(cold_pe))
                .field("max_pe", u64::from(max_pe))
        });
        let done = self.collect_block(cold, ssd, stats, issue);
        stats.wear_level_migrations += 1;
        done
    }

    /// Relocates every valid page of `victim` and erases it (shared by GC
    /// victim collection and the read-disturb patrol, which may collect
    /// fully-valid blocks).
    fn collect_block(
        &mut self,
        victim: u32,
        ssd: &mut Ssd,
        stats: &mut FtlStats,
        issue: SimTime,
    ) -> SimTime {
        let mut now = issue;
        let gbi = self.blocks[victim as usize].gbi;
        for page in 0..self.pages_per_block {
            if !self.blocks[victim as usize].valid[page as usize] {
                continue;
            }
            let addr = ssd.geometry().block_addr(gbi).page(page);
            let read_done = ssd.read_full_into(addr, now, &mut self.slots_scratch);
            if ssd.halted() {
                // Power died before the relocation finished: the victim's
                // remaining valid pages stay where they are on flash, and
                // the in-DRAM state of this half-done GC dies with power.
                return now;
            }
            // Recover the LPN from the spare area of any data slot.
            let lpn = self
                .slots_scratch
                .iter()
                .find_map(|r| r.as_ref().ok().map(|o| o.lsn / u64::from(SECTORS_PER_PAGE)))
                .expect("valid page with no data slots");
            debug_assert_eq!(
                self.lookup(lpn),
                Some(PagePtr {
                    block: victim,
                    page
                }),
                "valid bitmap and L2P out of sync"
            );
            let mut oobs = std::mem::take(&mut self.oobs_scratch);
            oobs.clear();
            oobs.extend(self.slots_scratch.iter().map(|r| r.as_ref().ok().copied()));
            let data_sectors = oobs.iter().flatten().count() as u64;
            now = self.program_internal(lpn, &oobs, ssd, stats, read_done);
            self.oobs_scratch = oobs;
            if self.lookup(lpn)
                == Some(PagePtr {
                    block: victim,
                    page,
                })
            {
                // Relocation could not land anywhere (absolute exhaustion):
                // abort the collection before the erase below can destroy
                // the only valid copy. The victim stays as it is.
                return now;
            }
            stats.gc_copied_sectors += data_sectors;
            stats.gc_flash_sectors += u64::from(SECTORS_PER_PAGE);
        }
        let blk_addr = ssd.geometry().block_addr(gbi);
        match ssd.erase(blk_addr, now) {
            Ok(done) => {
                now = done;
                let blk = &mut self.blocks[victim as usize];
                blk.programmed = 0;
                blk.valid.fill(false);
                blk.valid_count = 0;
                blk.closed_seq = 0;
                self.free.push(victim);
            }
            Err(f) if f.error == esp_nand::NandError::EraseFailed => {
                // The block grew bad: retire it instead of freeing it. All
                // valid data was already copied out above, so nothing is
                // lost; the caller's loop simply picks the next victim.
                now = f.at;
                let blk = &mut self.blocks[victim as usize];
                blk.retired = true;
                blk.valid.fill(false);
                blk.valid_count = 0;
                blk.closed_seq = 0;
                self.retired_bad += 1;
                stats.erase_failures += 1;
                stats.blocks_retired += 1;
            }
            Err(f) => panic!("erase of managed block: {f}"),
        }
        now
    }

    /// Retires the block with device-global index `gbi` in place (bad-block
    /// exclusion at mount or after a grown-bad discovery). The block keeps
    /// its engine-local slot — callers such as `CgmFtl::recover` rely on
    /// local index == gbi alignment — but leaves the free list and any
    /// active-block slot. Returns `false` if `gbi` is not under management
    /// or already retired.
    pub fn retire_gbi(&mut self, gbi: u32) -> bool {
        let Some(local) = self.blocks.iter().position(|b| b.gbi == gbi) else {
            return false;
        };
        if self.blocks[local].retired {
            return false;
        }
        assert_eq!(
            self.blocks[local].valid_count, 0,
            "cannot retire a block that still holds valid data"
        );
        self.blocks[local].retired = true;
        self.retired_bad += 1;
        let local = local as u32;
        if let Some(pos) = self.free.iter().position(|&f| f == local) {
            self.free.swap_remove(pos);
        }
        for a in &mut self.actives {
            if *a == Some(local) {
                *a = None;
            }
        }
        true
    }

    /// Removes one erased block from the pool for cross-region wear
    /// leveling, preferring the most-worn free block. Returns its
    /// device-global index, or `None` if the pool cannot spare one.
    pub fn donate_free_block(&mut self, ssd: &Ssd) -> Option<u32> {
        if self.free.len() as u32 <= self.watermark {
            return None;
        }
        let pick = self
            .free
            .iter()
            .enumerate()
            .max_by_key(|(_, &b)| self.block_pe(b, ssd))
            .map(|(i, _)| i)?;
        let local = self.free.swap_remove(pick);
        self.blocks[local as usize].retired = true;
        Some(self.blocks[local as usize].gbi)
    }

    /// Removes the *least-worn* erased block from the pool (for handing a
    /// fresh block to a hotter region during wear leveling). Returns its
    /// device-global index, or `None` if the pool cannot spare one.
    pub fn donate_coldest_free_block(&mut self, ssd: &Ssd) -> Option<u32> {
        if self.free.len() as u32 <= self.watermark {
            return None;
        }
        let pick = self
            .free
            .iter()
            .enumerate()
            .min_by_key(|(_, &b)| self.block_pe(b, ssd))
            .map(|(i, _)| i)?;
        let local = self.free.swap_remove(pick);
        self.blocks[local as usize].retired = true;
        Some(self.blocks[local as usize].gbi)
    }

    /// Atomically trades an erased, over-worn block from another region for
    /// the pool's least-worn free block: the worn block is adopted into the
    /// pool in the same transaction, so — unlike
    /// [`donate_coldest_free_block`](Self::donate_coldest_free_block) — the
    /// pool never shrinks and the exchange is safe even at the GC
    /// watermark. Returns the fresh block's device-global index, or `None`
    /// when the pool is empty or the wear gain would be below `min_gain`
    /// effective cycles.
    pub fn swap_free_block(&mut self, worn_gbi: u32, min_gain: u32, ssd: &Ssd) -> Option<u32> {
        let pick = self
            .free
            .iter()
            .enumerate()
            .min_by_key(|(_, &b)| self.block_pe(b, ssd))
            .map(|(i, _)| i)?;
        let cold_pe = self.block_pe(self.free[pick], ssd);
        let worn_pe = ssd
            .device()
            .effective_pe(ssd.geometry().block_addr(worn_gbi));
        if worn_pe <= cold_pe.saturating_add(min_gain) {
            return None;
        }
        let local = self.free.swap_remove(pick);
        self.blocks[local as usize].retired = true;
        let fresh = self.blocks[local as usize].gbi;
        self.adopt_free_block(worn_gbi);
        Some(fresh)
    }

    /// Effective P/E cycles of the least-worn free block, if any can be
    /// spared.
    #[must_use]
    pub fn coldest_free_pe(&self, ssd: &Ssd) -> Option<u32> {
        if self.free.len() as u32 <= self.watermark {
            return None;
        }
        self.free.iter().map(|&b| self.block_pe(b, ssd)).min()
    }

    /// Adds an erased block (received from another region) to the pool.
    pub fn adopt_free_block(&mut self, gbi: u32) {
        let local = self.blocks.len() as u32;
        self.blocks.push(FullBlock::new(
            gbi,
            self.blocks_per_chip,
            self.pages_per_block,
        ));
        self.free.push(local);
    }

    /// Rebuilds mapping and allocation state from a post-crash scan:
    /// `programmed[b]` is the number of programmed pages in local block `b`
    /// and `mappings` the winning `(lpn, block, page)` triples. The free
    /// list is recomputed; no block is left active.
    ///
    /// # Panics
    ///
    /// Panics if a mapping points outside the pool or two mappings claim
    /// the same logical page.
    pub(crate) fn restore_state(&mut self, programmed: &[u32], mappings: &[(u64, u32, u32)]) {
        assert_eq!(programmed.len(), self.blocks.len(), "scan shape mismatch");
        for (b, &p) in programmed.iter().enumerate() {
            assert!(p <= self.pages_per_block);
            self.blocks[b].programmed = p;
            self.blocks[b].valid.fill(false);
            self.blocks[b].valid_count = 0;
            // Recovered blocks carry stamp 0: maximally old to the
            // age-aware policies, the safe direction after a crash.
            self.blocks[b].closed_seq = 0;
        }
        for l in &mut self.l2p {
            *l = NO_PTR;
        }
        for &(lpn, block, page) in mappings {
            assert!(
                self.l2p[lpn as usize] == NO_PTR,
                "two recovered copies mapped for lpn {lpn}"
            );
            self.l2p[lpn as usize] = block * self.pages_per_block + page;
            let blk = &mut self.blocks[block as usize];
            assert!(page < blk.programmed, "mapping into unprogrammed page");
            blk.valid[page as usize] = true;
            blk.valid_count += 1;
        }
        self.free = self
            .blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| !b.retired && b.programmed == 0)
            .map(|(i, _)| i as u32)
            .collect();
        // Partially programmed blocks were the per-chip active blocks at
        // the crash: resume one per chip; close any extras (their unwritten
        // tail is wasted until GC reclaims the block, the standard
        // "close the open block" recovery rule).
        for a in &mut self.actives {
            *a = None;
        }
        for i in 0..self.blocks.len() {
            let b = &self.blocks[i];
            if b.retired || b.programmed == 0 || b.programmed >= self.pages_per_block {
                continue;
            }
            let chip = self.chip_of(i as u32);
            if self.actives[chip].is_none() {
                self.actives[chip] = Some(i as u32);
            } else {
                self.blocks[i].programmed = self.pages_per_block;
            }
        }
    }

    /// Bytes of L2P mapping state (the coarse page map).
    #[must_use]
    pub fn mapping_bytes(&self) -> u64 {
        (self.l2p.len() * std::mem::size_of::<u32>()) as u64
    }

    /// Sum of valid pages across the pool (for tests and reporting).
    #[must_use]
    pub fn valid_pages(&self) -> u64 {
        self.blocks.iter().map(|b| u64::from(b.valid_count)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp_nand::Geometry;

    fn setup() -> (Ssd, FullRegionEngine, FtlStats) {
        let g = Geometry::tiny(); // 16 blocks of 4 pages
        let ssd = Ssd::new(g.clone());
        // Use all 16 blocks, logical space of 32 lpns (half of physical).
        let engine = FullRegionEngine::new(
            (0..16).collect(),
            g.pages_per_block,
            g.blocks_per_chip,
            32,
            2,
        );
        (ssd, engine, FtlStats::new())
    }

    fn full_oobs(lpn: u64) -> Vec<Option<Oob>> {
        (0..4)
            .map(|s| {
                Some(Oob {
                    lsn: lpn * 4 + s,
                    seq: 0,
                })
            })
            .collect()
    }

    #[test]
    fn program_maps_and_invalidates_old_copy() {
        let (mut ssd, mut eng, mut stats) = setup();
        eng.program_page(5, &full_oobs(5), &mut ssd, &mut stats, SimTime::ZERO);
        let first = eng.lookup(5).unwrap();
        eng.program_page(5, &full_oobs(5), &mut ssd, &mut stats, SimTime::ZERO);
        let second = eng.lookup(5).unwrap();
        assert_ne!(first, second);
        assert_eq!(eng.valid_pages(), 1, "old copy must be invalid");
        assert_eq!(stats.flash_sectors_consumed, 8);
    }

    #[test]
    fn read_back_through_lookup() {
        let (mut ssd, mut eng, mut stats) = setup();
        eng.program_page(3, &full_oobs(3), &mut ssd, &mut stats, SimTime::ZERO);
        let ptr = eng.lookup(3).unwrap();
        let addr = eng.page_addr(ptr, &ssd);
        let (slots, _) = ssd.read_full(addr, SimTime::ZERO);
        assert_eq!(slots[2].as_ref().unwrap().lsn, 14);
    }

    #[test]
    fn gc_reclaims_space_under_overwrite_pressure() {
        let (mut ssd, mut eng, mut stats) = setup();
        // 32 lpns over 16 blocks x 4 pages = 64 physical pages. Overwrite
        // the 32 lpns repeatedly; GC must keep the engine alive.
        for round in 0..6 {
            for lpn in 0..32 {
                eng.program_page(lpn, &full_oobs(lpn), &mut ssd, &mut stats, SimTime::ZERO);
                let _ = round;
            }
        }
        assert!(stats.gc_invocations > 0, "GC must have run");
        assert_eq!(eng.valid_pages(), 32, "exactly one valid copy per lpn");
        // Every lpn still readable with correct content.
        for lpn in 0..32 {
            let ptr = eng.lookup(lpn).unwrap();
            let addr = eng.page_addr(ptr, &ssd);
            let (slots, _) = ssd.read_full(addr, SimTime::ZERO);
            assert_eq!(slots[0].as_ref().unwrap().lsn, lpn * 4);
        }
    }

    #[test]
    fn gc_preserves_partial_pages() {
        let (mut ssd, mut eng, mut stats) = setup();
        // Pages with only one data slot (RMW style) survive GC intact.
        let oobs = |lpn: u64| {
            let mut v: Vec<Option<Oob>> = vec![None; 4];
            v[1] = Some(Oob {
                lsn: lpn * 4 + 1,
                seq: 9,
            });
            v
        };
        for round in 0..8 {
            for lpn in 0..32 {
                let o = if round == 7 {
                    oobs(lpn)
                } else {
                    full_oobs(lpn)
                };
                eng.program_page(lpn, &o, &mut ssd, &mut stats, SimTime::ZERO);
            }
        }
        // Force more GC by overwriting a few lpns.
        for lpn in 0..8 {
            eng.program_page(lpn, &full_oobs(lpn), &mut ssd, &mut stats, SimTime::ZERO);
        }
        for lpn in 8..32u64 {
            let ptr = eng.lookup(lpn).unwrap();
            let addr = eng.page_addr(ptr, &ssd);
            let (slots, _) = ssd.read_full(addr, SimTime::ZERO);
            assert_eq!(slots[1].as_ref().unwrap().lsn, lpn * 4 + 1);
            assert!(slots[0].is_err(), "padding slots stay padding");
        }
    }

    #[test]
    fn unmap_releases_validity() {
        let (mut ssd, mut eng, mut stats) = setup();
        eng.program_page(1, &full_oobs(1), &mut ssd, &mut stats, SimTime::ZERO);
        assert_eq!(eng.valid_pages(), 1);
        eng.unmap(1);
        assert_eq!(eng.valid_pages(), 0);
        assert_eq!(eng.lookup(1), None);
        // Double unmap is a no-op.
        eng.unmap(1);
        assert_eq!(eng.valid_pages(), 0);
    }

    #[test]
    fn donate_and_adopt_blocks() {
        let (mut ssd, mut eng, mut stats) = setup();
        let before = eng.free_blocks();
        let gbi = eng.donate_free_block(&ssd).unwrap();
        assert_eq!(eng.free_blocks(), before - 1);
        eng.adopt_free_block(gbi);
        assert_eq!(eng.free_blocks(), before);
        // The engine still functions.
        eng.program_page(0, &full_oobs(0), &mut ssd, &mut stats, SimTime::ZERO);
        assert!(eng.lookup(0).is_some());
    }

    #[test]
    fn donation_refuses_below_watermark() {
        let g = Geometry::tiny();
        let ssd = Ssd::new(g.clone());
        let mut eng =
            FullRegionEngine::new(vec![0, 1, 2], g.pages_per_block, g.blocks_per_chip, 4, 2);
        // 3 free blocks, watermark 2: can donate exactly one.
        assert!(eng.donate_free_block(&ssd).is_some());
        assert!(eng.donate_free_block(&ssd).is_none());
    }

    #[test]
    fn gc_time_is_charged() {
        let (mut ssd, mut eng, mut stats) = setup();
        let mut last = SimTime::ZERO;
        for round in 0..6 {
            for lpn in 0..32 {
                last = eng.program_page(lpn, &full_oobs(lpn), &mut ssd, &mut stats, last);
                let _ = round;
            }
        }
        assert!(ssd.device().stats().erases > 0);
        // Makespan reflects GC reads + copies + erases, beyond pure host
        // programs.
        let host_only = 6 * 32 * 1650; // rough lower bound in us
        assert!(ssd.makespan() > SimTime::from_micros(host_only));
    }

    #[test]
    fn restore_state_rebuilds_free_and_actives() {
        let (mut ssd, mut eng, mut stats) = setup();
        for lpn in 0..8 {
            eng.program_page(lpn, &full_oobs(lpn), &mut ssd, &mut stats, SimTime::ZERO);
        }
        // Snapshot the physical truth, then restore a fresh engine.
        let programmed: Vec<u32> = (0..16)
            .map(|b| {
                (0..4)
                    .filter(|&p| {
                        !ssd.device()
                            .block(ssd.geometry().block_addr(b))
                            .page(p)
                            .is_erased()
                    })
                    .count() as u32
            })
            .collect();
        let mappings: Vec<(u64, u32, u32)> = (0..8)
            .map(|lpn| {
                let ptr = eng.lookup(lpn).unwrap();
                (lpn, ptr.block, ptr.page)
            })
            .collect();
        let mut restored =
            FullRegionEngine::new((0..16).collect(), 4, ssd.geometry().blocks_per_chip, 32, 2);
        restored.restore_state(&programmed, &mappings);
        assert_eq!(restored.valid_pages(), 8);
        for lpn in 0..8 {
            assert_eq!(restored.lookup(lpn), eng.lookup(lpn));
        }
        // Partially programmed blocks resumed as actives: writing continues
        // without touching a dirty page.
        restored.program_page(9, &full_oobs(9), &mut ssd, &mut stats, SimTime::ZERO);
        assert!(restored.lookup(9).is_some());
    }

    #[test]
    fn restore_closes_extra_partial_blocks() {
        // Two partial blocks on one chip: one resumes, the other closes.
        let g = Geometry {
            channels: 1,
            chips_per_channel: 1,
            blocks_per_chip: 4,
            pages_per_block: 4,
            subpages_per_page: 4,
            subpage_bytes: 4096,
        };
        let mut ssd = Ssd::new(g.clone());
        // Physically program the partial prefixes the scan would report
        // (blocks must be written in page order).
        for (blk, pages) in [(0u32, 2u32), (1, 1)] {
            for p in 0..pages {
                ssd.program_full(g.block_addr(blk).page(p), &[None; 4], SimTime::ZERO)
                    .unwrap();
            }
        }
        let mut eng = FullRegionEngine::new((0..4).collect(), 4, 4, 8, 2);
        eng.restore_state(&[2, 1, 0, 0], &[]);
        assert_eq!(eng.free_blocks(), 2);
        // One of the two partials was closed: it is a GC candidate once a
        // victim is needed; the other continues as active.
        let mut stats = FtlStats::new();
        eng.program_page(0, &full_oobs(0), &mut ssd, &mut stats, SimTime::ZERO);
        assert!(eng.lookup(0).is_some());
    }

    #[test]
    fn donate_coldest_prefers_least_worn() {
        let g = Geometry::tiny();
        let mut ssd = Ssd::new(g.clone());
        // Wear block 0 heavily.
        for _ in 0..5 {
            ssd.erase(g.block_addr(0), SimTime::ZERO).unwrap();
        }
        let mut eng =
            FullRegionEngine::new(vec![0, 1, 2, 3], g.pages_per_block, g.blocks_per_chip, 4, 2);
        let donated = eng.donate_coldest_free_block(&ssd).unwrap();
        assert_ne!(donated, 0, "coldest donation must avoid the worn block");
        assert_eq!(eng.coldest_free_pe(&ssd), Some(0));
    }

    #[test]
    fn program_failures_are_retried_elsewhere() {
        let g = Geometry::tiny();
        let mut ssd = Ssd::new(g.clone());
        ssd.device_mut().set_faults(esp_nand::FaultConfig {
            seed: 21,
            program_fail_prob: 0.2,
            ..esp_nand::FaultConfig::default()
        });
        // Failed attempts burn pages, so keep utilization low enough that
        // GC always nets space even when copies retry.
        let mut eng = FullRegionEngine::new(
            (0..16).collect(),
            g.pages_per_block,
            g.blocks_per_chip,
            16,
            2,
        );
        let mut stats = FtlStats::new();
        let mut now = SimTime::ZERO;
        for round in 0..8 {
            for lpn in 0..16 {
                now = eng.program_page(lpn, &full_oobs(lpn), &mut ssd, &mut stats, now);
                let _ = round;
            }
        }
        assert!(stats.write_retries > 0, "p=0.2 must force retries");
        assert_eq!(stats.program_failures, stats.write_retries);
        assert_eq!(eng.valid_pages(), 16);
        // Every lpn readable with correct content despite the failures.
        for lpn in 0..16 {
            let ptr = eng.lookup(lpn).unwrap();
            let addr = eng.page_addr(ptr, &ssd);
            let (slots, _) = ssd.read_full(addr, SimTime::ZERO);
            assert_eq!(slots[0].as_ref().unwrap().lsn, lpn * 4);
        }
    }

    #[test]
    fn erase_failures_retire_the_victim() {
        let g = Geometry::tiny();
        let mut ssd = Ssd::new(g.clone());
        ssd.device_mut().set_faults(esp_nand::FaultConfig {
            seed: 5,
            erase_fail_prob: 0.3,
            ..esp_nand::FaultConfig::default()
        });
        // Small logical space (4 blocks of data over 16 physical) so GC can
        // afford to lose several blocks to grown-bad retirement.
        let mut eng = FullRegionEngine::new(
            (0..16).collect(),
            g.pages_per_block,
            g.blocks_per_chip,
            16,
            2,
        );
        let mut stats = FtlStats::new();
        let mut now = SimTime::ZERO;
        for round in 0..6 {
            for lpn in 0..16 {
                now = eng.program_page(lpn, &full_oobs(lpn), &mut ssd, &mut stats, now);
                let _ = round;
            }
        }
        assert!(stats.erase_failures > 0, "p=0.3 must force erase failures");
        assert_eq!(stats.blocks_retired, stats.erase_failures);
        assert_eq!(eng.block_count(), 16 - stats.blocks_retired as u32);
        assert_eq!(
            ssd.device().bad_block_indices().len() as u64,
            stats.blocks_retired,
            "every retirement corresponds to a grown bad block"
        );
        assert_eq!(eng.valid_pages(), 16);
        for lpn in 0..16 {
            let ptr = eng.lookup(lpn).unwrap();
            let addr = eng.page_addr(ptr, &ssd);
            let (slots, _) = ssd.read_full(addr, SimTime::ZERO);
            assert_eq!(slots[0].as_ref().unwrap().lsn, lpn * 4);
        }
    }

    #[test]
    fn retire_gbi_excludes_the_block_in_place() {
        let (mut ssd, mut eng, mut stats) = setup();
        let before_free = eng.free_blocks();
        let before_total = eng.block_count();
        assert!(eng.retire_gbi(7));
        assert_eq!(eng.free_blocks(), before_free - 1);
        assert_eq!(eng.block_count(), before_total - 1);
        // Idempotent / unknown gbis refused.
        assert!(!eng.retire_gbi(7));
        assert!(!eng.retire_gbi(999));
        // Local slot preserved: block 8 still maps to gbi 8.
        eng.program_page(0, &full_oobs(0), &mut ssd, &mut stats, SimTime::ZERO);
        let ptr = eng.lookup(0).unwrap();
        assert_eq!(eng.blocks[ptr.block as usize].gbi, ptr.block);
        // The engine never writes into the retired block.
        for lpn in 0..32 {
            eng.program_page(lpn, &full_oobs(lpn), &mut ssd, &mut stats, SimTime::ZERO);
        }
        assert!(ssd
            .device()
            .block(ssd.geometry().block_addr(7))
            .page(0)
            .is_erased());
    }

    #[test]
    fn reclaim_page_moves_data_to_a_fresh_location() {
        let (mut ssd, mut eng, mut stats) = setup();
        eng.program_page(3, &full_oobs(3), &mut ssd, &mut stats, SimTime::ZERO);
        let before = eng.lookup(3).unwrap();
        let done = eng.reclaim_page(3, &mut ssd, &mut stats, SimTime::ZERO);
        let after = eng.lookup(3).unwrap();
        assert_ne!(before, after, "reclaim must relocate the page");
        assert!(done > SimTime::ZERO, "reclaim charges read + program time");
        assert_eq!(stats.read_reclaims, 1);
        assert_eq!(eng.valid_pages(), 1, "old copy invalidated");
        let (slots, _) = ssd.read_full(eng.page_addr(after, &ssd), done);
        assert_eq!(slots[0].as_ref().unwrap().lsn, 12);
        // Unmapped lpns are a no-op.
        let t = eng.reclaim_page(30, &mut ssd, &mut stats, done);
        assert_eq!(t, done);
        assert_eq!(stats.read_reclaims, 1);
    }

    #[test]
    fn scrub_relocates_disturbed_blocks_and_discharges_them() {
        let (mut ssd, mut eng, mut stats) = setup();
        eng.program_page(7, &full_oobs(7), &mut ssd, &mut stats, SimTime::ZERO);
        let ptr = eng.lookup(7).unwrap();
        let old_gbi = eng.blocks[ptr.block as usize].gbi;
        let addr = eng.page_addr(ptr, &ssd);
        // Hammer the page until the block accumulates 50 senses.
        for _ in 0..50 {
            let _ = ssd.read_full(addr, SimTime::ZERO);
        }
        let old_block = ssd.geometry().block_addr(old_gbi);
        assert_eq!(ssd.device().reads_since_erase(old_block), 50);
        eng.scrub_disturbed(&mut ssd, &mut stats, 50, SimTime::ZERO);
        assert_eq!(stats.disturb_scrubs, 1);
        // The block was erased (sense counter discharged) and the data
        // lives elsewhere, still readable.
        assert_eq!(ssd.device().reads_since_erase(old_block), 0);
        let after = eng.lookup(7).unwrap();
        assert_ne!(eng.blocks[after.block as usize].gbi, old_gbi);
        let (slots, _) = ssd.read_full(eng.page_addr(after, &ssd), SimTime::ZERO);
        assert_eq!(slots[0].as_ref().unwrap().lsn, 28);
        // A second sweep finds nothing above the limit.
        eng.scrub_disturbed(&mut ssd, &mut stats, 50, SimTime::ZERO);
        assert_eq!(stats.disturb_scrubs, 1);
    }

    /// One-chip, 8-block pool with `mapped[b]` lpns valid in the first
    /// pages of block `b` (0 = left free), for tests that need exact
    /// per-block valid counts. Blocks with any valid pages are physically
    /// programmed full (pages past the valid prefix are stale data).
    fn staged(ssd: &mut Ssd, mapped: &[u32]) -> FullRegionEngine {
        let g = ssd.geometry().clone();
        let mut eng = FullRegionEngine::new(
            (0..8).collect(),
            g.pages_per_block,
            g.blocks_per_chip,
            32,
            2,
        );
        let mut programmed = vec![0u32; 8];
        let mut mappings = Vec::new();
        for (b, &valid) in mapped.iter().enumerate() {
            if valid == 0 {
                continue;
            }
            programmed[b] = g.pages_per_block; // full block
            for p in 0..g.pages_per_block {
                let lpn = u64::from(b as u32) * 4 + u64::from(p);
                ssd.program_full(
                    g.block_addr(b as u32).page(p),
                    &full_oobs(lpn),
                    SimTime::ZERO,
                )
                .unwrap();
                if p < valid {
                    mappings.push((lpn, b as u32, p));
                }
            }
        }
        eng.restore_state(&programmed, &mappings);
        eng
    }

    fn one_chip() -> Geometry {
        Geometry {
            channels: 1,
            chips_per_channel: 1,
            blocks_per_chip: 8,
            pages_per_block: 4,
            subpages_per_page: 4,
            subpage_bytes: 4096,
        }
    }

    #[test]
    fn wear_bias_prefers_less_worn_victims_within_slack() {
        let mut ssd = Ssd::new(one_chip());
        // Block 0 is the greedy choice (fewest valid pages) but heavily
        // worn; block 1 has one more valid page (within the slack of 1) on
        // fresh cells; block 2 is fully valid (never eligible).
        for _ in 0..5 {
            ssd.erase(ssd.geometry().block_addr(0), SimTime::ZERO)
                .unwrap();
        }
        let mut eng = staged(&mut ssd, &[2, 3, 4, 0, 0, 0, 0, 0]);
        assert_eq!(eng.pick_victim(&ssd), Some(0), "greedy picks fewest valid");
        eng.set_wear_leveling(true);
        assert_eq!(
            eng.pick_victim(&ssd),
            Some(1),
            "wear bias trades one extra copy for a colder victim"
        );
        // A fully-valid block never wins, however cold.
        let mut ssd = Ssd::new(one_chip());
        for _ in 0..5 {
            ssd.erase(ssd.geometry().block_addr(0), SimTime::ZERO)
                .unwrap();
        }
        let mut eng = staged(&mut ssd, &[2, 4, 4, 0, 0, 0, 0, 0]);
        eng.set_wear_leveling(true);
        assert_eq!(eng.pick_victim(&ssd), Some(0));
    }

    #[test]
    fn wear_rotate_migrates_cold_static_data() {
        let mut ssd = Ssd::new(one_chip());
        // Block 4 is far more worn than block 0, which pins static data.
        for _ in 0..25 {
            ssd.erase(ssd.geometry().block_addr(4), SimTime::ZERO)
                .unwrap();
        }
        let mut eng = staged(&mut ssd, &[4, 0, 0, 0, 0, 0, 0, 0]);
        let mut stats = FtlStats::new();
        // Off (default): never moves anything.
        let t = eng.wear_rotate(&mut ssd, &mut stats, SimTime::ZERO, 20);
        assert_eq!(t, SimTime::ZERO);
        assert_eq!(stats.wear_level_migrations, 0);
        eng.set_wear_leveling(true);
        // Spread (25) exceeds the threshold: the cold block is relocated,
        // erased, and freed.
        let free_before = eng.free_blocks();
        let done = eng.wear_rotate(&mut ssd, &mut stats, SimTime::ZERO, 20);
        assert!(done > SimTime::ZERO);
        assert_eq!(stats.wear_level_migrations, 1);
        assert_eq!(ssd.device().pe_cycles(ssd.geometry().block_addr(0)), 1);
        assert_eq!(
            eng.free_blocks(),
            free_before,
            "cold block rejoined the pool"
        );
        for lpn in 0..4 {
            let ptr = eng.lookup(lpn).unwrap();
            assert_ne!(ptr.block, 0, "data moved off the cold block");
            let (slots, _) = ssd.read_full(eng.page_addr(ptr, &ssd), done);
            assert_eq!(slots[0].as_ref().unwrap().lsn, lpn * 4);
        }
        // Spread now within threshold: second call is a no-op.
        let again = eng.wear_rotate(&mut ssd, &mut stats, done, 20);
        assert_eq!(again, done);
        assert_eq!(stats.wear_level_migrations, 1);
    }

    #[test]
    fn exhaustion_refuses_writes_instead_of_panicking() {
        // Every erase fails, so each GC victim retires and the pool wears
        // out fast. The engine must shed over-provisioning, then return a
        // typed end-of-life error — never panic, never livelock.
        let g = Geometry::tiny();
        let mut ssd = Ssd::new(g.clone());
        ssd.device_mut().set_faults(esp_nand::FaultConfig {
            seed: 9,
            erase_fail_prob: 0.95,
            ..esp_nand::FaultConfig::default()
        });
        let mut eng = FullRegionEngine::new(
            (0..16).collect(),
            g.pages_per_block,
            g.blocks_per_chip,
            16,
            2,
        );
        let mut stats = FtlStats::new();
        let mut now = SimTime::ZERO;
        let mut died = None;
        'outer: for round in 0..400 {
            for lpn in 0..16 {
                match eng.try_program_page(lpn, &full_oobs(lpn), &mut ssd, &mut stats, now) {
                    Ok(t) => now = t,
                    Err(e) => {
                        died = Some(e);
                        break 'outer;
                    }
                }
                let _ = round;
            }
        }
        assert_eq!(
            died,
            Some(SpaceExhausted::EndOfLife),
            "retirement-driven exhaustion reports end of life"
        );
        assert!(eng.exhausted());
        assert!(stats.op_shrinks > 0, "watermark shed before giving up");
        assert!(stats.blocks_retired > 0);
        // Further writes fail fast with the same typed error.
        let err = eng
            .try_program_page(0, &full_oobs(0), &mut ssd, &mut stats, now)
            .unwrap_err();
        assert_eq!(err, SpaceExhausted::EndOfLife);
        // Every lpn that still has a mapping reads back correctly: dying
        // never corrupted surviving data.
        let mut readable = 0;
        for lpn in 0..16 {
            if let Some(ptr) = eng.lookup(lpn) {
                let (slots, _) = ssd.read_full(eng.page_addr(ptr, &ssd), now);
                assert_eq!(slots[0].as_ref().unwrap().lsn, lpn * 4);
                readable += 1;
            }
        }
        assert!(readable > 0, "some data survives to the read-only phase");
    }

    #[test]
    #[should_panic(expected = "does not belong to lpn")]
    fn program_rejects_inconsistent_oob() {
        let (mut ssd, mut eng, mut stats) = setup();
        let mut oobs = full_oobs(3);
        oobs[0] = Some(Oob { lsn: 999, seq: 0 });
        eng.program_page(3, &oobs, &mut ssd, &mut stats, SimTime::ZERO);
    }
}

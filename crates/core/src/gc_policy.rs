//! Pluggable garbage-collection victim selection.
//!
//! Every FTL in this crate used to hard-code greedy victim selection
//! (fewest valid units wins). This module extracts that decision into a
//! single policy point shared by all four victim sites — the full-page
//! region engine (cgmFTL, subFTL's full region, sector-log's data
//! region), fgmFTL's block pool, subFTL's subpage region, and the
//! sector-log's log-block pool — so alternatives from the flash GC
//! literature (Dayan & Bonnet, *Garbage Collection Techniques for
//! Flash-Resident Page-Mapping FTLs*) can be compared apples-to-apples:
//!
//! * [`GcPolicyKind::Greedy`] — fewest valid units; the historical
//!   behaviour and the default (bit-identical to pre-policy builds).
//! * [`GcPolicyKind::CostBenefit`] — maximize
//!   `age × (1 − u) / 2u` where `u` is the victim's valid fraction;
//!   cold, mostly-invalid blocks are preferred even when a slightly
//!   emptier hot block exists, cutting repeat-migration of hot data.
//! * [`GcPolicyKind::WindowedGreedy`] — greedy restricted to the `W`
//!   oldest closed blocks; bounds the age of anything GC touches so hot
//!   pages get time to self-invalidate before their block is collected.
//!
//! Age is a logical clock: each engine stamps a monotone sequence number
//! on a block when it becomes fully programmed ("closed"); a block's age
//! is the distance from that stamp to the current counter. Blocks
//! restored by mount-time recovery carry stamp 0 and therefore look
//! maximally old, which is the safe direction for both non-greedy
//! policies.
//!
//! Wear-leveling victim slack (the `wear_leveling` config flag) composes
//! with every policy: the policy picks a reference victim, and the final
//! choice is the least-worn candidate whose valid count is within the
//! slack window above the reference — exactly the pre-policy behaviour
//! when the policy is greedy.

/// Which victim-selection policy the GC uses. Selected per-run via
/// `FtlConfig::gc_policy` / espsim `--gc-policy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum GcPolicyKind {
    /// Fewest valid units wins (ties broken by lowest block index).
    /// The historical hard-coded behaviour; results are bit-identical
    /// to pre-policy builds.
    #[default]
    Greedy,
    /// Cost-benefit: minimize `2·valid / ((capacity − valid) · age)`,
    /// i.e. maximize reclaimed space per copy cost weighted by how long
    /// the block has been left alone (Dayan & Bonnet's CB policy).
    CostBenefit,
    /// Greedy over the window of the `WINDOW` oldest closed blocks.
    WindowedGreedy,
}

impl GcPolicyKind {
    /// All selectable policies, in CLI/report order.
    pub const ALL: [GcPolicyKind; 3] = [
        GcPolicyKind::Greedy,
        GcPolicyKind::CostBenefit,
        GcPolicyKind::WindowedGreedy,
    ];

    /// Stable CLI / report name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            GcPolicyKind::Greedy => "greedy",
            GcPolicyKind::CostBenefit => "cost-benefit",
            GcPolicyKind::WindowedGreedy => "windowed-greedy",
        }
    }
}

impl std::fmt::Display for GcPolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for GcPolicyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "greedy" => Ok(GcPolicyKind::Greedy),
            "cost-benefit" | "cb" => Ok(GcPolicyKind::CostBenefit),
            "windowed-greedy" | "windowed" => Ok(GcPolicyKind::WindowedGreedy),
            other => Err(format!(
                "unknown GC policy '{other}' (expected greedy, cost-benefit, \
                 or windowed-greedy)"
            )),
        }
    }
}

/// Number of oldest closed blocks [`GcPolicyKind::WindowedGreedy`]
/// considers.
pub const WINDOW: usize = 16;

/// Right-shift applied to a pool's per-block capacity to derive the
/// wear-leveling valid-count slack (capacity/8, minimum 1). Shared by
/// every victim site so the wear bias is proportional everywhere.
pub const VICTIM_WEAR_SLACK_SHIFT: u32 = 3;

/// One collectable block, as seen by the policy.
#[derive(Debug, Clone, Copy)]
pub struct VictimCandidate {
    /// Pool-local block index (what the caller gets back).
    pub index: u32,
    /// Valid units still in the block (pages, subpages, or sectors —
    /// whatever the pool's copy currency is).
    pub valid: u32,
    /// Units per block in this pool; `valid == capacity` means nothing
    /// is reclaimed by collecting it.
    pub capacity: u32,
    /// Logical age: engine close-counter minus the block's close stamp.
    /// Larger = closed longer ago. Recovery-restored blocks report the
    /// full counter value (maximally old).
    pub age: u64,
    /// Effective program/erase wear (milli-P/E); used only when
    /// `wear_leveling` is set in [`SelectOpts`].
    pub wear: u32,
}

/// Per-site knobs for [`select_victim`]. The four victim sites differ
/// only in two details of the historical wear-slack path, preserved here
/// bit-for-bit.
#[derive(Debug, Clone, Copy)]
pub struct SelectOpts {
    /// Apply the wear-leveling slack pass after the policy's choice.
    pub wear_leveling: bool,
    /// Historical quirk (full-region / fgm / sector-log sites): when the
    /// best candidate is fully valid, skip the wear pass and return it
    /// directly. subFTL's subpage region never short-circuits.
    pub early_return_full: bool,
    /// Historical quirk (same three sites): cap the slack window at
    /// `capacity − 1` so a fully-valid block is never chosen over a
    /// partially-invalid one. subFTL applies no cap.
    pub cap_limit: bool,
}

impl SelectOpts {
    /// The full-region / fgm / sector-log flavour.
    #[must_use]
    pub fn standard(wear_leveling: bool) -> Self {
        SelectOpts {
            wear_leveling,
            early_return_full: true,
            cap_limit: true,
        }
    }

    /// subFTL's subpage-region flavour (no early return, no cap).
    #[must_use]
    pub fn subpage(wear_leveling: bool) -> Self {
        SelectOpts {
            wear_leveling,
            early_return_full: false,
            cap_limit: false,
        }
    }
}

/// Fixed-point scale for cost-benefit scores (keeps integer arithmetic
/// exact over u128 for any realistic capacity × age product).
const CB_SCALE: u128 = 1 << 32;

fn cost_benefit_score(c: &VictimCandidate) -> u128 {
    if c.valid >= c.capacity {
        return u128::MAX; // nothing reclaimable — never profitable
    }
    // Minimize 2u / ((1-u)·age)  ≡  2·valid / ((capacity-valid)·age).
    let num = 2 * u128::from(c.valid) * CB_SCALE;
    let den = u128::from(c.capacity - c.valid) * u128::from(c.age.max(1));
    num / den
}

/// Index (into `candidates`) of the policy's reference victim, before
/// the wear pass. `None` if the slice is empty.
fn policy_reference(kind: GcPolicyKind, candidates: &[VictimCandidate]) -> Option<usize> {
    match kind {
        GcPolicyKind::Greedy => candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| c.valid)
            .map(|(i, _)| i),
        GcPolicyKind::CostBenefit => candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| cost_benefit_score(c))
            .map(|(i, _)| i),
        GcPolicyKind::WindowedGreedy => {
            if candidates.is_empty() {
                return None;
            }
            // Greedy over the WINDOW oldest candidates. Ages are compared
            // descending; ties (same age — e.g. all recovery-restored
            // blocks) keep slice order so the window is deterministic.
            let mut order: Vec<usize> = (0..candidates.len()).collect();
            order.sort_by_key(|&i| (std::cmp::Reverse(candidates[i].age), i));
            order.truncate(WINDOW);
            let in_window = order
                .into_iter()
                .min_by_key(|&i| (candidates[i].valid, i))?;
            if candidates[in_window].valid >= candidates[in_window].capacity {
                // The whole window is fully valid (nothing reclaimable):
                // widen to plain greedy rather than letting the caller
                // conclude the pool is exhausted.
                return policy_reference(GcPolicyKind::Greedy, candidates);
            }
            Some(in_window)
        }
    }
}

/// Selects a GC victim from `candidates` under policy `kind`, composing
/// the wear-leveling slack pass per `opts`. Returns the chosen
/// candidate's `index` field. Candidates must be pushed in ascending
/// block-index order — greedy tie-breaking depends on slice order.
#[must_use]
pub fn select_victim(
    kind: GcPolicyKind,
    opts: SelectOpts,
    candidates: &[VictimCandidate],
) -> Option<u32> {
    let ref_idx = policy_reference(kind, candidates)?;
    let reference = candidates[ref_idx];
    if !opts.wear_leveling || (opts.early_return_full && reference.valid >= reference.capacity) {
        return Some(reference.index);
    }
    let slack = (reference.capacity >> VICTIM_WEAR_SLACK_SHIFT).max(1);
    let mut limit = reference.valid.saturating_add(slack);
    if opts.cap_limit {
        limit = limit.min(reference.capacity - 1);
    }
    candidates
        .iter()
        .filter(|c| c.valid <= limit)
        .min_by_key(|c| (c.wear, c.valid, c.index))
        .map(|c| c.index)
        .or(Some(reference.index))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(index: u32, valid: u32, capacity: u32, age: u64, wear: u32) -> VictimCandidate {
        VictimCandidate {
            index,
            valid,
            capacity,
            age,
            wear,
        }
    }

    #[test]
    fn greedy_picks_first_minimum_in_slice_order() {
        let c = [
            cand(3, 5, 64, 10, 0),
            cand(7, 2, 64, 1, 0),
            cand(9, 2, 64, 99, 0),
        ];
        let opts = SelectOpts::standard(false);
        assert_eq!(select_victim(GcPolicyKind::Greedy, opts, &c), Some(7));
    }

    #[test]
    fn greedy_with_wear_prefers_less_worn_within_slack() {
        // capacity 64 → slack 8; valid 2 and 9 are within limit 10, but
        // 12 is not.
        let c = [
            cand(0, 2, 64, 1, 500),
            cand(1, 9, 64, 1, 100),
            cand(2, 12, 64, 1, 1),
        ];
        let opts = SelectOpts::standard(true);
        assert_eq!(select_victim(GcPolicyKind::Greedy, opts, &c), Some(1));
    }

    #[test]
    fn wear_early_return_on_fully_valid_best() {
        let c = [cand(0, 64, 64, 1, 500), cand(1, 64, 64, 1, 1)];
        let opts = SelectOpts::standard(true);
        // Standard sites short-circuit to the greedy pick.
        assert_eq!(select_victim(GcPolicyKind::Greedy, opts, &c), Some(0));
        // The subpage flavour runs the wear pass (no cap) and takes the
        // less-worn block.
        let sub = SelectOpts::subpage(true);
        assert_eq!(select_victim(GcPolicyKind::Greedy, sub, &c), Some(1));
    }

    #[test]
    fn cap_limit_excludes_fully_valid_blocks() {
        // Greedy best valid=60, slack 8 ⇒ limit min(68, 63)=63: the
        // fully-valid low-wear block must not be chosen.
        let c = [cand(0, 60, 64, 1, 500), cand(1, 64, 64, 1, 1)];
        let opts = SelectOpts::standard(true);
        assert_eq!(select_victim(GcPolicyKind::Greedy, opts, &c), Some(0));
    }

    #[test]
    fn cost_benefit_prefers_old_blocks_over_slightly_emptier_hot_ones() {
        // Hot block: 10 valid, age 1 → score 2·10/(54·1).
        // Cold block: 16 valid, age 100 → 2·16/(48·100) — much smaller.
        let c = [cand(0, 10, 64, 1, 0), cand(1, 16, 64, 100, 0)];
        let opts = SelectOpts::standard(false);
        assert_eq!(select_victim(GcPolicyKind::CostBenefit, opts, &c), Some(1));
        // Greedy would take the hot one.
        assert_eq!(select_victim(GcPolicyKind::Greedy, opts, &c), Some(0));
    }

    #[test]
    fn cost_benefit_never_picks_fully_valid_when_alternative_exists() {
        let c = [cand(0, 64, 64, 1000, 0), cand(1, 63, 64, 1, 0)];
        let opts = SelectOpts::standard(false);
        assert_eq!(select_victim(GcPolicyKind::CostBenefit, opts, &c), Some(1));
    }

    #[test]
    fn windowed_greedy_restricts_to_oldest_window() {
        // 20 candidates: ages 20..1 descending by index; the emptiest
        // block (valid=0) is the youngest and sits outside the 16-oldest
        // window, so it must NOT be picked.
        let mut c: Vec<VictimCandidate> = (0..20u32)
            .map(|i| cand(i, 10 + i, 64, 20 - u64::from(i), 0))
            .collect();
        c[19].valid = 0; // youngest (age 1) — outside the window
        let opts = SelectOpts::standard(false);
        let picked = select_victim(GcPolicyKind::WindowedGreedy, opts, &c).unwrap();
        assert_eq!(
            picked, 0,
            "greedy-in-window picks the emptiest of the 16 oldest"
        );
        // Plain greedy would have taken index 19.
        assert_eq!(select_victim(GcPolicyKind::Greedy, opts, &c), Some(19));
    }

    #[test]
    fn windowed_equals_greedy_when_pool_fits_in_window() {
        for n in 1..=WINDOW as u32 {
            let c: Vec<VictimCandidate> = (0..n)
                .map(|i| cand(i, (i * 7) % 30, 64, u64::from(i), 0))
                .collect();
            let opts = SelectOpts::standard(false);
            assert_eq!(
                select_victim(GcPolicyKind::WindowedGreedy, opts, &c),
                select_victim(GcPolicyKind::Greedy, opts, &c),
            );
        }
    }

    #[test]
    fn windowed_greedy_widens_past_a_fully_valid_window() {
        // The 16 oldest blocks are all fully valid; a younger block has
        // garbage. Windowed-greedy must widen to it instead of reporting
        // an unreclaimable pool.
        let mut c: Vec<VictimCandidate> = (0..17u32)
            .map(|i| cand(i, 64, 64, 100 - u64::from(i), 0))
            .collect();
        c[16].valid = 3;
        let opts = SelectOpts::standard(false);
        assert_eq!(
            select_victim(GcPolicyKind::WindowedGreedy, opts, &c),
            Some(16)
        );
    }

    #[test]
    fn empty_pool_yields_none() {
        for kind in GcPolicyKind::ALL {
            assert_eq!(select_victim(kind, SelectOpts::standard(true), &[]), None);
        }
    }

    #[test]
    fn kind_round_trips_through_display_and_fromstr() {
        for kind in GcPolicyKind::ALL {
            assert_eq!(kind.name().parse::<GcPolicyKind>().unwrap(), kind);
        }
        assert!("bogus".parse::<GcPolicyKind>().is_err());
    }
}

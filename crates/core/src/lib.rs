//! # esp-core — subFTL and the baseline FTLs
//!
//! The primary contribution of Kim et al., *"Improving Performance and
//! Lifetime of Large-Page NAND Storages Using Erase-Free Subpage
//! Programming"* (DAC 2017), plus both baselines it is evaluated against:
//!
//! * [`SubFtl`] — the ESP-aware hybrid FTL: a fine-grained **subpage
//!   region** written with erase-free subpage programs (lap-based write
//!   policy, hot/cold GC, 15-day retention scrubbing) over a coarse-grained
//!   **full-page region**.
//! * [`CgmFtl`] — coarse-grained (16 KB page) mapping; small writes cost
//!   read-modify-writes.
//! * [`FgmFtl`] — fine-grained (4 KB) mapping with a merging write buffer;
//!   synchronous small writes fragment pages.
//! * [`SectorLogFtl`] — the sector-log hybrid of Jin et al. (the paper's
//!   closest related work, §6): same region split as subFTL but without
//!   ESP.
//!
//! Beyond the paper's text, every FTL supports host [`Ftl::trim`] and
//! power-loss recovery (`recover` constructors rebuild all mapping state
//! from the flash spare areas, charging a mount-time scan), and reports its
//! exact mapping-table memory ([`Ftl::mapping_memory_bytes`]).
//!
//! All three implement the [`Ftl`] trait and replay workloads through
//! [`run_trace`], producing the IOPS / GC-invocation / WAF numbers the
//! paper's figures report.
//!
//! # Examples
//!
//! ```
//! use esp_core::{run_trace, Ftl, FtlConfig, SubFtl};
//! use esp_workload::{generate, SyntheticConfig};
//!
//! let mut ftl = SubFtl::new(&FtlConfig::tiny());
//! let trace = generate(&SyntheticConfig {
//!     footprint_sectors: ftl.logical_sectors() / 2,
//!     requests: 200,
//!     r_small: 1.0,
//!     r_synch: 1.0,
//!     ..SyntheticConfig::default()
//! });
//! let report = run_trace(&mut ftl, &trace);
//! // Small writes were served with erase-free subpage programs, and every
//! // read returned the data that was written.
//! assert!(report.programs.1 > 0); // (full-page, subpage) program counts
//! assert_eq!(report.stats.read_faults, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod cgm;
mod config;
mod crash_harness;
mod eol;
mod fgm;
mod full_region;
mod gc_policy;
mod map_cache;
mod read_path;
mod recovery;
mod report;
mod runner;
mod sector_log;
mod stats;
mod sub;
mod sub_map;
mod tenant;

pub use buffer::{FlushChunk, WriteBuffer};
pub use cgm::CgmFtl;
pub use config::{EvictionPolicy, FtlConfig};
pub use crash_harness::{
    random_workload, CrashCase, CrashHarness, CrashOp, CrashTarget, SweepReport,
};
pub use eol::SpaceExhausted;
pub use fgm::FgmFtl;
pub use full_region::{FullRegionEngine, PagePtr};
pub use gc_policy::{
    select_victim, GcPolicyKind, SelectOpts, VictimCandidate, VICTIM_WEAR_SLACK_SHIFT,
};
pub use map_cache::{MapCache, MapCacheConfig, MapCacheStats, ENTRIES_PER_TP};
pub use report::{
    latency_json, run_json, tenant_json, tenants_json, validate_bench, BenchReport,
    BENCH_SCHEMA_NAME, BENCH_SCHEMA_VERSION, REQUIRED_RUN_FIELDS,
};
pub use runner::{device_wear_summary, precondition, run_trace, run_trace_qd, Ftl};
pub use sector_log::SectorLogFtl;
pub use stats::{FtlStats, RunReport, WearSummary};
pub use sub::SubFtl;
pub use sub_map::{ProbeStats, SubEntry, SubpageMap};
pub use tenant::{
    run_tenants_qd, TenantConfig, TenantReport, TenantRunReport, TenantSet, DRR_QUANTUM_SECTORS,
};

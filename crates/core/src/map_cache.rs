//! DFTL-style demand-cached mapping for the page-mapped FTLs.
//!
//! The baseline FTLs keep their entire L2P map resident in host DRAM —
//! 4 B per mapped unit, which is linear in device capacity and caps
//! simulated geometries well below production scale. Following DFTL
//! (Gupta et al., ASPLOS 2009), this module models the standard escape:
//!
//! * the full map lives in flash as **translation pages** (TPs), each
//!   packing [`ENTRIES_PER_TP`] 4-byte entries;
//! * a bounded **cached mapping table** (CMT) holds the most recently
//!   used TPs in DRAM under LRU;
//! * a tiny **global translation directory** (GTD) — 8 B per TP —
//!   locates every TP in flash and is the only structure whose size
//!   still scales with capacity.
//!
//! A host access whose TP is not cached charges one TP flash read; an
//! eviction of a dirtied TP charges one TP program; TPs live in their
//! own small flash area with greedy garbage collection whose relocation
//! and erase traffic is charged too. All charges are serialized into the
//! host path: [`MapCache::access`] returns the adjusted issue time for
//! the host operation, so mapping pressure is visible in latency and
//! throughput exactly where DFTL pays it.
//!
//! **Durability.** The simulator's in-memory L2P array remains the
//! authoritative state for data placement, and mount-time recovery
//! rebuilds it from the per-page OOB spare areas (the same full-device
//! scan every FTL already charges). The TP area is therefore a *timing
//! and footprint* model: a crash mid-TP-program can never lose a
//! committed mapping, because recovery never reads TPs — it re-derives
//! them. The GTD is rebuilt cold at mount and the CMT starts empty
//! (misses after mount charge their TP reads as warm-up traffic).
//!
//! The cache is only consulted for host-issued reads and writes. GC
//! relocations update mappings without a cache charge — production DFTL
//! batches those updates into the victim's TPs; modeling that would only
//! shift cost between GC and host paths, and is called out in DESIGN.md
//! §15 as a known simplification.

use std::collections::HashMap;

use esp_sim::{SimDuration, SimTime};

/// Mapping entries per translation page: 16 KB page / 4 B entry.
pub const ENTRIES_PER_TP: u64 = 4096;

/// Configuration for the demand-cached mapping tier
/// (`FtlConfig::map_cache`, espsim `--map-cache <pages>`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapCacheConfig {
    /// CMT capacity in cached translation pages (each caches
    /// [`ENTRIES_PER_TP`] mapping entries ≈ 16 KB of map). Must be ≥ 2.
    pub cmt_pages: usize,
}

impl Default for MapCacheConfig {
    fn default() -> Self {
        // 64 TPs ≈ 1 MiB of cached map — covers 4 GiB of mapped space.
        MapCacheConfig { cmt_pages: 64 }
    }
}

/// Counters for the cached-mapping tier, surfaced as `map_cache.*`
/// extras in BENCH reports and in the espsim run summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MapCacheStats {
    /// Host accesses whose translation page was cached.
    pub hits: u64,
    /// Host accesses that had to fault their translation page in.
    pub misses: u64,
    /// CMT evictions (clean or dirty).
    pub evictions: u64,
    /// Evictions that had to program the TP back to flash first.
    pub dirty_evictions: u64,
    /// Translation-page flash reads charged (miss fills + GC relocation).
    pub tp_reads: u64,
    /// Translation-page flash programs charged (dirty evictions + GC
    /// relocation).
    pub tp_programs: u64,
    /// Erases of translation-area blocks.
    pub tp_erases: u64,
    /// Garbage collections run inside the translation area.
    pub tp_gc_collections: u64,
    /// Total simulated time charged to the host path, in nanoseconds.
    pub charged_ns: u64,
}

impl MapCacheStats {
    /// Fraction of accesses served from the CMT (1.0 when idle).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    tvpn: u32,
    dirty: bool,
    last_use: u64,
}

/// The demand-cached mapping tier: CMT + GTD + a modeled
/// translation-page flash area with its own greedy GC.
#[derive(Debug, Clone)]
pub struct MapCache {
    cmt_pages: usize,
    slots: Vec<Slot>,
    index: HashMap<u32, usize>,
    tick: u64,
    /// GTD: translation virtual page → flash page in the TP area.
    tp_loc: Vec<Option<u32>>,
    /// TP-area flash page → owning TP (None = free or stale).
    page_owner: Vec<Option<u32>>,
    free_blocks: Vec<u32>,
    active_block: u32,
    next_page: u32,
    pages_per_block: u32,
    read_cost: SimDuration,
    program_cost: SimDuration,
    erase_cost: SimDuration,
    stats: MapCacheStats,
}

impl MapCache {
    /// Builds a cache covering `total_entries` mapping entries.
    ///
    /// `pages_per_block` shapes the modeled TP flash area (sized at 2×
    /// the live TP count plus two blocks, so TP-GC always has a victim
    /// with reclaimable space). The three costs are the device's
    /// full-page read/program/erase totals, captured once at build.
    #[must_use]
    pub fn new(
        config: &MapCacheConfig,
        total_entries: u64,
        pages_per_block: u32,
        read_cost: SimDuration,
        program_cost: SimDuration,
        erase_cost: SimDuration,
    ) -> Self {
        let total_tps = total_entries.div_ceil(ENTRIES_PER_TP).max(1) as u32;
        let ppb = pages_per_block.max(2);
        let blocks = (2 * total_tps).div_ceil(ppb) + 2;
        // Pop order: block 1, 2, ... (block 0 starts active).
        let free_blocks: Vec<u32> = (1..blocks).rev().collect();
        MapCache {
            cmt_pages: config.cmt_pages.max(2),
            slots: Vec::new(),
            index: HashMap::new(),
            tick: 0,
            tp_loc: vec![None; total_tps as usize],
            page_owner: vec![None; (blocks * ppb) as usize],
            free_blocks,
            active_block: 0,
            next_page: 0,
            pages_per_block: ppb,
            read_cost,
            program_cost,
            erase_cost,
            stats: MapCacheStats::default(),
        }
    }

    /// Counters so far.
    #[must_use]
    pub fn stats(&self) -> MapCacheStats {
        self.stats
    }

    /// Host DRAM actually resident for mapping with the cache enabled:
    /// the CMT (entries) plus the GTD (8 B per TP). Compare with the
    /// full map's `4 × total_entries`.
    #[must_use]
    pub fn resident_bytes(&self) -> u64 {
        let cmt = self.cmt_pages as u64 * ENTRIES_PER_TP * 4;
        let gtd = self.tp_loc.len() as u64 * 8;
        cmt + gtd
    }

    /// Charges the mapping-tier cost of one host access to mapping
    /// `entry` (`write` dirties the TP) and returns the adjusted issue
    /// time for the host operation: `now` plus any TP read / dirty-evict
    /// program / TP-GC traffic this access triggered.
    pub fn access(&mut self, entry: u64, write: bool, now: SimTime) -> SimTime {
        let tvpn = (entry / ENTRIES_PER_TP) as u32;
        debug_assert!((tvpn as usize) < self.tp_loc.len());
        self.tick += 1;
        let tick = self.tick;
        let mut charge = SimDuration::ZERO;
        if let Some(&slot) = self.index.get(&tvpn) {
            self.stats.hits += 1;
            let s = &mut self.slots[slot];
            s.last_use = tick;
            s.dirty |= write;
        } else {
            self.stats.misses += 1;
            let slot = if self.slots.len() < self.cmt_pages {
                self.slots.push(Slot {
                    tvpn,
                    dirty: false,
                    last_use: 0,
                });
                self.slots.len() - 1
            } else {
                // Evict the LRU slot (lowest last_use; slot order breaks
                // ties deterministically).
                let victim = (0..self.slots.len())
                    .min_by_key(|&i| (self.slots[i].last_use, i))
                    .expect("cmt_pages >= 2");
                let evicted = self.slots[victim];
                self.index.remove(&evicted.tvpn);
                self.stats.evictions += 1;
                if evicted.dirty {
                    self.stats.dirty_evictions += 1;
                    self.program_tp(evicted.tvpn, &mut charge);
                }
                victim
            };
            // Fault the TP in: a flash read if it has ever been written;
            // first-touch TPs are born in cache for free.
            if self.tp_loc[tvpn as usize].is_some() {
                self.stats.tp_reads += 1;
                charge += self.read_cost;
            }
            self.slots[slot] = Slot {
                tvpn,
                dirty: write,
                last_use: tick,
            };
            self.index.insert(tvpn, slot);
        }
        self.stats.charged_ns += charge.as_nanos();
        now + charge
    }

    fn alloc_tp_page(&mut self, charge: &mut SimDuration) -> u32 {
        if self.next_page == self.pages_per_block {
            self.active_block = self
                .free_blocks
                .pop()
                .expect("TP area sizing keeps a free block available");
            self.next_page = 0;
            while self.free_blocks.is_empty() {
                self.collect_tp_block(charge);
            }
        }
        let page = self.active_block * self.pages_per_block + self.next_page;
        self.next_page += 1;
        page
    }

    fn program_tp(&mut self, tvpn: u32, charge: &mut SimDuration) {
        let page = self.alloc_tp_page(charge);
        if let Some(old) = self.tp_loc[tvpn as usize] {
            self.page_owner[old as usize] = None;
        }
        self.page_owner[page as usize] = Some(tvpn);
        self.tp_loc[tvpn as usize] = Some(page);
        self.stats.tp_programs += 1;
        *charge += self.program_cost;
    }

    fn collect_tp_block(&mut self, charge: &mut SimDuration) {
        let ppb = self.pages_per_block;
        let blocks = (self.page_owner.len() as u32) / ppb;
        // Greedy: fewest valid TPs wins, ties to the lowest block; skip
        // the active block and anything already free. The 2× + 2-block
        // sizing guarantees some closed block is below fully valid.
        let mut victim: Option<(u32, u32)> = None;
        for b in 0..blocks {
            if b == self.active_block || self.free_blocks.contains(&b) {
                continue;
            }
            let valid = (b * ppb..(b + 1) * ppb)
                .filter(|&p| self.page_owner[p as usize].is_some())
                .count() as u32;
            if valid < ppb && victim.is_none_or(|(v, _)| valid < v) {
                victim = Some((valid, b));
            }
        }
        let (_, block) = victim.expect("TP area always has a reclaimable block");
        for p in block * ppb..(block + 1) * ppb {
            if let Some(tvpn) = self.page_owner[p as usize] {
                self.stats.tp_reads += 1;
                *charge += self.read_cost;
                self.page_owner[p as usize] = None;
                // Relocation re-programs the TP at the active cursor.
                let page = self.alloc_tp_page(charge);
                self.page_owner[page as usize] = Some(tvpn);
                self.tp_loc[tvpn as usize] = Some(page);
                self.stats.tp_programs += 1;
                *charge += self.program_cost;
            }
        }
        self.stats.tp_erases += 1;
        self.stats.tp_gc_collections += 1;
        *charge += self.erase_cost;
        self.free_blocks.push(block);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(cmt_pages: usize, total_entries: u64) -> MapCache {
        MapCache::new(
            &MapCacheConfig { cmt_pages },
            total_entries,
            8,
            SimDuration::from_micros(100),
            SimDuration::from_micros(1600),
            SimDuration::from_micros(5000),
        )
    }

    #[test]
    fn repeated_access_to_one_tp_hits_after_first_touch() {
        let mut c = cache(4, 4 * ENTRIES_PER_TP);
        let t0 = SimTime::ZERO;
        // First touch: miss, but no flash read (TP never written).
        assert_eq!(c.access(0, false, t0), t0);
        for i in 1..100 {
            assert_eq!(c.access(i % ENTRIES_PER_TP, true, t0), t0);
        }
        let s = c.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 99);
        assert_eq!(s.tp_reads, 0);
        assert!(s.hit_rate() > 0.98);
    }

    #[test]
    fn dirty_eviction_charges_a_program_and_refill_charges_a_read() {
        let mut c = cache(2, 8 * ENTRIES_PER_TP);
        let t0 = SimTime::ZERO;
        // Dirty TPs 0 and 1 (first-touch, free), then touch TP 2: TP 0
        // is evicted dirty → one program charged.
        c.access(0, true, t0);
        c.access(ENTRIES_PER_TP, true, t0);
        let t = c.access(2 * ENTRIES_PER_TP, false, t0);
        assert_eq!(t, t0 + SimDuration::from_micros(1600));
        assert_eq!(c.stats().dirty_evictions, 1);
        assert_eq!(c.stats().tp_programs, 1);
        // Touching TP 0 again faults it back in: TP 1 evicted (dirty,
        // program) + TP 0 read.
        let t = c.access(0, false, t0);
        assert_eq!(
            t,
            t0 + SimDuration::from_micros(1600) + SimDuration::from_micros(100)
        );
        assert_eq!(c.stats().tp_reads, 1);
    }

    #[test]
    fn clean_eviction_is_free() {
        let mut c = cache(2, 8 * ENTRIES_PER_TP);
        let t0 = SimTime::ZERO;
        c.access(0, false, t0);
        c.access(ENTRIES_PER_TP, false, t0);
        let t = c.access(2 * ENTRIES_PER_TP, false, t0);
        assert_eq!(t, t0);
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().dirty_evictions, 0);
    }

    #[test]
    fn tp_area_gc_reclaims_and_never_wedges() {
        // 2 TPs, ppb 8 → tiny area; thrash dirty evictions until many
        // TP programs force TP-GC erases.
        let mut c = cache(2, 3 * ENTRIES_PER_TP);
        let t0 = SimTime::ZERO;
        for round in 0..500u64 {
            let tp = round % 3;
            c.access(tp * ENTRIES_PER_TP, true, t0);
        }
        let s = c.stats();
        assert!(s.tp_erases > 0, "TP area must have cycled: {s:?}");
        assert!(s.tp_gc_collections > 0);
        // Every live TP is still locatable.
        assert!(c.tp_loc.iter().filter(|l| l.is_some()).count() <= 3);
    }

    #[test]
    fn resident_bytes_is_bounded_by_cmt_plus_gtd() {
        let entries = 1 << 30; // a 4 TiB-of-sectors map
        let c = cache(64, entries);
        let full_map = entries * 4;
        assert!(c.resident_bytes() < full_map / 100);
        assert_eq!(
            c.resident_bytes(),
            64 * ENTRIES_PER_TP * 4 + entries.div_ceil(ENTRIES_PER_TP) * 8
        );
    }

    #[test]
    fn charges_accumulate_in_stats() {
        let mut c = cache(2, 8 * ENTRIES_PER_TP);
        let t0 = SimTime::from_micros(50);
        c.access(0, true, t0);
        c.access(ENTRIES_PER_TP, true, t0);
        let t = c.access(2 * ENTRIES_PER_TP, true, t0);
        assert_eq!(
            (t - t0).as_nanos(),
            c.stats().charged_ns,
            "all charge flows through charged_ns"
        );
    }
}

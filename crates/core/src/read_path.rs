//! Shared host-read helpers.
//!
//! Reads are not the paper's focus ("there are no significant differences
//! from conventional FTLs in handling reads", §4), but they must be correct
//! and they must cost simulated time, since the evaluation benchmarks mix
//! reads in. The helpers here serve reads from (in priority order) the DRAM
//! write buffer, then the flash mapping supplied by the caller.

use esp_nand::{Oob, ReadEffort, ReadFault, RetentionModel, RetryLadder};
use esp_sim::SimTime;
use esp_ssd::Ssd;
use esp_workload::SECTORS_PER_PAGE;

use crate::buffer::WriteBuffer;
use crate::config::FtlConfig;
use crate::full_region::FullRegionEngine;
use crate::stats::FtlStats;

/// Classifies a read result: benign misses (never-written data) are fine;
/// destroyed/aged/injected data is a fault the FTL must never expose.
/// Returns `true` when the result was a data fault (per-cause counters are
/// bumped alongside the `read_faults` total).
pub(crate) fn note_read_result(
    result: &Result<esp_nand::Oob, ReadFault>,
    expect_lsn: u64,
    stats: &mut FtlStats,
) -> bool {
    match result {
        Ok(oob) => {
            debug_assert_eq!(oob.lsn, expect_lsn, "mapping returned wrong sector");
            false
        }
        Err(ReadFault::NotWritten) | Err(ReadFault::Padding) => false,
        // Power is off: the read never ran, and a remount will re-serve it
        // from durable state. Not a data fault of the FTL.
        Err(ReadFault::PowerLoss) => false,
        // Whole-device failure: not a data fault of *this* FTL — the array
        // layer above reconstructs the data from the surviving shards.
        Err(ReadFault::DeviceDead) => false,
        Err(cause) => {
            stats.read_faults += 1;
            match cause {
                ReadFault::DestroyedByProgram => stats.read_faults_destroyed += 1,
                ReadFault::RetentionExceeded => stats.read_faults_retention += 1,
                ReadFault::Torn => stats.read_faults_torn += 1,
                ReadFault::Injected => stats.read_faults_injected += 1,
                ReadFault::NotWritten
                | ReadFault::Padding
                | ReadFault::PowerLoss
                | ReadFault::DeviceDead => {
                    unreachable!("benign causes handled above")
                }
            }
            true
        }
    }
}

/// Sense count at which the read-disturb patrol relocates a block: the
/// number of reads whose accumulated disturb term eats half the base ECC
/// budget plus the hard rungs of the ladder — comfortably before stored
/// data (which also carries retention/wear BER) can climb past the final
/// soft-decode rung. `None` when read-disturb modeling is off.
pub(crate) fn disturb_scrub_limit(
    model: &RetentionModel,
    ladder: Option<&RetryLadder>,
) -> Option<u64> {
    let per_read = model.read_disturb_per_read();
    if per_read <= 0.0 {
        return None;
    }
    let uplift = ladder.map_or(0.0, |l| l.step_uplift * f64::from(l.hard_steps));
    let headroom = model.ecc_limit() * (0.5 + uplift);
    Some(((headroom / per_read) as u64).max(1))
}

/// Shared read-reliability policy state: when to reclaim a page after a
/// charged read, when the disturb patrol is due, and the read-only latch
/// for graceful degradation after data loss. Each FTL embeds one; the
/// mechanics of relocation stay FTL-specific.
#[derive(Debug, Clone)]
pub(crate) struct ReadReliability {
    /// A read needing at least this many hard rungs (or soft decode)
    /// triggers read-reclaim of the data it touched. `None` disables
    /// reclaim and the patrol.
    reclaim_threshold: Option<u32>,
    /// Relocate blocks whose sense count since erase reaches this.
    scrub_limit: Option<u64>,
    /// Device reads between patrol sweeps.
    patrol_interval: u64,
    /// Device-read count at which the next sweep runs.
    next_patrol: u64,
    /// Latch into read-only after an uncorrectable host read.
    read_only_on_loss: bool,
    /// Latched state.
    read_only: bool,
    /// Terminal end-of-life latch: unlike `read_only`, it is unconditional
    /// (no config gate) — once the flash pool is exhausted there is nowhere
    /// left to put a write, whatever the policy.
    end_of_life: bool,
}

impl ReadReliability {
    pub(crate) fn new(config: &FtlConfig) -> Self {
        let scrub_limit = if config.reclaim_threshold.is_some() {
            disturb_scrub_limit(&config.retention, config.retry_ladder.as_ref())
        } else {
            None
        };
        let patrol_interval = scrub_limit.map_or(u64::MAX, |l| (l / 4).max(1));
        ReadReliability {
            reclaim_threshold: config.reclaim_threshold,
            scrub_limit,
            patrol_interval,
            next_patrol: patrol_interval,
            read_only_on_loss: config.read_only_on_loss,
            read_only: false,
            end_of_life: false,
        }
    }

    /// True if a read that needed `effort` should have its data relocated.
    pub(crate) fn wants_reclaim(&self, effort: ReadEffort) -> bool {
        match self.reclaim_threshold {
            Some(t) => effort.soft_decode || effort.retry_steps >= t,
            None => false,
        }
    }

    /// Sense count at which the patrol relocates a block, if patrolling.
    pub(crate) fn scrub_limit(&self) -> Option<u64> {
        self.scrub_limit
    }

    /// True when a patrol sweep is due. Gated on the device's cumulative
    /// read count, not simulated time: a hot-read workload advances the
    /// clock only ~100 µs per read, so a time-gated patrol would never run
    /// before blocks drift past the ladder.
    pub(crate) fn patrol_due(&mut self, device_reads: u64) -> bool {
        if self.scrub_limit.is_none() || device_reads < self.next_patrol {
            return false;
        }
        self.next_patrol = device_reads + self.patrol_interval;
        true
    }

    /// True once the FTL has latched read-only (state query for tests;
    /// production paths observe the latch through `refuse_write`).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn read_only(&self) -> bool {
        self.read_only
    }

    /// Records the outcome of a host read: `faults` uncorrectable sectors
    /// latch the read-only fallback (once) when it is configured.
    pub(crate) fn note_host_read(&mut self, faults: bool, stats: &mut FtlStats) {
        if faults && self.read_only_on_loss && !self.read_only {
            self.read_only = true;
            stats.read_only_trips += 1;
        }
    }

    /// Latches the terminal end-of-life state (once per mount): the flash
    /// pool is exhausted, so every subsequent host write is refused with a
    /// counted drop while reads keep being served. Unconditional — no
    /// config gate, because there is physically nowhere to put the data.
    pub(crate) fn latch_end_of_life(&mut self, stats: &mut FtlStats) {
        if !self.end_of_life {
            self.end_of_life = true;
            stats.end_of_life_trips += 1;
        }
    }

    /// True once the terminal end-of-life latch has tripped.
    pub(crate) fn end_of_life(&self) -> bool {
        self.end_of_life
    }

    /// Called at the top of every host write; returns `true` (and counts
    /// the drop) when the write must be refused because the FTL is latched
    /// read-only or end-of-life.
    pub(crate) fn refuse_write(&mut self, stats: &mut FtlStats) -> bool {
        if self.end_of_life {
            stats.writes_dropped_end_of_life += 1;
            return true;
        }
        if self.read_only {
            stats.writes_dropped_read_only += 1;
        }
        self.read_only
    }
}

/// Serves a host read over a coarse (page-granularity) map: buffer hits are
/// free; mapped sectors are fetched per physical page (one full-page read
/// when two or more sectors of the same page are needed, a subpage read
/// otherwise). Returns `(completion time, any uncorrectable sector)`.
///
/// LPNs whose read needed reclaim-worthy ladder effort are appended to
/// `reclaim` for the caller to relocate.
#[allow(clippy::too_many_arguments)]
pub(crate) fn read_sectors_coarse(
    lsn: u64,
    sectors: u32,
    issue: SimTime,
    ssd: &mut Ssd,
    engine: &FullRegionEngine,
    buffer: &WriteBuffer,
    stats: &mut FtlStats,
    reliability: &ReadReliability,
    reclaim: &mut Vec<u64>,
    slots_scratch: &mut Vec<Result<Oob, ReadFault>>,
) -> (SimTime, bool) {
    let page = u64::from(SECTORS_PER_PAGE);
    let (lo, hi) = (lsn, lsn + u64::from(sectors));
    let mut done = issue;
    let mut faulted = false;
    let first_lpn = lo / page;
    let last_lpn = (hi - 1) / page;
    for lpn in first_lpn..=last_lpn {
        let s_lo = lo.max(lpn * page);
        let s_hi = hi.min((lpn + 1) * page);
        // At most one page's worth of sectors: a stack buffer keeps this
        // per-page loop allocation-free.
        let mut needed = [0u64; SECTORS_PER_PAGE as usize];
        let mut n = 0usize;
        for s in s_lo..s_hi {
            if !buffer.contains(s) {
                needed[n] = s;
                n += 1;
            }
        }
        if n == 0 {
            continue;
        }
        let Some(ptr) = engine.lookup(lpn) else {
            continue; // never written: reads as zeros, no flash op
        };
        let addr = engine.page_addr(ptr, ssd);
        let effort = if n >= 2 {
            let (effort, t) = ssd.read_full_graded_into(addr, issue, slots_scratch);
            for &s in &needed[..n] {
                let slot = (s - lpn * page) as usize;
                faulted |= note_read_result(&slots_scratch[slot], s, stats);
            }
            done = done.max(t);
            effort
        } else {
            let s = needed[0];
            let slot = (s - lpn * page) as u8;
            let (r, effort, t) = ssd.read_subpage_graded(addr.subpage(slot), issue);
            faulted |= note_read_result(&r, s, stats);
            done = done.max(t);
            effort
        };
        if reliability.wants_reclaim(effort) {
            reclaim.push(lpn);
        }
    }
    (done, faulted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp_nand::Oob;

    #[test]
    fn benign_misses_are_not_faults() {
        let mut stats = FtlStats::new();
        note_read_result(&Err(ReadFault::NotWritten), 0, &mut stats);
        note_read_result(&Err(ReadFault::Padding), 0, &mut stats);
        note_read_result(&Err(ReadFault::PowerLoss), 0, &mut stats);
        note_read_result(&Err(ReadFault::DeviceDead), 0, &mut stats);
        assert_eq!(stats.read_faults, 0);
    }

    #[test]
    fn corruption_counts_as_fault_per_cause() {
        let mut stats = FtlStats::new();
        assert!(note_read_result(
            &Err(ReadFault::DestroyedByProgram),
            0,
            &mut stats
        ));
        assert!(note_read_result(
            &Err(ReadFault::RetentionExceeded),
            0,
            &mut stats
        ));
        assert!(note_read_result(&Err(ReadFault::Injected), 0, &mut stats));
        assert!(note_read_result(&Err(ReadFault::Torn), 0, &mut stats));
        assert_eq!(stats.read_faults, 4);
        assert_eq!(stats.read_faults_destroyed, 1);
        assert_eq!(stats.read_faults_retention, 1);
        assert_eq!(stats.read_faults_injected, 1);
        assert_eq!(stats.read_faults_torn, 1);
    }

    #[test]
    fn good_data_is_clean() {
        let mut stats = FtlStats::new();
        assert!(!note_read_result(
            &Ok(Oob { lsn: 7, seq: 1 }),
            7,
            &mut stats
        ));
        assert_eq!(stats.read_faults, 0);
    }

    #[test]
    fn scrub_limit_sits_below_the_failure_point() {
        let model = RetentionModel::paper_default().with_read_disturb(1e-3);
        // No ladder: scrub at half the base ECC budget (1200 reads), well
        // before a fresh block's data (base BER ~0.25) fails at ~2150.
        assert_eq!(disturb_scrub_limit(&model, None), Some(1200));
        // With the default ladder the soft rung doubles the budget; the
        // scrub point scales with the hard rungs and stays below it.
        let ladder = RetryLadder::paper_default();
        assert_eq!(disturb_scrub_limit(&model, Some(&ladder)), Some(2640));
        // Disturb modeling off: no patrol.
        assert_eq!(
            disturb_scrub_limit(&RetentionModel::paper_default(), Some(&ladder)),
            None
        );
    }

    #[test]
    fn reliability_policy_gates_reclaim_patrol_and_read_only() {
        let mut config = FtlConfig::tiny();
        config.retention = RetentionModel::paper_default().with_read_disturb(1e-3);
        config.retry_ladder = Some(RetryLadder::paper_default());
        config.reclaim_threshold = Some(2);
        config.read_only_on_loss = true;
        let mut rel = ReadReliability::new(&config);
        let mut stats = FtlStats::new();

        // Reclaim: at or past the threshold rung, or any soft decode.
        let cheap = ReadEffort {
            retry_steps: 1,
            soft_decode: false,
        };
        let costly = ReadEffort {
            retry_steps: 2,
            soft_decode: false,
        };
        let soft = ReadEffort {
            retry_steps: 0,
            soft_decode: true,
        };
        assert!(!rel.wants_reclaim(ReadEffort::NONE));
        assert!(!rel.wants_reclaim(cheap));
        assert!(rel.wants_reclaim(costly));
        assert!(rel.wants_reclaim(soft));

        // Patrol fires by device-read count, then re-arms.
        let interval = rel.scrub_limit().unwrap() / 4;
        assert!(!rel.patrol_due(interval - 1));
        assert!(rel.patrol_due(interval));
        assert!(!rel.patrol_due(interval + 1));
        assert!(rel.patrol_due(2 * interval + 1));

        // Read-only latches once on a host-read fault and refuses writes.
        rel.note_host_read(false, &mut stats);
        assert!(!rel.read_only());
        assert!(!rel.refuse_write(&mut stats));
        rel.note_host_read(true, &mut stats);
        rel.note_host_read(true, &mut stats);
        assert!(rel.read_only());
        assert_eq!(stats.read_only_trips, 1);
        assert!(rel.refuse_write(&mut stats));
        assert_eq!(stats.writes_dropped_read_only, 1);

        // Defaults-off config: nothing triggers.
        let mut off = ReadReliability::new(&FtlConfig::tiny());
        assert!(!off.wants_reclaim(soft));
        assert!(off.scrub_limit().is_none());
        assert!(!off.patrol_due(u64::MAX));
        off.note_host_read(true, &mut stats);
        assert!(!off.read_only());
    }

    #[test]
    fn end_of_life_latch_is_unconditional_and_counts_once() {
        // tiny() has read_only_on_loss off; end-of-life latches anyway.
        let mut rel = ReadReliability::new(&FtlConfig::tiny());
        let mut stats = FtlStats::new();
        assert!(!rel.end_of_life());
        rel.latch_end_of_life(&mut stats);
        rel.latch_end_of_life(&mut stats);
        assert!(rel.end_of_life());
        assert_eq!(stats.end_of_life_trips, 1, "latch counts once per mount");
        assert!(rel.refuse_write(&mut stats));
        assert!(rel.refuse_write(&mut stats));
        assert_eq!(stats.writes_dropped_end_of_life, 2);
        assert_eq!(stats.writes_dropped_read_only, 0);
    }
}

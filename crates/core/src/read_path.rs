//! Shared host-read helpers.
//!
//! Reads are not the paper's focus ("there are no significant differences
//! from conventional FTLs in handling reads", §4), but they must be correct
//! and they must cost simulated time, since the evaluation benchmarks mix
//! reads in. The helpers here serve reads from (in priority order) the DRAM
//! write buffer, then the flash mapping supplied by the caller.

use esp_nand::ReadFault;
use esp_sim::SimTime;
use esp_ssd::Ssd;
use esp_workload::SECTORS_PER_PAGE;

use crate::buffer::WriteBuffer;
use crate::full_region::FullRegionEngine;
use crate::stats::FtlStats;

/// Classifies a read result: benign misses (never-written data) are fine;
/// destroyed/aged/injected data is a fault the FTL must never expose.
pub(crate) fn note_read_result(
    result: &Result<esp_nand::Oob, ReadFault>,
    expect_lsn: u64,
    stats: &mut FtlStats,
) {
    match result {
        Ok(oob) => {
            debug_assert_eq!(oob.lsn, expect_lsn, "mapping returned wrong sector");
        }
        Err(ReadFault::NotWritten) | Err(ReadFault::Padding) => {}
        // Power is off: the read never ran, and a remount will re-serve it
        // from durable state. Not a data fault of the FTL.
        Err(ReadFault::PowerLoss) => {}
        Err(_) => stats.read_faults += 1,
    }
}

/// Serves a host read over a coarse (page-granularity) map: buffer hits are
/// free; mapped sectors are fetched per physical page (one full-page read
/// when two or more sectors of the same page are needed, a subpage read
/// otherwise). Returns the completion time.
pub(crate) fn read_sectors_coarse(
    lsn: u64,
    sectors: u32,
    issue: SimTime,
    ssd: &mut Ssd,
    engine: &FullRegionEngine,
    buffer: &WriteBuffer,
    stats: &mut FtlStats,
) -> SimTime {
    let page = u64::from(SECTORS_PER_PAGE);
    let (lo, hi) = (lsn, lsn + u64::from(sectors));
    let mut done = issue;
    let first_lpn = lo / page;
    let last_lpn = (hi - 1) / page;
    for lpn in first_lpn..=last_lpn {
        let s_lo = lo.max(lpn * page);
        let s_hi = hi.min((lpn + 1) * page);
        let needed: Vec<u64> = (s_lo..s_hi).filter(|s| !buffer.contains(*s)).collect();
        if needed.is_empty() {
            continue;
        }
        let Some(ptr) = engine.lookup(lpn) else {
            continue; // never written: reads as zeros, no flash op
        };
        let addr = engine.page_addr(ptr, ssd);
        if needed.len() >= 2 {
            let (slots, t) = ssd.read_full(addr, issue);
            for s in needed {
                let slot = (s - lpn * page) as usize;
                note_read_result(&slots[slot], s, stats);
            }
            done = done.max(t);
        } else {
            let s = needed[0];
            let slot = (s - lpn * page) as u8;
            let (r, t) = ssd.read_subpage(addr.subpage(slot), issue);
            note_read_result(&r, s, stats);
            done = done.max(t);
        }
    }
    done
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp_nand::Oob;

    #[test]
    fn benign_misses_are_not_faults() {
        let mut stats = FtlStats::new();
        note_read_result(&Err(ReadFault::NotWritten), 0, &mut stats);
        note_read_result(&Err(ReadFault::Padding), 0, &mut stats);
        note_read_result(&Err(ReadFault::PowerLoss), 0, &mut stats);
        assert_eq!(stats.read_faults, 0);
    }

    #[test]
    fn corruption_counts_as_fault() {
        let mut stats = FtlStats::new();
        note_read_result(&Err(ReadFault::DestroyedByProgram), 0, &mut stats);
        note_read_result(&Err(ReadFault::RetentionExceeded), 0, &mut stats);
        note_read_result(&Err(ReadFault::Injected), 0, &mut stats);
        note_read_result(&Err(ReadFault::Torn), 0, &mut stats);
        assert_eq!(stats.read_faults, 4);
    }

    #[test]
    fn good_data_is_clean() {
        let mut stats = FtlStats::new();
        note_read_result(&Ok(Oob { lsn: 7, seq: 1 }), 7, &mut stats);
        assert_eq!(stats.read_faults, 0);
    }
}

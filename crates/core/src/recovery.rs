//! Power-loss recovery: rebuilding FTL mapping state from flash contents.
//!
//! Real FTLs survive sudden power loss because everything needed to rebuild
//! the logical-to-physical map lives in the NAND itself: each subpage's
//! spare (OOB) area stores the logical sector number and a monotonically
//! increasing write sequence number ([`esp_nand::Oob`]), and the program
//! history of every page is visible in the cell array. This module provides
//! the mount-time *scan* shared by all three FTLs' `recover` constructors:
//! read every programmed page once (charged against the simulated clock —
//! mount time is real time), classify each block, and report every readable
//! data slot.
//!
//! Recovery semantics:
//!
//! * DRAM contents are gone: buffered (asynchronous) writes that were never
//!   flushed are lost, exactly as on real hardware. Synchronous writes were
//!   durable by definition.
//! * The newest readable copy of each sector wins (highest sequence
//!   number); on a tie between a subpage-region copy and a full-page-region
//!   copy the full-page copy wins, matching eviction/RMW semantics (those
//!   copies carry the sequence number of the data they moved).
//! * Block *roles* (subpage vs full-page region) are not stored anywhere —
//!   the paper decides a block's type "at the program time, not at the
//!   design time" (§4.2) — so the scan infers them from the program
//!   pattern: any page programmed more than once, or programmed with fewer
//!   than `N_sub` written slots, is an ESP page and marks its block as
//!   subpage-region.

use esp_nand::SubpageState;
use esp_sim::SimTime;
use esp_ssd::Ssd;

/// Role of a block as inferred from its program pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ScannedKind {
    /// Fully erased; can join either region's free pool.
    Erased,
    /// Written with whole-page programs only (full-page region).
    FullPage,
    /// Written with erase-free subpage programs (subpage region).
    Subpage,
}

/// One readable data slot found by the scan.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SlotScan {
    pub slot: u8,
    pub lsn: u64,
    pub seq: u64,
    /// When the physical copy was programmed (spare-area timestamp).
    pub written_at: SimTime,
}

/// Scan result for one physical page.
#[derive(Debug, Clone)]
pub(crate) struct PageScan {
    /// Program operations since the last erase.
    pub programs: u8,
    /// Readable data slots (padding, destroyed and aged-out slots excluded).
    pub live: Vec<SlotScan>,
}

/// Scan result for one block (indexed by device-global block order).
#[derive(Debug, Clone)]
pub(crate) struct BlockScan {
    pub kind: ScannedKind,
    pub pages: Vec<PageScan>,
}

impl BlockScan {
    /// Number of pages programmed at least once (blocks are written in page
    /// order, so this is the write pointer for full-page blocks).
    pub(crate) fn programmed_pages(&self) -> u32 {
        self.pages.iter().filter(|p| p.programs > 0).count() as u32
    }

    /// Reconstructs the lap state of a subpage-region block: the current
    /// lap `level` (programs of the last page) and the page `cursor`
    /// within it (pages written one extra time).
    pub(crate) fn lap_state(&self, n_sub: u32) -> (u8, u32) {
        let level = self.pages.last().map_or(0, |p| p.programs);
        let cursor = self
            .pages
            .iter()
            .filter(|p| u32::from(p.programs) == u32::from(level) + 1)
            .count() as u32;
        debug_assert!(u32::from(level) <= n_sub);
        (level, cursor)
    }
}

/// Full result of the mount-time scan: per-block classification plus the
/// torn-state accounting the crash model introduces.
#[derive(Debug, Clone)]
pub(crate) struct DeviceScan {
    /// Per-block scan results (indexed by device-global block order).
    pub blocks: Vec<BlockScan>,
    /// Pages found holding at least one torn (power-cut) slot. They were
    /// still read — an uncorrectable page costs the same sense + transfer
    /// as a good one — then quarantined: excluded from the live set, left
    /// for GC (torn program) or re-erased on the spot (torn erase).
    pub torn_pages: u64,
}

fn blank_pages(g: &esp_nand::Geometry) -> Vec<PageScan> {
    (0..g.pages_per_block)
        .map(|_| PageScan {
            programs: 0,
            live: Vec::new(),
        })
        .collect()
}

/// Reads every programmed page of the device once (mount-time scan; the
/// reads occupy channels and chips like any other I/O) and returns the
/// per-block classification and contents.
///
/// Torn state is quarantined rather than resurrected: a torn slot never
/// reads back data, a block whose erase was cut is re-erased here (the
/// scan's one repair action — the block is unusable until then), and both
/// are tallied in [`DeviceScan::torn_pages`].
pub(crate) fn scan_device(ssd: &mut Ssd) -> DeviceScan {
    let g = ssd.geometry().clone();
    let issue = ssd.makespan();
    let mut out = Vec::with_capacity(g.block_count() as usize);
    let mut torn_pages = 0u64;
    for gbi in 0..g.block_count() {
        let baddr = g.block_addr(gbi);
        if ssd.device().is_bad(baddr) {
            // Factory-marked or grown bad block: never read, holds no
            // recoverable data. Reported as erased; the callers' own
            // bad-block pass keeps it out of every region.
            out.push(BlockScan {
                kind: ScannedKind::Erased,
                pages: blank_pages(&g),
            });
            continue;
        }
        let block_torn = ssd.device().is_torn(baddr);
        let mut pages = Vec::with_capacity(g.pages_per_block as usize);
        let mut saw_esp = false;
        let mut saw_full = false;
        for p in 0..g.pages_per_block {
            let paddr = baddr.page(p);
            let programs = ssd.device().block(baddr).page(p).program_count();
            let mut live = Vec::new();
            if programs > 0 {
                // One page read recovers all slots' data + spare areas.
                // Charged even when every slot comes back uncorrectable:
                // the scan cannot know a page is torn without sensing it.
                let (results, _) = ssd.read_full(paddr, issue);
                let mut non_erased = 0u32;
                let mut has_torn = false;
                for (slot, r) in results.iter().enumerate() {
                    let addr = paddr.subpage(slot as u8);
                    let state = *ssd.device().subpage_state(addr);
                    if !matches!(state, SubpageState::Erased) {
                        non_erased += 1;
                    }
                    if matches!(state, SubpageState::Torn) {
                        has_torn = true;
                    }
                    if let Ok(oob) = r {
                        let written_at = match state {
                            SubpageState::Written(w) => w.programmed_at,
                            _ => unreachable!("readable slot must be written"),
                        };
                        live.push(SlotScan {
                            slot: slot as u8,
                            lsn: oob.lsn,
                            seq: oob.seq,
                            written_at,
                        });
                    }
                }
                if has_torn {
                    torn_pages += 1;
                }
                if programs >= 2 || non_erased < g.subpages_per_page {
                    saw_esp = true;
                } else {
                    saw_full = true;
                }
            }
            pages.push(PageScan { programs, live });
        }
        if block_torn {
            // The block's erase was cut mid-pulse: every page is
            // uncorrectable garbage and programs are rejected until a
            // completed re-erase. Finish the interrupted erase now; if it
            // status-fails the block becomes a grown bad block, and either
            // way the callers see a clean (empty) block.
            if let Err(f) = ssd.erase(baddr, issue) {
                debug_assert_eq!(f.error, esp_nand::NandError::EraseFailed);
            }
            out.push(BlockScan {
                kind: ScannedKind::Erased,
                pages: blank_pages(&g),
            });
            continue;
        }
        let kind = if saw_esp {
            ScannedKind::Subpage
        } else if saw_full {
            ScannedKind::FullPage
        } else {
            ScannedKind::Erased
        };
        out.push(BlockScan { kind, pages });
    }
    DeviceScan {
        blocks: out,
        torn_pages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp_nand::{Geometry, Oob};

    fn oob(lsn: u64, seq: u64) -> Oob {
        Oob { lsn, seq }
    }

    #[test]
    fn classifies_erased_full_and_subpage_blocks() {
        let mut ssd = Ssd::new(Geometry::tiny());
        let g = ssd.geometry().clone();
        // Block 0: full-page program (with padding — still full-kind).
        let p0 = g.block_addr(0).page(0);
        ssd.program_full(
            p0,
            &[Some(oob(0, 1)), Some(oob(1, 2)), None, None],
            SimTime::ZERO,
        )
        .unwrap();
        // Block 1: one subpage program.
        ssd.program_subpage(g.block_addr(1).page(0).subpage(0), oob(9, 3), SimTime::ZERO)
            .unwrap();
        let scans = scan_device(&mut ssd).blocks;
        assert_eq!(scans[0].kind, ScannedKind::FullPage);
        assert_eq!(scans[1].kind, ScannedKind::Subpage);
        assert_eq!(scans[2].kind, ScannedKind::Erased);
        assert_eq!(scans[0].programmed_pages(), 1);
        // Padding slots are not live; data slots are.
        assert_eq!(scans[0].pages[0].live.len(), 2);
        assert_eq!(scans[1].pages[0].live.len(), 1);
        assert_eq!(scans[1].pages[0].live[0].lsn, 9);
    }

    #[test]
    fn destroyed_slots_are_not_live() {
        let mut ssd = Ssd::new(Geometry::tiny());
        let page = ssd.geometry().block_addr(0).page(0);
        ssd.program_subpage(page.subpage(0), oob(1, 1), SimTime::ZERO)
            .unwrap();
        ssd.program_subpage(page.subpage(1), oob(2, 2), SimTime::ZERO)
            .unwrap();
        let scans = scan_device(&mut ssd).blocks;
        let live = &scans[0].pages[0].live;
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].lsn, 2);
        assert_eq!(scans[0].pages[0].programs, 2);
    }

    #[test]
    fn lap_state_reconstruction() {
        let mut ssd = Ssd::new(Geometry::tiny());
        let g = ssd.geometry().clone();
        let b = g.block_addr(0);
        // Lap 0 over all 4 pages, then lap 1 over the first 2 pages.
        for p in 0..4 {
            ssd.program_subpage(b.page(p).subpage(0), oob(u64::from(p), 1), SimTime::ZERO)
                .unwrap();
        }
        for p in 0..2 {
            ssd.program_subpage(
                b.page(p).subpage(1),
                oob(u64::from(10 + p), 2),
                SimTime::ZERO,
            )
            .unwrap();
        }
        let scans = scan_device(&mut ssd).blocks;
        let (level, cursor) = scans[0].lap_state(4);
        assert_eq!((level, cursor), (1, 2));
    }

    #[test]
    fn torn_pages_are_quarantined_counted_and_charged() {
        let mut ssd = Ssd::new(Geometry::tiny());
        let page = ssd.geometry().block_addr(0).page(0);
        ssd.program_subpage(page.subpage(0), oob(1, 1), SimTime::ZERO)
            .unwrap();
        // Tear the next lap: slot 1 torn, slot 0 destroyed.
        ssd.device_mut()
            .tear_program_subpage(page.subpage(1))
            .unwrap();
        let before = ssd.makespan();
        let scan = scan_device(&mut ssd);
        assert_eq!(scan.torn_pages, 1);
        assert!(
            scan.blocks[0].pages[0].live.is_empty(),
            "nothing resurrected"
        );
        assert_eq!(scan.blocks[0].kind, ScannedKind::Subpage);
        assert!(
            ssd.makespan() > before,
            "uncorrectable page still costs a read"
        );
    }

    #[test]
    fn torn_erase_block_is_reerased_and_reported_clean() {
        let mut ssd = Ssd::new(Geometry::tiny());
        let g = ssd.geometry().clone();
        let blk = g.block_addr(0);
        ssd.program_subpage(blk.page(0).subpage(0), oob(1, 1), SimTime::ZERO)
            .unwrap();
        ssd.device_mut().tear_erase(blk).unwrap();
        let pe_before = ssd.device().pe_cycles(blk);
        let scan = scan_device(&mut ssd);
        // Every page of the block was torn garbage; the scan finishes the
        // interrupted erase and reports the block clean.
        assert_eq!(scan.torn_pages, u64::from(g.pages_per_block));
        assert_eq!(scan.blocks[0].kind, ScannedKind::Erased);
        assert_eq!(scan.blocks[0].programmed_pages(), 0);
        assert!(!ssd.device().is_torn(blk));
        assert_eq!(ssd.device().pe_cycles(blk), pe_before + 1);
        // Idempotent: a second scan sees an ordinary erased block.
        let again = scan_device(&mut ssd);
        assert_eq!(again.torn_pages, 0);
        assert_eq!(again.blocks[0].kind, ScannedKind::Erased);
    }

    #[test]
    fn scan_charges_mount_time() {
        let mut ssd = Ssd::new(Geometry::tiny());
        let page = ssd.geometry().block_addr(0).page(0);
        ssd.program_subpage(page.subpage(0), oob(1, 1), SimTime::ZERO)
            .unwrap();
        let before = ssd.makespan();
        scan_device(&mut ssd);
        assert!(ssd.makespan() > before, "mount scan must cost time");
    }
}

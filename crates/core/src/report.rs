//! Machine-readable `BENCH_*.json` reports.
//!
//! Every espsim `--json` run and every `esp-bench` binary emits the same
//! schema-versioned document (see DESIGN.md §8 for the full field list):
//!
//! ```json
//! {
//!   "schema": "esp-bench",
//!   "schema_version": 1,
//!   "name": "fig2_small_writes",
//!   "meta": { "geometry": "8x4x16x64", "seed": 42 },
//!   "runs": [ { "label": "...", "ftl": "subFTL", "iops": ..., ... } ]
//! }
//! ```
//!
//! [`BenchReport`] assembles the document from [`RunReport`]s,
//! [`validate_bench`] checks a parsed document against the schema (the
//! `benchcmp` tool and the test suite both call it), and the schema is
//! versioned: additive changes keep the version, field removals or
//! renames bump it.

use std::io::Write as _;
use std::path::{Path, PathBuf};

use esp_sim::{Json, LatencySummary, TraceEvent};

use crate::stats::RunReport;
use crate::tenant::{TenantReport, TenantRunReport};

/// Version of the `BENCH_*.json` schema this library emits.
///
/// Policy: adding fields is backward-compatible and does **not** bump the
/// version; removing or renaming any field listed in
/// [`REQUIRED_RUN_FIELDS`] (or changing a unit) does.
///
/// History:
/// * **v3** — multi-tenant replays add an optional `tenants` array to a
///   run entry (per-tenant QoS settings, throughput, response
///   percentiles and SLO attainment; omitted for single-workload runs,
///   so v1/v2 documents still validate).
/// * **v2** — open-arrival replays add a `latency.response` block
///   (arrival → done response times; omitted for closed-loop runs, so
///   the member is optional and v1 documents still validate).
/// * **v1** — initial schema.
pub const BENCH_SCHEMA_VERSION: u64 = 3;

/// The `schema` discriminator string every report carries.
pub const BENCH_SCHEMA_NAME: &str = "esp-bench";

/// Dotted paths every run entry must contain for the document to
/// validate. `benchcmp` additionally diffs the numeric subset of these.
pub const REQUIRED_RUN_FIELDS: &[&str] = &[
    "label",
    "ftl",
    "requests",
    "makespan_ns",
    "iops",
    "write_bandwidth_mbps",
    "waf.small_request",
    "waf.total",
    "erases",
    "programs.full",
    "programs.subpage",
    "gc.invocations",
    "latency.all.count",
    "latency.all.p50_ns",
    "latency.all.p95_ns",
    "latency.all.p99_ns",
    "latency.all.p999_ns",
    "latency.read.p50_ns",
    "latency.write.p50_ns",
    "read_faults.total",
];

/// Renders a [`LatencySummary`] as the standard latency block
/// (`count`/`mean_ns`/`min_ns`/`max_ns`/`p50_ns`/`p95_ns`/`p99_ns`/
/// `p999_ns`).
#[must_use]
pub fn latency_json(s: &LatencySummary) -> Json {
    Json::obj([
        ("count", Json::from(s.count)),
        ("mean_ns", Json::from(s.mean)),
        ("min_ns", Json::from(s.min)),
        ("max_ns", Json::from(s.max)),
        ("p50_ns", Json::from(s.p50)),
        ("p95_ns", Json::from(s.p95)),
        ("p99_ns", Json::from(s.p99)),
        ("p999_ns", Json::from(s.p999)),
    ])
}

/// Renders one [`RunReport`] as a run entry of the BENCH schema.
#[must_use]
pub fn run_json(label: &str, r: &RunReport) -> Json {
    let s = &r.stats;
    // The `all` class is the HDR merge of the read and sync-write
    // histograms — the same samples the combined Log2 histogram holds, at
    // percentile-grade resolution.
    let all = {
        let mut h = r.read_latency.clone();
        h.merge(&r.write_latency);
        h.summary()
    };
    // `response` (arrival → done, host queueing included) appears only
    // for open-arrival replays; closed-loop runs record no response
    // samples and omit the member (schema v2).
    let mut latency = vec![
        ("all", latency_json(&all)),
        ("read", latency_json(&r.read_latency_summary())),
        ("write", latency_json(&r.write_latency_summary())),
    ];
    let response = r.response_latency.summary();
    if response.count > 0 {
        latency.push(("response", latency_json(&response)));
    }
    Json::obj([
        ("label", Json::from(label)),
        ("ftl", Json::from(r.ftl)),
        ("requests", Json::from(r.requests)),
        ("makespan_ns", Json::from(r.makespan.as_nanos())),
        ("iops", Json::from(r.iops)),
        ("write_bandwidth_mbps", Json::from(r.write_bandwidth_mbps())),
        ("latency", Json::obj(latency)),
        (
            "waf",
            Json::obj([
                ("small_request", Json::from(s.small_request_waf())),
                ("total", Json::from(s.total_waf())),
            ]),
        ),
        ("erases", Json::from(r.erases)),
        (
            "programs",
            Json::obj([
                ("full", Json::from(r.programs.0)),
                ("subpage", Json::from(r.programs.1)),
            ]),
        ),
        (
            "host",
            Json::obj([
                ("write_requests", Json::from(s.host_write_requests)),
                ("write_sectors", Json::from(s.host_write_sectors)),
                ("read_requests", Json::from(s.host_read_requests)),
                ("read_sectors", Json::from(s.host_read_sectors)),
                ("small_write_requests", Json::from(s.small_write_requests)),
            ]),
        ),
        (
            "gc",
            Json::obj([
                ("invocations", Json::from(s.gc_invocations)),
                ("subpage_region", Json::from(s.gc_subpage_region)),
                ("copied_sectors", Json::from(s.gc_copied_sectors)),
                ("flash_sectors", Json::from(s.gc_flash_sectors)),
                ("rmw_operations", Json::from(s.rmw_operations)),
            ]),
        ),
        (
            "sub_region",
            Json::obj([
                ("lap_migrations", Json::from(s.lap_migrations)),
                ("cold_evictions", Json::from(s.cold_evictions)),
                ("retention_evictions", Json::from(s.retention_evictions)),
                ("wear_swaps", Json::from(s.wear_swaps)),
            ]),
        ),
        (
            "wear",
            Json::obj([
                ("min_pe", Json::from(r.wear.min_pe)),
                ("max_pe", Json::from(r.wear.max_pe)),
                ("mean_pe", Json::from(r.wear.mean_pe)),
                ("delta_pe", Json::from(r.wear.delta_pe())),
                ("shallow_erases", Json::from(r.wear.shallow_erases)),
                ("level_migrations", Json::from(s.wear_level_migrations)),
            ]),
        ),
        (
            "end_of_life",
            Json::obj([
                ("op_shrinks", Json::from(s.op_shrinks)),
                ("trips", Json::from(s.end_of_life_trips)),
                ("writes_dropped", Json::from(s.writes_dropped_end_of_life)),
            ]),
        ),
        (
            "read_faults",
            Json::obj([
                ("total", Json::from(s.read_faults)),
                ("destroyed", Json::from(s.read_faults_destroyed)),
                ("retention", Json::from(s.read_faults_retention)),
                ("torn", Json::from(s.read_faults_torn)),
                ("injected", Json::from(s.read_faults_injected)),
            ]),
        ),
        (
            "reliability",
            Json::obj([
                ("recovered_reads", Json::from(r.recovered_reads)),
                ("retry_steps", Json::from(r.retry_steps)),
                ("soft_decodes", Json::from(r.soft_decodes)),
                ("read_reclaims", Json::from(s.read_reclaims)),
                ("disturb_scrubs", Json::from(s.disturb_scrubs)),
            ]),
        ),
        (
            "faults",
            Json::obj([
                ("program_failures", Json::from(s.program_failures)),
                ("erase_failures", Json::from(s.erase_failures)),
                ("write_retries", Json::from(s.write_retries)),
                ("blocks_retired", Json::from(s.blocks_retired)),
            ]),
        ),
    ])
}

/// Renders one [`TenantReport`] as a row of a run entry's `tenants`
/// array (schema v3).
///
/// Always-present members: `name`, `weight`, `rate`, `burst`,
/// `requests`, `sectors`, `iops`. A `response` latency block appears
/// when the tenant recorded response samples (open tenants only), and an
/// `slo` object (`target_ns`/`samples`/`good`/`attainment`) appears when
/// the tenant has an SLO configured.
#[must_use]
pub fn tenant_json(t: &TenantReport) -> Json {
    let mut members = vec![
        ("name".to_string(), Json::from(t.name.as_str())),
        ("weight".to_string(), Json::from(u64::from(t.weight))),
        ("rate".to_string(), Json::from(t.rate)),
        ("burst".to_string(), Json::from(u64::from(t.burst))),
        ("requests".to_string(), Json::from(t.requests)),
        ("sectors".to_string(), Json::from(t.sectors)),
        ("iops".to_string(), Json::from(t.iops)),
    ];
    let response = t.response.summary();
    if response.count > 0 {
        members.push(("response".to_string(), latency_json(&response)));
    }
    if let Some(target) = t.slo {
        let mut slo = vec![
            ("target_ns".to_string(), Json::from(target.as_nanos())),
            ("samples".to_string(), Json::from(t.slo_samples)),
            ("good".to_string(), Json::from(t.slo_good)),
        ];
        if let Some(attainment) = t.slo_attainment() {
            slo.push(("attainment".to_string(), Json::from(attainment)));
        }
        members.push(("slo".to_string(), Json::Obj(slo)));
    }
    Json::Obj(members)
}

/// Renders a slice of [`TenantReport`]s as the `tenants` array member of
/// a run entry.
#[must_use]
pub fn tenants_json(tenants: &[TenantReport]) -> Json {
    Json::Arr(tenants.iter().map(tenant_json).collect())
}

/// Builder for a `BENCH_<name>.json` document: free-form metadata plus a
/// list of run entries.
///
/// # Examples
///
/// ```
/// use esp_core::{run_trace, BenchReport, FtlConfig, SubFtl};
/// use esp_workload::{generate, SyntheticConfig};
///
/// let mut ftl = SubFtl::new(&FtlConfig::tiny());
/// let trace = generate(&SyntheticConfig {
///     footprint_sectors: 64,
///     requests: 50,
///     ..SyntheticConfig::default()
/// });
/// let run = run_trace(&mut ftl, &trace);
///
/// let mut bench = BenchReport::new("doc_example");
/// bench.meta("seed", 42u64.into());
/// bench.push_run("tiny", &run);
/// let json = bench.to_json();
/// esp_core::validate_bench(&json).unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct BenchReport {
    name: String,
    meta: Vec<(String, Json)>,
    runs: Vec<Json>,
}

impl BenchReport {
    /// Starts a report named `name` (the emitted file is
    /// `BENCH_<name>.json`).
    #[must_use]
    pub fn new(name: &str) -> Self {
        BenchReport {
            name: name.to_string(),
            meta: Vec::new(),
            runs: Vec::new(),
        }
    }

    /// Attaches one metadata member (geometry, seed, flags, …).
    pub fn meta(&mut self, key: &str, value: Json) {
        self.meta.push((key.to_string(), value));
    }

    /// Appends a run entry built from `report`.
    pub fn push_run(&mut self, label: &str, report: &RunReport) {
        self.runs.push(run_json(label, report));
    }

    /// Appends a run entry with extra members spliced onto the standard
    /// entry (e.g. `mapping_memory_bytes`, trace events).
    pub fn push_run_with(
        &mut self,
        label: &str,
        report: &RunReport,
        extra: impl IntoIterator<Item = (String, Json)>,
    ) {
        let mut entry = run_json(label, report);
        if let Json::Obj(members) = &mut entry {
            members.extend(extra);
        }
        self.runs.push(entry);
    }

    /// Appends a run entry built from a multi-tenant replay: the
    /// standard whole-device entry plus the schema-v3 `tenants` array.
    /// Extra members splice on exactly as in [`Self::push_run_with`].
    pub fn push_tenant_run(
        &mut self,
        label: &str,
        report: &TenantRunReport,
        extra: impl IntoIterator<Item = (String, Json)>,
    ) {
        self.push_run_with(
            label,
            &report.run,
            [("tenants".to_string(), tenants_json(&report.tenants))]
                .into_iter()
                .chain(extra),
        );
    }

    /// Appends trace events to the most recent run entry (the newest
    /// `events.len()` events the recorder retained, plus the eviction
    /// count).
    ///
    /// # Panics
    ///
    /// Panics if no run has been pushed yet.
    pub fn attach_events(&mut self, events: &[TraceEvent], dropped: u64) {
        let entry = self.runs.last_mut().expect("attach_events needs a run");
        if let Json::Obj(members) = entry {
            members.push(("events_dropped".to_string(), Json::from(dropped)));
            members.push((
                "events".to_string(),
                Json::Arr(events.iter().map(TraceEvent::to_json).collect()),
            ));
        }
    }

    /// Number of run entries pushed so far.
    #[must_use]
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Renders the complete document.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::from(BENCH_SCHEMA_NAME)),
            ("schema_version", Json::from(BENCH_SCHEMA_VERSION)),
            ("name", Json::from(self.name.as_str())),
            ("meta", Json::Obj(self.meta.clone())),
            ("runs", Json::Arr(self.runs.clone())),
        ])
    }

    /// Writes the document to `path` (pretty-printed, trailing newline).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().to_pretty().as_bytes())
    }

    /// Writes `BENCH_<name>.json` into `$BENCH_OUT_DIR` (or the current
    /// directory when unset) and returns the path written.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_default(&self) -> std::io::Result<PathBuf> {
        let dir = std::env::var_os("BENCH_OUT_DIR").map_or_else(PathBuf::new, PathBuf::from);
        let path = dir.join(format!("BENCH_{}.json", self.name));
        self.write_to(&path)?;
        Ok(path)
    }
}

/// Checks a parsed document against the BENCH schema: the `esp-bench`
/// discriminator, a supported `schema_version`, a `name`, a `meta`
/// object, and every [`REQUIRED_RUN_FIELDS`] path in every run entry.
///
/// # Errors
///
/// Returns a message naming the first violated requirement.
pub fn validate_bench(doc: &Json) -> Result<(), String> {
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing `schema` member")?;
    if schema != BENCH_SCHEMA_NAME {
        return Err(format!(
            "schema is `{schema}`, expected `{BENCH_SCHEMA_NAME}`"
        ));
    }
    let version = doc
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or("missing integer `schema_version`")?;
    if version > BENCH_SCHEMA_VERSION {
        return Err(format!(
            "schema_version {version} is newer than this build supports \
             (1..={BENCH_SCHEMA_VERSION}); the document was produced by a \
             newer esp-storage — upgrade this tool (rebuild from the commit \
             that wrote the document) or regenerate the document with this \
             version"
        ));
    }
    if version == 0 {
        return Err(format!(
            "schema_version 0 is invalid (this library understands 1..={BENCH_SCHEMA_VERSION})"
        ));
    }
    doc.get("name")
        .and_then(Json::as_str)
        .ok_or("missing string `name`")?;
    doc.get("meta")
        .and_then(Json::as_obj)
        .ok_or("missing object `meta`")?;
    let runs = doc
        .get("runs")
        .and_then(Json::as_arr)
        .ok_or("missing array `runs`")?;
    for (i, run) in runs.iter().enumerate() {
        // Reject duplicate member keys: `push_run_with` splices extras
        // with no collision check, so two producers writing the same
        // namespace (e.g. `array.*` and a future cache counter both
        // claiming `mapping_memory_bytes`) would otherwise shadow each
        // other silently — `benchcmp` and jq both read whichever copy
        // their parser keeps, hiding the regression the gate exists for.
        if let Some(members) = run.as_obj() {
            let mut keys: Vec<&str> = members.iter().map(|(k, _)| k.as_str()).collect();
            keys.sort_unstable();
            if let Some(w) = keys.windows(2).find(|w| w[0] == w[1]) {
                return Err(format!("runs[{i}] has duplicate member `{}`", w[0]));
            }
        }
        for field in REQUIRED_RUN_FIELDS {
            let v = run
                .path(field)
                .ok_or_else(|| format!("runs[{i}] missing `{field}`"))?;
            let ok = match *field {
                "label" | "ftl" => v.as_str().is_some(),
                _ => v.as_f64().is_some(),
            };
            if !ok {
                return Err(format!("runs[{i}].{field} has the wrong type"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_trace, Ftl};
    use crate::{FtlConfig, SubFtl};
    use esp_workload::{generate, SyntheticConfig};

    fn sample_report() -> BenchReport {
        let mut ftl = SubFtl::new(&FtlConfig::tiny());
        let trace = generate(&SyntheticConfig {
            footprint_sectors: ftl.logical_sectors() / 2,
            requests: 300,
            r_small: 1.0,
            r_synch: 1.0,
            read_fraction: 0.3,
            ..SyntheticConfig::default()
        });
        let run = run_trace(&mut ftl, &trace);
        let mut b = BenchReport::new("unit_test");
        b.meta("seed", 42u64.into());
        b.meta("geometry", "tiny".into());
        b.push_run("mixed", &run);
        b.push_run_with(
            "mixed+mem",
            &run,
            [(
                "mapping_memory_bytes".to_string(),
                Json::from(crate::Ftl::mapping_memory_bytes(&ftl)),
            )],
        );
        b
    }

    #[test]
    fn emitted_document_validates() {
        let j = sample_report().to_json();
        validate_bench(&j).unwrap();
    }

    #[test]
    fn document_roundtrips_through_text() {
        let j = sample_report().to_json();
        let text = j.to_pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, j, "parse(emit(doc)) must be identity");
        validate_bench(&back).unwrap();
    }

    #[test]
    fn latency_percentiles_are_present_and_ordered() {
        let j = sample_report().to_json();
        let run = &j.get("runs").unwrap().as_arr().unwrap()[0];
        for class in ["all", "read", "write"] {
            let p50 = run
                .path(&format!("latency.{class}.p50_ns"))
                .and_then(Json::as_u64)
                .unwrap();
            let p999 = run
                .path(&format!("latency.{class}.p999_ns"))
                .and_then(Json::as_u64)
                .unwrap();
            assert!(p50 <= p999, "{class}: p50 {p50} > p999 {p999}");
            assert!(p50 > 0, "{class}: sync workload must record latencies");
        }
    }

    #[test]
    fn validation_rejects_broken_documents() {
        let mut j = sample_report().to_json();
        validate_bench(&j).unwrap();
        // Wrong discriminator.
        if let Json::Obj(m) = &mut j {
            m[0].1 = Json::from("not-esp-bench");
        }
        assert!(validate_bench(&j).is_err());
        // Future schema version: rejected with an upgrade hint naming the
        // offending version and the supported range.
        let mut j = sample_report().to_json();
        if let Json::Obj(m) = &mut j {
            m[1].1 = Json::from(BENCH_SCHEMA_VERSION + 1);
        }
        let err = validate_bench(&j).unwrap_err();
        assert!(
            err.contains("newer") && err.contains("upgrade"),
            "future-version error should tell the user to upgrade: {err}"
        );
        assert!(
            err.contains(&format!("schema_version {}", BENCH_SCHEMA_VERSION + 1))
                && err.contains(&format!("1..={BENCH_SCHEMA_VERSION}")),
            "future-version error should name versions: {err}"
        );
        // Version 0 is below the supported range.
        let mut j = sample_report().to_json();
        if let Json::Obj(m) = &mut j {
            m[1].1 = Json::from(0u64);
        }
        assert!(validate_bench(&j).is_err());
        // A run stripped of a required field.
        let mut j = sample_report().to_json();
        if let Some(Json::Arr(runs)) = match &mut j {
            Json::Obj(m) => m.iter_mut().find(|(k, _)| k == "runs").map(|(_, v)| v),
            _ => None,
        } {
            if let Json::Obj(run) = &mut runs[0] {
                run.retain(|(k, _)| k != "iops");
            }
        }
        let err = validate_bench(&j).unwrap_err();
        assert!(err.contains("iops"), "error should name the field: {err}");
    }

    #[test]
    fn validation_rejects_colliding_extras() {
        let mut ftl = SubFtl::new(&FtlConfig::tiny());
        let trace = generate(&SyntheticConfig {
            footprint_sectors: 64,
            requests: 50,
            r_small: 1.0,
            r_synch: 1.0,
            ..SyntheticConfig::default()
        });
        let run = run_trace(&mut ftl, &trace);
        let mut b = BenchReport::new("dup_extras");
        // Two extras producers claim the same member name — as array and
        // map-cache reporting both could for `mapping_memory_bytes`.
        b.push_run_with(
            "collision",
            &run,
            [
                ("mapping_memory_bytes".to_string(), Json::from(1u64)),
                ("mapping_memory_bytes".to_string(), Json::from(2u64)),
            ],
        );
        let err = validate_bench(&b.to_json()).unwrap_err();
        assert!(
            err.contains("duplicate") && err.contains("mapping_memory_bytes"),
            "error should name the duplicated member: {err}"
        );
        // An extra colliding with a standard member is caught too.
        let mut b = BenchReport::new("dup_standard");
        b.push_run_with("collision", &run, [("iops".to_string(), Json::from(0u64))]);
        let err = validate_bench(&b.to_json()).unwrap_err();
        assert!(err.contains("duplicate") && err.contains("iops"), "{err}");
        // Distinct namespaces coexist fine.
        let mut b = BenchReport::new("ok_extras");
        b.push_run_with(
            "no_collision",
            &run,
            [
                ("array.mapping_memory_bytes".to_string(), Json::from(1u64)),
                ("map_cache.resident_bytes".to_string(), Json::from(2u64)),
            ],
        );
        validate_bench(&b.to_json()).unwrap();
    }

    #[test]
    fn attach_events_embeds_the_stream() {
        let mut b = BenchReport::new("ev");
        let mut ftl = SubFtl::new(&FtlConfig::tiny());
        let trace = generate(&SyntheticConfig {
            footprint_sectors: 64,
            requests: 20,
            ..SyntheticConfig::default()
        });
        let run = run_trace(&mut ftl, &trace);
        b.push_run("r", &run);
        let events = vec![TraceEvent::new(5, "host.write").field("lsn", 1)];
        b.attach_events(&events, 7);
        let j = b.to_json();
        validate_bench(&j).unwrap();
        let run = &j.get("runs").unwrap().as_arr().unwrap()[0];
        assert_eq!(run.get("events_dropped").and_then(Json::as_u64), Some(7));
        let ev = &run.get("events").unwrap().as_arr().unwrap()[0];
        assert_eq!(ev.get("kind").and_then(Json::as_str), Some("host.write"));
    }

    #[test]
    fn tenant_run_entry_validates_and_carries_qos_rows() {
        use crate::tenant::{run_tenants_qd, TenantConfig, TenantSet};
        use esp_sim::SimDuration;

        let mut ftl = SubFtl::new(&FtlConfig::tiny());
        let mut set = TenantSet::new();
        // Open tenant with an SLO: gets a `response` block and an `slo`
        // object. Closed unlimited tenant: neither.
        set.add(
            TenantConfig::new("open").slo(SimDuration::from_millis(50)),
            generate(&SyntheticConfig {
                footprint_sectors: 64,
                requests: 60,
                r_small: 1.0,
                r_synch: 1.0,
                inter_arrival: SimDuration::from_micros(200),
                ..SyntheticConfig::default()
            }),
        );
        set.add(
            TenantConfig::new("closed").weight(2),
            generate(&SyntheticConfig {
                footprint_sectors: 64,
                requests: 60,
                r_small: 1.0,
                r_synch: 1.0,
                seed: 7,
                ..SyntheticConfig::default()
            }),
        );
        let report = run_tenants_qd(&mut ftl, &set, 4);

        let mut b = BenchReport::new("tenant_unit");
        b.push_tenant_run(
            "two_tenants",
            &report,
            [("queue_depth".to_string(), Json::from(4u64))],
        );
        let j = b.to_json();
        validate_bench(&j).unwrap();

        let run = &j.get("runs").unwrap().as_arr().unwrap()[0];
        assert_eq!(run.get("queue_depth").and_then(Json::as_u64), Some(4));
        let tenants = run.get("tenants").unwrap().as_arr().unwrap();
        assert_eq!(tenants.len(), 2);
        let open = &tenants[0];
        assert_eq!(open.get("name").and_then(Json::as_str), Some("open"));
        assert_eq!(open.get("requests").and_then(Json::as_u64), Some(60));
        assert!(open.path("response.p99_ns").is_some());
        assert_eq!(
            open.path("slo.target_ns").and_then(Json::as_u64),
            Some(50_000_000)
        );
        let samples = open.path("slo.samples").and_then(Json::as_u64).unwrap();
        let good = open.path("slo.good").and_then(Json::as_u64).unwrap();
        assert!(samples > 0 && good <= samples);
        let attainment = open.path("slo.attainment").and_then(Json::as_f64).unwrap();
        assert!((0.0..=1.0).contains(&attainment));
        let closed = &tenants[1];
        assert_eq!(closed.get("weight").and_then(Json::as_u64), Some(2));
        assert!(closed.get("response").is_none(), "closed tenant: no block");
        assert!(closed.get("slo").is_none(), "no SLO configured: no block");
    }
}

//! The `Ftl` trait and the trace-replay engine.
//!
//! Replay semantics match the paper's host-level FTL measurements:
//!
//! * **synchronous writes** block the host — the next request issues only
//!   after the write (and any GC it triggered) completes;
//! * **asynchronous writes** land in the DRAM write buffer and return
//!   immediately; flash work happens on buffer-full flushes and pipelines
//!   across channels/chips;
//! * **reads** block the host until data is returned.
//!
//! IOPS is requests over the simulated makespan, so foreground GC, RMW
//! traffic and program-latency differences all show up exactly as they do
//! in the paper's figures.

use esp_sim::{SimDuration, SimTime};
use esp_ssd::Ssd;
use esp_workload::{IoOp, Trace};

use crate::stats::{FtlStats, RunReport};

/// A flash translation layer: the host-facing write/read/flush interface
/// plus statistics.
///
/// All three of the paper's FTLs (`cgmFTL`, `fgmFTL`, `subFTL`) implement
/// this trait; [`run_trace`] drives any of them over a workload.
pub trait Ftl {
    /// Short display name ("cgmFTL", "fgmFTL", "subFTL").
    fn name(&self) -> &'static str;

    /// Number of logical 4 KB sectors exported to the host.
    fn logical_sectors(&self) -> u64;

    /// Handles a host write of `sectors` sectors at `lsn`, issued at
    /// `issue`. Returns the completion time the host observes: for
    /// synchronous writes, when the data is durable; for asynchronous
    /// writes, effectively `issue`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if the request exceeds
    /// [`Ftl::logical_sectors`].
    fn write(&mut self, lsn: u64, sectors: u32, sync: bool, issue: SimTime) -> SimTime;

    /// Handles a host read, returning its completion time.
    fn read(&mut self, lsn: u64, sectors: u32, issue: SimTime) -> SimTime;

    /// Drains the write buffer to flash. Returns the completion time.
    fn flush(&mut self, issue: SimTime) -> SimTime;

    /// Periodic maintenance hook (subFTL's retention scrubbing). Called by
    /// the runner with the current host clock before each request.
    fn maintain(&mut self, _now: SimTime) {}

    /// Idle-window hook: the host is quiet from `from` until (at least)
    /// `until`. FTLs with background GC use the window to reclaim blocks
    /// off the critical path; the default does nothing. Implementations may
    /// slightly overrun `until` to finish the victim they started.
    fn idle(&mut self, _from: SimTime, _until: SimTime) {}

    /// Diagnostic hook: the write sequence number stored on flash for the
    /// newest durable copy of `lsn`, or `None` if the sector is unmapped or
    /// its newest copy still sits in the write buffer. Test harnesses use
    /// this to prove that reads can never observe stale or lost data: for a
    /// fixed `lsn` the stored sequence number must never decrease.
    fn stored_seq(&self, lsn: u64) -> Option<u64>;

    /// Host trim/discard: the sectors in `[lsn, lsn + sectors)` will never
    /// be read again. The FTL drops buffered copies and invalidates flash
    /// mappings where its granularity allows (coarse page maps can only
    /// drop fully-covered 16 KB pages), turning future GC copies into free
    /// reclamation. Costs no flash I/O.
    fn trim(&mut self, lsn: u64, sectors: u32);

    /// Bytes of RAM the FTL spends on logical-to-physical mapping state —
    /// the quantity §4.2 of the paper argues subFTL keeps small by mapping
    /// only the subpage region at fine grain (hash table) and the rest at
    /// page grain.
    fn mapping_memory_bytes(&self) -> u64;

    /// FTL counters.
    fn stats(&self) -> &FtlStats;

    /// The underlying timed SSD.
    fn ssd(&self) -> &Ssd;
}

impl FtlStats {
    /// Field-wise difference `self - earlier`; used to report per-run
    /// deltas when the same FTL instance replays several traces
    /// (preconditioning, then measurement).
    #[must_use]
    pub fn minus(&self, earlier: &FtlStats) -> FtlStats {
        FtlStats {
            host_write_requests: self.host_write_requests - earlier.host_write_requests,
            host_write_sectors: self.host_write_sectors - earlier.host_write_sectors,
            host_read_requests: self.host_read_requests - earlier.host_read_requests,
            host_read_sectors: self.host_read_sectors - earlier.host_read_sectors,
            small_write_requests: self.small_write_requests - earlier.small_write_requests,
            flash_sectors_consumed: self.flash_sectors_consumed - earlier.flash_sectors_consumed,
            gc_flash_sectors: self.gc_flash_sectors - earlier.gc_flash_sectors,
            gc_invocations: self.gc_invocations - earlier.gc_invocations,
            gc_subpage_region: self.gc_subpage_region - earlier.gc_subpage_region,
            gc_copied_sectors: self.gc_copied_sectors - earlier.gc_copied_sectors,
            rmw_operations: self.rmw_operations - earlier.rmw_operations,
            lap_migrations: self.lap_migrations - earlier.lap_migrations,
            cold_evictions: self.cold_evictions - earlier.cold_evictions,
            retention_evictions: self.retention_evictions - earlier.retention_evictions,
            wear_swaps: self.wear_swaps - earlier.wear_swaps,
            read_faults: self.read_faults - earlier.read_faults,
            small_waf_flash_sectors: self.small_waf_flash_sectors
                - earlier.small_waf_flash_sectors,
            small_waf_host_sectors: self.small_waf_host_sectors - earlier.small_waf_host_sectors,
        }
    }
}

/// Replays `trace` through `ftl` and reports per-run metrics (deltas
/// against the FTL's state at entry, so preconditioning runs do not
/// pollute measurement runs).
///
/// Single-threaded host semantics (`queue_depth = 1`); see
/// [`run_trace_qd`] for concurrent hosts. Trace arrival times are
/// interpreted relative to the FTL's current makespan, so back-to-back
/// runs compose naturally.
pub fn run_trace<F: Ftl + ?Sized>(ftl: &mut F, trace: &Trace) -> RunReport {
    run_trace_qd(ftl, trace, 1)
}

/// Replays `trace` through `ftl` with `queue_depth` concurrent host
/// threads (the paper's benchmarks — Sysbench, Varmail, YCSB, TPC-C — are
/// multithreaded, so synchronous writes from different threads overlap in
/// flight and the device becomes throughput-bound rather than
/// latency-bound).
///
/// Each request is issued by the earliest-available thread; a synchronous
/// write or a read blocks only its own thread.
///
/// # Panics
///
/// Panics if `queue_depth` is zero.
pub fn run_trace_qd<F: Ftl + ?Sized>(ftl: &mut F, trace: &Trace, queue_depth: usize) -> RunReport {
    assert!(queue_depth > 0, "queue_depth must be at least 1");
    let base = ftl.ssd().makespan();
    let stats0 = ftl.stats().clone();
    let dev0 = *ftl.ssd().device().stats();

    let mut threads = vec![base; queue_depth];
    let mut clock = base;
    let mut latency = esp_sim::Log2Histogram::new();
    for r in trace {
        let arrival = base + SimDuration::from_nanos(r.arrival.as_nanos());
        // The earliest-free thread picks the request up.
        let (t_idx, &t_free) = threads
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .expect("at least one thread");
        let issue = t_free.max(arrival);
        if arrival > t_free {
            // Every thread is quiet until `arrival`: a background window.
            let all_free = threads.iter().copied().max().expect("non-empty");
            if arrival > all_free {
                ftl.idle(all_free, arrival);
            }
        }
        ftl.maintain(issue);
        let done = match r.op {
            IoOp::Write => {
                let done = ftl.write(r.lsn, r.sectors, r.sync, issue);
                if r.sync {
                    latency.record(done.saturating_since(issue).as_nanos());
                    done
                } else {
                    issue
                }
            }
            IoOp::Read => {
                let done = ftl.read(r.lsn, r.sectors, issue);
                latency.record(done.saturating_since(issue).as_nanos());
                done
            }
        };
        threads[t_idx] = done;
        clock = clock.max(done);
    }
    let flushed = ftl.flush(clock);

    let end = ftl.ssd().makespan().max(flushed).max(clock);
    let makespan_ns = end.saturating_since(base);
    let makespan = SimTime::ZERO + makespan_ns;
    let secs = makespan_ns.as_secs_f64();
    let requests = trace.len() as u64;
    let iops = if secs > 0.0 {
        requests as f64 / secs
    } else {
        0.0
    };
    let dev = ftl.ssd().device().stats();
    RunReport {
        ftl: ftl.name(),
        requests,
        makespan,
        iops,
        stats: ftl.stats().minus(&stats0),
        erases: dev.erases - dev0.erases,
        programs: (
            dev.full_programs - dev0.full_programs,
            dev.subpage_programs - dev0.subpage_programs,
        ),
        latency,
    }
}

/// Preconditions `ftl` to the paper's steady state: sequentially fills
/// `fill_fraction` of the logical space (the paper fills 10 GB of its
/// 16 GB device, i.e. 0.625).
pub fn precondition<F: Ftl + ?Sized>(ftl: &mut F, fill_fraction: f64) -> RunReport {
    let fill = esp_workload::precondition_fill(ftl.logical_sectors(), fill_fraction);
    run_trace(ftl, &fill)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FtlConfig, SubFtl};
    use esp_workload::IoRequest;

    #[test]
    fn qd_one_serializes_sync_writes() {
        let mut ftl = SubFtl::new(&FtlConfig::tiny());
        let mut t = Trace::new(64);
        for i in 0..8u64 {
            t.push(IoRequest::write(SimTime::ZERO, i, 1, true));
        }
        let serial = run_trace(&mut ftl, &t);
        let mut ftl2 = SubFtl::new(&FtlConfig::tiny());
        let parallel = run_trace_qd(&mut ftl2, &t, 8);
        assert!(
            parallel.makespan < serial.makespan,
            "8 threads must beat 1 thread on independent sync writes"
        );
        assert_eq!(serial.requests, parallel.requests);
    }

    #[test]
    fn sync_latencies_are_recorded_async_are_not() {
        let mut ftl = SubFtl::new(&FtlConfig::tiny());
        let mut t = Trace::new(64);
        t.push(IoRequest::write(SimTime::ZERO, 0, 1, true));
        t.push(IoRequest::write(SimTime::ZERO, 1, 1, false));
        t.push(IoRequest::read(SimTime::ZERO, 0, 1));
        let r = run_trace(&mut ftl, &t);
        // 1 sync write + 1 read recorded; the async write is not.
        assert_eq!(r.latency.count(), 2);
        assert!(r.latency_p50() > SimDuration::ZERO);
    }

    #[test]
    fn arrival_times_gate_issue() {
        let mut ftl = SubFtl::new(&FtlConfig::tiny());
        let mut t = Trace::new(64);
        // One write arriving 5 seconds in: the makespan must include the
        // idle wait.
        t.push(IoRequest::write(SimTime::from_secs(5), 0, 1, true));
        let r = run_trace(&mut ftl, &t);
        assert!(r.makespan >= SimTime::from_secs(5));
    }

    #[test]
    fn back_to_back_runs_rebase_arrivals() {
        let mut ftl = SubFtl::new(&FtlConfig::tiny());
        let mut t = Trace::new(64);
        t.push(IoRequest::write(SimTime::ZERO, 0, 1, true));
        let first = run_trace(&mut ftl, &t);
        let second = run_trace(&mut ftl, &t);
        // Each run reports its own makespan, not cumulative time.
        assert!(second.makespan.as_nanos() < first.makespan.as_nanos() * 3);
        assert_eq!(second.requests, 1);
    }

    #[test]
    #[should_panic(expected = "queue_depth")]
    fn zero_queue_depth_rejected() {
        let mut ftl = SubFtl::new(&FtlConfig::tiny());
        let t = Trace::new(64);
        let _ = run_trace_qd(&mut ftl, &t, 0);
    }

    #[test]
    fn precondition_fills_requested_fraction() {
        let mut ftl = SubFtl::new(&FtlConfig::tiny());
        let r = precondition(&mut ftl, 0.5);
        let expected = ftl.logical_sectors() / 2;
        assert!(r.stats.host_write_sectors >= expected - 16);
        assert!(r.stats.host_write_sectors <= expected);
    }

    #[test]
    fn stats_minus_is_fieldwise() {
        let mut a = FtlStats::new();
        a.gc_invocations = 10;
        a.small_waf_flash_sectors = 8.0;
        a.small_waf_host_sectors = 4;
        let mut b = FtlStats::new();
        b.gc_invocations = 3;
        b.small_waf_flash_sectors = 2.0;
        b.small_waf_host_sectors = 1;
        let d = a.minus(&b);
        assert_eq!(d.gc_invocations, 7);
        assert_eq!(d.small_waf_host_sectors, 3);
        assert!((d.small_waf_flash_sectors - 6.0).abs() < 1e-12);
    }
}

//! The `Ftl` trait and the trace-replay engine.
//!
//! Replay semantics match the paper's host-level FTL measurements:
//!
//! * **synchronous writes** block the host — the next request issues only
//!   after the write (and any GC it triggered) completes;
//! * **asynchronous writes** land in the DRAM write buffer and return
//!   immediately; flash work happens on buffer-full flushes and pipelines
//!   across channels/chips;
//! * **reads** block the host until data is returned.
//!
//! IOPS is requests over the simulated makespan, so foreground GC, RMW
//! traffic and program-latency differences all show up exactly as they do
//! in the paper's figures.
//!
//! # Queue-depth scheduling
//!
//! [`run_trace_qd`] models an NCQ-style host: up to `queue_depth`
//! requests are in flight at once, tracked as a min-heap of in-flight
//! completion times. A request is admitted when the earliest in-flight
//! request completes (out-of-order completion falls out naturally — each
//! request's completion is independent), and its issue time is the
//! latest of
//!
//! 1. its **arrival** (the open arrival model: timestamps come from the
//!    trace — fixed-spaced, bursty, Poisson via
//!    `Trace::with_poisson_arrivals`, or trace-file supplied),
//! 2. the **slot grant** (the heap's popped minimum — queue-depth
//!    back-pressure), and
//! 3. its **data dependencies**: a read waits for the last overlapping
//!    write to complete (read-after-write), and a write waits for the
//!    last overlapping write *and* read (write-after-write,
//!    write-after-read). Overlapping reads run concurrently.
//!
//! Independent requests therefore pipeline across channels and chips
//! while same-LSN and RMW request chains still serialize correctly. At
//! `queue_depth = 1` the heap degenerates to the classic closed loop:
//! dependencies can never exceed the single slot's completion time, so
//! QD=1 replays are bit-for-bit identical to a strictly serial host (the
//! `qd1_matches_serial_reference` test locks this).
//!
//! # What the latency histograms measure
//!
//! The service histograms record **device service time** — issue to
//! completion, where issue already includes the slot grant and
//! dependency waits. Host queueing delay is *excluded* there: under
//! Poisson load with deep queues, tail response time can be much larger
//! than the recorded tail service time. For open-arrival traces (at
//! least one nonzero arrival stamp — Poisson, spaced, bursty, or
//! trace-file supplied) the runner *additionally* records an
//! arrival-to-completion **response** histogram over the same samples,
//! surfaced as `latency.response` in BENCH reports. Closed-loop traces
//! stamp every arrival at zero, so the response histogram is left empty
//! there (arrival-to-done would measure cumulative makespan, not
//! per-request latency). Use service histograms to compare device-side
//! behaviour (GC stalls, RMW, retry ladders) across FTLs and queue
//! depths; use the response histogram for end-to-end latency under an
//! offered load.

use std::collections::HashMap;

use esp_sim::{CalendarQueue, SimDuration, SimTime};
use esp_ssd::Ssd;
use esp_workload::{IoOp, Trace};

use crate::stats::{FtlStats, RunReport};

/// Footprints at or below this many sectors get flat `Vec<SimTime>`
/// hazard tables (direct indexing, zero hashing, zero steady-state
/// allocation); larger footprints fall back to pruned hash maps. 8 Mi
/// sectors = 32 GiB of logical space = two 64 MiB tables.
const FLAT_HAZARD_LIMIT: u64 = 1 << 23;

/// Sparse hazard maps are pruned when their combined population exceeds
/// this; the bound keeps long traces in `O(queue depth + working set)`
/// memory instead of retaining every sector ever touched.
const SPARSE_PRUNE_TRIGGER: usize = 8192;

/// How [`run_trace_qd`] tracks per-sector hazard completion times.
/// Production callers always use `Auto`; tests pin the representation to
/// prove the three are bit-identical.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum HazardMode {
    /// Flat tables when the trace footprint fits, pruned maps otherwise.
    Auto,
    /// Force flat `Vec<SimTime>` tables.
    #[cfg_attr(not(test), allow(dead_code))]
    Flat,
    /// Force hash maps with watermark pruning.
    #[cfg_attr(not(test), allow(dead_code))]
    Sparse,
    /// Force hash maps without pruning (the pre-fix behaviour: retains
    /// every sector ever touched — test oracle only).
    #[cfg_attr(not(test), allow(dead_code))]
    SparseUnpruned,
}

/// Per-sector completion times of the last write and last read, for
/// RAW / WAW / WAR serialization.
///
/// Entries are only written and point-queried (never iterated) in the
/// flat representation; the sparse maps are iterated *only* during
/// pruning, where the surviving set — not its discovery order — is all
/// that matters, so replay stays deterministic.
pub(crate) enum Hazards {
    Flat {
        write: Vec<SimTime>,
        read: Vec<SimTime>,
    },
    Sparse {
        write: HashMap<u64, SimTime>,
        read: HashMap<u64, SimTime>,
        prune: bool,
    },
}

impl Hazards {
    pub(crate) fn new(mode: HazardMode, footprint_sectors: u64) -> Self {
        let flat = match mode {
            HazardMode::Auto => footprint_sectors <= FLAT_HAZARD_LIMIT,
            HazardMode::Flat => true,
            HazardMode::Sparse | HazardMode::SparseUnpruned => false,
        };
        if flat {
            let n = footprint_sectors as usize;
            Hazards::Flat {
                write: vec![SimTime::ZERO; n],
                read: vec![SimTime::ZERO; n],
            }
        } else {
            Hazards::Sparse {
                write: HashMap::new(),
                read: HashMap::new(),
                prune: mode != HazardMode::SparseUnpruned,
            }
        }
    }

    /// Latest completion this request must wait for: the last write of
    /// any of its sectors, plus — for writes — the last read
    /// (write-after-read). Overlapping reads run concurrently.
    pub(crate) fn dep(&self, lsn: u64, sectors: u32, is_write: bool) -> SimTime {
        let range = lsn..lsn + u64::from(sectors);
        let mut dep = SimTime::ZERO;
        match self {
            Hazards::Flat { write, read } => {
                for s in range {
                    dep = dep.max(write[s as usize]);
                    if is_write {
                        dep = dep.max(read[s as usize]);
                    }
                }
            }
            Hazards::Sparse { write, read, .. } => {
                for s in range {
                    if let Some(&t) = write.get(&s) {
                        dep = dep.max(t);
                    }
                    if is_write {
                        if let Some(&t) = read.get(&s) {
                            dep = dep.max(t);
                        }
                    }
                }
            }
        }
        dep
    }

    /// Publishes a completed request's per-sector completion times. A
    /// write overwrites (its buffered copy is the newest data); reads
    /// accumulate the max, since concurrent reads complete in any order
    /// and a later write must wait for the slowest.
    pub(crate) fn publish(&mut self, lsn: u64, sectors: u32, is_write: bool, done: SimTime) {
        let range = lsn..lsn + u64::from(sectors);
        match self {
            Hazards::Flat { write, read } => {
                for s in range {
                    if is_write {
                        write[s as usize] = done;
                    } else {
                        let e = &mut read[s as usize];
                        *e = (*e).max(done);
                    }
                }
            }
            Hazards::Sparse { write, read, .. } => {
                for s in range {
                    if is_write {
                        write.insert(s, done);
                    } else {
                        let e = read.entry(s).or_insert(done);
                        *e = (*e).max(done);
                    }
                }
            }
        }
    }

    /// Drops sparse entries that can no longer affect any future issue
    /// time. Slot grants pop in non-decreasing order (each pop removes
    /// the minimum and pushes a completion no earlier than it), so every
    /// future request issues at or after `watermark` — the grant just
    /// popped. An entry with `t <= watermark` is dominated by the
    /// `max(slot grant, ...)` term forever and pruning it is exact; the
    /// bit-identity test `hazard_representations_are_bit_identical`
    /// locks this.
    pub(crate) fn maybe_prune(&mut self, watermark: SimTime) {
        if let Hazards::Sparse { write, read, prune } = self {
            if *prune && write.len() + read.len() > SPARSE_PRUNE_TRIGGER {
                write.retain(|_, &mut t| t > watermark);
                read.retain(|_, &mut t| t > watermark);
            }
        }
    }

    /// Live entry count (sparse) or table capacity (flat); test-only.
    #[cfg(test)]
    fn population(&self) -> usize {
        match self {
            Hazards::Flat { write, .. } => write.len(),
            Hazards::Sparse { write, read, .. } => write.len() + read.len(),
        }
    }
}

/// A flash translation layer: the host-facing write/read/flush interface
/// plus statistics.
///
/// All three of the paper's FTLs (`cgmFTL`, `fgmFTL`, `subFTL`) implement
/// this trait; [`run_trace`] drives any of them over a workload.
pub trait Ftl {
    /// Short display name ("cgmFTL", "fgmFTL", "subFTL").
    fn name(&self) -> &'static str;

    /// Number of logical 4 KB sectors exported to the host.
    fn logical_sectors(&self) -> u64;

    /// Handles a host write of `sectors` sectors at `lsn`, issued at
    /// `issue`. Returns the completion time the host observes: for
    /// synchronous writes, when the data is durable; for asynchronous
    /// writes, effectively `issue`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if the request exceeds
    /// [`Ftl::logical_sectors`].
    fn write(&mut self, lsn: u64, sectors: u32, sync: bool, issue: SimTime) -> SimTime;

    /// Handles a host read, returning its completion time.
    fn read(&mut self, lsn: u64, sectors: u32, issue: SimTime) -> SimTime;

    /// Drains the write buffer to flash. Returns the completion time.
    fn flush(&mut self, issue: SimTime) -> SimTime;

    /// Periodic maintenance hook (subFTL's retention scrubbing). Called by
    /// the runner with the current host clock before each request.
    fn maintain(&mut self, _now: SimTime) {}

    /// Idle-window hook: the host is quiet from `from` until (at least)
    /// `until`. FTLs with background GC use the window to reclaim blocks
    /// off the critical path; the default does nothing. Implementations may
    /// slightly overrun `until` to finish the victim they started.
    fn idle(&mut self, _from: SimTime, _until: SimTime) {}

    /// Diagnostic hook: the write sequence number stored on flash for the
    /// newest durable copy of `lsn`, or `None` if the sector is unmapped or
    /// its newest copy still sits in the write buffer. Test harnesses use
    /// this to prove that reads can never observe stale or lost data: for a
    /// fixed `lsn` the stored sequence number must never decrease.
    fn stored_seq(&self, lsn: u64) -> Option<u64>;

    /// Host trim/discard: the sectors in `[lsn, lsn + sectors)` will never
    /// be read again. The FTL drops buffered copies and invalidates flash
    /// mappings where its granularity allows (coarse page maps can only
    /// drop fully-covered 16 KB pages), turning future GC copies into free
    /// reclamation. Costs no flash I/O.
    fn trim(&mut self, lsn: u64, sectors: u32);

    /// Bytes of RAM the FTL spends on logical-to-physical mapping state —
    /// the quantity §4.2 of the paper argues subFTL keeps small by mapping
    /// only the subpage region at fine grain (hash table) and the rest at
    /// page grain.
    fn mapping_memory_bytes(&self) -> u64;

    /// Demand-cached mapping counters, when the FTL runs with
    /// [`crate::FtlConfig::map_cache`] enabled. `None` for FTLs without a
    /// cache (including FTLs that support one but run with it off).
    fn map_cache_stats(&self) -> Option<crate::MapCacheStats> {
        None
    }

    /// FTL counters.
    fn stats(&self) -> &FtlStats;

    /// True once the FTL has latched its terminal end-of-life state:
    /// wear-out and/or grown bad blocks exhausted the GC reserve, so
    /// writes are refused (counted in
    /// [`FtlStats::writes_dropped_end_of_life`]) while reads keep
    /// serving. The latch is permanent for the mount.
    fn end_of_life(&self) -> bool {
        false
    }

    /// The underlying timed SSD.
    fn ssd(&self) -> &Ssd;

    /// Marks the underlying NAND device as failed (see
    /// [`esp_nand::NandDevice::kill`]): every later command on it is
    /// rejected without running. Array layers use this to retire a shard
    /// whose FTL latched end-of-life, and tests use it to simulate a
    /// sudden whole-device loss. The default does nothing, for FTL
    /// implementations whose device cannot be externally killed.
    fn fail_device(&mut self) {}

    /// Arms per-operation event tracing, retaining at most `capacity`
    /// events in a keep-newest ring. Tracing is off by default and costs
    /// one branch per potential event while off; FTLs without a recorder
    /// may ignore the request (the default does).
    fn enable_tracing(&mut self, _capacity: usize) {}

    /// The retained trace events, oldest first (empty when tracing was
    /// never enabled). Includes both FTL-level events (`host.*`, `gc.*`,
    /// …) and NAND-level events (`nand.*`), merged by simulated time.
    fn events(&self) -> Vec<esp_sim::TraceEvent> {
        Vec::new()
    }

    /// Events evicted by the trace ring bound (0 when tracing is off).
    fn events_dropped(&self) -> u64 {
        0
    }
}

/// Applies a binary operator field-wise over two [`FtlStats`]; the struct
/// literal keeps [`FtlStats::minus`] and [`FtlStats::plus`] exhaustive and
/// in sync — adding a counter without extending this list fails to compile.
macro_rules! ftl_stats_fieldwise {
    ($a:expr, $b:expr, $u64op:expr, $f64op:expr) => {
        FtlStats {
            host_write_requests: $u64op($a.host_write_requests, $b.host_write_requests),
            host_write_sectors: $u64op($a.host_write_sectors, $b.host_write_sectors),
            host_read_requests: $u64op($a.host_read_requests, $b.host_read_requests),
            host_read_sectors: $u64op($a.host_read_sectors, $b.host_read_sectors),
            small_write_requests: $u64op($a.small_write_requests, $b.small_write_requests),
            flash_sectors_consumed: $u64op($a.flash_sectors_consumed, $b.flash_sectors_consumed),
            gc_flash_sectors: $u64op($a.gc_flash_sectors, $b.gc_flash_sectors),
            gc_invocations: $u64op($a.gc_invocations, $b.gc_invocations),
            gc_subpage_region: $u64op($a.gc_subpage_region, $b.gc_subpage_region),
            gc_copied_sectors: $u64op($a.gc_copied_sectors, $b.gc_copied_sectors),
            rmw_operations: $u64op($a.rmw_operations, $b.rmw_operations),
            lap_migrations: $u64op($a.lap_migrations, $b.lap_migrations),
            cold_evictions: $u64op($a.cold_evictions, $b.cold_evictions),
            retention_evictions: $u64op($a.retention_evictions, $b.retention_evictions),
            wear_swaps: $u64op($a.wear_swaps, $b.wear_swaps),
            wear_level_migrations: $u64op($a.wear_level_migrations, $b.wear_level_migrations),
            op_shrinks: $u64op($a.op_shrinks, $b.op_shrinks),
            end_of_life_trips: $u64op($a.end_of_life_trips, $b.end_of_life_trips),
            writes_dropped_end_of_life: $u64op(
                $a.writes_dropped_end_of_life,
                $b.writes_dropped_end_of_life,
            ),
            read_faults: $u64op($a.read_faults, $b.read_faults),
            read_faults_destroyed: $u64op($a.read_faults_destroyed, $b.read_faults_destroyed),
            read_faults_retention: $u64op($a.read_faults_retention, $b.read_faults_retention),
            read_faults_torn: $u64op($a.read_faults_torn, $b.read_faults_torn),
            read_faults_injected: $u64op($a.read_faults_injected, $b.read_faults_injected),
            read_reclaims: $u64op($a.read_reclaims, $b.read_reclaims),
            disturb_scrubs: $u64op($a.disturb_scrubs, $b.disturb_scrubs),
            read_only_trips: $u64op($a.read_only_trips, $b.read_only_trips),
            writes_dropped_read_only: $u64op(
                $a.writes_dropped_read_only,
                $b.writes_dropped_read_only,
            ),
            program_failures: $u64op($a.program_failures, $b.program_failures),
            erase_failures: $u64op($a.erase_failures, $b.erase_failures),
            blocks_retired: $u64op($a.blocks_retired, $b.blocks_retired),
            write_retries: $u64op($a.write_retries, $b.write_retries),
            torn_pages_quarantined: $u64op($a.torn_pages_quarantined, $b.torn_pages_quarantined),
            small_waf_flash_sectors: $f64op($a.small_waf_flash_sectors, $b.small_waf_flash_sectors),
            small_waf_host_sectors: $u64op($a.small_waf_host_sectors, $b.small_waf_host_sectors),
        }
    };
}

impl FtlStats {
    /// Field-wise sum `self + other`; array layers use it to aggregate
    /// per-shard counters into one fleet-level view.
    #[must_use]
    pub fn plus(&self, other: &FtlStats) -> FtlStats {
        ftl_stats_fieldwise!(self, other, u64::wrapping_add, |x: f64, y: f64| x + y)
    }

    /// Field-wise difference `self - earlier`; used to report per-run
    /// deltas when the same FTL instance replays several traces
    /// (preconditioning, then measurement).
    ///
    /// Counter fields subtract saturating at zero, so a snapshot taken out
    /// of order (or a counter reset between runs) degrades to a zero delta
    /// instead of a u64 underflow panic/wraparound.
    #[must_use]
    pub fn minus(&self, earlier: &FtlStats) -> FtlStats {
        FtlStats {
            host_write_requests: self
                .host_write_requests
                .saturating_sub(earlier.host_write_requests),
            host_write_sectors: self
                .host_write_sectors
                .saturating_sub(earlier.host_write_sectors),
            host_read_requests: self
                .host_read_requests
                .saturating_sub(earlier.host_read_requests),
            host_read_sectors: self
                .host_read_sectors
                .saturating_sub(earlier.host_read_sectors),
            small_write_requests: self
                .small_write_requests
                .saturating_sub(earlier.small_write_requests),
            flash_sectors_consumed: self
                .flash_sectors_consumed
                .saturating_sub(earlier.flash_sectors_consumed),
            gc_flash_sectors: self
                .gc_flash_sectors
                .saturating_sub(earlier.gc_flash_sectors),
            gc_invocations: self.gc_invocations.saturating_sub(earlier.gc_invocations),
            gc_subpage_region: self
                .gc_subpage_region
                .saturating_sub(earlier.gc_subpage_region),
            gc_copied_sectors: self
                .gc_copied_sectors
                .saturating_sub(earlier.gc_copied_sectors),
            rmw_operations: self.rmw_operations.saturating_sub(earlier.rmw_operations),
            lap_migrations: self.lap_migrations.saturating_sub(earlier.lap_migrations),
            cold_evictions: self.cold_evictions.saturating_sub(earlier.cold_evictions),
            retention_evictions: self
                .retention_evictions
                .saturating_sub(earlier.retention_evictions),
            wear_swaps: self.wear_swaps.saturating_sub(earlier.wear_swaps),
            wear_level_migrations: self
                .wear_level_migrations
                .saturating_sub(earlier.wear_level_migrations),
            op_shrinks: self.op_shrinks.saturating_sub(earlier.op_shrinks),
            end_of_life_trips: self
                .end_of_life_trips
                .saturating_sub(earlier.end_of_life_trips),
            writes_dropped_end_of_life: self
                .writes_dropped_end_of_life
                .saturating_sub(earlier.writes_dropped_end_of_life),
            read_faults: self.read_faults.saturating_sub(earlier.read_faults),
            read_faults_destroyed: self
                .read_faults_destroyed
                .saturating_sub(earlier.read_faults_destroyed),
            read_faults_retention: self
                .read_faults_retention
                .saturating_sub(earlier.read_faults_retention),
            read_faults_torn: self
                .read_faults_torn
                .saturating_sub(earlier.read_faults_torn),
            read_faults_injected: self
                .read_faults_injected
                .saturating_sub(earlier.read_faults_injected),
            read_reclaims: self.read_reclaims.saturating_sub(earlier.read_reclaims),
            disturb_scrubs: self.disturb_scrubs.saturating_sub(earlier.disturb_scrubs),
            read_only_trips: self.read_only_trips.saturating_sub(earlier.read_only_trips),
            writes_dropped_read_only: self
                .writes_dropped_read_only
                .saturating_sub(earlier.writes_dropped_read_only),
            program_failures: self
                .program_failures
                .saturating_sub(earlier.program_failures),
            erase_failures: self.erase_failures.saturating_sub(earlier.erase_failures),
            blocks_retired: self.blocks_retired.saturating_sub(earlier.blocks_retired),
            write_retries: self.write_retries.saturating_sub(earlier.write_retries),
            torn_pages_quarantined: self
                .torn_pages_quarantined
                .saturating_sub(earlier.torn_pages_quarantined),
            small_waf_flash_sectors: self.small_waf_flash_sectors - earlier.small_waf_flash_sectors,
            small_waf_host_sectors: self
                .small_waf_host_sectors
                .saturating_sub(earlier.small_waf_host_sectors),
        }
    }
}

/// Replays `trace` through `ftl` and reports per-run metrics (deltas
/// against the FTL's state at entry, so preconditioning runs do not
/// pollute measurement runs).
///
/// Single-threaded host semantics (`queue_depth = 1`); see
/// [`run_trace_qd`] for concurrent hosts. Trace arrival times are
/// interpreted relative to the FTL's current makespan, so back-to-back
/// runs compose naturally.
pub fn run_trace<F: Ftl + ?Sized>(ftl: &mut F, trace: &Trace) -> RunReport {
    run_trace_qd(ftl, trace, 1)
}

/// Replays `trace` through `ftl` with an NCQ-style host queue of depth
/// `queue_depth` (the paper's benchmarks — Sysbench, Varmail, YCSB,
/// TPC-C — are multithreaded, so synchronous writes from different
/// threads overlap in flight and the device becomes throughput-bound
/// rather than latency-bound).
///
/// In-flight requests are a min-heap of completion times; a request is
/// admitted when a queue slot frees and issues at
/// `max(arrival, slot grant, data dependencies)` — see the module docs
/// for the dependency rules. Completion is out of order: a request that
/// lands on an idle chip finishes ahead of an earlier one stuck behind
/// GC on a busy chip.
///
/// An idle window (granted to background GC via [`Ftl::idle`]) opens only
/// when a request arrives after *every* in-flight request has completed —
/// the device is genuinely quiet.
///
/// The report's latency histograms record device **service time**
/// (issue → done, queueing delay excluded), not arrival-to-done response
/// time — see "What the latency histograms measure" in
/// `crates/core/src/runner.rs` for why, and for what to use instead when
/// characterizing open-arrival response time.
///
/// # Panics
///
/// Panics if `queue_depth` is zero.
pub fn run_trace_qd<F: Ftl + ?Sized>(ftl: &mut F, trace: &Trace, queue_depth: usize) -> RunReport {
    run_trace_qd_mode(ftl, trace, queue_depth, HazardMode::Auto)
}

/// Snapshots the device's per-block wear distribution (effective P/E over
/// every physical block). `shallow_erases` is the run's adaptive-erase
/// delta, passed through verbatim.
#[must_use]
pub fn device_wear_summary(ssd: &Ssd, shallow_erases: u64) -> crate::stats::WearSummary {
    let dev = ssd.device();
    let g = ssd.geometry();
    let n = g.block_count();
    let (mut min_pe, mut max_pe, mut sum) = (u32::MAX, 0u32, 0u64);
    for b in 0..n {
        let pe = dev.effective_pe(g.block_addr(b));
        min_pe = min_pe.min(pe);
        max_pe = max_pe.max(pe);
        sum += u64::from(pe);
    }
    if n == 0 {
        min_pe = 0;
    }
    crate::stats::WearSummary {
        min_pe,
        max_pe,
        mean_pe: if n == 0 {
            0.0
        } else {
            sum as f64 / f64::from(n)
        },
        shallow_erases,
    }
}

pub(crate) fn run_trace_qd_mode<F: Ftl + ?Sized>(
    ftl: &mut F,
    trace: &Trace,
    queue_depth: usize,
    mode: HazardMode,
) -> RunReport {
    assert!(queue_depth > 0, "queue_depth must be at least 1");
    let base = ftl.ssd().makespan();
    let stats0 = ftl.stats().clone();
    let dev0 = *ftl.ssd().device().stats();

    // The event calendar: one completion event per queue slot (`base` =
    // free from the start). Popping the earliest completion grants that
    // slot to the next request; pushing schedules the request's own
    // completion. `clock` is the max completion granted so far — kept
    // separately because the calendar only answers min queries. The
    // calendar reuses its bucket storage, so the steady-state loop
    // allocates nothing.
    let mut slots: CalendarQueue<()> = CalendarQueue::new();
    for _ in 0..queue_depth {
        slots.push(base, ());
    }
    let mut clock = base;
    let mut hazards = Hazards::new(mode, trace.footprint_sectors);
    let mut latency = esp_sim::Log2Histogram::new();
    let mut read_latency = esp_sim::HdrHistogram::new();
    let mut write_latency = esp_sim::HdrHistogram::new();
    let mut response_latency = esp_sim::HdrHistogram::new();
    // Arrival→done response times are only meaningful when the trace
    // carries real arrival stamps (open arrivals); closed-loop traces
    // stamp every arrival at zero, where "response time" would just
    // accumulate the makespan.
    let open_arrival = trace.into_iter().any(|r| r.arrival > SimTime::ZERO);
    for r in trace {
        let arrival = base + SimDuration::from_nanos(r.arrival.as_nanos());
        // Admit on the earliest in-flight completion.
        let (slot_free, ()) = slots.pop().expect("at least one slot");
        // Hazards against earlier overlapping requests. At QD=1 every
        // recorded completion is <= the popped slot time, so this never
        // changes serial behaviour.
        let is_write = r.op == IoOp::Write;
        let dep = hazards.dep(r.lsn, r.sectors, is_write);
        let issue = slot_free.max(arrival).max(dep);
        if arrival > clock {
            // Every in-flight request completed before `arrival` (clock is
            // the max over all slots): a background window.
            ftl.idle(clock, arrival);
        }
        ftl.maintain(issue);
        // Service histograms record issue → done: device service time.
        // Under open arrivals the response histogram additionally records
        // arrival → done (host queueing included) for the same samples.
        let done = match r.op {
            IoOp::Write => {
                let done = ftl.write(r.lsn, r.sectors, r.sync, issue);
                if r.sync {
                    let ns = done.saturating_since(issue).as_nanos();
                    latency.record(ns);
                    write_latency.record(ns);
                    if open_arrival {
                        response_latency.record(done.saturating_since(arrival).as_nanos());
                    }
                    done
                } else {
                    issue
                }
            }
            IoOp::Read => {
                let done = ftl.read(r.lsn, r.sectors, issue);
                let ns = done.saturating_since(issue).as_nanos();
                latency.record(ns);
                read_latency.record(ns);
                if open_arrival {
                    response_latency.record(done.saturating_since(arrival).as_nanos());
                }
                done
            }
        };
        // An async write publishes its host-visible completion (the
        // buffered copy is readable immediately); sync writes publish
        // durability.
        hazards.publish(r.lsn, r.sectors, is_write, done);
        hazards.maybe_prune(slot_free);
        slots.push(done, ());
        clock = clock.max(done);
    }
    let flushed = ftl.flush(clock);

    let end = ftl.ssd().makespan().max(flushed).max(clock);
    let makespan_ns = end.saturating_since(base);
    let makespan = SimTime::ZERO + makespan_ns;
    let secs = makespan_ns.as_secs_f64();
    let requests = trace.len() as u64;
    let iops = if secs > 0.0 {
        requests as f64 / secs
    } else {
        0.0
    };
    let dev = ftl.ssd().device().stats();
    RunReport {
        ftl: ftl.name(),
        requests,
        makespan,
        iops,
        stats: ftl.stats().minus(&stats0),
        erases: dev.erases.saturating_sub(dev0.erases),
        programs: (
            dev.full_programs.saturating_sub(dev0.full_programs),
            dev.subpage_programs.saturating_sub(dev0.subpage_programs),
        ),
        recovered_reads: dev.recovered_reads.saturating_sub(dev0.recovered_reads),
        retry_steps: dev.retry_steps.saturating_sub(dev0.retry_steps),
        soft_decodes: dev.soft_decodes.saturating_sub(dev0.soft_decodes),
        latency,
        read_latency,
        write_latency,
        response_latency,
        wear: device_wear_summary(
            ftl.ssd(),
            dev.shallow_erases.saturating_sub(dev0.shallow_erases),
        ),
    }
}

/// Preconditions `ftl` to the paper's steady state: sequentially fills
/// `fill_fraction` of the logical space (the paper fills 10 GB of its
/// 16 GB device, i.e. 0.625).
pub fn precondition<F: Ftl + ?Sized>(ftl: &mut F, fill_fraction: f64) -> RunReport {
    let fill = esp_workload::precondition_fill(ftl.logical_sectors(), fill_fraction);
    run_trace(ftl, &fill)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FtlConfig, SubFtl};
    use esp_workload::IoRequest;

    #[test]
    fn qd_one_serializes_sync_writes() {
        let mut ftl = SubFtl::new(&FtlConfig::tiny());
        let mut t = Trace::new(64);
        for i in 0..8u64 {
            t.push(IoRequest::write(SimTime::ZERO, i, 1, true));
        }
        let serial = run_trace(&mut ftl, &t);
        let mut ftl2 = SubFtl::new(&FtlConfig::tiny());
        let parallel = run_trace_qd(&mut ftl2, &t, 8);
        assert!(
            parallel.makespan < serial.makespan,
            "8 threads must beat 1 thread on independent sync writes"
        );
        assert_eq!(serial.requests, parallel.requests);
    }

    #[test]
    fn sync_latencies_are_recorded_async_are_not() {
        let mut ftl = SubFtl::new(&FtlConfig::tiny());
        let mut t = Trace::new(64);
        t.push(IoRequest::write(SimTime::ZERO, 0, 1, true));
        t.push(IoRequest::write(SimTime::ZERO, 1, 1, false));
        t.push(IoRequest::read(SimTime::ZERO, 0, 1));
        let r = run_trace(&mut ftl, &t);
        // 1 sync write + 1 read recorded; the async write is not.
        assert_eq!(r.latency.count(), 2);
        assert!(r.latency_p50() > SimDuration::ZERO);
    }

    #[test]
    fn arrival_times_gate_issue() {
        let mut ftl = SubFtl::new(&FtlConfig::tiny());
        let mut t = Trace::new(64);
        // One write arriving 5 seconds in: the makespan must include the
        // idle wait.
        t.push(IoRequest::write(SimTime::from_secs(5), 0, 1, true));
        let r = run_trace(&mut ftl, &t);
        assert!(r.makespan >= SimTime::from_secs(5));
    }

    #[test]
    fn back_to_back_runs_rebase_arrivals() {
        let mut ftl = SubFtl::new(&FtlConfig::tiny());
        let mut t = Trace::new(64);
        t.push(IoRequest::write(SimTime::ZERO, 0, 1, true));
        let first = run_trace(&mut ftl, &t);
        let second = run_trace(&mut ftl, &t);
        // Each run reports its own makespan, not cumulative time.
        assert!(second.makespan.as_nanos() < first.makespan.as_nanos() * 3);
        assert_eq!(second.requests, 1);
    }

    #[test]
    #[should_panic(expected = "queue_depth")]
    fn zero_queue_depth_rejected() {
        let mut ftl = SubFtl::new(&FtlConfig::tiny());
        let t = Trace::new(64);
        let _ = run_trace_qd(&mut ftl, &t, 0);
    }

    #[test]
    fn precondition_fills_requested_fraction() {
        let mut ftl = SubFtl::new(&FtlConfig::tiny());
        let r = precondition(&mut ftl, 0.5);
        let expected = ftl.logical_sectors() / 2;
        assert!(r.stats.host_write_sectors >= expected - 16);
        assert!(r.stats.host_write_sectors <= expected);
    }

    #[test]
    fn stats_minus_is_fieldwise() {
        let mut a = FtlStats::new();
        a.gc_invocations = 10;
        a.write_retries = 5;
        a.blocks_retired = 2;
        a.small_waf_flash_sectors = 8.0;
        a.small_waf_host_sectors = 4;
        let mut b = FtlStats::new();
        b.gc_invocations = 3;
        b.write_retries = 1;
        b.small_waf_flash_sectors = 2.0;
        b.small_waf_host_sectors = 1;
        let d = a.minus(&b);
        assert_eq!(d.gc_invocations, 7);
        assert_eq!(d.write_retries, 4);
        assert_eq!(d.blocks_retired, 2);
        assert_eq!(d.small_waf_host_sectors, 3);
        assert!((d.small_waf_flash_sectors - 6.0).abs() < 1e-12);
    }

    #[test]
    fn stats_minus_saturates_instead_of_underflowing() {
        // An out-of-order snapshot (earlier > later) must degrade to zero
        // deltas, not wrap around or panic in release/debug builds.
        let mut earlier = FtlStats::new();
        earlier.gc_invocations = 10;
        earlier.read_faults = 3;
        earlier.program_failures = 2;
        let later = FtlStats::new();
        let d = later.minus(&earlier);
        assert_eq!(d.gc_invocations, 0);
        assert_eq!(d.read_faults, 0);
        assert_eq!(d.program_failures, 0);
    }

    #[test]
    fn empty_trace_yields_zero_report() {
        let mut ftl = SubFtl::new(&FtlConfig::tiny());
        let r = run_trace_qd(&mut ftl, &Trace::new(64), 4);
        assert_eq!(r.requests, 0);
        assert_eq!(r.iops, 0.0);
        assert_eq!(r.makespan, SimTime::ZERO);
        assert_eq!(r.latency.count(), 0);
        assert_eq!(r.erases, 0);
        // An empty run after real work must also report zero deltas.
        let mut t = Trace::new(64);
        t.push(IoRequest::write(SimTime::ZERO, 0, 1, true));
        run_trace(&mut ftl, &t);
        let r = run_trace(&mut ftl, &Trace::new(64));
        assert_eq!(r.requests, 0);
        assert_eq!(r.stats.host_write_sectors, 0);
    }

    /// Records every idle window the runner grants and the issue time of
    /// every host call, to pin down the scheduling bookkeeping.
    struct Probe {
        ssd: Ssd,
        stats: FtlStats,
        busy: SimDuration,
        idle_windows: Vec<(SimTime, SimTime)>,
        calls: Vec<(IoOp, u64, SimTime)>,
    }

    impl Probe {
        fn new(busy: SimDuration) -> Self {
            Probe {
                ssd: Ssd::new(esp_nand::Geometry::tiny()),
                stats: FtlStats::new(),
                busy,
                idle_windows: Vec::new(),
                calls: Vec::new(),
            }
        }

        /// Issue time of the nth host call.
        fn issue(&self, n: usize) -> SimTime {
            self.calls[n].2
        }
    }

    impl Ftl for Probe {
        fn name(&self) -> &'static str {
            "probe"
        }
        fn logical_sectors(&self) -> u64 {
            1 << 20
        }
        fn write(&mut self, lsn: u64, _sectors: u32, sync: bool, issue: SimTime) -> SimTime {
            self.calls.push((IoOp::Write, lsn, issue));
            if sync {
                issue + self.busy
            } else {
                issue
            }
        }
        fn read(&mut self, lsn: u64, _sectors: u32, issue: SimTime) -> SimTime {
            self.calls.push((IoOp::Read, lsn, issue));
            issue + self.busy
        }
        fn flush(&mut self, issue: SimTime) -> SimTime {
            issue
        }
        fn idle(&mut self, from: SimTime, until: SimTime) {
            self.idle_windows.push((from, until));
        }
        fn stored_seq(&self, _lsn: u64) -> Option<u64> {
            None
        }
        fn trim(&mut self, _lsn: u64, _sectors: u32) {}
        fn mapping_memory_bytes(&self) -> u64 {
            0
        }
        fn stats(&self) -> &FtlStats {
            &self.stats
        }
        fn ssd(&self) -> &Ssd {
            &self.ssd
        }
    }

    #[test]
    fn idle_window_requires_all_threads_quiet() {
        // Thread 0 is busy 0..10s. A request arriving at 5s finds thread 1
        // free (its t_free = 0 < arrival) but thread 0 still busy: that gap
        // is NOT an idle window. A request at 20s — past every thread's
        // completion — is.
        let mut p = Probe::new(SimDuration::from_secs(10));
        let mut t = Trace::new(1 << 20);
        t.push(IoRequest::write(SimTime::ZERO, 0, 1, true)); // 0..10s on thread 0
        t.push(IoRequest::write(SimTime::from_secs(5), 1, 1, true)); // 5..15s on thread 1
        t.push(IoRequest::write(SimTime::from_secs(20), 2, 1, true));
        run_trace_qd(&mut p, &t, 2);
        assert_eq!(
            p.idle_windows,
            vec![(SimTime::from_secs(15), SimTime::from_secs(20))],
            "exactly one idle window, from last completion to next arrival"
        );
    }

    #[test]
    fn no_idle_window_when_requests_are_back_to_back() {
        let mut p = Probe::new(SimDuration::from_secs(1));
        let mut t = Trace::new(1 << 20);
        for i in 0..4u64 {
            t.push(IoRequest::write(SimTime::ZERO, i, 1, true));
        }
        run_trace(&mut p, &t);
        assert!(p.idle_windows.is_empty(), "got {:?}", p.idle_windows);
    }

    /// The pre-NCQ scheduler, kept verbatim as the serial oracle: each
    /// request goes to the earliest-free host thread with no dependency
    /// tracking. At queue depth 1 the NCQ scheduler must reproduce its
    /// completion times bit for bit.
    fn legacy_run_trace_qd<F: Ftl + ?Sized>(
        ftl: &mut F,
        trace: &Trace,
        queue_depth: usize,
    ) -> RunReport {
        let base = ftl.ssd().makespan();
        let stats0 = ftl.stats().clone();
        let dev0 = *ftl.ssd().device().stats();
        let mut threads = vec![base; queue_depth];
        let mut clock = base;
        let mut latency = esp_sim::Log2Histogram::new();
        let mut read_latency = esp_sim::HdrHistogram::new();
        let mut write_latency = esp_sim::HdrHistogram::new();
        // Response recording mirrors `run_trace_qd` (it post-dates the
        // legacy scheduler and doesn't affect scheduling), so the
        // bit-identity comparison also covers the response histogram.
        let mut response_latency = esp_sim::HdrHistogram::new();
        let open_arrival = trace.into_iter().any(|r| r.arrival > SimTime::ZERO);
        for r in trace {
            let arrival = base + SimDuration::from_nanos(r.arrival.as_nanos());
            let (t_idx, &t_free) = threads
                .iter()
                .enumerate()
                .min_by_key(|(_, &t)| t)
                .expect("at least one thread");
            let issue = t_free.max(arrival);
            if arrival > t_free {
                let all_free = threads.iter().copied().max().expect("non-empty");
                if arrival > all_free {
                    ftl.idle(all_free, arrival);
                }
            }
            ftl.maintain(issue);
            let done = match r.op {
                IoOp::Write => {
                    let done = ftl.write(r.lsn, r.sectors, r.sync, issue);
                    if r.sync {
                        let ns = done.saturating_since(issue).as_nanos();
                        latency.record(ns);
                        write_latency.record(ns);
                        if open_arrival {
                            response_latency.record(done.saturating_since(arrival).as_nanos());
                        }
                        done
                    } else {
                        issue
                    }
                }
                IoOp::Read => {
                    let done = ftl.read(r.lsn, r.sectors, issue);
                    let ns = done.saturating_since(issue).as_nanos();
                    latency.record(ns);
                    read_latency.record(ns);
                    if open_arrival {
                        response_latency.record(done.saturating_since(arrival).as_nanos());
                    }
                    done
                }
            };
            threads[t_idx] = done;
            clock = clock.max(done);
        }
        let flushed = ftl.flush(clock);
        let end = ftl.ssd().makespan().max(flushed).max(clock);
        let makespan_ns = end.saturating_since(base);
        let makespan = SimTime::ZERO + makespan_ns;
        let secs = makespan_ns.as_secs_f64();
        let requests = trace.len() as u64;
        let iops = if secs > 0.0 {
            requests as f64 / secs
        } else {
            0.0
        };
        let dev = ftl.ssd().device().stats();
        RunReport {
            ftl: ftl.name(),
            requests,
            makespan,
            iops,
            stats: ftl.stats().minus(&stats0),
            erases: dev.erases.saturating_sub(dev0.erases),
            programs: (
                dev.full_programs.saturating_sub(dev0.full_programs),
                dev.subpage_programs.saturating_sub(dev0.subpage_programs),
            ),
            recovered_reads: dev.recovered_reads.saturating_sub(dev0.recovered_reads),
            retry_steps: dev.retry_steps.saturating_sub(dev0.retry_steps),
            soft_decodes: dev.soft_decodes.saturating_sub(dev0.soft_decodes),
            latency,
            read_latency,
            write_latency,
            response_latency,
            wear: device_wear_summary(
                ftl.ssd(),
                dev.shallow_erases.saturating_sub(dev0.shallow_erases),
            ),
        }
    }

    /// A mixed workload — sync and async writes, reads, rewrites of the
    /// same sectors, spaced and bursty arrivals — over a tiny subFTL.
    fn mixed_trace(footprint: u64) -> Trace {
        esp_workload::generate(&esp_workload::SyntheticConfig {
            footprint_sectors: footprint,
            requests: 600,
            r_small: 0.8,
            r_synch: 0.6,
            read_fraction: 0.3,
            inter_arrival: SimDuration::from_micros(300),
            burst_period: 97,
            burst_idle: SimDuration::from_millis(40),
            ..esp_workload::SyntheticConfig::default()
        })
    }

    /// Factories for all four FTLs, for cross-implementation tests.
    fn all_ftls(cfg: &FtlConfig) -> Vec<(&'static str, Box<dyn Ftl>)> {
        vec![
            ("cgm", Box::new(crate::CgmFtl::new(cfg)) as Box<dyn Ftl>),
            ("fgm", Box::new(crate::FgmFtl::new(cfg))),
            ("sub", Box::new(SubFtl::new(cfg))),
            ("sector_log", Box::new(crate::SectorLogFtl::new(cfg))),
        ]
    }

    #[test]
    fn qd1_matches_serial_reference() {
        // Bit-for-bit: the event-engine scheduler at depth 1 must
        // reproduce the legacy serial scheduler exactly — same completion
        // times, same latency distribution, same device state — on a
        // workload that exercises idle windows, rewrites and reads, for
        // every FTL in the tree.
        let cfg = FtlConfig::tiny();
        for ((name, mut a), (_, mut b)) in all_ftls(&cfg).into_iter().zip(all_ftls(&cfg)) {
            let trace = mixed_trace(a.logical_sectors() / 2);
            let new = run_trace_qd(a.as_mut(), &trace, 1);
            let old = legacy_run_trace_qd(b.as_mut(), &trace, 1);
            assert_eq!(
                crate::report::run_json("qd1", &new).to_pretty(),
                crate::report::run_json("qd1", &old).to_pretty(),
                "{name}: QD=1 must be bit-identical to the serial scheduler"
            );
            assert_eq!(a.ssd().makespan(), b.ssd().makespan(), "{name}");
            assert_eq!(
                a.ssd().commands_issued(),
                b.ssd().commands_issued(),
                "{name}"
            );
        }
    }

    #[test]
    fn hazard_representations_are_bit_identical() {
        // The flat tables, the pruned sparse maps, and the unpruned
        // legacy maps must produce byte-identical replays at QD > 1:
        // pruning only ever drops entries already dominated by the slot
        // grant. Exercised across all four FTLs on a workload with
        // rewrites, reads and idle windows.
        let cfg = FtlConfig::tiny();
        for mode in [
            HazardMode::Sparse,
            HazardMode::SparseUnpruned,
            HazardMode::Auto,
        ] {
            for ((name, mut a), (_, mut b)) in all_ftls(&cfg).into_iter().zip(all_ftls(&cfg)) {
                let trace = mixed_trace(a.logical_sectors() / 2);
                let flat = run_trace_qd_mode(a.as_mut(), &trace, 8, HazardMode::Flat);
                let other = run_trace_qd_mode(b.as_mut(), &trace, 8, mode);
                assert_eq!(
                    crate::report::run_json("qd8", &flat).to_pretty(),
                    crate::report::run_json("qd8", &other).to_pretty(),
                    "{name}: hazard representations must be bit-identical"
                );
                assert_eq!(a.ssd().makespan(), b.ssd().makespan(), "{name}");
            }
        }
    }

    #[test]
    fn sparse_hazards_prune_to_the_working_set() {
        // Regression for unbounded memory growth: the sparse maps used to
        // retain one entry per sector ever touched. With pruning, a long
        // scan over many sectors must keep the population bounded by the
        // prune trigger plus one request's publications — not grow with
        // the footprint.
        let mut h = Hazards::new(HazardMode::Sparse, u64::MAX);
        let mut t = SimTime::ZERO;
        for i in 0..200_000u64 {
            t += SimDuration::from_micros(10);
            h.publish(i * 8, 8, true, t);
            // The watermark trails the published completion, as the slot
            // grant does in a loaded queue.
            h.maybe_prune(t);
        }
        assert!(
            h.population() <= SPARSE_PRUNE_TRIGGER + 8,
            "population {} must stay bounded",
            h.population()
        );
        // And an unpruned map demonstrates the bug being fixed.
        let mut h = Hazards::new(HazardMode::SparseUnpruned, u64::MAX);
        for i in 0..20_000u64 {
            h.publish(i * 8, 8, true, SimTime::from_micros(i));
            h.maybe_prune(SimTime::from_micros(i));
        }
        assert_eq!(h.population(), 160_000, "unpruned maps retain everything");
    }

    #[test]
    fn response_histogram_records_only_open_arrivals() {
        // Closed loop: every arrival at zero — no response samples.
        let mut ftl = SubFtl::new(&FtlConfig::tiny());
        let mut t = Trace::new(64);
        t.push(IoRequest::write(SimTime::ZERO, 0, 1, true));
        t.push(IoRequest::read(SimTime::ZERO, 0, 1));
        let r = run_trace(&mut ftl, &t);
        assert_eq!(r.response_latency.summary().count, 0);
        let j = crate::report::run_json("closed", &r);
        assert!(j.path("latency.response.count").is_none());

        // Open arrivals: response = service + queueing delay, recorded
        // for the same samples as the service histograms.
        let mut ftl = SubFtl::new(&FtlConfig::tiny());
        let mut t = Trace::new(64);
        for i in 0..8u64 {
            // All arrive within 1 us: deep backlog at QD=1, so response
            // must exceed service for the queued requests.
            t.push(IoRequest::write(
                SimTime::from_nanos(100 * i + 1),
                i,
                1,
                true,
            ));
        }
        let r = run_trace(&mut ftl, &t);
        let resp = r.response_latency.summary();
        assert_eq!(resp.count, 8, "one response sample per sync request");
        assert!(
            resp.max > r.write_latency_summary().max,
            "queued tail response must exceed pure service time"
        );
        let j = crate::report::run_json("open", &r);
        assert_eq!(
            j.path("latency.response.count").and_then(|v| v.as_u64()),
            Some(8)
        );
    }

    #[test]
    fn same_lsn_write_read_serializes_at_qd32() {
        // A read of sector 0 arriving while a 10-second write of sector 0
        // is in flight must wait for the write (read-after-write), even
        // with 31 free queue slots; an independent read sails through.
        let mut p = Probe::new(SimDuration::from_secs(10));
        let mut t = Trace::new(1 << 20);
        t.push(IoRequest::write(SimTime::ZERO, 0, 4, true)); // 0..10 s
        t.push(IoRequest::read(SimTime::ZERO, 2, 1)); // overlaps the write
        t.push(IoRequest::read(SimTime::ZERO, 100, 1)); // independent
        run_trace_qd(&mut p, &t, 32);
        assert_eq!(p.issue(0), SimTime::ZERO);
        assert_eq!(
            p.issue(1),
            SimTime::from_secs(10),
            "overlapping read must wait for the write to complete"
        );
        assert_eq!(
            p.issue(2),
            SimTime::ZERO,
            "independent read must not serialize"
        );
    }

    #[test]
    fn write_waits_for_overlapping_reads_and_writes_at_qd32() {
        let mut p = Probe::new(SimDuration::from_secs(10));
        let mut t = Trace::new(1 << 20);
        t.push(IoRequest::read(SimTime::ZERO, 0, 2)); // 0..10 s
        t.push(IoRequest::write(SimTime::ZERO, 1, 1, true)); // WAR on sector 1
        t.push(IoRequest::write(SimTime::ZERO, 1, 1, true)); // WAW behind it
        run_trace_qd(&mut p, &t, 32);
        assert_eq!(
            p.issue(1),
            SimTime::from_secs(10),
            "write must wait for the in-flight read of its sectors"
        );
        assert_eq!(
            p.issue(2),
            SimTime::from_secs(20),
            "second write must wait for the first (write-after-write)"
        );
    }

    #[test]
    fn overlapping_reads_run_concurrently() {
        let mut p = Probe::new(SimDuration::from_secs(10));
        let mut t = Trace::new(1 << 20);
        t.push(IoRequest::read(SimTime::ZERO, 0, 4));
        t.push(IoRequest::read(SimTime::ZERO, 0, 4));
        run_trace_qd(&mut p, &t, 4);
        assert_eq!(p.issue(0), SimTime::ZERO);
        assert_eq!(p.issue(1), SimTime::ZERO, "reads never depend on reads");
    }

    #[test]
    fn seeded_qd_runs_are_deterministic() {
        let cfg = FtlConfig::tiny();
        let trace = mixed_trace(SubFtl::new(&cfg).logical_sectors() / 2);
        let run = |qd: usize| {
            let mut ftl = SubFtl::new(&cfg);
            let r = run_trace_qd(&mut ftl, &trace, qd);
            crate::report::run_json("det", &r).to_pretty()
        };
        for qd in [2, 8, 32] {
            assert_eq!(run(qd), run(qd), "QD={qd} replay must be reproducible");
        }
    }

    #[test]
    fn iops_is_monotone_nondecreasing_in_qd_on_read_only() {
        // Property: with no write hazards, adding queue slots can only
        // increase device-level overlap, so IOPS never drops as QD grows.
        let cfg = FtlConfig::tiny();
        let footprint = SubFtl::new(&cfg).logical_sectors() / 2;
        let trace = esp_workload::generate(&esp_workload::SyntheticConfig {
            footprint_sectors: footprint,
            requests: 1_500,
            read_fraction: 1.0,
            ..esp_workload::SyntheticConfig::default()
        });
        let mut last = 0.0_f64;
        for qd in [1usize, 2, 4, 8, 16] {
            let mut ftl = SubFtl::new(&cfg);
            precondition(&mut ftl, 0.5);
            let r = run_trace_qd(&mut ftl, &trace, qd);
            assert!(
                r.iops >= last,
                "IOPS regressed from {last:.0} to {:.0} going to QD={qd}",
                r.iops
            );
            last = r.iops;
        }
    }
}

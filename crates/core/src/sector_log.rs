//! `sectorLogFTL` — the sector-log technique of Jin et al. (SAC 2011), the
//! closest related work the paper discusses (§6).
//!
//! Like subFTL it is a *hybrid-mapping* FTL: small writes are appended to a
//! reserved **log region** with fine-grained (4 KB) mapping while ordinary
//! data lives in a coarse-grained **data region**. The critical difference
//! the paper calls out: the sector log "supports subpage programming at the
//! logical level" only — without ESP, every append to the log physically
//! programs a whole 16 KB page, so a synchronous 4 KB write still wastes
//! 3/4 of a page and "its performance suffers when synchronous small writes
//! occur fairly frequently". Log GC performs *full merges*: every live log
//! sector of a victim's logical pages is read-modify-written back into the
//! data region.
//!
//! Implemented as a fourth [`Ftl`] so the paper's qualitative comparison
//! becomes a measurable experiment (`related_sector_log`).

use esp_nand::Oob;
use esp_sim::{merge_events, EventBuffer, EventSink, SimTime, TraceEvent};
use esp_ssd::Ssd;
use esp_workload::SECTORS_PER_PAGE;

use crate::buffer::{FlushChunk, WriteBuffer};
use crate::config::FtlConfig;
use crate::full_region::FullRegionEngine;
use crate::gc_policy::{select_victim, GcPolicyKind, SelectOpts, VictimCandidate};
use crate::read_path::{note_read_result, ReadReliability};
use crate::runner::Ftl;
use crate::stats::FtlStats;
use crate::sub_map::{SubEntry, SubpageMap};

#[derive(Debug, Clone)]
struct LogBlock {
    gbi: u32,
    chip: u32,
    /// Validity per subpage slot (pages × N_sub).
    valid: Vec<bool>,
    valid_count: u32,
    programmed_pages: u32,
    /// Bad block (factory-marked or grown): never appended to again.
    retired: bool,
    /// Monotone stamp taken when the block filled; 0 means "never stamped
    /// this mount" (erased, or recovered — treated as maximally old by
    /// age-aware GC policies).
    closed_seq: u64,
}

impl LogBlock {
    fn new(gbi: u32, chip: u32, pages: u32, nsub: u32) -> Self {
        LogBlock {
            gbi,
            chip,
            valid: vec![false; (pages * nsub) as usize],
            valid_count: 0,
            programmed_pages: 0,
            retired: false,
            closed_seq: 0,
        }
    }
}

/// The sector-log baseline FTL (see module docs).
///
/// # Examples
///
/// ```
/// use esp_core::{Ftl, FtlConfig, SectorLogFtl};
/// use esp_sim::SimTime;
///
/// let mut ftl = SectorLogFtl::new(&FtlConfig::tiny());
/// // A synchronous 4 KB write appends to the log: one full-page program.
/// ftl.write(0, 1, true, SimTime::ZERO);
/// assert_eq!(ftl.ssd().device().stats().full_programs, 1);
/// ```
#[derive(Debug, Clone)]
pub struct SectorLogFtl {
    ssd: Ssd,
    /// Coarse-grained data region (same engine as cgmFTL).
    data: FullRegionEngine,
    log_blocks: Vec<LogBlock>,
    log_free: Vec<u32>,
    log_actives: Vec<Option<u32>>,
    rr: usize,
    /// Fine-grained log map: lsn → log location.
    log_map: SubpageMap,
    buffer: WriteBuffer,
    stats: FtlStats,
    seq: u64,
    logical_sectors: u64,
    pages_per_block: u32,
    nsub: u32,
    watermark: u32,
    /// Victim-selection policy for log-merge GC (the data region's engine
    /// carries its own copy).
    gc_policy: GcPolicyKind,
    /// Source for [`LogBlock::closed_seq`] stamps; starts at 1 so stamp 0
    /// stays reserved for "never closed".
    closed_seq_counter: u64,
    /// Background GC into host idle windows (`FtlConfig::background_gc`).
    background_gc: bool,
    /// Wear-delta bias in log-merge victim selection plus wear-aware log
    /// allocation (off by default for bit-identity with the seed).
    wear_leveling: bool,
    /// Max−min effective-P/E spread that triggers a data-region rotation.
    wear_delta: u32,
    /// Device erase count at which the next wear-spread check runs.
    next_wear_check: u64,
    reliability: ReadReliability,
    /// Log-merge/reclaim event recorder; disabled (free) by default.
    trace: EventBuffer,
    /// Reused full-page read buffer and OOB staging for log merges and
    /// grouped host reads, so those hot paths allocate nothing per page.
    slots_scratch: Vec<Result<Oob, esp_nand::ReadFault>>,
    oobs_scratch: Vec<Option<Oob>>,
    chunks_scratch: Vec<FlushChunk>,
}

impl SectorLogFtl {
    /// Builds a sector-log FTL over the configured device, giving the log
    /// region the same share of blocks subFTL gives its subpage region
    /// (`subpage_region_fraction`), for a like-for-like comparison.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`FtlConfig::validate`]).
    #[must_use]
    pub fn new(config: &FtlConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid FTL config: {e}"));
        let ssd = Ssd::with_planes(
            config.geometry.clone(),
            config.timing.clone(),
            config.retention.clone(),
            config.planes_per_chip,
        );
        Self::with_ssd(config, ssd)
    }

    /// Builds the FTL structures over an existing (possibly non-empty)
    /// device with the default region layout; mapping state starts empty —
    /// see [`SectorLogFtl::recover`] for rebuilding it from flash contents.
    pub(crate) fn with_ssd(config: &FtlConfig, mut ssd: Ssd) -> Self {
        if let Some(f) = &config.fault {
            ssd.device_mut().set_faults(f.clone());
        }
        ssd.device_mut()
            .set_retry_ladder(config.retry_ladder.clone());
        ssd.device_mut().set_adaptive_erase(config.adaptive_erase);
        let g = &config.geometry;
        let bpc = g.blocks_per_chip;
        let log_per_chip =
            ((f64::from(bpc) * config.subpage_region_fraction).round() as u32).clamp(2, bpc - 1);
        let mut log_gbis = Vec::new();
        let mut data_gbis = Vec::new();
        for chip in 0..g.chip_count() {
            for b in 0..bpc {
                let gbi = chip * bpc + b;
                if b < log_per_chip {
                    log_gbis.push(gbi);
                } else {
                    data_gbis.push(gbi);
                }
            }
        }
        let logical_sectors = config.logical_sectors();
        let lpn_count = logical_sectors / u64::from(SECTORS_PER_PAGE);
        let mut data = FullRegionEngine::new(
            data_gbis,
            g.pages_per_block,
            bpc,
            lpn_count,
            config.gc_free_watermark,
        );
        data.set_wear_leveling(config.wear_leveling);
        data.set_gc_policy(config.gc_policy);
        let log_blocks: Vec<LogBlock> = log_gbis
            .iter()
            .map(|&gbi| LogBlock::new(gbi, gbi / bpc, g.pages_per_block, g.subpages_per_page))
            .collect();
        let log_free = (0..log_blocks.len() as u32).collect();
        let chips = g.chip_count() as usize;
        let map_capacity = log_blocks.len() * (g.pages_per_block * g.subpages_per_page) as usize;
        let mut ftl = SectorLogFtl {
            ssd,
            data,
            log_blocks,
            log_free,
            log_actives: vec![None; chips],
            rr: 0,
            log_map: SubpageMap::with_capacity(map_capacity.max(1)),
            buffer: WriteBuffer::new(config.write_buffer_sectors),
            stats: FtlStats::new(),
            seq: 0,
            logical_sectors,
            pages_per_block: g.pages_per_block,
            nsub: g.subpages_per_page,
            watermark: config.gc_free_watermark,
            gc_policy: config.gc_policy,
            closed_seq_counter: 1,
            background_gc: config.background_gc,
            wear_leveling: config.wear_leveling,
            wear_delta: config.wear_delta_threshold,
            next_wear_check: 0,
            reliability: ReadReliability::new(config),
            trace: EventBuffer::disabled(),
            slots_scratch: Vec::new(),
            oobs_scratch: Vec::new(),
            chunks_scratch: Vec::new(),
        };
        // Exclude factory-marked bad blocks from whichever region owns them.
        for gbi in ftl.ssd.device().bad_block_indices() {
            if ftl.data.retire_gbi(gbi) {
                ftl.stats.blocks_retired += 1;
            } else if let Some(local) = ftl
                .log_blocks
                .iter()
                .position(|b| b.gbi == gbi && !b.retired)
            {
                ftl.retire_log_block(local as u32);
                ftl.stats.blocks_retired += 1;
            }
        }
        ftl
    }

    /// Rebuilds a sector-log FTL from the contents of a previously written
    /// device (power-loss recovery). The region split is structural (the
    /// same per-chip shares `with_ssd` uses), so each scanned block's
    /// contents are re-attributed to its region: the data region maps each
    /// logical page to its newest readable copy, and a log entry survives
    /// only while it is strictly newer than the data-region copy of the
    /// same sector (merges copy log data into the data region preserving
    /// sequence numbers, so on a tie the full-page copy wins). Torn pages
    /// found by the scan are quarantined and counted. DRAM-buffered data
    /// that was never flushed is gone, as on real hardware.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or does not match the
    /// device's geometry.
    #[must_use]
    pub fn recover(mut ssd: Ssd, config: &FtlConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid FTL config: {e}"));
        assert_eq!(
            *ssd.geometry(),
            config.geometry,
            "recovery config geometry mismatch"
        );
        if let Some(f) = &config.fault {
            ssd.device_mut().set_faults(f.clone());
        }
        let scan = crate::recovery::scan_device(&mut ssd);
        let scans = scan.blocks;
        let g = config.geometry.clone();
        let bpc = g.blocks_per_chip;
        let log_per_chip =
            ((f64::from(bpc) * config.subpage_region_fraction).round() as u32).clamp(2, bpc - 1);
        let data_per_chip = bpc - log_per_chip;
        let mut ftl = Self::with_ssd(config, ssd);
        ftl.stats.torn_pages_quarantined = scan.torn_pages;
        let page_sz = u64::from(SECTORS_PER_PAGE);
        let lpn_count = (ftl.logical_sectors / page_sz) as usize;

        // Split the scan back into the structural regions.
        // lpn -> (seq, data-local block, page) of the newest data copy.
        let mut best_data: Vec<Option<(u64, u32, u32)>> = vec![None; lpn_count];
        // Newest log copy per lsn.
        #[derive(Clone, Copy)]
        struct LogCand {
            seq: u64,
            block: u32,
            page: u32,
            slot: u8,
            written_at: SimTime,
        }
        let mut best_log: Vec<Option<LogCand>> = vec![None; ftl.logical_sectors as usize];
        let mut data_programmed = vec![0u32; (g.chip_count() * data_per_chip) as usize];
        let mut max_seq = 0u64;
        for (gbi, scan) in scans.iter().enumerate() {
            let gbi = gbi as u32;
            let (chip, b) = (gbi / bpc, gbi % bpc);
            let log_local = if b < log_per_chip {
                let local = chip * log_per_chip + b;
                ftl.log_blocks[local as usize].programmed_pages = scan.programmed_pages();
                Some(local)
            } else {
                let data_local = chip * data_per_chip + (b - log_per_chip);
                data_programmed[data_local as usize] = scan.programmed_pages();
                None
            };
            for (p, page) in scan.pages.iter().enumerate() {
                for slot in &page.live {
                    max_seq = max_seq.max(slot.seq);
                }
                match log_local {
                    Some(local) => {
                        for slot in &page.live {
                            if slot.lsn >= ftl.logical_sectors {
                                continue;
                            }
                            let e = &mut best_log[slot.lsn as usize];
                            if e.is_none_or(|c| slot.seq > c.seq) {
                                *e = Some(LogCand {
                                    seq: slot.seq,
                                    block: local,
                                    page: p as u32,
                                    slot: slot.slot,
                                    written_at: slot.written_at,
                                });
                            }
                        }
                    }
                    None => {
                        let Some(newest) = page.live.iter().max_by_key(|s| s.seq) else {
                            continue;
                        };
                        let lpn = (newest.lsn / page_sz) as usize;
                        if lpn >= lpn_count {
                            continue;
                        }
                        let data_local = chip * data_per_chip + (b - log_per_chip);
                        if best_data[lpn].is_none_or(|(seq, _, _)| newest.seq > seq) {
                            best_data[lpn] = Some((newest.seq, data_local, p as u32));
                        }
                    }
                }
            }
        }
        let mappings: Vec<(u64, u32, u32)> = best_data
            .iter()
            .enumerate()
            .filter_map(|(lpn, e)| e.map(|(_, b, p)| (lpn as u64, b, p)))
            .collect();
        ftl.data.restore_state(&data_programmed, &mappings);

        // Per-sector sequence number of the chosen data-region copy, used
        // to drop log entries the merges already superseded.
        let mut data_seq = vec![0u64; ftl.logical_sectors as usize];
        for entry in &best_data {
            let Some((_, data_local, p)) = *entry else {
                continue;
            };
            let chip = data_local / data_per_chip;
            let gbi = chip * bpc + log_per_chip + (data_local % data_per_chip);
            for slot in &scans[gbi as usize].pages[p as usize].live {
                if slot.lsn < ftl.logical_sectors {
                    data_seq[slot.lsn as usize] = data_seq[slot.lsn as usize].max(slot.seq);
                }
            }
        }
        for (lsn, entry) in best_log.iter().enumerate() {
            let Some(c) = *entry else {
                continue;
            };
            if c.seq <= data_seq[lsn] {
                continue; // merged into the data region already
            }
            ftl.log_map.insert(
                lsn as u64,
                SubEntry {
                    block: c.block,
                    page: c.page,
                    slot: c.slot,
                    updated: false,
                    written_at: c.written_at,
                },
            );
            let blk = &mut ftl.log_blocks[c.block as usize];
            blk.valid[(c.page * ftl.nsub + u32::from(c.slot)) as usize] = true;
            blk.valid_count += 1;
        }
        ftl.log_free = ftl
            .log_blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| !b.retired && b.programmed_pages == 0)
            .map(|(i, _)| i as u32)
            .collect();
        // Resume one partially programmed log block per chip as the active
        // append point; close any extras so GC can eventually merge them.
        for a in &mut ftl.log_actives {
            *a = None;
        }
        for i in 0..ftl.log_blocks.len() {
            let b = &ftl.log_blocks[i];
            if b.retired || b.programmed_pages == 0 || b.programmed_pages >= ftl.pages_per_block {
                continue;
            }
            let chip = b.chip as usize;
            if ftl.log_actives[chip].is_none() {
                ftl.log_actives[chip] = Some(i as u32);
            } else {
                ftl.log_blocks[i].programmed_pages = ftl.pages_per_block;
            }
        }
        ftl.seq = max_seq;
        ftl
    }

    pub(crate) fn ssd_mut(&mut self) -> &mut Ssd {
        &mut self.ssd
    }

    /// Allocation-state digest for the crash harness's idempotence check:
    /// log-region free/retired/active blocks and fill, plus the data
    /// region's own fingerprint. Simulated times are excluded: two mounts
    /// of the same flash image happen at different clocks but must land in
    /// the same state.
    pub(crate) fn pool_fingerprint(&self) -> Vec<u64> {
        // Keyed by device-global block index: local positions are a mount
        // artifact, and retired blocks drop out of a remount entirely.
        let mut out = Vec::new();
        let mut free: Vec<u64> = self
            .log_free
            .iter()
            .map(|&b| u64::from(self.log_blocks[b as usize].gbi))
            .collect();
        free.sort_unstable();
        out.extend(free);
        out.push(u64::MAX);
        for a in &self.log_actives {
            out.push(a.map_or(u64::MAX - 1, |b| u64::from(self.log_blocks[b as usize].gbi)));
        }
        out.push(u64::MAX);
        let mut live: Vec<[u64; 3]> = self
            .log_blocks
            .iter()
            .filter(|b| !b.retired)
            .map(|b| {
                [
                    u64::from(b.gbi),
                    u64::from(b.programmed_pages),
                    u64::from(b.valid_count),
                ]
            })
            .collect();
        live.sort_unstable();
        for b in live {
            out.extend(b);
        }
        out.push(u64::MAX);
        out.extend(self.data.pool_fingerprint());
        out
    }

    /// Takes a log block out of service: never allocated, never a victim.
    fn retire_log_block(&mut self, local: u32) {
        self.log_blocks[local as usize].retired = true;
        if let Some(pos) = self.log_free.iter().position(|&f| f == local) {
            self.log_free.swap_remove(pos);
        }
        for a in &mut self.log_actives {
            if *a == Some(local) {
                *a = None;
            }
        }
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Effective P/E of a log block: oxide-stress based under adaptive
    /// erase, identical to the raw erase count otherwise.
    fn log_block_pe(&self, local: u32) -> u32 {
        let gbi = self.log_blocks[local as usize].gbi;
        self.ssd
            .device()
            .effective_pe(self.ssd.geometry().block_addr(gbi))
    }

    /// With wear leveling on, trades the hottest erased log block for the
    /// data region's coldest free block. The log pool churns orders of
    /// magnitude faster than data blocks pinned under cold pages, so
    /// without this cross-region exchange the handful of log blocks absorb
    /// the device's whole erase budget on their own.
    /// Static wear leveling for the log region: a log block packed with
    /// valid cold sectors is never a profitable merge victim, so it can pin
    /// a lightly-worn block forever. When the fleet-wide effective-wear
    /// spread exceeds the threshold, the coldest such parked block is
    /// force-merged so it rejoins the erase rotation. At most one block per
    /// call; metered from `maintain`.
    fn log_wear_rotate(&mut self, issue: SimTime) -> SimTime {
        if !self.wear_leveling || self.reliability.end_of_life() || self.ssd.halted() {
            return issue;
        }
        let mut max_pe = self
            .data
            .wear_spread(&self.ssd)
            .map(|(_, hi)| hi)
            .unwrap_or(0);
        for (i, b) in self.log_blocks.iter().enumerate() {
            if !b.retired {
                max_pe = max_pe.max(self.log_block_pe(i as u32));
            }
        }
        let cold = self
            .log_blocks
            .iter()
            .enumerate()
            .filter(|(i, b)| {
                !b.retired
                    && !self.log_actives.contains(&Some(*i as u32))
                    && b.programmed_pages >= self.pages_per_block
            })
            .min_by_key(|(i, _)| self.log_block_pe(*i as u32))
            .map(|(i, _)| i as u32);
        let Some(victim) = cold else { return issue };
        if max_pe.saturating_sub(self.log_block_pe(victim)) <= self.wear_delta {
            return issue;
        }
        self.stats.wear_level_migrations += 1;
        self.merge_block(victim, issue).unwrap_or(issue)
    }

    fn maybe_log_wear_swap(&mut self) {
        if !self.wear_leveling {
            return;
        }
        let Some(pos) =
            (0..self.log_free.len()).max_by_key(|&p| self.log_block_pe(self.log_free[p]))
        else {
            return;
        };
        let local = self.log_free[pos];
        let worn_gbi = self.log_blocks[local as usize].gbi;
        let Some(fresh_gbi) = self
            .data
            .swap_free_block(worn_gbi, self.wear_delta, &self.ssd)
        else {
            return;
        };
        self.retire_log_block(local);
        let chip = fresh_gbi / self.ssd.geometry().blocks_per_chip;
        self.log_blocks.push(LogBlock::new(
            fresh_gbi,
            chip,
            self.pages_per_block,
            self.nsub,
        ));
        self.log_free.push((self.log_blocks.len() - 1) as u32);
        self.stats.wear_swaps += 1;
    }

    /// Whole log pages still appendable without a merge: room left in the
    /// open log blocks plus every block in the log free pool.
    fn allocatable_log_pages(&self) -> u64 {
        let mut pages = self.log_free.len() as u64 * u64::from(self.pages_per_block);
        for a in self.log_actives.iter().flatten() {
            pages +=
                u64::from(self.pages_per_block - self.log_blocks[*a as usize].programmed_pages);
        }
        pages
    }

    fn unmap_log(&mut self, lsn: u64) {
        if let Some(e) = self.log_map.remove(lsn) {
            let blk = &mut self.log_blocks[e.block as usize];
            let idx = (e.page * self.nsub + u32::from(e.slot)) as usize;
            debug_assert!(blk.valid[idx]);
            blk.valid[idx] = false;
            blk.valid_count -= 1;
        }
    }

    /// Allocates the next whole log page, striped across chips.
    fn alloc_log_page(&mut self) -> (u32, u32) {
        let chips = self.log_actives.len();
        for i in 0..chips {
            let chip = (self.rr + i) % chips;
            let usable = match self.log_actives[chip] {
                Some(b) => self.log_blocks[b as usize].programmed_pages < self.pages_per_block,
                None => false,
            };
            if !usable {
                // With wear leveling, refills pick the chip's least-worn
                // free log block so erase cycles spread across the region;
                // otherwise the first pool entry (seed behavior).
                let pick = if self.wear_leveling {
                    self.log_free
                        .iter()
                        .enumerate()
                        .filter(|(_, &b)| self.log_blocks[b as usize].chip as usize == chip)
                        .min_by_key(|(_, &b)| (self.log_block_pe(b), b))
                        .map(|(p, _)| p)
                } else {
                    self.log_free
                        .iter()
                        .position(|&b| self.log_blocks[b as usize].chip as usize == chip)
                };
                match pick {
                    Some(p) => self.log_actives[chip] = Some(self.log_free.swap_remove(p)),
                    None => continue,
                }
            }
            let block = self.log_actives[chip].expect("just ensured");
            let page = self.log_blocks[block as usize].programmed_pages;
            let blk = &mut self.log_blocks[block as usize];
            blk.programmed_pages += 1;
            if blk.programmed_pages >= self.pages_per_block && blk.closed_seq == 0 {
                blk.closed_seq = self.closed_seq_counter;
                self.closed_seq_counter += 1;
            }
            self.rr = chip + 1;
            return (block, page);
        }
        panic!("sector log: no free log block on any chip");
    }

    /// Appends up to `N_sub` sectors of one chunk into one log page. A
    /// program that reports status fail is retried on the next log page.
    fn log_append(&mut self, group: &[(u64, bool)], issue: SimTime) -> SimTime {
        debug_assert!(!group.is_empty() && group.len() <= self.nsub as usize);
        let mut now = self.ensure_log_space(issue);
        let mut oobs: Vec<Option<Oob>> = vec![None; self.nsub as usize];
        for (slot, &(lsn, _)) in group.iter().enumerate() {
            let seq = self.next_seq();
            oobs[slot] = Some(Oob { lsn, seq });
        }
        let (block, page, done) = loop {
            if self.ssd.halted() {
                // Power is off: with log GC fenced the free pool may be
                // empty, so bail out before alloc_log_page can panic.
                return now;
            }
            if self.allocatable_log_pages() == 0 {
                // End of life: the log region has no appendable page left.
                // Drop the append (old copies stay mapped) and latch the
                // refusal so subsequent writes are dropped up front.
                self.reliability.latch_end_of_life(&mut self.stats);
                return now;
            }
            let (block, page) = self.alloc_log_page();
            let gbi = self.log_blocks[block as usize].gbi;
            let addr = self.ssd.geometry().block_addr(gbi).page(page);
            match self.ssd.program_full(addr, &oobs, now) {
                Ok(done) => break (block, page, done),
                Err(f) if f.error == esp_nand::NandError::ProgramFailed => {
                    self.stats.program_failures += 1;
                    self.stats.write_retries += 1;
                    now = f.at;
                }
                Err(f) => panic!("log page is clean: {f}"),
            }
        };
        for (slot, &(lsn, _)) in group.iter().enumerate() {
            self.unmap_log(lsn);
            self.log_map.insert(
                lsn,
                SubEntry {
                    block,
                    page,
                    slot: slot as u8,
                    updated: false,
                    written_at: done,
                },
            );
            let blk = &mut self.log_blocks[block as usize];
            blk.valid[(page * self.nsub) as usize + slot] = true;
            blk.valid_count += 1;
        }
        self.stats.flash_sectors_consumed += u64::from(SECTORS_PER_PAGE);
        let share = f64::from(SECTORS_PER_PAGE) / group.len() as f64;
        for &(_, origin) in group {
            if origin {
                self.stats.small_waf_flash_sectors += share;
            }
        }
        done
    }

    fn ensure_log_space(&mut self, issue: SimTime) -> SimTime {
        let mut now = issue;
        while !self.ssd.halted() && (self.log_free.len() as u32) < self.watermark {
            // A shrunken log region (retired bad blocks) may dip below the
            // watermark before any block has filled; merge what exists and
            // let the allocator keep appending to the open blocks.
            if !self.has_log_victim() {
                break;
            }
            match self.merge_victim(now) {
                Some(done) => now = done,
                None => {
                    // The data region is exhausted, so the merge could not
                    // drain the victim: retrying would livelock. Latch end
                    // of life and degrade to refusing writes instead.
                    self.reliability.latch_end_of_life(&mut self.stats);
                    break;
                }
            }
        }
        now
    }

    fn has_log_victim(&self) -> bool {
        self.log_blocks.iter().enumerate().any(|(i, b)| {
            !b.retired
                && !self.log_actives.contains(&Some(i as u32))
                && b.programmed_pages >= self.pages_per_block
        })
    }

    /// Picks a merge victim among full log blocks via the configured
    /// [`GcPolicyKind`], with the wear-leveling slack re-rank composed on
    /// top (see [`crate::select_victim`]).
    fn pick_log_victim(&self) -> Option<u32> {
        let subs_per_block = self.pages_per_block * self.nsub;
        let candidates: Vec<VictimCandidate> = self
            .log_blocks
            .iter()
            .enumerate()
            .filter(|(i, b)| {
                !b.retired
                    && !self.log_actives.contains(&Some(*i as u32))
                    && b.programmed_pages >= self.pages_per_block
            })
            .map(|(i, b)| VictimCandidate {
                index: i as u32,
                valid: b.valid_count,
                capacity: subs_per_block,
                age: self.closed_seq_counter.saturating_sub(b.closed_seq),
                wear: if self.wear_leveling {
                    self.log_block_pe(i as u32)
                } else {
                    0
                },
            })
            .collect();
        select_victim(
            self.gc_policy,
            SelectOpts::standard(self.wear_leveling),
            &candidates,
        )
    }

    /// Log GC: full merge — every live sector of the victim (and every
    /// other live log copy of the same logical pages) is read-modify-
    /// written back into the data region; the victim is erased. Returns
    /// `None` when the data region was too exhausted to drain the victim
    /// (the log copies stay where they are, nothing is erased).
    fn merge_victim(&mut self, issue: SimTime) -> Option<SimTime> {
        let victim = self.pick_log_victim().expect("sector log GC: no victim");
        self.merge_block(victim, issue)
    }

    /// Merges one specific log block back into the data region. Shared by
    /// normal log GC (profitable victim) and static wear leveling (coldest
    /// parked block).
    fn merge_block(&mut self, victim: u32, issue: SimTime) -> Option<SimTime> {
        self.stats.gc_invocations += 1;
        let valid = self.log_blocks[victim as usize].valid_count;
        self.trace.emit(|| {
            TraceEvent::new(issue.as_nanos(), "gc.collect")
                .tag("log_merge")
                .field("block", u64::from(victim))
                .field("valid_sectors", u64::from(valid))
        });
        let mut now = issue;
        // Collect the victim's live sectors.
        let gbi = self.log_blocks[victim as usize].gbi;
        let mut lpns: Vec<u64> = Vec::new();
        for page in 0..self.pages_per_block {
            let any = (0..self.nsub)
                .any(|s| self.log_blocks[victim as usize].valid[(page * self.nsub + s) as usize]);
            if !any {
                continue;
            }
            let addr = self.ssd.geometry().block_addr(gbi).page(page);
            now = self.ssd.read_full_into(addr, now, &mut self.slots_scratch);
            if self.ssd.halted() {
                // Power died mid-merge: surviving log copies stay where
                // they are on flash; this half-done merge dies with DRAM.
                return Some(now);
            }
            for (slot, r) in self.slots_scratch.iter().enumerate() {
                if self.log_blocks[victim as usize].valid[(page * self.nsub) as usize + slot] {
                    let oob = r.as_ref().expect("valid log sector must be readable");
                    lpns.push(oob.lsn / u64::from(SECTORS_PER_PAGE));
                }
            }
        }
        lpns.sort_unstable();
        lpns.dedup();
        for lpn in lpns {
            now = self.merge_lpn(lpn, now);
        }
        if self.log_blocks[victim as usize].valid_count > 0 {
            // The data region ran out of space mid-merge: the remaining
            // log entries are sole copies, so the victim must not be
            // erased. The caller degrades to end-of-life handling.
            return if self.ssd.halted() { Some(now) } else { None };
        }
        let blk_addr = self.ssd.geometry().block_addr(gbi);
        match self.ssd.erase(blk_addr, now) {
            Ok(done) => {
                now = done;
                let b = &mut self.log_blocks[victim as usize];
                b.valid.fill(false);
                b.programmed_pages = 0;
                b.closed_seq = 0;
                self.log_free.push(victim);
                self.maybe_log_wear_swap();
            }
            Err(f) if f.error == esp_nand::NandError::EraseFailed => {
                // Grown bad log block: all live sectors were merged into
                // the data region above, so retiring it loses nothing.
                now = f.at;
                let b = &mut self.log_blocks[victim as usize];
                b.valid.fill(false);
                self.retire_log_block(victim);
                self.stats.erase_failures += 1;
                self.stats.blocks_retired += 1;
            }
            Err(f) => panic!("erase log block: {f}"),
        }
        Some(now)
    }

    /// Full merge of one logical page: gather its sectors (live log copies
    /// first, then the old data-region page), program a fresh data page,
    /// and drop the log entries.
    fn merge_lpn(&mut self, lpn: u64, issue: SimTime) -> SimTime {
        let page_sz = u64::from(SECTORS_PER_PAGE);
        self.oobs_scratch.clear();
        self.oobs_scratch.resize(SECTORS_PER_PAGE as usize, None);
        let mut now = issue;
        let mut from_log = 0u64;
        for slot in 0..u64::from(SECTORS_PER_PAGE) {
            let lsn = lpn * page_sz + slot;
            if let Some(e) = self.log_map.get(lsn) {
                let gbi = self.log_blocks[e.block as usize].gbi;
                let addr = self
                    .ssd
                    .geometry()
                    .block_addr(gbi)
                    .page(e.page)
                    .subpage(e.slot);
                let (r, t) = self.ssd.read_subpage(addr, now);
                now = t;
                note_read_result(&r, lsn, &mut self.stats);
                if let Ok(oob) = r {
                    self.oobs_scratch[slot as usize] = Some(oob);
                    from_log += 1;
                }
            }
        }
        if let Some(ptr) = self.data.lookup(lpn) {
            let addr = self.data.page_addr(ptr, &self.ssd);
            now = self.ssd.read_full_into(addr, now, &mut self.slots_scratch);
            for (slot, r) in self.slots_scratch.iter().enumerate() {
                if self.oobs_scratch[slot].is_none() {
                    if let Ok(oob) = r {
                        self.oobs_scratch[slot] = Some(*oob);
                    }
                }
            }
            self.stats.rmw_operations += 1;
        }
        now = match self.data.try_program_page(
            lpn,
            &self.oobs_scratch,
            &mut self.ssd,
            &mut self.stats,
            now,
        ) {
            Ok(t) => t,
            Err(_) => {
                // Data region exhausted: the log entries are sole copies,
                // so they stay mapped; writes degrade to refusal.
                self.reliability.latch_end_of_life(&mut self.stats);
                return now;
            }
        };
        for slot in 0..page_sz {
            self.unmap_log(lpn * page_sz + slot);
        }
        self.stats.gc_copied_sectors += from_log;
        self.stats.gc_flash_sectors += u64::from(SECTORS_PER_PAGE);
        now
    }

    /// Flushes chunks: aligned 16 KB units go straight to the data region,
    /// residues append to the log (per-chunk packing, like the FGM buffer).
    fn flush_chunks(&mut self, chunks: &mut Vec<FlushChunk>, issue: SimTime) -> SimTime {
        let page_sz = u64::from(SECTORS_PER_PAGE);
        let mut done = issue;
        for chunk in chunks.drain(..) {
            let (lo, hi) = (chunk.start_lsn, chunk.end_lsn());
            let aligned_lo = lo.div_ceil(page_sz) * page_sz;
            let aligned_hi = (hi / page_sz) * page_sz;
            let origin = |lsn: u64| chunk.origins[(lsn - chunk.start_lsn) as usize];
            let mut residues: Vec<(u64, bool)> = Vec::new();
            if aligned_lo + page_sz <= aligned_hi {
                residues.extend((lo..aligned_lo).map(|l| (l, origin(l))));
                for lpn in aligned_lo / page_sz..aligned_hi / page_sz {
                    self.oobs_scratch.clear();
                    for slot in 0..page_sz {
                        let seq = self.next_seq();
                        self.oobs_scratch.push(Some(Oob {
                            lsn: lpn * page_sz + slot,
                            seq,
                        }));
                    }
                    let t = match self.data.try_program_page(
                        lpn,
                        &self.oobs_scratch,
                        &mut self.ssd,
                        &mut self.stats,
                        issue,
                    ) {
                        Ok(t) => t,
                        Err(_) => {
                            // End of life: the flush has nowhere to land;
                            // any older copies (data or log) stay mapped.
                            self.reliability.latch_end_of_life(&mut self.stats);
                            continue;
                        }
                    };
                    done = done.max(t);
                    for slot in 0..page_sz {
                        let lsn = lpn * page_sz + slot;
                        self.unmap_log(lsn);
                        if origin(lsn) {
                            self.stats.small_waf_flash_sectors += 1.0;
                        }
                    }
                }
                residues.extend((aligned_hi..hi).map(|l| (l, origin(l))));
            } else {
                residues.extend((lo..hi).map(|l| (l, origin(l))));
            }
            for group in residues.chunks(self.nsub as usize) {
                let t = self.log_append(group, issue);
                done = done.max(t);
            }
            self.buffer.recycle(chunk);
        }
        done
    }
}

impl Ftl for SectorLogFtl {
    fn name(&self) -> &'static str {
        "sectorLogFTL"
    }

    fn logical_sectors(&self) -> u64 {
        self.logical_sectors
    }

    fn enable_tracing(&mut self, capacity: usize) {
        self.trace.enable(capacity);
        self.data.enable_tracing(capacity);
        self.ssd.enable_tracing(capacity);
    }

    fn events(&self) -> Vec<TraceEvent> {
        merge_events(&[&self.trace, self.data.trace(), self.ssd.trace()])
    }

    fn events_dropped(&self) -> u64 {
        self.trace.dropped() + self.data.trace().dropped() + self.ssd.trace().dropped()
    }

    fn write(&mut self, lsn: u64, sectors: u32, sync: bool, issue: SimTime) -> SimTime {
        assert!(
            lsn + u64::from(sectors) <= self.logical_sectors,
            "write beyond logical capacity"
        );
        if self.ssd.device_failed() {
            // A failed device executes nothing; the shard is inert.
            return issue;
        }
        if self.reliability.refuse_write(&mut self.stats) {
            return issue;
        }
        self.stats.host_write_requests += 1;
        self.stats.host_write_sectors += u64::from(sectors);
        let small = sectors < SECTORS_PER_PAGE;
        if small {
            self.stats.small_write_requests += 1;
            self.stats.small_waf_host_sectors += u64::from(sectors);
        }
        self.buffer.insert(lsn, sectors, small);
        if sync {
            let mut chunks = std::mem::take(&mut self.chunks_scratch);
            self.buffer.take_overlapping_into(lsn, sectors, &mut chunks);
            let done = self.flush_chunks(&mut chunks, issue);
            self.chunks_scratch = chunks;
            done
        } else if self.buffer.is_full() {
            let mut chunks = std::mem::take(&mut self.chunks_scratch);
            self.buffer.drain_all_into(&mut chunks);
            self.flush_chunks(&mut chunks, issue);
            self.chunks_scratch = chunks;
            issue
        } else {
            issue
        }
    }

    fn read(&mut self, lsn: u64, sectors: u32, issue: SimTime) -> SimTime {
        if self.ssd.device_failed() {
            return issue;
        }
        self.stats.host_read_requests += 1;
        self.stats.host_read_sectors += u64::from(sectors);
        let page_sz = u64::from(SECTORS_PER_PAGE);
        let (lo, hi) = (lsn, lsn + u64::from(sectors));
        let mut done = issue;
        let mut faulted = false;
        // Logical pages whose read climbed past the reclaim threshold, and
        // whether the costly copy lives in the log (second element true).
        let mut reclaim: Vec<(u64, bool)> = Vec::new();
        for lpn in lo / page_sz..=(hi - 1) / page_sz {
            let s_lo = lo.max(lpn * page_sz);
            let s_hi = hi.min((lpn + 1) * page_sz);
            let mut from_data: Vec<u64> = Vec::new();
            for s in s_lo..s_hi {
                if self.buffer.contains(s) {
                    continue;
                }
                if let Some(e) = self.log_map.get(s) {
                    let gbi = self.log_blocks[e.block as usize].gbi;
                    let addr = self
                        .ssd
                        .geometry()
                        .block_addr(gbi)
                        .page(e.page)
                        .subpage(e.slot);
                    let (r, effort, t) = self.ssd.read_subpage_graded(addr, issue);
                    faulted |= note_read_result(&r, s, &mut self.stats);
                    if self.reliability.wants_reclaim(effort) {
                        reclaim.push((lpn, true));
                    }
                    done = done.max(t);
                } else {
                    from_data.push(s);
                }
            }
            if from_data.is_empty() {
                continue;
            }
            let Some(ptr) = self.data.lookup(lpn) else {
                continue;
            };
            let addr = self.data.page_addr(ptr, &self.ssd);
            let effort = if from_data.len() >= 2 {
                let (effort, t) =
                    self.ssd
                        .read_full_graded_into(addr, issue, &mut self.slots_scratch);
                for s in from_data {
                    faulted |= note_read_result(
                        &self.slots_scratch[(s % page_sz) as usize],
                        s,
                        &mut self.stats,
                    );
                }
                done = done.max(t);
                effort
            } else {
                let s = from_data[0];
                let (r, effort, t) = self
                    .ssd
                    .read_subpage_graded(addr.subpage((s % page_sz) as u8), issue);
                faulted |= note_read_result(&r, s, &mut self.stats);
                done = done.max(t);
                effort
            };
            if self.reliability.wants_reclaim(effort) {
                reclaim.push((lpn, false));
            }
        }
        self.reliability.note_host_read(faulted, &mut self.stats);
        // One relocation per logical page; if any costly copy was a log
        // entry, a full merge handles both regions at once.
        reclaim.sort_unstable_by_key(|&(lpn, via_log)| (lpn, !via_log));
        reclaim.dedup_by_key(|e| e.0);
        for (lpn, via_log) in reclaim {
            done = if via_log {
                let at = done.as_nanos();
                let t = self.merge_lpn(lpn, done);
                self.trace.emit(|| {
                    TraceEvent::new(at, "gc.reclaim")
                        .tag("read_reclaim")
                        .field("lpn", lpn)
                });
                self.stats.read_reclaims += 1;
                t
            } else {
                self.data
                    .reclaim_page(lpn, &mut self.ssd, &mut self.stats, done)
            };
        }
        done
    }

    fn maintain(&mut self, now: SimTime) {
        if self.ssd.device_failed() {
            return;
        }
        // The patrol covers the data region; disturbed log entries are
        // relocated through full merges when their reads climb the ladder.
        let reads = self.ssd.device().stats().reads;
        if self.reliability.patrol_due(reads) {
            if let Some(limit) = self.reliability.scrub_limit() {
                self.data
                    .scrub_disturbed(&mut self.ssd, &mut self.stats, limit, now);
            }
        }
        if self.data.wear_leveling() {
            let erases = self.ssd.device().stats().erases;
            if erases >= self.next_wear_check {
                self.next_wear_check = erases + 16;
                self.data
                    .wear_rotate(&mut self.ssd, &mut self.stats, now, self.wear_delta);
                self.log_wear_rotate(now);
            }
        }
    }

    fn flush(&mut self, issue: SimTime) -> SimTime {
        if self.ssd.device_failed() {
            return issue;
        }
        let mut chunks = std::mem::take(&mut self.chunks_scratch);
        self.buffer.drain_all_into(&mut chunks);
        let done = self.flush_chunks(&mut chunks, issue);
        self.chunks_scratch = chunks;
        done
    }

    fn idle(&mut self, from: SimTime, until: SimTime) {
        if !self.background_gc || self.ssd.device_failed() {
            return;
        }
        // Refill the data-region pool first, then pre-merge log blocks: a
        // merge only starts if its estimate fits the remaining window.
        let mut now = self.data.background_collect(
            &mut self.ssd,
            &mut self.stats,
            from,
            until,
            self.watermark + 2,
        );
        use esp_nand::OpKind;
        let per_page = self.ssd.device().op_cost(OpKind::ReadFull).total()
            + self.ssd.device().op_cost(OpKind::ProgramFull).total();
        let erase = self.ssd.device().op_cost(OpKind::Erase).total();
        while !self.ssd.halted() && (self.log_free.len() as u32) < self.watermark + 2 {
            let Some(victim) = self.pick_log_victim() else {
                break;
            };
            let valid = self.log_blocks[victim as usize].valid_count;
            if valid >= self.pages_per_block * self.nsub {
                break; // nothing reclaimable
            }
            let estimate = per_page * u64::from(valid.div_ceil(self.nsub).max(1) + 1) + erase;
            if now + estimate > until {
                break;
            }
            match self.merge_block(victim, now) {
                Some(done) if !self.ssd.halted() => now = done,
                _ => break,
            }
        }
    }

    fn trim(&mut self, lsn: u64, sectors: u32) {
        self.buffer.discard(lsn, sectors);
        for s in lsn..lsn + u64::from(sectors) {
            self.unmap_log(s);
        }
        let page_sz = u64::from(SECTORS_PER_PAGE);
        let first_full = lsn.div_ceil(page_sz);
        let last_full = (lsn + u64::from(sectors)) / page_sz;
        for lpn in first_full..last_full {
            self.data.unmap(lpn);
        }
    }

    fn mapping_memory_bytes(&self) -> u64 {
        self.data.mapping_bytes() + self.log_map.memory_bytes() as u64
    }

    fn stored_seq(&self, lsn: u64) -> Option<u64> {
        if self.buffer.contains(lsn) {
            return None;
        }
        let state = if let Some(e) = self.log_map.peek(lsn) {
            let gbi = self.log_blocks[e.block as usize].gbi;
            let addr = self
                .ssd
                .geometry()
                .block_addr(gbi)
                .page(e.page)
                .subpage(e.slot);
            self.ssd.device().subpage_state(addr)
        } else {
            let page_sz = u64::from(SECTORS_PER_PAGE);
            let ptr = self.data.lookup(lsn / page_sz)?;
            let addr = self
                .data
                .page_addr(ptr, &self.ssd)
                .subpage((lsn % page_sz) as u8);
            self.ssd.device().subpage_state(addr)
        };
        match state {
            esp_nand::SubpageState::Written(w) => w.oob.filter(|o| o.lsn == lsn).map(|o| o.seq),
            _ => None,
        }
    }

    fn stats(&self) -> &FtlStats {
        &self.stats
    }

    fn end_of_life(&self) -> bool {
        self.reliability.end_of_life()
    }

    fn ssd(&self) -> &Ssd {
        &self.ssd
    }

    fn fail_device(&mut self) {
        self.ssd.device_mut().kill();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_trace;
    use esp_workload::{generate, SyntheticConfig};

    fn tiny_ftl() -> SectorLogFtl {
        SectorLogFtl::new(&FtlConfig::tiny())
    }

    #[test]
    fn sync_small_write_fragments_a_log_page() {
        let mut ftl = tiny_ftl();
        ftl.write(0, 1, true, SimTime::ZERO);
        // No ESP: the log append programs a whole 16 KB page.
        assert_eq!(ftl.ssd().device().stats().full_programs, 1);
        assert_eq!(ftl.ssd().device().stats().subpage_programs, 0);
        assert!((ftl.stats().small_request_waf() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn aligned_large_write_goes_to_data_region() {
        let mut ftl = tiny_ftl();
        ftl.write(0, 4, true, SimTime::ZERO);
        assert_eq!(ftl.stats().rmw_operations, 0);
        assert!(ftl.stored_seq(2).is_some());
    }

    #[test]
    fn log_hit_shadows_stale_data_copy() {
        let mut ftl = tiny_ftl();
        let mut t = ftl.write(0, 4, true, SimTime::ZERO); // data region
        let v1 = ftl.stored_seq(1).unwrap();
        t = ftl.write(1, 1, true, t); // newer copy in the log
        assert!(ftl.stored_seq(1).unwrap() > v1);
        ftl.read(0, 4, t);
        assert_eq!(ftl.stats().read_faults, 0);
    }

    #[test]
    fn log_gc_merges_back_to_data_region() {
        let mut ftl = tiny_ftl();
        let mut t = SimTime::ZERO;
        // Churn small writes until log GC (full merge) fires.
        for i in 0..4_000u64 {
            t = ftl.write(i % 24, 1, true, t);
            if ftl.stats().gc_invocations > 0 {
                break;
            }
        }
        assert!(ftl.stats().gc_invocations > 0, "log merge never fired");
        assert!(
            ftl.stats().gc_flash_sectors > 0,
            "merges must program data-region pages"
        );
        for lsn in 0..24 {
            ftl.read(lsn, 1, t);
        }
        assert_eq!(ftl.stats().read_faults, 0);
    }

    #[test]
    fn survives_mixed_workload() {
        let mut ftl = tiny_ftl();
        let cfg = SyntheticConfig {
            footprint_sectors: ftl.logical_sectors() / 2,
            requests: 3_000,
            r_small: 0.8,
            r_synch: 0.9,
            read_fraction: 0.2,
            zipf_theta: 0.8,
            seed: 5,
            ..SyntheticConfig::default()
        };
        let report = run_trace(&mut ftl, &generate(&cfg));
        assert_eq!(report.stats.read_faults, 0);
        assert!(report.iops > 0.0);
    }

    #[test]
    fn survives_faults_and_factory_bad_blocks() {
        let mut config = FtlConfig::tiny();
        config.fault = Some(esp_nand::FaultConfig {
            seed: 23,
            program_fail_prob: 0.02,
            erase_fail_prob: 0.001,
            factory_bad_blocks: 1,
            ..esp_nand::FaultConfig::default()
        });
        let mut ftl = SectorLogFtl::new(&config);
        assert_eq!(ftl.stats().blocks_retired, 1);
        let cfg = SyntheticConfig {
            footprint_sectors: ftl.logical_sectors() / 2,
            requests: 2_000,
            r_small: 0.5,
            r_synch: 1.0,
            zipf_theta: 0.5,
            ..SyntheticConfig::default()
        };
        let report = run_trace(&mut ftl, &generate(&cfg));
        assert_eq!(
            report.stats.read_faults, 0,
            "faults must never corrupt reads"
        );
        assert!(report.stats.write_retries > 0, "p=0.02 must force retries");
    }

    #[test]
    fn trim_clears_log_and_data() {
        let mut ftl = tiny_ftl();
        ftl.write(0, 4, true, SimTime::ZERO);
        ftl.write(1, 1, true, SimTime::from_secs(1));
        ftl.trim(0, 4);
        assert_eq!(ftl.stored_seq(1), None);
        assert_eq!(ftl.stored_seq(2), None);
    }

    #[test]
    fn fine_mapping_scales_with_log_region_not_logical_space() {
        // The hybrid's fine map is bounded by the log region: growing the
        // device grows fgmFTL's table linearly while the sector log's fine
        // part grows only with the (fractional) log region.
        let small = FtlConfig::tiny();
        let mut big = FtlConfig::tiny();
        big.geometry.blocks_per_chip *= 4;
        let sl_small = SectorLogFtl::new(&small).mapping_memory_bytes();
        let sl_big = SectorLogFtl::new(&big).mapping_memory_bytes();
        let fgm_small = crate::fgm::FgmFtl::new(&small).mapping_memory_bytes();
        let fgm_big = crate::fgm::FgmFtl::new(&big).mapping_memory_bytes();
        // fgm scales with logical sectors (4x); the hybrid grows slower
        // because only its log share is fine-grained.
        assert_eq!(fgm_big, fgm_small * 4);
        assert!(sl_big < sl_small * 4, "hybrid map must grow sublinearly");
    }

    #[test]
    fn hot_reads_stay_correctable_with_ladder_and_reclaim() {
        use esp_nand::{RetentionModel, RetryLadder};
        let mut config = FtlConfig::tiny();
        config.retention = RetentionModel::paper_default().with_read_disturb(2e-2);
        config.retry_ladder = Some(RetryLadder::paper_default());
        config.reclaim_threshold = Some(2);
        let mut ftl = SectorLogFtl::new(&config);
        // One sector in the log, one aligned page in the data region: the
        // hot-read loop disturbs both the log block and the data block.
        let t = ftl.write(0, 1, true, SimTime::ZERO);
        ftl.write(4, 4, true, t);
        let mut now = SimTime::from_secs(1);
        for _ in 0..600 {
            ftl.maintain(now);
            now = ftl.read(0, 1, now);
            now = ftl.read(4, 4, now);
        }
        assert_eq!(ftl.stats().read_faults, 0, "pipeline must keep data alive");
        assert!(
            ftl.stats().read_reclaims > 0 || ftl.stats().disturb_scrubs > 0,
            "mitigation must actually have run"
        );
        assert!(ftl.stored_seq(0).is_some(), "hot sector stays mapped");
        assert!(ftl.stored_seq(5).is_some(), "hot page stays mapped");
    }
}

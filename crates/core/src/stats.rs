//! FTL-level statistics: the quantities the paper's evaluation reports.

use esp_sim::{HdrHistogram, LatencySummary, Log2Histogram, SimDuration, SimTime};
use esp_workload::SECTOR_BYTES;

/// Counters maintained by every FTL.
///
/// Terminology follows the paper:
///
/// * **GC invocations** (Fig 2(b), Fig 8(b)) — one per victim block
///   collected.
/// * **Request WAF of a small write** (§2, Table 1) — `s_flash / s`, where
///   `s_flash` is the flash space consumed on behalf of the request. A 4 KB
///   write that occupies a 16 KB page alone has WAF 4; a 4 KB write stored
///   in a 4 KB subpage has WAF 1. subFTL's lap migrations and cold/retention
///   evictions are charged to the numerator too, which is why its average
///   sits slightly above 1.0 (Table 1).
#[derive(Debug, Clone, Default)]
pub struct FtlStats {
    /// Host write requests observed.
    pub host_write_requests: u64,
    /// Host sectors written (4 KB units).
    pub host_write_sectors: u64,
    /// Host read requests observed.
    pub host_read_requests: u64,
    /// Host sectors read.
    pub host_read_sectors: u64,
    /// Host small-write requests (shorter than one full page).
    pub small_write_requests: u64,

    /// Flash sectors consumed by host-data programs, **including padding**
    /// (a full-page program always consumes 4 sectors of flash space).
    pub flash_sectors_consumed: u64,
    /// Flash sectors consumed by GC relocation programs.
    pub gc_flash_sectors: u64,

    /// GC invocations (victim blocks collected), total.
    pub gc_invocations: u64,
    /// GC invocations in subFTL's subpage region (subset of total).
    pub gc_subpage_region: u64,
    /// Sectors copied by GC (valid-data relocation).
    pub gc_copied_sectors: u64,
    /// Read-modify-write operations performed (CGM-style partial updates).
    pub rmw_operations: u64,

    /// subFTL: lap migrations of valid subpages to the next subpage level.
    pub lap_migrations: u64,
    /// subFTL: cold subpages evicted to the full-page region during GC.
    pub cold_evictions: u64,
    /// subFTL: subpages evicted because they approached the retention bound.
    pub retention_evictions: u64,
    /// Wear-leveling block swaps between regions.
    pub wear_swaps: u64,
    /// Static wear-leveling migrations: cold (fully/mostly valid) blocks
    /// relocated off lightly-worn blocks so they rejoin the allocation pool.
    pub wear_level_migrations: u64,

    /// Over-provisioning shrink steps: the GC watermark was lowered because
    /// no victim could net free space (end-of-life degradation, step 1).
    pub op_shrinks: u64,
    /// Times the FTL latched into the terminal end-of-life state (at most
    /// once per mount): writes are refused from then on.
    pub end_of_life_trips: u64,
    /// Host write requests refused after the end-of-life latch tripped.
    pub writes_dropped_end_of_life: u64,

    /// Host reads that could not be served (uncorrectable or unmapped data
    /// faults; must stay zero when the FTL is correct).
    pub read_faults: u64,
    /// Read faults whose cause was destruction by a later subpage program
    /// (SBPI corruption reaching the host; subset of `read_faults`).
    pub read_faults_destroyed: u64,
    /// Read faults whose cause was retention/read-disturb BER beyond every
    /// correction rung (subset of `read_faults`).
    pub read_faults_retention: u64,
    /// Read faults whose cause was a torn (power-cut) page that escaped the
    /// mount-time quarantine (subset of `read_faults`).
    pub read_faults_torn: u64,
    /// Read faults forced by the fault-injection hook (subset of
    /// `read_faults`).
    pub read_faults_injected: u64,
    /// Pages or subpages relocated by read-reclaim: a read needed at least
    /// `reclaim_threshold` retry rungs, so the data was rewritten to a fresh
    /// location before it could age past the ladder.
    pub read_reclaims: u64,
    /// Blocks relocated and erased by the read-disturb patrol because their
    /// accumulated sense count approached the ladder's last rung.
    pub disturb_scrubs: u64,
    /// Times the FTL latched into read-only fallback after an uncorrectable
    /// host read (at most once per mount; requires `read_only_on_loss`).
    pub read_only_trips: u64,
    /// Host write requests refused while latched read-only.
    pub writes_dropped_read_only: u64,

    /// Program operations that reported status fail and were retried.
    pub program_failures: u64,
    /// Erase operations that reported status fail (each grows a bad block).
    pub erase_failures: u64,
    /// Blocks retired from service (factory-marked bad at mount plus blocks
    /// grown bad by erase failures).
    pub blocks_retired: u64,
    /// Programs re-issued to a different location after a program failure.
    pub write_retries: u64,
    /// Pages found torn (cut by power loss) by the mount-time scan and
    /// quarantined: read, counted, excluded from the live set.
    pub torn_pages_quarantined: u64,

    /// Accumulated small-write request-WAF numerator (flash sectors
    /// attributed to small writes, including later migrations/evictions).
    pub small_waf_flash_sectors: f64,
    /// Small-write request-WAF denominator (host sectors from small writes).
    pub small_waf_host_sectors: u64,
}

impl FtlStats {
    /// Creates zeroed statistics.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Average request WAF over all small writes (Table 1). Returns 1.0 when
    /// no small writes occurred.
    #[must_use]
    pub fn small_request_waf(&self) -> f64 {
        if self.small_waf_host_sectors == 0 {
            1.0
        } else {
            self.small_waf_flash_sectors / self.small_waf_host_sectors as f64
        }
    }

    /// Overall write amplification: all flash sectors consumed (host +
    /// GC + padding) over host sectors written.
    #[must_use]
    pub fn total_waf(&self) -> f64 {
        if self.host_write_sectors == 0 {
            0.0
        } else {
            (self.flash_sectors_consumed + self.gc_flash_sectors) as f64
                / self.host_write_sectors as f64
        }
    }

    /// Fraction of host writes that were small.
    #[must_use]
    pub fn small_write_fraction(&self) -> f64 {
        if self.host_write_requests == 0 {
            0.0
        } else {
            self.small_write_requests as f64 / self.host_write_requests as f64
        }
    }
}

/// End-of-run snapshot of the device's per-block wear distribution
/// (effective P/E counts over every physical block) plus adaptive-erase
/// activity during the run.
///
/// The distribution is a **snapshot**, not a delta: wear accumulated by
/// preconditioning is part of the device state the run ends with, and the
/// quantity wear leveling bounds — [`WearSummary::delta_pe`] — is only
/// meaningful over absolute counts. `shallow_erases` alone is a per-run
/// delta, like the other `RunReport` device counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WearSummary {
    /// Minimum effective P/E count over all physical blocks.
    pub min_pe: u32,
    /// Maximum effective P/E count over all physical blocks.
    pub max_pe: u32,
    /// Mean effective P/E count over all physical blocks.
    pub mean_pe: f64,
    /// Shallow (reduced-depth) erases performed during the run
    /// (adaptive erase; zero when the feature is off).
    pub shallow_erases: u64,
}

impl WearSummary {
    /// `max - min` effective P/E: the fleet-wide wear spread that static
    /// wear leveling keeps bounded.
    #[must_use]
    pub fn delta_pe(&self) -> u32 {
        self.max_pe - self.min_pe
    }
}

/// The result of replaying one trace through one FTL.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// FTL name ("cgmFTL", "fgmFTL", "subFTL").
    pub ftl: &'static str,
    /// Host requests replayed.
    pub requests: u64,
    /// Simulated makespan (last completion).
    pub makespan: SimTime,
    /// I/O operations per second over the makespan.
    pub iops: f64,
    /// FTL counters at the end of the run.
    pub stats: FtlStats,
    /// Device erase count (lifetime proxy).
    pub erases: u64,
    /// Device program counts (full, subpage).
    pub programs: (u64, u64),
    /// Device reads recovered by the retry ladder (would have been
    /// uncorrectable on the first sense; includes FTL-internal reads).
    pub recovered_reads: u64,
    /// Hard retry-ladder steps the device performed.
    pub retry_steps: u64,
    /// Soft-decode passes the device performed.
    pub soft_decodes: u64,
    /// Host-observed request latencies in nanoseconds (synchronous writes
    /// and reads; asynchronous writes complete in DRAM and are excluded).
    pub latency: Log2Histogram,
    /// Host-observed **read** latencies in nanoseconds, at HDR (≤1/16
    /// relative error) resolution for p50/p95/p99/p999 reporting.
    pub read_latency: HdrHistogram,
    /// Host-observed **synchronous write** latencies in nanoseconds, at HDR
    /// resolution. Asynchronous writes complete in DRAM and are excluded.
    pub write_latency: HdrHistogram,
    /// Arrival → completion **response** times in nanoseconds (host
    /// queueing delay included), for the same samples as the service
    /// histograms. Recorded only for open-arrival traces (at least one
    /// nonzero arrival stamp); empty for closed-loop replays, where
    /// arrival-to-done would measure cumulative makespan instead of
    /// per-request latency.
    pub response_latency: HdrHistogram,
    /// Per-block wear distribution at the end of the run.
    pub wear: WearSummary,
}

impl RunReport {
    /// Median host-observed request latency.
    #[must_use]
    pub fn latency_p50(&self) -> SimDuration {
        SimDuration::from_nanos(self.latency.percentile(0.50))
    }

    /// 99th-percentile host-observed request latency.
    #[must_use]
    pub fn latency_p99(&self) -> SimDuration {
        SimDuration::from_nanos(self.latency.percentile(0.99))
    }

    /// Percentile summary (count/mean/min/max/p50/p95/p99/p999) of
    /// host-observed read latencies, in nanoseconds.
    #[must_use]
    pub fn read_latency_summary(&self) -> LatencySummary {
        self.read_latency.summary()
    }

    /// Percentile summary of host-observed synchronous write latencies, in
    /// nanoseconds.
    #[must_use]
    pub fn write_latency_summary(&self) -> LatencySummary {
        self.write_latency.summary()
    }

    /// Host write bandwidth over the makespan, in MB/s.
    #[must_use]
    pub fn write_bandwidth_mbps(&self) -> f64 {
        let secs = self.makespan.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            (self.stats.host_write_sectors * SECTOR_BYTES) as f64 / 1e6 / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_request_waf_defaults_to_one() {
        assert_eq!(FtlStats::new().small_request_waf(), 1.0);
    }

    #[test]
    fn small_request_waf_ratio() {
        let mut s = FtlStats::new();
        s.small_waf_host_sectors = 10;
        s.small_waf_flash_sectors = 40.0;
        assert!((s.small_request_waf() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn total_waf_counts_gc_and_padding() {
        let mut s = FtlStats::new();
        s.host_write_sectors = 100;
        s.flash_sectors_consumed = 120;
        s.gc_flash_sectors = 30;
        assert!((s.total_waf() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn small_write_fraction() {
        let mut s = FtlStats::new();
        s.host_write_requests = 200;
        s.small_write_requests = 50;
        assert!((s.small_write_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(FtlStats::new().small_write_fraction(), 0.0);
    }

    #[test]
    fn report_bandwidth() {
        let r = RunReport {
            ftl: "test",
            requests: 1,
            makespan: SimTime::from_secs(2),
            iops: 0.5,
            stats: {
                let mut s = FtlStats::new();
                s.host_write_sectors = 1000;
                s
            },
            erases: 0,
            programs: (0, 0),
            recovered_reads: 0,
            retry_steps: 0,
            soft_decodes: 0,
            latency: Log2Histogram::new(),
            read_latency: HdrHistogram::new(),
            write_latency: HdrHistogram::new(),
            response_latency: HdrHistogram::new(),
            wear: WearSummary::default(),
        };
        let mbps = r.write_bandwidth_mbps();
        assert!((mbps - 1000.0 * 4096.0 / 1e6 / 2.0).abs() < 1e-9);
    }
}

//! `subFTL` — the paper's ESP-aware FTL (§4).
//!
//! Flash is split into two regions managed differently:
//!
//! * **Subpage region** (20 % of blocks): small writes land here as 4 KB
//!   erase-free subpage programs, mapped by a fine-grained hash table.
//!   Writing follows the lap policy of Fig 7 — the 0th subpages of all
//!   blocks fill up before any 1st subpage is written; advancing a page to
//!   its next subpage level first migrates the page's valid subpage (if
//!   any) into the new level, so no valid data is ever destroyed. At most
//!   one subpage per physical page is ever valid.
//! * **Full-page region** (80 %): managed exactly like cgmFTL
//!   ([`FullRegionEngine`]).
//!
//! Data placement (§4.1): flushed writes shorter than a full page go to the
//! subpage region; page-aligned 16 KB units go to the full-page region;
//! larger non-multiple writes split. Subpage-region GC (§4.2) relocates
//! updated ("hot") subpages into a reserved block and evicts never-updated
//! ("cold") subpages to the full-page region via RMW. Retention management
//! (§4.3) evicts subpages older than 15 days, comfortably inside the
//! 1-month retention capability the device model guarantees for every
//! `Npp` type.

use esp_nand::{Oob, SubpageAddr};
use esp_sim::{merge_events, EventBuffer, EventSink, SimDuration, SimTime, TraceEvent};
use esp_ssd::Ssd;
use esp_workload::SECTORS_PER_PAGE;

use crate::buffer::{FlushChunk, WriteBuffer};
use crate::config::{EvictionPolicy, FtlConfig};
use crate::full_region::FullRegionEngine;
use crate::gc_policy::{select_victim, GcPolicyKind, SelectOpts, VictimCandidate};
use crate::read_path::{note_read_result, ReadReliability};
use crate::runner::Ftl;
use crate::stats::FtlStats;
use crate::sub_map::{SubEntry, SubpageMap};

/// One block of the subpage region.
#[derive(Debug, Clone)]
struct SubBlock {
    gbi: u32,
    /// Chip the block lives on (for striped allocation).
    chip: u32,
    /// Current lap: the subpage slot index being written (0..N_sub).
    /// `level == N_sub` means the block is exhausted until erased.
    level: u8,
    /// Next page to program within the current lap.
    cursor: u32,
    /// The LSN of the valid subpage held by each page, if any
    /// (invariant: at most one valid subpage per physical page).
    page_valid: Vec<Option<u64>>,
    valid_count: u32,
    /// Handed to the full-page region by wear leveling; never used again.
    retired: bool,
    /// Monotone stamp taken when the block exhausted its last lap
    /// (`level == N_sub`); 0 means "never stamped this mount" (erased, or
    /// recovered — treated as maximally old by age-aware GC policies).
    closed_seq: u64,
}

impl SubBlock {
    fn new(gbi: u32, chip: u32, pages: u32) -> Self {
        SubBlock {
            gbi,
            chip,
            level: 0,
            cursor: 0,
            page_valid: vec![None; pages as usize],
            valid_count: 0,
            retired: false,
            closed_seq: 0,
        }
    }

    fn is_erased(&self) -> bool {
        self.level == 0 && self.cursor == 0 && self.valid_count == 0
    }
}

/// The ESP-aware FTL (the paper's primary contribution).
///
/// # Examples
///
/// ```
/// use esp_core::{Ftl, FtlConfig, SubFtl};
/// use esp_sim::SimTime;
///
/// let mut ftl = SubFtl::new(&FtlConfig::tiny());
/// // A synchronous 4 KB write costs one 4 KB subpage program — request
/// // WAF 1, no internal fragmentation.
/// ftl.write(0, 1, true, SimTime::ZERO);
/// assert!((ftl.stats().small_request_waf() - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct SubFtl {
    ssd: Ssd,
    full: FullRegionEngine,
    blocks: Vec<SubBlock>,
    /// One active (open) block per chip, so subpage programs stripe across
    /// chips (the paper develops subFTL "to maximize I/O parallelism of a
    /// multi-channel architecture", §4.2).
    actives: Vec<Option<u32>>,
    rr: usize,
    /// Erased block reserved so GC relocation can always proceed.
    reserve: u32,
    hash: SubpageMap,
    buffer: WriteBuffer,
    stats: FtlStats,
    seq: u64,
    logical_sectors: u64,
    pages_per_block: u32,
    nsub: u32,
    retention_threshold: SimDuration,
    scan_interval: SimDuration,
    last_scan: SimTime,
    wear_delta: u32,
    /// Device erase count at which the next full-region wear-spread check
    /// runs (the spread only changes on erases, so checks are metered).
    next_wear_check: u64,
    gc_batch: u32,
    eviction: EvictionPolicy,
    background_gc: bool,
    /// Victim-selection policy for subpage-region GC (the full-page
    /// region's engine carries its own copy).
    gc_policy: GcPolicyKind,
    /// Source for [`SubBlock::closed_seq`] stamps; starts at 1 so stamp 0
    /// stays reserved for "never closed".
    closed_seq_counter: u64,
    /// Durability-first variants of lap migration, same-sector overwrite,
    /// and GC/scrub handling of buffer-shadowed copies (see
    /// [`FtlConfig::crash_safe_mode`]).
    crash_safe_mode: bool,
    reliability: ReadReliability,
    /// FTL-level event recorder (host ops, subpage-region GC, lap
    /// migrations); disabled (free) by default.
    trace: EventBuffer,
    /// Reused full-page read buffer and OOB staging for eviction RMW and
    /// grouped host reads, so those hot paths allocate nothing per page.
    slots_scratch: Vec<Result<Oob, esp_nand::ReadFault>>,
    oobs_scratch: Vec<Option<Oob>>,
    chunks_scratch: Vec<FlushChunk>,
}

impl SubFtl {
    /// Builds a subFTL over the configured device, assigning
    /// `subpage_region_fraction` of each chip's blocks to the subpage
    /// region (spreading the region across all channels preserves I/O
    /// parallelism, as the paper notes for its multi-channel design).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`FtlConfig::validate`]).
    #[must_use]
    pub fn new(config: &FtlConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid FTL config: {e}"));
        let ssd = Ssd::with_planes(
            config.geometry.clone(),
            config.timing.clone(),
            config.retention.clone(),
            config.planes_per_chip,
        );
        Self::with_ssd(config, ssd)
    }

    /// Builds the FTL structures over an existing (possibly non-empty)
    /// device with the default region layout; mapping state starts empty —
    /// see [`SubFtl::recover`] for rebuilding it from flash contents.
    pub(crate) fn with_ssd(config: &FtlConfig, mut ssd: Ssd) -> Self {
        if let Some(f) = &config.fault {
            ssd.device_mut().set_faults(f.clone());
        }
        ssd.device_mut()
            .set_retry_ladder(config.retry_ladder.clone());
        ssd.device_mut().set_adaptive_erase(config.adaptive_erase);
        let g = &config.geometry;
        let bpc = g.blocks_per_chip;
        let sub_per_chip =
            ((f64::from(bpc) * config.subpage_region_fraction).round() as u32).clamp(2, bpc - 1);
        let mut sub_gbis = Vec::new();
        let mut full_gbis = Vec::new();
        for chip in 0..g.chip_count() {
            for b in 0..bpc {
                let gbi = chip * bpc + b;
                if b < sub_per_chip {
                    sub_gbis.push(gbi);
                } else {
                    full_gbis.push(gbi);
                }
            }
        }
        let logical_sectors = config.logical_sectors();
        let lpn_count = logical_sectors / u64::from(SECTORS_PER_PAGE);
        let mut full = FullRegionEngine::new(
            full_gbis,
            g.pages_per_block,
            g.blocks_per_chip,
            lpn_count,
            config.gc_free_watermark,
        );
        full.set_wear_leveling(config.wear_leveling);
        full.set_gc_policy(config.gc_policy);
        let blocks: Vec<SubBlock> = sub_gbis
            .iter()
            .map(|&gbi| SubBlock::new(gbi, gbi / bpc, g.pages_per_block))
            .collect();
        let chips = g.chip_count() as usize;
        let mut ftl = SubFtl {
            ssd,
            full,
            blocks,
            actives: vec![None; chips],
            rr: 0,
            reserve: 0,
            hash: SubpageMap::with_capacity(sub_gbis.len() * g.pages_per_block as usize),
            buffer: WriteBuffer::new(config.write_buffer_sectors),
            stats: FtlStats::new(),
            seq: 0,
            logical_sectors,
            pages_per_block: g.pages_per_block,
            nsub: g.subpages_per_page,
            retention_threshold: config.retention_threshold,
            scan_interval: config.retention_scan_interval,
            last_scan: SimTime::ZERO,
            wear_delta: config.wear_delta_threshold,
            next_wear_check: 0,
            gc_batch: config.subpage_gc_batch,
            eviction: config.eviction_policy,
            background_gc: config.background_gc,
            gc_policy: config.gc_policy,
            closed_seq_counter: 1,
            crash_safe_mode: config.crash_safe_mode,
            reliability: ReadReliability::new(config),
            trace: EventBuffer::disabled(),
            slots_scratch: Vec::new(),
            oobs_scratch: Vec::new(),
            chunks_scratch: Vec::new(),
        };
        // Exclude factory-marked and previously grown bad blocks from
        // whichever region owns them; the reserve must stay usable.
        for gbi in ftl.ssd.device().bad_block_indices() {
            if ftl.full.retire_gbi(gbi) {
                ftl.stats.blocks_retired += 1;
            } else if let Some(local) = ftl.blocks.iter().position(|b| b.gbi == gbi && !b.retired) {
                ftl.blocks[local].retired = true;
                ftl.stats.blocks_retired += 1;
            }
        }
        if ftl.blocks[ftl.reserve as usize].retired {
            ftl.reserve =
                ftl.blocks
                    .iter()
                    .position(|b| !b.retired && b.is_erased())
                    .expect("subpage region has no usable reserve block") as u32;
        }
        ftl
    }

    /// Rebuilds a subFTL from the contents of a previously written device
    /// (power-loss recovery).
    ///
    /// Block roles are *inferred from the program pattern* — the paper
    /// decides a block's type "at the program time, not at the design
    /// time" (§4.2): blocks with erase-free subpage programs rebuild as
    /// subpage-region blocks (lap level and cursor reconstructed from
    /// per-page program counts), whole-page-programmed blocks rebuild as
    /// full-page region, and erased blocks are dealt to each region to
    /// restore the configured split. For every sector, the newest readable
    /// copy wins; ties between a subpage copy and a full-page copy go to
    /// the full-page copy (evictions and RMWs carry their source's
    /// sequence number). The `updated` hot/cold flags are not persisted
    /// and restart cold; retention clocks come from the spare-area program
    /// timestamps, so scrubbing deadlines survive the crash.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid, does not match the device's
    /// geometry, or the device's erased blocks cannot supply a GC reserve.
    #[must_use]
    pub fn recover(mut ssd: Ssd, config: &FtlConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid FTL config: {e}"));
        assert_eq!(
            *ssd.geometry(),
            config.geometry,
            "recovery config geometry mismatch"
        );
        if let Some(f) = &config.fault {
            ssd.device_mut().set_faults(f.clone());
        }
        ssd.device_mut()
            .set_retry_ladder(config.retry_ladder.clone());
        ssd.device_mut().set_adaptive_erase(config.adaptive_erase);
        use crate::recovery::{scan_device, ScannedKind};
        let scan = scan_device(&mut ssd);
        let torn_pages = scan.torn_pages;
        let scans = scan.blocks;
        let g = &config.geometry;
        let bpc = g.blocks_per_chip;
        let sub_target =
            ((f64::from(bpc) * config.subpage_region_fraction).round() as u32).clamp(2, bpc - 1);

        // Deal blocks to regions chip by chip: scanned roles are fixed;
        // erased blocks fill the subpage region up to its share first.
        // Bad blocks (factory-marked or grown) join neither region.
        let mut retired = 0u64;
        let mut sub_gbis: Vec<u32> = Vec::new();
        let mut full_gbis: Vec<u32> = Vec::new();
        for chip in 0..g.chip_count() {
            let mut sub_here = 0u32;
            let mut erased_here: Vec<u32> = Vec::new();
            for b in 0..bpc {
                let gbi = chip * bpc + b;
                if ssd.device().is_bad(g.block_addr(gbi)) {
                    retired += 1;
                    continue;
                }
                match scans[gbi as usize].kind {
                    ScannedKind::Subpage => {
                        sub_gbis.push(gbi);
                        sub_here += 1;
                    }
                    ScannedKind::FullPage => full_gbis.push(gbi),
                    ScannedKind::Erased => erased_here.push(gbi),
                }
            }
            for gbi in erased_here {
                if sub_here < sub_target {
                    sub_gbis.push(gbi);
                    sub_here += 1;
                } else {
                    full_gbis.push(gbi);
                }
            }
        }

        let logical_sectors = config.logical_sectors();
        let page_sz = u64::from(SECTORS_PER_PAGE);
        let lpn_count = logical_sectors / page_sz;
        let mut full = FullRegionEngine::new(
            full_gbis.clone(),
            g.pages_per_block,
            bpc,
            lpn_count,
            config.gc_free_watermark,
        );
        full.set_wear_leveling(config.wear_leveling);
        full.set_gc_policy(config.gc_policy);

        // Rebuild subpage-region block skeletons (lap state; validity comes
        // from the winner resolution below).
        let mut blocks: Vec<SubBlock> = sub_gbis
            .iter()
            .map(|&gbi| {
                let mut blk = SubBlock::new(gbi, gbi / bpc, g.pages_per_block);
                let (level, cursor) = scans[gbi as usize].lap_state(g.subpages_per_page);
                blk.level = level;
                blk.cursor = cursor;
                blk
            })
            .collect();

        // Newest copy per sector. Sub candidates carry their location and
        // timestamp; full candidates are resolved per logical page.
        #[derive(Clone, Copy)]
        struct SubCand {
            seq: u64,
            block: u32,
            page: u32,
            slot: u8,
            written_at: SimTime,
        }
        // BTreeMap, not HashMap: these are iterated below, and the order
        // feeds mapping-table construction — recovery must be deterministic.
        let mut sub_best: std::collections::BTreeMap<u64, SubCand> =
            std::collections::BTreeMap::new();
        let mut max_seq = 0u64;
        for (local, &gbi) in sub_gbis.iter().enumerate() {
            for (p, page) in scans[gbi as usize].pages.iter().enumerate() {
                debug_assert!(page.live.len() <= 1, "ESP leaves at most one readable slot");
                for slot in &page.live {
                    max_seq = max_seq.max(slot.seq);
                    if slot.lsn >= logical_sectors {
                        continue;
                    }
                    let cand = SubCand {
                        seq: slot.seq,
                        block: local as u32,
                        page: p as u32,
                        slot: slot.slot,
                        written_at: slot.written_at,
                    };
                    match sub_best.get(&slot.lsn) {
                        Some(prev) if prev.seq >= cand.seq => {}
                        _ => {
                            sub_best.insert(slot.lsn, cand);
                        }
                    }
                }
            }
        }
        // Winning full page per lpn: the *dominating* page. Every flow
        // that reprograms a logical page (direct full write, RMW, cold or
        // retention eviction, GC copy) carries slot-wise greater-or-equal
        // sequence numbers than the page it supersedes (gathered sectors
        // keep their seqs, new sectors get fresh ones), so the pre-crash
        // L2P target is exactly the page whose descending-sorted slot-seq
        // vector is lexicographically greatest. (Neither max slot seq nor
        // spare-area timestamps order programs correctly: gathered slots
        // carry old seqs, and chained GC work makes issue times
        // non-monotone across host writes.)
        fn seq_rank(slot_seqs: &[Option<u64>; 4]) -> [u64; 4] {
            let mut v = [0u64; 4];
            for (i, s) in slot_seqs.iter().enumerate() {
                v[i] = s.map_or(0, |q| q + 1);
            }
            v.sort_unstable_by(|a, b| b.cmp(a));
            v
        }
        type FullCand = ([u64; 4], u32, u32, [Option<u64>; 4]);
        let mut full_best: std::collections::BTreeMap<u64, FullCand> =
            std::collections::BTreeMap::new();
        let mut full_programmed = vec![0u32; full_gbis.len()];
        for (local, &gbi) in full_gbis.iter().enumerate() {
            full_programmed[local] = scans[gbi as usize].programmed_pages();
            for (p, page) in scans[gbi as usize].pages.iter().enumerate() {
                let Some(newest) = page.live.iter().map(|s| s.seq).max() else {
                    continue;
                };
                max_seq = max_seq.max(newest);
                let lpn = page.live[0].lsn / page_sz;
                if lpn >= lpn_count {
                    continue;
                }
                let mut slot_seqs = [None; 4];
                for s in &page.live {
                    slot_seqs[usize::from(s.slot)] = Some(s.seq);
                }
                let rank = seq_rank(&slot_seqs);
                match full_best.get(&lpn) {
                    Some(&(best_rank, ..)) if best_rank >= rank => {}
                    _ => {
                        full_best.insert(lpn, (rank, local as u32, p as u32, slot_seqs));
                    }
                }
            }
        }
        let mappings: Vec<(u64, u32, u32)> = full_best
            .iter()
            .map(|(&lpn, &(_, b, p, _))| (lpn, b, p))
            .collect();
        full.restore_state(&full_programmed, &mappings);

        // Hash entries: subpage copies strictly newer than the full copy of
        // the same sector (ties go to the full-page region).
        let mut hash =
            SubpageMap::with_capacity((sub_gbis.len() * g.pages_per_block as usize).max(1));
        for (&lsn, cand) in &sub_best {
            let full_seq = full_best
                .get(&(lsn / page_sz))
                .and_then(|(_, _, _, slots)| slots[(lsn % page_sz) as usize]);
            if full_seq.is_some_and(|fs| fs >= cand.seq) {
                continue;
            }
            hash.insert(
                lsn,
                SubEntry {
                    block: cand.block,
                    page: cand.page,
                    slot: cand.slot,
                    updated: false,
                    written_at: cand.written_at,
                },
            );
            let blk = &mut blocks[cand.block as usize];
            blk.page_valid[cand.page as usize] = Some(lsn);
            blk.valid_count += 1;
        }

        // A GC reserve must exist: prefer an erased subpage-region block,
        // else pull a fresh block from the full region's free pool. A crash
        // that cut GC mid-copy can leave neither (the reserve is partially
        // programmed and the victim not yet erased): in that case adopt the
        // least-valid subpage block and evacuate it after construction.
        let mut evacuate = false;
        let reserve = match blocks.iter().position(|b| b.is_erased()) {
            Some(i) => i as u32,
            None => match full.donate_free_block(&ssd) {
                Some(gbi) => {
                    blocks.push(SubBlock::new(gbi, gbi / bpc, g.pages_per_block));
                    (blocks.len() - 1) as u32
                }
                None => {
                    evacuate = true;
                    blocks
                        .iter()
                        .enumerate()
                        .filter(|(_, b)| !b.retired)
                        .min_by_key(|(_, b)| b.valid_count)
                        .map(|(i, _)| i)
                        .expect("recovery found no usable subpage block") as u32
                }
            },
        };

        let chips = g.chip_count() as usize;
        let mut stats = FtlStats::new();
        stats.blocks_retired = retired;
        stats.torn_pages_quarantined = torn_pages;
        let mut ftl = SubFtl {
            ssd,
            full,
            blocks,
            actives: vec![None; chips],
            rr: 0,
            reserve,
            hash,
            buffer: WriteBuffer::new(config.write_buffer_sectors),
            stats,
            seq: max_seq,
            logical_sectors,
            pages_per_block: g.pages_per_block,
            nsub: g.subpages_per_page,
            retention_threshold: config.retention_threshold,
            scan_interval: config.retention_scan_interval,
            last_scan: SimTime::ZERO,
            wear_delta: config.wear_delta_threshold,
            next_wear_check: 0,
            gc_batch: config.subpage_gc_batch,
            eviction: config.eviction_policy,
            background_gc: config.background_gc,
            gc_policy: config.gc_policy,
            closed_seq_counter: 1,
            crash_safe_mode: config.crash_safe_mode,
            reliability: ReadReliability::new(config),
            trace: EventBuffer::disabled(),
            slots_scratch: Vec::new(),
            oobs_scratch: Vec::new(),
            chunks_scratch: Vec::new(),
        };
        if evacuate {
            ftl.evacuate_reserve();
        }
        ftl
    }

    /// Finishes an interrupted GC at mount time: the adopted reserve block
    /// still holds live subpages (no erased block survived the crash), so
    /// every one of them is evicted to the full-page region and the block
    /// is erased. Charged to the simulated clock as part of the mount.
    fn evacuate_reserve(&mut self) {
        let victim = self.reserve;
        let mut now = self.ssd.makespan();
        let mut items: Vec<(u64, Oob)> = Vec::new();
        for page in 0..self.pages_per_block {
            let Some(lsn) = self.blocks[victim as usize].page_valid[page as usize] else {
                continue;
            };
            let entry = self.hash.get(lsn).expect("page_valid implies mapping");
            let (r, rt) = self
                .ssd
                .read_subpage(self.sub_addr(victim, page, entry.slot), now);
            now = rt;
            note_read_result(&r, lsn, &mut self.stats);
            match r {
                Ok(oob) => items.push((lsn, oob)),
                Err(_) => self.invalidate_sub(lsn),
            }
        }
        // evict_to_full wants one logical page per batch.
        items.sort_unstable_by_key(|&(lsn, _)| lsn);
        let page_sz = u64::from(SECTORS_PER_PAGE);
        let mut i = 0;
        while i < items.len() {
            let lpn = items[i].0 / page_sz;
            let j = items[i..]
                .iter()
                .position(|(l, _)| l / page_sz != lpn)
                .map_or(items.len(), |k| i + k);
            now = self.evict_to_full(&items[i..j], now);
            i = j;
        }
        if self.blocks[victim as usize].valid_count > 0 {
            // The full-page region could not absorb every eviction (the
            // device is near death): keep the survivors where they are and
            // find a different reserve instead of erasing sole copies.
            self.replace_reserve();
            return;
        }
        let gbi = self.blocks[victim as usize].gbi;
        match self.ssd.erase(self.ssd.geometry().block_addr(gbi), now) {
            Ok(_) => {
                let vblk = &mut self.blocks[victim as usize];
                vblk.level = 0;
                vblk.cursor = 0;
                vblk.page_valid.fill(None);
                vblk.closed_seq = 0;
            }
            Err(f) if f.error == esp_nand::NandError::EraseFailed => {
                let vblk = &mut self.blocks[victim as usize];
                vblk.retired = true;
                vblk.page_valid.fill(None);
                self.stats.erase_failures += 1;
                self.stats.blocks_retired += 1;
                self.replace_reserve();
            }
            Err(f) => panic!("erase managed block: {f}"),
        }
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    fn sub_addr(&self, block: u32, page: u32, slot: u8) -> SubpageAddr {
        let gbi = self.blocks[block as usize].gbi;
        self.ssd.geometry().block_addr(gbi).page(page).subpage(slot)
    }

    /// Number of live entries in the subpage-region hash table.
    #[must_use]
    pub fn subpage_entries(&self) -> usize {
        self.hash.len()
    }

    /// Probe-length statistics of the subpage-region hash table (§4.2:
    /// "without being severely affected by hash collisions").
    #[must_use]
    pub fn subpage_map_probes(&self) -> crate::sub_map::ProbeStats {
        self.hash.probe_stats()
    }

    pub(crate) fn ssd_mut(&mut self) -> &mut Ssd {
        &mut self.ssd
    }

    /// Allocation-state digest for the crash harness's idempotence check:
    /// subpage-region lap state (level/cursor/occupancy/retirement per
    /// block), reserve and active blocks, plus the full region's own
    /// fingerprint. Simulated times are excluded: two mounts of the same
    /// flash image happen at different clocks but must land in the same
    /// state.
    pub(crate) fn pool_fingerprint(&self) -> Vec<u64> {
        // Keyed by device-global block index (see
        // `FullRegionEngine::pool_fingerprint`): local positions are a
        // mount artifact, and retired blocks drop out on a remount.
        let mut out = Vec::new();
        out.push(u64::from(self.blocks[self.reserve as usize].gbi));
        for a in &self.actives {
            out.push(a.map_or(u64::MAX - 1, |b| u64::from(self.blocks[b as usize].gbi)));
        }
        out.push(u64::MAX);
        let mut live: Vec<[u64; 4]> = self
            .blocks
            .iter()
            .filter(|b| !b.retired)
            .map(|b| {
                [
                    u64::from(b.gbi),
                    u64::from(b.level),
                    u64::from(b.cursor),
                    u64::from(b.valid_count),
                ]
            })
            .collect();
        live.sort_unstable();
        for b in live {
            out.extend(b);
        }
        out.push(u64::MAX);
        out.extend(self.full.pool_fingerprint());
        out
    }

    /// Drops the subpage-region mapping for `lsn`, freeing its slot.
    fn invalidate_sub(&mut self, lsn: u64) {
        if let Some(e) = self.hash.remove(lsn) {
            let blk = &mut self.blocks[e.block as usize];
            debug_assert_eq!(blk.page_valid[e.page as usize], Some(lsn));
            blk.page_valid[e.page as usize] = None;
            blk.valid_count -= 1;
        }
    }

    /// Stamps `closed_seq` once a block exhausts its last lap. Idempotent
    /// (a stamped block keeps its first stamp) and policy-independent:
    /// greedy ignores the stamps entirely, so running them unconditionally
    /// leaves default behavior bit-identical.
    fn note_closed(&mut self, b: u32) {
        let nsub = self.nsub;
        let blk = &mut self.blocks[b as usize];
        if u32::from(blk.level) >= nsub && blk.closed_seq == 0 {
            blk.closed_seq = self.closed_seq_counter;
            self.closed_seq_counter += 1;
        }
    }

    /// Consumes the active block's current slot position.
    fn advance_cursor(&mut self, b: u32) {
        let pages = self.pages_per_block;
        let chip = self.blocks[b as usize].chip as usize;
        let blk = &mut self.blocks[b as usize];
        blk.cursor += 1;
        if blk.cursor == pages {
            blk.level += 1;
            blk.cursor = 0;
            if self.actives[chip] == Some(b) {
                self.actives[chip] = None;
            }
            self.note_closed(b);
        }
    }

    /// Picks the next block to write on `chip`: lowest lap level first (so
    /// 0th subpages across all blocks fill before any 1st subpage — Fig 7),
    /// then fewest valid subpages (so lap advancement causes the fewest
    /// migrations — §4.2).
    fn select_next_active_on(&self, chip: usize) -> Option<u32> {
        self.blocks
            .iter()
            .enumerate()
            .filter(|(i, b)| {
                !b.retired
                    && *i as u32 != self.reserve
                    && b.chip as usize == chip
                    && u32::from(b.level) < self.nsub
            })
            .min_by_key(|(_, b)| (b.level, b.valid_count))
            .map(|(i, _)| i as u32)
    }

    /// True if any chip still has a writable (non-exhausted) block.
    fn any_writable(&self) -> bool {
        self.blocks
            .iter()
            .enumerate()
            .any(|(i, b)| !b.retired && i as u32 != self.reserve && u32::from(b.level) < self.nsub)
    }

    /// True while the GC reserve is an erased, in-service block — the
    /// precondition for running subpage-region GC at all.
    fn reserve_usable(&self) -> bool {
        let r = &self.blocks[self.reserve as usize];
        !r.retired && r.is_erased()
    }

    /// Returns a block with a writable slot, preferring a different chip
    /// than the previous write (striping) and garbage-collecting if the
    /// region is exhausted. Returns `None` when the region can no longer
    /// produce a slot (end of life): no writable block exists, no victim
    /// can be collected, or the GC reserve was lost and not replaceable.
    ///
    /// GC reclaims a *batch* of blocks before writing resumes: with several
    /// blocks back in rotation, consecutive laps of any one block are
    /// separated by writes to the others, giving hot subpages time to be
    /// overwritten instead of lap-migrated.
    fn ensure_sub_slot(&mut self, issue: SimTime) -> Option<(u32, SimTime)> {
        let mut now = issue;
        loop {
            let chips = self.actives.len();
            for i in 0..chips {
                let chip = (self.rr + i) % chips;
                if self.actives[chip].is_none() {
                    self.actives[chip] = self.select_next_active_on(chip);
                }
                if let Some(b) = self.actives[chip] {
                    debug_assert!(u32::from(self.blocks[b as usize].level) < self.nsub);
                    self.rr = chip + 1;
                    return Some((b, now));
                }
            }
            if self.ssd.halted() {
                // Power is cut: programs and erases are no-ops from here
                // on, so GC can never free a slot — bail out instead of
                // re-collecting the same victims forever. The caller must
                // treat this as a dropped in-flight request, not wear-out.
                return None;
            }
            if self.reliability.end_of_life() || !self.reserve_usable() {
                return None;
            }
            if !self.has_exhausted_block() {
                // Nothing writable and nothing to collect: the region is
                // wedged (end of life), degrade instead of panicking.
                return None;
            }
            let batch = if self.gc_batch == 0 {
                self.blocks.len() as u32
            } else {
                self.gc_batch
            };
            // Reclaim a batch of *profitable* victims (at most half their
            // pages still valid) so that several blocks re-enter the write
            // rotation at once: with laps of different blocks interleaved,
            // hot subpages are overwritten between laps instead of being
            // migrated at every lap. Dense blocks stay parked until their
            // entries go stale. At least one victim (the min-valid block)
            // is always collected so progress is guaranteed.
            let mut collected = 0u32;
            while collected < batch && self.has_exhausted_block() && self.reserve_usable() {
                let profitable = self.min_valid_exhausted() <= self.pages_per_block / 2;
                if collected > 0 && !profitable {
                    break;
                }
                now = self.sub_gc(now);
                collected += 1;
            }
            if !self.any_writable() {
                if self.has_exhausted_block() && self.reserve_usable() {
                    now = self.sub_gc(now);
                } else if collected == 0 {
                    // No progress is possible: every surviving block is
                    // retired, reserved, or stuck with unevictable data.
                    return None;
                }
            }
        }
    }

    fn min_valid_exhausted(&self) -> u32 {
        self.blocks
            .iter()
            .enumerate()
            .filter(|(i, b)| {
                !b.retired
                    && *i as u32 != self.reserve
                    && !self.actives.contains(&Some(*i as u32))
                    && u32::from(b.level) == self.nsub
            })
            .map(|(_, b)| b.valid_count)
            .min()
            .unwrap_or(u32::MAX)
    }

    fn has_exhausted_block(&self) -> bool {
        self.blocks.iter().enumerate().any(|(i, b)| {
            !b.retired
                && i as u32 != self.reserve
                && !self.actives.contains(&Some(i as u32))
                && u32::from(b.level) == self.nsub
        })
    }

    /// Writes one sector into the subpage region (the loop of Fig 7:
    /// migrate the target page's valid subpage forward if it has one, then
    /// place the new data in the next free slot).
    fn write_sector_to_sub(&mut self, lsn: u64, small_origin: bool, issue: SimTime) -> SimTime {
        let mut now = issue;
        loop {
            let Some((b, t)) = self.ensure_sub_slot(now) else {
                // End of life: no subpage slot can be produced. Drop the
                // write (any previously mapped copy stays valid) and latch
                // the refusal so subsequent writes are dropped up front.
                // A power cut mid-write is not wear-out: the request is
                // simply lost with the rest of the in-flight state.
                if !self.ssd.halted() {
                    self.reliability.latch_end_of_life(&mut self.stats);
                }
                return now;
            };
            now = t;
            let (page, slot) = {
                let blk = &self.blocks[b as usize];
                (blk.cursor, blk.level)
            };
            let addr = self.sub_addr(b, page, slot);
            let occupant = self.blocks[b as usize].page_valid[page as usize];
            match occupant {
                Some(old_lsn) if old_lsn == lsn && !self.crash_safe_mode => {
                    // The page's valid subpage is an older version of the very
                    // sector being written: it is dead on arrival, no
                    // migration needed. (In crash-safe mode the generic arm
                    // below evicts it instead — reprogramming its own page
                    // would destroy the only durable copy if power dies
                    // before the new data lands.)
                    self.invalidate_sub(lsn);
                    continue;
                }
                Some(old_lsn) => {
                    // Lap migration: move the page's valid subpage into this
                    // slot before the program would destroy it (Fig 7(c)).
                    let entry = self.hash.get(old_lsn).expect("page_valid implies mapping");
                    debug_assert!(entry.block == b && entry.page == page);
                    let (r, rt) = self
                        .ssd
                        .read_subpage(self.sub_addr(b, page, entry.slot), now);
                    now = rt;
                    match r {
                        Ok(oob) if self.crash_safe_mode => {
                            // Crash-safe mode: the in-place migration below
                            // would re-program the occupant's own page — if
                            // power dies mid-pulse, the only durable copy is
                            // destroyed (Fig 4(b)). Relocate it to the
                            // full-page region instead: the old subpage stays
                            // intact until the full-page copy completes, and
                            // the freed slot takes the new data on the next
                            // iteration. The cursor is *not* advanced.
                            self.stats.lap_migrations += 1;
                            let at = now.as_nanos();
                            self.trace.emit(|| {
                                TraceEvent::new(at, "sub.lap_migration")
                                    .tag("to_full")
                                    .field("lsn", old_lsn)
                                    .field("block", u64::from(b))
                            });
                            now = self.evict_to_full(&[(old_lsn, oob)], now);
                            if self.reliability.end_of_life() {
                                // The full-page region could not take the
                                // relocation: the occupant keeps its slot,
                                // so retrying would spin on the same page
                                // forever. Drop the incoming write instead
                                // (the refusal is already latched).
                                return now;
                            }
                        }
                        Ok(oob) => match self.ssd.program_subpage(addr, oob, now) {
                            Ok(done) => {
                                now = done;
                                let updated_ok = self.hash.update(old_lsn, |e| {
                                    e.slot = slot;
                                    e.written_at = now;
                                });
                                debug_assert!(updated_ok, "checked above");
                                self.stats.lap_migrations += 1;
                                let at = now.as_nanos();
                                self.trace.emit(|| {
                                    TraceEvent::new(at, "sub.lap_migration")
                                        .tag("in_place")
                                        .field("lsn", old_lsn)
                                        .field("block", u64::from(b))
                                });
                                self.stats.gc_flash_sectors += 1;
                                self.stats.small_waf_flash_sectors += 1.0;
                                self.advance_cursor(b);
                            }
                            Err(f) if f.error == esp_nand::NandError::ProgramFailed => {
                                // The failed attempt still destroyed the old
                                // copy (it shares the page, so SBPI wiped it):
                                // salvage the data we hold in `oob` by moving
                                // it to the full-page region, and skip past
                                // the burned slot.
                                self.stats.program_failures += 1;
                                self.stats.write_retries += 1;
                                now = f.at;
                                self.advance_cursor(b);
                                now = self.evict_to_full(&[(old_lsn, oob)], now);
                            }
                            Err(f) => panic!("lap slot is programmable: {f}"),
                        },
                        Err(f) => {
                            // Unreadable (must not happen when scrubbing is
                            // on schedule): drop the data, reuse the slot.
                            note_read_result(&Err(f), old_lsn, &mut self.stats);
                            self.invalidate_sub(old_lsn);
                        }
                    }
                    continue;
                }
                None => {
                    let seq = self.next_seq();
                    match self.ssd.program_subpage(addr, Oob { lsn, seq }, now) {
                        Ok(done) => {
                            now = done;
                            let updated = self.hash.contains(lsn);
                            if updated {
                                self.invalidate_sub(lsn);
                            }
                            self.hash.insert(
                                lsn,
                                SubEntry {
                                    block: b,
                                    page,
                                    slot,
                                    updated,
                                    written_at: now,
                                },
                            );
                            let blk = &mut self.blocks[b as usize];
                            blk.page_valid[page as usize] = Some(lsn);
                            blk.valid_count += 1;
                            self.advance_cursor(b);
                            self.stats.flash_sectors_consumed += 1;
                            if small_origin {
                                self.stats.small_waf_flash_sectors += 1.0;
                            }
                            return now;
                        }
                        Err(f) if f.error == esp_nand::NandError::ProgramFailed => {
                            // Nothing was lost (the slot held no valid data):
                            // skip the burned slot and retry on the next one.
                            self.stats.program_failures += 1;
                            self.stats.write_retries += 1;
                            now = f.at;
                            self.advance_cursor(b);
                        }
                        Err(f) => panic!("allocated slot is programmable: {f}"),
                    }
                }
            }
        }
    }

    /// Picks the subpage-region GC victim among exhausted blocks via the
    /// configured [`GcPolicyKind`], with the wear-leveling slack re-rank
    /// composed on top (see [`crate::select_victim`]).
    fn pick_sub_victim(&self) -> Option<u32> {
        let wear_leveling = self.full.wear_leveling();
        let candidates: Vec<VictimCandidate> = self
            .blocks
            .iter()
            .enumerate()
            .filter(|(i, b)| {
                !b.retired
                    && *i as u32 != self.reserve
                    && !self.actives.contains(&Some(*i as u32))
                    && u32::from(b.level) == self.nsub
            })
            .map(|(i, b)| VictimCandidate {
                index: i as u32,
                valid: b.valid_count,
                capacity: self.pages_per_block,
                age: self.closed_seq_counter.saturating_sub(b.closed_seq),
                wear: if wear_leveling {
                    self.ssd
                        .device()
                        .effective_pe(self.ssd.geometry().block_addr(b.gbi))
                } else {
                    0
                },
            })
            .collect();
        select_victim(
            self.gc_policy,
            SelectOpts::subpage(wear_leveling),
            &candidates,
        )
    }

    /// Subpage-region garbage collection (§4.2): pick the block with the
    /// fewest valid subpages, move updated (hot) subpages into the reserved
    /// block, evict never-updated (cold) subpages to the full-page region,
    /// erase, and hand the erased block over as the new reserve.
    fn sub_gc(&mut self, issue: SimTime) -> SimTime {
        let victim = self.pick_sub_victim().unwrap_or_else(|| {
            // Fallback (GC forced while non-exhausted blocks remain,
            // e.g. from tests): any non-reserve block with the fewest
            // valid subpages.
            self.blocks
                .iter()
                .enumerate()
                .filter(|(i, b)| {
                    !b.retired
                        && *i as u32 != self.reserve
                        && !self.actives.contains(&Some(*i as u32))
                })
                .min_by_key(|(_, b)| b.valid_count)
                .map(|(i, _)| i as u32)
                .expect("subpage region has no GC victim")
        });
        self.sub_gc_victim(victim, issue)
    }

    /// Collects one specific subpage-region block: hot subpages move to the
    /// reserve, cold ones to the full-page region, then the victim is
    /// erased and becomes the new reserve. Shared by normal GC (min-valid
    /// victim) and static wear leveling (coldest parked block).
    fn sub_gc_victim(&mut self, victim: u32, issue: SimTime) -> SimTime {
        self.stats.gc_invocations += 1;
        self.stats.gc_subpage_region += 1;
        let valid = self.blocks[victim as usize].valid_count;
        self.trace.emit(|| {
            TraceEvent::new(issue.as_nanos(), "gc.collect")
                .tag("sub")
                .field("block", u64::from(victim))
                .field("valid_subpages", u64::from(valid))
        });
        let mut now = issue;
        let reserve = self.reserve;
        debug_assert!(self.blocks[reserve as usize].is_erased());
        for page in 0..self.pages_per_block {
            let Some(lsn) = self.blocks[victim as usize].page_valid[page as usize] else {
                continue;
            };
            if self.buffer.contains(lsn) && !self.crash_safe_mode {
                // A newer version is waiting in DRAM; the flash copy is
                // already garbage. (Crash-safe mode relocates it anyway: the
                // DRAM copy is volatile, so until the buffer flushes this
                // flash copy is the sector's only durable version.)
                self.invalidate_sub(lsn);
                continue;
            }
            let entry = self.hash.get(lsn).expect("page_valid implies mapping");
            let (r, rt) = self
                .ssd
                .read_subpage(self.sub_addr(victim, page, entry.slot), now);
            now = rt;
            note_read_result(&r, lsn, &mut self.stats);
            let oob = match r {
                Ok(oob) => oob,
                Err(_) => {
                    self.invalidate_sub(lsn);
                    continue;
                }
            };
            let keep = match self.eviction {
                EvictionPolicy::SecondChance | EvictionPolicy::KeepUpdatedForever => entry.updated,
                EvictionPolicy::EvictAll => false,
                EvictionPolicy::KeepAll => true,
            };
            if keep {
                // Hot: keep in the subpage region. If burned program
                // attempts exhausted the reserve's level-0 slots, fall back
                // to a full-page eviction rather than wrapping the lap.
                if self.blocks[reserve as usize].level != 0 {
                    now = self.evict_to_full(&[(lsn, oob)], now);
                    self.stats.cold_evictions += 1;
                    continue;
                }
                let rp = self.blocks[reserve as usize].cursor;
                debug_assert!(rp < self.pages_per_block);
                let raddr = self.sub_addr(reserve, rp, 0);
                match self.ssd.program_subpage(raddr, oob, now) {
                    Ok(done) => {
                        now = done;
                        self.invalidate_sub(lsn);
                        let updated = match self.eviction {
                            EvictionPolicy::SecondChance | EvictionPolicy::EvictAll => false,
                            EvictionPolicy::KeepUpdatedForever | EvictionPolicy::KeepAll => {
                                entry.updated
                            }
                        };
                        self.hash.insert(
                            lsn,
                            SubEntry {
                                block: reserve,
                                page: rp,
                                slot: 0,
                                updated,
                                written_at: now,
                            },
                        );
                        let pages = self.pages_per_block;
                        let rblk = &mut self.blocks[reserve as usize];
                        rblk.page_valid[rp as usize] = Some(lsn);
                        rblk.valid_count += 1;
                        rblk.cursor += 1;
                        if rblk.cursor == pages {
                            rblk.level = 1;
                            rblk.cursor = 0;
                            self.note_closed(reserve);
                        }
                        self.stats.gc_copied_sectors += 1;
                        self.stats.gc_flash_sectors += 1;
                        self.stats.small_waf_flash_sectors += 1.0;
                    }
                    Err(f) if f.error == esp_nand::NandError::ProgramFailed => {
                        // Burn the reserve slot and route this sector to the
                        // full-page region instead (the copy in `oob` is the
                        // only remaining one).
                        self.stats.program_failures += 1;
                        self.stats.write_retries += 1;
                        now = f.at;
                        let pages = self.pages_per_block;
                        let rblk = &mut self.blocks[reserve as usize];
                        rblk.cursor += 1;
                        if rblk.cursor == pages {
                            rblk.level = 1;
                            rblk.cursor = 0;
                            self.note_closed(reserve);
                        }
                        now = self.evict_to_full(&[(lsn, oob)], now);
                    }
                    Err(f) => panic!("reserve slot is erased: {f}"),
                }
            } else {
                // Cold: evict to the full-page region.
                now = self.evict_to_full(&[(lsn, oob)], now);
                self.stats.cold_evictions += 1;
            }
        }
        if self.blocks[victim as usize].valid_count > 0 {
            // The full-page region ran out of space mid-eviction: the
            // remaining subpages are sole copies, so the victim must not
            // be erased. Callers observe the end-of-life latch and stop.
            return now;
        }
        let gbi = self.blocks[victim as usize].gbi;
        match self.ssd.erase(self.ssd.geometry().block_addr(gbi), now) {
            Ok(done) => {
                now = done;
                let vblk = &mut self.blocks[victim as usize];
                vblk.level = 0;
                vblk.cursor = 0;
                vblk.page_valid.fill(None);
                vblk.closed_seq = 0;
                self.reserve = victim;
            }
            Err(f) if f.error == esp_nand::NandError::EraseFailed => {
                // The victim is a grown bad block: retire it and find a
                // replacement reserve (live data was already moved out).
                now = f.at;
                let vblk = &mut self.blocks[victim as usize];
                vblk.retired = true;
                vblk.page_valid.fill(None);
                self.stats.erase_failures += 1;
                self.stats.blocks_retired += 1;
                self.replace_reserve();
            }
            Err(f) => panic!("erase managed block: {f}"),
        }
        self.maybe_wear_swap();
        now
    }

    /// Repoints `self.reserve` at an erased, usable block after the intended
    /// replacement was lost to an erase failure: keep the current reserve if
    /// it is still untouched, else adopt any erased managed block, else pull
    /// a fresh block from the full-page region.
    fn replace_reserve(&mut self) {
        let cur = &self.blocks[self.reserve as usize];
        if !cur.retired && cur.is_erased() {
            return;
        }
        let erased = self.blocks.iter().enumerate().position(|(i, b)| {
            !b.retired && b.is_erased() && !self.actives.contains(&Some(i as u32))
        });
        if let Some(i) = erased {
            self.reserve = i as u32;
            return;
        }
        match self.full.donate_coldest_free_block(&self.ssd) {
            Some(gbi) => {
                let chip = gbi / self.ssd.geometry().blocks_per_chip;
                self.blocks
                    .push(SubBlock::new(gbi, chip, self.pages_per_block));
                self.reserve = (self.blocks.len() - 1) as u32;
            }
            None => {
                // No erased block exists anywhere: the GC reserve is gone
                // for good and the drive is at end of life. The reserve
                // stays unusable, and writes degrade to typed refusal.
                self.reliability.latch_end_of_life(&mut self.stats);
            }
        }
    }

    /// Writes the freshest copies of the given subpage-region sectors (all
    /// belonging to one logical page) into the full-page region via RMW,
    /// then drops their subpage-region mappings.
    fn evict_to_full(&mut self, items: &[(u64, Oob)], issue: SimTime) -> SimTime {
        debug_assert!(!items.is_empty());
        let page = u64::from(SECTORS_PER_PAGE);
        let lpn = items[0].0 / page;
        debug_assert!(items.iter().all(|(l, _)| l / page == lpn));
        self.oobs_scratch.clear();
        self.oobs_scratch.resize(SECTORS_PER_PAGE as usize, None);
        for (lsn, oob) in items {
            self.oobs_scratch[(lsn % page) as usize] = Some(*oob);
        }
        let mut now = issue;
        if let Some(ptr) = self.full.lookup(lpn) {
            // Merge the remaining sectors from the existing full page.
            let addr = self.full.page_addr(ptr, &self.ssd);
            now = self.ssd.read_full_into(addr, now, &mut self.slots_scratch);
            for (slot, r) in self.slots_scratch.iter().enumerate() {
                if self.oobs_scratch[slot].is_none() {
                    if let Ok(o) = r {
                        self.oobs_scratch[slot] = Some(*o);
                    }
                }
            }
            self.stats.rmw_operations += 1;
        }
        now = match self.full.try_program_page(
            lpn,
            &self.oobs_scratch,
            &mut self.ssd,
            &mut self.stats,
            now,
        ) {
            Ok(t) => t,
            Err(_) => {
                // Full-page region exhausted: the subpage copies are sole
                // copies, so they stay mapped; writes degrade to refusal.
                self.reliability.latch_end_of_life(&mut self.stats);
                return now;
            }
        };
        for (lsn, _) in items {
            self.invalidate_sub(*lsn);
        }
        // The whole 16 KB page was consumed on behalf of small data.
        self.stats.small_waf_flash_sectors += f64::from(SECTORS_PER_PAGE);
        now
    }

    /// Swaps an over-worn erased subpage-region block with a fresh block
    /// from the full-page region ("converting subpage blocks to full-page
    /// ones ... can be done by swapping", §4.2).
    /// Static wear leveling for the subpage region: a block packed with
    /// valid, never-updated subpages is invisible to normal sub GC
    /// (min-valid victim picks never reach it), so cold data can pin a
    /// lightly-worn block forever. When the fleet-wide effective-wear
    /// spread exceeds the threshold, the coldest such parked block is
    /// force-collected — its data moves on and the block rejoins the erase
    /// rotation. At most one block per call; metered from `maintain`.
    fn sub_wear_rotate(&mut self, issue: SimTime) -> SimTime {
        if !self.full.wear_leveling()
            || self.reliability.end_of_life()
            || self.ssd.halted()
            || !self.reserve_usable()
        {
            return issue;
        }
        let pe = |gbi: u32| {
            self.ssd
                .device()
                .effective_pe(self.ssd.geometry().block_addr(gbi))
        };
        let mut max_pe = self
            .full
            .wear_spread(&self.ssd)
            .map(|(_, hi)| hi)
            .unwrap_or(0);
        for b in self.blocks.iter().filter(|b| !b.retired) {
            max_pe = max_pe.max(pe(b.gbi));
        }
        let cold = self
            .blocks
            .iter()
            .enumerate()
            .filter(|(i, b)| {
                !b.retired
                    && *i as u32 != self.reserve
                    && !self.actives.contains(&Some(*i as u32))
                    && u32::from(b.level) == self.nsub
            })
            .min_by_key(|(_, b)| pe(b.gbi))
            .map(|(i, _)| i as u32);
        let Some(victim) = cold else { return issue };
        if max_pe.saturating_sub(pe(self.blocks[victim as usize].gbi)) <= self.wear_delta {
            return issue;
        }
        self.stats.wear_level_migrations += 1;
        self.sub_gc_victim(victim, issue)
    }

    fn maybe_wear_swap(&mut self) {
        if self.full.wear_leveling() {
            // The freshly-erased GC victim becomes the reserve immediately,
            // so an idle erased block is rare; with wear leveling on, the
            // reserve itself is a swap candidate (it is erased by
            // definition, and the fresh block takes over reserve duty).
            // The exchange is transactional — the worn block enters the
            // full-region pool in the same step the fresh one leaves — so
            // it works even with the full region sitting at its GC
            // watermark, which is where a steady churn keeps it.
            let candidate = self
                .blocks
                .iter()
                .enumerate()
                .filter(|(i, b)| {
                    !b.retired && !self.actives.contains(&Some(*i as u32)) && b.is_erased()
                })
                .max_by_key(|(_, b)| {
                    self.ssd
                        .device()
                        .effective_pe(self.ssd.geometry().block_addr(b.gbi))
                })
                .map(|(i, _)| i as u32);
            let Some(idx) = candidate else { return };
            let worn_gbi = self.blocks[idx as usize].gbi;
            let Some(fresh_gbi) = self
                .full
                .swap_free_block(worn_gbi, self.wear_delta, &self.ssd)
            else {
                return;
            };
            self.blocks[idx as usize].retired = true;
            let chip = fresh_gbi / self.ssd.geometry().blocks_per_chip;
            self.blocks
                .push(SubBlock::new(fresh_gbi, chip, self.pages_per_block));
            if idx == self.reserve {
                self.reserve = (self.blocks.len() - 1) as u32;
            }
            self.stats.wear_swaps += 1;
            return;
        }
        // Seed behavior (wear leveling off): only a spare erased block —
        // never the reserve — is a candidate, and the exchange defers to
        // the full region's watermark-guarded donation.
        let Some(full_pe) = self.full.coldest_free_pe(&self.ssd) else {
            return;
        };
        let candidate = self
            .blocks
            .iter()
            .enumerate()
            .filter(|(i, b)| {
                !b.retired
                    && *i as u32 != self.reserve
                    && !self.actives.contains(&Some(*i as u32))
                    && b.is_erased()
            })
            .max_by_key(|(_, b)| {
                self.ssd
                    .device()
                    .effective_pe(self.ssd.geometry().block_addr(b.gbi))
            })
            .map(|(i, _)| i as u32);
        let Some(idx) = candidate else { return };
        let sub_pe = self.ssd.device().effective_pe(
            self.ssd
                .geometry()
                .block_addr(self.blocks[idx as usize].gbi),
        );
        if sub_pe <= full_pe + self.wear_delta {
            return;
        }
        let Some(fresh_gbi) = self.full.donate_coldest_free_block(&self.ssd) else {
            return;
        };
        let worn_gbi = self.blocks[idx as usize].gbi;
        self.blocks[idx as usize].retired = true;
        let chip = fresh_gbi / self.ssd.geometry().blocks_per_chip;
        self.blocks
            .push(SubBlock::new(fresh_gbi, chip, self.pages_per_block));
        self.full.adopt_free_block(worn_gbi);
        self.stats.wear_swaps += 1;
    }

    /// ESP-aware data placement (§4.1): page-aligned 16 KB units of a flush
    /// chunk go to the full-page region; the small head/tail residue and
    /// chunks shorter than a page go to the subpage region.
    fn flush_chunks(&mut self, chunks: &mut Vec<FlushChunk>, issue: SimTime) -> SimTime {
        let page = u64::from(SECTORS_PER_PAGE);
        let mut done = issue;
        for chunk in chunks.drain(..) {
            let (lo, hi) = (chunk.start_lsn, chunk.end_lsn());
            let aligned_lo = lo.div_ceil(page) * page;
            let aligned_hi = (hi / page) * page;
            let origin = |lsn: u64| -> bool { chunk.origins[(lsn - chunk.start_lsn) as usize] };
            if aligned_lo + page <= aligned_hi {
                for lsn in lo..aligned_lo {
                    done = done.max(self.write_sector_to_sub(lsn, origin(lsn), issue));
                }
                for lpn in aligned_lo / page..aligned_hi / page {
                    self.oobs_scratch.clear();
                    for slot in 0..u64::from(SECTORS_PER_PAGE) {
                        let seq = self.next_seq();
                        self.oobs_scratch.push(Some(Oob {
                            lsn: lpn * page + slot,
                            seq,
                        }));
                    }
                    let t = match self.full.try_program_page(
                        lpn,
                        &self.oobs_scratch,
                        &mut self.ssd,
                        &mut self.stats,
                        issue,
                    ) {
                        Ok(t) => t,
                        Err(_) => {
                            // End of life: the flush has nowhere to land;
                            // older copies (full or subpage) stay mapped.
                            self.reliability.latch_end_of_life(&mut self.stats);
                            continue;
                        }
                    };
                    done = done.max(t);
                    for slot in 0..page {
                        let lsn = lpn * page + slot;
                        // The full page now holds the newest copy.
                        self.invalidate_sub(lsn);
                        if origin(lsn) {
                            self.stats.small_waf_flash_sectors += 1.0;
                        }
                    }
                }
                for lsn in aligned_hi..hi {
                    done = done.max(self.write_sector_to_sub(lsn, origin(lsn), issue));
                }
            } else {
                for lsn in lo..hi {
                    done = done.max(self.write_sector_to_sub(lsn, origin(lsn), issue));
                }
            }
            self.buffer.recycle(chunk);
        }
        done
    }

    /// Retention scrubbing (§4.3): evict subpages that have stayed in the
    /// subpage region longer than the 15-day threshold.
    fn scrub(&mut self, now: SimTime) {
        let threshold = self.retention_threshold;
        let mut expired: Vec<u64> = self
            .hash
            .iter()
            .filter(|(_, e)| now.saturating_since(e.written_at) >= threshold)
            .map(|(lsn, _)| lsn)
            .collect();
        if expired.is_empty() {
            return;
        }
        expired.sort_unstable();
        let page = u64::from(SECTORS_PER_PAGE);
        let mut t = now;
        let mut i = 0;
        while i < expired.len() {
            let lpn = expired[i] / page;
            let mut items: Vec<(u64, Oob)> = Vec::new();
            while i < expired.len() && expired[i] / page == lpn {
                let lsn = expired[i];
                i += 1;
                if self.buffer.contains(lsn) && !self.crash_safe_mode {
                    // Same shadowed-copy rule as GC: in crash-safe mode the
                    // flash copy is still the only durable version.
                    self.invalidate_sub(lsn);
                    continue;
                }
                // The entry may have been evicted already as a neighbor.
                let Some(entry) = self.hash.get(lsn) else {
                    continue;
                };
                let (r, rt) = self
                    .ssd
                    .read_subpage(self.sub_addr(entry.block, entry.page, entry.slot), t);
                t = rt;
                note_read_result(&r, lsn, &mut self.stats);
                match r {
                    Ok(oob) => items.push((lsn, oob)),
                    Err(_) => self.invalidate_sub(lsn),
                }
            }
            if !items.is_empty() {
                self.stats.retention_evictions += items.len() as u64;
                let at = t.as_nanos();
                let count = items.len() as u64;
                self.trace.emit(|| {
                    TraceEvent::new(at, "gc.scrub")
                        .tag("retention")
                        .field("subpages", count)
                });
                t = self.evict_to_full(&items, t);
            }
        }
    }

    /// Read-disturb patrol over the subpage region: any managed block whose
    /// sense count since erase crossed `limit` has its valid subpages
    /// evicted to the full-page region, then is erased (discharging the
    /// accumulated disturb). The full-page region patrols itself via
    /// [`FullRegionEngine::scrub_disturbed`].
    fn scrub_disturbed_sub(&mut self, limit: u64, issue: SimTime) {
        let mut now = issue;
        loop {
            if self.ssd.halted() {
                return;
            }
            let Some(victim) = self.blocks.iter().position(|b| {
                !b.retired
                    && (b.valid_count > 0 || b.level > 0 || b.cursor > 0)
                    && self
                        .ssd
                        .device()
                        .reads_since_erase(self.ssd.geometry().block_addr(b.gbi))
                        >= limit
            }) else {
                return;
            };
            let victim = victim as u32;
            let at = now.as_nanos();
            self.trace.emit(|| {
                TraceEvent::new(at, "gc.scrub")
                    .tag("disturb")
                    .field("block", u64::from(victim))
            });
            // Evacuate live subpages, batched per logical page like
            // `evacuate_reserve`.
            let mut items: Vec<(u64, Oob)> = Vec::new();
            for page in 0..self.pages_per_block {
                let Some(lsn) = self.blocks[victim as usize].page_valid[page as usize] else {
                    continue;
                };
                if self.buffer.contains(lsn) && !self.crash_safe_mode {
                    // Same shadowed-copy rule as GC (see `sub_gc`).
                    self.invalidate_sub(lsn);
                    continue;
                }
                let entry = self.hash.get(lsn).expect("page_valid implies mapping");
                let (r, rt) = self
                    .ssd
                    .read_subpage(self.sub_addr(victim, page, entry.slot), now);
                now = rt;
                if self.ssd.halted() {
                    return;
                }
                match r {
                    Ok(oob) => items.push((lsn, oob)),
                    Err(_) => {
                        note_read_result(&r, lsn, &mut self.stats);
                        self.invalidate_sub(lsn);
                    }
                }
            }
            items.sort_unstable_by_key(|&(lsn, _)| lsn);
            let page_sz = u64::from(SECTORS_PER_PAGE);
            let mut i = 0;
            while i < items.len() {
                let lpn = items[i].0 / page_sz;
                let j = items[i..]
                    .iter()
                    .position(|(l, _)| l / page_sz != lpn)
                    .map_or(items.len(), |k| i + k);
                now = self.evict_to_full(&items[i..j], now);
                i = j;
            }
            if self.ssd.halted() {
                return;
            }
            if self.blocks[victim as usize].valid_count > 0 {
                // Evictions failed (full region exhausted): the survivors
                // are sole copies, so skip the erase and stop the patrol
                // rather than livelock on the same victim.
                return;
            }
            let gbi = self.blocks[victim as usize].gbi;
            match self.ssd.erase(self.ssd.geometry().block_addr(gbi), now) {
                Ok(done) => {
                    now = done;
                    let vblk = &mut self.blocks[victim as usize];
                    vblk.level = 0;
                    vblk.cursor = 0;
                    vblk.page_valid.fill(None);
                    vblk.closed_seq = 0;
                    self.stats.disturb_scrubs += 1;
                }
                Err(f) if f.error == esp_nand::NandError::EraseFailed => {
                    now = f.at;
                    let vblk = &mut self.blocks[victim as usize];
                    vblk.retired = true;
                    vblk.page_valid.fill(None);
                    self.stats.erase_failures += 1;
                    self.stats.blocks_retired += 1;
                    for a in &mut self.actives {
                        if *a == Some(victim) {
                            *a = None;
                        }
                    }
                    if self.reserve == victim {
                        self.replace_reserve();
                    }
                    self.stats.disturb_scrubs += 1;
                }
                Err(f) => panic!("erase managed block: {f}"),
            }
        }
    }

    /// Asserts the subpage-region structural invariants (one valid subpage
    /// per page, hash/bitmap agreement, erased reserve). Intended for tests;
    /// panics on violation.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        // At most one valid subpage per page, and hash/page_valid agree.
        let mut from_blocks = 0u64;
        for (bi, b) in self.blocks.iter().enumerate() {
            if b.retired {
                assert_eq!(b.valid_count, 0, "retired block holds valid data");
                continue;
            }
            let mut count = 0;
            for (pi, pv) in b.page_valid.iter().enumerate() {
                if let Some(lsn) = pv {
                    count += 1;
                    let e = self.hash.peek(*lsn).expect("page_valid without hash entry");
                    assert_eq!((e.block, e.page), (bi as u32, pi as u32));
                }
            }
            assert_eq!(count, b.valid_count);
            from_blocks += u64::from(b.valid_count);
        }
        assert_eq!(from_blocks, self.hash.len() as u64);
        assert!(
            self.blocks[self.reserve as usize].is_erased(),
            "reserve must stay erased"
        );
    }
}

impl Ftl for SubFtl {
    fn name(&self) -> &'static str {
        "subFTL"
    }

    fn logical_sectors(&self) -> u64 {
        self.logical_sectors
    }

    fn enable_tracing(&mut self, capacity: usize) {
        self.trace.enable(capacity);
        self.full.enable_tracing(capacity);
        self.ssd.enable_tracing(capacity);
    }

    fn events(&self) -> Vec<TraceEvent> {
        merge_events(&[&self.trace, self.full.trace(), self.ssd.trace()])
    }

    fn events_dropped(&self) -> u64 {
        self.trace.dropped() + self.full.trace().dropped() + self.ssd.trace().dropped()
    }

    fn write(&mut self, lsn: u64, sectors: u32, sync: bool, issue: SimTime) -> SimTime {
        assert!(
            lsn + u64::from(sectors) <= self.logical_sectors,
            "write beyond logical capacity"
        );
        if self.ssd.device_failed() {
            // A failed device executes nothing; the shard is inert.
            return issue;
        }
        if self.reliability.refuse_write(&mut self.stats) {
            return issue;
        }
        self.stats.host_write_requests += 1;
        self.stats.host_write_sectors += u64::from(sectors);
        let small = sectors < SECTORS_PER_PAGE;
        if small {
            self.stats.small_write_requests += 1;
            self.stats.small_waf_host_sectors += u64::from(sectors);
        }
        self.buffer.insert(lsn, sectors, small);
        if sync {
            let mut chunks = std::mem::take(&mut self.chunks_scratch);
            self.buffer.take_overlapping_into(lsn, sectors, &mut chunks);
            let done = self.flush_chunks(&mut chunks, issue);
            self.chunks_scratch = chunks;
            done
        } else if self.buffer.is_full() {
            let mut chunks = std::mem::take(&mut self.chunks_scratch);
            self.buffer.drain_all_into(&mut chunks);
            self.flush_chunks(&mut chunks, issue);
            self.chunks_scratch = chunks;
            issue
        } else {
            issue
        }
    }

    fn read(&mut self, lsn: u64, sectors: u32, issue: SimTime) -> SimTime {
        if self.ssd.device_failed() {
            return issue;
        }
        self.stats.host_read_requests += 1;
        self.stats.host_read_sectors += u64::from(sectors);
        let page = u64::from(SECTORS_PER_PAGE);
        let mut done = issue;
        let mut faulted = false;
        // Relocation work queued by reclaim-worthy ladder efforts: subpage
        // copies are evicted to the full-page region, full pages rewritten.
        let mut sub_reclaim: Vec<(u64, Oob)> = Vec::new();
        let mut full_reclaim: Vec<u64> = Vec::new();
        let (lo, hi) = (lsn, lsn + u64::from(sectors));
        for lpn in lo / page..=(hi - 1) / page {
            let s_lo = lo.max(lpn * page);
            let s_hi = hi.min((lpn + 1) * page);
            let mut from_full: Vec<u64> = Vec::new();
            for s in s_lo..s_hi {
                if self.buffer.contains(s) {
                    continue;
                }
                if let Some(e) = self.hash.get(s) {
                    let addr = self.sub_addr(e.block, e.page, e.slot);
                    let (r, effort, t) = self.ssd.read_subpage_graded(addr, issue);
                    faulted |= note_read_result(&r, s, &mut self.stats);
                    if self.reliability.wants_reclaim(effort) {
                        if let Ok(oob) = r {
                            sub_reclaim.push((s, oob));
                        }
                    }
                    done = done.max(t);
                } else {
                    from_full.push(s);
                }
            }
            if from_full.is_empty() {
                continue;
            }
            let Some(ptr) = self.full.lookup(lpn) else {
                continue;
            };
            let addr = self.full.page_addr(ptr, &self.ssd);
            let effort = if from_full.len() >= 2 {
                let (effort, t) =
                    self.ssd
                        .read_full_graded_into(addr, issue, &mut self.slots_scratch);
                for s in from_full {
                    faulted |= note_read_result(
                        &self.slots_scratch[(s % page) as usize],
                        s,
                        &mut self.stats,
                    );
                }
                done = done.max(t);
                effort
            } else {
                let s = from_full[0];
                let (r, effort, t) = self
                    .ssd
                    .read_subpage_graded(addr.subpage((s % page) as u8), issue);
                faulted |= note_read_result(&r, s, &mut self.stats);
                done = done.max(t);
                effort
            };
            if self.reliability.wants_reclaim(effort) {
                full_reclaim.push(lpn);
            }
        }
        self.reliability.note_host_read(faulted, &mut self.stats);
        // evict_to_full wants one logical page per batch.
        sub_reclaim.sort_unstable_by_key(|&(s, _)| s);
        let mut i = 0;
        while i < sub_reclaim.len() {
            let lpn = sub_reclaim[i].0 / page;
            let j = sub_reclaim[i..]
                .iter()
                .position(|(s, _)| s / page != lpn)
                .map_or(sub_reclaim.len(), |k| i + k);
            self.stats.read_reclaims += (j - i) as u64;
            let at = done.as_nanos();
            let sectors = (j - i) as u64;
            self.trace.emit(|| {
                TraceEvent::new(at, "gc.reclaim")
                    .tag("read_reclaim")
                    .field("lpn", lpn)
                    .field("sectors", sectors)
            });
            done = self.evict_to_full(&sub_reclaim[i..j], done);
            i = j;
        }
        for lpn in full_reclaim {
            done = done.max(
                self.full
                    .reclaim_page(lpn, &mut self.ssd, &mut self.stats, done),
            );
        }
        done
    }

    fn flush(&mut self, issue: SimTime) -> SimTime {
        if self.ssd.device_failed() {
            return issue;
        }
        let mut chunks = std::mem::take(&mut self.chunks_scratch);
        self.buffer.drain_all_into(&mut chunks);
        let done = self.flush_chunks(&mut chunks, issue);
        self.chunks_scratch = chunks;
        done
    }

    fn maintain(&mut self, now: SimTime) {
        if self.ssd.device_failed() {
            return;
        }
        let reads = self.ssd.device().stats().reads;
        if self.reliability.patrol_due(reads) {
            if let Some(limit) = self.reliability.scrub_limit() {
                self.full
                    .scrub_disturbed(&mut self.ssd, &mut self.stats, limit, now);
                self.scrub_disturbed_sub(limit, now);
            }
        }
        if self.full.wear_leveling() {
            let erases = self.ssd.device().stats().erases;
            if erases >= self.next_wear_check {
                self.next_wear_check = erases + 16;
                self.full
                    .wear_rotate(&mut self.ssd, &mut self.stats, now, self.wear_delta);
                self.sub_wear_rotate(now);
            }
        }
        if now.saturating_since(self.last_scan) < self.scan_interval {
            return;
        }
        self.last_scan = now;
        self.scrub(now);
    }

    fn idle(&mut self, from: SimTime, until: SimTime) {
        if !self.background_gc || self.ssd.device_failed() {
            return;
        }
        // Keep the full-page region comfortably above its GC trigger.
        let SubFtl {
            full, ssd, stats, ..
        } = self;
        let mut now = full.background_collect(ssd, stats, from, until, 4);
        // Pre-erase exhausted subpage-region blocks so foreground writes do
        // not stall on a GC episode mid-burst — but only victims that fit
        // in the window (estimate: one read+program per valid subpage, an
        // RMW allowance for evictions, plus the erase).
        use esp_nand::OpKind;
        let per_copy = self.ssd.device().op_cost(OpKind::ReadSubpage).total()
            + self.ssd.device().op_cost(OpKind::ProgramSubpage).total()
            + self.ssd.device().op_cost(OpKind::ProgramFull).total();
        let erase = self.ssd.device().op_cost(OpKind::Erase).total();
        while self.has_exhausted_block() {
            let valid = self.min_valid_exhausted();
            if valid > self.pages_per_block / 2 {
                break; // not profitable; let foreground batching decide
            }
            let estimate = per_copy * u64::from(valid) + erase;
            if now + estimate > until {
                break;
            }
            now = self.sub_gc(now);
        }
    }

    fn stored_seq(&self, lsn: u64) -> Option<u64> {
        if self.buffer.contains(lsn) {
            return None;
        }
        let state = if let Some(e) = self.hash.peek(lsn) {
            self.ssd
                .device()
                .subpage_state(self.sub_addr(e.block, e.page, e.slot))
        } else {
            let page = u64::from(SECTORS_PER_PAGE);
            let ptr = self.full.lookup(lsn / page)?;
            let addr = self
                .full
                .page_addr(ptr, &self.ssd)
                .subpage((lsn % page) as u8);
            self.ssd.device().subpage_state(addr)
        };
        match state {
            esp_nand::SubpageState::Written(w) => w.oob.filter(|o| o.lsn == lsn).map(|o| o.seq),
            _ => None,
        }
    }

    fn trim(&mut self, lsn: u64, sectors: u32) {
        self.buffer.discard(lsn, sectors);
        let page = u64::from(SECTORS_PER_PAGE);
        let (lo, hi) = (lsn, lsn + u64::from(sectors));
        // Subpage-region copies can be dropped at sector granularity.
        for s in lo..hi {
            self.invalidate_sub(s);
        }
        // The coarse full-page map only drops fully-covered pages.
        let first_full = lo.div_ceil(page);
        let last_full = hi / page;
        for lpn in first_full..last_full {
            self.full.unmap(lpn);
        }
    }

    fn mapping_memory_bytes(&self) -> u64 {
        self.full.mapping_bytes() + self.hash.memory_bytes() as u64
    }

    fn stats(&self) -> &FtlStats {
        &self.stats
    }

    fn end_of_life(&self) -> bool {
        self.reliability.end_of_life()
    }

    fn ssd(&self) -> &Ssd {
        &self.ssd
    }

    fn fail_device(&mut self) {
        self.ssd.device_mut().kill();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_trace, Ftl};
    use esp_workload::{generate, IoRequest, SyntheticConfig, Trace};

    fn tiny_ftl() -> SubFtl {
        SubFtl::new(&FtlConfig::tiny())
    }

    #[test]
    fn hot_reads_stay_correctable_with_ladder_and_reclaim() {
        use esp_nand::{RetentionModel, RetryLadder};
        let mut config = FtlConfig::tiny();
        config.retention = RetentionModel::paper_default().with_read_disturb(2e-2);
        config.retry_ladder = Some(RetryLadder::paper_default());
        config.reclaim_threshold = Some(2);
        let mut ftl = SubFtl::new(&config);
        // One sector in the subpage region, one aligned page in the full
        // region: the hot-read loop disturbs blocks in both regions.
        let t = ftl.write(0, 1, true, SimTime::ZERO);
        ftl.write(4, 4, true, t);
        let mut now = SimTime::from_secs(1);
        for _ in 0..600 {
            ftl.maintain(now);
            now = ftl.read(0, 1, now);
            now = ftl.read(4, 4, now);
        }
        assert_eq!(ftl.stats().read_faults, 0, "pipeline must keep data alive");
        assert!(
            ftl.stats().read_reclaims > 0 || ftl.stats().disturb_scrubs > 0,
            "mitigation must actually have run"
        );
        assert!(ftl.stored_seq(0).is_some(), "hot sector stays mapped");
        assert!(ftl.stored_seq(5).is_some(), "hot page stays mapped");
        ftl.check_invariants();
    }

    #[test]
    fn small_sync_write_is_one_subpage_program() {
        let mut ftl = tiny_ftl();
        ftl.write(0, 1, true, SimTime::ZERO);
        let dev = ftl.ssd().device().stats();
        assert_eq!(dev.subpage_programs, 1);
        assert_eq!(dev.full_programs, 0);
        assert!((ftl.stats().small_request_waf() - 1.0).abs() < 1e-9);
        ftl.check_invariants();
    }

    #[test]
    fn aligned_large_write_goes_to_full_region() {
        let mut ftl = tiny_ftl();
        ftl.write(0, 4, true, SimTime::ZERO);
        let dev = ftl.ssd().device().stats();
        assert_eq!(dev.full_programs, 1);
        assert_eq!(dev.subpage_programs, 0);
    }

    #[test]
    fn twenty_kb_write_splits_paper_example() {
        // §4.1: a 20 KB write sends 16 KB to the full-page region and the
        // remaining 4 KB to the subpage region.
        let mut ftl = tiny_ftl();
        ftl.write(0, 5, true, SimTime::ZERO);
        let dev = ftl.ssd().device().stats();
        assert_eq!(dev.full_programs, 1);
        assert_eq!(dev.subpage_programs, 1);
    }

    #[test]
    fn fig7_write_policy_walkthrough() {
        // The paper's Fig 7 example transposed onto the allocator: writes
        // fill slot 0 of consecutive pages, then lap 1 migrates survivors.
        let mut ftl = tiny_ftl();
        // R = <0,1,2,3, 1,2,3,7>: eight 4 KB sync writes.
        for &l in &[0u64, 1, 2, 3, 1, 2, 3, 7] {
            ftl.write(l, 1, true, SimTime::ZERO);
        }
        ftl.check_invariants();
        // All eight programs were erase-free subpage programs at lap 0.
        assert_eq!(ftl.ssd().device().stats().subpage_programs, 8);
        assert_eq!(ftl.stats().lap_migrations, 0);
        assert_eq!(ftl.hash.len(), 5); // live: 0,1,2,3,7
                                       // Hash entries for the re-written sectors point at the new copies.
        assert!(ftl.hash.peek(1).expect("sector 1 mapped").updated);
        assert!(!ftl.hash.peek(0).expect("sector 0 mapped").updated);
    }

    #[test]
    fn lap_advance_migrates_valid_survivor() {
        // Force lap advancement on a tiny region and observe migration of
        // still-valid data to the next subpage level (Fig 7(c)).
        let mut ftl = tiny_ftl();
        let slots_lap0: u64 = ftl
            .blocks
            .iter()
            .enumerate()
            .filter(|(i, _)| *i as u32 != ftl.reserve)
            .map(|_| u64::from(ftl.pages_per_block))
            .sum();
        // Fill every lap-0 slot: first write sector 1000 (stays valid),
        // then churn one hot sector to fill the rest.
        ftl.write(60, 1, true, SimTime::ZERO);
        for i in 1..slots_lap0 {
            ftl.write(80 + (i % 3), 1, true, SimTime::ZERO);
        }
        ftl.check_invariants();
        let migrations_before = ftl.stats().lap_migrations;
        // Next write starts lap 1 somewhere; any page holding live data
        // must migrate it rather than destroy it.
        for i in 0..slots_lap0 {
            ftl.write(90 + (i % 3), 1, true, SimTime::ZERO);
        }
        ftl.check_invariants();
        assert!(ftl.stats().lap_migrations > migrations_before);
        // Sector 1000 is still readable (not destroyed by lap 1 programs).
        ftl.read(60, 1, SimTime::from_secs(1));
        assert_eq!(ftl.stats().read_faults, 0);
    }

    #[test]
    fn gc_separates_hot_and_cold() {
        let mut ftl = tiny_ftl();
        // Cold singleton + hot churn until subpage-region GC fires.
        ftl.write(120, 1, true, SimTime::ZERO);
        let mut i = 0u64;
        while ftl.stats().gc_subpage_region == 0 && i < 20_000 {
            ftl.write(100 + (i % 5), 1, true, SimTime::ZERO);
            i += 1;
        }
        assert!(ftl.stats().gc_subpage_region > 0, "sub GC never fired");
        ftl.check_invariants();
        assert_eq!(ftl.stats().read_faults, 0);
        // Everything still readable.
        ftl.read(120, 1, SimTime::from_secs(5));
        for l in 100..105 {
            ftl.read(l, 1, SimTime::from_secs(5));
        }
        assert_eq!(ftl.stats().read_faults, 0);
    }

    #[test]
    fn cold_data_eventually_evicts_to_full_region() {
        let mut ftl = tiny_ftl();
        // Write-once sectors (never updated) + enough churn to cycle GC.
        for l in 0..8u64 {
            ftl.write(110 + l, 1, true, SimTime::ZERO);
        }
        for i in 0..30_000u64 {
            ftl.write(100 + (i % 4), 1, true, SimTime::ZERO);
            if ftl.stats().cold_evictions > 0 {
                break;
            }
        }
        assert!(ftl.stats().cold_evictions > 0, "no cold eviction happened");
        ftl.check_invariants();
        // Evicted sectors remain readable from the full-page region.
        for l in 0..8u64 {
            ftl.read(110 + l, 1, SimTime::from_secs(9));
        }
        assert_eq!(ftl.stats().read_faults, 0);
    }

    #[test]
    fn retention_scrub_evicts_old_subpages() {
        let mut ftl = tiny_ftl();
        ftl.write(42, 1, true, SimTime::ZERO);
        assert_eq!(ftl.subpage_entries(), 1);
        // 16 simulated days later the scrubber must evict it.
        let later = SimTime::ZERO + SimDuration::from_days(16);
        ftl.maintain(later);
        assert_eq!(ftl.stats().retention_evictions, 1);
        assert_eq!(ftl.subpage_entries(), 0);
        ftl.check_invariants();
        // Still readable (now from the full-page region), even 3 months on —
        // full-page data has Npp^0 retention.
        ftl.read(42, 1, SimTime::ZERO + SimDuration::from_months(3));
        assert_eq!(ftl.stats().read_faults, 0);
    }

    #[test]
    fn without_scrub_old_subpage_data_would_die() {
        // Demonstrates why §4.3 exists: bypass maintain() and read a
        // subpage after the device retention bound.
        let mut ftl = tiny_ftl();
        ftl.ssd.device_mut().precycle(1000);
        // Build an Npp-stressed entry by filling laps.
        let total: u64 = 4 * 8 * 4; // approx slots
        for i in 0..total {
            ftl.write(i % 16, 1, true, SimTime::ZERO);
        }
        // Far beyond every subpage's retention capability:
        let later = SimTime::ZERO + SimDuration::from_months(11);
        for l in 0..16u64 {
            ftl.read(l, 1, later);
        }
        assert!(
            ftl.stats().read_faults > 0,
            "aged subpage data should be unreadable without scrubbing"
        );
    }

    /// A geometry big enough that the paper's sizing assumption holds (the
    /// subpage region comfortably covers the hot working set); the tiny
    /// 16-block device cannot represent that regime.
    fn medium_cfg() -> FtlConfig {
        FtlConfig {
            geometry: esp_nand::Geometry {
                channels: 2,
                chips_per_channel: 1,
                blocks_per_chip: 32,
                pages_per_block: 16,
                subpages_per_page: 4,
                subpage_bytes: 4096,
            },
            overprovision: 0.4,
            write_buffer_sectors: 64,
            ..FtlConfig::paper_default()
        }
    }

    #[test]
    fn mixed_workload_end_to_end() {
        let mut ftl = SubFtl::new(&medium_cfg());
        let cfg = SyntheticConfig {
            footprint_sectors: ftl.logical_sectors() / 2,
            requests: 5_000,
            r_small: 0.7,
            r_synch: 0.8,
            read_fraction: 0.2,
            zipf_theta: 0.9,
            small_zone_sectors: Some(32),
            ..SyntheticConfig::default()
        };
        let report = run_trace(&mut ftl, &generate(&cfg));
        assert_eq!(report.stats.read_faults, 0);
        assert!(report.iops > 0.0);
        ftl.check_invariants();
        // Small writes stay near WAF 1 (Table 1); allow slack for the small
        // region of this test device.
        assert!(
            report.stats.small_request_waf() < 2.0,
            "small request WAF {}",
            report.stats.small_request_waf()
        );
    }

    #[test]
    fn subftl_beats_fgm_on_sync_small_writes() {
        // The headline claim: fewer erases and higher IOPS than fgmFTL
        // under sync-small-write pressure.
        let cfg = medium_cfg();
        let make_trace = |logical: u64| {
            generate(&SyntheticConfig {
                footprint_sectors: logical / 2,
                requests: 6_000,
                r_small: 1.0,
                r_synch: 1.0,
                zipf_theta: 0.85,
                // Keep the live small-write set inside the subpage region
                // (the paper's sizing regime, §4.1).
                small_zone_sectors: Some(32),
                seed: 11,
                ..SyntheticConfig::default()
            })
        };
        let mut sub = SubFtl::new(&cfg);
        crate::runner::precondition(&mut sub, 0.85);
        let trace = make_trace(sub.logical_sectors());
        let sub_report = run_trace(&mut sub, &trace);
        let mut fgm = crate::fgm::FgmFtl::new(&cfg);
        crate::runner::precondition(&mut fgm, 0.85);
        let trace = make_trace(fgm.logical_sectors());
        let fgm_report = run_trace(&mut fgm, &trace);
        assert!(
            sub_report.iops > fgm_report.iops,
            "subFTL {} <= fgmFTL {}",
            sub_report.iops,
            fgm_report.iops
        );
        assert!(
            sub_report.erases < fgm_report.erases,
            "subFTL erases {} >= fgmFTL erases {}",
            sub_report.erases,
            fgm_report.erases
        );
    }

    #[test]
    fn trim_frees_subpage_and_full_mappings() {
        let mut ftl = tiny_ftl();
        ftl.write(0, 4, true, SimTime::ZERO); // full region
        ftl.write(8, 1, true, SimTime::ZERO); // subpage region
        assert_eq!(ftl.subpage_entries(), 1);
        ftl.trim(0, 4);
        ftl.trim(8, 1);
        assert_eq!(ftl.subpage_entries(), 0);
        assert_eq!(ftl.stored_seq(0), None);
        assert_eq!(ftl.stored_seq(8), None);
        ftl.check_invariants();
        // Reads of trimmed data are benign (no faults), and re-writing works.
        ftl.read(0, 5, SimTime::from_secs(1));
        assert_eq!(ftl.stats().read_faults, 0);
        ftl.write(8, 1, true, SimTime::from_secs(2));
        assert!(ftl.stored_seq(8).is_some());
    }

    #[test]
    fn partial_trim_keeps_coarse_page_mapped() {
        let mut ftl = tiny_ftl();
        ftl.write(0, 4, true, SimTime::ZERO);
        // Trimming 2 of 4 sectors cannot unmap a 16 KB page.
        ftl.trim(0, 2);
        assert!(ftl.stored_seq(3).is_some());
        ftl.check_invariants();
    }

    #[test]
    fn background_gc_trims_worst_case_latency() {
        use esp_sim::SimDuration;
        let make_trace = |logical: u64| {
            generate(&SyntheticConfig {
                footprint_sectors: (logical as f64 * 0.625) as u64,
                requests: 16_000,
                r_small: 1.0,
                r_synch: 1.0,
                zipf_theta: 0.9,
                small_zone_sectors: Some(64),
                burst_period: 32,
                burst_idle: SimDuration::from_millis(120),
                seed: 5,
                ..SyntheticConfig::default()
            })
        };
        let run = |background: bool| {
            let cfg = FtlConfig {
                background_gc: background,
                ..medium_cfg()
            };
            let mut ftl = SubFtl::new(&cfg);
            let trace = make_trace(ftl.logical_sectors());
            let r = run_trace(&mut ftl, &trace);
            assert_eq!(r.stats.read_faults, 0);
            ftl.check_invariants();
            r.latency.percentile(1.0)
        };
        let fg_worst = run(false);
        let bg_worst = run(true);
        assert!(
            bg_worst < fg_worst,
            "background GC should cut the worst fsync ({bg_worst} !< {fg_worst})"
        );
    }

    #[test]
    fn run_report_counts_match_trace() {
        let mut ftl = tiny_ftl();
        let mut t = Trace::new(100);
        t.push(IoRequest::write(SimTime::ZERO, 0, 1, true));
        t.push(IoRequest::write(SimTime::ZERO, 4, 4, false));
        t.push(IoRequest::read(SimTime::ZERO, 0, 1));
        let report = run_trace(&mut ftl, &t);
        assert_eq!(report.requests, 3);
        assert_eq!(report.stats.host_write_requests, 2);
        assert_eq!(report.stats.small_write_requests, 1);
        assert_eq!(report.stats.host_read_requests, 1);
    }

    #[test]
    fn survives_faults_and_factory_bad_blocks() {
        // erase_fail_prob must stay low on the 16-block tiny device: every
        // grown bad block permanently shrinks a pool that has no slack.
        let mut config = FtlConfig::tiny();
        config.fault = Some(esp_nand::FaultConfig {
            seed: 31,
            program_fail_prob: 0.02,
            erase_fail_prob: 0.001,
            factory_bad_blocks: 1,
            ..esp_nand::FaultConfig::default()
        });
        let mut ftl = SubFtl::new(&config);
        assert_eq!(
            ftl.stats().blocks_retired,
            1,
            "factory bad block retired at mount"
        );
        let logical = ftl.logical_sectors();
        let cfg = SyntheticConfig {
            footprint_sectors: logical / 2,
            requests: 2_000,
            r_small: 0.7,
            r_synch: 1.0,
            zipf_theta: 0.5,
            ..SyntheticConfig::default()
        };
        let report = run_trace(&mut ftl, &generate(&cfg));
        assert_eq!(
            report.stats.read_faults, 0,
            "faults must never corrupt reads"
        );
        assert!(report.stats.write_retries > 0, "p=0.02 must force retries");
        ftl.check_invariants();
    }
}

//! The subpage region's fine-grained mapping table.
//!
//! Paper §4.2: "In order to mitigate memory overhead for fine-grained L2P
//! mapping, subFTL employs a hash table to manage the subpage region. The
//! memory requirement for the hash table is not huge because each full page
//! can hold only one valid subpage — the number of hash entries pointing to
//! valid subpages is one fourth of the total subpages. Therefore, even with
//! a relatively small hash table, subFTL can quickly find a physical
//! location of a given logical subpage, without being severely affected by
//! hash collisions."
//!
//! [`SubpageMap`] makes that argument concrete: a fixed-capacity,
//! open-addressing (linear probing, backward-shift deletion) hash table
//! sized at 1.25× the region's one-valid-subpage-per-page capacity (≤ 80 %
//! load), stored as parallel arrays of 8-byte keys and 12-byte packed
//! entries — 20 bytes per slot — with probe-length statistics and exact
//! memory accounting. These are the numbers behind the
//! `table_mapping_memory` experiment.

use esp_sim::SimTime;

/// A fine-grained mapping entry: where a logical sector lives in the
/// subpage region, plus the hot/cold and retention bookkeeping of §4.2/4.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubEntry {
    /// Region-local block index.
    pub block: u32,
    /// Page within the block.
    pub page: u32,
    /// Subpage slot within the page.
    pub slot: u8,
    /// Updated at least once since (re-)entering the subpage region — the
    /// hot/cold signal used by GC.
    pub updated: bool,
    /// When the current physical copy was programmed (retention clock,
    /// stored at 1-second granularity — retention decisions are made in
    /// days).
    pub written_at: SimTime,
}

/// Packed in-table representation: 12 bytes per entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Packed {
    /// `block * pages_per_block_cap + page`, assigned by the caller through
    /// block/page fields; packed as two u16-capable fields in one u32 pair.
    block: u32,
    /// Low 24 bits: page; bits 24..29: slot; bit 30: updated.
    page_meta: u32,
    /// Program time in whole seconds (1-second granularity).
    written_secs: u32,
}

const EMPTY_KEY: u64 = u64::MAX;

impl Packed {
    fn pack(e: SubEntry) -> Packed {
        debug_assert!(e.page < (1 << 24), "page index exceeds packing");
        debug_assert!(e.slot < 32, "slot exceeds packing");
        Packed {
            block: e.block,
            page_meta: e.page | (u32::from(e.slot) << 24) | (u32::from(e.updated) << 30),
            written_secs: (e.written_at.as_nanos() / 1_000_000_000) as u32,
        }
    }

    fn unpack(self) -> SubEntry {
        SubEntry {
            block: self.block,
            page: self.page_meta & 0x00FF_FFFF,
            slot: ((self.page_meta >> 24) & 0x1F) as u8,
            updated: (self.page_meta >> 30) & 1 == 1,
            written_at: SimTime::from_secs(u64::from(self.written_secs)),
        }
    }
}

/// Probe statistics, used to verify the paper's "not severely affected by
/// hash collisions" claim experimentally.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeStats {
    /// Lookups performed (hits and misses).
    pub lookups: u64,
    /// Total probe steps beyond the home slot across all lookups.
    pub extra_probes: u64,
    /// Longest probe sequence observed.
    pub max_probe: u64,
}

impl ProbeStats {
    /// Mean probes per lookup (1.0 = every lookup hits its home slot).
    #[must_use]
    pub fn mean_probes(&self) -> f64 {
        if self.lookups == 0 {
            1.0
        } else {
            1.0 + self.extra_probes as f64 / self.lookups as f64
        }
    }
}

/// Fixed-capacity open-addressing hash map from logical sector numbers to
/// [`SubEntry`] (see module docs).
///
/// # Examples
///
/// ```
/// use esp_core::{SubEntry, SubpageMap};
/// use esp_sim::SimTime;
///
/// let mut map = SubpageMap::with_capacity(64);
/// let e = SubEntry { block: 1, page: 2, slot: 3, updated: false, written_at: SimTime::ZERO };
/// map.insert(42, e);
/// assert_eq!(map.get(42), Some(e));
/// // 20 bytes/slot at 1.25x headroom:
/// assert_eq!(map.memory_bytes(), (64 * 5 / 4 + 1) * 20);
/// ```
#[derive(Debug, Clone)]
pub struct SubpageMap {
    keys: Vec<u64>,
    vals: Vec<Packed>,
    len: usize,
    max_entries: usize,
    stats: ProbeStats,
}

impl SubpageMap {
    /// Creates a map that can hold `max_entries` live entries. The backing
    /// arrays hold `1.25 × max_entries + 1` slots, bounding the load factor
    /// at 80 %.
    ///
    /// # Panics
    ///
    /// Panics if `max_entries` is zero.
    #[must_use]
    pub fn with_capacity(max_entries: usize) -> Self {
        assert!(max_entries > 0, "subpage map needs capacity");
        let slots = max_entries * 5 / 4 + 1;
        SubpageMap {
            keys: vec![EMPTY_KEY; slots],
            vals: vec![
                Packed {
                    block: 0,
                    page_meta: 0,
                    written_secs: 0
                };
                slots
            ],
            len: 0,
            max_entries,
            stats: ProbeStats::default(),
        }
    }

    /// Live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entries are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Exact memory footprint of the backing arrays in bytes
    /// (8-byte key + 12-byte packed entry per slot).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.keys.len() * std::mem::size_of::<u64>()
            + self.vals.len() * std::mem::size_of::<Packed>()
    }

    /// Probe-length statistics accumulated since construction.
    #[must_use]
    pub fn probe_stats(&self) -> ProbeStats {
        self.stats
    }

    /// SplitMix64 finalizer: cheap, well-distributed home-slot hashing.
    fn home(&self, key: u64) -> usize {
        let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        ((z ^ (z >> 31)) % self.keys.len() as u64) as usize
    }

    fn next(&self, idx: usize) -> usize {
        let n = idx + 1;
        if n == self.keys.len() {
            0
        } else {
            n
        }
    }

    fn note_probe(&mut self, extra: u64) {
        self.stats.lookups += 1;
        self.stats.extra_probes += extra;
        self.stats.max_probe = self.stats.max_probe.max(extra + 1);
    }

    /// Index of `key` if present, or of the first empty slot otherwise.
    fn find(&self, key: u64) -> (usize, bool, u64) {
        debug_assert_ne!(key, EMPTY_KEY, "sentinel key is reserved");
        let mut idx = self.home(key);
        let mut extra = 0;
        loop {
            let k = self.keys[idx];
            if k == key {
                return (idx, true, extra);
            }
            if k == EMPTY_KEY {
                return (idx, false, extra);
            }
            idx = self.next(idx);
            extra += 1;
        }
    }

    /// Looks up the entry for `lsn`.
    pub fn get(&mut self, lsn: u64) -> Option<SubEntry> {
        let (idx, found, extra) = self.find(lsn);
        self.note_probe(extra);
        found.then(|| self.vals[idx].unpack())
    }

    /// Looks up without touching statistics (for read-only diagnostics).
    #[must_use]
    pub fn peek(&self, lsn: u64) -> Option<SubEntry> {
        let (idx, found, _) = self.find(lsn);
        found.then(|| self.vals[idx].unpack())
    }

    /// True if `lsn` is mapped (no statistics update).
    #[must_use]
    pub fn contains(&self, lsn: u64) -> bool {
        self.find(lsn).1
    }

    /// Inserts or replaces the entry for `lsn`. Returns the previous entry
    /// if one existed.
    ///
    /// # Panics
    ///
    /// Panics if the table would exceed `max_entries` — the region
    /// invariant (at most one valid subpage per physical page) makes that
    /// impossible in correct use.
    pub fn insert(&mut self, lsn: u64, entry: SubEntry) -> Option<SubEntry> {
        let (idx, found, extra) = self.find(lsn);
        self.note_probe(extra);
        if found {
            let old = self.vals[idx].unpack();
            self.vals[idx] = Packed::pack(entry);
            Some(old)
        } else {
            assert!(
                self.len < self.max_entries,
                "subpage map over capacity: region invariant violated"
            );
            self.keys[idx] = lsn;
            self.vals[idx] = Packed::pack(entry);
            self.len += 1;
            None
        }
    }

    /// Applies `f` to the entry for `lsn`, if present. Returns whether the
    /// entry existed.
    pub fn update<F: FnOnce(&mut SubEntry)>(&mut self, lsn: u64, f: F) -> bool {
        let (idx, found, extra) = self.find(lsn);
        self.note_probe(extra);
        if found {
            let mut e = self.vals[idx].unpack();
            f(&mut e);
            self.vals[idx] = Packed::pack(e);
        }
        found
    }

    /// Removes the entry for `lsn`, returning it if present. Uses
    /// backward-shift deletion, so no tombstones accumulate.
    pub fn remove(&mut self, lsn: u64) -> Option<SubEntry> {
        let (idx, found, extra) = self.find(lsn);
        self.note_probe(extra);
        if !found {
            return None;
        }
        let removed = self.vals[idx].unpack();
        self.len -= 1;
        // Backward-shift: close the hole by moving displaced entries back.
        let n = self.keys.len();
        let mut hole = idx;
        let mut cursor = self.next(hole);
        loop {
            let key = self.keys[cursor];
            if key == EMPTY_KEY {
                break;
            }
            let home = self.home(key);
            // Move back iff the hole lies within [home, cursor) cyclically.
            let dist_home = (cursor + n - home) % n;
            let dist_hole = (cursor + n - hole) % n;
            if dist_home >= dist_hole {
                self.keys[hole] = self.keys[cursor];
                self.vals[hole] = self.vals[cursor];
                hole = cursor;
            }
            cursor = self.next(cursor);
        }
        self.keys[hole] = EMPTY_KEY;
        Some(removed)
    }

    /// Iterates over `(lsn, entry)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, SubEntry)> + '_ {
        self.keys
            .iter()
            .zip(&self.vals)
            .filter(|(&k, _)| k != EMPTY_KEY)
            .map(|(&k, &v)| (k, v.unpack()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(block: u32) -> SubEntry {
        SubEntry {
            block,
            page: block + 1,
            slot: (block % 4) as u8,
            updated: false,
            written_at: SimTime::from_secs(u64::from(block) * 100),
        }
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let mut m = SubpageMap::with_capacity(16);
        assert!(m.is_empty());
        assert_eq!(m.insert(5, e(1)), None);
        assert_eq!(m.insert(5, e(2)), Some(e(1)));
        assert_eq!(m.get(5), Some(e(2)));
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove(5), Some(e(2)));
        assert_eq!(m.get(5), None);
        assert!(m.is_empty());
        assert_eq!(m.remove(5), None);
    }

    #[test]
    fn packing_round_trips_every_field() {
        let orig = SubEntry {
            block: 123_456,
            page: (1 << 24) - 1,
            slot: 31,
            updated: true,
            written_at: SimTime::from_secs(86_400 * 365),
        };
        assert_eq!(Packed::pack(orig).unpack(), orig);
        let plain = SubEntry {
            block: 0,
            page: 0,
            slot: 0,
            updated: false,
            written_at: SimTime::ZERO,
        };
        assert_eq!(Packed::pack(plain).unpack(), plain);
    }

    #[test]
    fn update_mutates_in_place() {
        let mut m = SubpageMap::with_capacity(4);
        m.insert(9, e(0));
        assert!(m.update(9, |x| x.updated = true));
        assert!(m.get(9).unwrap().updated);
        assert!(!m.update(10, |_| panic!("must not run")));
    }

    #[test]
    fn many_entries_with_collisions() {
        let mut m = SubpageMap::with_capacity(1000);
        for k in 0..1000u64 {
            m.insert(k, e(k as u32));
        }
        assert_eq!(m.len(), 1000);
        for k in 0..1000u64 {
            assert_eq!(m.get(k), Some(e(k as u32)), "key {k}");
        }
        // At <= 80% load, linear probing stays short on average.
        assert!(
            m.probe_stats().mean_probes() < 4.0,
            "mean probes {}",
            m.probe_stats().mean_probes()
        );
    }

    #[test]
    fn backward_shift_preserves_chains() {
        // Force collisions in a small table, then remove entries and verify
        // every remaining key is still reachable.
        let mut m = SubpageMap::with_capacity(64);
        for k in 0..64u64 {
            m.insert(k * 7919, e(k as u32));
        }
        for k in (0..64u64).step_by(2) {
            assert!(m.remove(k * 7919).is_some());
        }
        for k in (1..64u64).step_by(2) {
            assert_eq!(m.get(k * 7919), Some(e(k as u32)), "key {k}");
        }
        assert_eq!(m.len(), 32);
    }

    #[test]
    fn churn_interleaved_insert_remove() {
        // Heavy interleaving exercises backward-shift across wrap-around.
        let mut m = SubpageMap::with_capacity(100);
        let mut live = std::collections::HashMap::new();
        let mut x: u64 = 0x1234_5678;
        for step in 0..20_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = x % 500;
            if live.len() < 100 && !(x >> 32).is_multiple_of(3) {
                m.insert(key, e(step as u32));
                live.insert(key, e(step as u32));
            } else {
                assert_eq!(m.remove(key), live.remove(&key), "step {step} key {key}");
            }
            if step % 1000 == 0 {
                assert_eq!(m.len(), live.len());
            }
        }
        for (&k, &v) in &live {
            assert_eq!(m.get(k), Some(v));
        }
    }

    #[test]
    fn iter_visits_every_live_entry() {
        let mut m = SubpageMap::with_capacity(32);
        for k in 10..20u64 {
            m.insert(k, e(k as u32));
        }
        m.remove(13);
        let mut keys: Vec<u64> = m.iter().map(|(k, _)| k).collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![10, 11, 12, 14, 15, 16, 17, 18, 19]);
    }

    #[test]
    fn memory_accounting_is_twenty_bytes_per_slot() {
        let m = SubpageMap::with_capacity(1000);
        // 1251 slots x (8 + 12) bytes.
        assert_eq!(m.memory_bytes(), 1251 * 20);
    }

    #[test]
    #[should_panic(expected = "over capacity")]
    fn overfull_table_panics() {
        let mut m = SubpageMap::with_capacity(4);
        for k in 0..100u64 {
            m.insert(k, e(0));
        }
    }

    #[test]
    fn peek_and_contains_do_not_count() {
        let mut m = SubpageMap::with_capacity(8);
        m.insert(1, e(1));
        let before = m.probe_stats().lookups;
        assert!(m.contains(1));
        assert_eq!(m.peek(1), Some(e(1)));
        assert_eq!(m.probe_stats().lookups, before);
    }
}

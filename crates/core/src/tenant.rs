//! Multi-tenant served-traffic frontend: per-tenant QoS admission and
//! weighted-fair dispatch on top of the queue-depth replay engine.
//!
//! A [`TenantSet`] multiplexes several tenants — each a workload trace
//! plus a [`TenantConfig`] — onto one device. Each tenant owns a
//! disjoint, page-aligned slice of the logical space (its trace's LSNs
//! are offset by the slices stacked before it), so tenants never share
//! data but *do* share everything the paper cares about: the write
//! buffer, GC, the read-path countermeasures, and raw channel/chip
//! bandwidth.
//!
//! [`run_tenants_qd`] replays the set through the same NCQ-style engine
//! as [`run_trace_qd`](crate::run_trace_qd), with two stages bolted in
//! front of the host queue:
//!
//! 1. **Token-bucket admission** (`rate` + `burst` per tenant). A
//!    request becomes *eligible* at `max(arrival, token_ready)`; tokens
//!    refill continuously at `rate` per second up to `burst`. `rate = 0`
//!    disables throttling (every request is eligible at its arrival).
//! 2. **Deficit round-robin dispatch.** When a queue slot frees, the
//!    earliest-eligible head request is chosen among tenants by DRR over
//!    per-tenant FIFOs: each tenant's turn banks `DRR_QUANTUM_SECTORS ×
//!    weight` sectors of deficit, requests are served while the deficit
//!    covers their sector count, and unused deficit carries over only
//!    while the tenant stays backlogged. Over any saturated interval,
//!    tenant service shares therefore track their weights to within one
//!    quantum — the invariant `drr_respects_weights_under_saturation`
//!    locks.
//!
//! With a **single tenant at default QoS** (unlimited rate) both stages
//! vanish: the one FIFO preserves trace order, eligibility degenerates
//! to the arrival stamp, and the replay is **bit-identical** to
//! [`run_trace_qd`](crate::run_trace_qd) — locked verbatim by
//! `single_tenant_matches_run_trace_qd`.
//!
//! # Latency contract
//!
//! The global [`RunReport`] keeps the PR-5/6 semantics: service
//! histograms record issue → done, and the `latency.response` histogram
//! records arrival → done for open-arrival traces. Each
//! [`TenantReport`] additionally carries that tenant's own arrival →
//! done **response** histogram (recorded for reads and synchronous
//! writes of *open* tenants — a closed tenant's "response time" would
//! just accumulate makespan) and its SLO attainment: the fraction of
//! response samples at or under [`TenantConfig::slo`]. Admission delay
//! imposed by the token bucket is part of response time by design —
//! throttling trades a tenant's own queueing for its neighbors' tails.

use esp_sim::{CalendarQueue, HdrHistogram, SimDuration, SimTime};
use esp_workload::{IoOp, Trace, SECTORS_PER_PAGE};

use crate::runner::{device_wear_summary, Ftl, HazardMode, Hazards};
use crate::stats::RunReport;

/// Sectors of deficit one weight unit banks per DRR turn. Small enough
/// that low-weight tenants are not starved for long stretches, large
/// enough that a full-page request fits in a single turn.
pub const DRR_QUANTUM_SECTORS: u64 = 16;

/// Per-tenant QoS settings: scheduling weight, token-bucket admission,
/// and an optional response-time SLO.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantConfig {
    /// Display name (report rows, espsim output).
    pub name: String,
    /// Deficit-round-robin weight (≥ 1): relative share of device
    /// service, in sectors, under contention.
    pub weight: u32,
    /// Token-bucket refill rate in requests per second; `0.0` disables
    /// admission throttling.
    pub rate: f64,
    /// Token-bucket capacity in requests (≥ 1): the largest burst
    /// admitted at line rate.
    pub burst: u32,
    /// Response-time SLO target: a response sample meets the SLO when
    /// arrival → done is at or under this. `None` disables the
    /// attainment row.
    pub slo: Option<SimDuration>,
}

impl TenantConfig {
    /// A tenant with default QoS: weight 1, no admission throttling, no
    /// SLO — the configuration under which a single tenant replays
    /// bit-identically to [`run_trace_qd`](crate::run_trace_qd).
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        TenantConfig {
            name: name.into(),
            weight: 1,
            rate: 0.0,
            burst: 16,
            slo: None,
        }
    }

    /// Sets the DRR weight.
    #[must_use]
    pub fn weight(mut self, weight: u32) -> Self {
        self.weight = weight;
        self
    }

    /// Sets token-bucket admission: `rate` requests per second with a
    /// `burst`-request bucket.
    #[must_use]
    pub fn limit(mut self, rate: f64, burst: u32) -> Self {
        self.rate = rate;
        self.burst = burst;
        self
    }

    /// Sets the response-time SLO target.
    #[must_use]
    pub fn slo(mut self, target: SimDuration) -> Self {
        self.slo = Some(target);
        self
    }
}

struct TenantEntry {
    config: TenantConfig,
    trace: Trace,
    /// First LSN of this tenant's slice of the logical space.
    base_lsn: u64,
}

/// A set of tenants to multiplex onto one device, each owning a
/// disjoint page-aligned slice of the logical space.
///
/// # Examples
///
/// ```
/// use esp_core::{run_tenants_qd, FtlConfig, SubFtl, TenantConfig, TenantSet};
/// use esp_workload::{generate, SyntheticConfig};
///
/// let cfg = FtlConfig::tiny();
/// let mut ftl = SubFtl::new(&cfg);
/// let trace = |seed| {
///     generate(&SyntheticConfig {
///         footprint_sectors: 64, // two slices exactly fill the tiny device
///         requests: 200,
///         seed,
///         ..SyntheticConfig::default()
///     })
/// };
/// let mut set = TenantSet::new();
/// set.add(TenantConfig::new("victim").weight(4), trace(1));
/// set.add(TenantConfig::new("noisy").limit(50_000.0, 32), trace(2));
/// let report = run_tenants_qd(&mut ftl, &set, 8);
/// assert_eq!(report.tenants.len(), 2);
/// assert_eq!(report.run.requests, 400);
/// ```
#[derive(Default)]
pub struct TenantSet {
    entries: Vec<TenantEntry>,
    footprint: u64,
}

impl TenantSet {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> Self {
        TenantSet::default()
    }

    /// Adds a tenant. Its trace's LSNs are offset by the footprints of
    /// the tenants already in the set (rounded up to a page boundary),
    /// giving it a private slice of the logical space.
    ///
    /// # Panics
    ///
    /// Panics on a zero weight, zero burst, or non-finite/negative rate.
    pub fn add(&mut self, config: TenantConfig, trace: Trace) {
        assert!(config.weight >= 1, "tenant weight must be at least 1");
        assert!(config.burst >= 1, "tenant burst must be at least 1");
        assert!(
            config.rate.is_finite() && config.rate >= 0.0,
            "tenant rate must be finite and non-negative (0 = unlimited)"
        );
        let base_lsn = self.footprint.next_multiple_of(u64::from(SECTORS_PER_PAGE));
        self.footprint = base_lsn + trace.footprint_sectors;
        self.entries.push(TenantEntry {
            config,
            trace,
            base_lsn,
        });
    }

    /// Number of tenants.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no tenant has been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Combined logical footprint of all tenant slices, in sectors.
    #[must_use]
    pub fn footprint_sectors(&self) -> u64 {
        self.footprint
    }

    /// Total request count across all tenants.
    #[must_use]
    pub fn total_requests(&self) -> u64 {
        self.entries.iter().map(|e| e.trace.len() as u64).sum()
    }
}

/// Continuous-refill token bucket gating one tenant's admission.
#[derive(Debug, Clone)]
struct TokenBucket {
    /// Tokens per nanosecond; `0.0` = unlimited (bucket disabled).
    rate_per_ns: f64,
    capacity: f64,
    tokens: f64,
    last: SimTime,
}

impl TokenBucket {
    fn new(rate_per_sec: f64, burst: u32, at: SimTime) -> Self {
        TokenBucket {
            rate_per_ns: rate_per_sec / 1e9,
            capacity: f64::from(burst),
            tokens: f64::from(burst),
            last: at,
        }
    }

    /// Earliest instant at which one token is available. Exact for any
    /// query time at or after `last` (state only changes on `consume`).
    fn ready_at(&self) -> SimTime {
        if self.rate_per_ns <= 0.0 || self.tokens >= 1.0 {
            return if self.rate_per_ns <= 0.0 {
                SimTime::ZERO
            } else {
                self.last
            };
        }
        let wait_ns = ((1.0 - self.tokens) / self.rate_per_ns).ceil() as u64;
        self.last + SimDuration::from_nanos(wait_ns)
    }

    /// Removes one token at time `at` (which must be ≥ [`Self::ready_at`]).
    fn consume(&mut self, at: SimTime) {
        if self.rate_per_ns <= 0.0 {
            return;
        }
        let dt = at.saturating_since(self.last).as_nanos() as f64;
        self.tokens = (self.tokens + dt * self.rate_per_ns).min(self.capacity) - 1.0;
        self.last = at;
    }
}

/// Deficit-round-robin chooser over per-tenant FIFOs. One call picks the
/// tenant for one queue-slot grant; the cursor and per-tenant deficits
/// persist across grants so a tenant's turn spans as many requests as
/// its banked deficit covers.
struct Drr {
    weights: Vec<u64>,
    deficit: Vec<u64>,
    /// Whether the tenant under the cursor has already banked its
    /// quantum for the current turn.
    fresh: Vec<bool>,
    cursor: usize,
}

impl Drr {
    fn new(weights: Vec<u64>) -> Self {
        let n = weights.len();
        Drr {
            weights,
            deficit: vec![0; n],
            fresh: vec![false; n],
            cursor: 0,
        }
    }

    /// Picks the next tenant among those for which `eligible` holds.
    /// `cost` is the head request's sector count; `backlogged` reports
    /// whether a tenant still has any requests queued (an emptied
    /// tenant forfeits its carried deficit, per standard DRR).
    ///
    /// The caller must guarantee at least one eligible tenant; each full
    /// rotation banks another quantum for it, so the loop terminates.
    fn pick(
        &mut self,
        eligible: impl Fn(usize) -> bool,
        cost: impl Fn(usize) -> u64,
        backlogged: impl Fn(usize) -> bool,
    ) -> usize {
        let n = self.weights.len();
        if n == 1 {
            return 0;
        }
        loop {
            let t = self.cursor;
            if eligible(t) {
                if !self.fresh[t] {
                    self.deficit[t] =
                        self.deficit[t].saturating_add(DRR_QUANTUM_SECTORS * self.weights[t]);
                    self.fresh[t] = true;
                }
                let c = cost(t);
                if self.deficit[t] >= c {
                    self.deficit[t] -= c;
                    return t; // cursor stays: the turn continues
                }
            } else if !backlogged(t) {
                self.deficit[t] = 0;
            }
            self.fresh[t] = false;
            self.cursor = (self.cursor + 1) % n;
        }
    }
}

/// One tenant's slice of a [`run_tenants_qd`] replay.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// Tenant name from [`TenantConfig`].
    pub name: String,
    /// DRR weight the run used.
    pub weight: u32,
    /// Token-bucket rate the run used (`0.0` = unlimited).
    pub rate: f64,
    /// Token-bucket burst the run used.
    pub burst: u32,
    /// Requests this tenant replayed.
    pub requests: u64,
    /// Sectors of host data this tenant moved (reads + writes).
    pub sectors: u64,
    /// This tenant's throughput over the run's makespan, requests/s.
    pub iops: f64,
    /// Arrival → done response times (reads and synchronous writes;
    /// empty for closed tenants — see the module docs).
    pub response: HdrHistogram,
    /// SLO target, if one was configured.
    pub slo: Option<SimDuration>,
    /// Response samples checked against the SLO.
    pub slo_samples: u64,
    /// Response samples that met the SLO.
    pub slo_good: u64,
}

impl TenantReport {
    /// Fraction of response samples that met the SLO, if an SLO was
    /// configured and any samples were recorded.
    #[must_use]
    pub fn slo_attainment(&self) -> Option<f64> {
        match (self.slo, self.slo_samples) {
            (Some(_), n) if n > 0 => Some(self.slo_good as f64 / n as f64),
            _ => None,
        }
    }
}

/// A [`run_tenants_qd`] result: the familiar whole-device [`RunReport`]
/// plus one [`TenantReport`] per tenant, in [`TenantSet`] order.
#[derive(Debug, Clone)]
pub struct TenantRunReport {
    /// Whole-device report, same semantics as
    /// [`run_trace_qd`](crate::run_trace_qd).
    pub run: RunReport,
    /// Per-tenant rows.
    pub tenants: Vec<TenantReport>,
}

/// Replays a [`TenantSet`] through `ftl` at `queue_depth`, with
/// token-bucket admission and DRR dispatch in front of the host queue
/// (see the module docs for semantics and the single-tenant bit-identity
/// guarantee).
///
/// # Panics
///
/// Panics if `queue_depth` is zero, the set is empty, or the combined
/// footprint exceeds the device's logical space.
pub fn run_tenants_qd<F: Ftl + ?Sized>(
    ftl: &mut F,
    set: &TenantSet,
    queue_depth: usize,
) -> TenantRunReport {
    assert!(queue_depth > 0, "queue_depth must be at least 1");
    assert!(!set.is_empty(), "tenant set must not be empty");
    assert!(
        set.footprint_sectors() <= ftl.logical_sectors(),
        "combined tenant footprint ({} sectors) exceeds the device's logical space ({} sectors)",
        set.footprint_sectors(),
        ftl.logical_sectors()
    );
    let n = set.entries.len();
    let base = ftl.ssd().makespan();
    let stats0 = ftl.stats().clone();
    let dev0 = *ftl.ssd().device().stats();

    let mut slots: CalendarQueue<()> = CalendarQueue::new();
    for _ in 0..queue_depth {
        slots.push(base, ());
    }
    let mut clock = base;
    let mut hazards = Hazards::new(HazardMode::Auto, set.footprint_sectors());
    let mut latency = esp_sim::Log2Histogram::new();
    let mut read_latency = HdrHistogram::new();
    let mut write_latency = HdrHistogram::new();
    let mut response_latency = HdrHistogram::new();
    let open_arrival = set
        .entries
        .iter()
        .any(|e| e.trace.iter().any(|r| r.arrival > SimTime::ZERO));

    // Per-tenant scheduler state, indexed like `set.entries`.
    let mut next_idx = vec![0usize; n];
    let mut buckets: Vec<TokenBucket> = set
        .entries
        .iter()
        .map(|e| TokenBucket::new(e.config.rate, e.config.burst, base))
        .collect();
    let mut drr = Drr::new(
        set.entries
            .iter()
            .map(|e| u64::from(e.config.weight))
            .collect(),
    );
    let tenant_open: Vec<bool> = set
        .entries
        .iter()
        .map(|e| e.trace.iter().any(|r| r.arrival > SimTime::ZERO))
        .collect();
    let mut response: Vec<HdrHistogram> = (0..n).map(|_| HdrHistogram::new()).collect();
    let mut sectors_moved = vec![0u64; n];
    let mut slo_samples = vec![0u64; n];
    let mut slo_good = vec![0u64; n];

    // Arrival stamp of tenant `t`'s head request, on the global clock.
    let head_arrival = |next_idx: &[usize], t: usize| {
        base + SimDuration::from_nanos(
            set.entries[t].trace.requests[next_idx[t]]
                .arrival
                .as_nanos(),
        )
    };

    let total = set.total_requests();
    for _ in 0..total {
        let (slot_free, ()) = slots.pop().expect("at least one slot");
        // Eligibility horizon: a pending head request is eligible at
        // max(arrival, token ready). If nothing is eligible when the
        // slot frees, the grant waits for the earliest gate.
        let mut now = slot_free;
        let mut min_gate: Option<SimTime> = None;
        for t in 0..n {
            if next_idx[t] < set.entries[t].trace.len() {
                let gate = head_arrival(&next_idx, t).max(buckets[t].ready_at());
                min_gate = Some(min_gate.map_or(gate, |m: SimTime| m.min(gate)));
            }
        }
        let min_gate = min_gate.expect("at least one pending request");
        now = now.max(min_gate);

        let t = drr.pick(
            |t| {
                next_idx[t] < set.entries[t].trace.len()
                    && head_arrival(&next_idx, t).max(buckets[t].ready_at()) <= now
            },
            |t| u64::from(set.entries[t].trace.requests[next_idx[t]].sectors),
            |t| next_idx[t] < set.entries[t].trace.len(),
        );
        let entry = &set.entries[t];
        let r = entry.trace.requests[next_idx[t]];
        next_idx[t] += 1;

        let arrival = base + SimDuration::from_nanos(r.arrival.as_nanos());
        let gate = arrival.max(buckets[t].ready_at());
        buckets[t].consume(now);
        let lsn = entry.base_lsn + r.lsn;
        let is_write = r.op == IoOp::Write;
        let dep = hazards.dep(lsn, r.sectors, is_write);
        let issue = slot_free.max(gate).max(dep);
        if gate > clock {
            // Every in-flight request completed before the chosen
            // request became eligible: a genuine idle window (for the
            // single-tenant unlimited case, `gate == arrival`, matching
            // `run_trace_qd` exactly).
            ftl.idle(clock, gate);
        }
        ftl.maintain(issue);
        let done = match r.op {
            IoOp::Write => {
                let done = ftl.write(lsn, r.sectors, r.sync, issue);
                if r.sync {
                    let ns = done.saturating_since(issue).as_nanos();
                    latency.record(ns);
                    write_latency.record(ns);
                    if open_arrival {
                        response_latency.record(done.saturating_since(arrival).as_nanos());
                    }
                    if tenant_open[t] {
                        record_response(
                            done.saturating_since(arrival),
                            &mut response[t],
                            entry.config.slo,
                            &mut slo_samples[t],
                            &mut slo_good[t],
                        );
                    }
                    done
                } else {
                    issue
                }
            }
            IoOp::Read => {
                let done = ftl.read(lsn, r.sectors, issue);
                let ns = done.saturating_since(issue).as_nanos();
                latency.record(ns);
                read_latency.record(ns);
                if open_arrival {
                    response_latency.record(done.saturating_since(arrival).as_nanos());
                }
                if tenant_open[t] {
                    record_response(
                        done.saturating_since(arrival),
                        &mut response[t],
                        entry.config.slo,
                        &mut slo_samples[t],
                        &mut slo_good[t],
                    );
                }
                done
            }
        };
        sectors_moved[t] += u64::from(r.sectors);
        hazards.publish(lsn, r.sectors, is_write, done);
        hazards.maybe_prune(slot_free);
        slots.push(done, ());
        clock = clock.max(done);
    }
    let flushed = ftl.flush(clock);

    let end = ftl.ssd().makespan().max(flushed).max(clock);
    let makespan_ns = end.saturating_since(base);
    let makespan = SimTime::ZERO + makespan_ns;
    let secs = makespan_ns.as_secs_f64();
    let requests = total;
    let iops = if secs > 0.0 {
        requests as f64 / secs
    } else {
        0.0
    };
    let dev = ftl.ssd().device().stats();
    let run = RunReport {
        ftl: ftl.name(),
        requests,
        makespan,
        iops,
        stats: ftl.stats().minus(&stats0),
        erases: dev.erases.saturating_sub(dev0.erases),
        programs: (
            dev.full_programs.saturating_sub(dev0.full_programs),
            dev.subpage_programs.saturating_sub(dev0.subpage_programs),
        ),
        recovered_reads: dev.recovered_reads.saturating_sub(dev0.recovered_reads),
        retry_steps: dev.retry_steps.saturating_sub(dev0.retry_steps),
        soft_decodes: dev.soft_decodes.saturating_sub(dev0.soft_decodes),
        latency,
        read_latency,
        write_latency,
        response_latency,
        wear: device_wear_summary(
            ftl.ssd(),
            dev.shallow_erases.saturating_sub(dev0.shallow_erases),
        ),
    };

    let tenants = set
        .entries
        .iter()
        .enumerate()
        .map(|(t, e)| TenantReport {
            name: e.config.name.clone(),
            weight: e.config.weight,
            rate: e.config.rate,
            burst: e.config.burst,
            requests: e.trace.len() as u64,
            sectors: sectors_moved[t],
            iops: if secs > 0.0 {
                e.trace.len() as f64 / secs
            } else {
                0.0
            },
            response: response[t].clone(),
            slo: e.config.slo,
            slo_samples: slo_samples[t],
            slo_good: slo_good[t],
        })
        .collect();
    TenantRunReport { run, tenants }
}

fn record_response(
    resp: SimDuration,
    hist: &mut HdrHistogram,
    slo: Option<SimDuration>,
    samples: &mut u64,
    good: &mut u64,
) {
    hist.record(resp.as_nanos());
    if let Some(target) = slo {
        *samples += 1;
        if resp <= target {
            *good += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_trace_qd;
    use crate::stats::FtlStats;
    use crate::{FtlConfig, SubFtl};
    use esp_ssd::Ssd;
    use esp_workload::{generate, IoRequest, SyntheticConfig};

    fn mixed_trace(footprint: u64, seed: u64) -> Trace {
        generate(&SyntheticConfig {
            footprint_sectors: footprint,
            requests: 600,
            r_small: 0.8,
            r_synch: 0.6,
            read_fraction: 0.3,
            inter_arrival: SimDuration::from_micros(300),
            burst_period: 97,
            burst_idle: SimDuration::from_millis(40),
            seed,
            ..SyntheticConfig::default()
        })
    }

    /// A device big enough to host two tenants (~2456 logical sectors),
    /// still small enough for fast tests.
    fn mid_cfg() -> FtlConfig {
        FtlConfig {
            geometry: esp_nand::Geometry {
                channels: 2,
                chips_per_channel: 2,
                blocks_per_chip: 16,
                pages_per_block: 16,
                subpages_per_page: 4,
                subpage_bytes: 4 * 1024,
            },
            write_buffer_sectors: 64,
            overprovision: 0.4,
            ..FtlConfig::paper_default()
        }
    }

    fn all_ftls(cfg: &FtlConfig) -> Vec<(&'static str, Box<dyn Ftl>)> {
        vec![
            ("cgm", Box::new(crate::CgmFtl::new(cfg)) as Box<dyn Ftl>),
            ("fgm", Box::new(crate::FgmFtl::new(cfg))),
            ("sub", Box::new(SubFtl::new(cfg))),
            ("sector_log", Box::new(crate::SectorLogFtl::new(cfg))),
        ]
    }

    /// THE fallback guarantee: one tenant at default QoS replays
    /// bit-identically to `run_trace_qd` — same report JSON (every
    /// histogram bucket), same device makespan, same NAND command
    /// stream — across all four FTLs and several queue depths, on a
    /// workload with idle windows, rewrites, reads and open arrivals.
    #[test]
    fn single_tenant_matches_run_trace_qd() {
        let cfg = FtlConfig::tiny();
        for qd in [1usize, 8] {
            for ((name, mut a), (_, mut b)) in all_ftls(&cfg).into_iter().zip(all_ftls(&cfg)) {
                let trace = mixed_trace(a.logical_sectors() / 2, 0x7EA0);
                let reference = run_trace_qd(a.as_mut(), &trace, qd);
                let mut set = TenantSet::new();
                set.add(TenantConfig::new("solo"), trace);
                let tenants = run_tenants_qd(b.as_mut(), &set, qd);
                assert_eq!(
                    crate::report::run_json("t", &reference).to_pretty(),
                    crate::report::run_json("t", &tenants.run).to_pretty(),
                    "{name} qd={qd}: single tenant must be bit-identical to run_trace_qd"
                );
                assert_eq!(a.ssd().makespan(), b.ssd().makespan(), "{name} qd={qd}");
                assert_eq!(
                    a.ssd().commands_issued(),
                    b.ssd().commands_issued(),
                    "{name} qd={qd}"
                );
            }
        }
    }

    /// Minimal `Ftl` with a fixed per-request service time, to observe
    /// dispatch order and issue times without device-model noise.
    struct FixedFtl {
        ssd: Ssd,
        stats: FtlStats,
        busy: SimDuration,
        calls: Vec<(u64, u32, SimTime)>,
    }

    impl FixedFtl {
        fn new(busy: SimDuration) -> Self {
            FixedFtl {
                ssd: Ssd::new(esp_nand::Geometry::tiny()),
                stats: FtlStats::new(),
                busy,
                calls: Vec::new(),
            }
        }
    }

    impl Ftl for FixedFtl {
        fn name(&self) -> &'static str {
            "fixed"
        }
        fn logical_sectors(&self) -> u64 {
            1 << 20
        }
        fn write(&mut self, lsn: u64, sectors: u32, sync: bool, issue: SimTime) -> SimTime {
            self.calls.push((lsn, sectors, issue));
            if sync {
                issue + self.busy
            } else {
                issue
            }
        }
        fn read(&mut self, lsn: u64, sectors: u32, issue: SimTime) -> SimTime {
            self.calls.push((lsn, sectors, issue));
            issue + self.busy
        }
        fn flush(&mut self, issue: SimTime) -> SimTime {
            issue
        }
        fn stored_seq(&self, _lsn: u64) -> Option<u64> {
            None
        }
        fn trim(&mut self, _lsn: u64, _sectors: u32) {}
        fn mapping_memory_bytes(&self) -> u64 {
            0
        }
        fn stats(&self) -> &FtlStats {
            &self.stats
        }
        fn ssd(&self) -> &Ssd {
            &self.ssd
        }
    }

    fn sync_writes(requests: usize, sectors: u32) -> Trace {
        let mut t = Trace::new(4096);
        for i in 0..requests {
            let lsn = (i as u64 * u64::from(sectors)) % 4000;
            t.push(IoRequest::write(SimTime::ZERO, lsn, sectors, true));
        }
        t
    }

    /// The fairness invariant the module docs promise: while both
    /// tenants are backlogged and eligible, each tenant's served sectors
    /// normalized by its weight never diverges by more than ~one DRR
    /// quantum from the other's.
    #[test]
    fn drr_respects_weights_under_saturation() {
        let (w_a, w_b) = (3u64, 1u64);
        let mut ftl = FixedFtl::new(SimDuration::from_micros(100));
        let mut set = TenantSet::new();
        set.add(
            TenantConfig::new("a").weight(w_a as u32),
            sync_writes(900, 4),
        );
        set.add(
            TenantConfig::new("b").weight(w_b as u32),
            sync_writes(900, 4),
        );
        let base_b = set.entries[1].base_lsn;
        run_tenants_qd(&mut ftl, &set, 1);

        let (mut served_a, mut served_b) = (0u64, 0u64);
        let mut checked = 0;
        for &(lsn, sectors, _) in &ftl.calls {
            if lsn >= base_b {
                served_b += u64::from(sectors);
            } else {
                served_a += u64::from(sectors);
            }
            // Both tenants have 3600 sectors of demand; only check
            // prefixes where neither can have drained.
            if served_a < 3000 && served_b < 3000 {
                checked += 1;
                let norm_a = served_a as f64 / w_a as f64;
                let norm_b = served_b as f64 / w_b as f64;
                assert!(
                    (norm_a - norm_b).abs() <= 2.0 * DRR_QUANTUM_SECTORS as f64,
                    "weighted shares diverged: a={served_a} b={served_b}"
                );
            }
        }
        assert!(checked > 500, "saturation window too short: {checked}");
        // Over the saturated region the sector ratio tracks the weights.
        let ratio = served_a.min(3000 * w_a / (w_a + w_b) * 4) as f64;
        assert!(ratio > 0.0);
    }

    /// Token-bucket conformance: over ANY window of the admitted
    /// stream, the number of requests admitted is at most
    /// `burst + rate × window + 1`. With a deep queue and a fast device
    /// the issue times observed by the FTL equal the admission times,
    /// so the property is checked end to end, not just on the bucket.
    #[test]
    fn token_bucket_conforms_over_any_window() {
        let (rate, burst) = (5_000.0f64, 8u32);
        let requests = 600;
        let mut ftl = FixedFtl::new(SimDuration::from_nanos(10));
        let mut set = TenantSet::new();
        set.add(
            TenantConfig::new("throttled").limit(rate, burst),
            sync_writes(requests, 1),
        );
        let report = run_tenants_qd(&mut ftl, &set, requests + 2);
        let times: Vec<u64> = ftl.calls.iter().map(|&(_, _, t)| t.as_nanos()).collect();
        assert_eq!(times.len(), requests);
        for i in 0..times.len() {
            for j in i..times.len() {
                let window_s = (times[j] - times[i]) as f64 / 1e9;
                let admitted = (j - i + 1) as f64;
                assert!(
                    admitted <= f64::from(burst) + rate * window_s + 1.0,
                    "window [{i}, {j}] admitted {admitted} in {window_s}s"
                );
            }
        }
        // The first burst goes through at line rate, the rest at ~rate.
        assert!(times[burst as usize - 1] < 1_000);
        let span_s = (times[requests - 1] - times[0]) as f64 / 1e9;
        let sustained = requests as f64 / span_s;
        assert!(
            (sustained / rate - 1.0).abs() < 0.05,
            "sustained admitted rate {sustained}, configured {rate}"
        );
        // Throughput in the report reflects the throttle.
        assert!(report.run.iops <= rate * 1.1);
    }

    /// A closed aggressor sharing the device with an open victim: QoS
    /// (weight + rate limit on the aggressor) must cut the victim's p99
    /// response time versus the unthrottled run. This is the
    /// fig_tenant_isolation claim in miniature, on a real FTL.
    #[test]
    fn qos_caps_victim_tail_inflation() {
        let victim_trace = || {
            generate(&SyntheticConfig {
                footprint_sectors: 512,
                requests: 300,
                r_small: 1.0,
                r_synch: 1.0,
                read_fraction: 0.5,
                inter_arrival: SimDuration::from_micros(500),
                seed: 21,
                ..SyntheticConfig::default()
            })
        };
        let noisy_trace = || {
            generate(&SyntheticConfig {
                footprint_sectors: 1024,
                requests: 3000,
                r_small: 1.0,
                r_synch: 1.0,
                seed: 22,
                ..SyntheticConfig::default()
            })
        };
        let cfg = mid_cfg();
        let p99 = |qos: bool| {
            let mut ftl = SubFtl::new(&cfg);
            let mut set = TenantSet::new();
            // The unthrottled aggressor saturates the device (~100 IOPS of
            // sync small writes on this geometry); 30/s leaves the victim
            // real slack.
            let noisy = if qos {
                TenantConfig::new("noisy").limit(30.0, 4)
            } else {
                TenantConfig::new("noisy")
            };
            set.add(TenantConfig::new("victim").weight(4), victim_trace());
            set.add(noisy, noisy_trace());
            let report = run_tenants_qd(&mut ftl, &set, 8);
            assert_eq!(report.tenants[0].name, "victim");
            assert!(report.tenants[0].response.count() > 0);
            // The closed aggressor records no response samples.
            assert_eq!(report.tenants[1].response.count(), 0);
            report.tenants[0].response.percentile(0.99)
        };
        let (without, with) = (p99(false), p99(true));
        assert!(
            with < without,
            "QoS must reduce the victim p99: {with} !< {without}"
        );
    }

    #[test]
    fn multi_tenant_replay_is_deterministic() {
        let run = || {
            let cfg = mid_cfg();
            let mut ftl = SubFtl::new(&cfg);
            let mut set = TenantSet::new();
            set.add(
                TenantConfig::new("a")
                    .weight(2)
                    .slo(SimDuration::from_millis(2)),
                mixed_trace(700, 1),
            );
            set.add(
                TenantConfig::new("b").limit(3_000.0, 8),
                mixed_trace(700, 2),
            );
            let r = run_tenants_qd(&mut ftl, &set, 4);
            (
                crate::report::run_json("t", &r.run).to_pretty(),
                r.tenants
                    .iter()
                    .map(|t| (t.response.count(), t.response.percentile(0.99), t.slo_good))
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn slo_attainment_counts_response_samples() {
        let mut ftl = FixedFtl::new(SimDuration::from_micros(50));
        let mut set = TenantSet::new();
        let mut trace = Trace::new(1024);
        for i in 0..100u64 {
            trace.push(IoRequest::write(
                SimTime::from_nanos(i * 1_000_000),
                i,
                1,
                true,
            ));
        }
        // Service is a flat 50 us and arrivals are 1 ms apart, so every
        // response is exactly 50 us: a 60 us SLO is always met, a 40 us
        // SLO never.
        set.add(
            TenantConfig::new("meets").slo(SimDuration::from_micros(60)),
            trace.clone(),
        );
        let report = run_tenants_qd(&mut ftl, &set, 4);
        let t = &report.tenants[0];
        assert_eq!(t.slo_samples, 100);
        assert_eq!(t.slo_good, 100);
        assert_eq!(t.slo_attainment(), Some(1.0));

        let mut ftl = FixedFtl::new(SimDuration::from_micros(50));
        let mut set = TenantSet::new();
        set.add(
            TenantConfig::new("misses").slo(SimDuration::from_micros(40)),
            trace,
        );
        let report = run_tenants_qd(&mut ftl, &set, 4);
        assert_eq!(report.tenants[0].slo_attainment(), Some(0.0));
    }

    #[test]
    fn tenant_slices_are_disjoint_and_page_aligned() {
        let mut set = TenantSet::new();
        set.add(TenantConfig::new("a"), Trace::new(1001));
        set.add(TenantConfig::new("b"), Trace::new(64));
        set.add(TenantConfig::new("c"), Trace::new(10));
        assert_eq!(set.entries[0].base_lsn, 0);
        assert_eq!(set.entries[1].base_lsn, 1004); // 1001 rounded up to a page
        assert_eq!(set.entries[2].base_lsn, 1068);
        assert_eq!(set.footprint_sectors(), 1078);
    }

    #[test]
    #[should_panic(expected = "exceeds the device's logical space")]
    fn oversized_tenant_set_panics_with_a_clear_message() {
        let mut ftl = FixedFtl::new(SimDuration::from_nanos(10));
        let mut set = TenantSet::new();
        set.add(TenantConfig::new("huge"), Trace::new(1 << 21));
        run_tenants_qd(&mut ftl, &set, 1);
    }
}

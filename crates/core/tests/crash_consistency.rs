//! Mid-operation power-loss sweeps: for every FTL, cutting the workload at
//! arbitrary NAND commands and remounting must uphold the durability
//! contract (synced data survives, nothing corrupt surfaces, recovery is
//! idempotent). See `esp_core::crash_harness` for the oracle construction.
//!
//! These are the bounded in-tree sweeps; `espsim crash-sweep` runs the
//! same harness at acceptance scale from the CLI.

use esp_core::{random_workload, CrashHarness, CrashOp, CrashTarget, FtlConfig};
use esp_core::{CgmFtl, FgmFtl, SectorLogFtl, SubFtl};
use esp_sim::Rng;

/// The sweep config: tiny geometry; subFTL additionally runs in its
/// crash-safe mode, the mode the durability contract covers.
fn cfg() -> FtlConfig {
    let mut c = FtlConfig::tiny();
    c.crash_safe_mode = true;
    c
}

/// Exhaustive sweep over the first `dense` commands plus seeded-random
/// points beyond, asserting a clean report.
fn sweep_clean<F: CrashTarget>(seed: u64, ops_len: usize, dense: u64, random: u64) {
    let mut rng = Rng::seed_from(seed);
    let ops = random_workload(&mut rng, 128, ops_len);
    let h = CrashHarness::<F>::new(&cfg(), &ops);
    let report = h.sweep(dense, random, seed ^ 0x5EED);
    assert!(report.crashed_cases > 0, "sweep must fire real crashes");
    assert!(
        report.passed(),
        "{} violated the crash contract: {:?}",
        report.ftl,
        &report.failures[..report.failures.len().min(3)]
    );
}

#[test]
fn cgm_survives_crash_sweep() {
    sweep_clean::<CgmFtl>(0xC6, 48, 120, 40);
}

#[test]
fn fgm_survives_crash_sweep() {
    sweep_clean::<FgmFtl>(0xF6, 48, 120, 40);
}

#[test]
fn sub_survives_crash_sweep() {
    sweep_clean::<SubFtl>(0x5B, 48, 120, 40);
}

#[test]
fn sector_log_survives_crash_sweep() {
    sweep_clean::<SectorLogFtl>(0x51, 48, 120, 40);
}

/// Property: recovery is idempotent and stable even with *no* crash — for
/// random workloads, remounting a cleanly recovered image a second time
/// with zero intervening writes yields the identical mapping table and
/// identical free/bad pools. (A crash point beyond the command count
/// degenerates the harness check to exactly this crash-free property.)
fn recovery_idempotent<F: CrashTarget>(seed: u64) {
    for case in 0..8u64 {
        let mut rng = Rng::seed_from(seed ^ (case << 8));
        let ops = random_workload(&mut rng, 128, 60);
        let h = CrashHarness::<F>::new(&cfg(), &ops);
        let outcome = h.check_crash_at(h.total_commands() + 1);
        let case_report = outcome.unwrap_or_else(|e| panic!("case {case}: {e}"));
        assert!(!case_report.crashed);
    }
}

#[test]
fn cgm_recovery_is_idempotent() {
    recovery_idempotent::<CgmFtl>(0x1C6);
}

#[test]
fn fgm_recovery_is_idempotent() {
    recovery_idempotent::<FgmFtl>(0x1F6);
}

#[test]
fn sub_recovery_is_idempotent() {
    recovery_idempotent::<SubFtl>(0x15B);
}

#[test]
fn sector_log_recovery_is_idempotent() {
    recovery_idempotent::<SectorLogFtl>(0x151);
}

/// A power cut during a program-retry (first attempt status-failed, the
/// relocation write is the one torn) must not lose the pre-retry durable
/// copy. Fault injection forces retries; the exhaustive sweep then covers
/// the retry commands along with everything else, and the contract demands
/// each sector's last synced version survives either way.
#[test]
fn crash_during_program_retry_keeps_durable_copy() {
    let mut c = cfg();
    c.fault = Some(esp_nand::FaultConfig {
        seed: 23,
        program_fail_prob: 0.05,
        ..esp_nand::FaultConfig::default()
    });
    let mut found_retry = false;
    for seed in 0..4u64 {
        let mut rng = Rng::seed_from(0xE7 ^ (seed << 9));
        let ops = random_workload(&mut rng, 128, 48);
        let h = CrashHarness::<SubFtl>::new(&c, &ops);
        found_retry |= h.reference_stats().write_retries > 0;
        let report = h.sweep(u64::MAX, 0, 0);
        assert!(
            report.passed(),
            "retry-torn crash lost durable data: {:?}",
            &report.failures[..report.failures.len().min(3)]
        );
    }
    assert!(
        found_retry,
        "p=0.05 over four workloads must force at least one retry"
    );
}

/// The documented fast-mode window: with `crash_safe_mode` off (the
/// default, bit-identical to pre-crash-model behavior), subFTL's in-place
/// lap migration re-programs a page whose sibling slot holds the
/// occupant's only copy. A power cut on exactly that program destroys both
/// the old and the new copy (Fig. 4(b) sibling destruction), so a synced
/// sector can be lost. This test pins the trade-off down: the same hot
/// workload passes the sweep in safe mode and violates durability in fast
/// mode.
#[test]
fn fast_mode_lap_migration_has_a_crash_window() {
    // Hot small sync writes cycle the lap allocator until migrations fire.
    let ops: Vec<CrashOp> = (0..120)
        .map(|i| CrashOp::Write {
            lsn: i % 8,
            sectors: 1,
            sync: true,
        })
        .chain(std::iter::once(CrashOp::Flush))
        .collect();

    let safe = CrashHarness::<SubFtl>::new(&cfg(), &ops);
    assert!(
        safe.reference_stats().lap_migrations > 0,
        "workload must exercise lap-slot reclamation"
    );
    assert!(safe.sweep(u64::MAX, 0, 0).passed());

    let fast_cfg = FtlConfig::tiny(); // crash_safe_mode: false
    let fast = CrashHarness::<SubFtl>::new(&fast_cfg, &ops);
    assert!(
        fast.reference_stats().lap_migrations > 0,
        "fast mode must migrate in place for the window to exist"
    );
    let report = fast.sweep(u64::MAX, 0, 0);
    assert!(
        !report.passed(),
        "in-place lap migration is expected to expose a durability window"
    );
    assert!(
        report
            .failures
            .iter()
            .all(|(_, msg)| msg.contains("was durable")),
        "the only violations must be lost synced data, not corruption or \
         non-idempotence: {:?}",
        &report.failures[..report.failures.len().min(3)]
    );
}

/// Mount-time accounting: a crash that tears a page mid-program must show
/// up in the remount's `torn_pages_quarantined` counter (surfaced through
/// the sweep report), and the quarantined page still costs scan time.
#[test]
fn torn_pages_are_counted_across_a_sweep() {
    let mut rng = Rng::seed_from(0x70A2);
    let ops = random_workload(&mut rng, 128, 40);
    let h = CrashHarness::<SubFtl>::new(&cfg(), &ops);
    let report = h.sweep(u64::MAX, 0, 0);
    assert!(report.passed());
    assert!(
        report.torn_pages > 0,
        "tearing programs across a whole sweep must quarantine pages"
    );
}

//! Power-loss recovery tests: after an arbitrary workload, dropping all
//! DRAM state and rebuilding each FTL from flash contents must yield a
//! mapping that agrees with the pre-crash FTL on every durable sector —
//! and the recovered FTL must keep working.
//!
//! Randomized cases are driven by the deterministic `esp_sim::Rng`
//! (reproducible from the printed seed).
//!
//! Trim is advisory, so a recovered FTL may legitimately resurrect trimmed
//! (but still physically readable) data; the oracle therefore only checks
//! sectors the pre-crash FTL still maps.

use esp_core::{CgmFtl, FgmFtl, Ftl, FtlConfig, SectorLogFtl, SubFtl};
use esp_sim::{Rng, SimTime};

#[derive(Debug, Clone)]
enum Op {
    Write { lsn: u64, sectors: u32, sync: bool },
    Trim { lsn: u64, sectors: u32 },
    Flush,
}

/// Weighted 5:1:1 write/trim/flush, matching the original distribution.
fn random_op(rng: &mut Rng, logical: u64) -> Op {
    let max_start = logical - 4;
    match rng.next_below(7) {
        0..=4 => Op::Write {
            lsn: rng.next_below(max_start),
            sectors: rng.next_in(1, 4) as u32,
            sync: rng.chance(0.5),
        },
        5 => Op::Trim {
            lsn: rng.next_below(max_start),
            sectors: rng.next_in(1, 4) as u32,
        },
        _ => Op::Flush,
    }
}

fn random_ops(rng: &mut Rng, logical: u64, max_len: u64) -> Vec<Op> {
    let n = rng.next_in(1, max_len) as usize;
    (0..n).map(|_| random_op(rng, logical)).collect()
}

/// Applies the ops; returns the set of sectors that were ever trimmed
/// (trim leaves the content undefined, so the recovery oracle must not
/// demand version equality for them — a stale physical copy may
/// legitimately resurface on either side of the crash).
fn apply<F: Ftl>(ftl: &mut F, ops: &[Op]) -> std::collections::HashSet<u64> {
    let mut clock = SimTime::ZERO;
    let mut trimmed = std::collections::HashSet::new();
    for op in ops {
        match op {
            Op::Write { lsn, sectors, sync } => {
                let done = ftl.write(*lsn, *sectors, *sync, clock);
                if *sync {
                    clock = done;
                }
            }
            Op::Trim { lsn, sectors } => {
                ftl.trim(*lsn, *sectors);
                trimmed.extend(*lsn..lsn + u64::from(*sectors));
            }
            Op::Flush => clock = ftl.flush(clock),
        }
    }
    ftl.flush(clock);
    trimmed
}

/// Recovery oracle: every sector the original maps must be recovered with
/// the *same* write sequence number (same version of the data).
fn check_recovery<F: Ftl, G: Ftl>(
    original: &F,
    recovered: &G,
    logical: u64,
    trimmed: &std::collections::HashSet<u64>,
    seed: u64,
) {
    for lsn in 0..logical {
        if trimmed.contains(&lsn) {
            continue;
        }
        if let Some(seq) = original.stored_seq(lsn) {
            let got = recovered.stored_seq(lsn);
            assert_eq!(
                got,
                Some(seq),
                "{} seed {seed}: sector {lsn} had seq {seq} before the crash, {got:?} after recovery",
                recovered.name(),
            );
        }
    }
}

fn post_recovery_smoke<F: Ftl>(ftl: &mut F, logical: u64, seed: u64) {
    // The recovered FTL continues to serve writes and reads faultlessly.
    let mut clock = ftl.ssd().makespan();
    for i in 0..48 {
        clock = ftl.write(i % (logical - 1), 1, true, clock);
    }
    clock = ftl.flush(clock);
    for i in 0..48 {
        clock = ftl.read(i % (logical - 1), 1, clock);
    }
    assert_eq!(
        ftl.stats().read_faults,
        0,
        "{} seed {seed}: faulted after recovery",
        ftl.name()
    );
}

const CASES: u64 = 32;

#[test]
fn cgm_recovers_exactly() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from(0xC6EC ^ seed);
        let ops = random_ops(&mut rng, 128, 99);
        let cfg = FtlConfig::tiny();
        let mut ftl = CgmFtl::new(&cfg);
        let trimmed = apply(&mut ftl, &ops);
        let mut recovered = CgmFtl::recover(ftl.ssd().clone(), &cfg);
        check_recovery(&ftl, &recovered, 128, &trimmed, seed);
        post_recovery_smoke(&mut recovered, 128, seed);
    }
}

#[test]
fn fgm_recovers_exactly() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from(0xF6EC ^ seed);
        let ops = random_ops(&mut rng, 128, 99);
        let cfg = FtlConfig::tiny();
        let mut ftl = FgmFtl::new(&cfg);
        let trimmed = apply(&mut ftl, &ops);
        let mut recovered = FgmFtl::recover(ftl.ssd().clone(), &cfg);
        check_recovery(&ftl, &recovered, 128, &trimmed, seed);
        post_recovery_smoke(&mut recovered, 128, seed);
    }
}

#[test]
fn sub_recovers_exactly() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from(0x5BEC ^ seed);
        let ops = random_ops(&mut rng, 128, 99);
        let cfg = FtlConfig::tiny();
        let mut ftl = SubFtl::new(&cfg);
        let trimmed = apply(&mut ftl, &ops);
        let mut recovered = SubFtl::recover(ftl.ssd().clone(), &cfg);
        recovered.check_invariants();
        check_recovery(&ftl, &recovered, 128, &trimmed, seed);
        post_recovery_smoke(&mut recovered, 128, seed);
        recovered.check_invariants();
    }
}

#[test]
fn sector_log_recovers_exactly() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from(0x51EC ^ seed);
        let ops = random_ops(&mut rng, 128, 99);
        let cfg = FtlConfig::tiny();
        let mut ftl = SectorLogFtl::new(&cfg);
        let trimmed = apply(&mut ftl, &ops);
        let mut recovered = SectorLogFtl::recover(ftl.ssd().clone(), &cfg);
        check_recovery(&ftl, &recovered, 128, &trimmed, seed);
        post_recovery_smoke(&mut recovered, 128, seed);
    }
}

/// Recovery after log churn: enough sync small writes to force log-region
/// GC (full merges), so the scan sees merged data pages, partly valid log
/// blocks and an active append point.
#[test]
fn sector_log_recovers_after_merge_churn() {
    for seed in (0..500u64).step_by(16) {
        let cfg = FtlConfig::tiny();
        let mut ftl = SectorLogFtl::new(&cfg);
        let mut clock = SimTime::ZERO;
        let mut x = seed;
        for _ in 0..400 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let lsn = (x >> 33) % 48;
            clock = ftl.write(lsn, 1, true, clock);
        }
        ftl.flush(clock);
        let mut recovered = SectorLogFtl::recover(ftl.ssd().clone(), &cfg);
        check_recovery(
            &ftl,
            &recovered,
            128,
            &std::collections::HashSet::new(),
            seed,
        );
        post_recovery_smoke(&mut recovered, 128, seed);
    }
}

/// Recovery after region churn: enough sync small writes to force
/// subpage-region GC and laps, so the scan sees mid-lap blocks,
/// GC-moved data and evictions.
#[test]
fn sub_recovers_after_gc_churn() {
    for seed in (0..500u64).step_by(16) {
        let cfg = FtlConfig::tiny();
        let mut ftl = SubFtl::new(&cfg);
        let mut clock = SimTime::ZERO;
        let mut x = seed;
        for _ in 0..400 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let lsn = (x >> 33) % 48;
            clock = ftl.write(lsn, 1, true, clock);
        }
        ftl.flush(clock);
        let mut recovered = SubFtl::recover(ftl.ssd().clone(), &cfg);
        recovered.check_invariants();
        check_recovery(
            &ftl,
            &recovered,
            128,
            &std::collections::HashSet::new(),
            seed,
        );
        post_recovery_smoke(&mut recovered, 128, seed);
    }
}

#[test]
fn recovery_costs_mount_time() {
    let cfg = FtlConfig::tiny();
    let mut ftl = SubFtl::new(&cfg);
    let mut clock = SimTime::ZERO;
    for i in 0..32u64 {
        clock = ftl.write(i, 1, true, clock);
    }
    ftl.flush(clock);
    let before = ftl.ssd().makespan();
    let recovered = SubFtl::recover(ftl.ssd().clone(), &cfg);
    assert!(
        recovered.ssd().makespan() > before,
        "the mount-time scan must consume simulated time"
    );
}

#[test]
fn async_data_lost_in_crash_is_reported_lost() {
    // Buffered (async, unflushed) writes are not durable; after recovery
    // the sector must be absent rather than silently stale-mapped... unless
    // an older durable version existed, which must then be what comes back.
    let cfg = FtlConfig::tiny();
    let mut ftl = SubFtl::new(&cfg);
    let t = ftl.write(7, 1, true, SimTime::ZERO); // durable v1
    let v1 = ftl.stored_seq(7).expect("durable");
    ftl.write(7, 1, false, t); // buffered v2, never flushed
    assert_eq!(
        ftl.stored_seq(7),
        None,
        "buffered: newest copy not on flash"
    );
    let recovered = SubFtl::recover(ftl.ssd().clone(), &cfg);
    assert_eq!(
        recovered.stored_seq(7),
        Some(v1),
        "recovery must surface the last durable version"
    );
}

/// Recovery on a device carrying factory-marked and grown bad blocks: the
/// mount scan must skip them, no region may adopt them, and every durable
/// sector still comes back.
#[test]
fn recovery_excludes_bad_blocks() {
    let mut cfg = FtlConfig::tiny();
    cfg.fault = Some(esp_nand::FaultConfig {
        seed: 41,
        program_fail_prob: 0.02,
        erase_fail_prob: 0.001,
        factory_bad_blocks: 1,
        ..esp_nand::FaultConfig::default()
    });
    let mut ftl = SubFtl::new(&cfg);
    let mut clock = SimTime::ZERO;
    let mut x = 7u64;
    for _ in 0..400 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let lsn = (x >> 33) % 48;
        clock = ftl.write(lsn, 1, true, clock);
    }
    ftl.flush(clock);
    let bad = ftl.ssd().device().bad_block_indices();
    assert!(!bad.is_empty(), "the factory bad block must be visible");
    let mut recovered = SubFtl::recover(ftl.ssd().clone(), &cfg);
    recovered.check_invariants();
    assert_eq!(
        recovered.stats().blocks_retired,
        bad.len() as u64,
        "every bad block must be retired at mount"
    );
    check_recovery(&ftl, &recovered, 128, &std::collections::HashSet::new(), 41);
    post_recovery_smoke(&mut recovered, 128, 41);
    recovered.check_invariants();
}

#[test]
fn region_roles_are_reinferred() {
    // Blocks written with ESP must come back as subpage region (writable
    // through the lap allocator) even though no role table exists.
    let cfg = FtlConfig::tiny();
    let mut ftl = SubFtl::new(&cfg);
    let mut clock = SimTime::ZERO;
    for i in 0..16u64 {
        clock = ftl.write(i, 1, true, clock); // subpage region
        clock = ftl.write(64 + i * 4, 4, true, clock); // full region
    }
    ftl.flush(clock);
    let entries_before = ftl.subpage_entries();
    let recovered = SubFtl::recover(ftl.ssd().clone(), &cfg);
    assert_eq!(
        recovered.subpage_entries(),
        entries_before,
        "every live subpage-region sector must be rediscovered"
    );
}

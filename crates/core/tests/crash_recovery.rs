//! Power-loss recovery tests: after an arbitrary workload, dropping all
//! DRAM state and rebuilding each FTL from flash contents must yield a
//! mapping that agrees with the pre-crash FTL on every durable sector —
//! and the recovered FTL must keep working.
//!
//! Trim is advisory, so a recovered FTL may legitimately resurrect trimmed
//! (but still physically readable) data; the oracle therefore only checks
//! sectors the pre-crash FTL still maps.

use esp_core::{CgmFtl, FgmFtl, Ftl, FtlConfig, SubFtl};
use esp_sim::SimTime;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Write { lsn: u64, sectors: u32, sync: bool },
    Trim { lsn: u64, sectors: u32 },
    Flush,
}

fn op_strategy(logical: u64) -> impl Strategy<Value = Op> {
    let max_start = logical - 4;
    prop_oneof![
        5 => (0..max_start, 1u32..=4, any::<bool>())
            .prop_map(|(lsn, sectors, sync)| Op::Write { lsn, sectors, sync }),
        1 => (0..max_start, 1u32..=4).prop_map(|(lsn, sectors)| Op::Trim { lsn, sectors }),
        1 => Just(Op::Flush),
    ]
}

/// Applies the ops; returns the set of sectors that were ever trimmed
/// (trim leaves the content undefined, so the recovery oracle must not
/// demand version equality for them — a stale physical copy may
/// legitimately resurface on either side of the crash).
fn apply<F: Ftl>(ftl: &mut F, ops: &[Op]) -> std::collections::HashSet<u64> {
    let mut clock = SimTime::ZERO;
    let mut trimmed = std::collections::HashSet::new();
    for op in ops {
        match op {
            Op::Write { lsn, sectors, sync } => {
                let done = ftl.write(*lsn, *sectors, *sync, clock);
                if *sync {
                    clock = done;
                }
            }
            Op::Trim { lsn, sectors } => {
                ftl.trim(*lsn, *sectors);
                trimmed.extend(*lsn..lsn + u64::from(*sectors));
            }
            Op::Flush => clock = ftl.flush(clock),
        }
    }
    ftl.flush(clock);
    trimmed
}

/// Recovery oracle: every sector the original maps must be recovered with
/// the *same* write sequence number (same version of the data).
fn check_recovery<F: Ftl, G: Ftl>(
    original: &F,
    recovered: &G,
    logical: u64,
    trimmed: &std::collections::HashSet<u64>,
) -> Result<(), TestCaseError> {
    for lsn in 0..logical {
        if trimmed.contains(&lsn) {
            continue;
        }
        if let Some(seq) = original.stored_seq(lsn) {
            let got = recovered.stored_seq(lsn);
            prop_assert_eq!(
                got,
                Some(seq),
                "{}: sector {} had seq {} before the crash, {:?} after recovery",
                recovered.name(),
                lsn,
                seq,
                got
            );
        }
    }
    Ok(())
}

fn post_recovery_smoke<F: Ftl>(ftl: &mut F, logical: u64) -> Result<(), TestCaseError> {
    // The recovered FTL continues to serve writes and reads faultlessly.
    let mut clock = ftl.ssd().makespan();
    for i in 0..48 {
        clock = ftl.write(i % (logical - 1), 1, true, clock);
    }
    clock = ftl.flush(clock);
    for i in 0..48 {
        clock = ftl.read(i % (logical - 1), 1, clock);
    }
    prop_assert_eq!(
        ftl.stats().read_faults,
        0,
        "{} faulted after recovery",
        ftl.name()
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cgm_recovers_exactly(ops in prop::collection::vec(op_strategy(128), 1..100)) {
        let cfg = FtlConfig::tiny();
        let mut ftl = CgmFtl::new(&cfg);
        let trimmed = apply(&mut ftl, &ops);
        let mut recovered = CgmFtl::recover(ftl.ssd().clone(), &cfg);
        check_recovery(&ftl, &recovered, 128, &trimmed)?;
        post_recovery_smoke(&mut recovered, 128)?;
    }

    #[test]
    fn fgm_recovers_exactly(ops in prop::collection::vec(op_strategy(128), 1..100)) {
        let cfg = FtlConfig::tiny();
        let mut ftl = FgmFtl::new(&cfg);
        let trimmed = apply(&mut ftl, &ops);
        let mut recovered = FgmFtl::recover(ftl.ssd().clone(), &cfg);
        check_recovery(&ftl, &recovered, 128, &trimmed)?;
        post_recovery_smoke(&mut recovered, 128)?;
    }

    #[test]
    fn sub_recovers_exactly(ops in prop::collection::vec(op_strategy(128), 1..100)) {
        let cfg = FtlConfig::tiny();
        let mut ftl = SubFtl::new(&cfg);
        let trimmed = apply(&mut ftl, &ops);
        let mut recovered = SubFtl::recover(ftl.ssd().clone(), &cfg);
        recovered.check_invariants();
        check_recovery(&ftl, &recovered, 128, &trimmed)?;
        post_recovery_smoke(&mut recovered, 128)?;
        recovered.check_invariants();
    }

    /// Recovery after region churn: enough sync small writes to force
    /// subpage-region GC and laps, so the scan sees mid-lap blocks,
    /// GC-moved data and evictions.
    #[test]
    fn sub_recovers_after_gc_churn(seed in 0u64..500) {
        let cfg = FtlConfig::tiny();
        let mut ftl = SubFtl::new(&cfg);
        let mut clock = SimTime::ZERO;
        let mut x = seed;
        for _ in 0..400 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let lsn = (x >> 33) % 48;
            clock = ftl.write(lsn, 1, true, clock);
        }
        ftl.flush(clock);
        let mut recovered = SubFtl::recover(ftl.ssd().clone(), &cfg);
        recovered.check_invariants();
        check_recovery(&ftl, &recovered, 128, &std::collections::HashSet::new())?;
        post_recovery_smoke(&mut recovered, 128)?;
    }
}

#[test]
fn recovery_costs_mount_time() {
    let cfg = FtlConfig::tiny();
    let mut ftl = SubFtl::new(&cfg);
    let mut clock = SimTime::ZERO;
    for i in 0..32u64 {
        clock = ftl.write(i, 1, true, clock);
    }
    ftl.flush(clock);
    let before = ftl.ssd().makespan();
    let recovered = SubFtl::recover(ftl.ssd().clone(), &cfg);
    assert!(
        recovered.ssd().makespan() > before,
        "the mount-time scan must consume simulated time"
    );
}

#[test]
fn async_data_lost_in_crash_is_reported_lost() {
    // Buffered (async, unflushed) writes are not durable; after recovery
    // the sector must be absent rather than silently stale-mapped... unless
    // an older durable version existed, which must then be what comes back.
    let cfg = FtlConfig::tiny();
    let mut ftl = SubFtl::new(&cfg);
    let t = ftl.write(7, 1, true, SimTime::ZERO); // durable v1
    let v1 = ftl.stored_seq(7).expect("durable");
    ftl.write(7, 1, false, t); // buffered v2, never flushed
    assert_eq!(ftl.stored_seq(7), None, "buffered: newest copy not on flash");
    let recovered = SubFtl::recover(ftl.ssd().clone(), &cfg);
    assert_eq!(
        recovered.stored_seq(7),
        Some(v1),
        "recovery must surface the last durable version"
    );
}

#[test]
fn region_roles_are_reinferred() {
    // Blocks written with ESP must come back as subpage region (writable
    // through the lap allocator) even though no role table exists.
    let cfg = FtlConfig::tiny();
    let mut ftl = SubFtl::new(&cfg);
    let mut clock = SimTime::ZERO;
    for i in 0..16u64 {
        clock = ftl.write(i, 1, true, clock); // subpage region
        clock = ftl.write(64 + i * 4, 4, true, clock); // full region
    }
    ftl.flush(clock);
    let entries_before = ftl.subpage_entries();
    let recovered = SubFtl::recover(ftl.ssd().clone(), &cfg);
    assert_eq!(
        recovered.subpage_entries(),
        entries_before,
        "every live subpage-region sector must be rediscovered"
    );
}

//! Fault-injection properties, checked on random traces over all four
//! FTLs with program/erase failures and factory bad blocks enabled:
//!
//! 1. **No lost data**: reads never fault — every retry/retirement path
//!    must preserve the newest durable copy of every sector.
//! 2. **Monotone durability**: for a fixed sector, the stored sequence
//!    number never decreases across flushes (a failed program must never
//!    roll a mapping back to an older copy).
//! 3. **Determinism**: a run is a pure function of (trace, fault seed) —
//!    repeating it reproduces the same makespan and the same fault
//!    counters bit for bit.
//!
//! Random cases are driven by the deterministic `esp_sim::Rng`, so every
//! failure is reproducible from the printed case seed.

use esp_core::{CgmFtl, FgmFtl, Ftl, FtlConfig, SectorLogFtl, SubFtl};
use esp_nand::FaultConfig;
use esp_sim::{Rng, SimTime};

/// Tiny-device fault rates: program failures are common enough to force
/// retries, erase failures rare enough that the 16-block pools survive.
fn faulty_config(fault_seed: u64) -> FtlConfig {
    let mut cfg = FtlConfig::tiny();
    cfg.fault = Some(FaultConfig {
        seed: fault_seed,
        program_fail_prob: 0.01,
        erase_fail_prob: 0.0005,
        factory_bad_blocks: 1,
        ..FaultConfig::default()
    });
    cfg
}

fn build(name: &str, cfg: &FtlConfig) -> Box<dyn Ftl> {
    match name {
        "sub" => Box::new(SubFtl::new(cfg)),
        "cgm" => Box::new(CgmFtl::new(cfg)),
        "fgm" => Box::new(FgmFtl::new(cfg)),
        "sectorlog" => Box::new(SectorLogFtl::new(cfg)),
        _ => unreachable!(),
    }
}

const FTLS: [&str; 4] = ["sub", "cgm", "fgm", "sectorlog"];

#[derive(Debug, Clone, Copy)]
enum Op {
    Write { lsn: u64, sectors: u32, sync: bool },
    Read { lsn: u64, sectors: u32 },
    Flush,
}

fn random_trace(rng: &mut Rng, logical: u64, len: usize) -> Vec<Op> {
    (0..len)
        .map(|_| {
            // Touch only half the logical space: failed programs burn
            // flash and grown bad blocks shrink the pools, so a full-
            // footprint workload could legitimately overcommit the tiny
            // 16-block device.
            let max_start = logical / 2 - 4;
            match rng.next_below(8) {
                0..=4 => Op::Write {
                    lsn: rng.next_below(max_start),
                    sectors: rng.next_in(1, 4) as u32,
                    sync: rng.chance(0.6),
                },
                5 | 6 => Op::Read {
                    lsn: rng.next_below(max_start),
                    sectors: rng.next_in(1, 4) as u32,
                },
                _ => Op::Flush,
            }
        })
        .collect()
}

/// Replays the ops; after every flush, checks that no mapped sector's
/// stored sequence number went backwards. Returns a determinism
/// fingerprint of the run.
fn replay_checked(
    ftl: &mut dyn Ftl,
    ops: &[Op],
    logical: u64,
    case: u64,
) -> (SimTime, u64, u64, u64, u64, u64) {
    let mut clock = SimTime::ZERO;
    let mut high_water: Vec<u64> = vec![0; logical as usize];
    let check_monotone = |ftl: &dyn Ftl, high: &mut Vec<u64>| {
        for lsn in 0..logical {
            if let Some(seq) = ftl.stored_seq(lsn) {
                assert!(
                    seq >= high[lsn as usize],
                    "{} case {case}: sector {lsn} rolled back from seq {} to {seq}",
                    ftl.name(),
                    high[lsn as usize],
                );
                high[lsn as usize] = seq;
            }
        }
    };
    for op in ops {
        match *op {
            Op::Write { lsn, sectors, sync } => {
                let done = ftl.write(lsn, sectors, sync, clock);
                if sync {
                    clock = done;
                }
            }
            Op::Read { lsn, sectors } => clock = ftl.read(lsn, sectors, clock),
            Op::Flush => {
                clock = ftl.flush(clock);
                check_monotone(ftl, &mut high_water);
            }
        }
    }
    clock = ftl.flush(clock);
    check_monotone(ftl, &mut high_water);
    // Read back every sector that is durably stored.
    for lsn in 0..logical {
        if ftl.stored_seq(lsn).is_some() {
            clock = ftl.read(lsn, 1, clock);
        }
    }
    let s = ftl.stats();
    assert_eq!(
        s.read_faults,
        0,
        "{} case {case}: fault handling lost data",
        ftl.name()
    );
    (
        ftl.ssd().makespan(),
        s.write_retries,
        s.program_failures,
        s.erase_failures,
        s.blocks_retired,
        s.host_write_sectors,
    )
}

#[test]
fn random_faulty_traces_never_lose_data() {
    const LOGICAL: u64 = 128;
    let mut total_retries = 0u64;
    for case in 0..12u64 {
        let mut rng = Rng::seed_from(0xFA17 ^ case);
        let ops = random_trace(&mut rng, LOGICAL, 300);
        let cfg = faulty_config(case + 1);
        for name in FTLS {
            let mut ftl = build(name, &cfg);
            assert!(
                ftl.stats().blocks_retired >= 1,
                "{name} case {case}: factory bad block not retired at mount"
            );
            let fp = replay_checked(ftl.as_mut(), &ops, LOGICAL, case);
            total_retries += fp.1;
        }
    }
    assert!(
        total_retries > 0,
        "p=0.01 over thousands of programs must force at least one retry"
    );
}

#[test]
fn faulty_runs_are_bit_for_bit_deterministic() {
    const LOGICAL: u64 = 128;
    for case in 0..4u64 {
        let mut rng = Rng::seed_from(0xDE7E ^ case);
        let ops = random_trace(&mut rng, LOGICAL, 300);
        let cfg = faulty_config(77);
        for name in FTLS {
            let a = replay_checked(build(name, &cfg).as_mut(), &ops, LOGICAL, case);
            let b = replay_checked(build(name, &cfg).as_mut(), &ops, LOGICAL, case);
            assert_eq!(a, b, "{name} case {case}: same fault seed must reproduce");
        }
    }
}

#[test]
fn different_fault_seeds_diverge() {
    const LOGICAL: u64 = 128;
    let mut rng = Rng::seed_from(0xD1FF);
    let ops = random_trace(&mut rng, LOGICAL, 400);
    // At least one FTL must see a different fault pattern across seeds
    // (individual FTLs may coincidentally match on short traces).
    let mut diverged = false;
    for name in FTLS {
        let a = replay_checked(build(name, &faulty_config(1)).as_mut(), &ops, LOGICAL, 0);
        let b = replay_checked(build(name, &faulty_config(2)).as_mut(), &ops, LOGICAL, 0);
        if a != b {
            diverged = true;
        }
    }
    assert!(diverged, "fault seed must influence the run");
}

//! Properties of the pluggable GC-policy framework and the demand-cached
//! mapping tier:
//!
//! 1. **Policy transparency**: victim selection decides *where* GC copies
//!    valid data, never *which* data is durable — after the same op
//!    sequence (including fault injection and wear leveling), every
//!    policy must agree with the greedy baseline on the stored sequence
//!    number of every logical sector.
//! 2. **Cache transparency**: the demand cache (`map_cache`) only charges
//!    simulated time; the host-visible mapping must be bit-identical to
//!    an uncached run, even at the minimum CMT size where every other
//!    access evicts.
//! 3. **Crash round-trip**: a mount from flash contents with the cache
//!    enabled rebuilds a cold cache and loses no committed mapping —
//!    translation-page state is reconstructible because the in-DRAM map
//!    stays authoritative and recovery scans the OOB spare area.
//!
//! Random cases use the deterministic `esp_sim::Rng` (reproducible from
//! the printed seed).

use esp_core::{
    CgmFtl, FgmFtl, Ftl, FtlConfig, GcPolicyKind, MapCacheConfig, SectorLogFtl, SubFtl,
};
use esp_nand::FaultConfig;
use esp_sim::{Rng, SimTime};

#[derive(Debug, Clone, Copy)]
enum Op {
    Write { lsn: u64, sectors: u32, sync: bool },
    Read { lsn: u64, sectors: u32 },
    Trim { lsn: u64, sectors: u32 },
    Flush,
}

/// Write-heavy mix over a narrow hot set, so GC runs often enough for the
/// victim-selection policies to actually diverge.
fn random_ops(rng: &mut Rng, logical: u64, len: usize) -> Vec<Op> {
    (0..len)
        .map(|_| {
            let max_start = logical / 2 - 4;
            match rng.next_below(10) {
                0..=5 => Op::Write {
                    lsn: rng.next_below(max_start),
                    sectors: rng.next_in(1, 4) as u32,
                    sync: rng.chance(0.6),
                },
                6 | 7 => Op::Read {
                    lsn: rng.next_below(max_start),
                    sectors: rng.next_in(1, 4) as u32,
                },
                8 => Op::Trim {
                    lsn: rng.next_below(max_start),
                    sectors: rng.next_in(1, 4) as u32,
                },
                _ => Op::Flush,
            }
        })
        .collect()
}

fn apply(ftl: &mut dyn Ftl, ops: &[Op]) {
    let mut clock = SimTime::ZERO;
    for op in ops {
        match *op {
            Op::Write { lsn, sectors, sync } => {
                let done = ftl.write(lsn, sectors, sync, clock);
                if sync {
                    clock = done;
                }
            }
            Op::Read { lsn, sectors } => clock = ftl.read(lsn, sectors, clock),
            Op::Trim { lsn, sectors } => ftl.trim(lsn, sectors),
            Op::Flush => clock = ftl.flush(clock),
        }
    }
    ftl.flush(clock);
}

/// The host-visible mapping: stored sequence number per logical sector.
fn durable_map(ftl: &dyn Ftl, logical: u64) -> Vec<Option<u64>> {
    (0..logical).map(|lsn| ftl.stored_seq(lsn)).collect()
}

fn build(name: &str, cfg: &FtlConfig) -> Box<dyn Ftl> {
    match name {
        "sub" => Box::new(SubFtl::new(cfg)),
        "cgm" => Box::new(CgmFtl::new(cfg)),
        "fgm" => Box::new(FgmFtl::new(cfg)),
        "sectorlog" => Box::new(SectorLogFtl::new(cfg)),
        _ => unreachable!(),
    }
}

const FTLS: [&str; 4] = ["sub", "cgm", "fgm", "sectorlog"];
const LOGICAL: u64 = 128;
const CASES: u64 = 12;

/// Fault + wear soak configuration: failures force retries and block
/// retirement mid-GC, wear leveling re-ranks every policy's choice.
fn soak_config(policy: GcPolicyKind, fault_seed: u64) -> FtlConfig {
    let mut cfg = FtlConfig::tiny();
    cfg.gc_policy = policy;
    cfg.wear_leveling = true;
    cfg.fault = Some(FaultConfig {
        seed: fault_seed,
        program_fail_prob: 0.005,
        erase_fail_prob: 0.0003,
        factory_bad_blocks: 1,
        ..FaultConfig::default()
    });
    cfg
}

/// Property 1: every policy preserves exactly the host-visible data the
/// greedy baseline preserves, for all four FTLs, under fault + wear soak.
#[test]
fn policies_preserve_host_data() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from(0x6C9A ^ seed);
        let ops = random_ops(&mut rng, LOGICAL, 600);
        for name in FTLS {
            let mut baseline = build(name, &soak_config(GcPolicyKind::Greedy, seed));
            apply(baseline.as_mut(), &ops);
            let want = durable_map(baseline.as_ref(), LOGICAL);
            for policy in [GcPolicyKind::CostBenefit, GcPolicyKind::WindowedGreedy] {
                let mut ftl = build(name, &soak_config(policy, seed));
                apply(ftl.as_mut(), &ops);
                assert_eq!(
                    durable_map(ftl.as_ref(), LOGICAL),
                    want,
                    "{name} seed {seed}: {policy} diverged from greedy on host data"
                );
                assert_eq!(
                    ftl.stats().read_faults,
                    0,
                    "{name} seed {seed}: {policy} surfaced read faults"
                );
            }
        }
    }
}

/// Property 2: the demand cache is invisible to correctness even at the
/// minimum CMT size (2 pages — maximum eviction churn), and its counters
/// prove the eviction path actually ran.
#[test]
fn map_cache_transparent_under_eviction_pressure() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from(0x3CA0 ^ seed);
        let ops = random_ops(&mut rng, LOGICAL, 400);
        for name in ["cgm", "fgm"] {
            let plain_cfg = FtlConfig::tiny();
            let mut plain = build(name, &plain_cfg);
            apply(plain.as_mut(), &ops);
            let want = durable_map(plain.as_ref(), LOGICAL);

            let mut cached_cfg = FtlConfig::tiny();
            cached_cfg.map_cache = Some(MapCacheConfig { cmt_pages: 2 });
            let mut cached = build(name, &cached_cfg);
            apply(cached.as_mut(), &ops);
            assert_eq!(
                durable_map(cached.as_ref(), LOGICAL),
                want,
                "{name} seed {seed}: cache changed host-visible data"
            );
            let stats = cached
                .map_cache_stats()
                .expect("cache enabled but no stats");
            assert!(
                stats.hits + stats.misses > 0,
                "{name} seed {seed}: cache never consulted"
            );
            assert!(plain.map_cache_stats().is_none(), "uncached FTL has stats");
        }
    }
}

/// A scattered write pattern over a device with several translation pages
/// but a 2-page CMT, guaranteeing misses, dirty evictions and charged
/// translation-page program traffic — and still losing no data.
#[test]
fn map_cache_charges_miss_and_evict_traffic() {
    // 128 blocks x 64 pages x 4 subpages = 32768 sectors, 24576 logical:
    // fgm maps one entry per sector = 6 translation pages (4096 each).
    let cfg = {
        let mut c = FtlConfig::paper_default();
        c.geometry = esp_nand::Geometry {
            channels: 2,
            chips_per_channel: 2,
            blocks_per_chip: 32,
            pages_per_block: 64,
            subpages_per_page: 4,
            subpage_bytes: 4096,
        };
        c.write_buffer_sectors = 16;
        c.map_cache = Some(MapCacheConfig { cmt_pages: 2 });
        c
    };
    let logical = cfg.logical_sectors();
    let mut ftl = FgmFtl::new(&cfg);
    let mut clock = SimTime::ZERO;
    // Alternate a hot region (stays resident in one CMT slot, producing
    // hits) with a pseudo-random stride whose consecutive writes land on
    // different translation pages (thrashing the other slot).
    for i in 0..1000u64 {
        clock = ftl.write(i % 2048, 1, true, clock);
        clock = ftl.write(2048 + (i * 4099) % (logical - 2049), 1, true, clock);
    }
    clock = ftl.flush(clock);
    let s = ftl.map_cache_stats().expect("cache enabled");
    assert!(s.misses > 0, "expected CMT misses, got {s:?}");
    assert!(s.hits > 0, "expected CMT hits, got {s:?}");
    assert!(s.evictions > 0, "expected CMT evictions, got {s:?}");
    assert!(s.dirty_evictions > 0, "expected dirty evictions, got {s:?}");
    assert!(s.tp_programs > 0, "expected charged TP programs, got {s:?}");
    assert!(s.charged_ns > 0, "expected charged time, got {s:?}");
    // Cache pressure never costs data: read everything written back.
    for i in 0..1000u64 {
        clock = ftl.read(i % 2048, 1, clock);
        clock = ftl.read(2048 + (i * 4099) % (logical - 2049), 1, clock);
    }
    assert_eq!(ftl.stats().read_faults, 0, "cache pressure lost data");
}

/// Property 3: mounting from flash with the cache enabled rebuilds a cold
/// cache and recovers every committed mapping — before and after the
/// crash point the in-DRAM map is authoritative, so no translation-page
/// write can strand a newer mapping.
#[test]
fn map_cache_recovery_round_trip() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from(0x3CEC ^ seed);
        let ops = random_ops(&mut rng, LOGICAL, 300);
        let mut cfg = FtlConfig::tiny();
        cfg.map_cache = Some(MapCacheConfig { cmt_pages: 2 });

        let mut ftl = CgmFtl::new(&cfg);
        apply(&mut ftl, &ops);
        let mut recovered = CgmFtl::recover(ftl.ssd().clone(), &cfg);
        for lsn in 0..LOGICAL {
            if let Some(seq) = ftl.stored_seq(lsn) {
                assert_eq!(
                    recovered.stored_seq(lsn),
                    Some(seq),
                    "cgm seed {seed}: sector {lsn} lost or regressed across mount"
                );
            }
        }
        // The recovered instance still runs with a (cold) cache.
        let mut clock = recovered.ssd().makespan();
        for i in 0..32 {
            clock = recovered.write(i % (LOGICAL - 1), 1, true, clock);
        }
        recovered.flush(clock);
        let s = recovered.map_cache_stats().expect("cache survives mount");
        assert!(s.hits + s.misses > 0, "seed {seed}: cold cache never used");

        let mut fgm = FgmFtl::new(&cfg);
        apply(&mut fgm, &ops);
        let rec = FgmFtl::recover(fgm.ssd().clone(), &cfg);
        for lsn in 0..LOGICAL {
            if let Some(seq) = fgm.stored_seq(lsn) {
                assert_eq!(
                    rec.stored_seq(lsn),
                    Some(seq),
                    "fgm seed {seed}: sector {lsn} lost or regressed across mount"
                );
            }
        }
    }
}

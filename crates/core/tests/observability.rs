//! Observability-layer integration tests: per-FTL event tracing, the
//! streaming latency histogram's accuracy bound, and the BENCH JSON
//! report's round-trip/schema guarantees.

use esp_core::{
    run_trace, validate_bench, BenchReport, CgmFtl, FgmFtl, Ftl, FtlConfig, SectorLogFtl, SubFtl,
};
use esp_sim::{HdrHistogram, Json, Rng};
use esp_workload::{generate, SyntheticConfig};

fn small_sync_trace(logical: u64) -> esp_workload::Trace {
    generate(&SyntheticConfig {
        footprint_sectors: logical / 2,
        requests: 400,
        r_small: 0.9,
        r_synch: 0.8,
        ..SyntheticConfig::default()
    })
}

/// Every FTL, once armed, records NAND command events time-sorted; with
/// tracing left disabled (the default) the same run records nothing.
fn check_tracing<F: Ftl>(mut armed: F, mut dark: F) {
    let trace = small_sync_trace(armed.logical_sectors());
    armed.enable_tracing(1 << 16);
    run_trace(&mut armed, &trace);
    run_trace(&mut dark, &trace);

    let events = armed.events();
    assert!(!events.is_empty(), "{}: no events recorded", armed.name());
    assert!(
        events.iter().any(|e| e.kind.starts_with("nand.")),
        "{}: no NAND command events",
        armed.name()
    );
    assert!(
        events.windows(2).all(|w| w[0].at_ns <= w[1].at_ns),
        "{}: events not time-sorted",
        armed.name()
    );
    assert!(
        dark.events().is_empty() && dark.events_dropped() == 0,
        "{}: disabled recorder must record nothing",
        dark.name()
    );
}

#[test]
fn all_ftls_trace_nand_commands() {
    let c = FtlConfig::tiny();
    check_tracing(CgmFtl::new(&c), CgmFtl::new(&c));
    check_tracing(FgmFtl::new(&c), FgmFtl::new(&c));
    check_tracing(SubFtl::new(&c), SubFtl::new(&c));
    check_tracing(SectorLogFtl::new(&c), SectorLogFtl::new(&c));
}

#[test]
fn subftl_traces_subpage_programs_and_gc() {
    let mut ftl = SubFtl::new(&FtlConfig::tiny());
    ftl.enable_tracing(1 << 18);
    let trace = small_sync_trace(ftl.logical_sectors());
    run_trace(&mut ftl, &trace);
    let events = ftl.events();
    assert!(
        events.iter().any(|e| e.kind == "nand.program_subpage"),
        "small sync writes must use erase-free subpage programs"
    );
    // GC invocations recorded in stats must also appear as gc.collect
    // events (the buffer is large enough that nothing was dropped).
    assert_eq!(ftl.events_dropped(), 0);
    let collects = events.iter().filter(|e| e.kind == "gc.collect").count() as u64;
    assert_eq!(collects, ftl.stats().gc_invocations);
}

#[test]
fn histogram_percentiles_within_one_bucket_of_exact() {
    let mut rng = Rng::seed_from(0xB0B5);
    for round in 0..20 {
        let mut h = HdrHistogram::new();
        let n = 100 + rng.next_below(2000) as usize;
        let mut samples: Vec<u64> = Vec::with_capacity(n);
        for _ in 0..n {
            // Span several orders of magnitude, like latencies do.
            let v = 1u64 << rng.next_below(30);
            let v = v + rng.next_below(v.max(1));
            samples.push(v);
            h.record(v);
        }
        samples.sort_unstable();
        for &q in &[0.5, 0.95, 0.99, 0.999] {
            let rank = ((n as f64 * q).ceil() as usize).max(1) - 1;
            let exact = samples[rank];
            let approx = h.percentile(q);
            // The log-bucketed histogram returns the floor of the bucket
            // the exact sample landed in: never above the exact value, and
            // below it by at most one bucket width (1/16 relative).
            assert!(
                approx <= exact,
                "round {round} q={q}: approx {approx} > exact {exact}"
            );
            assert!(
                exact - approx <= approx / 16 + 1,
                "round {round} q={q}: approx {approx} more than one bucket below {exact}"
            );
        }
    }
}

#[test]
fn bench_report_round_trips_and_validates() {
    let mut ftl = SubFtl::new(&FtlConfig::tiny());
    ftl.enable_tracing(1 << 12);
    let trace = small_sync_trace(ftl.logical_sectors());
    let report = run_trace(&mut ftl, &trace);

    let mut bench = BenchReport::new("observability_test");
    bench.meta("requests", Json::from(trace.requests.len() as u64));
    bench.push_run("subFTL", &report);
    bench.attach_events(&ftl.events()[..16.min(ftl.events().len())], 0);

    let json = bench.to_json();
    validate_bench(&json).expect("emitted report must satisfy its own schema");

    let text = json.to_pretty();
    let reparsed = Json::parse(&text).expect("emitted JSON must parse");
    validate_bench(&reparsed).expect("reparsed report must still validate");
    assert_eq!(
        reparsed.to_pretty(),
        text,
        "parse → emit must be a fixed point"
    );

    // Schema guardrails: deleting a required field must fail validation.
    let mut broken = Json::parse(&text).unwrap();
    if let Json::Obj(pairs) = &mut broken {
        pairs.retain(|(k, _)| k != "schema_version");
    }
    assert!(validate_bench(&broken).is_err());
}

//! Randomized property tests shared by all three FTLs, driven by the
//! deterministic `esp_sim::Rng` (every case reproducible from its seed).
//!
//! The central invariant: **whatever sequence of writes, syncs, reads and
//! flushes arrives, the FTL never loses and never resurrects data.** The
//! oracle is the monotonically increasing write sequence number each FTL
//! stamps into the spare area: after a flush, every written sector must be
//! mapped, and its stored sequence number must never decrease between
//! observation points (a decrease would mean a stale copy became visible).

use esp_core::{CgmFtl, FgmFtl, Ftl, FtlConfig, SubFtl};
use esp_sim::{Rng, SimTime};
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Write { lsn: u64, sectors: u32, sync: bool },
    Read { lsn: u64, sectors: u32 },
    Trim { lsn: u64, sectors: u32 },
    Flush,
}

/// Weighted 4:2:1:1 write/read/trim/flush, matching the original
/// proptest distribution.
fn random_op(rng: &mut Rng, logical: u64) -> Op {
    let max_start = logical - 4;
    match rng.next_below(8) {
        0..=3 => Op::Write {
            lsn: rng.next_below(max_start),
            sectors: rng.next_in(1, 4) as u32,
            sync: rng.chance(0.5),
        },
        4 | 5 => Op::Read {
            lsn: rng.next_below(max_start),
            sectors: rng.next_in(1, 4) as u32,
        },
        6 => Op::Trim {
            lsn: rng.next_below(max_start),
            sectors: rng.next_in(1, 4) as u32,
        },
        _ => Op::Flush,
    }
}

fn random_ops(rng: &mut Rng, logical: u64, max_len: u64) -> Vec<Op> {
    let n = rng.next_in(1, max_len) as usize;
    (0..n).map(|_| random_op(rng, logical)).collect()
}

/// Drives an FTL through `ops`, checking the no-loss / no-staleness oracle
/// at every flush point.
fn check_ftl<F: Ftl>(mut ftl: F, ops: &[Op], seed: u64) {
    let mut written: HashMap<u64, u64> = HashMap::new(); // lsn -> last seen stored seq
    let mut clock = SimTime::ZERO;
    for op in ops {
        match op {
            Op::Write { lsn, sectors, sync } => {
                let done = ftl.write(*lsn, *sectors, *sync, clock);
                if *sync {
                    clock = done;
                }
                for s in *lsn..lsn + u64::from(*sectors) {
                    written.entry(s).or_insert(0);
                }
            }
            Op::Read { lsn, sectors } => {
                clock = ftl.read(*lsn, *sectors, clock);
            }
            Op::Trim { lsn, sectors } => {
                ftl.trim(*lsn, *sectors);
                for s in *lsn..lsn + u64::from(*sectors) {
                    written.remove(&s);
                }
            }
            Op::Flush => {
                clock = ftl.flush(clock);
            }
        }
    }
    clock = ftl.flush(clock);
    // Oracle: every written sector is durable with a non-decreasing seq.
    for (&lsn, last_seen) in &mut written {
        let seq = ftl.stored_seq(lsn);
        assert!(
            seq.is_some(),
            "{} seed {seed}: sector {lsn} was written but is not durable",
            ftl.name()
        );
        let seq = seq.expect("just checked");
        assert!(
            seq >= *last_seen,
            "{} seed {seed}: sector {lsn} regressed from seq {last_seen} to {seq}",
            ftl.name()
        );
        *last_seen = seq;
    }
    // Reading everything back must not surface any fault.
    for &lsn in written.keys() {
        clock = ftl.read(lsn, 1, clock);
    }
    assert_eq!(
        ftl.stats().read_faults,
        0,
        "{} seed {seed}: surfaced read faults",
        ftl.name()
    );
}

const CASES: u64 = 48;

/// cgmFTL never loses or regresses data.
#[test]
fn cgm_no_loss() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from(0xC641 ^ seed);
        let ops = random_ops(&mut rng, 128, 119);
        check_ftl(CgmFtl::new(&FtlConfig::tiny()), &ops, seed);
    }
}

/// fgmFTL never loses or regresses data.
#[test]
fn fgm_no_loss() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from(0xF641 ^ seed);
        let ops = random_ops(&mut rng, 128, 119);
        check_ftl(FgmFtl::new(&FtlConfig::tiny()), &ops, seed);
    }
}

/// subFTL never loses or regresses data, and its subpage-region
/// structural invariants hold after every op sequence.
#[test]
fn sub_no_loss() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from(0x5B41 ^ seed);
        let ops = random_ops(&mut rng, 128, 119);
        check_ftl(SubFtl::new(&FtlConfig::tiny()), &ops, seed);
    }
}

/// subFTL invariants under heavy hammering of a narrow hot set (this is
/// the regime that exercises lap migrations and region GC hardest).
#[test]
fn sub_invariants_under_churn() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from(0x5B07 ^ seed);
        let n = rng.next_in(50, 399) as usize;
        let lsns: Vec<u64> = (0..n).map(|_| rng.next_below(24)).collect();
        let sync_every = rng.next_in(1, 3) as usize;
        let mut ftl = SubFtl::new(&FtlConfig::tiny());
        let mut clock = SimTime::ZERO;
        for (i, &lsn) in lsns.iter().enumerate() {
            let sync = i % sync_every == 0;
            let done = ftl.write(lsn, 1, sync, clock);
            if sync {
                clock = done;
            }
            if i % 25 == 0 {
                ftl.check_invariants();
            }
        }
        ftl.flush(clock);
        ftl.check_invariants();
        assert_eq!(ftl.stats().read_faults, 0, "seed {seed}");
    }
}

/// All three FTLs agree on what data exists (cross-implementation
/// differential test): after the same op sequence, the set of durable
/// sectors is identical.
#[test]
fn ftls_agree_on_durable_set() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from(0xA63E ^ seed);
        let ops = random_ops(&mut rng, 96, 79);
        let mut cgm = CgmFtl::new(&FtlConfig::tiny());
        let mut fgm = FgmFtl::new(&FtlConfig::tiny());
        let mut sub = SubFtl::new(&FtlConfig::tiny());
        let mut clock_c = SimTime::ZERO;
        let mut clock_f = SimTime::ZERO;
        let mut clock_s = SimTime::ZERO;
        for op in &ops {
            match op {
                Op::Write { lsn, sectors, sync } => {
                    let d = cgm.write(*lsn, *sectors, *sync, clock_c);
                    if *sync {
                        clock_c = d;
                    }
                    let d = fgm.write(*lsn, *sectors, *sync, clock_f);
                    if *sync {
                        clock_f = d;
                    }
                    let d = sub.write(*lsn, *sectors, *sync, clock_s);
                    if *sync {
                        clock_s = d;
                    }
                }
                Op::Read { lsn, sectors } => {
                    clock_c = cgm.read(*lsn, *sectors, clock_c);
                    clock_f = fgm.read(*lsn, *sectors, clock_f);
                    clock_s = sub.read(*lsn, *sectors, clock_s);
                }
                Op::Trim { lsn, sectors } => {
                    cgm.trim(*lsn, *sectors);
                    fgm.trim(*lsn, *sectors);
                    sub.trim(*lsn, *sectors);
                }
                Op::Flush => {
                    clock_c = cgm.flush(clock_c);
                    clock_f = fgm.flush(clock_f);
                    clock_s = sub.flush(clock_s);
                }
            }
        }
        cgm.flush(clock_c);
        fgm.flush(clock_f);
        sub.flush(clock_s);
        // Trim granularity legitimately differs (coarse maps keep partially
        // trimmed pages), so agreement is required only in one direction:
        // anything fgmFTL (exact-granularity) still stores must be stored by
        // the coarse FTLs too; anything fgmFTL dropped and cgm/sub still
        // store must be explained by a partial trim, which the `ops` replay
        // makes hard to recompute — so we assert the strong direction only.
        for lsn in 0..96 {
            if fgm.stored_seq(lsn).is_some() {
                assert!(
                    cgm.stored_seq(lsn).is_some(),
                    "seed {seed}: cgm lost sector {lsn} that fgm kept"
                );
                assert!(
                    sub.stored_seq(lsn).is_some(),
                    "seed {seed}: sub lost sector {lsn} that fgm kept"
                );
            }
        }
    }
}

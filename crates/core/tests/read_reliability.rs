//! Read-path reliability properties, checked on all four FTLs with
//! read-disturb modeling, the retry ladder, and read-reclaim enabled:
//!
//! 1. **Recovered reads are the right data**: a read that needed ladder
//!    effort must return the sector that was asked for — relocations
//!    (reclaim, patrol scrub) preserve every sector's identity and
//!    sequence number, so a pure-read workload leaves `stored_seq`
//!    bit-identical however much data the pipeline moved. (Wrong-LSN
//!    returns additionally trip `note_read_result`'s debug assertion.)
//! 2. **Zero loss within spec**: a seeded soak combining read-disturb,
//!    retention aging, and program/erase fault injection finishes with
//!    zero uncorrectable host reads and no sector's sequence number ever
//!    rolling back, as long as the ladder + reclaim pipeline is on.
//!
//! Everything is driven by the deterministic `esp_sim::Rng`: a failure
//! reproduces from the printed case seed.

use esp_core::{CgmFtl, FgmFtl, Ftl, FtlConfig, SectorLogFtl, SubFtl};
use esp_nand::{FaultConfig, RetentionModel, RetryLadder};
use esp_sim::{Rng, SimDuration, SimTime};

fn build(name: &str, cfg: &FtlConfig) -> Box<dyn Ftl> {
    match name {
        "sub" => Box::new(SubFtl::new(cfg)),
        "cgm" => Box::new(CgmFtl::new(cfg)),
        "fgm" => Box::new(FgmFtl::new(cfg)),
        "sectorlog" => Box::new(SectorLogFtl::new(cfg)),
        _ => unreachable!(),
    }
}

const FTLS: [&str; 4] = ["sub", "cgm", "fgm", "sectorlog"];

/// Tiny device with the full read-reliability pipeline on. The disturb
/// rate is calibrated so the bare ECC budget dies after ~108 senses of one
/// block — easily reached by a hot-read loop — while the ladder + patrol
/// keep everything correctable.
fn reliable_config() -> FtlConfig {
    let mut cfg = FtlConfig::tiny();
    cfg.retention = RetentionModel::paper_default().with_read_disturb(2e-2);
    cfg.retry_ladder = Some(RetryLadder::paper_default());
    cfg.reclaim_threshold = Some(2);
    cfg
}

#[test]
fn recovered_reads_return_the_correct_sectors() {
    for name in FTLS {
        let cfg = reliable_config();
        let mut ftl = build(name, &cfg);
        // A fragmented sector and two aligned pages, so every FTL has data
        // both in its fine-grained structure and its full-page region.
        let mut now = ftl.write(0, 1, true, SimTime::ZERO);
        now = ftl.write(4, 8, true, now);
        now = ftl.flush(now);
        let baseline: Vec<(u64, u64)> = (0..12)
            .filter_map(|lsn| ftl.stored_seq(lsn).map(|s| (lsn, s)))
            .collect();
        assert!(!baseline.is_empty(), "{name}: nothing durably stored");
        // Hammer every written sector far past the bare-ECC disturb budget.
        for _ in 0..500 {
            ftl.maintain(now);
            now = ftl.read(0, 1, now);
            now = ftl.read(4, 8, now);
        }
        assert_eq!(
            ftl.stats().read_faults,
            0,
            "{name}: ladder + reclaim must keep every read correctable"
        );
        assert!(
            ftl.ssd().device().stats().recovered_reads > 0,
            "{name}: the ladder never fired — the property was not exercised"
        );
        // Pure reads: however much the pipeline relocated, every sector
        // still answers with the exact copy that was written.
        for (lsn, seq) in baseline {
            assert_eq!(
                ftl.stored_seq(lsn),
                Some(seq),
                "{name}: sector {lsn} changed identity under read-reclaim"
            );
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Write {
        lsn: u64,
        sectors: u32,
    },
    Read {
        lsn: u64,
        sectors: u32,
    },
    /// Flush, then age the stored data by `hours` before continuing.
    AgeHours(u64),
}

fn soak_trace(rng: &mut Rng, logical: u64, len: usize) -> Vec<Op> {
    let max_start = logical / 2 - 4;
    (0..len)
        .map(|_| match rng.next_below(8) {
            // Read-heavy, hot: reads concentrate on a 16-sector zone so
            // blocks accumulate disturb fast.
            0..=4 => Op::Read {
                lsn: rng.next_below(16),
                sectors: rng.next_in(1, 4) as u32,
            },
            5 | 6 => Op::Write {
                lsn: rng.next_below(max_start),
                sectors: rng.next_in(1, 4) as u32,
            },
            _ => Op::AgeHours(rng.next_in(1, 3)),
        })
        .collect()
}

#[test]
fn soak_with_disturb_aging_and_faults_loses_nothing() {
    for case in 0..4u64 {
        let mut rng = Rng::seed_from(0x50AC ^ case);
        for name in FTLS {
            let mut cfg = reliable_config();
            cfg.fault = Some(FaultConfig {
                seed: case + 1,
                program_fail_prob: 0.005,
                erase_fail_prob: 0.0002,
                ..FaultConfig::default()
            });
            let mut ftl = build(name, &cfg);
            let logical = ftl.logical_sectors();
            let ops = soak_trace(&mut rng, logical, 600);
            let mut clock = SimTime::ZERO;
            let mut high = vec![0u64; logical as usize];
            for op in &ops {
                ftl.maintain(clock);
                match *op {
                    Op::Write { lsn, sectors } => clock = ftl.write(lsn, sectors, true, clock),
                    Op::Read { lsn, sectors } => clock = ftl.read(lsn, sectors, clock),
                    Op::AgeHours(h) => {
                        clock = ftl.flush(clock);
                        clock += SimDuration::from_secs(h * 3600);
                        // Monotone durability: aging and relocation must
                        // never roll a sector back to an older copy.
                        for lsn in 0..logical {
                            if let Some(seq) = ftl.stored_seq(lsn) {
                                assert!(
                                    seq >= high[lsn as usize],
                                    "{name} case {case}: sector {lsn} rolled back"
                                );
                                high[lsn as usize] = seq;
                            }
                        }
                    }
                }
            }
            clock = ftl.flush(clock);
            // Final readback of everything durably stored.
            for lsn in 0..logical {
                if ftl.stored_seq(lsn).is_some() {
                    clock = ftl.read(lsn, 1, clock);
                }
            }
            assert_eq!(
                ftl.stats().read_faults,
                0,
                "{name} case {case}: the read-reliability pipeline lost data"
            );
        }
    }
}

//! Deterministic long-run soak: tens of thousands of mixed operations —
//! writes of every size and alignment, syncs, reads, trims, months of
//! simulated time with maintenance, and a mid-run crash/recovery — against
//! every FTL, with the no-fault and structural invariants checked
//! throughout.

use esp_core::{CgmFtl, FgmFtl, Ftl, FtlConfig, SectorLogFtl, SubFtl};
use esp_sim::{Rng, SimDuration, SimTime};

const OPS: u64 = 40_000;

fn soak<F: Ftl>(mut ftl: F, check: impl Fn(&F)) -> F {
    let logical = ftl.logical_sectors();
    let mut rng = Rng::seed_from(0x50AC);
    let mut clock = SimTime::ZERO;
    for i in 0..OPS {
        // A slow wall-clock drip so retention machinery engages: the soak
        // spans about 80 simulated days.
        clock = clock.max(SimTime::ZERO + SimDuration::from_secs(i * 170));
        ftl.maintain(clock);
        match rng.next_below(10) {
            0..=5 => {
                let sectors = 1 + rng.next_below(8) as u32;
                let lsn = rng.next_below(logical - 8);
                let sync = rng.chance(0.6);
                let done = ftl.write(lsn, sectors, sync, clock);
                if sync {
                    clock = done;
                }
            }
            6..=7 => {
                let lsn = rng.next_below(logical - 8);
                clock = ftl.read(lsn, 1 + rng.next_below(8) as u32, clock);
            }
            8 => {
                let lsn = rng.next_below(logical - 8);
                ftl.trim(lsn, 1 + rng.next_below(8) as u32);
            }
            _ => {
                clock = ftl.flush(clock);
            }
        }
        if i % 5_000 == 0 {
            check(&ftl);
            assert_eq!(ftl.stats().read_faults, 0, "faults at op {i}");
        }
    }
    ftl.flush(clock);
    // Full read sweep at the end, one more month later.
    let later = clock + SimDuration::from_days(10);
    ftl.maintain(later);
    for lsn in (0..logical).step_by(3) {
        ftl.read(lsn, 1, later);
    }
    assert_eq!(ftl.stats().read_faults, 0, "faults in the final sweep");
    check(&ftl);
    ftl
}

fn cfg() -> FtlConfig {
    FtlConfig {
        geometry: esp_nand::Geometry {
            channels: 2,
            chips_per_channel: 2,
            blocks_per_chip: 12,
            pages_per_block: 16,
            subpages_per_page: 4,
            subpage_bytes: 4096,
        },
        write_buffer_sectors: 64,
        overprovision: 0.35,
        ..FtlConfig::paper_default()
    }
}

#[test]
fn soak_subftl_with_mid_run_recovery() {
    let ftl = soak(SubFtl::new(&cfg()), |f| f.check_invariants());
    // Crash at the end of the soak and recover.
    let mut recovered = SubFtl::recover(ftl.ssd().clone(), &cfg());
    recovered.check_invariants();
    for lsn in 0..ftl.logical_sectors() {
        if ftl.stored_seq(lsn).is_some() {
            // Trims during the soak make exact version equality ambiguous
            // (stale copies may legally resurface), but no durable sector
            // may be *lost* by the crash.
            assert!(
                recovered.stored_seq(lsn).is_some(),
                "durable sector {lsn} lost in recovery"
            );
        }
    }
    let t = recovered.ssd().makespan();
    recovered.write(0, 1, true, t);
    assert_eq!(recovered.stats().read_faults, 0);
}

#[test]
fn soak_cgm() {
    soak(CgmFtl::new(&cfg()), |_| {});
}

#[test]
fn soak_fgm() {
    soak(FgmFtl::new(&cfg()), |_| {});
}

#[test]
fn soak_sector_log() {
    soak(SectorLogFtl::new(&cfg()), |_| {});
}

//! Wear leveling, adaptive erase, and end-of-life behaviour across all
//! four FTLs:
//!
//! * static + dynamic wear leveling bounds the fleet-wide max−min
//!   effective-P/E spread under a pathological hot/cold skew;
//! * adaptive erase off leaves wear accounting bit-identical to raw P/E
//!   counts (the paper-default configuration is unchanged);
//! * a wear-out soak drives a device to death through grown bad blocks
//!   and asserts every request keeps getting a well-formed response —
//!   typed end-of-life refusal, never a panic or GC livelock;
//! * crashing a near-dead device still recovers consistently.

use esp_core::{
    random_workload, CgmFtl, CrashHarness, CrashTarget, FgmFtl, Ftl, FtlConfig, SectorLogFtl,
    SubFtl,
};
use esp_nand::{FaultConfig, Geometry};
use esp_sim::{Rng, SimDuration, SimTime};

/// A small device with room for a hot/cold split: 2×2 chips, 24 blocks
/// of 8 pages.
fn wear_cfg(wear_leveling: bool, adaptive_erase: bool) -> FtlConfig {
    FtlConfig {
        geometry: Geometry {
            channels: 2,
            chips_per_channel: 2,
            blocks_per_chip: 24,
            pages_per_block: 8,
            subpages_per_page: 4,
            subpage_bytes: 4096,
        },
        write_buffer_sectors: 16,
        overprovision: 0.4,
        wear_leveling,
        adaptive_erase,
        wear_delta_threshold: 8,
        ..FtlConfig::paper_default()
    }
}

/// Writes the whole logical space once (cold data), then rewrites a small
/// hot zone over and over. Without wear leveling the blocks pinned under
/// cold data never recycle while the hot blocks churn.
fn hot_cold_churn<F: Ftl + ?Sized>(ftl: &mut F, rounds: u64) {
    let logical = ftl.logical_sectors();
    let hot = logical / 16;
    let mut clock = SimTime::ZERO;
    for lsn in 0..logical {
        clock = ftl.write(lsn, 1, true, clock);
    }
    clock = ftl.flush(clock);
    let mut rng = Rng::seed_from(0x110C);
    for i in 0..rounds {
        ftl.maintain(clock);
        let lsn = rng.next_below(hot);
        clock = ftl.write(lsn, 1, true, clock);
        if i % 64 == 0 {
            // Background windows let the FTLs that lean on idle GC keep up.
            let gap = clock + SimDuration::from_millis(10);
            ftl.idle(clock, gap);
            clock = gap;
        }
    }
    ftl.flush(clock);
}

/// Max−min effective P/E over the whole device.
fn pe_delta<F: Ftl>(ftl: &F) -> u32 {
    let ssd = ftl.ssd();
    let g = ssd.geometry().clone();
    let (mut min, mut max) = (u32::MAX, 0u32);
    for b in 0..g.block_count() {
        let pe = ssd.device().effective_pe(g.block_addr(b));
        min = min.min(pe);
        max = max.max(pe);
    }
    max - min
}

fn assert_wear_bounded<F: Ftl>(build: impl Fn(&FtlConfig) -> F, name: &str) {
    const ROUNDS: u64 = 12_000;
    let mut plain = build(&wear_cfg(false, false));
    hot_cold_churn(&mut plain, ROUNDS);
    let delta_off = pe_delta(&plain);

    let mut leveled = build(&wear_cfg(true, false));
    hot_cold_churn(&mut leveled, ROUNDS);
    let delta_on = pe_delta(&leveled);

    // The workload must actually skew wear, the leveler must engage, and
    // the spread must come down materially — to within the configured
    // threshold plus the slack of one metering interval (rotation is
    // checked every 16 device erases).
    assert!(
        delta_off > 16,
        "{name}: churn too light to skew wear (delta {delta_off})"
    );
    assert!(
        leveled.stats().wear_level_migrations > 0,
        "{name}: no cold-block rotations despite delta {delta_off}"
    );
    let bound = wear_cfg(true, false).wear_delta_threshold + 16;
    assert!(
        delta_on <= bound && delta_on < delta_off / 2,
        "{name}: wear leveling left delta {delta_on} (unleveled {delta_off}, bound {bound})"
    );
    assert_eq!(leveled.stats().read_faults, 0, "{name}: leveling lost data");
}

#[test]
fn wear_leveling_bounds_pe_delta_cgm() {
    assert_wear_bounded(CgmFtl::new, "cgmFTL");
}

#[test]
fn wear_leveling_bounds_pe_delta_fgm() {
    assert_wear_bounded(FgmFtl::new, "fgmFTL");
}

#[test]
fn wear_leveling_bounds_pe_delta_sub() {
    assert_wear_bounded(SubFtl::new, "subFTL");
}

#[test]
fn wear_leveling_bounds_pe_delta_sector_log() {
    assert_wear_bounded(SectorLogFtl::new, "sectorLogFTL");
}

/// With `adaptive_erase` off (the paper default), every erase is a deep
/// erase: no shallow erases are counted and the effective P/E of every
/// block equals its raw cycle count — the new wear accounting cannot
/// perturb baseline results.
#[test]
fn adaptive_erase_off_keeps_effective_pe_raw() {
    type Builder = fn(&FtlConfig) -> Box<dyn Ftl>;
    let builders: [(&str, Builder); 4] = [
        ("cgmFTL", |c| Box::new(CgmFtl::new(c))),
        ("fgmFTL", |c| Box::new(FgmFtl::new(c))),
        ("subFTL", |c| Box::new(SubFtl::new(c))),
        ("sectorLogFTL", |c| Box::new(SectorLogFtl::new(c))),
    ];
    for (name, build) in builders {
        let mut ftl = build(&wear_cfg(false, false));
        hot_cold_churn(ftl.as_mut(), 3_000);
        let ssd = ftl.ssd();
        assert_eq!(ssd.device().stats().shallow_erases, 0, "{name}");
        let g = ssd.geometry().clone();
        for b in 0..g.block_count() {
            let addr = g.block_addr(b);
            assert_eq!(
                ssd.device().effective_pe(addr),
                ssd.device().pe_cycles(addr),
                "{name}: effective P/E diverged from raw on block {b} with the feature off"
            );
        }
    }
}

/// With adaptive erase on, lightly-worn blocks get shallow erases, so the
/// same churn accumulates strictly less effective wear than raw cycles —
/// without losing data.
#[test]
fn adaptive_erase_accumulates_fractional_stress() {
    let mut ftl = SubFtl::new(&wear_cfg(false, true));
    hot_cold_churn(&mut ftl, 6_000);
    let ssd = ftl.ssd();
    assert!(ssd.device().stats().shallow_erases > 0, "no shallow erases");
    let g = ssd.geometry().clone();
    let (mut raw, mut effective) = (0u64, 0u64);
    for b in 0..g.block_count() {
        let addr = g.block_addr(b);
        raw += u64::from(ssd.device().pe_cycles(addr));
        effective += u64::from(ssd.device().effective_pe(addr));
    }
    assert!(
        effective < raw,
        "shallow erases must shave effective wear (effective {effective} >= raw {raw})"
    );
    assert_eq!(ftl.stats().read_faults, 0);
}

/// Drives a tiny device to death: every other erase grows a bad block, so
/// block retirement eats the GC reserve. The FTL must degrade in order —
/// shrink over-provisioning, then latch end-of-life and refuse writes —
/// and every request, before and after death, must complete without a
/// panic, with monotone completion times, and with reads still serving.
fn wear_out_soak<F: Ftl>(mut ftl: F, name: &str) {
    let logical = ftl.logical_sectors();
    let mut rng = Rng::seed_from(0xDEAD);
    let mut clock = SimTime::ZERO;
    let mut latched_at = None;
    for i in 0..60_000u64 {
        ftl.maintain(clock);
        let done = if rng.chance(0.8) {
            let lsn = rng.next_below(logical);
            let nsec = (1 + rng.next_below(4)).min(logical - lsn) as u32;
            ftl.write(lsn, nsec, true, clock)
        } else {
            ftl.read(rng.next_below(logical), 1, clock)
        };
        assert!(done >= clock, "{name}: completion went backwards at op {i}");
        clock = done;
        if latched_at.is_none() && ftl.end_of_life() {
            latched_at = Some(i);
        }
        // Well past the latch: the device is dead, keep hammering a little
        // longer to prove refusal stays cheap and panic-free, then stop.
        if latched_at.is_some_and(|at| i > at + 2_000) {
            break;
        }
    }
    let stats = ftl.stats();
    assert!(
        ftl.end_of_life(),
        "{name}: 60k ops at 50% erase failure never exhausted the device \
         ({} blocks retired)",
        stats.blocks_retired
    );
    assert_eq!(stats.end_of_life_trips, 1, "{name}: latch must trip once");
    assert!(
        stats.writes_dropped_end_of_life > 0,
        "{name}: refused writes must be counted"
    );
    assert!(
        stats.blocks_retired > 0,
        "{name}: death must come from grown bad blocks"
    );
    // The dead device still answers reads without panicking.
    for lsn in (0..logical).step_by(7) {
        let done = ftl.read(lsn, 1, clock);
        assert!(done >= clock);
    }
}

fn dying_cfg() -> FtlConfig {
    FtlConfig {
        fault: Some(FaultConfig {
            seed: 3,
            erase_fail_prob: 0.5,
            ..FaultConfig::default()
        }),
        ..FtlConfig::tiny()
    }
}

#[test]
fn wear_out_soak_cgm() {
    wear_out_soak(CgmFtl::new(&dying_cfg()), "cgmFTL");
}

#[test]
fn wear_out_soak_fgm() {
    wear_out_soak(FgmFtl::new(&dying_cfg()), "fgmFTL");
}

#[test]
fn wear_out_soak_sub() {
    wear_out_soak(SubFtl::new(&dying_cfg()), "subFTL");
}

#[test]
fn wear_out_soak_sector_log() {
    wear_out_soak(SectorLogFtl::new(&dying_cfg()), "sectorLogFTL");
}

/// Crash sweeps over a near-dead device: with erase failures steadily
/// retiring blocks, power loss at arbitrary NAND commands must still
/// recover to a consistent image (synced data survives, nothing corrupt,
/// recovery idempotent).
fn near_dead_sweep<F: CrashTarget>(seed: u64) {
    let mut cfg = FtlConfig::tiny();
    cfg.crash_safe_mode = true;
    cfg.fault = Some(FaultConfig {
        seed: 7,
        erase_fail_prob: 0.25,
        ..FaultConfig::default()
    });
    let mut rng = Rng::seed_from(seed);
    let ops = random_workload(&mut rng, 128, 48);
    let h = CrashHarness::<F>::new(&cfg, &ops);
    let report = h.sweep(80, 40, seed ^ 0xE01);
    assert!(report.crashed_cases > 0, "sweep must fire real crashes");
    assert!(
        report.passed(),
        "{} violated the crash contract near end of life: {:?}",
        report.ftl,
        &report.failures[..report.failures.len().min(3)]
    );
}

#[test]
fn near_dead_crash_sweep_cgm() {
    near_dead_sweep::<CgmFtl>(0xC6);
}

#[test]
fn near_dead_crash_sweep_fgm() {
    near_dead_sweep::<FgmFtl>(0xF6);
}

#[test]
fn near_dead_crash_sweep_sub() {
    near_dead_sweep::<SubFtl>(0x5B);
}

#[test]
fn near_dead_crash_sweep_sector_log() {
    near_dead_sweep::<SectorLogFtl>(0x51);
}

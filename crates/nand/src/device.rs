//! The NAND device: geometry + per-block state + retention-aware reads.
//!
//! [`NandDevice`] is a *behavioural* model, not a timing model: operations
//! mutate state and return immediately. The cost of each operation is exposed
//! through [`NandDevice::op_cost`], and the multi-channel timing simulation
//! (which chip is busy when) lives in the `esp-ssd` crate. Keeping mechanism
//! and timing separate lets unit tests drive the state machine directly.

use std::collections::HashSet;

use esp_sim::{SimDuration, SimTime};

use crate::error::{NandError, ReadFault};
use crate::fault::{FaultConfig, FaultModel};
use crate::geometry::{BlockAddr, Geometry, PageAddr, SubpageAddr};
use crate::page::{Oob, Page, SubpageState, WrittenSubpage};
use crate::reliability::{EraseDepth, ReadEffort, RetentionModel, RetryLadder};
use crate::timing::NandTiming;

/// One erase block: pages plus wear state.
#[derive(Debug, Clone)]
pub struct Block {
    pages: Vec<Page>,
    pe_cycles: u32,
    /// Accumulated tunnel-oxide stress in milli-P/E. A full-depth erase
    /// charges exactly 1000, so without adaptive erase this is always
    /// `pe_cycles * 1000` and the effective wear equals the erase count;
    /// AERO-style shallow erases charge less (see [`EraseDepth`]).
    stress_milli: u64,
    bad: bool,
    /// The last erase was interrupted by power loss: contents are
    /// indeterminate and programs are rejected until a completed re-erase.
    torn: bool,
    /// Cell senses since the last erase: the read-disturb accumulator
    /// (see [`RetentionModel::disturb_term`]). An erase resets it.
    reads_since_erase: u64,
}

impl Block {
    fn new(geometry: &Geometry) -> Self {
        Block {
            pages: (0..geometry.pages_per_block)
                .map(|_| Page::new(geometry.subpages_per_page))
                .collect(),
            pe_cycles: 0,
            stress_milli: 0,
            bad: false,
            torn: false,
            reads_since_erase: 0,
        }
    }

    /// Program/erase cycles this block has endured (the raw erase count,
    /// regardless of erase depth).
    #[must_use]
    pub fn pe_cycles(&self) -> u32 {
        self.pe_cycles
    }

    /// The block's *effective* wear in whole P/E cycles: accumulated
    /// oxide stress over the stress of one full-depth erase. Equal to
    /// [`Block::pe_cycles`] unless AERO-style shallow erases have charged
    /// fractional stress. This is the wear that reliability judgments and
    /// fault draws use.
    #[must_use]
    pub fn effective_pe(&self) -> u32 {
        (self.stress_milli / 1000) as u32
    }

    /// Accumulated tunnel-oxide stress in milli-P/E (1000 per full-depth
    /// erase).
    #[must_use]
    pub fn stress_milli_pe(&self) -> u64 {
        self.stress_milli
    }

    /// True if the block is marked bad (factory-marked or grown).
    #[must_use]
    pub fn is_bad(&self) -> bool {
        self.bad
    }

    /// True if the block's last erase was cut mid-operation (power loss):
    /// it must be re-erased before any program is accepted.
    #[must_use]
    pub fn is_torn(&self) -> bool {
        self.torn
    }

    /// Cell senses this block has absorbed since its last erase (the
    /// read-disturb accumulator).
    #[must_use]
    pub fn reads_since_erase(&self) -> u64 {
        self.reads_since_erase
    }

    /// The page at `page` index.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    #[must_use]
    pub fn page(&self, page: u32) -> &Page {
        &self.pages[page as usize]
    }
}

/// Kinds of device operation, used for cost lookup and statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Full-page read (cell sense + full-page bus transfer).
    ReadFull,
    /// Subpage read (cell sense + subpage bus transfer).
    ReadSubpage,
    /// Full-page program (bus transfer + 1600 µs cell program).
    ProgramFull,
    /// Subpage program (bus transfer + 1300 µs cell program).
    ProgramSubpage,
    /// Block erase.
    Erase,
}

/// Bus and cell occupancy of one operation: the channel is busy for
/// `bus`, the chip for `cell` (the `esp-ssd` crate serializes these on the
/// corresponding resources).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpCost {
    /// Channel (data transfer) occupancy.
    pub bus: SimDuration,
    /// Chip (cell operation) occupancy.
    pub cell: SimDuration,
}

impl OpCost {
    /// Total serial latency of the operation (bus + cell).
    #[must_use]
    pub fn total(&self) -> SimDuration {
        self.bus + self.cell
    }
}

/// Operation counters for the whole device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Full-page program operations.
    pub full_programs: u64,
    /// Subpage (ESP) program operations.
    pub subpage_programs: u64,
    /// Subpage read operations.
    pub reads: u64,
    /// Block erase operations.
    pub erases: u64,
    /// Subpages destroyed as a side effect of ESP programs. Non-zero values
    /// indicate that some program destroyed *valid-looking* data; the subFTL
    /// discipline keeps destroyed slots limited to already-invalid data.
    pub subpages_destroyed: u64,
    /// Reads that failed because retention exceeded the ECC limit.
    pub retention_failures: u64,
    /// Program operations that reported status fail (injected faults).
    pub program_failures: u64,
    /// Erase operations that reported status fail; each one grows a bad
    /// block.
    pub erase_failures: u64,
    /// Program operations cut mid-pulse by an injected power loss.
    pub torn_programs: u64,
    /// Erase operations cut mid-operation by an injected power loss.
    pub torn_erases: u64,
    /// Hard read-retry steps performed by the retry ladder.
    pub retry_steps: u64,
    /// Soft-decode passes performed by the retry ladder.
    pub soft_decodes: u64,
    /// Reads that were over the base ECC limit but recovered by the ladder.
    pub recovered_reads: u64,
    /// Erases performed at less than full depth (adaptive erase only; a
    /// device without adaptive erase never counts one).
    pub shallow_erases: u64,
}

impl DeviceStats {
    /// Total program operations of either kind.
    #[must_use]
    pub fn total_programs(&self) -> u64 {
        self.full_programs + self.subpage_programs
    }
}

/// A behavioural model of a multi-chip NAND subsystem.
///
/// # Examples
///
/// ```
/// use esp_nand::{Geometry, NandDevice, Oob};
/// use esp_sim::SimTime;
///
/// let mut dev = NandDevice::new(Geometry::tiny());
/// let page = dev.geometry().block_addr(0).page(0);
/// // ESP: program subpage 0, then subpage 1 of the same page with no erase.
/// dev.program_subpage(page.subpage(0), Oob { lsn: 7, seq: 1 }, SimTime::ZERO)?;
/// dev.program_subpage(page.subpage(1), Oob { lsn: 8, seq: 2 }, SimTime::ZERO)?;
/// // Subpage 1 holds data; subpage 0 was destroyed by the second program.
/// assert_eq!(dev.read_subpage(page.subpage(1), SimTime::ZERO)?.lsn, 8);
/// assert!(dev.read_subpage(page.subpage(0), SimTime::ZERO).is_err());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct NandDevice {
    geometry: Geometry,
    timing: NandTiming,
    retention: RetentionModel,
    /// Blocks indexed by the device-global block index.
    blocks: Vec<Block>,
    stats: DeviceStats,
    forced_faults: HashSet<SubpageAddr>,
    faults: Option<FaultModel>,
    retry_ladder: Option<RetryLadder>,
    /// AERO-style adaptive erase: erase depth (latency and oxide stress)
    /// follows the block's effective wear. Off by default so seed runs are
    /// bit-identical.
    adaptive_erase: bool,
    /// Whole-device death latch: once set (fault-model trip or explicit
    /// [`NandDevice::kill`]) every command fails with
    /// [`NandError::DeviceDead`] / [`ReadFault::DeviceDead`], permanently.
    dead: bool,
    /// Executed NAND commands (programs, reads, erases — the commands that
    /// actually ran, legal-and-accepted; illegal commands and power-cut
    /// tears are excluded). Drives [`FaultConfig::die_at_op`].
    ops_executed: u64,
}

impl NandDevice {
    /// Creates a device with default timing and retention models.
    ///
    /// # Panics
    ///
    /// Panics if the geometry fails [`Geometry::validate`].
    #[must_use]
    pub fn new(geometry: Geometry) -> Self {
        Self::with_models(
            geometry,
            NandTiming::paper_default(),
            RetentionModel::paper_default(),
        )
    }

    /// Creates a device with explicit timing and retention models.
    ///
    /// # Panics
    ///
    /// Panics if the geometry fails [`Geometry::validate`].
    #[must_use]
    pub fn with_models(geometry: Geometry, timing: NandTiming, retention: RetentionModel) -> Self {
        geometry.validate().expect("invalid NAND geometry");
        let blocks = (0..geometry.block_count())
            .map(|_| Block::new(&geometry))
            .collect();
        NandDevice {
            geometry,
            timing,
            retention,
            blocks,
            stats: DeviceStats::default(),
            forced_faults: HashSet::new(),
            faults: None,
            retry_ladder: None,
            adaptive_erase: false,
            dead: false,
            ops_executed: 0,
        }
    }

    /// Enables (or disables) AERO-style adaptive erase: each erase picks a
    /// depth from the block's effective wear (see
    /// [`RetentionModel::erase_depth`]), charging proportionally less
    /// latency ([`NandTiming::erase_for`]) and oxide stress. Disabled by
    /// default; while disabled, every erase is full-depth and the device is
    /// bit-identical to one without this feature.
    pub fn set_adaptive_erase(&mut self, on: bool) {
        self.adaptive_erase = on;
    }

    /// True if AERO-style adaptive erase is enabled.
    #[must_use]
    pub fn adaptive_erase(&self) -> bool {
        self.adaptive_erase
    }

    /// Installs (or removes) a tiered read-retry ladder. Without one —
    /// the default — an over-limit read fails immediately, as in the seed
    /// model.
    ///
    /// # Panics
    ///
    /// Panics if the ladder fails [`RetryLadder::validate`].
    pub fn set_retry_ladder(&mut self, ladder: Option<RetryLadder>) {
        if let Some(l) = &ladder {
            l.validate().expect("invalid retry ladder");
        }
        self.retry_ladder = ladder;
    }

    /// The installed retry ladder, if any.
    #[must_use]
    pub fn retry_ladder(&self) -> Option<&RetryLadder> {
        self.retry_ladder.as_ref()
    }

    /// Installs a program/erase fault model (factory bad blocks are marked
    /// immediately; subsequent programs/erases consult the fault stream).
    ///
    /// Without this call the device draws no random numbers and never
    /// injects a fault, so baseline runs are bit-for-bit reproducible.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`FaultConfig::validate`].
    pub fn set_faults(&mut self, config: FaultConfig) {
        let model = FaultModel::new(config);
        for gbi in model.factory_bad_blocks(self.geometry.block_count()) {
            self.blocks[gbi as usize].bad = true;
        }
        self.faults = Some(model);
    }

    /// The installed fault configuration, if any.
    #[must_use]
    pub fn fault_config(&self) -> Option<&FaultConfig> {
        self.faults.as_ref().map(FaultModel::config)
    }

    /// True if the block at `addr` is marked bad (factory or grown).
    ///
    /// # Panics
    ///
    /// Panics if the address is outside the geometry.
    #[must_use]
    pub fn is_bad(&self, addr: BlockAddr) -> bool {
        self.block(addr).bad
    }

    /// Device-global indices of every bad block, in ascending order.
    #[must_use]
    pub fn bad_block_indices(&self) -> Vec<u32> {
        self.blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| b.bad)
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Marks a block bad directly (manufacturing defect / test hook).
    ///
    /// # Panics
    ///
    /// Panics if the address is outside the geometry.
    pub fn mark_bad(&mut self, addr: BlockAddr) {
        let idx = self.geometry.block_index(addr) as usize;
        self.blocks[idx].bad = true;
    }

    /// Device geometry.
    #[must_use]
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// Latency parameters.
    #[must_use]
    pub fn timing(&self) -> &NandTiming {
        &self.timing
    }

    /// The retention model used to judge reads.
    #[must_use]
    pub fn retention_model(&self) -> &RetentionModel {
        &self.retention
    }

    /// Operation counters.
    #[must_use]
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// Bus/cell occupancy of an operation of the given kind.
    #[must_use]
    pub fn op_cost(&self, kind: OpKind) -> OpCost {
        let g = &self.geometry;
        let t = &self.timing;
        match kind {
            OpKind::ReadFull => OpCost {
                bus: t.transfer(g.page_bytes()),
                cell: t.read_full,
            },
            OpKind::ReadSubpage => OpCost {
                bus: t.transfer(u64::from(g.subpage_bytes)),
                cell: t.read_subpage,
            },
            OpKind::ProgramFull => OpCost {
                bus: t.transfer(g.page_bytes()),
                cell: t.program_full,
            },
            OpKind::ProgramSubpage => OpCost {
                bus: t.transfer(u64::from(g.subpage_bytes)),
                cell: t.program_subpage,
            },
            OpKind::Erase => OpCost {
                bus: SimDuration::ZERO,
                cell: t.erase,
            },
        }
    }

    fn block_mut(&mut self, addr: BlockAddr) -> Result<&mut Block, NandError> {
        let idx = if addr.chip.channel < self.geometry.channels
            && addr.chip.way < self.geometry.chips_per_channel
            && addr.block < self.geometry.blocks_per_chip
        {
            self.geometry.block_index(addr) as usize
        } else {
            return Err(NandError::AddressOutOfRange);
        };
        Ok(&mut self.blocks[idx])
    }

    /// The block at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the address is outside the geometry.
    #[must_use]
    pub fn block(&self, addr: BlockAddr) -> &Block {
        &self.blocks[self.geometry.block_index(addr) as usize]
    }

    /// P/E cycles endured by the block at `addr`.
    #[must_use]
    pub fn pe_cycles(&self, addr: BlockAddr) -> u32 {
        self.block(addr).pe_cycles()
    }

    /// Effective wear of the block at `addr` (see [`Block::effective_pe`]).
    /// Equal to [`NandDevice::pe_cycles`] unless adaptive erase has charged
    /// fractional stress.
    #[must_use]
    pub fn effective_pe(&self, addr: BlockAddr) -> u32 {
        self.block(addr).effective_pe()
    }

    /// Bus/cell occupancy of erasing the specific block at `addr`: the
    /// full-depth cost unless adaptive erase is enabled, in which case the
    /// cell time follows the depth the block's *current* wear selects.
    /// Callers that charge erase time must sample this **before** calling
    /// [`NandDevice::erase`], which mutates the wear. Out-of-range
    /// addresses report the full-depth cost (the erase itself will be
    /// rejected without running).
    #[must_use]
    pub fn erase_cost(&self, addr: BlockAddr) -> OpCost {
        let in_range = addr.chip.channel < self.geometry.channels
            && addr.chip.way < self.geometry.chips_per_channel
            && addr.block < self.geometry.blocks_per_chip;
        let cell = if self.adaptive_erase && in_range {
            let depth = self.retention.erase_depth(self.block(addr).effective_pe());
            self.timing.erase_for(depth)
        } else {
            self.timing.erase
        };
        OpCost {
            bus: SimDuration::ZERO,
            cell,
        }
    }

    /// Cell senses absorbed by the block at `addr` since its last erase
    /// (the read-disturb accumulator scrubbers patrol).
    #[must_use]
    pub fn reads_since_erase(&self, addr: BlockAddr) -> u64 {
        self.block(addr).reads_since_erase()
    }

    /// Programs a whole physical page (conventional CGM/FGM write path).
    ///
    /// # Errors
    ///
    /// See [`Page::program_full`]; also rejects out-of-geometry addresses
    /// ([`NandError::AddressOutOfRange`]) and bad blocks
    /// ([`NandError::BadBlock`]). With a fault model installed the operation
    /// may report [`NandError::ProgramFailed`]: the pulse ran (the page
    /// counts a program and holds garbage) but no data was stored, and the
    /// caller must re-program elsewhere.
    pub fn program_full(
        &mut self,
        page: PageAddr,
        oobs: &[Option<Oob>],
        now: SimTime,
    ) -> Result<(), NandError> {
        if self.dead {
            return Err(NandError::DeviceDead);
        }
        let block = self.block_mut(page.block)?;
        if block.bad {
            return Err(NandError::BadBlock);
        }
        if block.torn {
            return Err(NandError::TornBlock);
        }
        if page.page >= block.pages.len() as u32 {
            return Err(NandError::AddressOutOfRange);
        }
        // Word lines must be programmed in order: a full-page program is
        // only legal if the preceding page has been programmed.
        if page.page > 0 && block.pages[(page.page - 1) as usize].is_erased() {
            return Err(NandError::NonSequentialProgram { page: page.page });
        }
        // Reliability follows *effective* wear (equal to the erase count
        // unless adaptive erase charged fractional stress).
        let pe = block.effective_pe();
        block.pages[page.page as usize].program_full(oobs, now, pe)?;
        self.stats.full_programs += 1;
        self.note_op_executed();
        // The fault stream is consulted only after the command proved legal,
        // so illegal commands never advance (or even require) the RNG.
        if self.draw_program_fault(pe) {
            let n_sub = self.geometry.subpages_per_page;
            let failed = &mut self.blocks[self.geometry.block_index(page.block) as usize];
            for slot in 0..n_sub {
                failed.pages[page.page as usize].destroy_subpage(slot as u8);
            }
            self.stats.program_failures += 1;
            return Err(NandError::ProgramFailed);
        }
        Ok(())
    }

    /// Programs a single subpage via ESP (erase-free subpage programming).
    ///
    /// Any previously programmed subpage of the same page is destroyed;
    /// the count of destroyed subpages is recorded in [`DeviceStats`].
    ///
    /// # Errors
    ///
    /// See [`Page::program_subpage`]; also rejects out-of-geometry addresses
    /// ([`NandError::AddressOutOfRange`]) and bad blocks
    /// ([`NandError::BadBlock`]). With a fault model installed the operation
    /// may report [`NandError::ProgramFailed`]: the pulse ran (SBPI side
    /// effects included) but the target slot holds garbage.
    pub fn program_subpage(
        &mut self,
        addr: SubpageAddr,
        oob: Oob,
        now: SimTime,
    ) -> Result<(), NandError> {
        if self.dead {
            return Err(NandError::DeviceDead);
        }
        if !self.geometry.contains(addr) {
            return Err(NandError::AddressOutOfRange);
        }
        let block = self.block_mut(addr.page.block)?;
        if block.bad {
            return Err(NandError::BadBlock);
        }
        if block.torn {
            return Err(NandError::TornBlock);
        }
        let pe = block.effective_pe();
        let destroyed =
            block.pages[addr.page.page as usize].program_subpage(addr.slot, oob, now, pe)?;
        self.stats.subpage_programs += 1;
        self.stats.subpages_destroyed += destroyed.len() as u64;
        self.note_op_executed();
        // Consulted only after the command proved legal (see program_full).
        if self.draw_program_fault(pe) {
            let idx = self.geometry.block_index(addr.page.block) as usize;
            self.blocks[idx].pages[addr.page.page as usize].destroy_subpage(addr.slot);
            self.stats.program_failures += 1;
            return Err(NandError::ProgramFailed);
        }
        Ok(())
    }

    /// Reads the subpage at `addr`, judging retention at time `now`.
    ///
    /// # Errors
    ///
    /// * [`ReadFault::NotWritten`] / [`ReadFault::Padding`] /
    ///   [`ReadFault::DestroyedByProgram`] — see [`Page::read_subpage`].
    /// * [`ReadFault::RetentionExceeded`] if the data has aged (or been
    ///   read-disturbed) past what the ECC — and the retry ladder, if one
    ///   is installed — can correct.
    /// * [`ReadFault::Injected`] if a fault was injected at this address.
    pub fn read_subpage(&mut self, addr: SubpageAddr, now: SimTime) -> Result<Oob, ReadFault> {
        self.read_subpage_with_effort(addr, now).0
    }

    /// Reads the subpage at `addr`, also reporting how much retry-ladder
    /// work the read needed (always [`ReadEffort::NONE`] without a ladder).
    /// The block's read-disturb accumulator is charged one sense plus one
    /// per hard retry step.
    pub fn read_subpage_with_effort(
        &mut self,
        addr: SubpageAddr,
        now: SimTime,
    ) -> (Result<Oob, ReadFault>, ReadEffort) {
        if self.dead {
            return (Err(ReadFault::DeviceDead), ReadEffort::NONE);
        }
        self.stats.reads += 1;
        let (result, effort) = self.judge_read(addr, now);
        self.account_slot(&result, effort);
        self.stats.retry_steps += u64::from(effort.retry_steps);
        if effort.soft_decode {
            self.stats.soft_decodes += 1;
        }
        let idx = self.geometry.block_index(addr.page.block) as usize;
        self.blocks[idx].reads_since_erase += 1 + u64::from(effort.retry_steps);
        self.note_op_executed();
        (result, effort)
    }

    /// Reads every subpage of `page` in one cell sense (the full-page read
    /// path), reporting per-slot results plus the page's effort — the
    /// componentwise maximum over its slots, since retry steps re-sense the
    /// whole page. The disturb accumulator is charged once, not per slot.
    pub fn read_full_with_effort(
        &mut self,
        page: PageAddr,
        now: SimTime,
    ) -> (Vec<Result<Oob, ReadFault>>, ReadEffort) {
        let mut results = Vec::new();
        let effort = self.read_full_with_effort_into(page, now, &mut results);
        (results, effort)
    }

    /// Allocation-free variant of [`NandDevice::read_full_with_effort`]:
    /// clears `out` and fills it with the per-slot results, so steady-state
    /// read loops can reuse one buffer.
    pub fn read_full_with_effort_into(
        &mut self,
        page: PageAddr,
        now: SimTime,
        out: &mut Vec<Result<Oob, ReadFault>>,
    ) -> ReadEffort {
        let n_sub = self.geometry.subpages_per_page;
        if self.dead {
            out.clear();
            out.resize(n_sub as usize, Err(ReadFault::DeviceDead));
            return ReadEffort::NONE;
        }
        out.clear();
        out.reserve(n_sub as usize);
        let results = out;
        let mut effort = ReadEffort::NONE;
        // Slots programmed by one full-page program share
        // `(pe_at_program, npp, programmed_at)`, and the BER verdict is a
        // pure function of those inputs (plus per-call constants), so the
        // common case runs the float model once per page, not once per
        // slot. Identical inputs give bit-identical verdicts — exact.
        type JudgeKey = (u32, u8, SimTime);
        let mut cached: Option<(JudgeKey, Result<(), ReadFault>, ReadEffort)> = None;
        let block_index = u64::from(self.geometry.block_index(page.block));
        for slot in 0..n_sub {
            self.stats.reads += 1;
            let addr = page.subpage(slot as u8);
            let (r, e) = if !self.forced_faults.is_empty() && self.forced_faults.contains(&addr) {
                (Err(ReadFault::Injected), ReadEffort::NONE)
            } else {
                match self.written_subpage(addr) {
                    Err(e) => (Err(e), ReadEffort::NONE),
                    Ok(w) => {
                        let key = (w.pe_at_program, w.npp, w.programmed_at);
                        let (verdict, eff) = match cached {
                            Some((k, v, eff)) if k == key => (v, eff),
                            _ => {
                                let (v, eff) = self.judge_written(block_index, &w, now);
                                cached = Some((key, v, eff));
                                (v, eff)
                            }
                        };
                        let oob = w.oob.expect("written_subpage filters padding");
                        (verdict.map(|()| oob), eff)
                    }
                }
            };
            self.account_slot(&r, e);
            effort = effort.max(e);
            results.push(r);
        }
        self.stats.retry_steps += u64::from(effort.retry_steps);
        if effort.soft_decode {
            self.stats.soft_decodes += 1;
        }
        self.blocks[block_index as usize].reads_since_erase += 1 + u64::from(effort.retry_steps);
        self.note_op_executed();
        effort
    }

    /// Judges one subpage read without mutating any state: retention BER
    /// plus the block's accumulated read-disturb term, run through the
    /// retry ladder if one is installed.
    fn judge_read(&self, addr: SubpageAddr, now: SimTime) -> (Result<Oob, ReadFault>, ReadEffort) {
        if !self.forced_faults.is_empty() && self.forced_faults.contains(&addr) {
            return (Err(ReadFault::Injected), ReadEffort::NONE);
        }
        let w = match self.written_subpage(addr) {
            Ok(w) => w,
            Err(e) => return (Err(e), ReadEffort::NONE),
        };
        let block_index = u64::from(self.geometry.block_index(addr.page.block));
        let (verdict, effort) = self.judge_written(block_index, &w, now);
        let oob = w.oob.expect("written_subpage filters padding");
        (verdict.map(|()| oob), effort)
    }

    /// The BER verdict for a written subpage: a pure function of the
    /// subpage's program-time parameters, the block, and `now`.
    fn judge_written(
        &self,
        block_index: u64,
        w: &WrittenSubpage,
        now: SimTime,
    ) -> (Result<(), ReadFault>, ReadEffort) {
        let elapsed = now.saturating_since(w.programmed_at);
        let ber = self.retention.normalized_ber_on_block(
            block_index,
            w.pe_at_program,
            u32::from(w.npp),
            elapsed,
        ) + self
            .retention
            .disturb_term(self.blocks[block_index as usize].reads_since_erase);
        let limit = self.retention.ecc_limit();
        match &self.retry_ladder {
            Some(ladder) => match ladder.effort_for(ber, limit) {
                Some(effort) => (Ok(()), effort),
                None => (Err(ReadFault::RetentionExceeded), ladder.exhausted()),
            },
            None if ber <= limit => (Ok(()), ReadEffort::NONE),
            None => (Err(ReadFault::RetentionExceeded), ReadEffort::NONE),
        }
    }

    /// Per-slot statistics for a judged read.
    fn account_slot(&mut self, result: &Result<Oob, ReadFault>, effort: ReadEffort) {
        match result {
            Ok(_) if !effort.is_free() => self.stats.recovered_reads += 1,
            Err(ReadFault::RetentionExceeded) => self.stats.retention_failures += 1,
            _ => {}
        }
    }

    fn written_subpage(&self, addr: SubpageAddr) -> Result<WrittenSubpage, ReadFault> {
        assert!(self.geometry.contains(addr), "address outside geometry");
        let block = self.block(addr.page.block);
        block.pages[addr.page.page as usize]
            .read_subpage(addr.slot)
            .copied()
    }

    /// Introspects the raw state of a subpage (no ECC judgment, no
    /// statistics). Intended for tests and characterization harnesses.
    #[must_use]
    pub fn subpage_state(&self, addr: SubpageAddr) -> &SubpageState {
        assert!(self.geometry.contains(addr), "address outside geometry");
        self.block(addr.page.block).pages[addr.page.page as usize].subpage(addr.slot)
    }

    /// Erases a block, resetting all of its pages and incrementing its P/E
    /// cycle count.
    ///
    /// # Errors
    ///
    /// * [`NandError::AddressOutOfRange`] for addresses outside the
    ///   geometry.
    /// * [`NandError::BadBlock`] if the block is already marked bad.
    /// * [`NandError::EraseFailed`] if the installed fault model injects an
    ///   erase failure: the block's contents are gone, wear still accrues,
    ///   and the block becomes a *grown bad block* that rejects all further
    ///   program/erase commands.
    pub fn erase(&mut self, addr: BlockAddr, _now: SimTime) -> Result<(), NandError> {
        if self.dead {
            return Err(NandError::DeviceDead);
        }
        let block = self.block_mut(addr)?;
        if block.bad {
            return Err(NandError::BadBlock);
        }
        let pe = block.effective_pe();
        // Depth is chosen from the wear *before* this erase (matching the
        // cost [`NandDevice::erase_cost`] reports); a full-depth erase is
        // exactly one P/E cycle of stress, so the adaptive-off path is
        // bit-identical to the classic accounting.
        let depth = if self.adaptive_erase {
            self.retention.erase_depth(pe)
        } else {
            EraseDepth::Deep
        };
        // Consulted only after the command proved legal (see program_full).
        let failed = self.draw_erase_fault(pe);
        let block = self.block_mut(addr).expect("address already validated");
        for page in &mut block.pages {
            page.erase();
        }
        block.pe_cycles += 1;
        block.stress_milli += depth.stress_milli_pe();
        // A completed erase recovers a torn block and discharges the
        // accumulated read disturb.
        block.torn = false;
        block.reads_since_erase = 0;
        self.stats.erases += 1;
        if depth != EraseDepth::Deep {
            self.stats.shallow_erases += 1;
        }
        self.note_op_executed();
        let worn = self.block(addr).effective_pe();
        self.note_wear(worn);
        if failed {
            let block = self.block_mut(addr).expect("address already validated");
            block.bad = true;
            self.stats.erase_failures += 1;
            return Err(NandError::EraseFailed);
        }
        Ok(())
    }

    /// True if the block's last erase was interrupted (see [`Block::is_torn`]).
    ///
    /// # Panics
    ///
    /// Panics if the address is outside the geometry.
    #[must_use]
    pub fn is_torn(&self, addr: BlockAddr) -> bool {
        self.block(addr).torn
    }

    /// A full-page program interrupted by power loss: legality is checked
    /// exactly as for [`NandDevice::program_full`] (the command was
    /// accepted before the cut), but the fault stream is *not* consulted —
    /// power died before any status register could report. Every subpage
    /// of the target page ends up [`SubpageState::Torn`].
    ///
    /// # Errors
    ///
    /// Same legality errors as [`NandDevice::program_full`].
    pub fn tear_program_full(&mut self, page: PageAddr) -> Result<(), NandError> {
        if self.dead {
            return Err(NandError::DeviceDead);
        }
        let block = self.block_mut(page.block)?;
        if block.bad {
            return Err(NandError::BadBlock);
        }
        if block.torn {
            return Err(NandError::TornBlock);
        }
        if page.page >= block.pages.len() as u32 {
            return Err(NandError::AddressOutOfRange);
        }
        if page.page > 0 && block.pages[(page.page - 1) as usize].is_erased() {
            return Err(NandError::NonSequentialProgram { page: page.page });
        }
        block.pages[page.page as usize].tear_program_full()?;
        self.stats.torn_programs += 1;
        Ok(())
    }

    /// A subpage program interrupted by power loss: the target slot is
    /// torn and previously-programmed siblings are destroyed (the Fig 4(b)
    /// disturbance precedes the cut). No fault-stream draw — see
    /// [`NandDevice::tear_program_full`].
    ///
    /// # Errors
    ///
    /// Same legality errors as [`NandDevice::program_subpage`].
    pub fn tear_program_subpage(&mut self, addr: SubpageAddr) -> Result<(), NandError> {
        if self.dead {
            return Err(NandError::DeviceDead);
        }
        if !self.geometry.contains(addr) {
            return Err(NandError::AddressOutOfRange);
        }
        let block = self.block_mut(addr.page.block)?;
        if block.bad {
            return Err(NandError::BadBlock);
        }
        if block.torn {
            return Err(NandError::TornBlock);
        }
        let destroyed = block.pages[addr.page.page as usize].tear_program_subpage(addr.slot)?;
        self.stats.subpages_destroyed += destroyed.len() as u64;
        self.stats.torn_programs += 1;
        Ok(())
    }

    /// An erase interrupted by power loss: every page of the block becomes
    /// unreadable, wear accrues (the erase pulse ran), and the block
    /// rejects programs ([`NandError::TornBlock`]) until a completed
    /// re-erase recovers it. No fault-stream draw.
    ///
    /// # Errors
    ///
    /// Same legality errors as [`NandDevice::erase`].
    pub fn tear_erase(&mut self, addr: BlockAddr) -> Result<(), NandError> {
        if self.dead {
            return Err(NandError::DeviceDead);
        }
        let block = self.block_mut(addr)?;
        if block.bad {
            return Err(NandError::BadBlock);
        }
        for page in &mut block.pages {
            page.tear_all();
        }
        block.pe_cycles += 1;
        // An interrupted erase is charged full stress regardless of
        // adaptive mode: no status handshake happened, so the controller
        // must assume the deepest pulse sequence ran.
        block.stress_milli += 1000;
        block.torn = true;
        // The erase pulse ran: the old charge pattern (and its disturb) is
        // gone even though the block is unusable until re-erased.
        block.reads_since_erase = 0;
        self.stats.torn_erases += 1;
        Ok(())
    }

    fn draw_program_fault(&mut self, pe_cycles: u32) -> bool {
        match &mut self.faults {
            Some(f) => f.program_fails(pe_cycles, &self.retention),
            None => false,
        }
    }

    fn draw_erase_fault(&mut self, pe_cycles: u32) -> bool {
        match &mut self.faults {
            Some(f) => f.erase_fails(pe_cycles, &self.retention),
            None => false,
        }
    }

    /// Pre-ages every block to `pe_cycles` without touching page contents.
    ///
    /// The paper performs 1K P/E cycles before its retention measurements;
    /// characterization harnesses use this to reproduce that precondition
    /// without simulating a thousand full device overwrites.
    pub fn precycle(&mut self, pe_cycles: u32) {
        for b in &mut self.blocks {
            b.pe_cycles = b.pe_cycles.max(pe_cycles);
            // Pre-aging is full-depth wear: keep the stress accumulator in
            // lockstep so effective wear never lags the erase count.
            b.stress_milli = b.stress_milli.max(u64::from(pe_cycles) * 1000);
        }
    }

    /// Forces the next and all subsequent reads of `addr` to fail with
    /// [`ReadFault::Injected`] until [`NandDevice::clear_fault`] is called.
    pub fn inject_read_fault(&mut self, addr: SubpageAddr) {
        self.forced_faults.insert(addr);
    }

    /// Removes an injected fault.
    pub fn clear_fault(&mut self, addr: SubpageAddr) {
        self.forced_faults.remove(&addr);
    }

    /// True once the whole device has failed (fault-model death trip or an
    /// explicit [`NandDevice::kill`]). The latch is permanent: every
    /// subsequent command fails without running.
    #[must_use]
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Kills the device outright: every subsequent command fails with
    /// [`NandError::DeviceDead`] / [`ReadFault::DeviceDead`]. Array layers
    /// use this for externally-triggered failures (e.g. an FTL end-of-life
    /// latch promoted to whole-device death).
    pub fn kill(&mut self) {
        self.dead = true;
    }

    /// Executed NAND commands so far (the counter
    /// [`FaultConfig::die_at_op`] compares against).
    #[must_use]
    pub fn ops_executed(&self) -> u64 {
        self.ops_executed
    }

    /// Counts one executed command and trips the death latch when the
    /// configured op budget is exhausted. The command that reaches the
    /// budget still completes — the device bricks *after* it.
    fn note_op_executed(&mut self) {
        self.ops_executed += 1;
        if let Some(n) = self.faults.as_ref().and_then(|f| f.config().die_at_op) {
            if self.ops_executed >= n {
                self.dead = true;
            }
        }
    }

    /// Trips the death latch when a block's effective wear reaches the
    /// configured P/E death threshold (controller-level wear-out trip).
    fn note_wear(&mut self, effective_pe: u32) {
        if let Some(t) = self.faults.as_ref().and_then(|f| f.config().die_at_pe) {
            if effective_pe >= t {
                self.dead = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oob(lsn: u64) -> Oob {
        Oob { lsn, seq: lsn }
    }

    fn dev() -> NandDevice {
        NandDevice::new(Geometry::tiny())
    }

    #[test]
    fn full_program_then_read_round_trips() {
        let mut d = dev();
        let blk = d.geometry().block_addr(3);
        // Pages program in word-line order; fill pages 0-1 to reach page 2.
        d.program_full(blk.page(0), &[None; 4], SimTime::ZERO)
            .unwrap();
        d.program_full(blk.page(1), &[None; 4], SimTime::ZERO)
            .unwrap();
        let page = blk.page(2);
        let oobs: Vec<_> = (0..4).map(|i| Some(oob(100 + i))).collect();
        d.program_full(page, &oobs, SimTime::ZERO).unwrap();
        for slot in 0..4u8 {
            let got = d.read_subpage(page.subpage(slot), SimTime::ZERO).unwrap();
            assert_eq!(got.lsn, 100 + u64::from(slot));
        }
        assert_eq!(d.stats().full_programs, 3);
        assert_eq!(d.stats().reads, 4);
    }

    #[test]
    fn erase_increments_pe_and_resets_pages() {
        let mut d = dev();
        let blk = d.geometry().block_addr(0);
        let page = blk.page(0);
        d.program_subpage(page.subpage(0), oob(1), SimTime::ZERO)
            .unwrap();
        d.erase(blk, SimTime::ZERO).unwrap();
        assert_eq!(d.pe_cycles(blk), 1);
        assert_eq!(
            d.read_subpage(page.subpage(0), SimTime::ZERO),
            Err(ReadFault::NotWritten)
        );
        assert_eq!(d.stats().erases, 1);
    }

    #[test]
    fn retention_failure_after_aging() {
        let mut d = dev();
        d.precycle(1000);
        let page = d.geometry().block_addr(0).page(0);
        // Build an Npp^3 subpage: 3 programs, then program slot 3.
        for slot in 0..3u8 {
            d.program_subpage(page.subpage(slot), oob(u64::from(slot)), SimTime::ZERO)
                .unwrap();
        }
        d.program_subpage(page.subpage(3), oob(99), SimTime::ZERO)
            .unwrap();
        // Readable at 1 month...
        let one_month = SimTime::ZERO + SimDuration::from_months(1);
        assert_eq!(d.read_subpage(page.subpage(3), one_month).unwrap().lsn, 99);
        // ...unreadable at 2 months (Fig 5).
        let two_months = SimTime::ZERO + SimDuration::from_months(2);
        assert_eq!(
            d.read_subpage(page.subpage(3), two_months),
            Err(ReadFault::RetentionExceeded)
        );
        assert_eq!(d.stats().retention_failures, 1);
    }

    #[test]
    fn retry_ladder_recovers_aged_data_and_charges_effort() {
        // The retention_failure_after_aging scenario, with a ladder: the
        // 2-month Npp^3 read is over the base limit but within the rungs.
        let mut d = dev();
        d.set_retry_ladder(Some(RetryLadder::paper_default()));
        d.precycle(1000);
        let page = d.geometry().block_addr(0).page(0);
        for slot in 0..3u8 {
            d.program_subpage(page.subpage(slot), oob(u64::from(slot)), SimTime::ZERO)
                .unwrap();
        }
        d.program_subpage(page.subpage(3), oob(99), SimTime::ZERO)
            .unwrap();
        let two_months = SimTime::ZERO + SimDuration::from_months(2);
        let (r, effort) = d.read_subpage_with_effort(page.subpage(3), two_months);
        assert_eq!(r.unwrap().lsn, 99, "ladder must recover the read");
        assert!(effort.retry_steps > 0);
        assert_eq!(d.stats().recovered_reads, 1);
        assert_eq!(d.stats().retention_failures, 0);
        assert!(d.stats().retry_steps >= u64::from(effort.retry_steps));
        // Truly over-limit data still dies: far past the soft rung.
        let years = SimTime::ZERO + SimDuration::from_months(36);
        let (r, effort) = d.read_subpage_with_effort(page.subpage(3), years);
        assert_eq!(r, Err(ReadFault::RetentionExceeded));
        assert_eq!(effort, RetryLadder::paper_default().exhausted());
        assert_eq!(d.stats().retention_failures, 1);
    }

    #[test]
    fn read_disturb_accumulates_and_erase_resets() {
        let mut d = NandDevice::with_models(
            Geometry::tiny(),
            NandTiming::paper_default(),
            RetentionModel::paper_default().with_read_disturb(0.05),
        );
        let blk = d.geometry().block_addr(0);
        let sp = blk.page(0).subpage(0);
        d.program_subpage(sp, oob(1), SimTime::ZERO).unwrap();
        // Fresh block at 0 P/E: base BER = fresh_factor (0.25). The limit
        // (2.4) leaves headroom for 43 disturb increments of 0.05.
        let mut failures = 0;
        for _ in 0..60 {
            if d.read_subpage(sp, SimTime::ZERO).is_err() {
                failures += 1;
            }
        }
        assert!(failures > 0, "hot reads must eventually exceed the limit");
        assert_eq!(d.stats().retention_failures, failures);
        assert!(d.reads_since_erase(blk) >= 60);
        // Erase discharges the disturb.
        d.erase(blk, SimTime::ZERO).unwrap();
        assert_eq!(d.reads_since_erase(blk), 0);
        d.program_subpage(sp, oob(2), SimTime::ZERO).unwrap();
        assert_eq!(d.read_subpage(sp, SimTime::ZERO).unwrap().lsn, 2);
    }

    #[test]
    fn full_page_read_charges_one_sense_not_four() {
        let mut d = dev();
        let blk = d.geometry().block_addr(0);
        let page = blk.page(0);
        d.program_full(page, &[Some(oob(1)); 4], SimTime::ZERO)
            .unwrap();
        let (results, effort) = d.read_full_with_effort(page, SimTime::ZERO);
        assert_eq!(results.len(), 4);
        assert!(results.iter().all(Result::is_ok));
        assert!(effort.is_free());
        assert_eq!(d.reads_since_erase(blk), 1, "one sense for the page");
        assert_eq!(d.stats().reads, 4, "per-slot counter is unchanged");
    }

    #[test]
    fn ladder_does_not_advance_the_fault_stream() {
        // The ladder is deterministic: enabling it must not change seeded
        // program-fault outcomes.
        let faults = crate::FaultConfig {
            seed: 5,
            program_fail_prob: 0.3,
            ..crate::FaultConfig::default()
        };
        let run = |with_ladder: bool| -> Vec<bool> {
            let mut d = dev();
            d.set_faults(faults.clone());
            if with_ladder {
                d.set_retry_ladder(Some(RetryLadder::paper_default()));
            }
            let blk = d.geometry().block_addr(0);
            let mut outcomes = Vec::new();
            for i in 0..32u8 {
                let sp = blk.page(u32::from(i % 4)).subpage(i % 4);
                let r = d.program_subpage(sp, oob(u64::from(i)), SimTime::ZERO);
                outcomes.push(r == Err(NandError::ProgramFailed));
                let _ = d.read_subpage(sp, SimTime::ZERO);
                if i % 4 == 3 {
                    let _ = d.erase(blk, SimTime::ZERO);
                }
            }
            outcomes
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn npp0_subpage_survives_a_year() {
        let mut d = dev();
        d.precycle(1000);
        let page = d.geometry().block_addr(0).page(0);
        d.program_subpage(page.subpage(0), oob(1), SimTime::ZERO)
            .unwrap();
        let year = SimTime::ZERO + SimDuration::from_months(12);
        assert!(d.read_subpage(page.subpage(0), year).is_ok());
    }

    #[test]
    fn op_costs_reflect_paper_latencies() {
        let d = dev();
        let full = d.op_cost(OpKind::ProgramFull);
        let sub = d.op_cost(OpKind::ProgramSubpage);
        assert_eq!(full.cell, SimDuration::from_micros(1600));
        assert_eq!(sub.cell, SimDuration::from_micros(1300));
        assert!(sub.bus < full.bus, "subpage transfers 1/4 of the bytes");
        assert_eq!(d.op_cost(OpKind::Erase).bus, SimDuration::ZERO);
        assert!(full.total() > full.cell);
    }

    #[test]
    fn destroyed_counter_tracks_esp_side_effects() {
        let mut d = dev();
        let page = d.geometry().block_addr(0).page(0);
        d.program_subpage(page.subpage(0), oob(1), SimTime::ZERO)
            .unwrap();
        d.program_subpage(page.subpage(1), oob(2), SimTime::ZERO)
            .unwrap();
        assert_eq!(d.stats().subpages_destroyed, 1);
        assert_eq!(d.stats().subpage_programs, 2);
    }

    #[test]
    fn out_of_range_addresses_are_rejected() {
        let mut d = dev();
        let bad_block = BlockAddr {
            chip: d.geometry().chip_addr(0),
            block: d.geometry().blocks_per_chip,
        };
        assert_eq!(
            d.erase(bad_block, SimTime::ZERO),
            Err(NandError::AddressOutOfRange)
        );
        let bad_page = d.geometry().block_addr(0).page(99);
        assert_eq!(
            d.program_full(bad_page, &[None; 4], SimTime::ZERO),
            Err(NandError::AddressOutOfRange)
        );
    }

    #[test]
    fn full_programs_must_follow_page_order() {
        let mut d = dev();
        let blk = d.geometry().block_addr(0);
        // Page 1 before page 0: rejected.
        assert_eq!(
            d.program_full(blk.page(1), &[None; 4], SimTime::ZERO),
            Err(NandError::NonSequentialProgram { page: 1 })
        );
        // In order: fine.
        d.program_full(blk.page(0), &[None; 4], SimTime::ZERO)
            .unwrap();
        d.program_full(blk.page(1), &[None; 4], SimTime::ZERO)
            .unwrap();
        // ESP subpage programs are exempt (lap discipline revisits pages).
        let other = d.geometry().block_addr(1);
        d.program_subpage(other.page(3).subpage(0), oob(1), SimTime::ZERO)
            .unwrap();
        d.program_subpage(other.page(0).subpage(0), oob(2), SimTime::ZERO)
            .unwrap();
    }

    #[test]
    fn fault_injection_forces_and_clears() {
        let mut d = dev();
        let sp = d.geometry().block_addr(0).page(0).subpage(0);
        d.program_subpage(sp, oob(5), SimTime::ZERO).unwrap();
        d.inject_read_fault(sp);
        assert_eq!(d.read_subpage(sp, SimTime::ZERO), Err(ReadFault::Injected));
        d.clear_fault(sp);
        assert_eq!(d.read_subpage(sp, SimTime::ZERO).unwrap().lsn, 5);
    }

    #[test]
    fn bad_blocks_reject_program_and_erase() {
        let mut d = dev();
        let blk = d.geometry().block_addr(2);
        d.mark_bad(blk);
        assert!(d.is_bad(blk));
        assert_eq!(
            d.program_full(blk.page(0), &[None; 4], SimTime::ZERO),
            Err(NandError::BadBlock)
        );
        assert_eq!(
            d.program_subpage(blk.page(0).subpage(0), oob(1), SimTime::ZERO),
            Err(NandError::BadBlock)
        );
        assert_eq!(d.erase(blk, SimTime::ZERO), Err(NandError::BadBlock));
        assert_eq!(d.bad_block_indices(), vec![2]);
        // No operation was actually performed.
        assert_eq!(d.stats().full_programs, 0);
        assert_eq!(d.stats().erases, 0);
    }

    #[test]
    fn factory_bad_blocks_marked_at_install() {
        let mut d = dev();
        d.set_faults(crate::FaultConfig {
            seed: 9,
            factory_bad_blocks: 3,
            ..crate::FaultConfig::default()
        });
        let bad = d.bad_block_indices();
        assert_eq!(bad.len(), 3);
        for gbi in bad {
            assert!(d.is_bad(d.geometry().block_addr(gbi)));
        }
    }

    #[test]
    fn injected_program_failure_leaves_garbage_and_counts() {
        // program_fail_prob ~ 1 makes the very first program fail.
        let mut d = dev();
        d.set_faults(crate::FaultConfig {
            seed: 1,
            program_fail_prob: 0.999_999,
            ..crate::FaultConfig::default()
        });
        let page = d.geometry().block_addr(0).page(0);
        assert_eq!(
            d.program_subpage(page.subpage(0), oob(7), SimTime::ZERO),
            Err(NandError::ProgramFailed)
        );
        // The pulse ran: the page counts a program, the slot holds garbage.
        assert_eq!(d.block(page.block).page(0).program_count(), 1);
        assert_eq!(
            d.read_subpage(page.subpage(0), SimTime::ZERO),
            Err(ReadFault::DestroyedByProgram)
        );
        assert_eq!(d.stats().program_failures, 1);
        assert_eq!(d.stats().subpage_programs, 1);

        // Full-page variant: all slots garbage, WL order still satisfied.
        let blk = d.geometry().block_addr(1);
        assert_eq!(
            d.program_full(blk.page(0), &[Some(oob(1)); 4], SimTime::ZERO),
            Err(NandError::ProgramFailed)
        );
        for slot in 0..4u8 {
            assert_eq!(
                d.read_subpage(blk.page(0).subpage(slot), SimTime::ZERO),
                Err(ReadFault::DestroyedByProgram)
            );
        }
        assert_eq!(d.stats().program_failures, 2);
    }

    #[test]
    fn injected_erase_failure_grows_a_bad_block() {
        let mut d = dev();
        d.set_faults(crate::FaultConfig {
            seed: 1,
            erase_fail_prob: 0.999_999,
            ..crate::FaultConfig::default()
        });
        let blk = d.geometry().block_addr(0);
        d.program_subpage(blk.page(0).subpage(0), oob(1), SimTime::ZERO)
            .unwrap();
        assert_eq!(d.erase(blk, SimTime::ZERO), Err(NandError::EraseFailed));
        // Contents gone, wear accrued, block now bad.
        assert!(d.is_bad(blk));
        assert_eq!(d.pe_cycles(blk), 1);
        assert_eq!(
            d.read_subpage(blk.page(0).subpage(0), SimTime::ZERO),
            Err(ReadFault::NotWritten)
        );
        assert_eq!(d.erase(blk, SimTime::ZERO), Err(NandError::BadBlock));
        assert_eq!(d.stats().erase_failures, 1);
        assert_eq!(d.stats().erases, 1);
    }

    #[test]
    fn illegal_commands_do_not_advance_the_fault_stream() {
        // Two devices with the same seeded fault model; one also issues a
        // stream of illegal commands. The fault outcomes must match.
        let faults = crate::FaultConfig {
            seed: 5,
            program_fail_prob: 0.3,
            ..crate::FaultConfig::default()
        };
        let run = |with_illegal: bool| -> Vec<bool> {
            let mut d = dev();
            d.set_faults(faults.clone());
            let blk = d.geometry().block_addr(0);
            let mut outcomes = Vec::new();
            for i in 0..32u8 {
                if with_illegal {
                    // Out-of-range and WL-order violations: rejected before
                    // the fault model is consulted.
                    let _ = d.program_full(blk.page(99), &[None; 4], SimTime::ZERO);
                    let _ = d.program_full(
                        d.geometry().block_addr(1).page(5),
                        &[None; 4],
                        SimTime::ZERO,
                    );
                }
                let r = d.program_subpage(
                    blk.page(u32::from(i % 4)).subpage(i % 4),
                    oob(u64::from(i)),
                    SimTime::ZERO,
                );
                outcomes.push(r == Err(NandError::ProgramFailed));
                if i % 4 == 3 {
                    let _ = d.erase(blk, SimTime::ZERO);
                }
            }
            outcomes
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn torn_subpage_program_destroys_sibling_and_reads_torn() {
        let mut d = dev();
        let page = d.geometry().block_addr(0).page(0);
        d.program_subpage(page.subpage(0), oob(1), SimTime::ZERO)
            .unwrap();
        d.tear_program_subpage(page.subpage(1)).unwrap();
        assert_eq!(
            d.read_subpage(page.subpage(0), SimTime::ZERO),
            Err(ReadFault::DestroyedByProgram)
        );
        assert_eq!(
            d.read_subpage(page.subpage(1), SimTime::ZERO),
            Err(ReadFault::Torn)
        );
        assert_eq!(d.stats().torn_programs, 1);
        assert_eq!(d.stats().subpages_destroyed, 1);
        // Further laps on the page remain legal; the block is not torn.
        assert!(!d.is_torn(page.block));
        d.program_subpage(page.subpage(2), oob(2), SimTime::ZERO)
            .unwrap();
        assert_eq!(
            d.read_subpage(page.subpage(2), SimTime::ZERO).unwrap().lsn,
            2
        );
    }

    #[test]
    fn torn_full_program_respects_legality_and_wl_order() {
        let mut d = dev();
        let blk = d.geometry().block_addr(0);
        assert_eq!(
            d.tear_program_full(blk.page(1)),
            Err(NandError::NonSequentialProgram { page: 1 })
        );
        d.tear_program_full(blk.page(0)).unwrap();
        for slot in 0..4u8 {
            assert_eq!(
                d.read_subpage(blk.page(0).subpage(slot), SimTime::ZERO),
                Err(ReadFault::Torn)
            );
        }
        assert_eq!(d.stats().torn_programs, 1);
    }

    #[test]
    fn torn_erase_blocks_programs_until_reerased() {
        let mut d = dev();
        let blk = d.geometry().block_addr(0);
        d.program_subpage(blk.page(0).subpage(0), oob(1), SimTime::ZERO)
            .unwrap();
        d.tear_erase(blk).unwrap();
        assert!(d.is_torn(blk));
        assert_eq!(d.pe_cycles(blk), 1);
        assert_eq!(d.stats().torn_erases, 1);
        // Contents unreadable, programs rejected.
        assert_eq!(
            d.read_subpage(blk.page(0).subpage(0), SimTime::ZERO),
            Err(ReadFault::Torn)
        );
        assert_eq!(
            d.program_subpage(blk.page(0).subpage(0), oob(2), SimTime::ZERO),
            Err(NandError::TornBlock)
        );
        assert_eq!(
            d.program_full(blk.page(0), &[None; 4], SimTime::ZERO),
            Err(NandError::TornBlock)
        );
        // A completed erase recovers the block.
        d.erase(blk, SimTime::ZERO).unwrap();
        assert!(!d.is_torn(blk));
        assert_eq!(d.pe_cycles(blk), 2);
        d.program_subpage(blk.page(0).subpage(0), oob(3), SimTime::ZERO)
            .unwrap();
        assert_eq!(
            d.read_subpage(blk.page(0).subpage(0), SimTime::ZERO)
                .unwrap()
                .lsn,
            3
        );
    }

    #[test]
    fn tear_operations_do_not_advance_the_fault_stream() {
        // Mirror of illegal_commands_do_not_advance_the_fault_stream: a
        // power cut never consults the status register, so tear operations
        // must leave the seeded fault stream untouched.
        let faults = crate::FaultConfig {
            seed: 5,
            program_fail_prob: 0.3,
            ..crate::FaultConfig::default()
        };
        let run = |with_tears: bool| -> Vec<bool> {
            let mut d = dev();
            d.set_faults(faults.clone());
            let blk = d.geometry().block_addr(0);
            let spare = d.geometry().block_addr(1);
            let mut outcomes = Vec::new();
            for i in 0..16u8 {
                if with_tears {
                    let _ = d.tear_program_subpage(spare.page(u32::from(i % 4)).subpage(i % 4));
                }
                let r = d.program_subpage(
                    blk.page(u32::from(i % 4)).subpage(i % 4),
                    oob(u64::from(i)),
                    SimTime::ZERO,
                );
                outcomes.push(r == Err(NandError::ProgramFailed));
                if i % 4 == 3 {
                    let _ = d.erase(blk, SimTime::ZERO);
                    if with_tears {
                        let _ = d.tear_erase(spare);
                    }
                }
            }
            outcomes
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn precycle_only_raises() {
        let mut d = dev();
        let blk = d.geometry().block_addr(0);
        d.erase(blk, SimTime::ZERO).unwrap();
        d.erase(blk, SimTime::ZERO).unwrap();
        d.precycle(1);
        assert_eq!(d.pe_cycles(blk), 2, "precycle must not lower wear");
        assert_eq!(d.effective_pe(blk), 2, "stress must not lag either");
    }

    #[test]
    fn without_adaptive_erase_stress_tracks_pe_exactly() {
        let mut d = dev();
        let blk = d.geometry().block_addr(0);
        for _ in 0..5 {
            d.erase(blk, SimTime::ZERO).unwrap();
        }
        d.tear_erase(blk).unwrap();
        d.erase(blk, SimTime::ZERO).unwrap();
        d.precycle(20);
        assert_eq!(d.pe_cycles(blk), 20);
        assert_eq!(d.effective_pe(blk), d.pe_cycles(blk));
        assert_eq!(d.block(blk).stress_milli_pe(), 20_000);
        assert_eq!(d.stats().shallow_erases, 0);
        assert_eq!(d.erase_cost(blk), d.op_cost(OpKind::Erase));
    }

    #[test]
    fn adaptive_erase_charges_fractional_stress_and_counts() {
        let mut d = dev();
        d.set_adaptive_erase(true);
        let blk = d.geometry().block_addr(0);
        // A fresh block sits deep in the shallow tier: 600 milli-P/E and
        // 70 % of tBERS per erase.
        assert_eq!(
            d.erase_cost(blk).cell,
            d.timing().erase_for(EraseDepth::Shallow)
        );
        for _ in 0..10 {
            d.erase(blk, SimTime::ZERO).unwrap();
        }
        assert_eq!(d.pe_cycles(blk), 10);
        assert_eq!(d.block(blk).stress_milli_pe(), 6_000);
        assert_eq!(
            d.effective_pe(blk),
            6,
            "shallow erases age the block slower"
        );
        assert_eq!(d.stats().shallow_erases, 10);
        // A worn block falls back to full depth: same cost and stress as
        // the non-adaptive path.
        d.precycle(2000);
        assert_eq!(d.erase_cost(blk), d.op_cost(OpKind::Erase));
        let stress_before = d.block(blk).stress_milli_pe();
        d.erase(blk, SimTime::ZERO).unwrap();
        assert_eq!(d.block(blk).stress_milli_pe(), stress_before + 1000);
        assert_eq!(d.stats().shallow_erases, 10, "deep erases are not counted");
    }

    #[test]
    fn adaptive_erase_feeds_effective_wear_into_retention() {
        // Two identically-programmed devices; the adaptive one performed
        // its erases shallowly, so its effective wear — and therefore the
        // judged BER — is lower for data of the same age.
        let run = |adaptive: bool| -> u32 {
            let mut d = dev();
            d.set_adaptive_erase(adaptive);
            let blk = d.geometry().block_addr(0);
            for _ in 0..400 {
                // Keep the block in the shallow tier only while adaptive:
                // effective wear grows 0.6×.
                d.erase(blk, SimTime::ZERO).unwrap();
            }
            let sp = blk.page(0).subpage(0);
            d.program_subpage(sp, oob(1), SimTime::ZERO).unwrap();
            match d.subpage_state(sp) {
                SubpageState::Written(w) => w.pe_at_program,
                other => panic!("expected written subpage, got {other:?}"),
            }
        };
        assert_eq!(run(false), 400);
        assert_eq!(run(true), 240, "0.6 stress per shallow erase");
    }

    #[test]
    fn kill_bricks_every_operation() {
        let mut d = dev();
        let blk = d.geometry().block_addr(0);
        d.program_subpage(blk.page(0).subpage(0), oob(1), SimTime::ZERO)
            .unwrap();
        assert!(!d.is_dead());
        d.kill();
        assert!(d.is_dead());
        assert_eq!(
            d.program_full(blk.page(1), &[None; 4], SimTime::ZERO),
            Err(NandError::DeviceDead)
        );
        assert_eq!(
            d.program_subpage(blk.page(0).subpage(1), oob(2), SimTime::ZERO),
            Err(NandError::DeviceDead)
        );
        assert_eq!(d.erase(blk, SimTime::ZERO), Err(NandError::DeviceDead));
        // Reads of previously-written data fail too: the device is gone.
        assert_eq!(
            d.read_subpage(blk.page(0).subpage(0), SimTime::ZERO),
            Err(ReadFault::DeviceDead)
        );
        assert_eq!(d.tear_program_full(blk.page(1)), Err(NandError::DeviceDead));
        assert_eq!(d.tear_erase(blk), Err(NandError::DeviceDead));
    }

    #[test]
    fn die_at_op_latches_after_exactly_n_commands() {
        let mut d = dev();
        d.set_faults(FaultConfig {
            die_at_op: Some(3),
            ..FaultConfig::default()
        });
        let blk = d.geometry().block_addr(0);
        // Commands 1 and 2 execute normally.
        d.program_subpage(blk.page(0).subpage(0), oob(1), SimTime::ZERO)
            .unwrap();
        assert_eq!(
            d.read_subpage(blk.page(0).subpage(0), SimTime::ZERO)
                .unwrap()
                .lsn,
            1
        );
        assert!(!d.is_dead());
        // Command 3 (a read) still completes — then the latch trips.
        assert_eq!(
            d.read_subpage(blk.page(0).subpage(0), SimTime::ZERO)
                .unwrap()
                .lsn,
            1
        );
        assert!(d.is_dead());
        assert_eq!(d.ops_executed(), 3);
        assert_eq!(
            d.read_subpage(blk.page(0).subpage(0), SimTime::ZERO),
            Err(ReadFault::DeviceDead)
        );
        // Rejected commands do not advance the executed-op counter.
        assert_eq!(d.ops_executed(), 3);
    }

    #[test]
    fn die_at_pe_latches_when_wear_crosses_threshold() {
        let mut d = dev();
        d.set_faults(FaultConfig {
            die_at_pe: Some(3),
            ..FaultConfig::default()
        });
        let blk = d.geometry().block_addr(0);
        d.erase(blk, SimTime::ZERO).unwrap();
        d.erase(blk, SimTime::ZERO).unwrap();
        assert!(!d.is_dead(), "two cycles below the three-cycle trip");
        d.erase(blk, SimTime::ZERO).unwrap();
        assert!(d.is_dead(), "third cycle reaches the wear-out trip");
        assert_eq!(d.erase(blk, SimTime::ZERO), Err(NandError::DeviceDead));
    }

    #[test]
    fn death_disabled_config_never_trips() {
        // A fault config with both death modes off behaves exactly like a
        // fault-free device over an op-heavy sequence.
        let mut d = dev();
        d.set_faults(FaultConfig::default());
        let blk = d.geometry().block_addr(0);
        for i in 0..200u64 {
            d.program_subpage(blk.page(0).subpage(0), oob(i), SimTime::ZERO)
                .unwrap();
            d.read_subpage(blk.page(0).subpage(0), SimTime::ZERO)
                .unwrap();
            d.erase(blk, SimTime::ZERO).unwrap();
        }
        assert!(!d.is_dead());
        assert_eq!(d.ops_executed(), 600);
    }
}

//! ECC engine model.
//!
//! Fig 3 of the paper shows the page buffer organized as ECC codewords of
//! "1 KB or 2 KB"; reads fail when the raw bit-error count of a codeword
//! exceeds the engine's correction capability ("over ECC limit", Fig 4).
//! The retention model expresses BER *normalized* to the endurance BER;
//! [`EccConfig`] closes the loop: given an absolute endurance raw BER and a
//! correction strength in bits per codeword, it derives the normalized BER
//! the engine can tolerate — the `ecc_limit` the rest of the stack consumes.
//!
//! This makes ECC strength a first-class design input: the
//! `ablation_ecc` experiment sweeps correction strength and reports how
//! each `Npp` type's retention capability responds (e.g. how much ECC it
//! would take to make 2-month `Npp^3` retention safe).

use crate::reliability::RetentionModel;

/// A BCH/LDPC-style ECC engine: corrects up to `correctable_bits` per
/// codeword of `codeword_bytes`.
///
/// # Examples
///
/// ```
/// use esp_nand::EccConfig;
///
/// let ecc = EccConfig::paper_default();
/// assert_eq!(ecc.codeword_bytes, 1024);
/// // The default engine tolerates 2.4x the endurance BER — the normalized
/// // ECC limit used throughout the reproduction.
/// assert!((ecc.normalized_limit() - 2.4).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EccConfig {
    /// Data bytes protected per codeword (the paper's Fig 3: 1 KB or 2 KB).
    pub codeword_bytes: u32,
    /// Correctable bit errors per codeword.
    pub correctable_bits: u32,
    /// Absolute raw bit-error rate at the endurance point (1K P/E, zero
    /// retention) — the quantity the normalized model is anchored to.
    pub endurance_raw_ber: f64,
}

impl EccConfig {
    /// The engine implied by the reproduction's normalized limit of 2.4:
    /// 1 KB codewords, 40-bit correction, and an endurance raw BER of
    /// 2.03e-3 (40 bits / 8192 bits / 2.4) — typical mid-2010s TLC figures.
    #[must_use]
    pub fn paper_default() -> Self {
        EccConfig {
            codeword_bytes: 1024,
            correctable_bits: 40,
            endurance_raw_ber: 40.0 / (1024.0 * 8.0) / 2.4,
        }
    }

    /// Mean raw bit errors per codeword the engine can correct, expressed
    /// as a raw BER threshold.
    #[must_use]
    pub fn raw_ber_limit(&self) -> f64 {
        f64::from(self.correctable_bits) / (f64::from(self.codeword_bytes) * 8.0)
    }

    /// The engine's tolerance normalized to the endurance BER — the value
    /// to install as the retention model's ECC limit.
    ///
    /// # Panics
    ///
    /// Panics if `endurance_raw_ber` is not positive.
    #[must_use]
    pub fn normalized_limit(&self) -> f64 {
        assert!(
            self.endurance_raw_ber > 0.0,
            "endurance_raw_ber must be positive"
        );
        self.raw_ber_limit() / self.endurance_raw_ber
    }

    /// Builds a retention model whose ECC limit reflects this engine.
    #[must_use]
    pub fn retention_model(&self) -> RetentionModel {
        RetentionModel::paper_default().with_ecc_limit(self.normalized_limit())
    }
}

impl Default for EccConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp_sim::SimDuration;

    #[test]
    fn paper_default_matches_normalized_limit() {
        let ecc = EccConfig::paper_default();
        assert!((ecc.normalized_limit() - 2.4).abs() < 1e-9);
        let m = ecc.retention_model();
        assert!((m.ecc_limit() - 2.4).abs() < 1e-9);
    }

    #[test]
    fn stronger_ecc_extends_subpage_retention() {
        let weak = EccConfig {
            correctable_bits: 40,
            ..EccConfig::paper_default()
        }
        .retention_model();
        let strong = EccConfig {
            correctable_bits: 60,
            ..EccConfig::paper_default()
        }
        .retention_model();
        for npp in 0..4 {
            assert!(
                strong.retention_capability(1000, npp) > weak.retention_capability(1000, npp),
                "Npp^{npp}"
            );
        }
        // 60-bit correction makes 2-month Npp^3 retention safe (the regime
        // the paper's 40-bit-class device cannot reach).
        assert!(strong.is_readable(1000, 3, SimDuration::from_months(2)));
    }

    #[test]
    fn larger_codewords_at_same_bits_are_weaker() {
        let small = EccConfig {
            codeword_bytes: 1024,
            ..EccConfig::paper_default()
        };
        let large = EccConfig {
            codeword_bytes: 2048,
            ..EccConfig::paper_default()
        };
        assert!(large.normalized_limit() < small.normalized_limit());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_endurance_ber_rejected() {
        let bad = EccConfig {
            endurance_raw_ber: 0.0,
            ..EccConfig::paper_default()
        };
        let _ = bad.normalized_limit();
    }
}

//! Error types for NAND device operations.

use std::error::Error;
use std::fmt;

/// An illegal or failed NAND command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NandError {
    /// A full-page program was issued to a page that has been programmed
    /// since its last erase.
    ProgramOnDirtyPage,
    /// The page has already been programmed `N_sub` times since its last
    /// erase; it must be erased before any further program.
    ProgramLimitExceeded,
    /// The target subpage slot does not exist on this page.
    SlotOutOfRange {
        /// Requested slot.
        slot: u8,
        /// Subpages per page.
        n_sub: u32,
    },
    /// A full-page program supplied the wrong number of spare-area entries.
    SlotCountMismatch {
        /// Expected entry count (`N_sub`).
        expected: u32,
        /// Supplied entry count.
        got: u32,
    },
    /// The address does not exist in the device geometry.
    AddressOutOfRange,
    /// Full-page programs must fill a block in page order (WL order); the
    /// targeted page's predecessor is still erased. (Erase-free subpage
    /// programs are exempt: the ESP lap discipline legitimately revisits
    /// earlier pages.)
    NonSequentialProgram {
        /// Targeted page.
        page: u32,
    },
    /// The program operation ran but the status register reported failure
    /// (injected by the fault model). The page's contents are undefined;
    /// the FTL must re-program the data elsewhere.
    ProgramFailed,
    /// The erase operation ran but the status register reported failure
    /// (injected by the fault model). The block is now a grown bad block
    /// and must be retired.
    EraseFailed,
    /// The target block is marked bad (factory-marked or grown); commands
    /// to it are rejected.
    BadBlock,
    /// The block's last erase was interrupted by power loss; programs are
    /// rejected until the block is successfully re-erased.
    TornBlock,
    /// The whole device has failed (fault-model death trip or an explicit
    /// [`kill`](crate::NandDevice::kill)); no command will ever succeed
    /// again.
    DeviceDead,
}

impl fmt::Display for NandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NandError::ProgramOnDirtyPage => {
                write!(f, "full-page program issued to a non-erased page")
            }
            NandError::ProgramLimitExceeded => {
                write!(f, "page already programmed N_sub times since last erase")
            }
            NandError::SlotOutOfRange { slot, n_sub } => {
                write!(f, "subpage slot {slot} out of range (N_sub = {n_sub})")
            }
            NandError::SlotCountMismatch { expected, got } => {
                write!(
                    f,
                    "full-page program supplied {got} spare entries, expected {expected}"
                )
            }
            NandError::AddressOutOfRange => write!(f, "address outside device geometry"),
            NandError::NonSequentialProgram { page } => {
                write!(f, "full-page program to page {page} before its predecessor")
            }
            NandError::ProgramFailed => write!(f, "program operation reported status fail"),
            NandError::EraseFailed => write!(f, "erase operation reported status fail"),
            NandError::BadBlock => write!(f, "block is marked bad"),
            NandError::TornBlock => {
                write!(
                    f,
                    "block erase was interrupted; re-erase before programming"
                )
            }
            NandError::DeviceDead => write!(f, "whole device has failed"),
        }
    }
}

impl Error for NandError {}

/// Why a subpage read returned no usable data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadFault {
    /// The subpage has not been programmed since the last erase.
    NotWritten,
    /// The subpage was programmed as padding (no logical data).
    Padding,
    /// The subpage's data was corrupted by a later program operation on the
    /// same page (the Fig 4(b) "uncorrectable failure").
    DestroyedByProgram,
    /// The subpage's retention BER has crossed the ECC limit: the data aged
    /// out (paper Fig 5, "uncorrectable errors").
    RetentionExceeded,
    /// A fault-injection hook forced this read to fail.
    Injected,
    /// The subpage's program (or its block's erase) was cut mid-operation
    /// by power loss: the partial charge pattern is ECC-uncorrectable.
    Torn,
    /// Power is off: the command was issued at or after the injected crash
    /// point and never reached the device.
    PowerLoss,
    /// The whole device has failed; the read never ran. An array layer
    /// reconstructs the data from the surviving devices.
    DeviceDead,
}

impl fmt::Display for ReadFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadFault::NotWritten => write!(f, "subpage not written"),
            ReadFault::Padding => write!(f, "subpage holds padding, not data"),
            ReadFault::DestroyedByProgram => {
                write!(f, "data destroyed by a later program on the same page")
            }
            ReadFault::RetentionExceeded => {
                write!(f, "retention BER exceeded the ECC limit")
            }
            ReadFault::Injected => write!(f, "injected read fault"),
            ReadFault::Torn => {
                write!(f, "program or erase cut mid-operation; data uncorrectable")
            }
            ReadFault::PowerLoss => write!(f, "power is off at the injected crash point"),
            ReadFault::DeviceDead => write!(f, "whole device has failed"),
        }
    }
}

impl Error for ReadFault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_lowercase_without_period() {
        let msgs = [
            NandError::ProgramOnDirtyPage.to_string(),
            NandError::ProgramLimitExceeded.to_string(),
            NandError::SlotOutOfRange { slot: 9, n_sub: 4 }.to_string(),
            NandError::AddressOutOfRange.to_string(),
            NandError::ProgramFailed.to_string(),
            NandError::EraseFailed.to_string(),
            NandError::BadBlock.to_string(),
            NandError::TornBlock.to_string(),
            NandError::DeviceDead.to_string(),
            ReadFault::NotWritten.to_string(),
            ReadFault::RetentionExceeded.to_string(),
            ReadFault::Torn.to_string(),
            ReadFault::PowerLoss.to_string(),
            ReadFault::DeviceDead.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(!m.ends_with('.'));
            assert!(m.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn errors_are_std_errors() {
        fn takes_error<E: Error + Send + Sync + 'static>(_: E) {}
        takes_error(NandError::ProgramOnDirtyPage);
        takes_error(ReadFault::NotWritten);
    }
}

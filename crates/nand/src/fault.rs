//! Program/erase fault injection and bad-block modelling.
//!
//! Real NAND parts ship with factory-marked bad blocks and grow more over
//! their lifetime: a program or erase occasionally completes with a *status
//! fail*, after which the firmware must re-program the data elsewhere
//! (write retry) or retire the block (grown bad block). This module is the
//! deterministic, seedable source of those events.
//!
//! The model is **opt-in**: a [`NandDevice`](crate::NandDevice) without an
//! installed [`FaultModel`] draws no random numbers and behaves bit-for-bit
//! like the fault-free device, so baseline experiments are unaffected.
//!
//! Determinism: one [`Rng`] draw is consumed per consulted program/erase
//! operation, in device-issue order. Because the FTLs issue operations in a
//! deterministic order, the whole fault sequence is a pure function of the
//! seed and the workload.

use esp_sim::Rng;

use crate::reliability::RetentionModel;

/// Configuration of the injected-fault model.
///
/// # Examples
///
/// ```
/// use esp_nand::FaultConfig;
///
/// let f = FaultConfig { program_fail_prob: 1e-4, ..FaultConfig::default() };
/// assert_eq!(f.erase_fail_prob, 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed for the fault stream (and factory bad-block placement).
    pub seed: u64,
    /// Probability that a program operation reports status fail.
    pub program_fail_prob: f64,
    /// Probability that an erase operation reports status fail (the block
    /// then becomes a grown bad block).
    pub erase_fail_prob: f64,
    /// Number of factory-marked bad blocks, placed deterministically from
    /// the seed across the whole device.
    pub factory_bad_blocks: u32,
    /// When true, failure probabilities scale with block wear (the
    /// [`RetentionModel::pe_factor`] curve), so worn blocks fail more often.
    pub wear_coupling: bool,
    /// Whole-device death: the device bricks itself after executing this
    /// many NAND commands (programs, reads, erases — the same executed-op
    /// count that advances the fault stream). `None` disables the mode.
    pub die_at_op: Option<u64>,
    /// Whole-device death: the device bricks itself as soon as any block's
    /// effective P/E count reaches this threshold (a controller-level
    /// wear-out trip). `None` disables the mode.
    pub die_at_pe: Option<u32>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            program_fail_prob: 0.0,
            erase_fail_prob: 0.0,
            factory_bad_blocks: 0,
            wear_coupling: false,
            die_at_op: None,
            die_at_pe: None,
        }
    }
}

impl FaultConfig {
    /// Validates probabilities and returns a human-readable reason on error.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field if either probability is
    /// outside `[0, 1)` or not finite.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("program_fail_prob", self.program_fail_prob),
            ("erase_fail_prob", self.erase_fail_prob),
        ] {
            if !p.is_finite() || !(0.0..1.0).contains(&p) {
                return Err(format!("{name} must be in [0, 1), got {p}"));
            }
        }
        if self.die_at_op == Some(0) {
            return Err(
                "die_at_op must be at least 1 (0 would brick the device before any command)"
                    .to_string(),
            );
        }
        if self.die_at_pe == Some(0) {
            return Err("die_at_pe must be at least 1".to_string());
        }
        Ok(())
    }
}

/// The runtime fault generator: configuration plus its private RNG stream.
#[derive(Debug, Clone)]
pub struct FaultModel {
    config: FaultConfig,
    rng: Rng,
}

impl FaultModel {
    /// Creates a model from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`FaultConfig::validate`].
    #[must_use]
    pub fn new(config: FaultConfig) -> Self {
        config.validate().expect("invalid fault configuration");
        let rng = Rng::seed_from(config.seed);
        FaultModel { config, rng }
    }

    /// The configuration this model was built from.
    #[must_use]
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Picks the factory bad-block set: `factory_bad_blocks` distinct
    /// device-global block indices, deterministically derived from the seed
    /// (independent of the program/erase fault stream).
    #[must_use]
    pub fn factory_bad_blocks(&self, block_count: u32) -> Vec<u32> {
        let want = self.config.factory_bad_blocks.min(block_count) as usize;
        let mut rng = Rng::seed_from(self.config.seed ^ 0xBADB_10C5);
        let mut picked = Vec::with_capacity(want);
        while picked.len() < want {
            let b = rng.next_below(u64::from(block_count)) as u32;
            if !picked.contains(&b) {
                picked.push(b);
            }
        }
        picked.sort_unstable();
        picked
    }

    fn effective(&self, base: f64, pe_cycles: u32, retention: &RetentionModel) -> f64 {
        if self.config.wear_coupling {
            // pe_factor grows from fresh_factor toward (and past) 1.0 with
            // wear, so worn blocks see proportionally more faults.
            (base * retention.pe_factor(pe_cycles)).min(1.0)
        } else {
            base
        }
    }

    /// Draws whether a program operation on a block with `pe_cycles` wear
    /// reports status fail. Consumes exactly one RNG draw.
    pub fn program_fails(&mut self, pe_cycles: u32, retention: &RetentionModel) -> bool {
        let p = self.effective(self.config.program_fail_prob, pe_cycles, retention);
        self.rng.chance(p)
    }

    /// Draws whether an erase operation on a block with `pe_cycles` wear
    /// reports status fail. Consumes exactly one RNG draw.
    pub fn erase_fails(&mut self, pe_cycles: u32, retention: &RetentionModel) -> bool {
        let p = self.effective(self.config.erase_fail_prob, pe_cycles, retention);
        self.rng.chance(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn retention() -> RetentionModel {
        RetentionModel::paper_default()
    }

    #[test]
    fn default_config_never_fails() {
        let mut m = FaultModel::new(FaultConfig::default());
        let r = retention();
        for _ in 0..10_000 {
            assert!(!m.program_fails(1000, &r));
            assert!(!m.erase_fails(1000, &r));
        }
        assert!(m.factory_bad_blocks(64).is_empty());
    }

    #[test]
    fn fault_stream_is_deterministic_per_seed() {
        let cfg = FaultConfig {
            seed: 7,
            program_fail_prob: 0.05,
            erase_fail_prob: 0.02,
            ..FaultConfig::default()
        };
        let r = retention();
        let draw = |mut m: FaultModel| -> Vec<bool> {
            (0..512)
                .map(|i| {
                    if i % 3 == 0 {
                        m.erase_fails(500, &r)
                    } else {
                        m.program_fails(500, &r)
                    }
                })
                .collect()
        };
        let a = draw(FaultModel::new(cfg.clone()));
        let b = draw(FaultModel::new(cfg.clone()));
        assert_eq!(a, b, "same seed, same fault sequence");
        let c = draw(FaultModel::new(FaultConfig { seed: 8, ..cfg }));
        assert_ne!(a, c, "different seed, different sequence");
    }

    #[test]
    fn fail_rates_track_probability() {
        let mut m = FaultModel::new(FaultConfig {
            seed: 3,
            program_fail_prob: 0.10,
            ..FaultConfig::default()
        });
        let r = retention();
        let n = 20_000;
        let fails = (0..n).filter(|_| m.program_fails(1000, &r)).count();
        let rate = fails as f64 / f64::from(n);
        assert!((rate - 0.10).abs() < 0.01, "observed rate {rate}");
    }

    #[test]
    fn wear_coupling_raises_failure_rate_with_pe() {
        let r = retention();
        let rate_at = |pe: u32| {
            let mut m = FaultModel::new(FaultConfig {
                seed: 11,
                program_fail_prob: 0.10,
                wear_coupling: true,
                ..FaultConfig::default()
            });
            (0..20_000).filter(|_| m.program_fails(pe, &r)).count()
        };
        let fresh = rate_at(0);
        let worn = rate_at(3000);
        assert!(
            worn > fresh * 2,
            "worn blocks must fail more: fresh {fresh}, worn {worn}"
        );
    }

    #[test]
    fn factory_bad_blocks_are_distinct_in_range_and_stable() {
        let m = FaultModel::new(FaultConfig {
            seed: 42,
            factory_bad_blocks: 5,
            ..FaultConfig::default()
        });
        let bad = m.factory_bad_blocks(64);
        assert_eq!(bad.len(), 5);
        for b in &bad {
            assert!(*b < 64);
        }
        let mut dedup = bad.clone();
        dedup.dedup();
        assert_eq!(dedup, bad, "must be distinct and sorted");
        assert_eq!(bad, m.factory_bad_blocks(64), "must be stable");
        // Never more bad blocks than blocks.
        assert_eq!(m.factory_bad_blocks(3).len(), 3);
    }

    #[test]
    fn invalid_probabilities_are_rejected() {
        let bad = FaultConfig {
            program_fail_prob: 1.5,
            ..FaultConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = FaultConfig {
            erase_fail_prob: -0.1,
            ..FaultConfig::default()
        };
        assert!(bad.validate().is_err());
        assert!(FaultConfig::default().validate().is_ok());
    }
}

//! Device geometry and physical addressing.
//!
//! The paper's evaluation platform is an SSD with 8 channels, 4 TLC chips per
//! channel, 16 KB physical pages split into four 4 KB subpages. [`Geometry`]
//! captures that shape (all dimensions configurable) and provides the
//! conversions between structured addresses and the flat indices used for
//! dense storage.

use std::fmt;

/// Physical shape of the NAND subsystem.
///
/// # Examples
///
/// ```
/// use esp_nand::Geometry;
///
/// let g = Geometry::paper_default();
/// assert_eq!(g.channels, 8);
/// assert_eq!(g.chips_per_channel, 4);
/// assert_eq!(g.subpages_per_page, 4);
/// assert_eq!(g.page_bytes(), 16 * 1024);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Geometry {
    /// Number of independent flash channels.
    pub channels: u32,
    /// NAND chips (ways) attached to each channel.
    pub chips_per_channel: u32,
    /// Erase blocks per chip.
    pub blocks_per_chip: u32,
    /// Physical pages per erase block.
    pub pages_per_block: u32,
    /// Subpages per physical page (`N_sub` in the paper).
    pub subpages_per_page: u32,
    /// Bytes per subpage (`S_sub`; the paper uses 4 KB).
    pub subpage_bytes: u32,
}

impl Geometry {
    /// The paper's device shape: 8 channels × 4 chips, 16 KB pages of four
    /// 4 KB subpages, sized here to 32 blocks/chip (a 4 GiB device — the same
    /// shape as the paper's 16 GB device but faster to simulate; the paper
    /// argues in §5 that capacity scaling does not distort results).
    #[must_use]
    pub fn paper_default() -> Self {
        Geometry {
            channels: 8,
            chips_per_channel: 4,
            blocks_per_chip: 32,
            pages_per_block: 256,
            subpages_per_page: 4,
            subpage_bytes: 4 * 1024,
        }
    }

    /// A deliberately tiny geometry for unit tests: 2 channels × 1 chip,
    /// 8 blocks of 4 pages of 4 subpages.
    #[must_use]
    pub fn tiny() -> Self {
        Geometry {
            channels: 2,
            chips_per_channel: 1,
            blocks_per_chip: 8,
            pages_per_block: 4,
            subpages_per_page: 4,
            subpage_bytes: 4 * 1024,
        }
    }

    /// Validates that every dimension is non-zero and the device is
    /// addressable.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid dimension.
    pub fn validate(&self) -> Result<(), String> {
        let fields = [
            (self.channels, "channels"),
            (self.chips_per_channel, "chips_per_channel"),
            (self.blocks_per_chip, "blocks_per_chip"),
            (self.pages_per_block, "pages_per_block"),
            (self.subpages_per_page, "subpages_per_page"),
            (self.subpage_bytes, "subpage_bytes"),
        ];
        for (v, name) in fields {
            if v == 0 {
                return Err(format!("geometry field `{name}` must be non-zero"));
            }
        }
        if self.subpages_per_page > 255 {
            return Err("subpages_per_page must fit in a u8 program counter".into());
        }
        Ok(())
    }

    /// Bytes per full physical page (`S_full = N_sub × S_sub`).
    #[must_use]
    pub fn page_bytes(&self) -> u64 {
        u64::from(self.subpages_per_page) * u64::from(self.subpage_bytes)
    }

    /// Bytes per erase block.
    #[must_use]
    pub fn block_bytes(&self) -> u64 {
        self.page_bytes() * u64::from(self.pages_per_block)
    }

    /// Total number of chips.
    #[must_use]
    pub fn chip_count(&self) -> u32 {
        self.channels * self.chips_per_channel
    }

    /// Total number of erase blocks in the device.
    #[must_use]
    pub fn block_count(&self) -> u32 {
        self.chip_count() * self.blocks_per_chip
    }

    /// Total number of physical pages in the device.
    #[must_use]
    pub fn page_count(&self) -> u64 {
        u64::from(self.block_count()) * u64::from(self.pages_per_block)
    }

    /// Total number of subpages in the device.
    #[must_use]
    pub fn subpage_count(&self) -> u64 {
        self.page_count() * u64::from(self.subpages_per_page)
    }

    /// Raw device capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        u64::from(self.block_count()) * self.block_bytes()
    }

    /// Structured address of the chip with flat index `idx`
    /// (row-major: channel, then way).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= chip_count()`.
    #[must_use]
    pub fn chip_addr(&self, idx: u32) -> ChipAddr {
        assert!(idx < self.chip_count(), "chip index out of range");
        ChipAddr {
            channel: idx / self.chips_per_channel,
            way: idx % self.chips_per_channel,
        }
    }

    /// Flat index of a chip address.
    #[must_use]
    pub fn chip_index(&self, chip: ChipAddr) -> u32 {
        chip.channel * self.chips_per_channel + chip.way
    }

    /// Structured address of the block with device-global flat index `idx`.
    ///
    /// Blocks are numbered chip-major so consecutive global indices land on
    /// the same chip.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= block_count()`.
    #[must_use]
    pub fn block_addr(&self, idx: u32) -> BlockAddr {
        assert!(idx < self.block_count(), "block index out of range");
        BlockAddr {
            chip: self.chip_addr(idx / self.blocks_per_chip),
            block: idx % self.blocks_per_chip,
        }
    }

    /// Device-global flat index of a block address.
    #[must_use]
    pub fn block_index(&self, block: BlockAddr) -> u32 {
        self.chip_index(block.chip) * self.blocks_per_chip + block.block
    }

    /// Checks that an address is within this geometry.
    #[must_use]
    pub fn contains(&self, addr: SubpageAddr) -> bool {
        addr.page.block.chip.channel < self.channels
            && addr.page.block.chip.way < self.chips_per_channel
            && addr.page.block.block < self.blocks_per_chip
            && addr.page.page < self.pages_per_block
            && u32::from(addr.slot) < self.subpages_per_page
    }
}

impl fmt::Display for Geometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}ch x {}way, {} blk/chip x {} pg/blk, {} x {} B subpages ({} MiB)",
            self.channels,
            self.chips_per_channel,
            self.blocks_per_chip,
            self.pages_per_block,
            self.subpages_per_page,
            self.subpage_bytes,
            self.capacity_bytes() / (1024 * 1024)
        )
    }
}

/// Address of one NAND chip: (channel, way).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChipAddr {
    /// Channel index.
    pub channel: u32,
    /// Way (position on the channel).
    pub way: u32,
}

/// Address of one erase block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockAddr {
    /// Owning chip.
    pub chip: ChipAddr,
    /// Block index within the chip.
    pub block: u32,
}

/// Address of one physical page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageAddr {
    /// Owning block.
    pub block: BlockAddr,
    /// Page index within the block.
    pub page: u32,
}

/// Address of one subpage: a physical page plus a subpage slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubpageAddr {
    /// Owning page.
    pub page: PageAddr,
    /// Subpage slot within the page (0-based).
    pub slot: u8,
}

impl PageAddr {
    /// The subpage at `slot` of this page.
    #[must_use]
    pub fn subpage(self, slot: u8) -> SubpageAddr {
        SubpageAddr { page: self, slot }
    }
}

impl BlockAddr {
    /// The page at index `page` of this block.
    #[must_use]
    pub fn page(self, page: u32) -> PageAddr {
        PageAddr { block: self, page }
    }
}

impl fmt::Display for SubpageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "c{}w{}/b{}/p{}/s{}",
            self.page.block.chip.channel,
            self.page.block.chip.way,
            self.page.block.block,
            self.page.page,
            self.slot
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_shape() {
        let g = Geometry::paper_default();
        g.validate().expect("paper geometry is valid");
        assert_eq!(g.chip_count(), 32);
        assert_eq!(g.page_bytes(), 16 * 1024);
        assert_eq!(g.block_bytes(), 4 * 1024 * 1024);
        assert_eq!(g.capacity_bytes(), 4 * 1024 * 1024 * 1024);
    }

    #[test]
    fn block_index_round_trips() {
        let g = Geometry::tiny();
        for idx in 0..g.block_count() {
            let addr = g.block_addr(idx);
            assert_eq!(g.block_index(addr), idx);
        }
    }

    #[test]
    fn chip_index_round_trips() {
        let g = Geometry::paper_default();
        for idx in 0..g.chip_count() {
            assert_eq!(g.chip_index(g.chip_addr(idx)), idx);
        }
    }

    #[test]
    fn consecutive_blocks_share_chip() {
        let g = Geometry::paper_default();
        let a = g.block_addr(0);
        let b = g.block_addr(1);
        assert_eq!(a.chip, b.chip);
        let last_of_chip0 = g.block_addr(g.blocks_per_chip - 1);
        let first_of_chip1 = g.block_addr(g.blocks_per_chip);
        assert_ne!(last_of_chip0.chip, first_of_chip1.chip);
    }

    #[test]
    fn validate_rejects_zero_dimensions() {
        let mut g = Geometry::tiny();
        g.pages_per_block = 0;
        assert!(g.validate().is_err());
    }

    #[test]
    fn contains_checks_all_dimensions() {
        let g = Geometry::tiny();
        let ok = g.block_addr(0).page(0).subpage(0);
        assert!(g.contains(ok));
        let bad_slot = g.block_addr(0).page(0).subpage(4);
        assert!(!g.contains(bad_slot));
        let bad_page = g.block_addr(0).page(4).subpage(0);
        assert!(!g.contains(bad_page));
    }

    #[test]
    fn display_is_informative() {
        let g = Geometry::tiny();
        let s = g.to_string();
        assert!(s.contains("2ch"));
        assert!(s.contains("8 blk/chip"));
    }
}

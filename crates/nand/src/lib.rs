//! # esp-nand — NAND flash device model with erase-free subpage programming
//!
//! A behavioural model of the large-page TLC NAND devices characterized in
//! Kim et al., *"Improving Performance and Lifetime of Large-Page NAND
//! Storages Using Erase-Free Subpage Programming"* (DAC 2017):
//!
//! * [`Geometry`] — channels × ways × blocks × pages × subpages (defaults to
//!   the paper's 8-channel, 4-way device with 16 KB pages of four 4 KB
//!   subpages).
//! * [`NandDevice`] — the command interface: [`NandDevice::program_full`],
//!   [`NandDevice::program_subpage`] (**ESP**), [`NandDevice::read_subpage`],
//!   [`NandDevice::erase`], with exact SBPI corruption semantics: programming
//!   a subpage destroys data in every previously-programmed subpage of the
//!   same page (paper Fig 4).
//! * [`RetentionModel`] — the subpage-aware retention-BER model of Fig 5: an
//!   `Npp^k` subpage (programmed after `k` earlier programs of its page) has
//!   a retention capability that shrinks with `k`; `Npp^3` survives 1 month
//!   but not 2 at 1K P/E cycles.
//! * [`NandTiming`] — operation latencies (full-page program 1600 µs,
//!   subpage program 1300 µs, per the paper's measurements).
//! * [`FaultConfig`] / [`FaultModel`] — opt-in deterministic program/erase
//!   fault injection with factory-marked and grown bad blocks; a device
//!   without an installed model draws no randomness and never faults.
//!
//! The timing *simulation* (channel/chip contention) lives in `esp-ssd`; the
//! FTLs that exploit ESP live in `esp-core`.
//!
//! # Examples
//!
//! The paper's Fig 4 scenario — sp1 programmed, then sp2 programmed without
//! an intervening erase:
//!
//! ```
//! use esp_nand::{Geometry, NandDevice, Oob, ReadFault};
//! use esp_sim::SimTime;
//!
//! let mut dev = NandDevice::new(Geometry::tiny());
//! let page = dev.geometry().block_addr(0).page(0);
//! dev.program_subpage(page.subpage(0), Oob { lsn: 1, seq: 1 }, SimTime::ZERO)?;
//! dev.program_subpage(page.subpage(1), Oob { lsn: 2, seq: 2 }, SimTime::ZERO)?;
//!
//! // sp1 is destroyed (uncorrectable); sp2 holds data with reduced retention.
//! assert_eq!(
//!     dev.read_subpage(page.subpage(0), SimTime::ZERO),
//!     Err(ReadFault::DestroyedByProgram)
//! );
//! assert_eq!(dev.read_subpage(page.subpage(1), SimTime::ZERO)?.lsn, 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
mod ecc;
mod error;
mod fault;
mod geometry;
mod page;
mod reliability;
mod timing;

pub use device::{Block, DeviceStats, NandDevice, OpCost, OpKind};
pub use ecc::EccConfig;
pub use error::{NandError, ReadFault};
pub use fault::{FaultConfig, FaultModel};
pub use geometry::{BlockAddr, ChipAddr, Geometry, PageAddr, SubpageAddr};
pub use page::{Oob, Page, SubpageState, WrittenSubpage};
pub use reliability::{EraseDepth, ReadEffort, RetentionModel, RetryLadder};
pub use timing::NandTiming;

//! Per-page and per-subpage state machine with SBPI/ESP semantics.
//!
//! NAND flash programs bit-by-bit through the self-boosting program-inhibit
//! (SBPI) scheme (paper §3.1): during a program pulse, bit lines belonging to
//! the target subpage are driven to 0 V (programmed) while all others are
//! inhibited at `V_cc`. This means a page *can* be programmed several times,
//! one subpage per operation — but with the physics the paper characterizes
//! in §3.2 (Fig 4):
//!
//! * a subpage that was **already programmed** is destroyed by any later
//!   program operation on the same page (program disturbance + coupling push
//!   its BER past the ECC limit);
//! * a subpage that was **inhibited** during `k` earlier programs and is then
//!   programmed becomes an `Npp^k`-type subpage: it stores data correctly but
//!   with the reduced retention capability modeled in
//!   [`RetentionModel`](crate::RetentionModel).
//!
//! This module models exactly that: it is mechanism, not policy. The ESP
//! *discipline* (only program a subpage when no other subpage in the page
//! holds valid data) lives in the FTL; the device faithfully destroys data
//! if the discipline is violated.

use esp_sim::SimTime;

use crate::error::{NandError, ReadFault};

/// FTL metadata stored in a subpage's spare (out-of-band) area: the logical
/// sector it holds and a monotonically increasing write sequence number.
///
/// Real FTLs store this in the page spare area to rebuild mappings after
/// power loss and to identify stale copies during GC; the simulator uses it
/// additionally to verify end-to-end read-your-writes in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Oob {
    /// Logical sector number (4 KB units) this subpage holds.
    pub lsn: u64,
    /// Global write sequence number at the time of programming.
    pub seq: u64,
}

/// State of one subpage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubpageState {
    /// Erased and never programmed since the last block erase.
    Erased,
    /// Programmed and holding data (subject to retention limits).
    Written(WrittenSubpage),
    /// Was programmed, then corrupted past the ECC limit by a later program
    /// operation on the same page (Fig 4(b), "uncorrectable failure").
    Destroyed,
    /// A program or erase operation was interrupted mid-pulse (power loss):
    /// the cells hold a partial charge pattern that reads back
    /// ECC-uncorrectable (Cai et al.'s interrupted-programming states).
    Torn,
}

/// The payload of a programmed subpage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WrittenSubpage {
    /// Spare-area metadata; `None` for padding written as part of a
    /// partially-filled full-page program.
    pub oob: Option<Oob>,
    /// `Npp` type: number of program operations the page had experienced
    /// before this subpage was programmed (0 for full-page programs).
    pub npp: u8,
    /// When the subpage was programmed (for retention-age evaluation).
    pub programmed_at: SimTime,
    /// Block P/E cycle count at program time (wear affects retention).
    pub pe_at_program: u32,
}

/// One physical page: `N_sub` subpages plus a program counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Page {
    subpages: Vec<SubpageState>,
    programs: u8,
}

impl Page {
    /// A fresh (erased) page with `n_sub` subpages.
    #[must_use]
    pub fn new(n_sub: u32) -> Self {
        Page {
            subpages: vec![SubpageState::Erased; n_sub as usize],
            programs: 0,
        }
    }

    /// Number of subpages.
    #[must_use]
    pub fn subpage_count(&self) -> u32 {
        self.subpages.len() as u32
    }

    /// Number of program operations since the last erase.
    #[must_use]
    pub fn program_count(&self) -> u8 {
        self.programs
    }

    /// True if the page has never been programmed since the last erase.
    #[must_use]
    pub fn is_erased(&self) -> bool {
        self.programs == 0
    }

    /// True if no further program operation is allowed before an erase
    /// (the page has been programmed `N_sub` times).
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        u32::from(self.programs) >= self.subpage_count()
    }

    /// State of the subpage at `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    #[must_use]
    pub fn subpage(&self, slot: u8) -> &SubpageState {
        &self.subpages[slot as usize]
    }

    /// Iterates over `(slot, state)` pairs.
    pub fn subpages(&self) -> impl Iterator<Item = (u8, &SubpageState)> {
        self.subpages.iter().enumerate().map(|(i, s)| (i as u8, s))
    }

    /// Programs the whole page in one operation (the conventional path).
    ///
    /// `oobs` supplies one spare-area entry per subpage; `None` entries are
    /// padding (space wasted by internal fragmentation in CGM/FGM FTLs).
    ///
    /// # Errors
    ///
    /// * [`NandError::ProgramOnDirtyPage`] if the page has been programmed
    ///   since the last erase — full-page programs require an erased page.
    /// * [`NandError::SlotCountMismatch`] if `oobs.len() != N_sub`.
    pub fn program_full(
        &mut self,
        oobs: &[Option<Oob>],
        now: SimTime,
        pe_cycles: u32,
    ) -> Result<(), NandError> {
        if oobs.len() != self.subpages.len() {
            return Err(NandError::SlotCountMismatch {
                expected: self.subpages.len() as u32,
                got: oobs.len() as u32,
            });
        }
        if !self.is_erased() {
            return Err(NandError::ProgramOnDirtyPage);
        }
        for (state, oob) in self.subpages.iter_mut().zip(oobs) {
            *state = SubpageState::Written(WrittenSubpage {
                oob: *oob,
                npp: 0,
                programmed_at: now,
                pe_at_program: pe_cycles,
            });
        }
        self.programs = 1;
        Ok(())
    }

    /// Programs a single subpage via SBPI bit-line selection (the ESP path).
    ///
    /// Physics, per Fig 4: every *other* subpage of this page that currently
    /// holds data is **destroyed** (its BER exceeds the ECC limit). If the
    /// target slot itself was already programmed, the newly written data is
    /// garbage too, so the slot ends up [`SubpageState::Destroyed`] — this
    /// models an FTL bug, not a supported operation, and the device reports
    /// it faithfully rather than rejecting the command.
    ///
    /// The subpage becomes an `Npp^k` type where `k` is the number of
    /// program operations the page had seen before this one.
    ///
    /// # Errors
    ///
    /// * [`NandError::ProgramLimitExceeded`] if the page has already been
    ///   programmed `N_sub` times since the last erase.
    /// * [`NandError::SlotOutOfRange`] if `slot >= N_sub`.
    ///
    /// Returns the list of slots whose data was destroyed as a side effect,
    /// so callers (and tests) can observe the corruption.
    pub fn program_subpage(
        &mut self,
        slot: u8,
        oob: Oob,
        now: SimTime,
        pe_cycles: u32,
    ) -> Result<Vec<u8>, NandError> {
        if usize::from(slot) >= self.subpages.len() {
            return Err(NandError::SlotOutOfRange {
                slot,
                n_sub: self.subpages.len() as u32,
            });
        }
        if self.is_exhausted() {
            return Err(NandError::ProgramLimitExceeded);
        }
        let npp = self.programs;
        let mut destroyed = Vec::new();
        let target_was_programmed = !matches!(self.subpages[slot as usize], SubpageState::Erased);
        for (i, state) in self.subpages.iter_mut().enumerate() {
            if i != usize::from(slot) {
                if let SubpageState::Written(_) = state {
                    *state = SubpageState::Destroyed;
                    destroyed.push(i as u8);
                }
            }
        }
        self.subpages[slot as usize] = if target_was_programmed {
            destroyed.push(slot);
            SubpageState::Destroyed
        } else {
            SubpageState::Written(WrittenSubpage {
                oob: Some(oob),
                npp,
                programmed_at: now,
                pe_at_program: pe_cycles,
            })
        };
        self.programs += 1;
        Ok(destroyed)
    }

    /// Raw read of the subpage at `slot` — the ECC/retention judgment is the
    /// device's job (it owns the retention model and the clock).
    ///
    /// # Errors
    ///
    /// * [`ReadFault::NotWritten`] if the slot is erased.
    /// * [`ReadFault::Padding`] if the slot was programmed as padding.
    /// * [`ReadFault::DestroyedByProgram`] if a later program on the page
    ///   corrupted it.
    /// * [`ReadFault::Torn`] if a program or erase was cut mid-operation.
    pub fn read_subpage(&self, slot: u8) -> Result<&WrittenSubpage, ReadFault> {
        match &self.subpages[usize::from(slot)] {
            SubpageState::Erased => Err(ReadFault::NotWritten),
            SubpageState::Destroyed => Err(ReadFault::DestroyedByProgram),
            SubpageState::Torn => Err(ReadFault::Torn),
            SubpageState::Written(w) => {
                if w.oob.is_none() {
                    Err(ReadFault::Padding)
                } else {
                    Ok(w)
                }
            }
        }
    }

    /// Marks the subpage at `slot` as destroyed (used by the device when a
    /// program operation reports status fail: the pulse ran, so the target
    /// holds garbage rather than data).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub(crate) fn destroy_subpage(&mut self, slot: u8) {
        self.subpages[usize::from(slot)] = SubpageState::Destroyed;
    }

    /// A full-page program cut by power loss mid-pulse: every subpage holds
    /// a partial charge pattern and reads back uncorrectable. Legality
    /// mirrors [`Page::program_full`] (the command was accepted; only its
    /// completion was interrupted).
    ///
    /// # Errors
    ///
    /// * [`NandError::ProgramOnDirtyPage`] if the page is not erased.
    pub fn tear_program_full(&mut self) -> Result<(), NandError> {
        if !self.is_erased() {
            return Err(NandError::ProgramOnDirtyPage);
        }
        for s in &mut self.subpages {
            *s = SubpageState::Torn;
        }
        self.programs = 1;
        Ok(())
    }

    /// A subpage program cut by power loss mid-pulse. The target slot is
    /// torn, and — exactly as for a completed program — every other subpage
    /// of the page that held data is destroyed (the Fig 4(b) disturbance
    /// comes from the program pulses, which did run before the cut).
    /// Legality mirrors [`Page::program_subpage`].
    ///
    /// Returns the slots whose data was destroyed as a side effect.
    ///
    /// # Errors
    ///
    /// * [`NandError::ProgramLimitExceeded`] if the page is exhausted.
    /// * [`NandError::SlotOutOfRange`] if `slot >= N_sub`.
    pub fn tear_program_subpage(&mut self, slot: u8) -> Result<Vec<u8>, NandError> {
        if usize::from(slot) >= self.subpages.len() {
            return Err(NandError::SlotOutOfRange {
                slot,
                n_sub: self.subpages.len() as u32,
            });
        }
        if self.is_exhausted() {
            return Err(NandError::ProgramLimitExceeded);
        }
        let mut destroyed = Vec::new();
        for (i, state) in self.subpages.iter_mut().enumerate() {
            if i != usize::from(slot) {
                if let SubpageState::Written(_) = state {
                    *state = SubpageState::Destroyed;
                    destroyed.push(i as u8);
                }
            }
        }
        self.subpages[slot as usize] = SubpageState::Torn;
        self.programs += 1;
        Ok(destroyed)
    }

    /// An erase cut by power loss mid-operation: the partial erase leaves
    /// every subpage in an indeterminate, uncorrectable state. The page is
    /// marked exhausted so no program can target it until a completed erase
    /// resets it.
    pub(crate) fn tear_all(&mut self) {
        for s in &mut self.subpages {
            *s = SubpageState::Torn;
        }
        self.programs = self.subpages.len() as u8;
    }

    /// Resets the page to the erased state.
    pub fn erase(&mut self) {
        for s in &mut self.subpages {
            *s = SubpageState::Erased;
        }
        self.programs = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oob(lsn: u64) -> Oob {
        Oob { lsn, seq: lsn }
    }

    #[test]
    fn full_program_fills_all_subpages_at_npp0() {
        let mut p = Page::new(4);
        let oobs: Vec<_> = (0..4).map(|i| Some(oob(i))).collect();
        p.program_full(&oobs, SimTime::ZERO, 5).unwrap();
        assert_eq!(p.program_count(), 1);
        for slot in 0..4 {
            let w = p.read_subpage(slot).unwrap();
            assert_eq!(w.npp, 0);
            assert_eq!(w.oob.unwrap().lsn, u64::from(slot));
            assert_eq!(w.pe_at_program, 5);
        }
    }

    #[test]
    fn full_program_requires_erased_page() {
        let mut p = Page::new(4);
        p.program_subpage(0, oob(1), SimTime::ZERO, 0).unwrap();
        let oobs = vec![None; 4];
        assert_eq!(
            p.program_full(&oobs, SimTime::ZERO, 0),
            Err(NandError::ProgramOnDirtyPage)
        );
    }

    #[test]
    fn full_program_checks_slot_count() {
        let mut p = Page::new(4);
        let err = p.program_full(&[None, None], SimTime::ZERO, 0).unwrap_err();
        assert_eq!(
            err,
            NandError::SlotCountMismatch {
                expected: 4,
                got: 2
            }
        );
    }

    #[test]
    fn esp_sequence_assigns_increasing_npp() {
        // Fig 4: sp1 programmed (Npp^0), then sp2 programmed (Npp^1).
        let mut p = Page::new(4);
        p.program_subpage(0, oob(10), SimTime::ZERO, 0).unwrap();
        assert_eq!(p.read_subpage(0).unwrap().npp, 0);
        let destroyed = p.program_subpage(1, oob(11), SimTime::ZERO, 0).unwrap();
        assert_eq!(destroyed, vec![0]);
        assert_eq!(p.read_subpage(1).unwrap().npp, 1);
        let d = p.program_subpage(2, oob(12), SimTime::ZERO, 0).unwrap();
        assert_eq!(d, vec![1]);
        assert_eq!(p.read_subpage(2).unwrap().npp, 2);
        let d = p.program_subpage(3, oob(13), SimTime::ZERO, 0).unwrap();
        assert_eq!(d, vec![2]);
        assert_eq!(p.read_subpage(3).unwrap().npp, 3);
    }

    #[test]
    fn program_destroys_previously_programmed_subpage() {
        // Fig 4(b): after sp2's program, sp1 is uncorrectable.
        let mut p = Page::new(2);
        p.program_subpage(0, oob(1), SimTime::ZERO, 0).unwrap();
        p.program_subpage(1, oob(2), SimTime::ZERO, 0).unwrap();
        assert_eq!(p.read_subpage(0), Err(ReadFault::DestroyedByProgram));
        assert!(p.read_subpage(1).is_ok());
    }

    #[test]
    fn reprogramming_same_slot_destroys_it() {
        let mut p = Page::new(4);
        p.program_subpage(0, oob(1), SimTime::ZERO, 0).unwrap();
        let destroyed = p.program_subpage(0, oob(2), SimTime::ZERO, 0).unwrap();
        assert_eq!(destroyed, vec![0]);
        assert_eq!(p.read_subpage(0), Err(ReadFault::DestroyedByProgram));
    }

    #[test]
    fn page_accepts_at_most_nsub_programs() {
        let mut p = Page::new(2);
        p.program_subpage(0, oob(1), SimTime::ZERO, 0).unwrap();
        p.program_subpage(1, oob(2), SimTime::ZERO, 0).unwrap();
        assert!(p.is_exhausted());
        assert_eq!(
            p.program_subpage(0, oob(3), SimTime::ZERO, 0),
            Err(NandError::ProgramLimitExceeded)
        );
    }

    #[test]
    fn slot_out_of_range_is_rejected() {
        let mut p = Page::new(2);
        assert_eq!(
            p.program_subpage(2, oob(1), SimTime::ZERO, 0),
            Err(NandError::SlotOutOfRange { slot: 2, n_sub: 2 })
        );
    }

    #[test]
    fn padding_slots_report_padding_on_read() {
        let mut p = Page::new(4);
        let oobs = vec![Some(oob(1)), None, None, None];
        p.program_full(&oobs, SimTime::ZERO, 0).unwrap();
        assert!(p.read_subpage(0).is_ok());
        assert_eq!(p.read_subpage(1), Err(ReadFault::Padding));
    }

    #[test]
    fn erase_resets_everything() {
        let mut p = Page::new(4);
        p.program_subpage(0, oob(1), SimTime::ZERO, 0).unwrap();
        p.program_subpage(1, oob(2), SimTime::ZERO, 0).unwrap();
        p.erase();
        assert!(p.is_erased());
        assert_eq!(p.read_subpage(0), Err(ReadFault::NotWritten));
        // A fresh subpage program is possible again, at Npp^0.
        p.program_subpage(2, oob(3), SimTime::ZERO, 0).unwrap();
        assert_eq!(p.read_subpage(2).unwrap().npp, 0);
    }

    #[test]
    fn torn_subpage_program_tears_target_and_destroys_siblings() {
        // Power loss during the migration program of Fig 7(c): the target
        // slot is unreadable AND the previously-programmed sibling is
        // destroyed — the data exists nowhere on the page afterwards.
        let mut p = Page::new(4);
        p.program_subpage(0, oob(7), SimTime::ZERO, 0).unwrap();
        let destroyed = p.tear_program_subpage(1).unwrap();
        assert_eq!(destroyed, vec![0]);
        assert_eq!(p.read_subpage(0), Err(ReadFault::DestroyedByProgram));
        assert_eq!(p.read_subpage(1), Err(ReadFault::Torn));
        assert_eq!(p.program_count(), 2);
    }

    #[test]
    fn torn_subpage_program_respects_legality() {
        let mut p = Page::new(2);
        assert_eq!(
            p.tear_program_subpage(2),
            Err(NandError::SlotOutOfRange { slot: 2, n_sub: 2 })
        );
        p.program_subpage(0, oob(1), SimTime::ZERO, 0).unwrap();
        p.program_subpage(1, oob(2), SimTime::ZERO, 0).unwrap();
        assert_eq!(
            p.tear_program_subpage(0),
            Err(NandError::ProgramLimitExceeded)
        );
    }

    #[test]
    fn torn_full_program_tears_every_slot() {
        let mut p = Page::new(4);
        p.tear_program_full().unwrap();
        for slot in 0..4 {
            assert_eq!(p.read_subpage(slot), Err(ReadFault::Torn));
        }
        assert_eq!(p.program_count(), 1);
        assert_eq!(p.tear_program_full(), Err(NandError::ProgramOnDirtyPage));
    }

    #[test]
    fn erase_recovers_a_torn_page() {
        let mut p = Page::new(4);
        p.program_subpage(0, oob(1), SimTime::ZERO, 0).unwrap();
        p.tear_program_subpage(1).unwrap();
        p.erase();
        assert!(p.is_erased());
        p.program_subpage(0, oob(2), SimTime::ZERO, 0).unwrap();
        assert_eq!(p.read_subpage(0).unwrap().oob.unwrap().lsn, 2);
    }

    #[test]
    fn full_then_subpage_program_destroys_all_valid_data() {
        // A full-page program followed by a subpage program is the worst
        // ESP-discipline violation: three slots destroyed, target slot too.
        let mut p = Page::new(4);
        let oobs: Vec<_> = (0..4).map(|i| Some(oob(i))).collect();
        p.program_full(&oobs, SimTime::ZERO, 0).unwrap();
        let destroyed = p.program_subpage(1, oob(9), SimTime::ZERO, 0).unwrap();
        assert_eq!(destroyed.len(), 4);
        for slot in 0..4 {
            assert_eq!(p.read_subpage(slot), Err(ReadFault::DestroyedByProgram));
        }
    }
}

//! Subpage-aware NAND retention model (paper §3.3, Fig 5).
//!
//! The paper characterizes 81,920 pages of 2x-nm TLC NAND and finds that the
//! *retention bit-error rate* of a subpage depends on how many program
//! operations the containing page had experienced **before** that subpage was
//! programmed. A subpage programmed after `k` earlier programs is an
//! `Npp^k`-type subpage; right after 1K P/E cycles an `Npp^3` subpage shows a
//! retention BER ~41 % above an `Npp^0` subpage, and while `Npp^3` satisfies
//! a 1-month retention requirement it fails at 2 months.
//!
//! This module is the behavioural substitute for those chip measurements: a
//! closed-form parametric model of the *normalized* retention BER
//!
//! ```text
//! ber(pe, k, t) = pe_factor(pe) · npp_factor(k) · (1 + slope(k) · t^0.9)
//! ```
//!
//! normalized so that `ber(1000 P/E, Npp^0, 0) = 1.0` (the "endurance BER").
//! The default calibration anchors the shape of Fig 5:
//!
//! * `npp_factor(3) = 1.41` (the paper's +41 %),
//! * `Npp^3` crosses the ECC limit between month 1 and month 2,
//! * `Npp^0` retains data for well over 12 months (the JEDEC
//!   commercial-grade requirement the paper cites),
//! * higher `k` degrades faster with time (slope grows with `k`).

use esp_sim::SimDuration;

/// Parametric subpage-aware retention-BER model.
///
/// All BER values are *normalized* to the endurance BER (the retention BER
/// of an `Npp^0` subpage right after [`RetentionModel::reference_pe_cycles`]
/// P/E cycles, at zero retention time), exactly as in Fig 5 of the paper.
///
/// # Examples
///
/// ```
/// use esp_nand::RetentionModel;
/// use esp_sim::SimDuration;
///
/// let m = RetentionModel::paper_default();
/// // An Npp^3 subpage survives 1 month but not 2 (paper Fig 5):
/// let pe = m.reference_pe_cycles();
/// assert!(m.normalized_ber(pe, 3, SimDuration::from_months(1)) <= m.ecc_limit());
/// assert!(m.normalized_ber(pe, 3, SimDuration::from_months(2)) > m.ecc_limit());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RetentionModel {
    /// Normalized BER the ECC engine can still correct.
    ecc_limit: f64,
    /// P/E cycle count at which the model is normalized (the paper: 1000).
    reference_pe: u32,
    /// Multiplier on BER at zero P/E cycles (fresh cells are cleaner).
    fresh_factor: f64,
    /// Extra BER factor at `Npp^(N_sub-1)` relative to `Npp^0`
    /// (the paper: 0.41).
    npp_max_uplift: f64,
    /// Shape exponent of the `Npp` uplift curve.
    npp_shape: f64,
    /// Time-degradation slope at `Npp^0` (per month^0.9).
    slope_base: f64,
    /// Additional slope at `Npp^(N_sub-1)`.
    slope_max_uplift: f64,
    /// Exponent of the time term (months^time_exp).
    time_exp: f64,
    /// The `Npp` index the uplift anchors refer to (`N_sub - 1`; 3 for the
    /// paper's 4-subpage pages).
    npp_anchor: u32,
    /// Page-to-page process variation: each block's BER is scaled by a
    /// deterministic factor in `[1 - variation, 1 + variation]` (Fig 5
    /// reports min/avg/max across 81,920 measured pages). Zero by default
    /// so the closed-form model is exact; the Fig 5 characterization
    /// harness enables it.
    variation: f64,
    /// Additive normalized-BER contribution of each cell sense on a block
    /// since its last erase (read disturb; Cai et al.). Zero by default so
    /// baseline runs are unaffected; an erase resets the accumulation.
    read_disturb_per_read: f64,
}

impl RetentionModel {
    /// The calibration used throughout the reproduction (see module docs).
    #[must_use]
    pub fn paper_default() -> Self {
        RetentionModel {
            ecc_limit: 2.4,
            reference_pe: 1000,
            fresh_factor: 0.25,
            npp_max_uplift: 0.41,
            npp_shape: 0.85,
            slope_base: 0.10,
            slope_max_uplift: 0.46,
            time_exp: 0.9,
            npp_anchor: 3,
            variation: 0.0,
            read_disturb_per_read: 0.0,
        }
    }

    /// Overrides the normalized ECC limit (see [`crate::EccConfig`], which
    /// derives limits from codeword size and correction strength).
    ///
    /// # Panics
    ///
    /// Panics if `limit` is not positive.
    #[must_use]
    pub fn with_ecc_limit(mut self, limit: f64) -> Self {
        assert!(limit > 0.0, "ecc limit must be positive");
        self.ecc_limit = limit;
        self
    }

    /// Enables page-to-page process variation: per-block BER scale factors
    /// spread uniformly within `±spread` (deterministically derived from
    /// the block index). Fig 5's min/avg/max bars use 0.08.
    ///
    /// # Panics
    ///
    /// Panics if `spread` is not within `[0, 0.5]`.
    #[must_use]
    pub fn with_variation(mut self, spread: f64) -> Self {
        assert!(
            (0.0..=0.5).contains(&spread),
            "variation must be in [0, 0.5]"
        );
        self.variation = spread;
        self
    }

    /// Enables read-disturb modeling: every cell sense of a block adds
    /// `per_read` to the normalized BER of all data stored in that block
    /// until its next erase. Reads weakly program unselected word lines
    /// (Cai et al.); the device model accumulates a per-block sense counter
    /// and charges this term on top of the retention BER.
    ///
    /// # Panics
    ///
    /// Panics if `per_read` is negative or not finite.
    #[must_use]
    pub fn with_read_disturb(mut self, per_read: f64) -> Self {
        assert!(
            per_read >= 0.0 && per_read.is_finite(),
            "read-disturb rate must be finite and non-negative"
        );
        self.read_disturb_per_read = per_read;
        self
    }

    /// Normalized-BER increment charged per cell sense (0 when read-disturb
    /// modeling is disabled).
    #[must_use]
    pub fn read_disturb_per_read(&self) -> f64 {
        self.read_disturb_per_read
    }

    /// Additive normalized-BER term accumulated by `reads_since_erase`
    /// senses of a block since its last erase.
    #[must_use]
    pub fn disturb_term(&self, reads_since_erase: u64) -> f64 {
        self.read_disturb_per_read * reads_since_erase as f64
    }

    /// The deterministic per-block BER scale factor in
    /// `[1 - variation, 1 + variation]` (1.0 when variation is disabled).
    #[must_use]
    pub fn block_factor(&self, block_index: u64) -> f64 {
        if self.variation == 0.0 {
            return 1.0;
        }
        // SplitMix64 finalizer -> uniform in [-1, 1].
        let mut z = block_index.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        1.0 + self.variation * (2.0 * unit - 1.0)
    }

    /// Normalized retention BER of an `Npp^k` subpage on a specific block
    /// (the closed-form model scaled by the block's process-variation
    /// factor).
    #[must_use]
    pub fn normalized_ber_on_block(
        &self,
        block_index: u64,
        pe_cycles: u32,
        npp: u32,
        elapsed: SimDuration,
    ) -> f64 {
        self.block_factor(block_index) * self.normalized_ber(pe_cycles, npp, elapsed)
    }

    /// Normalized BER the ECC can correct; reads above this fail.
    #[must_use]
    pub fn ecc_limit(&self) -> f64 {
        self.ecc_limit
    }

    /// The P/E cycle count at which `Npp^0`, `t = 0` BER is defined as 1.0.
    #[must_use]
    pub fn reference_pe_cycles(&self) -> u32 {
        self.reference_pe
    }

    /// Wear factor: grows linearly from `fresh_factor` at 0 cycles to 1.0 at
    /// the reference cycle count and keeps growing past it.
    #[must_use]
    pub fn pe_factor(&self, pe_cycles: u32) -> f64 {
        let x = f64::from(pe_cycles) / f64::from(self.reference_pe);
        self.fresh_factor + (1.0 - self.fresh_factor) * x
    }

    /// `Npp` uplift: 1.0 at `Npp^0` rising to `1 + npp_max_uplift` at the
    /// anchor index (`Npp^3` for 4-subpage pages).
    #[must_use]
    pub fn npp_factor(&self, npp: u32) -> f64 {
        if npp == 0 {
            return 1.0;
        }
        let x = f64::from(npp) / f64::from(self.npp_anchor.max(1));
        1.0 + self.npp_max_uplift * x.powf(self.npp_shape)
    }

    /// Time-degradation slope for an `Npp^k` subpage (per month^`time_exp`).
    #[must_use]
    pub fn slope(&self, npp: u32) -> f64 {
        let x = f64::from(npp) / f64::from(self.npp_anchor.max(1));
        self.slope_base + self.slope_max_uplift * x
    }

    /// Normalized retention BER of an `Npp^k` subpage after `elapsed`
    /// retention time on a block with `pe_cycles` program/erase cycles.
    #[must_use]
    pub fn normalized_ber(&self, pe_cycles: u32, npp: u32, elapsed: SimDuration) -> f64 {
        let t = elapsed.as_months_f64();
        self.pe_factor(pe_cycles)
            * self.npp_factor(npp)
            * (1.0 + self.slope(npp) * t.powf(self.time_exp))
    }

    /// True if data in an `Npp^k` subpage is still within the ECC limit
    /// after `elapsed` retention time.
    #[must_use]
    pub fn is_readable(&self, pe_cycles: u32, npp: u32, elapsed: SimDuration) -> bool {
        self.normalized_ber(pe_cycles, npp, elapsed) <= self.ecc_limit
    }

    /// AERO-style erase-depth selection (arXiv 2404.10355): lightly-worn
    /// blocks erase reliably with fewer, weaker pulses, so the controller
    /// picks a depth from the block's *effective* wear. The thresholds are
    /// conservative — a depth is only shallower than a full erase while the
    /// block sits well below the reference endurance point, where
    /// [`RetentionModel::pe_factor`] leaves ample margin to the ECC limit
    /// for every `Npp` type, so retention capability is never the binding
    /// constraint.
    #[must_use]
    pub fn erase_depth(&self, effective_pe: u32) -> EraseDepth {
        if effective_pe.saturating_mul(2) < self.reference_pe {
            EraseDepth::Shallow
        } else if effective_pe < self.reference_pe {
            EraseDepth::Reduced
        } else {
            EraseDepth::Deep
        }
    }

    /// How long an `Npp^k` subpage written on a block with `pe_cycles`
    /// cycles can retain data before crossing the ECC limit.
    ///
    /// Returns [`SimDuration::ZERO`] if the subpage is unreadable even at
    /// zero retention time.
    #[must_use]
    pub fn retention_capability(&self, pe_cycles: u32, npp: u32) -> SimDuration {
        let base = self.pe_factor(pe_cycles) * self.npp_factor(npp);
        if base >= self.ecc_limit {
            return SimDuration::ZERO;
        }
        let s = self.slope(npp);
        if s <= 0.0 {
            // Never degrades: effectively unbounded; report 100 years.
            return SimDuration::from_days(36_500);
        }
        let t_months = ((self.ecc_limit / base - 1.0) / s).powf(1.0 / self.time_exp);
        let ns = t_months * 30.0 * 86_400.0 * 1e9;
        SimDuration::from_nanos(ns as u64)
    }
}

impl Default for RetentionModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// How deeply a block is erased (AERO, arXiv 2404.10355).
///
/// A conventional erase always drives cells to the deepest erase state; AERO
/// observes that lightly-worn blocks reach an erase-verifiable state with
/// fewer, weaker pulses, trading unneeded reliability margin for latency and
/// — because each pulse stresses the tunnel oxide — for lifetime. The model
/// here charges each depth a fixed fraction of a full erase's latency and of
/// a full erase's wear (in milli-P/E, so the bookkeeping stays integral):
/// with adaptive erase disabled every erase is [`EraseDepth::Deep`], which
/// costs exactly one P/E cycle and the full `tBERS` — bit-identical to the
/// non-adaptive device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EraseDepth {
    /// Lightly-worn block: ~60 % of the oxide stress, ~70 % of the latency.
    Shallow,
    /// Mid-life block: ~85 % of the stress, ~90 % of the latency.
    Reduced,
    /// Full-depth erase: exactly 1 P/E cycle of stress at full latency.
    Deep,
}

impl EraseDepth {
    /// Oxide stress charged by one erase at this depth, in milli-P/E
    /// (a [`EraseDepth::Deep`] erase is exactly 1000, i.e. one P/E cycle).
    #[must_use]
    pub fn stress_milli_pe(self) -> u64 {
        match self {
            EraseDepth::Shallow => 600,
            EraseDepth::Reduced => 850,
            EraseDepth::Deep => 1000,
        }
    }

    /// Erase latency at this depth, in percent of the full-depth `tBERS`.
    #[must_use]
    pub fn latency_percent(self) -> u64 {
        match self {
            EraseDepth::Shallow => 70,
            EraseDepth::Reduced => 90,
            EraseDepth::Deep => 100,
        }
    }
}

/// A tiered read-retry ladder (Cai et al., *Data Retention in MLC NAND
/// Flash Memory: Characterization, Optimization, and Recovery*).
///
/// When the initial sense of a subpage lands above the ECC limit, the
/// controller re-reads at shifted reference voltages: hard step `i`
/// tolerates a normalized BER up to `ecc_limit · (1 + step_uplift · i)`. If
/// every hard step fails, a final soft-decode pass (soft-decision sensing
/// plus LDPC soft decoding) tolerates `ecc_limit · (1 + soft_uplift)`. Each
/// step costs extra cell time (see [`crate::NandTiming`]); only data above
/// the soft-decode rung is truly uncorrectable.
///
/// # Examples
///
/// ```
/// use esp_nand::RetryLadder;
///
/// let l = RetryLadder::paper_default();
/// // Just above the base limit: one hard step recovers it.
/// let e = l.effort_for(2.5, 2.4).unwrap();
/// assert_eq!((e.retry_steps, e.soft_decode), (1, false));
/// // Beyond every rung: uncorrectable.
/// assert!(l.effort_for(5.0, 2.4).is_none());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RetryLadder {
    /// Number of stepped hard re-reads tried after the initial sense.
    pub hard_steps: u32,
    /// Fractional ECC-limit uplift each hard step adds: step `i` corrects
    /// up to `ecc_limit · (1 + step_uplift · i)`.
    pub step_uplift: f64,
    /// Fractional uplift of the final soft-decode pass relative to the base
    /// limit (reached only after all hard steps fail).
    pub soft_uplift: f64,
}

impl RetryLadder {
    /// The default ladder used throughout the reproduction: four hard steps
    /// of +15 % each, then a soft-decode pass that doubles the correctable
    /// BER — in line with the retry behaviour Cai et al. report.
    #[must_use]
    pub fn paper_default() -> Self {
        RetryLadder {
            hard_steps: 4,
            step_uplift: 0.15,
            soft_uplift: 1.0,
        }
    }

    /// Checks the ladder parameters are usable.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated rule.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.step_uplift.is_finite() && self.step_uplift >= 0.0) {
            return Err("retry ladder step uplift must be finite and non-negative".into());
        }
        if !(self.soft_uplift.is_finite() && self.soft_uplift >= 0.0) {
            return Err("retry ladder soft uplift must be finite and non-negative".into());
        }
        if self.hard_steps == 0 && self.soft_uplift == 0.0 {
            return Err("retry ladder must have at least one rung".into());
        }
        Ok(())
    }

    /// The highest normalized BER any rung of the ladder can correct.
    #[must_use]
    pub fn max_correctable(&self, ecc_limit: f64) -> f64 {
        let hard = self.step_uplift * f64::from(self.hard_steps);
        ecc_limit * (1.0 + self.soft_uplift.max(hard))
    }

    /// The cheapest effort that corrects a read at `ber`, or `None` if even
    /// the soft-decode rung cannot.
    #[must_use]
    pub fn effort_for(&self, ber: f64, ecc_limit: f64) -> Option<ReadEffort> {
        if ber <= ecc_limit {
            return Some(ReadEffort::NONE);
        }
        for step in 1..=self.hard_steps {
            if ber <= ecc_limit * (1.0 + self.step_uplift * f64::from(step)) {
                return Some(ReadEffort {
                    retry_steps: step,
                    soft_decode: false,
                });
            }
        }
        if ber <= ecc_limit * (1.0 + self.soft_uplift) {
            return Some(ReadEffort {
                retry_steps: self.hard_steps,
                soft_decode: true,
            });
        }
        None
    }

    /// The effort charged when the whole ladder runs and still fails: every
    /// hard step plus the soft-decode pass (uncorrectable reads are the
    /// slowest reads a device serves).
    #[must_use]
    pub fn exhausted(&self) -> ReadEffort {
        ReadEffort {
            retry_steps: self.hard_steps,
            soft_decode: true,
        }
    }
}

/// How much retry-ladder work a read needed beyond the initial sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReadEffort {
    /// Hard re-read steps performed (each one a full extra cell sense).
    pub retry_steps: u32,
    /// True if the final soft-decode pass ran.
    pub soft_decode: bool,
}

impl ReadEffort {
    /// A clean first-sense read: no retries, no soft decode.
    pub const NONE: ReadEffort = ReadEffort {
        retry_steps: 0,
        soft_decode: false,
    };

    /// True if the read succeeded on the initial sense.
    #[must_use]
    pub fn is_free(self) -> bool {
        self == Self::NONE
    }

    /// Componentwise maximum: the effort of a full-page read is the effort
    /// of its hardest subpage (the page is sensed as a unit).
    #[must_use]
    pub fn max(self, other: ReadEffort) -> ReadEffort {
        ReadEffort {
            retry_steps: self.retry_steps.max(other.retry_steps),
            soft_decode: self.soft_decode || other.soft_decode,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> RetentionModel {
        RetentionModel::paper_default()
    }

    #[test]
    fn endurance_ber_is_normalized_to_one() {
        let m = m();
        let b = m.normalized_ber(m.reference_pe_cycles(), 0, SimDuration::ZERO);
        assert!((b - 1.0).abs() < 1e-12, "got {b}");
    }

    #[test]
    fn npp3_uplift_matches_paper_41_percent() {
        let m = m();
        let n0 = m.normalized_ber(1000, 0, SimDuration::ZERO);
        let n3 = m.normalized_ber(1000, 3, SimDuration::ZERO);
        assert!((n3 / n0 - 1.41).abs() < 1e-9, "uplift {}", n3 / n0);
    }

    #[test]
    fn npp3_passes_one_month_fails_two_months() {
        let m = m();
        assert!(m.is_readable(1000, 3, SimDuration::from_months(1)));
        assert!(!m.is_readable(1000, 3, SimDuration::from_months(2)));
    }

    #[test]
    fn npp0_meets_commercial_grade_retention() {
        // JEDEC commercial grade: 1 year. Our Npp^0 cells comfortably pass.
        let m = m();
        assert!(m.is_readable(1000, 0, SimDuration::from_months(12)));
    }

    #[test]
    fn every_npp_type_survives_the_ftl_one_month_bound() {
        // subFTL conservatively assumes every subpage holds data for one
        // month; the device model must honor that for all Npp types.
        let m = m();
        for npp in 0..=3 {
            assert!(
                m.is_readable(1000, npp, SimDuration::from_months(1)),
                "Npp^{npp} failed the 1-month bound"
            );
        }
    }

    #[test]
    fn ber_is_monotone_in_npp() {
        let m = m();
        let t = SimDuration::from_days(10);
        let mut prev = 0.0;
        for npp in 0..=3 {
            let b = m.normalized_ber(1000, npp, t);
            assert!(b > prev, "Npp^{npp}: {b} <= {prev}");
            prev = b;
        }
    }

    #[test]
    fn ber_is_monotone_in_time_and_pe() {
        let m = m();
        assert!(
            m.normalized_ber(1000, 2, SimDuration::from_months(2))
                > m.normalized_ber(1000, 2, SimDuration::from_months(1))
        );
        assert!(
            m.normalized_ber(2000, 0, SimDuration::ZERO)
                > m.normalized_ber(1000, 0, SimDuration::ZERO)
        );
        assert!(m.normalized_ber(500, 0, SimDuration::ZERO) < 1.0);
    }

    #[test]
    fn variation_is_deterministic_and_bounded() {
        let m = RetentionModel::paper_default().with_variation(0.12);
        for b in 0..1000u64 {
            let f = m.block_factor(b);
            assert!((0.88..=1.12).contains(&f), "block {b}: factor {f}");
            assert_eq!(f, m.block_factor(b), "must be deterministic");
        }
        // Factors actually spread (not all identical).
        let f0 = m.block_factor(0);
        assert!((0..100u64).any(|b| (m.block_factor(b) - f0).abs() > 0.02));
        // Disabled by default.
        assert_eq!(RetentionModel::paper_default().block_factor(7), 1.0);
    }

    #[test]
    fn block_scaled_ber_wraps_the_closed_form() {
        let m = RetentionModel::paper_default().with_variation(0.12);
        let t = SimDuration::from_months(1);
        let plain = m.normalized_ber(1000, 2, t);
        let scaled = m.normalized_ber_on_block(5, 1000, 2, t);
        assert!((scaled / plain - m.block_factor(5)).abs() < 1e-12);
    }

    #[test]
    fn retention_capability_matches_is_readable() {
        let m = m();
        for npp in 0..=3 {
            let cap = m.retention_capability(1000, npp);
            assert!(!cap.is_zero());
            // Just inside the capability: readable.
            let inside = SimDuration::from_nanos(cap.as_nanos() * 99 / 100);
            assert!(m.is_readable(1000, npp, inside), "Npp^{npp} inside cap");
            // Just past: not readable.
            let outside = SimDuration::from_nanos(cap.as_nanos() * 101 / 100);
            assert!(!m.is_readable(1000, npp, outside), "Npp^{npp} outside cap");
        }
    }

    #[test]
    fn disturb_term_accumulates_and_defaults_off() {
        let base = m();
        assert_eq!(base.read_disturb_per_read(), 0.0);
        assert_eq!(base.disturb_term(1_000_000), 0.0);
        let d = RetentionModel::paper_default().with_read_disturb(1e-3);
        assert!((d.disturb_term(500) - 0.5).abs() < 1e-12);
        assert_eq!(d.disturb_term(0), 0.0);
    }

    #[test]
    fn ladder_rungs_are_monotone() {
        let l = RetryLadder::paper_default();
        let limit = 2.4;
        // Base-limit reads are free.
        assert_eq!(l.effort_for(2.4, limit), Some(ReadEffort::NONE));
        // Each rung corrects strictly more; efforts are non-decreasing.
        let mut prev_steps = 0;
        for ber in [2.5, 2.9, 3.2, 3.8, 4.7] {
            let e = l.effort_for(ber, limit).unwrap();
            assert!(e.retry_steps >= prev_steps, "ber {ber}");
            prev_steps = e.retry_steps;
        }
        // The soft rung is the last resort and the hardest charge.
        let soft = l.effort_for(4.7, limit).unwrap();
        assert!(soft.soft_decode);
        assert_eq!(soft, l.exhausted());
        // Past the soft rung: uncorrectable.
        assert!(l.effort_for(limit * 2.0 + 0.01, limit).is_none());
        assert!((l.max_correctable(limit) - 4.8).abs() < 1e-12);
    }

    #[test]
    fn ladder_validate_rejects_degenerate_parameters() {
        assert!(RetryLadder::paper_default().validate().is_ok());
        let no_rungs = RetryLadder {
            hard_steps: 0,
            step_uplift: 0.15,
            soft_uplift: 0.0,
        };
        assert!(no_rungs.validate().is_err());
        let negative = RetryLadder {
            step_uplift: -0.1,
            ..RetryLadder::paper_default()
        };
        assert!(negative.validate().is_err());
    }

    #[test]
    fn effort_max_takes_the_hardest_component() {
        let a = ReadEffort {
            retry_steps: 2,
            soft_decode: false,
        };
        let b = ReadEffort {
            retry_steps: 1,
            soft_decode: true,
        };
        assert_eq!(
            a.max(b),
            ReadEffort {
                retry_steps: 2,
                soft_decode: true
            }
        );
        assert!(ReadEffort::NONE.is_free());
        assert!(!a.is_free());
    }

    #[test]
    fn erase_depth_tiers_follow_effective_wear() {
        let m = m();
        assert_eq!(m.erase_depth(0), EraseDepth::Shallow);
        assert_eq!(m.erase_depth(499), EraseDepth::Shallow);
        assert_eq!(m.erase_depth(500), EraseDepth::Reduced);
        assert_eq!(m.erase_depth(999), EraseDepth::Reduced);
        assert_eq!(m.erase_depth(1000), EraseDepth::Deep);
        assert_eq!(m.erase_depth(u32::MAX), EraseDepth::Deep);
    }

    #[test]
    fn erase_depth_charges_are_monotone_and_deep_is_exact() {
        // Deep must cost exactly one P/E cycle and 100 % latency so the
        // adaptive-off path stays bit-identical to the classic device.
        assert_eq!(EraseDepth::Deep.stress_milli_pe(), 1000);
        assert_eq!(EraseDepth::Deep.latency_percent(), 100);
        assert!(EraseDepth::Shallow.stress_milli_pe() < EraseDepth::Reduced.stress_milli_pe());
        assert!(EraseDepth::Reduced.stress_milli_pe() < EraseDepth::Deep.stress_milli_pe());
        assert!(EraseDepth::Shallow.latency_percent() < EraseDepth::Reduced.latency_percent());
        assert!(EraseDepth::Reduced.latency_percent() < EraseDepth::Deep.latency_percent());
    }

    #[test]
    fn capability_shrinks_with_npp() {
        let m = m();
        let caps: Vec<_> = (0..=3).map(|k| m.retention_capability(1000, k)).collect();
        for w in caps.windows(2) {
            assert!(w[0] > w[1]);
        }
        // Npp^3 capability sits between 1 and 2 months.
        assert!(caps[3] > SimDuration::from_months(1));
        assert!(caps[3] < SimDuration::from_months(2));
    }
}
